// Golden dispatch-trace tests: every optimization in the simulation kernel
// must leave the dispatch order — and therefore every simulated result —
// byte-identical to the seed's container/heap event queue. Each case runs a
// real workload twice on the optimized kernel (run-to-run determinism) and
// once on sim.NewReferenceKernel (the container/heap oracle), comparing the
// (time, seq, proc) dispatch sequences via sim.Trace.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvwal"
	"repro/internal/nand"
	"repro/internal/oltp"
	"repro/internal/sim"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

// goldenCase drives one workload on a kernel built by newK and returns its
// dispatch trace.
type goldenCase struct {
	name string
	run  func(k *sim.Kernel)
}

func goldenCases() []goldenCase {
	short := 8 * sim.Millisecond
	return []goldenCase{
		{"fig1/buffered-EXT4-OD", func(k *sim.Kernel) {
			s := core.NewStack(k, core.EXT4OD(device.Fig1Device(0)))
			cfg := workload.DefaultRandWrite(workload.PolicyP)
			cfg.Duration, cfg.Warmup, cfg.FilePages = short, short/4, 256
			workload.RandWrite(k, s, cfg)
		}},
		{"fig9/barrier-BFS-OD", func(k *sim.Kernel) {
			s := core.NewStack(k, core.BFSOD(device.UFS()))
			cfg := workload.DefaultRandWrite(workload.PolicyB)
			cfg.Duration, cfg.Warmup, cfg.FilePages = short, short/4, 256
			workload.RandWrite(k, s, cfg)
		}},
		{"fig14/sqlite-BFS-DR", func(k *sim.Kernel) {
			s := core.NewStack(k, core.BFSDR(device.UFS()))
			sqlmini.Bench(k, s, sqlmini.DefaultConfig(sqlmini.Persist, sqlmini.Durable), short)
		}},
		{"fig15/oltp-EXT4-DR", func(k *sim.Kernel) {
			s := core.NewStack(k, core.EXT4DR(device.PlainSSD()))
			cfg := oltp.DefaultConfig()
			cfg.Clients = 2
			oltp.Bench(k, s, cfg, short)
		}},
		{"blkmq/EXT4-MQ-varmail", func(k *sim.Kernel) {
			s := core.NewStack(k, core.EXT4MQ(device.NVMeSSD()))
			cfg := workload.DefaultVarmail()
			cfg.Threads, cfg.Files = 4, 16
			cfg.Duration, cfg.Warmup = short, short/4
			workload.Varmail(k, s, cfg)
		}},
		{"kvwal/BFS-MQ-groupcommit", func(k *sim.Kernel) {
			s := core.NewStack(k, core.BFSMQ(device.NVMeSSD()))
			kvwal.Bench(k, s, kvwal.DefaultBenchConfig(4), short)
		}},
		// pdflush coverage: an app that only dirties pages, so every
		// writeback is the pdflush daemon's, including its congestion parks.
		{"pdflush/EXT4-OD-buffered", func(k *sim.Kernel) {
			prof := core.EXT4OD(device.UFS())
			prof.FS.PdflushInterval = 300 * sim.Microsecond
			s := core.NewStack(k, prof)
			k.Spawn("app", func(p *sim.Proc) {
				f, err := s.FS.Create(p, s.FS.Root(), "dirty.dat")
				if err != nil {
					panic(err)
				}
				for i := 0; ; i++ {
					s.FS.Write(p, f, int64(i%512))
					if i%64 == 63 {
						p.Sleep(50 * sim.Microsecond)
					}
				}
			})
			k.RunUntil(sim.Time(short))
		}},
		// GC + OptFS delayed-flush coverage: a deliberately tiny, fast array
		// so the log wraps within the run and the GC/erase machinery and the
		// delayed-durability timer both fire.
		{"gc/OptFS-tinydev", func(k *sim.Kernel) {
			cfg := device.Config{
				Name: "tiny", QueueDepth: 8, CachePages: 64,
				BarrierSupport: true,
				DMAPerPage:     sim.Microsecond,
				CmdOverhead:    sim.Microsecond,
				Geometry: nand.Geometry{Channels: 2, WaysPerChannel: 2,
					BlocksPerChip: 6, PagesPerBlock: 16, PageSize: 4096},
				Timing: nand.Timing{Program: 4 * sim.Microsecond, Read: 2 * sim.Microsecond,
					Erase: 8 * sim.Microsecond, BusXfer: sim.Microsecond},
			}
			prof := core.OptFS(cfg)
			prof.FS.Journal.Pages = 128
			prof.FS.Journal.CheckpointLow = 32
			prof.FS.Journal.FlushInterval = 2 * sim.Millisecond
			s := core.NewStack(k, prof)
			wcfg := workload.DefaultRandWrite(workload.PolicyB)
			wcfg.Duration, wcfg.Warmup, wcfg.FilePages = 24*sim.Millisecond, 6*sim.Millisecond, 32
			workload.RandWrite(k, s, wcfg)
		}},
	}
}

func traceOf(newK func() *sim.Kernel, c goldenCase) *sim.Trace {
	k := newK()
	defer k.Close()
	tr := k.StartTrace(false)
	c.run(k)
	return tr
}

// TestGoldenDispatchTraces pins (a) run-to-run determinism of the optimized
// kernel and (b) byte-identical dispatch order against the reference
// container/heap kernel, across the paper's workload families: buffered and
// barrier random writes (Figs. 1/9), SQLite (Fig. 14), OLTP (Fig. 15), the
// multi-queue block layer, and the kvwal group-commit store.
func TestGoldenDispatchTraces(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			a := traceOf(sim.NewKernel, c)
			b := traceOf(sim.NewKernel, c)
			if a.Len() != b.Len() || a.Hash() != b.Hash() {
				t.Fatalf("run-to-run nondeterminism: (n=%d h=%x) vs (n=%d h=%x)",
					a.Len(), a.Hash(), b.Len(), b.Hash())
			}
			ref := traceOf(sim.NewReferenceKernel, c)
			if a.Len() != ref.Len() || a.Hash() != ref.Hash() {
				t.Fatalf("optimized kernel diverges from container/heap reference: optimized (n=%d h=%x), reference (n=%d h=%x)",
					a.Len(), a.Hash(), ref.Len(), ref.Hash())
			}
			if a.Len() == 0 {
				t.Fatal("empty trace: workload did not run")
			}
		})
	}
}
