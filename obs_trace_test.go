// Observability must be free of Heisenberg effects: enabling the metrics
// registry and kernel trace spans must not perturb the dispatch order. Each
// golden case runs once bare and once with a live registry + spans recording,
// and the two dispatch traces must be byte-identical. The observed run also
// pins that the instruments actually fired (a silently-disabled registry
// would pass the identity check vacuously) and that the span dump is valid
// Chrome trace_event JSON.
package repro_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// traceOfObserved runs one golden case with spans and the given registry
// live, returning the dispatch trace and the recorded spans.
func traceOfObserved(c goldenCase) (*sim.Trace, *sim.SpanTrace) {
	k := sim.NewKernel()
	defer k.Close()
	sp := k.StartSpans(true)
	tr := k.StartTrace(false)
	c.run(k)
	return tr, sp
}

func TestGoldenTracesWithObservability(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			bare := traceOf(sim.NewKernel, c)

			reg := metrics.NewRegistry()
			metrics.SetLive(reg)
			defer metrics.SetLive(nil)
			obs, spans := traceOfObserved(c)

			if bare.Len() != obs.Len() || bare.Hash() != obs.Hash() {
				t.Fatalf("observability perturbed the dispatch order: bare (n=%d h=%x) vs observed (n=%d h=%x)",
					bare.Len(), bare.Hash(), obs.Len(), obs.Hash())
			}
			if reg.Counter("device/writes").Value() == 0 {
				t.Error("registry live but device/writes never incremented")
			}
			if len(reg.Snapshot()) == 0 {
				t.Error("empty registry snapshot after an observed run")
			}
			if spans.Len() == 0 {
				t.Error("spans enabled but none recorded")
			}

			var buf bytes.Buffer
			if err := sim.WriteChromeTrace(&buf, []sim.LabeledSpans{{Label: c.name, Spans: spans}}); err != nil {
				t.Fatalf("WriteChromeTrace: %v", err)
			}
			var dump struct {
				TraceEvents []map[string]any `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
				t.Fatalf("span dump is not valid JSON: %v", err)
			}
			if len(dump.TraceEvents) != spans.Len()+1 { // +1 process_name metadata
				t.Errorf("span dump has %d events, want %d", len(dump.TraceEvents), spans.Len()+1)
			}
		})
	}
}
