// Package repro_test holds the benchmark harness: one testing.B benchmark
// per table/figure of the paper's evaluation. The benchmarks report
// simulated-workload metrics (IOPS, ops/s, Tx/s, µs latency, context
// switches) via b.ReportMetric; wall-clock ns/op measures simulator speed,
// not storage performance.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/kvwal"
	"repro/internal/metrics"
	"repro/internal/oltp"
	"repro/internal/sim"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

// BenchmarkFig1 sweeps the seven devices of Fig. 1, reporting the
// ordered/buffered IOPS ratio.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < device.NumFig1Devices; i++ {
		i := i
		cfg := device.Fig1Device(i)
		b.Run(cfg.Name, func(b *testing.B) {
			var ratio, buffered float64
			for n := 0; n < b.N; n++ {
				res := experiments.Fig1Device(i)
				ratio, buffered = res.RatioPercent, res.BufferedIOPS
			}
			b.ReportMetric(ratio, "ordered/buffered-%")
			b.ReportMetric(buffered, "buffered-IOPS")
		})
	}
}

// BenchmarkFig9 runs the 4KB random-write matrix.
func BenchmarkFig9(b *testing.B) {
	devices := map[string]func() device.Config{
		"UFS": device.UFS, "plainSSD": device.PlainSSD, "supercapSSD": device.SupercapSSD,
	}
	for devName, dev := range devices {
		for _, po := range []workload.Policy{workload.PolicyXnF, workload.PolicyX, workload.PolicyB, workload.PolicyP} {
			po := po
			dev := dev
			b.Run(fmt.Sprintf("%s/%s", devName, po), func(b *testing.B) {
				var last workload.RandWriteResult
				for n := 0; n < b.N; n++ {
					last = randWriteOnce(dev(), po)
				}
				b.ReportMetric(last.IOPS, "IOPS")
				b.ReportMetric(last.MeanQD, "meanQD")
			})
		}
	}
}

func randWriteOnce(cfg device.Config, po workload.Policy) workload.RandWriteResult {
	var prof core.Profile
	switch po {
	case workload.PolicyXnF:
		prof = core.EXT4DR(cfg)
	case workload.PolicyX:
		prof = core.EXT4OD(cfg)
	case workload.PolicyB:
		prof = core.BFSOD(cfg)
	default:
		prof = core.EXT4OD(cfg)
	}
	k := sim.NewKernel()
	defer k.Close()
	s := core.NewStack(k, prof)
	wcfg := workload.DefaultRandWrite(po)
	wcfg.Duration = 60 * sim.Millisecond
	wcfg.Warmup = 10 * sim.Millisecond
	wcfg.FilePages = 512
	return workload.RandWrite(k, s, wcfg)
}

// BenchmarkTable1 measures fsync latency on each (device, filesystem) pair;
// each b.N iteration is one write+fsync in virtual time.
func BenchmarkTable1(b *testing.B) {
	cases := []struct {
		name string
		prof core.Profile
	}{
		{"UFS/EXT4", core.EXT4DR(device.UFS())},
		{"UFS/BFS", core.BFSDR(device.UFS())},
		{"plainSSD/EXT4", core.EXT4DR(device.PlainSSD())},
		{"plainSSD/BFS", core.BFSDR(device.PlainSSD())},
		{"supercapSSD/EXT4", core.EXT4DR(device.SupercapSSD())},
		{"supercapSSD/BFS", core.BFSDR(device.SupercapSSD())},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			k := sim.NewKernel()
			defer k.Close()
			s := core.NewStack(k, c.prof)
			rec := metrics.NewLatencyRecorder(c.name)
			k.Spawn("app", func(p *sim.Proc) {
				f, err := s.FS.Create(p, s.FS.Root(), "bench.dat")
				if err != nil {
					panic(err)
				}
				for i := 0; i < b.N; i++ {
					s.FS.Write(p, f, int64(i))
					t0 := p.Now()
					s.FS.Fsync(p, f)
					rec.Record(sim.Duration(p.Now() - t0))
				}
				k.Stop()
			})
			k.Run()
			b.ReportMetric(rec.Mean().Micros(), "sim-µs/fsync")
			b.ReportMetric(rec.Percentile(99).Micros(), "sim-µs/p99")
		})
	}
}

// BenchmarkFig11 reports voluntary context switches per sync call.
func BenchmarkFig11(b *testing.B) {
	cases := []struct {
		name string
		prof core.Profile
	}{
		{"EXT4-DR", core.EXT4DR(device.UFS())},
		{"BFS-DR", core.BFSDR(device.UFS())},
		{"EXT4-OD", core.EXT4OD(device.UFS())},
		{"BFS-OD", core.BFSOD(device.UFS())},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			k := sim.NewKernel()
			defer k.Close()
			s := core.NewStack(k, c.prof)
			meter := metrics.NewSwitchMeter(c.name)
			k.Spawn("app", func(p *sim.Proc) {
				f, err := s.FS.Create(p, s.FS.Root(), "bench.dat")
				if err != nil {
					panic(err)
				}
				s.FS.Write(p, f, 0)
				s.FS.Fsync(p, f)
				for i := 0; i < b.N; i++ {
					s.FS.Write(p, f, 0)
					meter.Begin(p)
					s.Sync(p, f)
					meter.End(p)
				}
				k.Stop()
			})
			k.Run()
			b.ReportMetric(meter.PerOp(), "switches/op")
		})
	}
}

// BenchmarkFig12 reports peak queue depth under fsync vs fbarrier.
func BenchmarkFig12(b *testing.B) {
	var res experiments.Fig12Result
	for n := 0; n < b.N; n++ {
		res = experiments.Fig12(experiments.Quick)
	}
	b.ReportMetric(res.FsyncPeakQD, "fsync-peakQD")
	b.ReportMetric(res.FbarrierPeakQD, "fbarrier-peakQD")
}

// BenchmarkFig10 reports the mean queue depth of the two Fig. 10 modes.
func BenchmarkFig10(b *testing.B) {
	var rs []experiments.Fig10Result
	for n := 0; n < b.N; n++ {
		rs = experiments.Fig10(experiments.Quick)
	}
	b.ReportMetric(rs[0].XMeanQD, "WoT-meanQD")
	b.ReportMetric(rs[0].BMeanQD, "barrier-meanQD")
}

// BenchmarkFig8 reports the inter-commit interval of the four journaling
// modes.
func BenchmarkFig8(b *testing.B) {
	var res experiments.Fig8Result
	for n := 0; n < b.N; n++ {
		res = experiments.Fig8(experiments.Quick)
	}
	units := []string{"barrierfs-µs", "noflush-µs", "quickflush-µs", "fullflush-µs"}
	for i, row := range res.Rows {
		b.ReportMetric(row.IntervalUs, units[i])
	}
}

// BenchmarkFig13 runs the DWSL scalability points.
func BenchmarkFig13(b *testing.B) {
	for _, mk := range []struct {
		name string
		prof func(device.Config) core.Profile
	}{{"EXT4-DR", core.EXT4DR}, {"BFS-DR", core.BFSDR}} {
		for _, th := range []int{1, 4, 8} {
			mk, th := mk, th
			b.Run(fmt.Sprintf("%s/threads=%d", mk.name, th), func(b *testing.B) {
				var ops float64
				for n := 0; n < b.N; n++ {
					k := sim.NewKernel()
					s := core.NewStack(k, mk.prof(device.PlainSSD()))
					cfg := workload.DefaultDWSL(th)
					cfg.Duration = 60 * sim.Millisecond
					cfg.Warmup = 10 * sim.Millisecond
					ops = workload.DWSL(k, s, cfg).OpsPerS
					k.Close()
				}
				b.ReportMetric(ops, "ops/s")
			})
		}
	}
}

// BenchmarkFig14 runs the SQLite matrix.
func BenchmarkFig14(b *testing.B) {
	cases := []struct {
		name string
		prof core.Profile
		mode sqlmini.JournalMode
		dur  sqlmini.Durability
	}{
		{"UFS/EXT4-DR/persist", core.EXT4DR(device.UFS()), sqlmini.Persist, sqlmini.Durable},
		{"UFS/BFS-DR/persist", core.BFSDR(device.UFS()), sqlmini.Persist, sqlmini.Durable},
		{"UFS/EXT4-DR/wal", core.EXT4DR(device.UFS()), sqlmini.WAL, sqlmini.Durable},
		{"UFS/BFS-DR/wal", core.BFSDR(device.UFS()), sqlmini.WAL, sqlmini.Durable},
		{"plainSSD/EXT4-OD/persist", core.EXT4OD(device.PlainSSD()), sqlmini.Persist, sqlmini.OrderingOnly},
		{"plainSSD/OptFS/persist", core.OptFS(device.PlainSSD()), sqlmini.Persist, sqlmini.OrderingOnly},
		{"plainSSD/BFS-OD/persist", core.BFSOD(device.PlainSSD()), sqlmini.Persist, sqlmini.OrderingOnly},
		{"plainSSD/EXT4-DR/persist", core.EXT4DR(device.PlainSSD()), sqlmini.Persist, sqlmini.Durable},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var tx float64
			for n := 0; n < b.N; n++ {
				k := sim.NewKernel()
				s := core.NewStack(k, c.prof)
				tx = sqlmini.Bench(k, s, sqlmini.DefaultConfig(c.mode, c.dur), 60*sim.Millisecond).TxPerSec
				k.Close()
			}
			b.ReportMetric(tx, "Tx/s")
		})
	}
}

// BenchmarkFig15 runs varmail and OLTP-insert across the five stacks.
func BenchmarkFig15(b *testing.B) {
	profiles := []struct {
		name string
		mk   func(device.Config) core.Profile
	}{
		{"EXT4-DR", core.EXT4DR}, {"BFS-DR", core.BFSDR}, {"OptFS", core.OptFS},
		{"EXT4-OD", core.EXT4OD}, {"BFS-OD", core.BFSOD},
	}
	for _, pr := range profiles {
		pr := pr
		b.Run("varmail/"+pr.name, func(b *testing.B) {
			var ops float64
			for n := 0; n < b.N; n++ {
				k := sim.NewKernel()
				s := core.NewStack(k, pr.mk(device.PlainSSD()))
				cfg := workload.DefaultVarmail()
				cfg.Threads, cfg.Files = 8, 32
				cfg.Duration, cfg.Warmup = 60*sim.Millisecond, 10*sim.Millisecond
				ops = workload.Varmail(k, s, cfg).OpsPerS
				k.Close()
			}
			b.ReportMetric(ops, "ops/s")
		})
		b.Run("oltp/"+pr.name, func(b *testing.B) {
			var tx float64
			for n := 0; n < b.N; n++ {
				k := sim.NewKernel()
				s := core.NewStack(k, pr.mk(device.PlainSSD()))
				cfg := oltp.DefaultConfig()
				cfg.Clients = 4
				tx = oltp.Bench(k, s, cfg, 60*sim.Millisecond).TxPerSec
				k.Close()
			}
			b.ReportMetric(tx, "Tx/s")
		})
	}
}

// BenchmarkMQScaling compares the single-queue layer's device-global total
// order against the multi-queue layer's per-stream epochs (internal/blkmq)
// at each stream count: raw ordered 4KB writes, a barrier every eight
// writes, on the NVMe-class device.
func BenchmarkMQScaling(b *testing.B) {
	for _, streams := range []int{1, 2, 4, 8} {
		for _, mode := range []struct {
			name string
			hwq  func(streams int) int
		}{
			{"single-queue", func(int) int { return 0 }},
			{"blkmq", func(s int) int { return s }},
		} {
			streams, mode := streams, mode
			b.Run(fmt.Sprintf("streams=%d/%s", streams, mode.name), func(b *testing.B) {
				var iops float64
				var epochs int64
				for n := 0; n < b.N; n++ {
					iops, epochs = experiments.MQPoint(streams, mode.hwq(streams), 12*sim.Millisecond)
				}
				b.ReportMetric(iops, "IOPS")
				b.ReportMetric(float64(epochs), "epochs")
			})
		}
	}
}

// BenchmarkKV measures the barrier-enabled KV store (internal/kvwal):
// acknowledged mutations per second and commit-latency percentiles for
// concurrent group-committing clients, per stack profile.
func BenchmarkKV(b *testing.B) {
	for _, mk := range []struct {
		name string
		prof func(device.Config) core.Profile
	}{
		{"EXT4-DR", core.EXT4DR}, {"BFS-DR", core.BFSDR},
		{"EXT4-MQ", core.EXT4MQ}, {"BFS-MQ", core.BFSMQ},
	} {
		for _, clients := range []int{1, 8} {
			mk, clients := mk, clients
			b.Run(fmt.Sprintf("%s/clients=%d", mk.name, clients), func(b *testing.B) {
				var res kvwal.BenchResult
				for n := 0; n < b.N; n++ {
					k := sim.NewKernel()
					s := core.NewStack(k, mk.prof(device.NVMeSSD()))
					res = kvwal.Bench(k, s, kvwal.DefaultBenchConfig(clients), 40*sim.Millisecond)
					k.Close()
				}
				b.ReportMetric(res.OpsPerS, "ops/s")
				b.ReportMetric(res.Latency.P99, "p99-ms")
				b.ReportMetric(res.GroupMean, "ops/group")
			})
		}
	}
}

// BenchmarkSimKernel measures raw simulator event throughput (ablation: the
// substrate's own cost). allocs/op is the headline: the by-value event
// queue schedules with zero allocations per event in steady state.
func BenchmarkSimKernel(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	k.Spawn("ticker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(sim.Microsecond)
		}
		k.Stop()
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkSimKernelMixedHorizons drives the hierarchical timer wheel
// across all of its levels plus the overflow heap: sleeps from 1µs to
// beyond the ~1s wheel horizon, from eight concurrent procs.
func BenchmarkSimKernelMixedHorizons(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	horizons := []sim.Duration{
		sim.Microsecond, 50 * sim.Microsecond, sim.Millisecond,
		20 * sim.Millisecond, 300 * sim.Millisecond, 2 * sim.Second,
	}
	per := b.N/len(horizons) + 1
	for i, d := range horizons {
		i, d := i, d
		k.Spawn(fmt.Sprintf("sleeper%d", i), func(p *sim.Proc) {
			for n := 0; n < per; n++ {
				p.Sleep(d)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkSimHandlerEvent measures run-to-completion dispatch: a handler
// rescheduling itself via WakeIn, one event per op with zero goroutine
// switches and zero allocations — the fast path the device/NAND-side
// components run on.
func BenchmarkSimHandlerEvent(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	n := 0
	k.SpawnHandler("ticker", func(h *sim.Proc) {
		n++
		if n >= b.N {
			k.Stop()
			return
		}
		h.WakeIn(sim.Microsecond)
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkSimHandlerPingPong measures two handlers waking each other
// through a Cond — the handler analogue of BenchmarkSimHandoff, with the
// channel handoffs and goroutine switches gone.
func BenchmarkSimHandlerPingPong(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	ping := sim.NewCond(k)
	pong := sim.NewCond(k)
	n := 0
	k.SpawnHandler("pong", func(h *sim.Proc) {
		pong.Signal()
		ping.Park(h)
	})
	k.SpawnHandler("ping", func(h *sim.Proc) {
		n++
		if n >= b.N {
			k.Stop()
			return
		}
		ping.Signal()
		pong.Park(h)
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkSimHandoff measures the single-handoff context switch: two procs
// ping-ponging through Suspend/Resume, two dispatches per op.
func BenchmarkSimHandoff(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	var ping, pong *sim.Proc
	// pong spawns first so it is parked in Suspend before ping's first Resume.
	pong = k.Spawn("pong", func(p *sim.Proc) {
		for {
			p.Suspend()
			k.Resume(ping)
		}
	})
	ping = k.Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			k.Resume(pong)
			p.Suspend()
		}
		k.Stop()
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkSimSpawnChurn measures short-lived proc churn — the group-commit
// leader pattern — which the pooled worker goroutines make cheap.
func BenchmarkSimSpawnChurn(b *testing.B) {
	k := sim.NewKernel()
	defer k.Close()
	k.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			child := k.Spawn("leader", func(c *sim.Proc) { c.Advance(sim.Microsecond) })
			p.Join(child)
		}
		k.Stop()
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkAblationBarrierCommand compares the paper's barrier-as-flag
// design against encoding the barrier as a standalone command (§3.2): the
// command form pays a queue slot and an extra dispatch per epoch.
func BenchmarkAblationBarrierCommand(b *testing.B) {
	for _, mode := range []struct {
		name      string
		asCommand bool
	}{{"flag", false}, {"command", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var iops float64
			for n := 0; n < b.N; n++ {
				prof := core.BFSOD(device.UFS())
				prof.BarrierAsCommand = mode.asCommand
				k := sim.NewKernel()
				s := core.NewStack(k, prof)
				cfg := workload.DefaultRandWrite(workload.PolicyB)
				cfg.Duration, cfg.Warmup, cfg.FilePages = 60*sim.Millisecond, 10*sim.Millisecond, 512
				iops = workload.RandWrite(k, s, cfg).IOPS
				k.Close()
			}
			b.ReportMetric(iops, "IOPS")
		})
	}
}

// BenchmarkAblationScheduler compares base IO schedulers under the epoch
// scheduler for the DWSL workload.
func BenchmarkAblationScheduler(b *testing.B) {
	for _, sc := range []struct {
		name string
		kind core.SchedKind
	}{{"noop", core.SchedNOOP}, {"cfq", core.SchedCFQ}, {"deadline", core.SchedDeadline}} {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			var ops float64
			for n := 0; n < b.N; n++ {
				prof := core.BFSDR(device.PlainSSD())
				prof.Sched = sc.kind
				k := sim.NewKernel()
				s := core.NewStack(k, prof)
				cfg := workload.DefaultDWSL(4)
				cfg.Duration, cfg.Warmup = 60*sim.Millisecond, 10*sim.Millisecond
				ops = workload.DWSL(k, s, cfg).OpsPerS
				k.Close()
			}
			b.ReportMetric(ops, "ops/s")
		})
	}
}

// BenchmarkAblationDualVsSingleFlush isolates Dual-Mode journaling: same
// device, same workload, JBD2 vs Dual engines under durability.
func BenchmarkAblationDualVsSingleFlush(b *testing.B) {
	for _, mk := range []struct {
		name string
		prof core.Profile
	}{
		{"jbd2", core.EXT4DR(device.PlainSSD())},
		{"dual", core.BFSDR(device.PlainSSD())},
	} {
		mk := mk
		b.Run(mk.name, func(b *testing.B) {
			var ops float64
			for n := 0; n < b.N; n++ {
				k := sim.NewKernel()
				s := core.NewStack(k, mk.prof)
				cfg := workload.DefaultDWSL(8)
				cfg.Duration, cfg.Warmup = 60*sim.Millisecond, 10*sim.Millisecond
				ops = workload.DWSL(k, s, cfg).OpsPerS
				k.Close()
			}
			b.ReportMetric(ops, "ops/s")
		})
	}
}
