// Command benchdiff compares two `go test -bench` output files and fails
// when a benchmark's metric regressed beyond a threshold. CI uses it to
// gate the simulator's wall-clock trajectory: the previous run's artifact
// is the baseline, and a >15% regression in BenchmarkKV ns/op fails the
// job, while improvements and missing baselines only report.
//
// Usage:
//
//	benchdiff -bench BenchmarkKV -metric ns/op -threshold 15 old.txt new.txt
//
// Benchmarks present in only one file are reported and ignored by the
// gate. A missing or empty baseline file reports and exits 0, so the first
// run of a new pipeline cannot fail.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func parse(path, prefix, metric string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], prefix) {
			continue
		}
		// name iterations (value unit)...
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != metric {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			// With -count=N, keep the best (minimum) run: wall-clock noise
			// on shared CI runners only ever inflates the number.
			if prev, ok := out[fields[0]]; !ok || v < prev {
				out[fields[0]] = v
			}
		}
	}
	return out, sc.Err()
}

func main() {
	bench := flag.String("bench", "BenchmarkKV", "benchmark name prefix to compare")
	metric := flag.String("metric", "ns/op", "metric unit to compare")
	threshold := flag.Float64("threshold", 15, "max regression percent before failing")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.txt new.txt")
		os.Exit(2)
	}
	old, err := parse(flag.Arg(0), *bench, *metric)
	if err != nil || len(old) == 0 {
		fmt.Printf("benchdiff: no baseline %s %s in %s (%v) — report-only run\n",
			*bench, *metric, flag.Arg(0), err)
		return
	}
	cur, err := parse(flag.Arg(1), *bench, *metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading %s: %v\n", flag.Arg(1), err)
		os.Exit(2)
	}
	failed := false
	for name, ov := range old {
		nv, ok := cur[name]
		if !ok {
			fmt.Printf("%-45s baseline-only (%.0f %s)\n", name, ov, *metric)
			continue
		}
		delta := (nv - ov) / ov * 100
		mark := "ok"
		if delta > *threshold {
			mark = fmt.Sprintf("REGRESSION (> %.0f%%)", *threshold)
			failed = true
		}
		fmt.Printf("%-45s %14.0f -> %14.0f %s  %+7.1f%%  %s\n",
			name, ov, nv, *metric, delta, mark)
	}
	for name, nv := range cur {
		if _, ok := old[name]; !ok {
			fmt.Printf("%-45s new benchmark (%.0f %s)\n", name, nv, *metric)
		}
	}
	if failed {
		fmt.Printf("benchdiff: %s %s regressed beyond %.0f%%\n", *bench, *metric, *threshold)
		os.Exit(1)
	}
}
