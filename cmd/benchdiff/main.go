// Command benchdiff compares two `go test -bench` output files and fails
// when a benchmark's metric regressed beyond a threshold. CI uses it to
// gate the simulator's wall-clock trajectory: the previous run's artifact
// is the baseline, and a >15% regression in BenchmarkKV ns/op fails the
// job, while improvements and missing baselines only report.
//
// Usage:
//
//	benchdiff -bench BenchmarkKV -metric ns/op -threshold 15 old.txt new.txt
//
// -gate-allocs additionally gates allocs/op (off by default): the
// steady-state command path is allocation-free by design, so CI can
// tighten the allocation wins once the baseline artifact carries
// -benchmem numbers. Allocation counts are exact and noise-free, so the
// allocs gate supports a much tighter threshold (-allocs-threshold,
// default 1%).
//
// Benchmarks present in only one file are reported and ignored by the
// gate. A missing or empty baseline file reports and exits 0, so the first
// run of a new pipeline cannot fail.
//
// With -db, benchdiff instead gates cells of the repro perf-trajectory
// database (`repro record`'s bench.db): the latest recorded run against
// the one before it, over every cell matching -cell, with -direction
// naming which way is a regression:
//
//	benchdiff -db bench.db -cell 'kv/*/ops_per_s' -direction down -threshold 10
//	benchdiff -db bench.db -cell 'kv/*/p99_ms' -direction up -threshold 25
//	benchdiff -db bench.db -cell 'crashmc/*/states_explored' -direction down -threshold 0
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func parse(path, prefix, metric string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], prefix) {
			continue
		}
		// name iterations (value unit)...
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != metric {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			// With -count=N, keep the best (minimum) run: wall-clock noise
			// on shared CI runners only ever inflates the number.
			if prev, ok := out[fields[0]]; !ok || v < prev {
				out[fields[0]] = v
			}
		}
	}
	return out, sc.Err()
}

// gate compares one metric across the two files and reports whether any
// benchmark regressed beyond the threshold. A missing baseline for the
// metric reports and passes (first runs and baselines without -benchmem
// cannot fail). Benchmark-set mismatches are metric-independent, so only
// the first gate of a run prints them (reportSets).
func gate(oldPath, newPath, bench, metric string, threshold float64, reportSets bool) bool {
	old, err := parse(oldPath, bench, metric)
	if err != nil || len(old) == 0 {
		fmt.Printf("benchdiff: no baseline %s %s in %s (%v) — report-only run\n",
			bench, metric, oldPath, err)
		return false
	}
	cur, err := parse(newPath, bench, metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading %s: %v\n", newPath, err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		// The baseline carries this metric but the new run does not (e.g.
		// -benchmem dropped from the bench step): the gate cannot compare
		// anything, and silence would read as a pass. Say so.
		fmt.Printf("benchdiff: baseline has %s %s but %s has none — gate disarmed, check the bench invocation\n",
			bench, metric, newPath)
		return false
	}
	failed := false
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ov := old[name]
		nv, ok := cur[name]
		if !ok {
			if reportSets {
				fmt.Printf("%-45s baseline-only (%.0f %s)\n", name, ov, metric)
			}
			continue
		}
		delta := 0.0
		regressed := false
		if ov != 0 {
			delta = (nv - ov) / ov * 100
			regressed = delta > threshold
		} else if nv > 0 {
			// A zero baseline regressing to nonzero is an unbounded-percent
			// regression (e.g. an allocation-free path now allocating): it
			// fails regardless of the threshold.
			delta = math.Inf(1)
			regressed = true
		}
		mark := "ok"
		if regressed {
			mark = fmt.Sprintf("REGRESSION (> %.0f%%)", threshold)
			failed = true
		}
		fmt.Printf("%-45s %14.0f -> %14.0f %s  %+7.1f%%  %s\n",
			name, ov, nv, metric, delta, mark)
	}
	if reportSets {
		added := make([]string, 0, len(cur))
		for name := range cur {
			if _, ok := old[name]; !ok {
				added = append(added, name)
			}
		}
		sort.Strings(added)
		for _, name := range added {
			fmt.Printf("%-45s new benchmark (%.0f %s)\n", name, cur[name], metric)
		}
	}
	if failed {
		fmt.Printf("benchdiff: %s %s regressed beyond %.0f%%\n", bench, metric, threshold)
	}
	return failed
}

func main() {
	bench := flag.String("bench", "BenchmarkKV", "benchmark name prefix to compare")
	metric := flag.String("metric", "ns/op", "metric unit to compare")
	threshold := flag.Float64("threshold", 15, "max regression percent before failing")
	gateAllocs := flag.Bool("gate-allocs", false, "additionally gate allocs/op")
	allocsThreshold := flag.Float64("allocs-threshold", 1, "max allocs/op regression percent before failing (with -gate-allocs)")
	dbPath := flag.String("db", "", "gate against this repro results database instead of two bench files")
	cellGlob := flag.String("cell", "*", "database cells to gate ('*' matches anything; with -db)")
	direction := flag.String("direction", "up", "which way is a regression: up or down (with -db)")
	flag.Parse()
	if *dbPath != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: benchdiff -db bench.db [-cell GLOB] [-direction up|down] [-threshold PCT]")
			os.Exit(2)
		}
		if gateDB(*dbPath, *cellGlob, *direction, *threshold) {
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] old.txt new.txt")
		os.Exit(2)
	}
	failed := gate(flag.Arg(0), flag.Arg(1), *bench, *metric, *threshold, true)
	if *gateAllocs {
		failed = gate(flag.Arg(0), flag.Arg(1), *bench, "allocs/op", *allocsThreshold, false) || failed
	}
	if failed {
		os.Exit(1)
	}
}
