package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Database gate: with -db, benchdiff compares the latest recorded run in
// the repro perf-trajectory database (see `repro record`) against the run
// before it, over every cell matching -cell. -direction says which way is
// a regression: "up" for metrics where growth is bad (ns/op, p99, allocs),
// "down" for metrics where shrinkage is bad (IOPS, crashmc states
// explored). Fewer than two recorded runs reports and passes, so a fresh
// database cannot fail CI.

// dbRun mirrors the cmd/repro record line; only the fields the gate reads.
type dbRun struct {
	Label  string             `json:"label"`
	Commit string             `json:"commit"`
	Cells  map[string]float64 `json:"cells"`
}

func readDB(path string) ([]dbRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var runs []dbRun
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r dbRun
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%s: bad run line: %v", path, err)
		}
		runs = append(runs, r)
	}
	return runs, sc.Err()
}

// gateDB compares the last two recorded runs over cells matching the glob.
// Returns true when any matched cell moved in the regression direction by
// more than threshold percent.
func gateDB(dbPath, cellGlob, direction string, threshold float64) bool {
	runs, err := readDB(dbPath)
	if err != nil || len(runs) < 2 {
		fmt.Printf("benchdiff: %s has %d recorded runs (%v) — need 2, report-only\n",
			dbPath, len(runs), err)
		return false
	}
	prev, cur := runs[len(runs)-2], runs[len(runs)-1]
	pat, err := regexp.Compile("^" + strings.ReplaceAll(regexp.QuoteMeta(cellGlob), `\*`, ".*") + "$")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -cell glob %q: %v\n", cellGlob, err)
		os.Exit(2)
	}
	sign := 1.0 // "up": positive delta is a regression
	if direction == "down" {
		sign = -1
	} else if direction != "up" {
		fmt.Fprintf(os.Stderr, "benchdiff: -direction must be up or down, got %q\n", direction)
		os.Exit(2)
	}

	var cells, added []string
	for name := range prev.Cells {
		if pat.MatchString(name) {
			cells = append(cells, name)
		}
	}
	for name := range cur.Cells {
		if _, ok := prev.Cells[name]; !ok && pat.MatchString(name) {
			added = append(added, name)
		}
	}
	sort.Strings(cells)
	sort.Strings(added)
	if len(cells) == 0 && len(added) == 0 {
		fmt.Printf("benchdiff: no cells in %s (runs %q, %q) match %q — report-only\n",
			dbPath, prev.Label, cur.Label, cellGlob)
		return false
	}
	fmt.Printf("benchdiff: %s vs %s, %d cells ~ %q, regression = %s > %.0f%%\n",
		prev.Label, cur.Label, len(cells), cellGlob, direction, threshold)
	failed := false
	for _, name := range cells {
		ov := prev.Cells[name]
		nv, ok := cur.Cells[name]
		if !ok {
			fmt.Printf("%-55s baseline-only (%.6g)\n", name, ov)
			continue
		}
		var delta float64
		regressed := false
		switch {
		case ov != 0:
			delta = (nv - ov) / ov * 100
			regressed = sign*delta > threshold
		case nv != 0:
			// From-zero movement has no percentage; only flag it when it
			// moves the bad way (e.g. a violation count appearing).
			delta = 0
			regressed = sign*nv > 0
		}
		mark := "ok"
		if regressed {
			mark = fmt.Sprintf("REGRESSION (%s > %.0f%%)", direction, threshold)
			failed = true
		}
		fmt.Printf("%-55s %14.6g -> %14.6g  %+7.1f%%  %s\n", name, ov, nv, delta, mark)
	}
	for _, name := range added {
		fmt.Printf("%-55s new cell (%.6g)\n", name, cur.Cells[name])
	}
	if failed {
		fmt.Printf("benchdiff: cells ~ %q regressed beyond %.0f%% (%s)\n",
			cellGlob, threshold, direction)
	}
	return failed
}
