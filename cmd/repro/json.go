package main

import (
	"encoding/json"
	"os"
	"time"

	"repro/internal/experiments"
)

// jsonReport is the -json output: one entry per experiment with its
// machine-readable rows, plus enough run metadata to compare trajectory
// files across machines and PRs.
type jsonReport struct {
	GeneratedAt string           `json:"generated_at"`
	Commit      string           `json:"commit,omitempty"`
	GoVersion   string           `json:"go_version,omitempty"`
	Host        string           `json:"host,omitempty"`
	Scale       string           `json:"scale"`
	Parallel    bool             `json:"parallel"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	WallSeconds float64          `json:"wall_seconds"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	Name        string           `json:"name"`
	WallSeconds float64          `json:"wall_seconds"`
	Rows        []map[string]any `json:"rows,omitempty"`
}

func writeJSON(path string, r jsonReport) error {
	r.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fig1JSON(r experiments.Fig1Result) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"device": row.Device, "channels": row.Channels,
			"buffered_iops": row.BufferedIOPS, "ordered_iops": row.OrderedIOPS,
			"ratio_percent": row.RatioPercent,
		})
	}
	return rows
}

func fig8JSON(r experiments.Fig8Result) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"mode": row.Mode, "interval_us": row.IntervalUs, "commits_per_s": row.CommitsPS,
		})
	}
	return rows
}

func fig9JSON(r experiments.Fig9Result) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"device": row.Device, "policy": row.Result.Policy.String(),
			"iops": row.Result.IOPS, "mean_qd": row.Result.MeanQD, "peak_qd": row.Result.PeakQD,
		})
	}
	return rows
}

func fig10JSON(rs []experiments.Fig10Result) []map[string]any {
	rows := make([]map[string]any, 0, len(rs))
	for _, r := range rs {
		rows = append(rows, map[string]any{
			"device": r.Device, "wot_mean_qd": r.XMeanQD, "barrier_mean_qd": r.BMeanQD,
		})
	}
	return rows
}

func table1JSON(r experiments.Table1Result) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"device": row.Device, "fs": row.FS,
			"mean_ms": row.Summary.Mean, "p50_ms": row.Summary.Median,
			"p99_ms": row.Summary.P99, "p999_ms": row.Summary.P999, "p9999_ms": row.Summary.P9999,
		})
	}
	return rows
}

func fig11JSON(r experiments.Fig11Result) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"device": row.Device, "config": row.Config, "switches_per_sync": row.Switches,
		})
	}
	return rows
}

func fig12JSON(r experiments.Fig12Result) []map[string]any {
	return []map[string]any{{
		"fsync_peak_qd": r.FsyncPeakQD, "fbarrier_peak_qd": r.FbarrierPeakQD,
	}}
}

func fig13JSON(r experiments.Fig13Result) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"device": row.Device, "fs": row.FS, "threads": row.Threads, "ops_per_s": row.OpsPerS,
		})
	}
	return rows
}

func fig14JSON(r experiments.Fig14Result) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"device": row.Device, "config": row.Config, "journal_mode": row.Mode.String(),
			"tx_per_s": row.TxPerSec, "p50_ms": row.P50, "p99_ms": row.P99,
		})
	}
	return rows
}

func fig15JSON(r experiments.Fig15Result) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"device": row.Device, "workload": row.Workload, "config": row.Config,
			"per_s": row.PerSec, "p50_ms": row.P50, "p99_ms": row.P99,
		})
	}
	return rows
}

func mqJSON(r experiments.MQScalingResult) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows)+len(r.FS))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"streams": row.Streams, "hw_queues": row.HWQueues, "layer": row.Config,
			"iops": row.IOPS, "epochs_closed": row.EpochsClosed, "speedup": row.Speedup,
		})
	}
	for _, row := range r.FS {
		rows = append(rows, map[string]any{
			"config": row.Config, "fg_fdatasync_per_s": row.OpsPerS,
		})
	}
	return rows
}

func kvclusterJSON(r experiments.KVClusterResult) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"config": row.Config, "mode": row.Mode,
			"shards": row.Shards, "offered_kops": row.OfferedKops,
			"offered_per_s": row.OfferedPerS, "goodput_per_s": row.GoodputPerS,
			"slo_pct": row.SLOPct, "shed_pct": row.ShedPct,
			"p50_ms": row.P50, "p99_ms": row.P99, "p999_ms": row.P999,
		})
	}
	return rows
}

func whyslowJSON(r experiments.WhySlowResult) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"config": row.Config, "offered_kops": row.OfferedKops,
			"level": row.Level, "stage": row.Stage,
			"mean_ms": row.MeanMs, "p50_ms": row.P50Ms, "p99_ms": row.P99Ms,
			"share_pct": row.SharePct, "exemplars": row.Exemplars,
		})
	}
	return rows
}

func faultsJSON(r experiments.FaultsResult) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"config": row.Config, "mix": row.Mix,
			"shards": row.Shards, "replicas": row.Replicas,
			"offered_per_s": row.OfferedPerS, "goodput_per_s": row.GoodputPerS,
			"slo_pct": row.SLOPct, "shed_pct": row.ShedPct, "p99_ms": row.P99,
			"retries": row.Retries, "io_errors": row.IOErrors,
			"failovers": row.Failovers, "read_repairs": row.ReadRepairs,
		})
	}
	return rows
}

func crashmcJSON(r experiments.CrashMCResult) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"config": row.Config, "crash_at_us": row.CrashAtUs,
			"volatile": row.Volatile, "streams": row.Streams,
			"states_explored": row.States, "images_checked": row.Images,
			"capped": row.Capped, "sampled": row.Sampled,
			"durability_violations":  row.Durability,
			"ordering_violations":    row.Ordering,
			"consistency_violations": row.Consistency,
			"violation_states":       row.ViolationStates,
		})
	}
	return rows
}

func rebalanceJSON(r experiments.RebalanceResult) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"config": row.Config, "scenario": row.Scenario, "phase": row.Phase,
			"shards": row.Shards, "replicas": row.Replicas,
			"goodput_per_s": row.GoodputPerS, "p99_ms": row.P99,
			"shed_pct": row.ShedPct, "keys_moved": row.KeysMoved,
			"dual_writes": row.DualWrites, "cutovers": row.Cutovers,
			"aborts": row.Aborts, "acked_keys": row.AckedKeys,
			"acked_lost": row.AckedLost,
		})
	}
	return rows
}

func fsreplayJSON(r experiments.FSReplayResult) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"config": row.Config, "shards": row.Shards, "trace_rows": row.TraceRows,
			"offered_per_s": row.OfferedPerS, "goodput_per_s": row.GoodputPerS,
			"slo_pct": row.SLOPct, "shed_pct": row.ShedPct,
			"p50_ms": row.P50, "p99_ms": row.P99,
		})
	}
	return rows
}

func kvJSON(r experiments.KVResult) []map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows)+len(r.Crash))
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"config": row.Config, "clients": row.Clients,
			"ops_per_s": row.OpsPerS, "ops_per_group": row.GroupMean,
			"p50_ms": row.P50, "p99_ms": row.P99, "p999_ms": row.P999,
		})
	}
	for _, c := range r.Crash {
		rows = append(rows, map[string]any{
			"config": c.Config, "crash_trials": c.Trials, "crash_violations": c.Violations,
		})
	}
	return rows
}
