package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/sim"
)

// crashReport runs the filesystem-level crash-consistency sweep: durability
// audits on the -DR stacks, ordering audits on the -OD stacks, and the
// legacy-device control that is expected to violate ordering.
func crashReport(scale experiments.Scale) (string, []map[string]any) {
	n := 6
	if scale == experiments.Full {
		n = 20
	}
	var times []sim.Time
	for i := 1; i <= n; i++ {
		times = append(times, sim.Time(sim.Duration(i*i)*500*sim.Microsecond))
	}
	out := "== Crash consistency sweep ==\n"
	var rows []map[string]any
	for _, c := range []struct {
		label string
		prof  core.Profile
		kind  string
	}{
		{"BFS-DR durability (plain-SSD)", core.BFSDR(device.PlainSSD()), "durability"},
		{"BFS-OD ordering (plain-SSD)", core.BFSOD(device.PlainSSD()), "ordering"},
		{"BFS-OD ordering (UFS)", core.BFSOD(device.UFS()), "ordering"},
		{"EXT4-DR durability (plain-SSD)", core.EXT4DR(device.PlainSSD()), "durability"},
		{"EXT4-OD ordering (legacy dev; EXPECTED to violate)", core.EXT4OD(device.LegacySSD()), "ordering"},
	} {
		fails := 0
		for _, rep := range crashtest.Sweep(c.prof, c.kind, times) {
			if !rep.Ok() {
				fails++
			}
		}
		out += fmt.Sprintf("%-52s %d/%d crash points violated\n", c.label, fails, len(times))
		rows = append(rows, map[string]any{
			"case": c.label, "kind": c.kind, "trials": len(times), "violations": fails,
		})
	}
	return out, rows
}
