package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The perf-trajectory database is an append-only JSONL file (bench.db by
// default): one line per recorded run, each run flattened into named cells.
// A cell is `<experiment>/<key=value,...>/<metric>` — e.g.
// `kv/clients=4,config=BFS-DR/ops_per_s` — so the same logical measurement
// keeps the same name across history and `repro trend` / `benchdiff -db`
// can line runs up column by column.

// dbRun is one recorded line of the database.
type dbRun struct {
	RecordedAt  string             `json:"recorded_at"`
	Label       string             `json:"label"`
	Source      string             `json:"source"`
	Commit      string             `json:"commit,omitempty"`
	GoVersion   string             `json:"go_version,omitempty"`
	Host        string             `json:"host,omitempty"`
	Scale       string             `json:"scale"`
	Parallel    bool               `json:"parallel"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	WallSeconds float64            `json:"wall_seconds"`
	Cells       map[string]float64 `json:"cells"`
}

// keyFieldInts are the numeric row fields that identify a sweep cell rather
// than measure it (sweep axes: client count, stream count, crash time, ...).
// String fields are always identity; remaining numerics are metrics.
var keyFieldInts = map[string]bool{
	"clients": true, "streams": true, "hw_queues": true, "threads": true,
	"channels": true, "crash_at_us": true, "shards": true, "offered_kops": true,
	"replicas": true,
}

// cellKey renders one row's identity: sorted key=value pairs.
func cellKey(row map[string]any) string {
	var parts []string
	for f, v := range row {
		switch v := v.(type) {
		case string:
			parts = append(parts, f+"="+v)
		case float64:
			if keyFieldInts[f] {
				parts = append(parts, f+"="+strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// flattenCells turns a -json report into the run's cell map.
func flattenCells(rep jsonReport) map[string]float64 {
	cells := make(map[string]float64)
	for _, exp := range rep.Experiments {
		cells[exp.Name+"//wall_seconds"] = exp.WallSeconds
		for _, row := range exp.Rows {
			key := cellKey(row)
			for f, v := range row {
				switch v := v.(type) {
				case float64:
					if !keyFieldInts[f] {
						cells[exp.Name+"/"+key+"/"+f] = v
					}
				case bool:
					// capped/sampled flags: record as 0/1 so a cap kicking
					// in (and invalidating state counts) is itself visible.
					b := 0.0
					if v {
						b = 1
					}
					cells[exp.Name+"/"+key+"/"+f] = b
				}
			}
		}
	}
	return cells
}

// readDB loads every run line of the database, oldest first. A missing file
// is an empty history, not an error.
func readDB(path string) ([]dbRun, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var runs []dbRun
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r dbRun
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%s: bad run line: %v", path, err)
		}
		runs = append(runs, r)
	}
	return runs, sc.Err()
}

// cmdRecord appends -json run files to the database. The run's commit/go
// version/host come from the report header when present (repro -json writes
// them since PR 6); -commit overrides for older snapshots.
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	dbPath := fs.String("db", "bench.db", "append-only results database (JSONL)")
	label := fs.String("label", "", "run label (default: source file basename)")
	commit := fs.String("commit", "", "override the recorded commit hash")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("record: no -json run files given")
	}
	if *label != "" && fs.NArg() > 1 {
		return fmt.Errorf("record: -label only applies to a single run file")
	}
	f, err := os.OpenFile(*dbPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, src := range fs.Args() {
		b, err := os.ReadFile(src)
		if err != nil {
			return err
		}
		var rep jsonReport
		if err := json.Unmarshal(b, &rep); err != nil {
			return fmt.Errorf("%s: %v", src, err)
		}
		run := dbRun{
			RecordedAt:  time.Now().UTC().Format(time.RFC3339),
			Label:       *label,
			Source:      src,
			Commit:      rep.Commit,
			GoVersion:   rep.GoVersion,
			Host:        rep.Host,
			Scale:       rep.Scale,
			Parallel:    rep.Parallel,
			GoMaxProcs:  rep.GoMaxProcs,
			WallSeconds: rep.WallSeconds,
			Cells:       flattenCells(rep),
		}
		if run.Label == "" {
			run.Label = strings.TrimSuffix(filepath.Base(src), filepath.Ext(src))
		}
		if *commit != "" {
			run.Commit = *commit
		}
		line, err := json.Marshal(run)
		if err != nil {
			return err
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			return err
		}
		fmt.Printf("recorded %s: %d cells as %q into %s\n",
			src, len(run.Cells), run.Label, *dbPath)
	}
	return nil
}

// cellPattern compiles a benchdiff/trend-style glob ('*' matches anything)
// into an anchored regexp.
func cellPattern(glob string) (*regexp.Regexp, error) {
	return regexp.Compile("^" + strings.ReplaceAll(regexp.QuoteMeta(glob), `\*`, ".*") + "$")
}

// cmdTrend prints the cross-history table: one row per cell, one column per
// recorded run, oldest left.
func cmdTrend(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	dbPath := fs.String("db", "bench.db", "results database to read")
	cellGlob := fs.String("cell", "*", "only show cells matching this glob")
	last := fs.Int("last", 0, "only show the last N runs (0 = all)")
	band := fs.Bool("band", false, "append each cell's noise band (min/median/max over the shown runs)")
	fs.Parse(args)
	runs, err := readDB(*dbPath)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		fmt.Printf("trend: %s has no recorded runs\n", *dbPath)
		return nil
	}
	if *last > 0 && len(runs) > *last {
		runs = runs[len(runs)-*last:]
	}
	pat, err := cellPattern(*cellGlob)
	if err != nil {
		return err
	}
	cellSet := make(map[string]bool)
	for _, r := range runs {
		for name := range r.Cells {
			if pat.MatchString(name) {
				cellSet[name] = true
			}
		}
	}
	cells := make([]string, 0, len(cellSet))
	for name := range cellSet {
		cells = append(cells, name)
	}
	sort.Strings(cells)
	if len(cells) == 0 {
		fmt.Printf("trend: no cells match %q\n", *cellGlob)
		return nil
	}

	nameW := len("cell")
	for _, c := range cells {
		if len(c) > nameW {
			nameW = len(c)
		}
	}
	const colW = 14
	fmt.Printf("%-*s", nameW, "cell")
	for _, r := range runs {
		fmt.Printf("  %*s", colW, clip(r.Label, colW))
	}
	if *band {
		fmt.Printf("  %*s", colW, "min/med/max")
	}
	fmt.Println()
	for _, c := range cells {
		fmt.Printf("%-*s", nameW, c)
		var vals []float64
		for _, r := range runs {
			v, ok := r.Cells[c]
			if !ok {
				fmt.Printf("  %*s", colW, "-")
			} else {
				fmt.Printf("  %*s", colW, trimNum(v))
				vals = append(vals, v)
			}
		}
		if *band {
			fmt.Printf("  %*s", colW, noiseBand(vals))
		}
		fmt.Println()
	}
	return nil
}

// noiseBand renders a cell's spread across the shown runs: min/median/max.
// One recorded value has no spread yet; an absent cell has no band at all.
func noiseBand(vals []float64) string {
	if len(vals) == 0 {
		return "-"
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	min, max := sorted[0], sorted[len(sorted)-1]
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	return fmt.Sprintf("%s/%s/%s", trimNum(min), trimNum(med), trimNum(max))
}

func clip(s string, w int) string {
	if len(s) > w {
		return s[:w]
	}
	return s
}

// trimNum renders a cell value compactly: integers without a fraction,
// everything else with enough digits to compare.
func trimNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
