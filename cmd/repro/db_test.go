package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFlattenCells(t *testing.T) {
	rep := jsonReport{
		Experiments: []jsonExperiment{{
			Name:        "kv",
			WallSeconds: 1.5,
			Rows: []map[string]any{
				{"config": "BFS-DR", "clients": 4.0, "ops_per_s": 54000.0, "p99_ms": 2.0},
				{"config": "EXT4-DR", "clients": 4.0, "ops_per_s": 31200.0, "p99_ms": 0.9},
			},
		}, {
			Name: "crashmc",
			Rows: []map[string]any{
				{"config": "BFS-OD", "crash_at_us": 1200.0, "states_explored": 65.0, "capped": false},
			},
		}},
	}
	cells := flattenCells(rep)
	want := map[string]float64{
		"kv//wall_seconds":                                       1.5,
		"crashmc//wall_seconds":                                  0,
		"kv/clients=4,config=BFS-DR/ops_per_s":                   54000,
		"kv/clients=4,config=EXT4-DR/p99_ms":                     0.9,
		"crashmc/config=BFS-OD,crash_at_us=1200/states_explored": 65,
		"crashmc/config=BFS-OD,crash_at_us=1200/capped":          0,
	}
	for name, v := range want {
		got, ok := cells[name]
		if !ok {
			t.Errorf("missing cell %s (have %d cells)", name, len(cells))
			continue
		}
		if got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	// Key fields must not leak into metrics.
	for _, bad := range []string{
		"kv/clients=4,config=BFS-DR/clients",
		"kv/clients=4,config=BFS-DR/config",
	} {
		if _, ok := cells[bad]; ok {
			t.Errorf("key field recorded as a metric cell: %s", bad)
		}
	}
}

func TestRecordAndReadDB(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "run.json")
	if err := os.WriteFile(src, []byte(`{
		"scale": "quick", "parallel": true, "gomaxprocs": 8,
		"commit": "abc123", "wall_seconds": 2.5,
		"experiments": [{"name": "kv", "wall_seconds": 1,
			"rows": [{"config": "BFS-DR", "clients": 2, "ops_per_s": 49466.7}]}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	db := filepath.Join(dir, "bench.db")
	if err := cmdRecord([]string{"-db", db, src}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRecord([]string{"-db", db, "-label", "second", src}); err != nil {
		t.Fatal(err)
	}
	runs, err := readDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	if runs[0].Label != "run" || runs[1].Label != "second" {
		t.Errorf("labels = %q, %q", runs[0].Label, runs[1].Label)
	}
	if runs[0].Commit != "abc123" || runs[0].Scale != "quick" || runs[0].GoMaxProcs != 8 {
		t.Errorf("header not carried through: %+v", runs[0])
	}
	if v := runs[0].Cells["kv/clients=2,config=BFS-DR/ops_per_s"]; v != 49466.7 {
		t.Errorf("cell = %v", v)
	}
	// Missing database is an empty history, not an error.
	none, err := readDB(filepath.Join(dir, "nope.db"))
	if err != nil || none != nil {
		t.Errorf("missing db: runs=%v err=%v", none, err)
	}
}

func TestFlattenCellsKVCluster(t *testing.T) {
	rep := jsonReport{
		Experiments: []jsonExperiment{{
			Name: "kvcluster",
			Rows: []map[string]any{{
				"config": "BFS-DR", "mode": "sharded",
				"shards": 2.0, "offered_kops": 160.0,
				"goodput_per_s": 150900.0, "p99_ms": 1.95,
			}},
		}},
	}
	cells := flattenCells(rep)
	const key = "kvcluster/config=BFS-DR,mode=sharded,offered_kops=160,shards=2/goodput_per_s"
	if got := cells[key]; got != 150900 {
		t.Errorf("%s = %v, want 150900 (have %v)", key, got, cells)
	}
	// shards/offered_kops are identity, not metrics.
	for name := range cells {
		if name == "kvcluster/config=BFS-DR,mode=sharded,offered_kops=160,shards=2/shards" {
			t.Errorf("identity field recorded as metric: %s", name)
		}
	}
}

func TestNoiseBand(t *testing.T) {
	for _, tc := range []struct {
		vals []float64
		want string
	}{
		{nil, "-"},
		{[]float64{3}, "3/3/3"},
		{[]float64{4, 1, 3}, "1/3/4"},
		{[]float64{4, 1, 3, 2}, "1/2.5/4"},
	} {
		if got := noiseBand(tc.vals); got != tc.want {
			t.Errorf("noiseBand(%v) = %q, want %q", tc.vals, got, tc.want)
		}
	}
}
