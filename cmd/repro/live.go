package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/par"
)

// Live-stats mode: -live streams a one-line snapshot of the sweep to stderr
// every interval, and -live-http serves the full registry snapshot plus
// progress as JSON. Both install a process-wide metrics.Registry, which
// every stack layer then registers its instruments into (see
// metrics.Resolve); without either flag no registry exists and the
// instrument calls stay on their nil fast path.

type liveStats struct {
	reg  *metrics.Registry
	srv  *http.Server
	stop chan struct{}
	done chan struct{}
}

// headline is the subset of registry samples worth a terminal line: one
// cumulative figure per stack layer plus the crash-sweep counters the
// long-running experiments are dominated by.
var headline = []string{
	"device/writes", "blkmq/dispatched", "jbd/commits",
	"fs/pdflush.runs", "kvwal/group.commits",
	"crashmc/states", "crashtest/trials",
}

func startLive(interval time.Duration, httpAddr string) (*liveStats, error) {
	ls := &liveStats{
		reg:  metrics.NewRegistry(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	metrics.SetLive(ls.reg)
	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", ls.serveMetrics)
		mux.HandleFunc("/", ls.serveMetrics)
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return nil, fmt.Errorf("live-http: %v", err)
		}
		fmt.Fprintf(os.Stderr, "repro: live stats at http://%s/metrics\n", ln.Addr())
		ls.srv = &http.Server{Handler: mux}
		go ls.srv.Serve(ln)
	}
	go ls.loop(interval)
	return ls, nil
}

// loop prints the stderr line. With -live unset (interval 0) the goroutine
// just waits for shutdown so -live-http can run alone.
func (ls *liveStats) loop(interval time.Duration) {
	defer close(ls.done)
	if interval <= 0 {
		<-ls.stop
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ls.stop:
			return
		case <-tick.C:
			fmt.Fprintln(os.Stderr, ls.line())
		}
	}
}

// line renders the one-line stderr snapshot.
func (ls *liveStats) line() string {
	done, total := par.Progress()
	var b strings.Builder
	fmt.Fprintf(&b, "live: cells %d/%d", done, total)
	samples := ls.reg.Snapshot()
	byName := make(map[string]float64, len(samples))
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	for _, name := range headline {
		if v, ok := byName[name]; ok && v != 0 {
			fmt.Fprintf(&b, "  %s=%s", name, trimNum(v))
		}
	}
	// kvcluster shards register per-shard admission instruments under a
	// "kvcluster/shard=<i>/" prefix; the stderr line carries their
	// cluster-wide sums (the per-shard breakdown is on -live-http).
	var admitted, shed, inflight float64
	for _, s := range samples {
		if !strings.HasPrefix(s.Name, "kvcluster/shard=") {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "/admitted"):
			admitted += s.Value
		case strings.HasSuffix(s.Name, "/shed"):
			shed += s.Value
		case strings.HasSuffix(s.Name, "/inflight"):
			inflight += s.Value
		}
	}
	if admitted != 0 {
		fmt.Fprintf(&b, "  kvcluster/admitted=%s", trimNum(admitted))
	}
	if shed != 0 {
		fmt.Fprintf(&b, "  kvcluster/shed=%s", trimNum(shed))
	}
	if inflight != 0 {
		fmt.Fprintf(&b, "  kvcluster/inflight=%s", trimNum(inflight))
	}
	return b.String()
}

// liveSnapshot is the /metrics JSON body.
type liveSnapshot struct {
	CellsDone  int64            `json:"cells_done"`
	CellsTotal int64            `json:"cells_total"`
	Samples    []metrics.Sample `json:"samples"`
}

func (ls *liveStats) serveMetrics(w http.ResponseWriter, r *http.Request) {
	done, total := par.Progress()
	snap := liveSnapshot{CellsDone: done, CellsTotal: total, Samples: ls.reg.Snapshot()}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

// shutdown stops the ticker and server and prints a final snapshot line so
// short runs still show their totals.
func (ls *liveStats) shutdown() {
	close(ls.stop)
	<-ls.done
	if ls.srv != nil {
		ls.srv.Close()
	}
	fmt.Fprintln(os.Stderr, ls.line())
}
