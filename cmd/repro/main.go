// Command repro regenerates the tables and figures of "Barrier-Enabled IO
// Stack for Flash Storage" (FAST '18) on the simulated stack.
//
// Usage:
//
//	repro [-quick] [experiment ...]
//
// Experiments: fig1 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 table1
// mq kv crash all. With no arguments, runs `all`. The `mq` experiment is
// the multi-queue scaling table (per-stream epochs vs the global total
// order) added on top of the paper's evaluation; `kv` is the barrier-
// enabled key-value store (internal/kvwal): group-commit throughput and
// latency across stacks plus its crash-consistency sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "run shortened experiments")
	flag.Parse()
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	for _, name := range args {
		if err := run(name, scale); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
}

func run(name string, scale experiments.Scale) error {
	all := name == "all"
	ran := false
	emit := func(s string) {
		fmt.Println(s)
		ran = true
	}
	if all || name == "fig1" {
		emit(experiments.Fig1(scale).String())
	}
	if all || name == "fig8" {
		emit(experiments.Fig8(scale).String())
	}
	if all || name == "fig9" {
		emit(experiments.Fig9(scale).String())
	}
	if all || name == "fig10" {
		emit(experiments.RenderFig10(experiments.Fig10(scale)))
	}
	if all || name == "table1" {
		emit(experiments.Table1(scale).String())
	}
	if all || name == "fig11" {
		emit(experiments.Fig11(scale).String())
	}
	if all || name == "fig12" {
		emit(experiments.Fig12(scale).String())
	}
	if all || name == "fig13" {
		emit(experiments.Fig13(scale).String())
	}
	if all || name == "fig14" {
		emit(experiments.Fig14(scale).String())
	}
	if all || name == "fig15" {
		emit(experiments.Fig15(scale).String())
	}
	if all || name == "mq" {
		emit(experiments.MQScaling(scale).String())
	}
	if all || name == "kv" {
		emit(experiments.KV(scale).String())
	}
	if all || name == "crash" {
		emit(crashReport(scale))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

func crashReport(scale experiments.Scale) string {
	n := 6
	if scale == experiments.Full {
		n = 20
	}
	var times []sim.Time
	for i := 1; i <= n; i++ {
		times = append(times, sim.Time(sim.Duration(i*i)*500*sim.Microsecond))
	}
	out := "== Crash consistency sweep ==\n"
	for _, c := range []struct {
		label string
		prof  core.Profile
		kind  string
	}{
		{"BFS-DR durability (plain-SSD)", core.BFSDR(device.PlainSSD()), "durability"},
		{"BFS-OD ordering (plain-SSD)", core.BFSOD(device.PlainSSD()), "ordering"},
		{"BFS-OD ordering (UFS)", core.BFSOD(device.UFS()), "ordering"},
		{"EXT4-DR durability (plain-SSD)", core.EXT4DR(device.PlainSSD()), "durability"},
		{"EXT4-OD ordering (legacy dev; EXPECTED to violate)", core.EXT4OD(device.LegacySSD()), "ordering"},
	} {
		fails := 0
		for _, rep := range crashtest.Sweep(c.prof, c.kind, times) {
			if !rep.Ok() {
				fails++
			}
		}
		out += fmt.Sprintf("%-52s %d/%d crash points violated\n", c.label, fails, len(times))
	}
	return out
}
