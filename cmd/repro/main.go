// Command repro regenerates the tables and figures of "Barrier-Enabled IO
// Stack for Flash Storage" (FAST '18) on the simulated stack.
//
// Usage:
//
//	repro [-quick] [-parallel=false] [-json out.json] [-spans trace.json]
//	      [-live 2s] [-live-http :8080]
//	      [-cpuprofile cpu.prof] [-memprofile mem.prof] [experiment ...]
//	repro record [-db bench.db] [-label NAME] [-commit HASH] run.json ...
//	repro trend  [-db bench.db] [-cell GLOB] [-last N] [-band]
//
// Experiments: fig1 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 table1
// mq kv kvcluster faults whyslow crash crashmc rebalance fsreplay all. With
// no arguments, runs `all`. The
// `mq` experiment is the multi-queue scaling table (per-stream epochs vs
// the global total order) added on top of the paper's evaluation; `kv` is
// the barrier-enabled key-value store (internal/kvwal): group-commit
// throughput and latency across stacks plus its crash-consistency sweep;
// `kvcluster` is the sharded KV service (internal/kvcluster) under
// open-loop Zipfian traffic: goodput and latency tail per (engine,
// offered-load) cell at a fixed p99 SLO; `faults` drives the replicated
// cluster through seeded device fault personalities (media errors, GC
// interference) and reports goodput with retry/failover counters;
// `whyslow` runs the service with request-scoped causal tracing on and
// attributes tail latency to stack stages (queue, batch, durability, ack,
// plus the durability window's pipeline sub-stages), per (engine,
// offered-load) cell; `crashmc` is the crash-state
// model checker (internal/crashmc): states-explored and violation counts
// per stack configuration, with EXT4-nobarrier's reachable ordering
// violations as the positive control; `rebalance` resizes the live ring
// under open-loop traffic (N->N+1 and kill+rebuild) and reports the
// goodput/p99 timeline around the migration with the zero-acked-loss
// audit; `fsreplay` replays a recorded JSONL request trace (-trace, or a
// deterministic synthetic recording) through the fs-backed KV service.
//
// Independent sweep cells run one simulation kernel per CPU (disable with
// -parallel=false, e.g. when profiling a single kernel). -json emits the
// machine-readable results — IOPS, latency percentiles, crash-audit counts
// and wall-clock seconds per experiment — that the perf-trajectory
// BENCH_*.json files record, stamped with the commit, go version, and host.
//
// `record` appends -json run files to the append-only bench.db database
// and `trend` prints the cross-history table over it (see db.go).
// -live/-live-http install a process-wide metrics registry and stream
// periodic snapshots — sweep cells done/total, per-layer counters, crashmc
// states — to stderr or an HTTP endpoint while the run is in flight.
// -spans records kernel trace spans for every experiment cell and dumps
// them as Chrome trace_event JSON (load via chrome://tracing or
// https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/par"
	"repro/internal/workload"
)

// runner regenerates one experiment, returning the text rendering and the
// machine-readable rows for -json.
type runner struct {
	name string
	run  func(scale experiments.Scale) (string, []map[string]any)
}

var runners = []runner{
	{"fig1", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig1(s)
		return r.String(), fig1JSON(r)
	}},
	{"fig8", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig8(s)
		return r.String(), fig8JSON(r)
	}},
	{"fig9", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig9(s)
		return r.String(), fig9JSON(r)
	}},
	{"fig10", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig10(s)
		return experiments.RenderFig10(r), fig10JSON(r)
	}},
	{"table1", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Table1(s)
		return r.String(), table1JSON(r)
	}},
	{"fig11", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig11(s)
		return r.String(), fig11JSON(r)
	}},
	{"fig12", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig12(s)
		return r.String(), fig12JSON(r)
	}},
	{"fig13", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig13(s)
		return r.String(), fig13JSON(r)
	}},
	{"fig14", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig14(s)
		return r.String(), fig14JSON(r)
	}},
	{"fig15", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig15(s)
		return r.String(), fig15JSON(r)
	}},
	{"mq", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.MQScaling(s)
		return r.String(), mqJSON(r)
	}},
	{"kv", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.KV(s)
		return r.String(), kvJSON(r)
	}},
	{"kvcluster", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.KVCluster(s)
		return r.String(), kvclusterJSON(r)
	}},
	{"faults", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Faults(s)
		return r.String(), faultsJSON(r)
	}},
	{"whyslow", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.WhySlow(s)
		return r.String(), whyslowJSON(r)
	}},
	{"crash", func(s experiments.Scale) (string, []map[string]any) {
		return crashReport(s)
	}},
	{"crashmc", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.CrashMC(s)
		return r.String(), crashmcJSON(r)
	}},
	{"rebalance", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Rebalance(s)
		return r.String(), rebalanceJSON(r)
	}},
	{"fsreplay", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.FSReplay(s, replayTrace)
		return r.String(), fsreplayJSON(r)
	}},
}

// replayTrace is the -trace recording handed to the replay experiments
// (nil: they fall back to a deterministic synthetic recording).
var replayTrace *workload.Trace

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			exitOn(cmdRecord(os.Args[2:]))
			return
		case "trend":
			exitOn(cmdTrend(os.Args[2:]))
			return
		}
	}
	quick := flag.Bool("quick", false, "run shortened experiments")
	parallel := flag.Bool("parallel", true, "run independent sweep cells on one kernel per CPU")
	jsonPath := flag.String("json", "", "write machine-readable results to this path")
	spansPath := flag.String("spans", "", "write a Chrome trace_event span dump to this path")
	liveEvery := flag.Duration("live", 0, "stream live sweep stats to stderr at this interval")
	liveHTTP := flag.String("live-http", "", "serve live stats as JSON on this address (e.g. :8080)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	tracePath := flag.String("trace", "", "replay this recorded JSONL request trace (fsreplay experiment)")
	flag.Parse()
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		exitOn(err)
		tr, err := workload.ReadTrace(f)
		f.Close()
		exitOn(err)
		replayTrace = tr
	}
	exitOn(run(runOpts{
		quick: *quick, parallel: *parallel,
		jsonPath: *jsonPath, spansPath: *spansPath,
		liveEvery: *liveEvery, liveHTTP: *liveHTTP,
		cpuProfile: *cpuProfile, memProfile: *memProfile,
	}, flag.Args()))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	quick, parallel        bool
	jsonPath, spansPath    string
	liveEvery              time.Duration
	liveHTTP               string
	cpuProfile, memProfile string
}

func run(opts runOpts, args []string) error {
	quick, parallel := opts.quick, opts.parallel
	jsonPath, cpuProfile, memProfile := opts.jsonPath, opts.cpuProfile, opts.memProfile
	scale := experiments.Full
	scaleName := "full"
	if quick {
		scale = experiments.Quick
		scaleName = "quick"
	}
	par.SetEnabled(parallel)
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if len(args) == 0 {
		args = []string{"all"}
	}
	if opts.liveEvery > 0 || opts.liveHTTP != "" {
		ls, err := startLive(opts.liveEvery, opts.liveHTTP)
		if err != nil {
			return err
		}
		defer ls.shutdown()
	}
	if opts.spansPath != "" {
		experiments.CaptureSpans(true)
	}
	report := jsonReport{
		Scale:      scaleName,
		Parallel:   parallel,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Commit:     gitCommit(),
		GoVersion:  runtime.Version(),
		Host:       hostInfo(),
	}
	start := time.Now()
	for _, name := range args {
		all := name == "all"
		ran := false
		for _, r := range runners {
			if !all && r.name != name {
				continue
			}
			t0 := time.Now()
			text, rows := r.run(scale)
			fmt.Println(text)
			report.Experiments = append(report.Experiments, jsonExperiment{
				Name:        r.name,
				WallSeconds: time.Since(t0).Seconds(),
				Rows:        rows,
			})
			ran = true
		}
		if !ran {
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	report.WallSeconds = time.Since(start).Seconds()
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "repro: wrote %s\n", jsonPath)
	}
	if opts.spansPath != "" {
		f, err := os.Create(opts.spansPath)
		if err != nil {
			return err
		}
		if err := experiments.WriteSpans(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "repro: wrote %s\n", opts.spansPath)
	}
	return nil
}

// gitCommit stamps a run with the commit it was built from: the build
// info's vcs.revision when the binary carries it, otherwise git itself
// (go run / go test builds don't embed VCS stamps).
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// hostInfo is enough machine identity to compare recorded runs:
// hostname, OS/arch, and CPU count.
func hostInfo() string {
	host, _ := os.Hostname()
	return fmt.Sprintf("%s %s/%s %dcpu", host, runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}
