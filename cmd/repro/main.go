// Command repro regenerates the tables and figures of "Barrier-Enabled IO
// Stack for Flash Storage" (FAST '18) on the simulated stack.
//
// Usage:
//
//	repro [-quick] [-parallel=false] [-json out.json]
//	      [-cpuprofile cpu.prof] [-memprofile mem.prof] [experiment ...]
//
// Experiments: fig1 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 table1
// mq kv crash crashmc all. With no arguments, runs `all`. The `mq`
// experiment is the multi-queue scaling table (per-stream epochs vs the
// global total order) added on top of the paper's evaluation; `kv` is the
// barrier-enabled key-value store (internal/kvwal): group-commit
// throughput and latency across stacks plus its crash-consistency sweep;
// `crashmc` is the crash-state model checker (internal/crashmc):
// states-explored and violation counts per stack configuration, with
// EXT4-nobarrier's reachable ordering violations as the positive control.
//
// Independent sweep cells run one simulation kernel per CPU (disable with
// -parallel=false, e.g. when profiling a single kernel). -json emits the
// machine-readable results — IOPS, latency percentiles, crash-audit counts
// and wall-clock seconds per experiment — that the perf-trajectory
// BENCH_*.json files record.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/par"
)

// runner regenerates one experiment, returning the text rendering and the
// machine-readable rows for -json.
type runner struct {
	name string
	run  func(scale experiments.Scale) (string, []map[string]any)
}

var runners = []runner{
	{"fig1", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig1(s)
		return r.String(), fig1JSON(r)
	}},
	{"fig8", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig8(s)
		return r.String(), fig8JSON(r)
	}},
	{"fig9", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig9(s)
		return r.String(), fig9JSON(r)
	}},
	{"fig10", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig10(s)
		return experiments.RenderFig10(r), fig10JSON(r)
	}},
	{"table1", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Table1(s)
		return r.String(), table1JSON(r)
	}},
	{"fig11", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig11(s)
		return r.String(), fig11JSON(r)
	}},
	{"fig12", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig12(s)
		return r.String(), fig12JSON(r)
	}},
	{"fig13", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig13(s)
		return r.String(), fig13JSON(r)
	}},
	{"fig14", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig14(s)
		return r.String(), fig14JSON(r)
	}},
	{"fig15", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.Fig15(s)
		return r.String(), fig15JSON(r)
	}},
	{"mq", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.MQScaling(s)
		return r.String(), mqJSON(r)
	}},
	{"kv", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.KV(s)
		return r.String(), kvJSON(r)
	}},
	{"crash", func(s experiments.Scale) (string, []map[string]any) {
		return crashReport(s)
	}},
	{"crashmc", func(s experiments.Scale) (string, []map[string]any) {
		r := experiments.CrashMC(s)
		return r.String(), crashmcJSON(r)
	}},
}

func main() {
	quick := flag.Bool("quick", false, "run shortened experiments")
	parallel := flag.Bool("parallel", true, "run independent sweep cells on one kernel per CPU")
	jsonPath := flag.String("json", "", "write machine-readable results to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	flag.Parse()
	if err := run(*quick, *parallel, *jsonPath, *cpuProfile, *memProfile, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(quick, parallel bool, jsonPath, cpuProfile, memProfile string, args []string) error {
	scale := experiments.Full
	scaleName := "full"
	if quick {
		scale = experiments.Quick
		scaleName = "quick"
	}
	par.SetEnabled(parallel)
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if len(args) == 0 {
		args = []string{"all"}
	}
	report := jsonReport{
		Scale:      scaleName,
		Parallel:   parallel,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	start := time.Now()
	for _, name := range args {
		all := name == "all"
		ran := false
		for _, r := range runners {
			if !all && r.name != name {
				continue
			}
			t0 := time.Now()
			text, rows := r.run(scale)
			fmt.Println(text)
			report.Experiments = append(report.Experiments, jsonExperiment{
				Name:        r.name,
				WallSeconds: time.Since(t0).Seconds(),
				Rows:        rows,
			})
			ran = true
		}
		if !ran {
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	report.WallSeconds = time.Since(start).Seconds()
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "repro: wrote %s\n", jsonPath)
	}
	return nil
}
