package fault

import (
	"testing"

	"repro/internal/sim"
)

func TestNilInjectorIsNoFault(t *testing.T) {
	var in *Injector = New(nil)
	if in != nil {
		t.Fatal("New(nil) should yield a nil injector")
	}
	if extra, err := in.Read(); extra != 0 || err != nil {
		t.Fatalf("nil Read() = %v, %v", extra, err)
	}
	if n := in.ProgramRetries(); n != 0 {
		t.Fatalf("nil ProgramRetries() = %d", n)
	}
	if s := in.GCReadScale(0); s != 1 {
		t.Fatalf("nil GCReadScale() = %v", s)
	}
	if in.PLPFailure() {
		t.Fatal("nil injector claims PLP failure")
	}
	if got := in.PLPDrain(7); got != 7 {
		t.Fatalf("nil PLPDrain(7) = %d, want full drain", got)
	}
	if (&Plan{}).Enabled() || (*Plan)(nil).Enabled() {
		t.Fatal("zero/nil plan claims to inject")
	}
}

// Same (plan, seed) must produce the identical fault sequence — the
// property that makes every injected campaign replayable.
func TestInjectorDeterministicUnderSeed(t *testing.T) {
	plan := &Plan{
		Seed:                 42,
		ReadUNCProb:          0.2,
		ReadRetryLadder:      []sim.Duration{20 * sim.Microsecond, 60 * sim.Microsecond},
		ReadRetryProb:        0.4,
		ProgramTransientProb: 0.3,
		ProgramMaxRetries:    2,
	}
	a, b := New(plan), New(plan)
	for i := 0; i < 2000; i++ {
		ea, erra := a.Read()
		eb, errb := b.Read()
		if ea != eb || (erra == nil) != (errb == nil) {
			t.Fatalf("read draw %d diverged: (%v,%v) vs (%v,%v)", i, ea, erra, eb, errb)
		}
		if na, nb := a.ProgramRetries(), b.ProgramRetries(); na != nb {
			t.Fatalf("program draw %d diverged: %d vs %d", i, na, nb)
		}
	}
	sa := a.Stats()
	if sa != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", sa, b.Stats())
	}
	if sa.ReadUNCs == 0 || sa.ReadRetries == 0 || sa.ProgramRetries == 0 {
		t.Fatalf("draw stream never fired some fault class: %+v", sa)
	}
	// A different seed yields a different sequence.
	other := *plan
	other.Seed = 43
	c := New(&other)
	for i := 0; i < 2000; i++ {
		c.Read()
		c.ProgramRetries()
	}
	if c.Stats() == sa {
		t.Fatal("distinct seeds produced identical fault streams")
	}
}

func TestGCWindowsAndPLPDrain(t *testing.T) {
	in := New(&Plan{
		GCPeriod:        2 * sim.Millisecond,
		GCDuration:      300 * sim.Microsecond,
		GCReadFactor:    4,
		GCProgramFactor: 2,
	})
	inside := sim.Time(100 * sim.Microsecond)
	outside := sim.Time(1 * sim.Millisecond)
	if in.GCReadScale(inside) != 4 || in.GCProgramScale(inside) != 2 {
		t.Fatal("GC window not scaling inside the window")
	}
	if in.GCReadScale(outside) != 1 || in.GCProgramScale(outside) != 1 {
		t.Fatal("GC scaling leaked outside the window")
	}
	// Windows recur every period.
	if in.GCReadScale(inside+sim.Time(2*sim.Millisecond)) != 4 {
		t.Fatal("GC window did not recur on the next period")
	}

	plp := New(&Plan{PLPFailure: true, PLPDrainFrac: 0.5})
	if !plp.PLPFailure() {
		t.Fatal("PLPFailure not reported")
	}
	if got := plp.PLPDrain(8); got != 4 {
		t.Fatalf("PLPDrain(8) at frac 0.5 = %d, want 4", got)
	}
	if got := New(&Plan{PLPFailure: true, PLPDrainFrac: 2}).PLPDrain(8); got != 8 {
		t.Fatalf("PLPDrain clamp high = %d, want 8", got)
	}
	if got := New(&Plan{PLPFailure: true, PLPDrainFrac: -1}).PLPDrain(8); got != 0 {
		t.Fatalf("PLPDrain clamp low = %d, want 0", got)
	}
	healthy := New(&Plan{ReadUNCProb: 0.1})
	if got := healthy.PLPDrain(8); got != 8 {
		t.Fatalf("non-PLP plan PLPDrain(8) = %d, want full drain", got)
	}
}
