// Package fault is a deterministic, seeded fault-plan engine for the
// device stack. A Plan declares which failure modes a device personality
// exhibits — media read errors (UNC sectors with a read-retry latency
// ladder), transient program failures, GC-interference latency spikes,
// and a PLP-failure model where the writeback cache drains only a prefix
// at power loss. The device/nand/ftl layers consume the plan through an
// Injector whose draws come from a counter-based splitmix64 stream, so a
// given (plan, seed) produces the identical fault sequence on every run
// and on every kernel flavor.
//
// Every Injector method is nil-safe and returns the no-fault answer on a
// nil receiver: a stack built without a plan makes zero draws and zero
// extra calls, which is what keeps the golden dispatch traces bit-identical
// with injection disabled.
package fault

import (
	"errors"

	"repro/internal/sim"
)

// ErrUNC is the media read error: an uncorrectable sector that survived
// the device's internal read-retry ladder. It is retryable from the host
// side — a later attempt re-enters the ladder and may succeed.
var ErrUNC = errors.New("fault: uncorrectable media error")

// Plan declares a device's failure personality. The zero value injects
// nothing.
type Plan struct {
	// Seed selects the deterministic draw stream. Two devices with the
	// same plan and seed fail identically.
	Seed uint64

	// ReadUNCProb is the probability that one NAND read attempt hits an
	// uncorrectable error after exhausting the read-retry ladder.
	ReadUNCProb float64
	// ReadRetryLadder is the extra latency charged per internal read-retry
	// step. Each read attempt that needs retries (RetryProb per attempt)
	// climbs a seeded number of rungs and pays their sum.
	ReadRetryLadder []sim.Duration
	// ReadRetryProb is the probability a read attempt needs the retry
	// ladder at all (latency-only; the read still succeeds unless the UNC
	// draw also fires).
	ReadRetryProb float64

	// ProgramTransientProb is the probability one page program needs an
	// in-chip retry; retries re-pay the cell program time. The page is
	// never lost — transient program failures are latency + wear, the host
	// only observes them through the counters.
	ProgramTransientProb float64
	// ProgramMaxRetries bounds the in-chip retries per program (default 1).
	ProgramMaxRetries int

	// GCPeriod/GCDuration/GCReadFactor/GCProgramFactor model garbage-
	// collection interference: during the first GCDuration of every
	// GCPeriod, NAND read and program latencies are scaled by their
	// factor. Purely time-windowed — no draws — so interference windows
	// line up across runs and across shards.
	GCPeriod        sim.Duration
	GCDuration      sim.Duration
	GCReadFactor    float64
	GCProgramFactor float64

	// PLPFailure models a supercap that dies mid-drain: at power loss the
	// writeback cache persists only a prefix of its entries in transfer
	// order, instead of PLP's all-or-nothing guarantee. The crash-state
	// model checker sees a *chain* constraint DAG (every transfer-order
	// prefix is admissible); a concrete Crash() drains the seeded
	// PLPDrainFrac prefix.
	PLPFailure bool
	// PLPDrainFrac is the fraction (0..1) of pending cache entries the
	// dying supercap manages to drain, in transfer order.
	PLPDrainFrac float64
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.ReadUNCProb > 0 || p.ReadRetryProb > 0 || p.ProgramTransientProb > 0 ||
		(p.GCPeriod > 0 && p.GCDuration > 0) || p.PLPFailure
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	ReadUNCs       int64 // read attempts that returned ErrUNC
	ReadRetries    int64 // read-retry ladder rungs climbed
	ProgramRetries int64 // in-chip program retries
}

// Injector is the per-device draw stream over one Plan. Not safe for
// concurrent use; each simulated device owns its own injector (kernels
// are single-threaded, so no locking is needed inside one).
type Injector struct {
	plan  Plan
	ctr   uint64
	stats Stats
}

// New builds an injector for plan; a nil plan yields a nil injector, and
// every method on a nil injector is the identity/no-fault answer.
func New(plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	p := *plan
	if p.ProgramMaxRetries <= 0 {
		p.ProgramMaxRetries = 1
	}
	return &Injector{plan: p}
}

// Plan returns the injector's plan (zero Plan on nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Stats returns cumulative fault counts.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// splitmix64 finalizer: the counter-based draw primitive.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns the next uniform value in [0,1).
func (in *Injector) draw() float64 {
	in.ctr++
	return float64(mix(in.plan.Seed^in.ctr)>>11) / float64(1<<53)
}

// Read draws one NAND read attempt's fault outcome: extra retry-ladder
// latency plus ErrUNC if the attempt is uncorrectable. Nil-safe.
func (in *Injector) Read() (extra sim.Duration, err error) {
	if in == nil {
		return 0, nil
	}
	if in.plan.ReadRetryProb > 0 && len(in.plan.ReadRetryLadder) > 0 &&
		in.draw() < in.plan.ReadRetryProb {
		// Climb a seeded number of rungs: each subsequent rung is reached
		// with the same per-step probability, bounded by the ladder.
		for _, step := range in.plan.ReadRetryLadder {
			extra += step
			in.stats.ReadRetries++
			if in.draw() >= in.plan.ReadRetryProb {
				break
			}
		}
	}
	if in.plan.ReadUNCProb > 0 && in.draw() < in.plan.ReadUNCProb {
		in.stats.ReadUNCs++
		err = ErrUNC
	}
	return extra, err
}

// ProgramRetries draws the in-chip retry count for one page program.
func (in *Injector) ProgramRetries() int {
	if in == nil || in.plan.ProgramTransientProb <= 0 {
		return 0
	}
	n := 0
	for n < in.plan.ProgramMaxRetries && in.draw() < in.plan.ProgramTransientProb {
		n++
	}
	in.stats.ProgramRetries += int64(n)
	return n
}

// GCReadScale returns the GC-interference read-latency multiplier at now.
// Purely time-windowed: no draw.
func (in *Injector) GCReadScale(now sim.Time) float64 {
	if in == nil || in.plan.GCPeriod <= 0 || in.plan.GCReadFactor <= 1 {
		return 1
	}
	if sim.Duration(now%sim.Time(in.plan.GCPeriod)) < in.plan.GCDuration {
		return in.plan.GCReadFactor
	}
	return 1
}

// GCProgramScale returns the GC-interference program-latency multiplier.
func (in *Injector) GCProgramScale(now sim.Time) float64 {
	if in == nil || in.plan.GCPeriod <= 0 || in.plan.GCProgramFactor <= 1 {
		return 1
	}
	if sim.Duration(now%sim.Time(in.plan.GCPeriod)) < in.plan.GCDuration {
		return in.plan.GCProgramFactor
	}
	return 1
}

// PLPFailure reports whether the plan models a dying supercap.
func (in *Injector) PLPFailure() bool { return in != nil && in.plan.PLPFailure }

// PLPDrain returns how many of n pending cache entries the dying supercap
// drains, in transfer order. Only meaningful when PLPFailure is set.
func (in *Injector) PLPDrain(n int) int {
	if in == nil || !in.plan.PLPFailure {
		return n
	}
	f := in.plan.PLPDrainFrac
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	d := int(f * float64(n))
	if d > n {
		d = n
	}
	return d
}
