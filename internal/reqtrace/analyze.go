package reqtrace

import (
	"sort"

	"repro/internal/sim"
)

// The critical-path analyzer attributes each traced request's end-to-end
// latency to stack stages at two levels.
//
// The top level is an exact partition: four segments whose boundaries are
// admit, gc-enqueue, dur-issue, dur-done, ack. Missing interior
// boundaries collapse backward onto the next known one and every boundary
// is clamped into [admit, ack], so the four durations are non-negative
// and sum to exactly ack-admit for every exemplar — the per-request
// accounting identity the whyslow table (and its test) rests on.
//
// The sub level splits the durability window [dur-issue, dur-done] by the
// deeper pipeline boundaries (journal dispatch, block queue/dispatch,
// device service start/done). Those are first-crossing stamps fanned out
// across the whole group, may land in any order (data writeback races the
// journal commit), and on barrier stacks the device may complete after the
// ack — so sub-segments are clamped the same way and inverted ones read as
// zero. They sum to exactly the durability window.

// TopStage is one segment of the exact top-level latency partition.
type TopStage uint8

const (
	// TopQueue: admission -> group-commit enqueue (router + worker queue).
	TopQueue TopStage = iota
	// TopBatch: enqueue -> leader issues the durability call (waiting for
	// the group-commit leader to pick the op up).
	TopBatch
	// TopDurability: durability call issued -> returned. Transfer-and-flush
	// on EXT4; order-only dispatch wait on barrier-enabled stacks — the
	// stage the paper's argument is about.
	TopDurability
	// TopAck: durability return -> client ack (memtable apply + wakeup).
	TopAck

	// NumTop is the number of top-level segments.
	NumTop = int(TopAck) + 1
)

var topNames = [NumTop]string{"queue", "batch", "durability", "ack"}

func (t TopStage) String() string {
	if int(t) < NumTop {
		return topNames[t]
	}
	return "top?"
}

// SubStage is one segment of the durability-window split.
type SubStage uint8

const (
	// SubPrep: dur-issue -> journal commit dispatched.
	SubPrep SubStage = iota
	// SubJournal: journal dispatch -> first block request queued.
	SubJournal
	// SubBlockQueue: block queue -> first dispatch to the device.
	SubBlockQueue
	// SubDevQueue: block dispatch -> device service start.
	SubDevQueue
	// SubDevice: device service start -> last completion seen.
	SubDevice
	// SubResidual: last device completion -> durability call returns
	// (includes flush waits the trace has no finer boundary for).
	SubResidual

	// NumSub is the number of durability sub-segments.
	NumSub = int(SubResidual) + 1
)

var subNames = [NumSub]string{
	"prep", "journal", "blockq", "devq", "device", "residual",
}

func (s SubStage) String() string {
	if int(s) < NumSub {
		return subNames[s]
	}
	return "sub?"
}

// partition turns interior boundary stamps into monotonic boundaries in
// [lo, hi]: a missing stamp collapses backward onto the next known
// boundary, then everything is clamped monotonic. Segment i is
// b[i+1]-b[i]; segments sum to exactly hi-lo.
func partition(lo, hi sim.Time, e Exemplar, interior []Stage, b []sim.Time) {
	if hi < lo {
		hi = lo
	}
	n := len(interior)
	b[0], b[n+1] = lo, hi
	for i := n; i >= 1; i-- {
		if e.Has(interior[i-1]) {
			b[i] = e.Stamps[interior[i-1]]
		} else {
			b[i] = b[i+1]
		}
	}
	for i := 1; i <= n; i++ {
		if b[i] < b[i-1] {
			b[i] = b[i-1]
		}
		if b[i] > hi {
			b[i] = hi
		}
	}
}

// AttributeTop splits an exemplar's end-to-end latency across the four
// top-level stages. The segments always sum to exactly e's ack-admit.
func AttributeTop(e Exemplar) [NumTop]sim.Duration {
	var b [NumTop + 1]sim.Time
	partition(e.Stamps[StageAdmit], e.Stamps[StageAck], e,
		[]Stage{StageGCEnqueue, StageDurIssue, StageDurDone}, b[:])
	var d [NumTop]sim.Duration
	for i := range d {
		d[i] = sim.Duration(b[i+1] - b[i])
	}
	return d
}

// AttributeSub splits the durability window across the deeper pipeline
// sub-stages. The segments sum to exactly the TopDurability segment.
func AttributeSub(e Exemplar) [NumSub]sim.Duration {
	var tb [NumTop + 1]sim.Time
	partition(e.Stamps[StageAdmit], e.Stamps[StageAck], e,
		[]Stage{StageGCEnqueue, StageDurIssue, StageDurDone}, tb[:])
	lo, hi := tb[2], tb[3] // the clamped durability window
	var b [NumSub + 1]sim.Time
	partition(lo, hi, e,
		[]Stage{StageJournalDispatch, StageBlockQueue, StageBlockDispatch,
			StageDevStart, StageDevDone}, b[:])
	var d [NumSub]sim.Duration
	for i := range d {
		d[i] = sim.Duration(b[i+1] - b[i])
	}
	return d
}

// StageStat is one row of a whyslow attribution table: the distribution
// of one stage's attributed time across a set of exemplars, plus its
// share of the summed end-to-end time.
type StageStat struct {
	Stage    string
	MeanMs   float64
	P50Ms    float64
	P99Ms    float64
	SharePct float64
}

// AnalyzeTop tabulates the top-level attribution across exemplars.
func AnalyzeTop(exs []Exemplar) []StageStat {
	cols := make([][]float64, NumTop)
	for _, e := range exs {
		d := AttributeTop(e)
		for i, v := range d {
			cols[i] = append(cols[i], float64(v))
		}
	}
	names := make([]string, NumTop)
	for i := range names {
		names[i] = TopStage(i).String()
	}
	return tabulate(names, cols)
}

// AnalyzeSub tabulates the durability-window sub-stage attribution.
func AnalyzeSub(exs []Exemplar) []StageStat {
	cols := make([][]float64, NumSub)
	for _, e := range exs {
		d := AttributeSub(e)
		for i, v := range d {
			cols[i] = append(cols[i], float64(v))
		}
	}
	names := make([]string, NumSub)
	for i := range names {
		names[i] = SubStage(i).String()
	}
	return tabulate(names, cols)
}

func tabulate(names []string, cols [][]float64) []StageStat {
	var grand float64
	for _, c := range cols {
		for _, v := range c {
			grand += v
		}
	}
	const ms = float64(sim.Millisecond)
	out := make([]StageStat, len(cols))
	for i, c := range cols {
		var sum float64
		for _, v := range c {
			sum += v
		}
		sort.Float64s(c)
		st := StageStat{Stage: names[i]}
		if n := len(c); n > 0 {
			st.MeanMs = sum / float64(n) / ms
			st.P50Ms = quantile(c, 0.50) / ms
			st.P99Ms = quantile(c, 0.99) / ms
		}
		if grand > 0 {
			st.SharePct = 100 * sum / grand
		}
		out[i] = st
	}
	return out
}

// quantile interpolates q in [0,1] over an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}
