package reqtrace

import (
	"testing"

	"repro/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }

func TestZeroCtxIsNoOp(t *testing.T) {
	var c Ctx
	c.Stamp(StageAdmit, us(1))
	c.StampChain(StageDevDone, us(2))
	if c.Active() {
		t.Fatal("zero Ctx reports Active")
	}
	var s *Sampler
	if got := s.Admit(us(1)); got.Active() {
		t.Fatal("nil sampler Admit returned active ctx")
	}
	s.Finish(Ctx{}, us(2))
	if s.Take() != nil || s.Snapshot() != nil || s.Dropped() != 0 {
		t.Fatal("nil sampler leaked state")
	}
}

func TestStampFirstWinsExceptDevDone(t *testing.T) {
	s := NewSampler(Config{Uniform: 1})
	c := s.Admit(us(10))
	c.Stamp(StageGCEnqueue, us(20))
	c.Stamp(StageGCEnqueue, us(30)) // first-wins
	c.Stamp(StageDevDone, us(40))
	c.Stamp(StageDevDone, us(50)) // last-wins
	s.Finish(c, us(60))
	exs := s.Take()
	if len(exs) == 0 {
		t.Fatal("no exemplar kept")
	}
	e := exs[0]
	if e.At(StageGCEnqueue) != us(20) {
		t.Fatalf("gc-enqueue = %d, want first-wins %d", e.At(StageGCEnqueue), us(20))
	}
	if e.At(StageDevDone) != us(50) {
		t.Fatalf("dev-done = %d, want last-wins %d", e.At(StageDevDone), us(50))
	}
	if e.Total != sim.Duration(us(60)-us(10)) {
		t.Fatalf("total = %d", e.Total)
	}
}

func TestRecycledCtxGoesQuiet(t *testing.T) {
	s := NewSampler(Config{Uniform: 1})
	c1 := s.Admit(us(1))
	s.Finish(c1, us(2)) // recycles the record
	c2 := s.Admit(us(3))
	// The stale handle must neither stamp nor corrupt the reused record.
	c1.Stamp(StageDevStart, us(4))
	c1.StampChain(StageDevDone, us(5))
	if c1.Active() {
		t.Fatal("stale ctx reports Active")
	}
	s.Finish(c2, us(6))
	exs := s.Take()
	for _, e := range exs[1:] {
		if e.Has(StageDevStart) || e.Has(StageDevDone) {
			t.Fatal("stale ctx stamped a recycled record")
		}
	}
}

func TestChainFanOut(t *testing.T) {
	s := NewSampler(Config{Uniform: 1})
	a := s.Admit(us(1))
	b := s.Admit(us(2))
	c := s.Admit(us(3))
	head := Chain(Chain(Ctx{}, a), b)
	head = Chain(head, c)
	if head != a {
		t.Fatal("chain head moved")
	}
	head.StampChain(StageDurIssue, us(10))
	head.Stamp(StageAck, us(11)) // plain stamp stays on the head only
	for i, m := range []Ctx{a, b, c} {
		s.Finish(m, us(int64(20+i)))
	}
	exs := s.Take()
	if len(exs) != 3 {
		t.Fatalf("kept %d exemplars, want 3", len(exs))
	}
	for i, e := range exs {
		if e.At(StageDurIssue) != us(10) {
			t.Fatalf("member %d missing chained dur-issue stamp", i)
		}
	}
	// Chaining an inactive member must not sever the chain.
	if got := Chain(a, Ctx{}); got != a {
		t.Fatal("chaining zero member changed head")
	}
}

func TestAttributeTopSumsToTotal(t *testing.T) {
	// Sweep every subset of interior boundaries: the partition identity
	// must hold regardless of which stamps landed.
	for mask := 0; mask < 8; mask++ {
		e := Exemplar{}
		e.Stamps[StageAdmit] = us(100)
		e.Mask = 1 << StageAdmit
		if mask&1 != 0 {
			e.Stamps[StageGCEnqueue] = us(130)
			e.Mask |= 1 << StageGCEnqueue
		}
		if mask&2 != 0 {
			e.Stamps[StageDurIssue] = us(150)
			e.Mask |= 1 << StageDurIssue
		}
		if mask&4 != 0 {
			e.Stamps[StageDurDone] = us(180)
			e.Mask |= 1 << StageDurDone
		}
		e.Stamps[StageAck] = us(200)
		e.Mask |= 1 << StageAck
		e.Total = sim.Duration(us(200) - us(100))
		d := AttributeTop(e)
		var sum sim.Duration
		for _, v := range d {
			if v < 0 {
				t.Fatalf("mask %b: negative segment %v", mask, d)
			}
			sum += v
		}
		if sum != e.Total {
			t.Fatalf("mask %b: segments sum to %d, want %d (%v)", mask, sum, e.Total, d)
		}
	}
}

func TestAttributeSubSumsToDurability(t *testing.T) {
	e := Exemplar{}
	set := func(s Stage, at sim.Time) {
		e.Stamps[s] = at
		e.Mask |= 1 << s
	}
	set(StageAdmit, us(0))
	set(StageGCEnqueue, us(10))
	set(StageDurIssue, us(20))
	set(StageBlockQueue, us(25)) // data writeback races the journal
	set(StageJournalDispatch, us(30))
	set(StageBlockDispatch, us(35))
	set(StageDevStart, us(40))
	set(StageDevDone, us(70))
	set(StageDurDone, us(80))
	set(StageAck, us(90))
	e.Total = sim.Duration(us(90))
	top := AttributeTop(e)
	sub := AttributeSub(e)
	var subSum sim.Duration
	for _, v := range sub {
		if v < 0 {
			t.Fatalf("negative sub segment %v", sub)
		}
		subSum += v
	}
	if subSum != top[TopDurability] {
		t.Fatalf("sub segments sum to %d, want durability window %d", subSum, top[TopDurability])
	}
	if sub[SubDevice] != sim.Duration(us(70)-us(40)) {
		t.Fatalf("device segment = %d", sub[SubDevice])
	}
}

func TestSamplerTailKeepsSlowest(t *testing.T) {
	s := NewSampler(Config{TopK: 2, Window: 100 * sim.Microsecond})
	// One window of ten requests with distinct latencies 1..10us.
	for i := 1; i <= 10; i++ {
		c := s.Admit(us(0))
		s.Finish(c, us(int64(i)))
	}
	// Cross into the next window to flush, then drain.
	c := s.Admit(us(200))
	s.Finish(c, us(201))
	exs := s.Take()
	var tails []sim.Duration
	for _, e := range exs {
		if e.Tail {
			tails = append(tails, e.Total)
		}
	}
	want := map[sim.Duration]bool{
		sim.Duration(us(10)): true,
		sim.Duration(us(9)):  true,
	}
	found := 0
	for _, tot := range tails {
		if want[tot] {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("tail exemplars %v do not contain the two slowest", tails)
	}
}

func TestSamplerUniform(t *testing.T) {
	s := NewSampler(Config{Uniform: 4, TopK: 1, Window: sim.Duration(us(1_000_000))})
	for i := 0; i < 40; i++ {
		c := s.Admit(us(int64(i)))
		s.Finish(c, us(int64(i)+1))
	}
	exs := s.Take()
	uniform := 0
	for _, e := range exs {
		if !e.Tail {
			uniform++
		}
	}
	if uniform != 10 {
		t.Fatalf("kept %d uniform exemplars, want 10", uniform)
	}
}

func TestSamplerMaxCap(t *testing.T) {
	s := NewSampler(Config{Uniform: 1, Max: 5, TopK: 1, Window: sim.Duration(us(1_000_000))})
	for i := 0; i < 20; i++ {
		c := s.Admit(us(int64(i)))
		s.Finish(c, us(int64(i)+1))
	}
	if got := len(s.Snapshot()); got != 5 {
		t.Fatalf("kept %d exemplars, want capped 5", got)
	}
	if s.Dropped() == 0 {
		t.Fatal("cap overflow not counted")
	}
}

func TestSamplerPoolsRecords(t *testing.T) {
	s := NewSampler(Config{})
	c1 := s.Admit(us(1))
	r1 := c1.rec
	s.Finish(c1, us(2))
	c2 := s.Admit(us(3))
	if c2.rec != r1 {
		t.Fatal("record not recycled through the pool")
	}
	if c2.rec.mask != 1<<StageAdmit {
		t.Fatalf("recycled record carries stale stamps: mask %b", c2.rec.mask)
	}
}
