// Package reqtrace is the request-scoped causal tracing layer: a
// per-request trace context allocated at admission and propagated by value
// through the whole IO stack (router -> replica write -> kvwal group
// commit -> jbd transaction -> block/blkmq queueing -> device service),
// recording virtual-time stage boundaries into a pooled, sampling-gated
// record.
//
// The zero Ctx is the disabled tracer: every method is a one-branch no-op,
// so threading a Ctx through hot paths costs nothing when tracing is off
// and golden dispatch traces stay bit-identical. Records are pooled and
// generation-validated — recycling a record bumps its generation, turning
// every stale Ctx that still points at it into a no-op instead of a
// use-after-recycle.
package reqtrace

import (
	"sync"

	"repro/internal/sim"
)

// Stage is one virtual-time boundary a request crosses on its way through
// the stack. Stamps are first-wins (the earliest crossing is the
// interesting one when a group fans out over many block requests), except
// StageDevDone which is last-wins: the durability story ends at the final
// device completion observed before the ack.
type Stage uint8

const (
	// StageAdmit: request admitted past shed-and-count admission control.
	StageAdmit Stage = iota
	// StageGCEnqueue: op enqueued onto the kvwal group-commit queue.
	StageGCEnqueue
	// StageDurIssue: the group-commit leader issues the durability call
	// (fdatasync on EXT4, fdatabarrier on barrier-enabled stacks).
	StageDurIssue
	// StageDurDone: the durability call returns to the leader.
	StageDurDone
	// StageJournalDispatch: the journal commit thread dispatches the
	// transaction's JD/JC writes.
	StageJournalDispatch
	// StageBlockQueue: a block.Request belonging to this trace is bound
	// into the block layer.
	StageBlockQueue
	// StageBlockDispatch: the dispatcher hands a request to the device.
	StageBlockDispatch
	// StageDevStart: the device begins servicing a command.
	StageDevStart
	// StageDevDone: the device completes a command (last-wins).
	StageDevDone
	// StageAck: the response is acked back to the client.
	StageAck

	// NumStages is the number of stage boundaries.
	NumStages = int(StageAck) + 1
)

var stageNames = [NumStages]string{
	"admit", "gc-enqueue", "dur-issue", "dur-done", "journal-dispatch",
	"block-queue", "block-dispatch", "dev-start", "dev-done", "ack",
}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "stage?"
}

// Rec is a pooled trace record. It is owned by the Sampler that allocated
// it and must only be reached through a Ctx, whose generation check makes
// stale handles harmless after the record is recycled.
type Rec struct {
	stamps [NumStages]sim.Time
	mask   uint16
	gen    uint32
	link   Ctx // next member of a group-commit chain (see Chain)
}

func (r *Rec) stamp(s Stage, at sim.Time) {
	bit := uint16(1) << s
	if r.mask&bit != 0 && s != StageDevDone {
		return // first-wins
	}
	r.mask |= bit
	r.stamps[s] = at
}

// Ctx is a by-value handle on a trace record. The zero Ctx is valid and
// means "tracing off": every method is a cheap no-op. Copy it freely; it
// is two words.
type Ctx struct {
	rec *Rec
	gen uint32
}

// Active reports whether the context still points at a live (unrecycled)
// record.
func (c Ctx) Active() bool { return c.rec != nil && c.rec.gen == c.gen }

// Stamp records stage s at virtual time at on this request only.
func (c Ctx) Stamp(s Stage, at sim.Time) {
	if c.rec == nil || c.rec.gen != c.gen {
		return
	}
	c.rec.stamp(s, at)
}

// maxChain bounds the group-commit chain walk. Group commits are bounded
// by the kvwal group cap (well under this), and the bound also hard-stops
// any accidental link cycle.
const maxChain = 1024

// StampChain records stage s on this request and every chained group
// member after it. Layers below the group-commit leader use this: one
// block request carries the chain head, but its timing belongs to every
// request in the group.
func (c Ctx) StampChain(s Stage, at sim.Time) {
	for hops := 0; hops < maxChain; hops++ {
		if c.rec == nil || c.rec.gen != c.gen {
			return
		}
		c.rec.stamp(s, at)
		c = c.rec.link
	}
}

// Chain links member into head's group chain and returns the head (or the
// member itself when head is inactive). The group-commit leader folds each
// batch's context into one chain so a single Ctx handed to the filesystem
// fans stage stamps out to every member without allocating. A record may
// be a member of at most one chain at a time; recycling severs it.
func Chain(head, member Ctx) Ctx {
	if member.rec == nil || member.rec.gen != member.gen {
		return head
	}
	if head.rec == nil || head.rec.gen != head.gen {
		return member
	}
	if head.rec == member.rec {
		return head
	}
	member.rec.link = head.rec.link
	head.rec.link = member
	return head
}

// Exemplar is an immutable snapshot of a finished request's stamps, taken
// at ack time by the Sampler before the record is recycled.
type Exemplar struct {
	Stamps [NumStages]sim.Time
	Mask   uint16
	Total  sim.Duration // ack - admit
	Tail   bool         // kept as a K-slowest window exemplar (vs 1-in-N uniform)
}

// Has reports whether stage s was stamped.
func (e Exemplar) Has(s Stage) bool { return e.Mask&(uint16(1)<<s) != 0 }

// At returns the stamp for stage s (zero when never stamped).
func (e Exemplar) At(s Stage) sim.Time {
	if !e.Has(s) {
		return 0
	}
	return e.Stamps[s]
}

// Config tunes a Sampler. The zero value disables uniform sampling and
// takes defaults for the tail-exemplar machinery.
type Config struct {
	// Uniform keeps every Nth finished request (0 disables uniform
	// sampling; the tail sampler still runs).
	Uniform int
	// TopK is how many of the slowest exemplars to keep per window
	// (default 4).
	TopK int
	// Window is the virtual-time width of a tail-exemplar window
	// (default 1ms).
	Window sim.Duration
	// Max caps the total kept exemplars per sampler; past it new keeps
	// are dropped and counted (default 4096).
	Max int
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 4
	}
	if c.Window <= 0 {
		c.Window = sim.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 4096
	}
	return c
}

// Sampler owns a pool of trace records and decides, at ack time, which
// finished requests to keep as exemplars: always the K slowest per
// virtual-time window (tail-biased) plus an optional 1-in-N uniform
// stream. Admit/Finish must be called from the owning simulation kernel's
// goroutine; Snapshot and Dropped are safe to call concurrently from other
// goroutines (live observers, -race tests).
type Sampler struct {
	cfg  Config
	free []*Rec
	n    uint64 // finished requests seen

	mu     sync.Mutex
	window []Exemplar // current window's slowest-first candidates (≤ TopK)
	winEnd sim.Time
	kept   []Exemplar
	lost   int
}

// NewSampler builds a sampler. A nil *Sampler is valid and disabled:
// Admit returns the zero Ctx and Finish is a no-op.
func NewSampler(cfg Config) *Sampler {
	return &Sampler{cfg: cfg.withDefaults()}
}

// Admit allocates a pooled record, stamps StageAdmit, and returns its
// context. On a nil sampler it returns the zero (disabled) Ctx.
func (s *Sampler) Admit(at sim.Time) Ctx {
	if s == nil {
		return Ctx{}
	}
	var r *Rec
	if n := len(s.free); n > 0 {
		r = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		r = new(Rec)
	}
	r.stamp(StageAdmit, at)
	return Ctx{rec: r, gen: r.gen}
}

// Finish stamps StageAck, snapshots the record, recycles it (bumping the
// generation so stale contexts go quiet), and applies the keep policy.
func (s *Sampler) Finish(c Ctx, at sim.Time) {
	if s == nil || c.rec == nil || c.rec.gen != c.gen {
		return
	}
	r := c.rec
	r.stamp(StageAck, at)
	ex := Exemplar{
		Stamps: r.stamps,
		Mask:   r.mask,
		Total:  sim.Duration(at - r.stamps[StageAdmit]),
	}
	r.gen++
	r.mask = 0
	r.link = Ctx{}
	s.free = append(s.free, r)
	s.n++

	uniform := s.cfg.Uniform > 0 && s.n%uint64(s.cfg.Uniform) == 0
	s.mu.Lock()
	defer s.mu.Unlock()
	if uniform {
		// A uniform keep is already reported; keeping it as a tail
		// candidate too would double-count it in the analyzer.
		s.keepLocked(ex)
		return
	}
	if at >= s.winEnd {
		s.flushWindowLocked()
		s.winEnd = at + sim.Time(s.cfg.Window)
	}
	// Insert into the window's slowest-first candidate list.
	if len(s.window) < s.cfg.TopK || ex.Total > s.window[len(s.window)-1].Total {
		i := len(s.window)
		if i < s.cfg.TopK {
			s.window = append(s.window, Exemplar{})
		} else {
			i--
		}
		for ; i > 0 && s.window[i-1].Total < ex.Total; i-- {
			s.window[i] = s.window[i-1]
		}
		s.window[i] = ex
	}
}

func (s *Sampler) keepLocked(ex Exemplar) {
	if len(s.kept) >= s.cfg.Max {
		s.lost++
		return
	}
	s.kept = append(s.kept, ex)
}

func (s *Sampler) flushWindowLocked() {
	for _, ex := range s.window {
		ex.Tail = true
		s.keepLocked(ex)
	}
	s.window = s.window[:0]
}

// Take flushes the in-flight window and drains the kept exemplars.
func (s *Sampler) Take() []Exemplar {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushWindowLocked()
	out := s.kept
	s.kept = nil
	return out
}

// Snapshot copies the exemplars kept so far. Safe to call concurrently
// with a running simulation (Finish publishes under the same lock).
func (s *Sampler) Snapshot() []Exemplar {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Exemplar, len(s.kept))
	copy(out, s.kept)
	return out
}

// Dropped reports how many keeps were discarded against Config.Max.
func (s *Sampler) Dropped() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}
