package crashtest

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
)

func times(us ...int) []sim.Time {
	var out []sim.Time
	for _, u := range us {
		out = append(out, sim.Time(sim.Duration(u)*sim.Microsecond))
	}
	return out
}

func TestDurabilityEXT4(t *testing.T) {
	for _, rep := range Sweep(core.EXT4DR(device.PlainSSD()), "durability",
		times(500, 2500, 9000, 30000)) {
		if !rep.Ok() {
			t.Errorf("%v: %v", rep, rep.DurabilityErrors)
		}
	}
}

func TestDurabilityBarrierFS(t *testing.T) {
	for _, rep := range Sweep(core.BFSDR(device.PlainSSD()), "durability",
		times(500, 2500, 9000, 30000)) {
		if !rep.Ok() {
			t.Errorf("%v: %v", rep, rep.DurabilityErrors)
		}
	}
}

func TestDurabilityBarrierFSOnUFS(t *testing.T) {
	for _, rep := range Sweep(core.BFSDR(device.UFS()), "durability",
		times(1000, 5000, 20000)) {
		if !rep.Ok() {
			t.Errorf("%v: %v", rep, rep.DurabilityErrors)
		}
	}
}

func TestDurabilitySupercap(t *testing.T) {
	for _, rep := range Sweep(core.BFSDR(device.SupercapSSD()), "durability",
		times(500, 2500, 9000)) {
		if !rep.Ok() {
			t.Errorf("%v: %v", rep, rep.DurabilityErrors)
		}
	}
}

func TestOrderingBarrierFS(t *testing.T) {
	// fdatabarrier on a barrier-enabled stack: epoch prefix must hold at
	// every crash point.
	for _, rep := range Sweep(core.BFSOD(device.PlainSSD()), "ordering",
		times(300, 900, 2000, 4500, 9000, 15000, 25000, 40000)) {
		if !rep.Ok() {
			t.Errorf("%v: %v", rep, rep.OrderingErrors)
		}
	}
}

func TestOrderingBarrierFSOnUFS(t *testing.T) {
	for _, rep := range Sweep(core.BFSOD(device.UFS()), "ordering",
		times(1000, 3000, 8000, 20000, 50000)) {
		if !rep.Ok() {
			t.Errorf("%v: %v", rep, rep.OrderingErrors)
		}
	}
}

func TestOrderingEXT4DRHoldsViaFlush(t *testing.T) {
	// EXT4-DR's fdatabarrier degrades to fdatasync (transfer-and-flush), so
	// ordering must hold there too — just expensively.
	for _, rep := range Sweep(core.EXT4DR(device.PlainSSD()), "ordering",
		times(2000, 9000, 30000)) {
		if !rep.Ok() {
			t.Errorf("%v: %v", rep, rep.OrderingErrors)
		}
	}
}

func TestOrderingEXT4NobarrierCanViolate(t *testing.T) {
	// The motivating failure: EXT4-OD on a legacy (non-barrier) device
	// provides NO ordering guarantee. At least one crash point across the
	// sweep should expose a violation; all-pass would mean our legacy model
	// is too kind.
	prof := core.EXT4OD(device.LegacySSD())
	violations := 0
	for _, rep := range Sweep(prof, "ordering",
		times(1500, 3000, 5000, 8000, 12000, 20000, 30000, 45000, 70000, 100000)) {
		violations += len(rep.OrderingErrors)
	}
	if violations == 0 {
		t.Error("EXT4-OD on a legacy device never violated ordering across 10 crash points; " +
			"the unsafe baseline is not exercising reordering")
	}
}

func TestReportString(t *testing.T) {
	r := Report{SyncedOps: 3}
	if r.String() == "" || !r.Ok() {
		t.Error("empty report should be ok")
	}
	r.OrderingErrors = append(r.OrderingErrors, "x")
	if r.Ok() {
		t.Error("report with errors is not ok")
	}
}

func TestSweepEmptyTimes(t *testing.T) {
	// An empty crash-time slice is a no-op sweep, not a panic: zero
	// reports, for both trial kinds and the kv sweep.
	prof := core.EXT4DR(device.PlainSSD())
	if got := Sweep(prof, "durability", nil); len(got) != 0 {
		t.Fatalf("empty durability sweep returned %d reports", len(got))
	}
	if got := Sweep(prof, "ordering", []sim.Time{}); len(got) != 0 {
		t.Fatalf("empty ordering sweep returned %d reports", len(got))
	}
	if got := KVSweep(prof, 1, nil); len(got) != 0 {
		t.Fatalf("empty kv sweep returned %d reports", len(got))
	}
}

func TestSweepAllOkRendering(t *testing.T) {
	// Every report of a clean sweep must render as OK and carry its crash
	// time through.
	ts := times(500, 2500)
	reps := Sweep(core.BFSDR(device.PlainSSD()), "durability", ts)
	if len(reps) != len(ts) {
		t.Fatalf("got %d reports for %d times", len(reps), len(ts))
	}
	for i, rep := range reps {
		if !rep.Ok() {
			t.Fatalf("%v: unexpected failure %v %v", rep, rep.DurabilityErrors, rep.OrderingErrors)
		}
		if rep.CrashAt != ts[i] {
			t.Errorf("report %d: crash time %v, want %v", i, rep.CrashAt, ts[i])
		}
		if s := rep.String(); !strings.Contains(s, "OK") || strings.Contains(s, "FAIL") {
			t.Errorf("all-ok report renders as %q", s)
		}
	}
}

func TestReportStringMixedErrors(t *testing.T) {
	r := Report{
		CrashAt:          sim.Time(3 * sim.Millisecond),
		SyncedOps:        7,
		RecoveredTxns:    2,
		DurabilityErrors: []string{"lost page"},
		OrderingErrors:   []string{"reordered", "reordered again"},
	}
	if r.Ok() {
		t.Fatal("mixed-error report must not be ok")
	}
	s := r.String()
	for _, want := range []string{"FAIL (1 durability, 2 ordering)", "synced=7", "txns=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("mixed report %q missing %q", s, want)
		}
	}
}
