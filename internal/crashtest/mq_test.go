package crashtest

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fs"
	"repro/internal/jbd"
	"repro/internal/sim"
)

// mqBackgroundTrial crashes a multi-queue stack while background writeback
// is in full flight: one foreground thread writes and fsyncs its own file
// while bulk writers push pages through WritebackAsync — the traffic the MQ
// layer scatters onto data streams. It audits two contracts:
//
//  1. durability: every fsync-acknowledged foreground write survives;
//  2. on the Dual engine: any block the recovered (journal-committed)
//     metadata of a bulk file references must have durable data —
//     committed metadata pointing at never-written pages is exactly the
//     D-before-JD violation that per-stream scattering would reintroduce
//     if the journal did not wait on cross-stream data dependencies.
//
// Check 2 is not applied to the JBD2 engine: the seed's JBD2 model freezes
// a transaction's metadata without writing back the covered inodes' still-
// dirty pages (real ext4-ordered does commit-time inode writeback), so a
// commit can land between Write() and WritebackAsync() and reference data
// that was never submitted — a pre-existing single-queue window (EXT4-DR
// exhibits it on this very trial) that the multi-queue layer neither
// causes nor widens.
func mqBackgroundTrial(t *testing.T, prof core.Profile, crashAt sim.Time) {
	t.Helper()
	const bulkWriters = 2
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	for b := 0; b < bulkWriters; b++ {
		b := b
		k.Spawn(fmt.Sprintf("bulk%d", b), func(p *sim.Proc) {
			f, err := s.FS.Create(p, s.FS.Root(), fmt.Sprintf("bulk%d.dat", b))
			if err != nil {
				panic(err)
			}
			for n := int64(0); ; n++ {
				for i := 0; i < 16; i++ {
					s.FS.Write(p, f, n*16+int64(i))
				}
				s.FS.WritebackAsync(p, f)
			}
		})
	}
	type acked struct{ idx, ver int64 }
	var synced []acked
	k.Spawn("foreground", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), "fg.dat")
		if err != nil {
			panic(err)
		}
		for i := int64(0); ; i++ {
			s.FS.Write(p, f, i)
			s.FS.Fsync(p, f)
			ver, _ := s.FS.Read(p, f, i)
			synced = append(synced, acked{idx: i, ver: ver})
		}
	})
	k.RunUntil(crashAt)
	s.Crash()
	var view *fs.View
	k.Spawn("recover", func(p *sim.Proc) {
		view, _ = s.RecoverView(p)
	})
	k.Run()
	defer k.Close()

	root, ok := view.Root(s.FS)
	if !ok {
		if len(synced) > 0 {
			t.Errorf("%s crash@%v: root unrecoverable despite %d fsyncs", prof.Name, crashAt, len(synced))
		}
		return
	}
	// 1. Foreground durability.
	if len(synced) > 0 {
		meta, ok := view.Lookup(root, "fg.dat")
		if !ok {
			t.Errorf("%s crash@%v: foreground file lost despite %d fsyncs", prof.Name, crashAt, len(synced))
			return
		}
		for _, a := range synced {
			if got, ok := view.PageVersion(meta, a.idx); !ok || got < a.ver {
				t.Errorf("%s crash@%v: fg page %d fsynced v%d, recovered v%d (present=%v)",
					prof.Name, crashAt, a.idx, a.ver, got, ok)
			}
		}
	}
	// 2. Ordered-mode contract on the bulk files (Dual engine only; see
	// the function comment for why JBD2 is exempt).
	if prof.FS.Journal.Mode != jbd.ModeDual {
		return
	}
	for b := 0; b < bulkWriters; b++ {
		meta, ok := view.Lookup(root, fmt.Sprintf("bulk%d.dat", b))
		if !ok {
			continue // creation never committed: nothing promised
		}
		for idx := int64(0); idx < int64(len(meta.Blocks)); idx++ {
			if meta.Blocks[idx] == 0 {
				continue
			}
			if _, ok := view.PageVersion(meta, idx); !ok {
				t.Errorf("%s crash@%v: bulk%d page %d: committed metadata references a block with no durable data (ordered-mode violation)",
					prof.Name, crashAt, b, idx)
			}
		}
	}
}

// TestMQCrashUnderBackgroundLoad sweeps crash points on both multi-queue
// stacks while background writeback is being scattered across streams.
func TestMQCrashUnderBackgroundLoad(t *testing.T) {
	for _, mk := range []func(device.Config) core.Profile{core.EXT4DR, core.EXT4MQ, core.BFSMQ} {
		prof := mk(device.NVMeSSD())
		for _, at := range times(800, 2500, 7000, 16000, 30000) {
			mqBackgroundTrial(t, prof, at)
		}
	}
}

// TestMQFsyncCoversSpreadWriteback pins the filemap_fdatawait contract on
// the multi-queue stacks: pages submitted through background writeback are
// marked clean at submission and may still be queued on a data stream —
// outside the reach of stream 0's flush — when fsync is called. fsync must
// wait on that in-flight writeback before returning; a crash immediately
// after fsync may lose nothing.
func TestMQFsyncCoversSpreadWriteback(t *testing.T) {
	const pages = 64
	for _, mk := range []func(device.Config) core.Profile{core.EXT4MQ, core.BFSMQ} {
		prof := mk(device.NVMeSSD())
		k := sim.NewKernel()
		s := core.NewStack(k, prof)
		type acked struct{ idx, ver int64 }
		var synced []acked
		k.Spawn("app", func(p *sim.Proc) {
			f, err := s.FS.Create(p, s.FS.Root(), "spread.dat")
			if err != nil {
				panic(err)
			}
			for i := int64(0); i < pages; i++ {
				s.FS.Write(p, f, i)
			}
			s.FS.Fsync(p, f) // settle allocation: the rest is pure overwrite
			// Overwrites in the same jiffy dirty no metadata, so the coming
			// fdatasync takes the no-commit path — the journal's ordered-data
			// dependencies cannot save it; only the fdatawait can.
			for i := int64(0); i < pages; i++ {
				s.FS.Write(p, f, i)
			}
			s.FS.WritebackAsync(p, f) // scattered onto data streams, pages now clean
			s.FS.Fdatasync(p, f)
			for i := int64(0); i < pages; i++ {
				ver, _ := s.FS.Read(p, f, i)
				synced = append(synced, acked{idx: i, ver: ver})
			}
			s.Crash() // power fails the instant fdatasync's promise is made
		})
		k.Run()
		var view *fs.View
		k.Spawn("recover", func(p *sim.Proc) { view, _ = s.RecoverView(p) })
		k.Run()
		root, ok := view.Root(s.FS)
		if !ok {
			t.Fatalf("%s: root unrecoverable", prof.Name)
		}
		meta, ok := view.Lookup(root, "spread.dat")
		if !ok {
			t.Fatalf("%s: file lost despite fsync", prof.Name)
		}
		for _, a := range synced {
			if got, ok := view.PageVersion(meta, a.idx); !ok || got < a.ver {
				t.Errorf("%s: page %d fsynced v%d, recovered v%d (present=%v)",
					prof.Name, a.idx, a.ver, got, ok)
			}
		}
		k.Close()
	}
}

// TestMQFdatabarrierCoversSpreadWriteback pins the same filemap_fdatawait
// contract for the *barrier* path that TestMQFsyncCoversSpreadWriteback
// pins for fsync: fdatabarrier promises that preceding writes reach
// storage before following ones, but pages submitted through background
// writeback may still be queued on a data stream — where stream 0's
// epochs cannot order them — when fdatabarrier is called. fdatabarrierDual
// must Wait-on-Transfer for exactly that in-flight cross-stream writeback
// (waitCrossStream) before the barrier means anything, so the test asserts
// the scattered requests have completed the moment Fdatabarrier returns,
// then crash-checks end to end against a second file: the barrier ordered
// file A's writeback before file B's marker, so a durable marker with lost
// A-pages is an ordering violation.
func TestMQFdatabarrierCoversSpreadWriteback(t *testing.T) {
	const pages = 64
	prof := core.BFSMQ(device.NVMeSSD())
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	type acked struct{ idx, ver int64 }
	var ordered []acked
	markerDurable := false
	k.Spawn("app", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), "barrier.dat")
		if err != nil {
			panic(err)
		}
		g, err := s.FS.Create(p, s.FS.Root(), "marker.dat")
		if err != nil {
			panic(err)
		}
		for i := int64(0); i < pages; i++ {
			s.FS.Write(p, f, i)
		}
		s.FS.Write(p, g, 0)
		s.FS.Fsync(p, f) // settle allocation: the rest is pure overwrite
		s.FS.Fsync(p, g)
		// Overwrite and push through background writeback: the requests
		// scatter onto data streams and the pages are already clean when the
		// barrier call arrives, so only waitCrossStream can see them.
		for i := int64(0); i < pages; i++ {
			s.FS.Write(p, f, i)
		}
		reqs := s.FS.WritebackAsync(p, f)
		spread := 0
		for _, r := range reqs {
			if r.Stream != 0 {
				spread++
			}
		}
		if spread == 0 {
			t.Error("background writeback was not scattered off stream 0; test is vacuous")
		}
		s.FS.Fdatabarrier(p, f)
		// The direct contract: nothing the barrier cannot order may still be
		// in flight when it returns.
		for _, r := range reqs {
			if r.Stream != 0 && !r.Completed() {
				t.Errorf("request LPA %d still in flight on stream %d after Fdatabarrier returned",
					r.LPA, r.Stream)
			}
		}
		for i := int64(0); i < pages; i++ {
			ver, _ := s.FS.Read(p, f, i)
			ordered = append(ordered, acked{idx: i, ver: ver})
		}
		// End to end: a durable write to a *different* file is ordered after
		// the barrier; its fdatasync waits on nothing of file A.
		s.FS.Write(p, g, 0)
		s.FS.Fdatasync(p, g)
		markerDurable = true
		s.Crash()
	})
	k.Run()
	var view *fs.View
	k.Spawn("recover", func(p *sim.Proc) { view, _ = s.RecoverView(p) })
	k.Run()
	defer k.Close()
	if !markerDurable {
		t.Fatal("trial never reached the marker sync")
	}
	root, ok := view.Root(s.FS)
	if !ok {
		t.Fatal("root unrecoverable")
	}
	meta, ok := view.Lookup(root, "barrier.dat")
	if !ok {
		t.Fatal("file lost despite fsync")
	}
	for _, a := range ordered {
		if got, ok := view.PageVersion(meta, a.idx); !ok || got < a.ver {
			t.Errorf("page %d: barrier-ordered v%d before durable marker, recovered v%d (present=%v)",
				a.idx, a.ver, got, ok)
		}
	}
}

// TestDurabilityMQ and TestOrderingMQ run the standard sweeps on the MQ
// stacks: the multi-queue layer must meet the same contracts as the
// single-queue one.
func TestDurabilityMQ(t *testing.T) {
	for _, mk := range []func(device.Config) core.Profile{core.EXT4MQ, core.BFSMQ} {
		for _, rep := range Sweep(mk(device.NVMeSSD()), "durability",
			times(500, 2500, 9000, 30000)) {
			if !rep.Ok() {
				t.Errorf("%v: %v", rep, rep.DurabilityErrors)
			}
		}
	}
}

func TestOrderingMQ(t *testing.T) {
	for _, rep := range Sweep(core.BFSMQ(device.NVMeSSD()), "ordering",
		times(300, 900, 2000, 4500, 9000, 15000, 25000)) {
		if !rep.Ok() {
			t.Errorf("%v: %v", rep, rep.OrderingErrors)
		}
	}
}
