// Package crashtest verifies the two contracts at the heart of the paper
// across injected power failures:
//
//   - Durability: anything fsync()/fdatasync() returned for before the crash
//     must be intact after recovery.
//   - Ordering: writes separated by fdatabarrier() (or fbarrier-committed
//     transactions) must never persist out of order — if a later epoch's
//     write survived, every earlier epoch's write survived.
//
// The checker drives a workload on a live stack, crashes the device at a
// chosen virtual time, runs device + filesystem recovery, and audits the
// recovered image against the host-side history.
package crashtest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/par"
	"repro/internal/sim"
)

// Report is the outcome of one crash trial.
type Report struct {
	CrashAt          sim.Time
	SyncedOps        int // operations fsync-acknowledged before the crash
	DurabilityErrors []string
	OrderingErrors   []string
	RecoveredTxns    int
}

// Ok reports whether the trial found no violations.
func (r Report) Ok() bool { return len(r.DurabilityErrors) == 0 && len(r.OrderingErrors) == 0 }

func (r Report) String() string {
	status := "OK"
	if !r.Ok() {
		status = fmt.Sprintf("FAIL (%d durability, %d ordering)",
			len(r.DurabilityErrors), len(r.OrderingErrors))
	}
	return fmt.Sprintf("crash@%v synced=%d txns=%d %s", r.CrashAt, r.SyncedOps, r.RecoveredTxns, status)
}

// DurabilityTrial writes pages to a file, fsyncing each, then crashes at
// crashAt and verifies every acknowledged write survived.
func DurabilityTrial(prof core.Profile, crashAt sim.Time) Report {
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	type acked struct {
		idx int64
		ver int64
	}
	var synced []acked
	var file *fs.Inode
	k.Spawn("writer", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), "durable.dat")
		if err != nil {
			panic(err)
		}
		file = f
		for i := int64(0); ; i++ {
			s.FS.Write(p, f, i)
			s.FS.Fsync(p, f)
			ver, _ := s.FS.Read(p, f, i)
			synced = append(synced, acked{idx: i, ver: ver})
		}
	})
	k.RunUntil(crashAt)
	s.Crash()
	var view *fs.View
	k.Spawn("recover", func(p *sim.Proc) {
		view, _ = s.RecoverView(p)
	})
	k.Run()
	defer k.Close()

	rep := Report{CrashAt: crashAt, SyncedOps: len(synced)}
	rep.RecoveredTxns = len(view.Journal().Applied)
	if len(synced) == 0 {
		return rep
	}
	root, ok := view.Root(s.FS)
	if !ok {
		rep.DurabilityErrors = append(rep.DurabilityErrors, "root directory unrecoverable")
		return rep
	}
	meta, ok := view.Lookup(root, "durable.dat")
	if !ok {
		rep.DurabilityErrors = append(rep.DurabilityErrors,
			fmt.Sprintf("file lost despite %d fsyncs", len(synced)))
		return rep
	}
	_ = file
	for _, a := range synced {
		got, ok := view.PageVersion(meta, a.idx)
		if !ok || got < a.ver {
			rep.DurabilityErrors = append(rep.DurabilityErrors,
				fmt.Sprintf("page %d: fsynced v%d, recovered v%d (present=%v)", a.idx, a.ver, got, ok))
		}
	}
	return rep
}

// OrderingTrial is the paper's "Hello"/"World" codelet (§4.1) at scale: a
// preallocated file is made durable, then overwritten round-robin with an
// fdatabarrier between consecutive writes. After a crash, the recovered
// image must correspond to a *prefix* of the write sequence: writing wk
// after wj with a barrier between them means wk durable implies wj durable
// (unless a later surviving write superseded wj's page).
func OrderingTrial(prof core.Profile, crashAt sim.Time) Report {
	const pages = 8
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	type wr struct {
		page int64
		ver  int64
	}
	var issued []wr // barrier-separated writes in order
	k.Spawn("writer", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), "ordered.dat")
		if err != nil {
			panic(err)
		}
		// Preallocate and make everything durable: the trial then exercises
		// the pure data-ordering path with stable metadata.
		for i := int64(0); i < pages; i++ {
			s.FS.Write(p, f, i)
		}
		s.FS.Fsync(p, f)
		for n := int64(0); ; n++ {
			idx := 1 + n%(pages-1) // page 0 untouched as an anchor
			s.FS.Write(p, f, idx)
			ver, _ := s.FS.Read(p, f, idx)
			issued = append(issued, wr{page: idx, ver: ver})
			s.FS.Fdatabarrier(p, f)
		}
	})
	k.RunUntil(crashAt)
	s.Crash()
	var view *fs.View
	k.Spawn("recover", func(p *sim.Proc) {
		view, _ = s.RecoverView(p)
	})
	k.Run()
	defer k.Close()

	rep := Report{CrashAt: crashAt}
	rep.RecoveredTxns = len(view.Journal().Applied)
	root, ok := view.Root(s.FS)
	if !ok {
		return rep // nothing durable at all: trivially ordered
	}
	meta, ok := view.Lookup(root, "ordered.dat")
	if !ok {
		return rep
	}
	// Map each page's recovered version to its index in the issue sequence.
	verToIdx := make(map[int64]int, len(issued))
	for i, w := range issued {
		verToIdx[w.ver] = i
	}
	recovered := make(map[int64]int64) // page -> version
	cut := -1                          // newest surviving write's issue index
	for i := int64(1); i < pages; i++ {
		ver, ok := view.PageVersion(meta, i)
		if !ok {
			continue
		}
		recovered[i] = ver
		if idx, ok := verToIdx[ver]; ok && idx > cut {
			cut = idx
		}
	}
	if cut < 0 {
		return rep // only the preallocation image survived
	}
	// Every page's recovered version must be at least as new as its last
	// write at or before the cut.
	lastBefore := make(map[int64]int64)
	for i := 0; i <= cut; i++ {
		lastBefore[issued[i].page] = issued[i].ver
	}
	for page, want := range lastBefore {
		got, ok := recovered[page]
		if !ok || got < want {
			rep.OrderingErrors = append(rep.OrderingErrors,
				fmt.Sprintf("write #%d (page %d v%d) durable, but page %d recovered v%d/%v < barrier-ordered v%d",
					cut, issued[cut].page, issued[cut].ver, page, got, ok, want))
		}
	}
	return rep
}

// Sweep runs trials at several crash times and aggregates failures. Each
// trial owns a private kernel, so the sweep fans out across CPUs.
func Sweep(prof core.Profile, kind string, times []sim.Time) []Report {
	out := make([]Report, len(times))
	par.For(len(times), func(i int) {
		switch kind {
		case "durability":
			out[i] = DurabilityTrial(prof, times[i])
		case "ordering":
			out[i] = OrderingTrial(prof, times[i])
		default:
			panic("crashtest: unknown trial kind " + kind)
		}
	})
	return out
}
