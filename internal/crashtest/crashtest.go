// Package crashtest verifies the two contracts at the heart of the paper
// across injected power failures:
//
//   - Durability: anything fsync()/fdatasync() returned for before the crash
//     must be intact after recovery.
//   - Ordering: writes separated by fdatabarrier() (or fbarrier-committed
//     transactions) must never persist out of order — if a later epoch's
//     write survived, every earlier epoch's write survived.
//
// The checker drives a workload on a live stack, crashes the device at a
// chosen virtual time, runs device + filesystem recovery, and audits the
// recovered image against the host-side history.
//
// The audits are the internal/crashmc Checkers applied to the one persisted
// state the simulator produced: a trial is the sampled, single-state form of
// the same invariants the model checker proves over every admissible state.
package crashtest

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crashmc"
	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
)

// Report is the outcome of one crash trial.
type Report struct {
	CrashAt           sim.Time
	SyncedOps         int // operations fsync-acknowledged before the crash
	DurabilityErrors  []string
	OrderingErrors    []string
	ConsistencyErrors []string
	RecoveredTxns     int
}

// Ok reports whether the trial found no violations.
func (r Report) Ok() bool {
	return len(r.DurabilityErrors) == 0 && len(r.OrderingErrors) == 0 && len(r.ConsistencyErrors) == 0
}

func (r Report) String() string {
	status := "OK"
	if !r.Ok() {
		status = fmt.Sprintf("FAIL (%d durability, %d ordering",
			len(r.DurabilityErrors), len(r.OrderingErrors))
		if n := len(r.ConsistencyErrors); n > 0 {
			status += fmt.Sprintf(", %d consistency", n)
		}
		status += ")"
	}
	return fmt.Sprintf("crash@%v synced=%d txns=%d %s", r.CrashAt, r.SyncedOps, r.RecoveredTxns, status)
}

// apply runs one checker against the trial's single recovered state and
// folds the violations into the report by kind.
func (r *Report) apply(c crashmc.Checker, view *fs.View) {
	r.fold(c.Check(&crashmc.State{View: view, ID: "sampled"}))
}

// fold buckets violations into the report by kind.
func (r *Report) fold(vs []crashmc.Violation) {
	for _, v := range vs {
		switch v.Kind {
		case crashmc.KindOrdering:
			r.OrderingErrors = append(r.OrderingErrors, v.Detail)
		case crashmc.KindConsistency:
			r.ConsistencyErrors = append(r.ConsistencyErrors, v.Detail)
		default:
			r.DurabilityErrors = append(r.DurabilityErrors, v.Detail)
		}
	}
}

// countTrial feeds the live-stats progress line: every crash trial in the
// process bumps the process-wide registry's counter (nil-safe when none is
// installed).
func countTrial() { metrics.Resolve(nil).Counter("crashtest/trials").Inc() }

// DurabilityTrial writes pages to a file, fsyncing each, then crashes at
// crashAt and verifies every acknowledged write survived.
func DurabilityTrial(prof core.Profile, crashAt sim.Time) Report {
	countTrial()
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	var synced []crashmc.AckedWrite
	k.Spawn("writer", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), "durable.dat")
		if err != nil {
			panic(err)
		}
		for i := int64(0); ; i++ {
			s.FS.Write(p, f, i)
			s.FS.Fsync(p, f)
			ver, _ := s.FS.Read(p, f, i)
			synced = append(synced, crashmc.AckedWrite{Idx: i, Ver: ver})
		}
	})
	k.RunUntil(crashAt)
	s.Crash()
	var view *fs.View
	k.Spawn("recover", func(p *sim.Proc) {
		view, _ = s.RecoverView(p)
	})
	k.Run()
	defer k.Close()

	rep := Report{CrashAt: crashAt, SyncedOps: len(synced)}
	rep.RecoveredTxns = len(view.Journal().Applied)
	if len(synced) == 0 {
		return rep
	}
	rep.apply(&crashmc.DurabilityChecker{FS: s.FS, File: "durable.dat", Synced: synced}, view)
	return rep
}

// OrderingTrial is the paper's "Hello"/"World" codelet (§4.1) at scale,
// via the shared crashmc.SpawnOrderingWorkload driver (the same workload
// the model checker enumerates exhaustively): a preallocated file is made
// durable, then overwritten round-robin with an fdatabarrier between
// consecutive writes. After a crash, the recovered image must correspond
// to a *prefix* of the write sequence: writing wk after wj with a barrier
// between them means wk durable implies wj durable (unless a later
// surviving write superseded wj's page). Only the ordering contract is
// audited — on the -OD profiles this trial runs on, the preallocation
// fsync makes no honest durability promise.
func OrderingTrial(prof core.Profile, crashAt sim.Time) Report {
	const pages = 8
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	w := crashmc.SpawnOrderingWorkload(k, s, pages, 0)
	k.RunUntil(crashAt)
	s.Crash()
	var view *fs.View
	k.Spawn("recover", func(p *sim.Proc) {
		view, _ = s.RecoverView(p)
	})
	k.Run()
	defer k.Close()

	rep := Report{CrashAt: crashAt}
	rep.RecoveredTxns = len(view.Journal().Applied)
	rep.apply(&crashmc.OrderingChecker{FS: s.FS, File: w.File, Pages: w.Pages, Issued: w.Issued}, view)
	return rep
}

// Sweep runs trials at several crash times and aggregates failures. Each
// trial owns a private kernel, so the sweep fans out across CPUs.
func Sweep(prof core.Profile, kind string, times []sim.Time) []Report {
	out := make([]Report, len(times))
	par.For(len(times), func(i int) {
		switch kind {
		case "durability":
			out[i] = DurabilityTrial(prof, times[i])
		case "ordering":
			out[i] = OrderingTrial(prof, times[i])
		default:
			panic("crashtest: unknown trial kind " + kind)
		}
	})
	return out
}
