package crashtest

import (
	"repro/internal/core"
	"repro/internal/crashmc"
	"repro/internal/fs"
	"repro/internal/par"
	"repro/internal/sim"
)

// KVTrial drives the kvwal store with concurrent committing clients on a
// live stack (crashmc.SpawnKVWorkload — the same driver the model checker
// uses, so the sampled and exhaustive audits share one workload history),
// power-fails the device at crashAt, recovers, and audits the two
// application-level contracts:
//
//   - durability: every mutation the store acknowledged durable
//     (kvwal.Store.DurableSeq) is reflected in the recovered image;
//   - ordering (barrier engines): the surviving WAL records form a prefix
//     of the committed history at group-commit granularity — fdatabarrier
//     between groups means a later group never persists over a missing
//     earlier one.
func KVTrial(prof core.Profile, clients int, crashAt sim.Time) Report {
	countTrial()
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	w := crashmc.SpawnKVWorkload(k, s, clients)
	k.RunUntil(crashAt)
	s.Crash()
	st := w.Store()
	if st == nil {
		// The crash landed inside Open: nothing was ever acknowledged, so
		// any recovered image is trivially consistent. The clients are still
		// poll-sleeping for readiness, so skip Run and reap them directly.
		k.Close()
		return Report{CrashAt: crashAt}
	}
	var view *fs.View
	k.Spawn("recover", func(p *sim.Proc) {
		view, _ = s.RecoverView(p)
	})
	k.Run()
	defer k.Close()

	rep := Report{CrashAt: crashAt, SyncedOps: int(st.DurableSeq())}
	rec := st.Recover(view) // one recovery scan: reported and audited
	rep.RecoveredTxns = rec.WALApplied
	rep.fold((&crashmc.KVChecker{Store: st}).CheckRecovered(rec))
	return rep
}

// KVSweep runs KVTrial at several crash times, one kernel per worker.
func KVSweep(prof core.Profile, clients int, times []sim.Time) []Report {
	out := make([]Report, len(times))
	par.For(len(times), func(i int) {
		out[i] = KVTrial(prof, clients, times[i])
	})
	return out
}
