package crashtest

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/kvwal"
	"repro/internal/par"
	"repro/internal/sim"
)

// KVTrial drives the kvwal store with concurrent committing clients on a
// live stack, power-fails the device at crashAt, recovers, and audits the
// two application-level contracts:
//
//   - durability: every mutation the store acknowledged durable
//     (kvwal.Store.DurableSeq) is reflected in the recovered image;
//   - ordering (barrier engines): the surviving WAL records form a prefix
//     of the committed history at group-commit granularity — fdatabarrier
//     between groups means a later group never persists over a missing
//     earlier one.
func KVTrial(prof core.Profile, clients int, crashAt sim.Time) Report {
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	var st *kvwal.Store
	ready := false
	k.Spawn("kv/setup", func(p *sim.Proc) {
		cfg := kvwal.Config{WALPages: 128, MemtableCap: 32, CompactFanIn: 3, CheckpointEvery: 8}
		var err error
		st, err = kvwal.Open(p, s, cfg)
		if err != nil {
			panic(err)
		}
		ready = true
	})
	for c := 0; c < clients; c++ {
		c := c
		k.SpawnIdx("kv/client", c, func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(int64(41 + c)))
			for !ready {
				p.Sleep(sim.Millisecond)
			}
			for {
				ops := make([]kvwal.Op, 3)
				for i := range ops {
					kind := kvwal.Put
					if rng.Intn(100) < 15 {
						kind = kvwal.Delete
					}
					ops[i] = kvwal.Op{Kind: kind, Key: fmt.Sprintf("k%04d", rng.Intn(512))}
				}
				st.Apply(p, ops)
			}
		})
	}
	k.RunUntil(crashAt)
	s.Crash()
	if st == nil {
		// The crash landed inside Open: nothing was ever acknowledged, so
		// any recovered image is trivially consistent. The clients are still
		// poll-sleeping for readiness, so skip Run and reap them directly.
		k.Close()
		return Report{CrashAt: crashAt}
	}
	var rec kvwal.Recovered
	k.Spawn("recover", func(p *sim.Proc) {
		view, _ := s.RecoverView(p)
		rec = st.Recover(view)
	})
	k.Run()
	defer k.Close()

	rep := Report{CrashAt: crashAt, SyncedOps: int(st.DurableSeq()), RecoveredTxns: rec.WALApplied}
	rep.DurabilityErrors, rep.OrderingErrors = st.Audit(rec)
	return rep
}

// KVSweep runs KVTrial at several crash times, one kernel per worker.
func KVSweep(prof core.Profile, clients int, times []sim.Time) []Report {
	out := make([]Report, len(times))
	par.For(len(times), func(i int) {
		out[i] = KVTrial(prof, clients, times[i])
	})
	return out
}
