package crashtest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
)

// TestKVCrashSweep enumerates crash points on all four kv stack profiles
// with concurrent group-committing clients: zero acknowledged-but-lost
// keys, and (on the barrier engines) group-prefix ordering.
func TestKVCrashSweep(t *testing.T) {
	pts := times(700, 2000, 4500, 9000, 20000, 45000)
	for _, mk := range []func(device.Config) core.Profile{
		core.EXT4DR, core.BFSDR, core.EXT4MQ, core.BFSMQ,
	} {
		prof := mk(device.NVMeSSD())
		for _, rep := range KVSweep(prof, 4, pts) {
			if !rep.Ok() {
				t.Errorf("%s %v: durability=%v ordering=%v",
					prof.Name, rep, rep.DurabilityErrors, rep.OrderingErrors)
			}
		}
	}
}

// TestKVCrashSingleClient pins the degenerate no-grouping case (every batch
// is its own group) across crash points on both engines.
func TestKVCrashSingleClient(t *testing.T) {
	for _, mk := range []func(device.Config) core.Profile{core.EXT4DR, core.BFSDR} {
		prof := mk(device.PlainSSD())
		for _, rep := range KVSweep(prof, 1, times(1500, 8000, 30000)) {
			if !rep.Ok() {
				t.Errorf("%s %v: durability=%v ordering=%v",
					prof.Name, rep, rep.DurabilityErrors, rep.OrderingErrors)
			}
		}
	}
}
