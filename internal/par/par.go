// Package par fans independent simulation kernels out across CPUs.
//
// Every experiment sweep in this repository is embarrassingly parallel: each
// cell builds its own sim.Kernel, its own stack, and writes one result slot.
// par.For runs those cells on up to GOMAXPROCS worker goroutines. Results
// stay deterministic because workers communicate only through their own
// index's slot — the schedule assigns indices, never data.
//
// Parallelism is process-global and on by default; `repro -parallel=false`
// (or SetEnabled(false)) forces serial execution, e.g. when profiling a
// single kernel.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var disabled atomic.Bool

// SetEnabled turns the worker-pool fan-out on or off process-wide.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether For fans out.
func Enabled() bool { return !disabled.Load() }

// totalTasks and doneTasks feed the live-stats progress line: every For
// call registers its cells up front and retires them as they finish, in
// both the serial and parallel paths.
var (
	totalTasks atomic.Int64
	doneTasks  atomic.Int64
)

// Progress returns the cumulative (done, total) cell counts across every
// For call in the process so far. Safe from any goroutine.
func Progress() (done, total int64) {
	return doneTasks.Load(), totalTasks.Load()
}

// For runs fn(i) for every i in [0, n), on min(GOMAXPROCS, n) goroutines
// when parallel execution is enabled, serially otherwise. It returns when
// every call has finished. fn must confine its side effects to state owned
// by index i.
func For(n int, fn func(i int)) {
	totalTasks.Add(int64(n))
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if !Enabled() || workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
			doneTasks.Add(1)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
				doneTasks.Add(1)
			}
		}()
	}
	wg.Wait()
}
