// Package workload implements the paper's workload generators: 4KB random
// write with four ordering policies (Figs. 1, 9, 10), the fxmark DWSL
// journaling-scalability workload (Fig. 13), and the filebench varmail
// mail-server workload (Fig. 15).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Policy is the ordering/durability discipline applied after each 4KB
// random write (the bar groups of Fig. 9).
type Policy int

// Policies, named as in Fig. 9.
const (
	// PolicyXnF — write() + fdatasync(): transfer-and-flush (EXT4-DR).
	PolicyXnF Policy = iota
	// PolicyX — write() + fdatasync() under nobarrier: Wait-on-Transfer
	// without the flush (EXT4-OD).
	PolicyX
	// PolicyB — write() + fdatabarrier(): barrier write, no waiting
	// (BFS-OD).
	PolicyB
	// PolicyP — plain buffered write(): no ordering at all; throughput is
	// bounded by background writeback.
	PolicyP
)

func (po Policy) String() string {
	switch po {
	case PolicyXnF:
		return "XnF"
	case PolicyX:
		return "X"
	case PolicyB:
		return "B"
	case PolicyP:
		return "P"
	}
	return "invalid"
}

// RandWriteResult is the outcome of one random-write run.
type RandWriteResult struct {
	Policy Policy
	Ops    int64
	Window sim.Duration
	IOPS   float64
	MeanQD float64
	PeakQD float64
	// Start and End bound the measured phase in virtual time (for plotting
	// queue-depth traces over the right window).
	Start, End sim.Time
}

func (r RandWriteResult) String() string {
	return fmt.Sprintf("%-4s %8.0f IOPS  meanQD=%5.1f peakQD=%3.0f",
		r.Policy, r.IOPS, r.MeanQD, r.PeakQD)
}

// RandWriteConfig parameterizes the random-write workload.
type RandWriteConfig struct {
	Policy    Policy
	FilePages int          // working-set size in 4KB pages
	Duration  sim.Duration // measurement window
	Warmup    sim.Duration
	Seed      int64
}

// DefaultRandWrite returns the Fig. 9 setup for a policy.
func DefaultRandWrite(po Policy) RandWriteConfig {
	return RandWriteConfig{
		Policy:    po,
		FilePages: 2048,
		Duration:  400 * sim.Millisecond,
		Warmup:    50 * sim.Millisecond,
		Seed:      1,
	}
}

// RandWrite runs the 4KB random-write workload on a freshly built stack and
// reports IOPS and queue-depth statistics. It spawns the writer, runs the
// kernel for warmup+duration, and measures only the post-warmup window.
func RandWrite(k *sim.Kernel, s *core.Stack, cfg RandWriteConfig) RandWriteResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var file *fs.Inode
	ready := false
	var ops int64
	measuring := false

	k.Spawn("randwrite/writer", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), "bench.dat")
		if err != nil {
			panic(err)
		}
		// Preallocate so the measured phase has no allocating writes.
		for i := 0; i < cfg.FilePages; i++ {
			s.FS.Write(p, f, int64(i))
		}
		s.FS.SyncFS(p)
		file = f
		ready = true
		for {
			idx := int64(rng.Intn(cfg.FilePages))
			s.FS.Write(p, file, idx)
			switch cfg.Policy {
			case PolicyXnF, PolicyX:
				s.FS.Fdatasync(p, file)
			case PolicyB:
				s.FS.Fdatabarrier(p, file)
			case PolicyP:
				// Buffered write: push the page out asynchronously; the
				// block layer's nr_requests limit provides the dirty
				// throttling.
				s.FS.WritebackAsync(p, file)
			}
			if measuring {
				ops++
			}
		}
	})

	k.RunUntil(k.Now().Add(cfg.Warmup))
	if !ready {
		// Preallocation outlasted the warmup; extend until it finishes.
		for !ready {
			k.RunUntil(k.Now().Add(10 * sim.Millisecond))
		}
		k.RunUntil(k.Now().Add(cfg.Warmup))
	}
	measuring = true
	start := k.Now()
	k.RunUntil(start.Add(cfg.Duration))
	measuring = false
	end := k.Now()

	qd := s.Dev.QDSeries()
	return RandWriteResult{
		Policy: cfg.Policy,
		Ops:    ops,
		Window: sim.Duration(end - start),
		IOPS:   metrics.Rate(ops, sim.Duration(end-start)),
		MeanQD: qd.Mean(start, end),
		PeakQD: qd.Peak(start, end),
		Start:  start,
		End:    end,
	}
}
