package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// VarmailConfig parameterizes the filebench varmail workload (Fig. 15): a
// mail-server pattern of create/append/fsync/read/append/fsync/delete over
// a directory of small files, with heavy fsync traffic from many threads.
type VarmailConfig struct {
	Threads   int
	Files     int // per-thread working set of mail files
	AppendPgs int // pages appended per delivery
	Duration  sim.Duration
	Warmup    sim.Duration
	Seed      int64
}

// DefaultVarmail returns the Fig. 15 setup.
func DefaultVarmail() VarmailConfig {
	return VarmailConfig{
		Threads:   16,
		Files:     64,
		AppendPgs: 2,
		Duration:  300 * sim.Millisecond,
		Warmup:    30 * sim.Millisecond,
		Seed:      7,
	}
}

// VarmailResult is the outcome of one varmail run. Ops counts filebench
// flowops (each create/append/sync/read/delete counts as one).
type VarmailResult struct {
	Threads int
	Ops     int64
	Window  sim.Duration
	OpsPerS float64
}

func (r VarmailResult) String() string {
	return fmt.Sprintf("varmail %2d thr %9.0f ops/s", r.Threads, r.OpsPerS)
}

// Varmail runs the workload. Sync calls go through the stack profile
// (fsync for -DR, fbarrier for -OD / OptFS).
func Varmail(k *sim.Kernel, s *core.Stack, cfg VarmailConfig) VarmailResult {
	var ops int64
	measuring := false
	count := func() {
		if measuring {
			ops++
		}
	}
	for t := 0; t < cfg.Threads; t++ {
		t := t
		k.SpawnIdx("varmail/", t, func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(t)))
			dir, err := s.FS.Mkdir(p, s.FS.Root(), fmt.Sprintf("mbox%d", t))
			if err != nil {
				panic(err)
			}
			seq := 0
			live := make([]string, 0, cfg.Files)
			for {
				// Deliver: create a new mail file, append, fsync.
				name := fmt.Sprintf("m%d", seq)
				seq++
				f, err := s.FS.Create(p, dir, name)
				if err != nil {
					continue
				}
				count()
				for pg := 0; pg < cfg.AppendPgs; pg++ {
					s.FS.Write(p, f, int64(pg))
					count()
				}
				s.Sync(p, f)
				count()
				live = append(live, name)
				// Read a random mail and append to it (mailbox update).
				if len(live) > 1 {
					victim := live[rng.Intn(len(live))]
					if vf, ok := s.FS.Lookup(dir, victim); ok {
						s.FS.Read(p, vf, 0)
						count()
						s.FS.Write(p, vf, int64(cfg.AppendPgs))
						count()
						s.Sync(p, vf)
						count()
					}
				}
				// Expire old mail to bound the working set.
				if len(live) > cfg.Files {
					old := live[0]
					live = live[1:]
					if err := s.FS.Unlink(p, dir, old); err == nil {
						count()
					}
				}
			}
		})
	}
	k.RunUntil(k.Now().Add(cfg.Warmup))
	measuring = true
	start := k.Now()
	k.RunUntil(start.Add(cfg.Duration))
	measuring = false
	end := k.Now()
	return VarmailResult{
		Threads: cfg.Threads,
		Ops:     ops,
		Window:  sim.Duration(end - start),
		OpsPerS: metrics.Rate(ops, sim.Duration(end-start)),
	}
}
