package workload

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestReadTraceParsesJSONL(t *testing.T) {
	in := `# recorded 2026-08-01, kv frontend
{"t": 0, "op": "put", "key": "a", "size": 4096}

{"t": 250000, "op": "get", "key": "b"}
{"t": 125000, "op": "delete", "key": "c", "size": 512}
`
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceRow{
		{T: 0, Op: ClassPut, Key: "a", Size: 4096},
		{T: 125 * sim.Microsecond, Op: ClassDelete, Key: "c", Size: 512},
		{T: 250 * sim.Microsecond, Op: ClassGet, Key: "b"},
	}
	if !reflect.DeepEqual(tr.Rows, want) {
		t.Fatalf("rows %+v, want %+v", tr.Rows, want)
	}
	if _, err := ReadTrace(strings.NewReader(`{"t": 1, "op": "frob", "key": "x"}`)); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"t": -5, "op": "get", "key": "x"}`)); err == nil {
		t.Fatal("negative arrival accepted")
	}
}

// uniformTrace records n rows with a fixed gap: mean rate is exactly
// 1/gap, which replay must preserve when wrapping.
func uniformTrace(n int, gap sim.Duration) *Trace {
	tr := &Trace{}
	for i := 0; i < n; i++ {
		tr.Rows = append(tr.Rows, TraceRow{
			T: sim.Duration(i) * gap, Op: ClassPut, Key: fmt.Sprintf("k%04d", i),
		})
	}
	return tr
}

func TestTraceReplayDeterministic(t *testing.T) {
	in := `{"t": 1000, "op": "put", "key": "a"}
{"t": 90000, "op": "get", "key": "b"}
{"t": 170000, "op": "get", "key": "c"}
`
	a, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ReadTrace(strings.NewReader(in))
	const window = 3 * sim.Millisecond
	ta, tb := a.Times(window), b.Times(window)
	if len(ta) == 0 || !reflect.DeepEqual(ta, tb) {
		t.Fatalf("replay not deterministic: %d vs %d arrivals", len(ta), len(tb))
	}
	for i := 1; i < len(ta); i++ {
		if ta[i] < ta[i-1] {
			t.Fatalf("arrivals not ascending at %d: %v < %v", i, ta[i], ta[i-1])
		}
	}
	if last := sim.Duration(ta[len(ta)-1]); last >= window {
		t.Fatalf("arrival beyond window: %v", last)
	}
	// Row mapping follows emission order cyclically.
	for i := range ta {
		if got, want := a.Row(i).Key, a.Rows[i%3].Key; got != want {
			t.Fatalf("Row(%d) = %s, want %s", i, got, want)
		}
	}
}

func TestTraceReplayPreservesMeanRate(t *testing.T) {
	const gap = 100 * sim.Microsecond
	tr := uniformTrace(50, gap) // span 4.9ms, period 5ms, mean rate 1/gap
	const window = 50 * sim.Millisecond
	out := tr.Times(window)
	// Exact: 10 cycles of 50 rows each fill the 50ms window.
	if want := int(window / gap); len(out) != want {
		t.Fatalf("replay rate drifted: %d arrivals over %v, want %d", len(out), window, want)
	}
	// The wrapped cycles keep the recorded gap everywhere, including across
	// the wrap seam.
	for i := 1; i < len(out); i++ {
		if d := sim.Duration(out[i] - out[i-1]); d != gap {
			t.Fatalf("gap %v at %d, want %v", d, i, gap)
		}
	}
}

func TestTraceReplayDegenerate(t *testing.T) {
	if got := (&Trace{}).Times(sim.Millisecond); got != nil {
		t.Fatalf("empty trace produced arrivals: %v", got)
	}
	one := &Trace{Rows: []TraceRow{{T: 0, Op: ClassPut, Key: "a"}}}
	if got := one.Times(sim.Millisecond); len(got) != 1 {
		t.Fatalf("single-row trace: %v", got)
	}
}
