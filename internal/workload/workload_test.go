package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
)

// shortRand is a fast random-write config for tests.
func shortRand(po Policy) RandWriteConfig {
	cfg := DefaultRandWrite(po)
	cfg.FilePages = 256
	cfg.Duration = 60 * sim.Millisecond
	cfg.Warmup = 10 * sim.Millisecond
	return cfg
}

func runRand(t *testing.T, prof core.Profile, po Policy) RandWriteResult {
	t.Helper()
	k := sim.NewKernel()
	defer k.Close()
	s := core.NewStack(k, prof)
	return RandWrite(k, s, shortRand(po))
}

func TestRandWritePolicies(t *testing.T) {
	xnf := runRand(t, core.EXT4DR(device.PlainSSD()), PolicyXnF)
	x := runRand(t, core.EXT4OD(device.PlainSSD()), PolicyX)
	b := runRand(t, core.BFSOD(device.PlainSSD()), PolicyB)
	pp := runRand(t, core.EXT4OD(device.PlainSSD()), PolicyP)
	t.Logf("XnF=%v", xnf)
	t.Logf("X  =%v", x)
	t.Logf("B  =%v", b)
	t.Logf("P  =%v", pp)
	// The Fig. 9 shape: XnF < X < B, and B within striking distance of P.
	if !(xnf.IOPS < x.IOPS) {
		t.Errorf("XnF (%.0f) should be slower than X (%.0f)", xnf.IOPS, x.IOPS)
	}
	if !(x.IOPS*2 <= b.IOPS) {
		t.Errorf("B (%.0f) should be at least 2x X (%.0f) per §6.2", b.IOPS, x.IOPS)
	}
	if b.IOPS > pp.IOPS*1.1 {
		t.Errorf("B (%.0f) implausibly faster than P (%.0f)", b.IOPS, pp.IOPS)
	}
	// Queue depth: X stays near 1; B drives the queue deep (§6.2).
	if x.MeanQD > 2 {
		t.Errorf("X mean QD = %.1f, should hover near 1", x.MeanQD)
	}
	if b.MeanQD < 4 {
		t.Errorf("B mean QD = %.1f, should be deep", b.MeanQD)
	}
}

func TestDWSLScalesWithThreads(t *testing.T) {
	run := func(prof core.Profile, threads int) DWSLResult {
		k := sim.NewKernel()
		defer k.Close()
		s := core.NewStack(k, prof)
		cfg := DefaultDWSL(threads)
		cfg.Duration = 80 * sim.Millisecond
		cfg.Warmup = 10 * sim.Millisecond
		return DWSL(k, s, cfg)
	}
	ext1 := run(core.EXT4DR(device.PlainSSD()), 1)
	ext4 := run(core.EXT4DR(device.PlainSSD()), 4)
	bfs4 := run(core.BFSDR(device.PlainSSD()), 4)
	t.Logf("EXT4 1thr=%v", ext1)
	t.Logf("EXT4 4thr=%v", ext4)
	t.Logf("BFS  4thr=%v", bfs4)
	if ext4.OpsPerS < ext1.OpsPerS {
		t.Errorf("EXT4 DWSL got slower with threads: %.0f -> %.0f", ext1.OpsPerS, ext4.OpsPerS)
	}
	// Fig. 13: BFS-DR roughly 2x EXT4-DR on plain-SSD.
	if bfs4.OpsPerS < ext4.OpsPerS*1.3 {
		t.Errorf("BFS-DR (%.0f) not clearly above EXT4-DR (%.0f)", bfs4.OpsPerS, ext4.OpsPerS)
	}
}

func TestVarmailRunsAndOrders(t *testing.T) {
	run := func(prof core.Profile) VarmailResult {
		k := sim.NewKernel()
		defer k.Close()
		s := core.NewStack(k, prof)
		cfg := DefaultVarmail()
		cfg.Threads = 4
		cfg.Files = 16
		cfg.Duration = 80 * sim.Millisecond
		cfg.Warmup = 10 * sim.Millisecond
		return Varmail(k, s, cfg)
	}
	extDR := run(core.EXT4DR(device.PlainSSD()))
	bfsDR := run(core.BFSDR(device.PlainSSD()))
	bfsOD := run(core.BFSOD(device.PlainSSD()))
	t.Logf("EXT4-DR=%v", extDR)
	t.Logf("BFS-DR =%v", bfsDR)
	t.Logf("BFS-OD =%v", bfsOD)
	if extDR.Ops == 0 || bfsDR.Ops == 0 {
		t.Fatal("varmail made no progress")
	}
	if bfsDR.OpsPerS < extDR.OpsPerS {
		t.Errorf("BFS-DR (%.0f) below EXT4-DR (%.0f); Fig. 15 expects a gain", bfsDR.OpsPerS, extDR.OpsPerS)
	}
	if bfsOD.OpsPerS < bfsDR.OpsPerS {
		t.Errorf("BFS-OD (%.0f) below BFS-DR (%.0f)", bfsOD.OpsPerS, bfsDR.OpsPerS)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyXnF.String() != "XnF" || PolicyX.String() != "X" || PolicyB.String() != "B" || PolicyP.String() != "P" {
		t.Error("policy strings")
	}
}
