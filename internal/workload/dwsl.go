package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// DWSLConfig parameterizes the fxmark DWSL workload (Fig. 13): each thread
// performs 4KB allocating writes followed by fsync on its own file, so
// every sync commits a journal transaction. The per-core scalability of
// journaling is exactly what Dual-Mode journaling improves.
type DWSLConfig struct {
	Threads  int
	Duration sim.Duration
	Warmup   sim.Duration
}

// DefaultDWSL returns the Fig. 13 setup for a core count.
func DefaultDWSL(threads int) DWSLConfig {
	return DWSLConfig{
		Threads:  threads,
		Duration: 300 * sim.Millisecond,
		Warmup:   30 * sim.Millisecond,
	}
}

// DWSLResult is the outcome of one DWSL run.
type DWSLResult struct {
	Threads int
	Ops     int64
	Window  sim.Duration
	OpsPerS float64
}

func (r DWSLResult) String() string {
	return fmt.Sprintf("%2d threads %9.0f ops/s", r.Threads, r.OpsPerS)
}

// DWSL runs the workload: one writer process per simulated core.
func DWSL(k *sim.Kernel, s *core.Stack, cfg DWSLConfig) DWSLResult {
	var ops int64
	measuring := false
	for t := 0; t < cfg.Threads; t++ {
		t := t
		k.SpawnIdx("dwsl/", t, func(p *sim.Proc) {
			f, err := s.FS.Create(p, s.FS.Root(), fmt.Sprintf("dwsl-%d.dat", t))
			if err != nil {
				panic(err)
			}
			for idx := int64(0); ; idx++ {
				s.FS.Write(p, f, idx) // allocating write: metadata always dirty
				s.Sync(p, f)
				if measuring {
					ops++
				}
			}
		})
	}
	k.RunUntil(k.Now().Add(cfg.Warmup))
	measuring = true
	start := k.Now()
	k.RunUntil(start.Add(cfg.Duration))
	measuring = false
	end := k.Now()
	return DWSLResult{
		Threads: cfg.Threads,
		Ops:     ops,
		Window:  sim.Duration(end - start),
		OpsPerS: metrics.Rate(ops, sim.Duration(end-start)),
	}
}
