package workload

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Open-loop traffic generation: arrival processes, key popularity and
// operation mix for a client population that offers load at its own pace
// instead of waiting for completions (closed-loop benchmarks throttle
// themselves, hiding exactly the queueing collapse tail-latency studies
// care about). Shared by the kvcluster service sweep and any experiment
// that wants Zipfian key choice — everything is deterministic under a
// fixed seed.

// ArrivalKind selects the arrival process shape.
type ArrivalKind int

// Arrival processes.
const (
	// ArrivalPoisson is a homogeneous Poisson process: exponential
	// inter-arrival times at RatePerS.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalBursty is a square-wave modulated Poisson process: within each
	// Period, the first Duty fraction runs at BurstFactor times the base
	// rate and the remainder at a compensating low rate, preserving the
	// mean offered load.
	ArrivalBursty
	// ArrivalDiurnal is a sinusoidally modulated Poisson process:
	// rate(t) = RatePerS * (1 + Amplitude*sin(2*pi*t/Period)), the classic
	// day/night traffic curve compressed to Period.
	ArrivalDiurnal
)

func (k ArrivalKind) String() string {
	switch k {
	case ArrivalBursty:
		return "bursty"
	case ArrivalDiurnal:
		return "diurnal"
	}
	return "poisson"
}

// ArrivalConfig parameterizes one arrival process.
type ArrivalConfig struct {
	Kind ArrivalKind
	// RatePerS is the mean offered rate in requests per second.
	RatePerS float64
	// BurstFactor is the bursty peak-rate multiplier (>= 1; default 4).
	BurstFactor float64
	// Period is the bursty/diurnal cycle length (default 10ms).
	Period sim.Duration
	// Duty is the fraction of a bursty period spent at the peak rate
	// (0 < Duty < 1; default 0.25).
	Duty float64
	// Amplitude is the diurnal modulation depth in [0, 1] (default 0.8).
	Amplitude float64
	// Seed makes the generated arrival sequence deterministic.
	Seed int64
}

func (c ArrivalConfig) withDefaults() ArrivalConfig {
	if c.BurstFactor < 1 {
		c.BurstFactor = 4
	}
	if c.Period <= 0 {
		c.Period = 10 * sim.Millisecond
	}
	if c.Duty <= 0 || c.Duty >= 1 {
		c.Duty = 0.25
	}
	if c.Amplitude <= 0 || c.Amplitude > 1 {
		c.Amplitude = 0.8
	}
	return c
}

// peakRate returns the maximum instantaneous rate, the envelope the
// thinning sampler draws candidate arrivals at.
func (c ArrivalConfig) peakRate() float64 {
	switch c.Kind {
	case ArrivalBursty:
		return c.RatePerS * c.BurstFactor
	case ArrivalDiurnal:
		return c.RatePerS * (1 + c.Amplitude)
	}
	return c.RatePerS
}

// rateAt returns the instantaneous rate at time t from the window start.
func (c ArrivalConfig) rateAt(t sim.Duration) float64 {
	switch c.Kind {
	case ArrivalBursty:
		phase := float64(t%c.Period) / float64(c.Period)
		if phase < c.Duty {
			return c.RatePerS * c.BurstFactor
		}
		// Compensating trough rate so the cycle mean stays RatePerS.
		low := c.RatePerS * (1 - c.Duty*c.BurstFactor) / (1 - c.Duty)
		if low < 0 {
			low = 0
		}
		return low
	case ArrivalDiurnal:
		phase := float64(t%c.Period) / float64(c.Period)
		return c.RatePerS * (1 + c.Amplitude*math.Sin(2*math.Pi*phase))
	}
	return c.RatePerS
}

// Times generates the arrival instants within [0, window), ascending. The
// modulated processes use Lewis-Shedler thinning against the peak-rate
// envelope, so every kind reduces to exponential draws from one seeded
// source and the sequence is reproducible.
func (c ArrivalConfig) Times(window sim.Duration) []sim.Time {
	c = c.withDefaults()
	if c.RatePerS <= 0 || window <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(c.Seed))
	peak := c.peakRate()
	meanGap := float64(sim.Second) / peak
	var out []sim.Time
	for t := sim.Duration(0); ; {
		t += sim.Duration(rng.ExpFloat64() * meanGap)
		if t >= window {
			return out
		}
		if c.Kind != ArrivalPoisson && rng.Float64()*peak > c.rateAt(t) {
			continue // thinned: candidate rejected at the current rate
		}
		out = append(out, sim.Time(t))
	}
}

// Zipf draws key indices in [0, n) with Zipfian popularity: the rank-r key
// has weight 1/(r+1)^Theta, YCSB's skew model. Theta in (0, 1] covers the
// usual benchmark range (math/rand's Zipf needs s > 1, so this rolls the
// cumulative-weight form). Theta 0 degenerates to uniform.
type Zipf struct {
	rng *rand.Rand
	cum []float64 // cumulative normalized weights, cum[n-1] == 1
}

// NewZipf builds a deterministic Zipfian sampler over n keys.
func NewZipf(seed int64, n int, theta float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	z := &Zipf{rng: rand.New(rand.NewSource(seed)), cum: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

// Next returns the next key index: binary search of one uniform draw over
// the cumulative weights.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// OpClass is the YCSB-style operation class of one generated request.
type OpClass int

// Operation classes.
const (
	ClassGet OpClass = iota
	ClassPut
	ClassDelete
)

func (c OpClass) String() string {
	switch c {
	case ClassPut:
		return "put"
	case ClassDelete:
		return "delete"
	}
	return "get"
}

// Mix is a YCSB-style read/write mix: ReadPct percent of requests are
// Gets; of the remaining writes, DeletePct percent are Deletes.
type Mix struct {
	ReadPct   int
	DeletePct int
}

// Pick draws one operation class from the mix.
func (m Mix) Pick(rng *rand.Rand) OpClass {
	if rng.Intn(100) < m.ReadPct {
		return ClassGet
	}
	if rng.Intn(100) < m.DeletePct {
		return ClassDelete
	}
	return ClassPut
}
