package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// Poisson arrivals: the inter-arrival mean must match 1/rate and, since
// exponential gaps have stddev == mean, the variance must match the square
// of the mean — both within a few percent over a long window.
func TestPoissonInterArrivalMoments(t *testing.T) {
	cfg := ArrivalConfig{Kind: ArrivalPoisson, RatePerS: 200_000, Seed: 7}
	times := cfg.Times(2 * sim.Second)
	if len(times) < 100_000 {
		t.Fatalf("expected ~400k arrivals, got %d", len(times))
	}
	gaps := make([]float64, 0, len(times))
	prev := sim.Time(0)
	for _, at := range times {
		gaps = append(gaps, sim.Duration(at-prev).Seconds())
		prev = at
	}
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	variance := 0.0
	for _, g := range gaps {
		variance += (g - mean) * (g - mean)
	}
	variance /= float64(len(gaps))

	wantMean := 1 / cfg.RatePerS
	if r := mean / wantMean; r < 0.98 || r > 1.02 {
		t.Errorf("inter-arrival mean %.3gs, want %.3gs (ratio %.3f)", mean, wantMean, r)
	}
	// Exponential: variance = mean^2.
	if r := variance / (wantMean * wantMean); r < 0.95 || r > 1.05 {
		t.Errorf("inter-arrival variance %.3g, want %.3g (ratio %.3f)",
			variance, wantMean*wantMean, r)
	}
}

// The modulated processes must preserve the configured mean rate and
// actually modulate: the bursty duty phase must carry BurstFactor times the
// trough traffic density.
func TestModulatedArrivalsPreserveMeanRate(t *testing.T) {
	for _, kind := range []ArrivalKind{ArrivalBursty, ArrivalDiurnal} {
		cfg := ArrivalConfig{Kind: kind, RatePerS: 100_000, Seed: 11}
		window := 2 * sim.Second
		times := cfg.Times(window)
		got := float64(len(times)) / window.Seconds()
		if r := got / cfg.RatePerS; r < 0.97 || r > 1.03 {
			t.Errorf("%v: offered %.0f/s, want %.0f/s (ratio %.3f)", kind, got, cfg.RatePerS, r)
		}
	}
}

func TestBurstyDutyCycleShape(t *testing.T) {
	cfg := ArrivalConfig{Kind: ArrivalBursty, RatePerS: 200_000, BurstFactor: 4,
		Period: 10 * sim.Millisecond, Duty: 0.25, Seed: 3}
	times := cfg.Times(sim.Second)
	inBurst := 0
	for _, at := range times {
		phase := float64(sim.Duration(at)%cfg.Period) / float64(cfg.Period)
		if phase < cfg.Duty {
			inBurst++
		}
	}
	// Duty 0.25 at 4x: the burst quarter carries all the traffic that the
	// compensating trough rate (exactly 0 here) does not — 100% of it.
	if frac := float64(inBurst) / float64(len(times)); frac < 0.99 {
		t.Errorf("burst phase carries %.1f%% of arrivals, want ~100%%", frac*100)
	}
}

// Zipfian popularity: empirical frequency must decrease with rank and match
// the theoretical head probabilities; rank-0 over rank-9 must show the
// configured skew.
func TestZipfRankFrequency(t *testing.T) {
	const n, draws = 1000, 500_000
	const theta = 0.99
	z := NewZipf(5, n, theta)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Head probability: p(0) = (1/1^theta) / H(n, theta).
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / math.Pow(float64(i), theta)
	}
	p0 := float64(counts[0]) / draws
	want0 := 1 / h
	if r := p0 / want0; r < 0.95 || r > 1.05 {
		t.Errorf("rank-0 frequency %.4f, want %.4f (ratio %.3f)", p0, want0, r)
	}
	// Monotone-ish decay over decade ranks (sampling noise permits local
	// inversions, decades do not).
	for _, pair := range [][2]int{{0, 9}, {9, 99}, {99, 999}} {
		lo, hi := pair[0], pair[1]
		if counts[lo] <= counts[hi] {
			t.Errorf("rank %d count %d not above rank %d count %d", lo, counts[lo], hi, counts[hi])
		}
	}
	// rank0/rank9 ratio ~ 10^theta.
	ratio := float64(counts[0]) / float64(counts[9])
	want := math.Pow(10, theta)
	if r := ratio / want; r < 0.85 || r > 1.15 {
		t.Errorf("rank0/rank9 ratio %.2f, want %.2f", ratio, want)
	}
}

func TestZipfThetaZeroIsUniform(t *testing.T) {
	const n, draws = 16, 160_000
	z := NewZipf(9, n, 0)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < draws/n*80/100 || c > draws/n*120/100 {
			t.Errorf("theta=0 key %d count %d, want ~%d", i, c, draws/n)
		}
	}
}

// Everything must be bit-deterministic under a fixed seed.
func TestGeneratorsDeterministicUnderSeed(t *testing.T) {
	for _, kind := range []ArrivalKind{ArrivalPoisson, ArrivalBursty, ArrivalDiurnal} {
		cfg := ArrivalConfig{Kind: kind, RatePerS: 50_000, Seed: 42}
		a, b := cfg.Times(100*sim.Millisecond), cfg.Times(100*sim.Millisecond)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ: %d vs %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: arrival %d differs: %v vs %v", kind, i, a[i], b[i])
			}
		}
	}
	za, zb := NewZipf(42, 512, 0.9), NewZipf(42, 512, 0.9)
	for i := 0; i < 10_000; i++ {
		if a, b := za.Next(), zb.Next(); a != b {
			t.Fatalf("zipf draw %d differs: %d vs %d", i, a, b)
		}
	}
}

func TestMixPick(t *testing.T) {
	m := Mix{ReadPct: 50, DeletePct: 10}
	rng := rand.New(rand.NewSource(1))
	var gets, puts, dels int
	for i := 0; i < 100_000; i++ {
		switch m.Pick(rng) {
		case ClassGet:
			gets++
		case ClassPut:
			puts++
		default:
			dels++
		}
	}
	if gets < 49_000 || gets > 51_000 {
		t.Errorf("gets %d, want ~50000", gets)
	}
	// Deletes: 10% of the non-read half.
	if dels < 4_000 || dels > 6_000 {
		t.Errorf("deletes %d, want ~5000", dels)
	}
}
