package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Trace-replay arrivals: instead of a synthetic arrival process, replay a
// recorded request stream through the open-loop engine. The format is
// minimal JSONL — one object per line:
//
//	{"t": 120000, "op": "put", "key": "u0000042", "size": 4096}
//
// with t the arrival instant in nanoseconds from the start of the
// recording, op one of get/put/delete, and size the payload in bytes
// (carried through for engines that charge by it; the kv service ignores
// it). Blank lines and lines starting with '#' are skipped.

// TraceRow is one recorded request.
type TraceRow struct {
	T    sim.Duration // arrival offset from the start of the recording
	Op   OpClass
	Key  string
	Size int64
}

// Trace is a recorded request stream, rows ascending by arrival offset.
type Trace struct {
	Rows []TraceRow
}

type traceJSON struct {
	T    int64  `json:"t"`
	Op   string `json:"op"`
	Key  string `json:"key"`
	Size int64  `json:"size"`
}

// ReadTrace parses a JSONL trace. Rows are stably sorted by arrival offset
// (recorders that log at completion time produce slightly-out-of-order
// rows; replay needs ascending arrivals).
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		var row traceJSON
		if err := json.Unmarshal([]byte(s), &row); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		if row.T < 0 {
			return nil, fmt.Errorf("trace line %d: negative arrival %d", line, row.T)
		}
		var op OpClass
		switch row.Op {
		case "get", "":
			op = ClassGet
		case "put":
			op = ClassPut
		case "delete":
			op = ClassDelete
		default:
			return nil, fmt.Errorf("trace line %d: unknown op %q", line, row.Op)
		}
		tr.Rows = append(tr.Rows, TraceRow{
			T: sim.Duration(row.T), Op: op, Key: row.Key, Size: row.Size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(tr.Rows, func(i, j int) bool { return tr.Rows[i].T < tr.Rows[j].T })
	return tr, nil
}

// period is the trace's replay cycle length: the recorded span plus one
// mean inter-arrival gap to close the cycle, so wrapping the trace to fill
// a longer window preserves its mean rate exactly (n rows per period,
// period/n == recorded mean gap).
func (tr *Trace) period() sim.Duration {
	n := len(tr.Rows)
	if n == 0 {
		return 0
	}
	span := tr.Rows[n-1].T - tr.Rows[0].T
	if n == 1 || span <= 0 {
		return 0
	}
	return span + span/sim.Duration(n-1)
}

// Times generates the replay arrival instants within [0, window),
// ascending — the trace-side counterpart of ArrivalConfig.Times. The
// recording is shifted to start at zero and wrapped cyclically until the
// window is full; arrival i replays row i modulo the trace length (see
// Row). Deterministic by construction: no random state at all.
func (tr *Trace) Times(window sim.Duration) []sim.Time {
	n := len(tr.Rows)
	if n == 0 || window <= 0 {
		return nil
	}
	base := tr.Rows[0].T
	period := tr.period()
	var out []sim.Time
	if period <= 0 {
		// Single row, or every row at the same instant: one shot, no cycle
		// to preserve the rate of.
		for _, r := range tr.Rows {
			if r.T-base < window {
				out = append(out, sim.Time(r.T-base))
			}
		}
		return out
	}
	for cycle := sim.Duration(0); ; cycle += period {
		for _, r := range tr.Rows {
			t := cycle + (r.T - base)
			if sim.Duration(t) >= window {
				return out
			}
			out = append(out, sim.Time(t))
		}
	}
}

// Row returns the recorded row backing replay arrival i: Times emits the
// rows cyclically in order, so the mapping is i modulo the trace length.
func (tr *Trace) Row(i int) TraceRow {
	return tr.Rows[i%len(tr.Rows)]
}

// SyntheticTrace fabricates a deterministic recording: n rows at the given
// mean rate with exponential inter-arrival gaps, a fixed 50/45/5
// get/put/delete mix, and a compact uniform key universe (n/4 keys, so
// overwrites and deletes recur). It stands in for a real recording wherever
// trace replay is wired but no -trace file was supplied, keeping the replay
// path exercised end to end with zero external inputs.
func SyntheticTrace(n int, ratePerS float64, seed int64) *Trace {
	if n <= 0 || ratePerS <= 0 {
		return &Trace{}
	}
	rng := rand.New(rand.NewSource(seed))
	gap := float64(sim.Second) / ratePerS
	keys := n / 4
	if keys < 16 {
		keys = 16
	}
	tr := &Trace{Rows: make([]TraceRow, 0, n)}
	t := sim.Duration(0)
	for i := 0; i < n; i++ {
		t += sim.Duration(rng.ExpFloat64() * gap)
		op := ClassPut
		switch r := rng.Float64(); {
		case r < 0.50:
			op = ClassGet
		case r < 0.55:
			op = ClassDelete
		}
		tr.Rows = append(tr.Rows, TraceRow{
			T: t, Op: op, Key: fmt.Sprintf("t%07d", rng.Intn(keys)), Size: 4096,
		})
	}
	return tr
}
