package kvwal

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
)

func newStack(t *testing.T, prof core.Profile) (*sim.Kernel, *core.Stack) {
	t.Helper()
	k := sim.NewKernel()
	return k, core.NewStack(k, prof)
}

func TestPutGetDelete(t *testing.T) {
	k, s := newStack(t, core.BFSDR(device.PlainSSD()))
	defer k.Close()
	k.Spawn("app", func(p *sim.Proc) {
		st, err := Open(p, s, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		seqA := st.PutKey(p, "alpha")
		seqB := st.PutKey(p, "beta")
		if got, ok := st.Get(p, "alpha"); !ok || got != seqA {
			t.Errorf("alpha: got (%d,%v), want seq %d", got, ok, seqA)
		}
		if seqA == 0 || seqB != seqA+1 {
			t.Errorf("Apply seqs not per-op: alpha=%d beta=%d", seqA, seqB)
		}
		st.DeleteKey(p, "alpha")
		if _, ok := st.Get(p, "alpha"); ok {
			t.Error("alpha still visible after delete")
		}
		if _, ok := st.Get(p, "beta"); !ok {
			t.Error("beta lost")
		}
		if _, ok := st.Get(p, "never"); ok {
			t.Error("phantom key")
		}
		if !st.BarrierCommit() {
			t.Error("Dual engine should commit with barriers")
		}
		k.Stop()
	})
	k.Run()
}

// TestGroupCommitAmortizes checks that concurrent clients' batches merge
// into shared group commits: with many clients there must be fewer sync
// calls than batches.
func TestGroupCommitAmortizes(t *testing.T) {
	for _, prof := range []core.Profile{
		core.EXT4DR(device.NVMeSSD()), core.BFSDR(device.NVMeSSD()),
	} {
		k, s := newStack(t, prof)
		var st *Store
		ready := false
		k.Spawn("setup", func(p *sim.Proc) {
			var err error
			st, err = Open(p, s, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			ready = true
		})
		const clients, batches = 8, 20
		for c := 0; c < clients; c++ {
			c := c
			k.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
				for !ready {
					p.Sleep(sim.Millisecond)
				}
				for n := 0; n < batches; n++ {
					st.Apply(p, []Op{
						{Kind: Put, Key: fmt.Sprintf("c%d-k%d", c, n)},
						{Kind: Put, Key: fmt.Sprintf("c%d-k%d", c, n+1000)},
					})
				}
			})
		}
		k.Run()
		stats := st.Stats()
		if stats.Batches != clients*batches {
			t.Errorf("%s: batches = %d, want %d", prof.Name, stats.Batches, clients*batches)
		}
		if stats.GroupCommits >= stats.Batches {
			t.Errorf("%s: group commits (%d) not amortized below batches (%d)",
				prof.Name, stats.GroupCommits, stats.Batches)
		}
		if stats.WALRecords != stats.Batches*2 {
			t.Errorf("%s: wal records = %d, want %d", prof.Name, stats.WALRecords, stats.Batches*2)
		}
		k.Close()
	}
}

// TestFlushCompactionAndWALWrap drives enough distinct keys through a tiny
// configuration to force memtable flushes, WAL ring wrap-around and at
// least one compaction, then verifies reads against a model.
func TestFlushCompactionAndWALWrap(t *testing.T) {
	k, s := newStack(t, core.BFSDR(device.NVMeSSD()))
	defer k.Close()
	cfg := Config{WALPages: 64, MemtableCap: 16, CompactFanIn: 2, CheckpointEvery: 8}
	k.Spawn("app", func(p *sim.Proc) {
		st, err := Open(p, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		model := make(map[string]bool)
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("k%03d", i%100)
			if i%7 == 3 {
				st.DeleteKey(p, key)
				model[key] = false
			} else {
				st.PutKey(p, key)
				model[key] = true
			}
		}
		// Let in-flight background flush/compaction settle before auditing
		// the steady state.
		p.Sleep(20 * sim.Millisecond)
		stats := st.Stats()
		if stats.Flushes == 0 {
			t.Error("no memtable flushes despite tiny cap")
		}
		if stats.Compactions == 0 {
			t.Error("no compactions despite fan-in 2")
		}
		if stats.WALRecords != 300 {
			t.Errorf("wal records = %d", stats.WALRecords)
		}
		for key, present := range model {
			_, ok := st.Get(p, key)
			if ok != present {
				t.Errorf("key %s: present=%v, model says %v", key, ok, present)
			}
		}
		if stats.SegmentsLive > cfg.CompactFanIn+1 {
			// Compaction may lag by one in-progress flush but must bound the
			// live set.
			t.Errorf("segments live = %d, compaction not keeping up", stats.SegmentsLive)
		}
		k.Stop()
	})
	k.Run()
}

// TestRecoverCleanImage crashes after an explicit durability checkpoint:
// everything acknowledged must be recovered with no violations.
func TestRecoverCleanImage(t *testing.T) {
	for _, prof := range []core.Profile{
		core.EXT4DR(device.PlainSSD()), core.BFSDR(device.PlainSSD()),
		core.EXT4MQ(device.NVMeSSD()), core.BFSMQ(device.NVMeSSD()),
	} {
		k, s := newStack(t, prof)
		var st *Store
		k.Spawn("app", func(p *sim.Proc) {
			var err error
			st, err = Open(p, s, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				st.PutKey(p, fmt.Sprintf("k%03d", i))
			}
			st.DeleteKey(p, "k005")
			st.ForceCheckpoint(p)
			s.Crash()
		})
		k.Run()
		var rec Recovered
		k.Spawn("recover", func(p *sim.Proc) {
			view, _ := s.RecoverView(p)
			rec = st.Recover(view)
		})
		k.Run()
		durErrs, ordErrs := st.Audit(rec)
		if len(durErrs) > 0 || len(ordErrs) > 0 {
			t.Errorf("%s: violations after clean checkpoint: dur=%v ord=%v",
				prof.Name, durErrs, ordErrs)
		}
		if e, ok := rec.Keys["k007"]; !ok || e.Del {
			t.Errorf("%s: k007 missing from recovered image", prof.Name)
		}
		if e, ok := rec.Keys["k005"]; ok && !e.Del {
			t.Errorf("%s: deleted k005 resurfaced", prof.Name)
		}
		k.Close()
	}
}

// TestRecoverAfterCompaction checkpoints, compacts, crashes, and verifies
// the recovered image reads through the merged segment set.
func TestRecoverAfterCompaction(t *testing.T) {
	k, s := newStack(t, core.BFSDR(device.NVMeSSD()))
	cfg := Config{WALPages: 64, MemtableCap: 8, CompactFanIn: 2, CheckpointEvery: 4}
	var st *Store
	k.Spawn("app", func(p *sim.Proc) {
		var err error
		st, err = Open(p, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			st.PutKey(p, fmt.Sprintf("k%03d", i%40))
		}
		st.ForceCheckpoint(p)
		// Let background flush/compaction quiesce before the crash so the
		// manifest reflects a compacted state.
		p.Sleep(20 * sim.Millisecond)
		if st.Stats().Compactions == 0 {
			t.Error("setup failed to trigger compaction")
		}
		s.Crash()
	})
	k.Run()
	var rec Recovered
	k.Spawn("recover", func(p *sim.Proc) {
		view, _ := s.RecoverView(p)
		rec = st.Recover(view)
	})
	k.Run()
	defer k.Close()
	durErrs, ordErrs := st.Audit(rec)
	if len(durErrs) > 0 || len(ordErrs) > 0 {
		t.Errorf("violations: dur=%v ord=%v", durErrs, ordErrs)
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k%03d", i)
		if e, ok := rec.Keys[key]; !ok || e.Del {
			t.Errorf("key %s lost across compaction + crash", key)
		}
	}
}

// TestBenchSmoke runs the bench harness briefly on one profile.
func TestBenchSmoke(t *testing.T) {
	k, s := newStack(t, core.BFSDR(device.NVMeSSD()))
	defer k.Close()
	res := Bench(k, s, DefaultBenchConfig(4), 20*sim.Millisecond)
	if res.Ops == 0 {
		t.Fatal("no ops acknowledged")
	}
	if res.Latency.Count == 0 {
		t.Error("no latency samples")
	}
	if res.GroupMean < 1 {
		t.Errorf("group mean = %.2f", res.GroupMean)
	}
}
