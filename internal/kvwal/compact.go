package kvwal

import (
	"sort"

	"repro/internal/block"
	"repro/internal/sim"
)

// The background path: memtable flushes and segment compaction. Both run
// as their own sim.Procs and push their pages through WritebackAsync, so
// the writes carry REQ_BACKGROUND — on the multi-queue profiles they
// scatter onto data streams and stay out of the commit stream's way. Each
// finishes with an explicit fdatasync on the file it wrote (segment data
// must be durable before the manifest may reference it, and the manifest
// must be durable before WAL records may be recycled).

// flusher freezes the memtable when the leader signals and turns it into a
// sorted segment, then advances the WAL checkpoint.
func (st *Store) flusher(p *sim.Proc) {
	for {
		if !st.needFlush() {
			st.flushCond.Wait(p)
			continue
		}
		st.flushOnce(p)
		st.spaceCond.Broadcast()
		if len(st.segs) > st.cfg.CompactFanIn {
			st.compactCond.Signal()
		}
	}
}

// flushOnce freezes the current memtable and writes it out as one segment.
func (st *Store) flushOnce(p *sim.Proc) {
	freezeSeq := st.committedSeq
	st.imm = st.mem
	st.mem = make(map[string]memEnt)

	var ents []segEnt
	for key, e := range st.imm {
		ents = append(ents, segEnt{key: key, seq: e.seq, del: e.del})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })

	if len(ents) > 0 {
		seg := st.writeSegment(p, ents)
		st.segs = append(st.segs, seg)
	}
	// The segment (if any) is durable: publish it and release WAL space.
	st.writeManifest(p, freezeSeq)
	st.checkpointSeq = freezeSeq
	if freezeSeq > st.durableSeq {
		// Everything up to the freeze point now lives in durable segments.
		st.durableSeq = freezeSeq
	}
	st.imm = nil
	st.stats.Flushes++
}

// writeSegment creates a new segment file, writes one page per entry as
// background writeback, makes it durable, and returns the registered
// segment. The entries' page and version shadows are filled in.
func (st *Store) writeSegment(p *sim.Proc, ents []segEnt) *segment {
	seg := &segment{id: st.nextSegID, byKey: make(map[string]int, len(ents))}
	st.nextSegID++
	seg.name = segName(seg.id)
	f, err := st.fs.Create(p, st.fs.Root(), seg.name)
	if err != nil {
		panic("kvwal: " + err.Error())
	}
	var inflight []*block.Request
	for i := range ents {
		ents[i].page = int64(i)
		st.fs.Write(p, f, int64(i))
		ver, _ := st.fs.PageVer(f, int64(i))
		ents[i].ver = ver
		seg.byKey[ents[i].key] = i
		// Push pages out in background-sized clumps rather than one giant
		// dirty set, to keep the writeback stream busy while we fill.
		if i%16 == 15 {
			inflight = append(inflight, st.fs.WritebackAsync(p, f)...)
		}
	}
	inflight = append(inflight, st.fs.WritebackAsync(p, f)...)
	// filemap_fdatawait: background writeback is marked clean at submission
	// and carries no ordering promise, so the coming fdatasync cannot see or
	// cover what is still queued. A background thread can afford the
	// Wait-on-Transfer the foreground commit path avoids.
	for _, r := range inflight {
		if !r.Completed() {
			r.Wait(p)
		}
	}
	st.fs.Fdatasync(p, f) // allocation metadata + cache flush: durable
	if st.cfg.EvictSegments {
		st.fs.EvictClean(f)
	}
	seg.entries = ents
	st.segByID[seg.id] = seg
	return seg
}

// writeManifest publishes the current live segment set and checkpoint:
// one overwrite of the manifest page followed by fdatasync. The version
// stamp of that page is the commit point recovery pivots on. Flusher and
// compactor both publish, and every filesystem call yields, so the whole
// write-stamp-sync sequence holds a lock: without it two writers can
// interleave, one stamping the other's page version and losing its state
// — and with it the durable-manifest invariant WAL slot recycling rests on.
func (st *Store) writeManifest(p *sim.Proc, checkpoint uint64) {
	st.manifestSem.Acquire(p, 1)
	if st.checkpointSeq > checkpoint {
		// The caller's checkpoint was captured before the lock wait; never
		// republish an older one (WAL slots may already be recycled past it).
		checkpoint = st.checkpointSeq
	}
	ids := make([]int, len(st.segs))
	for i, s := range st.segs {
		ids[i] = s.id
	}
	st.fs.Write(p, st.manifest, 0)
	ver, _ := st.fs.PageVer(st.manifest, 0)
	st.manifestHist[ver] = manifestState{checkpoint: checkpoint, segIDs: ids}
	st.fs.Fdatasync(p, st.manifest)
	st.manifestSem.Release(1)
}

// compactor merges all live segments into one when the flusher signals
// that too many have accumulated.
func (st *Store) compactor(p *sim.Proc) {
	for {
		if len(st.segs) <= st.cfg.CompactFanIn {
			st.compactCond.Wait(p)
			continue
		}
		st.compactOnce(p)
	}
}

// compactOnce merges the current live segments (a prefix snapshot: the
// flusher only appends) into one new segment, publishes it, and unlinks
// the inputs. Tombstones are dropped — nothing older than the merged run
// remains.
func (st *Store) compactOnce(p *sim.Proc) {
	inputs := append([]*segment(nil), st.segs...)
	newest := make(map[string]segEnt)
	for _, seg := range inputs { // oldest first: later entries overwrite
		f := st.fileOf(seg)
		for _, e := range seg.entries {
			st.fs.Read(p, f, e.page)
			if cur, ok := newest[e.key]; !ok || e.seq > cur.seq {
				newest[e.key] = e
			}
		}
	}
	var ents []segEnt
	for key, e := range newest {
		if e.del {
			continue
		}
		ents = append(ents, segEnt{key: key, seq: e.seq})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })

	var merged *segment
	if len(ents) > 0 {
		merged = st.writeSegment(p, ents)
	}
	// Splice: replace the input prefix with the merged run, keeping any
	// segments the flusher added while we merged.
	tail := st.segs[len(inputs):]
	st.segs = st.segs[:0]
	if merged != nil {
		st.segs = append(st.segs, merged)
	}
	st.segs = append(st.segs, tail...)
	st.writeManifest(p, st.checkpointSeq)
	for _, seg := range inputs {
		if err := st.fs.Unlink(p, st.fs.Root(), seg.name); err != nil {
			panic("kvwal: " + err.Error())
		}
	}
	st.stats.Compactions++
	st.obs.compactions.Inc()
}
