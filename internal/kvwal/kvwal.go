// Package kvwal is a write-ahead-logged key-value store — memtable plus
// sorted segments, a miniature LSM tree — built directly on core.Stack. It
// is the "millions of concurrent clients" application model of the stack:
// many clients enqueue Put/Delete batches, a single group-commit leader
// appends their WAL records and persists the whole group with one
// durability call, amortizing the sync across every queued client exactly
// like InnoDB/RocksDB group commit.
//
// The durability call is chosen per journaling engine, which is the
// paper's application-level thesis in one switch statement:
//
//   - EXT4 (JBD2) engines: fdatasync() per group — Transfer-and-Flush, the
//     leader stalls for the full flush round trip;
//   - BarrierFS (Dual) engines: fdatabarrier() per group — the group is
//     *ordered* at dispatch cost, clients are released immediately, and a
//     periodic fdatasync checkpoint bounds the durability window.
//
// Ordering makes recovery prefix-consistent: because every group is
// separated from the next by a barrier, the WAL records that survive a
// crash are always a prefix of the committed history (at group
// granularity), so replay never observes a later group without its
// predecessors.
//
// Background work — memtable flushes into sorted segment files and
// multi-segment compaction — runs as separate sim.Procs whose writes are
// submitted as REQ_BACKGROUND writeback: on the multi-queue profiles they
// scatter onto data streams and never queue in front of the commit
// stream's barriers (the blkmq scenario, end to end).
//
// Page contents are modelled as version stamps (see internal/fs), so the
// store keeps a host-side shadow of what each WAL slot and segment page
// holds; recovery reads the *versions* that survived on the device and
// maps them back through the shadow, the same technique internal/crashtest
// uses.
package kvwal

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/jbd"
	"repro/internal/metrics"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// OpKind is the type of a logged mutation.
type OpKind int

// Mutation kinds.
const (
	Put OpKind = iota
	Delete
)

func (k OpKind) String() string {
	if k == Delete {
		return "delete"
	}
	return "put"
}

// Op is one mutation submitted by a client. Values are not modelled (page
// contents are version stamps); a key's value is identified by the sequence
// number of its newest Put.
type Op struct {
	Kind OpKind
	Key  string
}

// Config parameterizes a store.
type Config struct {
	// WALPages is the capacity of the WAL ring in pages (one record per
	// page). The leader blocks when the ring is full until a memtable flush
	// checkpoints old records into segments.
	WALPages int
	// MemtableCap freezes the memtable for flushing once it holds this many
	// distinct keys.
	MemtableCap int
	// CompactFanIn triggers compaction when more than this many segments are
	// live: all live segments merge into one.
	CompactFanIn int
	// CheckpointEvery bounds the durability window on barrier engines: after
	// this many barrier-committed groups the leader issues one fdatasync.
	// Ignored on flush engines (every group commit is already durable).
	CheckpointEvery int
	// Metrics is an explicit observability registry; nil falls back to the
	// process-wide live registry, and a nil resolution disables the store's
	// instruments.
	Metrics *metrics.Registry
	// EvictSegments drops a segment's clean pages from the page cache once
	// the segment is durable, so segment reads hit the device instead of
	// the cache — fadvise(DONTNEED) on the write path. Off by default (the
	// bench configurations keep the cache-warm behaviour); the fault
	// campaign turns it on so injected media errors are reachable.
	EvictSegments bool
}

// DefaultConfig returns a small, flush-happy configuration that exercises
// every path (group commit, WAL wrap, flush, compaction) in short runs.
func DefaultConfig() Config {
	return Config{
		WALPages:        256,
		MemtableCap:     128,
		CompactFanIn:    4,
		CheckpointEvery: 32,
	}
}

// Stats are cumulative store statistics.
type Stats struct {
	Puts, Deletes, Gets int64
	Batches             int64 // client batches acknowledged
	GroupCommits        int64 // durability/ordering calls issued by the leader
	WALRecords          int64
	Flushes             int64
	Compactions         int64
	CheckpointSyncs     int64 // periodic fdatasyncs on barrier engines
	Ingests             int64 // bulk-copied segments landed by rebalancing
	SegmentsLive        int
}

// memEnt is one memtable entry: the newest mutation of a key.
type memEnt struct {
	seq uint64
	del bool
}

// walRec is the host-side shadow of one WAL record: which slot it occupies,
// the page version stamp it was written with, and the group commit that
// covered it.
type walRec struct {
	seq   uint64
	group uint64
	kind  OpKind
	key   string
	slot  int64
	ver   int64
}

// segEnt is the host-side shadow of one segment page.
type segEnt struct {
	key  string
	seq  uint64
	del  bool
	page int64
	ver  int64
}

// segment is one sorted, immutable on-disk run.
type segment struct {
	id      int
	name    string
	entries []segEnt // sorted by key
	byKey   map[string]int
}

// manifestState is the shadow of one manifest page version: the durable
// segment set and the WAL checkpoint at the time it was written.
type manifestState struct {
	checkpoint uint64
	segIDs     []int
}

// kvObs holds the store's registry instruments; all nil when disabled.
type kvObs struct {
	groupCommits *metrics.Counter
	walBytes     *metrics.Counter
	compactions  *metrics.Counter
	groupSize    *metrics.Hist
}

// batch is one client submission waiting for the group-commit leader.
type batch struct {
	ops      []Op
	enqueued sim.Time
	trace    reqtrace.Ctx // request-trace context (zero when untraced)
	lastSeq  uint64       // sequence number of the batch's final op, set at commit
	done     bool
	waiter   *sim.Proc
}

// Store is one open key-value store.
type Store struct {
	fs  *fs.FS
	k   *sim.Kernel
	cfg Config
	obs kvObs

	wal      *fs.Inode
	manifest *fs.Inode

	q           *sim.Queue[*batch]
	spaceCond   *sim.Cond // leader waits here for WAL ring space
	flushCond   *sim.Cond
	compactCond *sim.Cond
	manifestSem *sim.Semaphore // serializes manifest publication

	mem  map[string]memEnt
	imm  map[string]memEnt // frozen memtable being flushed (nil when idle)
	segs []*segment        // live segments, oldest first

	segByID      map[int]*segment        // every segment ever written (recovery shadow)
	manifestHist map[int64]manifestState // manifest page ver -> state
	walHist      []walRec                // indexed by seq-1

	nextSeq       uint64 // next op sequence number (1-based)
	committedSeq  uint64 // newest op covered by a group commit (ordering ack)
	durableSeq    uint64 // newest op known durable (durability ack)
	checkpointSeq uint64 // ops <= this are captured in durable segments
	groupID       uint64
	groupsSince   int // group commits since the last durability checkpoint
	nextSegID     int

	barrierCommit bool // Dual engine: barrier group commit + periodic sync
	stats         Stats
}

// File names within the filesystem root.
const (
	walName      = "kv.wal"
	manifestName = "kv.manifest"
)

func segName(id int) string { return fmt.Sprintf("kv.seg-%d", id) }

// Open creates the store's files on the stack and starts the group-commit
// leader, flusher and compactor daemons. The engine choice (fdatabarrier vs
// fdatasync group commit) follows the stack's journaling mode.
func Open(p *sim.Proc, s *core.Stack, cfg Config) (*Store, error) {
	return OpenFS(p, s.FS, s.Profile.FS.Journal.Mode == jbd.ModeDual, cfg)
}

// OpenFS opens a store directly on a mounted filesystem. barrier selects
// fdatabarrier group commit (Dual-engine mounts); flush engines pass false.
// Multi-tenant stacks (internal/kvcluster's MQ-streams mode) mount several
// filesystems on one device and open one store per mount.
func OpenFS(p *sim.Proc, fsys *fs.FS, barrier bool, cfg Config) (*Store, error) {
	if cfg.WALPages <= 0 || cfg.MemtableCap <= 0 || cfg.CompactFanIn <= 0 {
		return nil, fmt.Errorf("kvwal: non-positive config %+v", cfg)
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 32
	}
	st := &Store{
		fs: fsys, k: p.Kernel(), cfg: cfg,
		q:             sim.NewQueue[*batch](p.Kernel()),
		spaceCond:     sim.NewCond(p.Kernel()),
		flushCond:     sim.NewCond(p.Kernel()),
		compactCond:   sim.NewCond(p.Kernel()),
		manifestSem:   sim.NewSemaphore(p.Kernel(), 1),
		mem:           make(map[string]memEnt),
		segByID:       make(map[int]*segment),
		manifestHist:  make(map[int64]manifestState),
		nextSeq:       1,
		barrierCommit: barrier,
	}
	if reg := metrics.Resolve(cfg.Metrics); reg != nil {
		st.obs = kvObs{
			groupCommits: reg.Counter("kvwal/group.commits"),
			walBytes:     reg.Counter("kvwal/wal.bytes"),
			compactions:  reg.Counter("kvwal/compactions"),
			groupSize:    reg.Hist("kvwal/group.size"),
		}
	}
	var err error
	if st.wal, err = fsys.Create(p, fsys.Root(), walName); err != nil {
		return nil, err
	}
	if st.manifest, err = fsys.Create(p, fsys.Root(), manifestName); err != nil {
		return nil, err
	}
	// Preallocate the WAL ring and the manifest page so steady-state commits
	// are pure overwrites: no allocating metadata, which is what lets the
	// Dual engine service them on the cheap fdatabarrier path.
	for i := 0; i < cfg.WALPages; i++ {
		fsys.Write(p, st.wal, int64(i))
	}
	fsys.Write(p, st.manifest, 0)
	fsys.SyncFS(p)
	st.k.Spawn("kv/commit", st.committer)
	st.k.Spawn("kv/flush", st.flusher)
	st.k.Spawn("kv/compact", st.compactor)
	return st, nil
}

// Stats returns cumulative statistics (with SegmentsLive refreshed).
func (st *Store) Stats() Stats {
	out := st.stats
	out.SegmentsLive = len(st.segs)
	return out
}

// CommittedSeq returns the newest sequence number covered by a group commit
// (ordering acknowledgement).
func (st *Store) CommittedSeq() uint64 { return st.committedSeq }

// DurableSeq returns the newest sequence number the store has acknowledged
// as durable: on flush engines it tracks CommittedSeq; on barrier engines
// it advances at fdatasync checkpoints and flushes.
func (st *Store) DurableSeq() uint64 { return st.durableSeq }

// BarrierCommit reports whether the store commits groups with fdatabarrier
// (Dual engine) rather than fdatasync.
func (st *Store) BarrierCommit() bool { return st.barrierCommit }

// Apply submits a batch of mutations and blocks until the group-commit
// leader has committed it: on flush engines the batch is then durable; on
// barrier engines it is ordered (durable no later than the next checkpoint
// — see ForceCheckpoint). It returns the sequence number of the batch's
// last operation.
func (st *Store) Apply(p *sim.Proc, ops []Op) uint64 {
	return st.ApplyAsync(p.Now(), ops).Wait(p)
}

// ApplyT is Apply carrying a request-trace context: the context records the
// group-commit enqueue and the leader's durability window so tail latency
// can be attributed per stage. A zero context makes this identical to Apply.
func (st *Store) ApplyT(p *sim.Proc, ops []Op, tc reqtrace.Ctx) uint64 {
	return st.ApplyAsyncT(p.Now(), ops, tc).Wait(p)
}

// Batch is an in-flight asynchronous submission (ApplyAsync).
type Batch struct {
	st *Store
	b  *batch
}

// ApplyAsync enqueues a batch for the group-commit leader without waiting.
// It lets one client drive several stores at once — a replicated write
// submits to every replica's leader and then waits on all the batches, so
// the replicas commit in parallel instead of serially (internal/kvcluster's
// write-both path).
func (st *Store) ApplyAsync(now sim.Time, ops []Op) *Batch {
	return st.ApplyAsyncT(now, ops, reqtrace.Ctx{})
}

// ApplyAsyncT is ApplyAsync carrying a request-trace context. The enqueue
// boundary is stamped here; the group-commit leader stamps the durability
// window when it drains the batch.
func (st *Store) ApplyAsyncT(now sim.Time, ops []Op, tc reqtrace.Ctx) *Batch {
	bt := &Batch{st: st, b: &batch{ops: ops, enqueued: now, trace: tc}}
	if len(ops) == 0 {
		bt.b.done = true
		return bt
	}
	tc.Stamp(reqtrace.StageGCEnqueue, now)
	st.q.Put(bt.b)
	return bt
}

// Wait blocks until the batch's group commit and returns the sequence
// number of its last operation (the store's committed sequence for an
// empty batch).
func (bt *Batch) Wait(p *sim.Proc) uint64 {
	b := bt.b
	for !b.done {
		b.waiter = p
		p.Suspend()
	}
	b.waiter = nil
	if len(b.ops) == 0 {
		return bt.st.committedSeq
	}
	return b.lastSeq
}

// Done reports whether the batch's group commit finished (non-blocking).
func (bt *Batch) Done() bool { return bt.b.done }

// PutKey submits a single Put.
func (st *Store) PutKey(p *sim.Proc, key string) uint64 {
	return st.Apply(p, []Op{{Kind: Put, Key: key}})
}

// DeleteKey submits a single Delete.
func (st *Store) DeleteKey(p *sim.Proc, key string) uint64 {
	return st.Apply(p, []Op{{Kind: Delete, Key: key}})
}

// Get returns the sequence number of the newest committed Put for key, or
// false if the key is absent or deleted. Lookups walk memtable, frozen
// memtable, then segments newest-first; a segment hit charges the read IO
// of its page. A hard media failure reads as an absent key; callers that
// must distinguish the two use GetE.
func (st *Store) Get(p *sim.Proc, key string) (uint64, bool) {
	seq, ok, _ := st.GetE(p, key)
	return seq, ok
}

// GetE is Get with the IO error surfaced: when the segment page backing
// the key fails hard (uncorrectable sector, retry budget exhausted), GetE
// returns the error so the caller can fail over to a replica.
func (st *Store) GetE(p *sim.Proc, key string) (uint64, bool, error) {
	st.stats.Gets++
	if e, ok := st.mem[key]; ok {
		return e.seq, !e.del, nil
	}
	if st.imm != nil {
		if e, ok := st.imm[key]; ok {
			return e.seq, !e.del, nil
		}
	}
	for i := len(st.segs) - 1; i >= 0; i-- {
		seg := st.segs[i]
		if n, ok := seg.byKey[key]; ok {
			e := seg.entries[n]
			if _, _, err := st.fs.ReadE(p, st.fileOf(seg), e.page); err != nil {
				return 0, false, err
			}
			return e.seq, !e.del, nil
		}
	}
	return 0, false, nil
}

// fileOf resolves a segment's inode by name (segments can be recreated by
// lookup because unlinked ones are never read again).
func (st *Store) fileOf(seg *segment) *fs.Inode {
	f, ok := st.fs.Lookup(st.fs.Root(), seg.name)
	if !ok {
		panic("kvwal: live segment file missing: " + seg.name)
	}
	return f
}

// ForceCheckpoint makes everything committed so far durable: one fdatasync
// on the WAL. Clients that need read-your-durability semantics on barrier
// engines call this explicitly; on flush engines it is a cheap no-op-ish
// extra sync.
func (st *Store) ForceCheckpoint(p *sim.Proc) {
	target := st.committedSeq
	st.fs.Fdatasync(p, st.wal)
	st.stats.CheckpointSyncs++
	if target > st.durableSeq {
		st.durableSeq = target
	}
	st.groupsSince = 0
}

// maxGroupOps bounds one group commit so it can never occupy the whole WAL
// ring (the flusher needs the rest to make space).
func (st *Store) maxGroupOps() int {
	n := st.cfg.WALPages / 4
	if n < 1 {
		n = 1
	}
	return n
}

// committer is the group-commit leader: it drains every waiting batch,
// appends their WAL records, issues one durability/ordering call for the
// whole group, applies the mutations to the memtable and releases the
// clients.
func (st *Store) committer(p *sim.Proc) {
	for {
		b, ok := st.q.Get(p)
		if !ok {
			return
		}
		group := []*batch{b}
		groupOps := len(b.ops)
		for groupOps < st.maxGroupOps() {
			b2, ok := st.q.TryGet()
			if !ok {
				break
			}
			group = append(group, b2)
			groupOps += len(b2.ops)
		}
		st.groupID++
		st.k.SpanBegin("kvwal", "group-commit", st.groupID)
		for _, b := range group {
			for i := range b.ops {
				st.appendWAL(p, b.ops[i])
			}
		}
		// Chain the group's trace contexts behind one head: the whole group
		// shares a single durability call, so one set of group-wide stamps
		// (recorded through the head's chain) describes every traced member.
		var tch reqtrace.Ctx
		for _, b := range group {
			if !b.trace.Active() {
				continue
			}
			if !tch.Active() {
				tch = b.trace
			} else {
				reqtrace.Chain(tch, b.trace)
			}
		}
		// One sync for the whole group: the amortization that makes group
		// commit worth it. The DurIssue→DurDone window brackets the leader's
		// stall — the full transfer-and-flush round trip on fdatasync
		// engines, dispatch cost only on fdatabarrier engines.
		tch.StampChain(reqtrace.StageDurIssue, p.Now())
		if st.barrierCommit {
			st.fs.FdatabarrierT(p, st.wal, tch)
			st.groupsSince++
		} else {
			st.fs.FdatasyncT(p, st.wal, tch)
		}
		tch.StampChain(reqtrace.StageDurDone, p.Now())
		st.stats.GroupCommits++
		st.obs.groupCommits.Inc()
		st.obs.groupSize.Observe(int64(groupOps))
		st.k.SpanEnd("kvwal", "group-commit", st.groupID)
		st.committedSeq = st.nextSeq - 1
		if !st.barrierCommit {
			st.durableSeq = st.committedSeq
		}
		// Apply to the memtable (the ops' sequence numbers were assigned in
		// appendWAL in this same order) and ack the clients.
		seqTail := st.committedSeq - uint64(groupOps) + 1
		for _, b := range group {
			for _, op := range b.ops {
				st.mem[op.Key] = memEnt{seq: seqTail, del: op.Kind == Delete}
				seqTail++
				if op.Kind == Delete {
					st.stats.Deletes++
				} else {
					st.stats.Puts++
				}
			}
			b.lastSeq = seqTail - 1
			b.done = true
			st.stats.Batches++
			if b.waiter != nil {
				st.k.Resume(b.waiter)
			}
		}
		// Periodic durability checkpoint on barrier engines.
		if st.barrierCommit && st.groupsSince >= st.cfg.CheckpointEvery {
			st.ForceCheckpoint(p)
		}
		if st.needFlush() {
			st.flushCond.Signal()
		}
	}
}

// appendWAL writes one record into the next ring slot, blocking while the
// slot still holds a live (un-checkpointed) record.
func (st *Store) appendWAL(p *sim.Proc, op Op) {
	seq := st.nextSeq
	for seq > st.checkpointSeq+uint64(st.cfg.WALPages) {
		// Ring full: the record seq-WALPages in this slot is not yet
		// captured in a segment. Kick the flusher and wait.
		st.flushCond.Signal()
		st.spaceCond.Wait(p)
	}
	st.nextSeq++
	slot := int64((seq - 1) % uint64(st.cfg.WALPages))
	st.fs.Write(p, st.wal, slot)
	ver, _ := st.fs.PageVer(st.wal, slot)
	st.walHist = append(st.walHist, walRec{
		seq: seq, group: st.groupID, kind: op.Kind, key: op.Key, slot: slot, ver: ver,
	})
	st.stats.WALRecords++
	st.obs.walBytes.Add(4096)
}

// needFlush reports whether the memtable should be frozen: it is full, or
// the WAL ring is more than half occupied by live records.
func (st *Store) needFlush() bool {
	if st.imm != nil {
		return false // a flush is already running
	}
	if len(st.mem) >= st.cfg.MemtableCap {
		return true
	}
	return len(st.mem) > 0 &&
		st.committedSeq > st.checkpointSeq+uint64(st.cfg.WALPages)/2
}
