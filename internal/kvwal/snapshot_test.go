package kvwal

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
)

// LiveKeys must walk memtable, immutable memtable, and on-disk segments and
// report exactly the live (non-deleted) set, sorted.
func TestLiveKeysShadowsAllTiers(t *testing.T) {
	k, s := newStack(t, core.BFSDR(device.PlainSSD()))
	defer k.Close()
	k.Spawn("app", func(p *sim.Proc) {
		cfg := DefaultConfig()
		cfg.MemtableCap = 4 // force flushes so keys land in segments
		st, err := Open(p, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]bool{}
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("k%03d", i)
			st.PutKey(p, key)
			want[key] = true
		}
		st.DeleteKey(p, "k003")
		delete(want, "k003")
		st.PutKey(p, "k003") // resurrect: newest state wins
		want["k003"] = true
		st.DeleteKey(p, "k007")
		delete(want, "k007")

		got := st.LiveKeys()
		if !sort.StringsAreSorted(got) {
			t.Error("LiveKeys not sorted")
		}
		if len(got) != len(want) {
			t.Errorf("LiveKeys: %d keys, want %d", len(got), len(want))
		}
		for _, key := range got {
			if !want[key] {
				t.Errorf("LiveKeys reports dead or phantom key %s", key)
			}
		}
		for key := range want {
			seq, ok := st.Peek(key)
			if !ok || seq == 0 {
				t.Errorf("Peek(%s) = (%d,%v), want live with a real seq", key, seq, ok)
			}
		}
		if _, ok := st.Peek("k007"); ok {
			t.Error("Peek sees deleted key")
		}
		k.Stop()
	})
	k.Run()
}

// Ingest lands bulk-copied keys as a seq-0 segment: readable immediately,
// durable across recovery, and always losing to a real write of the same
// key.
func TestIngestDurableAndLosesToRealWrites(t *testing.T) {
	k, s := newStack(t, core.BFSDR(device.PlainSSD()))
	defer k.Close()
	k.Spawn("app", func(p *sim.Proc) {
		st, err := Open(p, s, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		st.Ingest(p, []string{"b", "a", "c", "a"}) // unsorted, with a dup
		for _, key := range []string{"a", "b", "c"} {
			if seq, ok := st.Peek(key); !ok || seq != 0 {
				t.Errorf("ingested %s: (%d,%v), want live at seq 0", key, seq, ok)
			}
		}
		if st.Stats().Ingests != 1 {
			t.Errorf("Ingests = %d, want 1", st.Stats().Ingests)
		}
		// A real write beats the ingested placeholder.
		seqB := st.PutKey(p, "b")
		if got, ok := st.Peek("b"); !ok || got != seqB {
			t.Errorf("real write lost to ingest: (%d,%v), want seq %d", got, ok, seqB)
		}
		st.DeleteKey(p, "c")
		if _, ok := st.Peek("c"); ok {
			t.Error("delete lost to ingest")
		}

		// Crash and recover: the ingest segment is manifest-published, so it
		// survives; the ordering discipline survives with it. Checkpoint
		// first — BFS-DR acks at the barrier, so without it the real writes
		// may legally not survive the crash and the ingest would show
		// through.
		st.ForceCheckpoint(p)
		s.Crash()
		view, _ := s.RecoverView(p)
		rec := st.Recover(view)
		if e, ok := rec.Keys["a"]; !ok || e.Del || e.Seq != 0 {
			t.Errorf("recovered a: (%+v,%v), want live at seq 0", e, ok)
		}
		if e, ok := rec.Keys["b"]; !ok || e.Del || e.Seq != seqB {
			t.Errorf("recovered b: (%+v,%v), want live at real seq %d", e, ok, seqB)
		}
		if e, ok := rec.Keys["c"]; ok && !e.Del {
			t.Error("deleted key c resurrected by ingest segment after crash")
		}
		k.Stop()
	})
	k.Run()
}
