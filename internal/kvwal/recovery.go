package kvwal

import (
	"fmt"
	"sort"

	"repro/internal/fs"
)

// Crash recovery. The device models page contents as version stamps, so
// recovery pivots on versions: the recovered manifest page version selects
// a durable {segment set, WAL checkpoint} from the store's shadow history,
// segment entries are validated by their page versions, and WAL replay
// walks the shadow from the checkpoint forward, applying records whose
// slot still carries the version they were written with. Replay stops at
// the first missing record — state beyond a hole was never acknowledged
// and, on barrier engines, must not exist at all past a group boundary.

// RecEnt is one recovered key state.
type RecEnt struct {
	Seq uint64
	Del bool
}

// Recovered is the reconstructed post-crash image of a store.
type Recovered struct {
	// Keys maps every key with a surviving mutation to its newest surviving
	// state (tombstones included, so audits can distinguish "deleted later"
	// from "lost").
	Keys map[string]RecEnt
	// Checkpoint is the WAL checkpoint of the recovered manifest.
	Checkpoint uint64
	// PrefixSeq is the last WAL sequence number in the contiguous surviving
	// prefix after Checkpoint.
	PrefixSeq uint64
	// WALApplied counts the WAL records replayed (the contiguous prefix).
	WALApplied int
	// SegmentHoles lists manifest-referenced segment entries whose durable
	// page version did not match: a durability violation by construction.
	SegmentHoles []string
	// StragglerSeqs lists WAL records that survived *beyond* the prefix
	// hole. Within the same group commit that is legal reordering; across a
	// group boundary on a barrier engine it is an ordering violation (the
	// audit classifies them).
	StragglerSeqs []uint64
}

// Recover reconstructs the store image from a recovered filesystem view
// (s.RecoverView after a crash).
func (st *Store) Recover(view *fs.View) Recovered {
	rec := Recovered{Keys: make(map[string]RecEnt)}
	root, ok := view.Root(st.fs)
	if !ok {
		return rec
	}

	// 1. Manifest: pick the durable {segments, checkpoint} state.
	var state manifestState
	if meta, ok := view.Lookup(root, manifestName); ok {
		if ver, ok := view.PageVersion(meta, 0); ok {
			if s, ok := st.manifestHist[ver]; ok {
				state = s
			}
		}
	}
	rec.Checkpoint = state.checkpoint

	// 2. Fold the manifest's segments, oldest first. Every entry the
	// durable manifest references must itself be durable.
	for _, id := range state.segIDs {
		seg := st.segByID[id]
		meta, ok := view.Lookup(root, seg.name)
		if !ok {
			rec.SegmentHoles = append(rec.SegmentHoles,
				fmt.Sprintf("segment %s referenced by durable manifest but unrecoverable", seg.name))
			continue
		}
		for _, e := range seg.entries {
			got, ok := view.PageVersion(meta, e.page)
			if !ok || got != e.ver {
				rec.SegmentHoles = append(rec.SegmentHoles,
					fmt.Sprintf("segment %s page %d (key %s): want v%d, got v%d (present=%v)",
						seg.name, e.page, e.key, e.ver, got, ok))
				continue
			}
			if cur, dup := rec.Keys[e.key]; !dup || e.seq > cur.Seq {
				rec.Keys[e.key] = RecEnt{Seq: e.seq, Del: e.del}
			}
		}
	}

	// 3. WAL replay: contiguous surviving prefix after the checkpoint.
	walMeta, walOK := view.Lookup(root, walName)
	rec.PrefixSeq = state.checkpoint
	inPrefix := true
	for seq := state.checkpoint + 1; seq <= uint64(len(st.walHist)); seq++ {
		r := st.walHist[seq-1]
		survived := false
		if walOK {
			if got, ok := view.PageVersion(walMeta, r.slot); ok && got == r.ver {
				survived = true
			}
		}
		if !survived {
			inPrefix = false
			continue
		}
		if !inPrefix {
			rec.StragglerSeqs = append(rec.StragglerSeqs, seq)
			continue
		}
		rec.PrefixSeq = seq
		rec.WALApplied++
		if cur, dup := rec.Keys[r.key]; !dup || seq > cur.Seq {
			rec.Keys[r.key] = RecEnt{Seq: seq, Del: r.kind == Delete}
		}
	}
	return rec
}

// Audit checks a recovered image against the store's acknowledgement
// history and returns durability and ordering violations.
//
// Durability: every operation acknowledged durable (seq <= DurableSeq) must
// be reflected: its key's recovered state must be at least as new as the
// acknowledged op. A key may legitimately be newer (a later unacknowledged
// op survived), but it must never be older or absent.
//
// Ordering (barrier engines): the surviving WAL records must form a prefix
// of the committed history at *group* granularity — a surviving record from
// group g with any missing record in a group before g means the device
// persisted across a barrier out of order. Flush engines make no promise
// beyond the durable watermark, so stragglers there are legal.
func (st *Store) Audit(rec Recovered) (durability, ordering []string) {
	durability = append(durability, rec.SegmentHoles...)

	// Expected state at the durable watermark.
	expected := make(map[string]RecEnt)
	for seq := uint64(1); seq <= st.durableSeq && seq <= uint64(len(st.walHist)); seq++ {
		r := st.walHist[seq-1]
		expected[r.key] = RecEnt{Seq: seq, Del: r.kind == Delete}
	}
	keys := make([]string, 0, len(expected))
	for k := range expected {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		want := expected[key]
		got, ok := rec.Keys[key]
		switch {
		case want.Del:
			// A durably acknowledged delete: the key must not resurface with
			// an *older* put. A newer surviving put is legal.
			if ok && !got.Del && got.Seq < want.Seq {
				durability = append(durability,
					fmt.Sprintf("key %s: deleted at seq %d but recovered stale put seq %d", key, want.Seq, got.Seq))
			}
		case !ok:
			durability = append(durability,
				fmt.Sprintf("key %s: put seq %d acknowledged durable but lost", key, want.Seq))
		case got.Seq < want.Seq:
			durability = append(durability,
				fmt.Sprintf("key %s: acknowledged seq %d, recovered stale seq %d", key, want.Seq, got.Seq))
		}
	}

	if st.barrierCommit {
		// Group-granularity prefix rule. PrefixSeq's group may be partially
		// persisted (no barrier inside a group); any straggler in a LATER
		// group than a missing record's group is a violation.
		for _, seq := range rec.StragglerSeqs {
			sg := st.walHist[seq-1].group
			// The first missing record is PrefixSeq+1.
			missing := rec.PrefixSeq + 1
			if missing <= uint64(len(st.walHist)) {
				mg := st.walHist[missing-1].group
				if sg > mg {
					ordering = append(ordering,
						fmt.Sprintf("wal record seq %d (group %d) survived while seq %d (group %d) was lost across a barrier",
							seq, sg, missing, mg))
				}
			}
		}
	}
	return durability, ordering
}
