package kvwal

import (
	"sort"

	"repro/internal/sim"
)

// Host-side state enumeration and bulk ingest for cluster rebalancing
// (internal/kvcluster). A migration copier enumerates a source shard's live
// keys, reads each one through the normal charged path (GetE), and lands the
// copies on the destination shard either as an ingested segment (bulk copy)
// or as ordinary Apply ops (catch-up deltas).

// LiveKeys returns every key whose newest mutation is a live put, sorted —
// the deterministic work list for a migration copier. This is a pure
// host-side shadow walk: no proc, no IO is charged. The copier pays the real
// reads per key when it actually copies (GetE faces the medium).
func (st *Store) LiveKeys() []string {
	newest := make(map[string]memEnt)
	for _, seg := range st.segs { // oldest first; newer entries overwrite
		for _, e := range seg.entries {
			if cur, ok := newest[e.key]; !ok || e.seq > cur.seq {
				newest[e.key] = memEnt{seq: e.seq, del: e.del}
			}
		}
	}
	for k, e := range st.imm {
		if cur, ok := newest[k]; !ok || e.seq > cur.seq {
			newest[k] = e
		}
	}
	for k, e := range st.mem {
		if cur, ok := newest[k]; !ok || e.seq > cur.seq {
			newest[k] = e
		}
	}
	keys := make([]string, 0, len(newest))
	for k, e := range newest {
		if !e.del {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Peek reports a key's live state (its sequence number and whether the
// newest mutation is a put) from the host-side shadow, without a proc and
// without charging IO. It is the audit-time analogue of Get: crash-audit
// checkers use it to ask surviving shards what they hold while the crashed
// shard answers from its recovered image.
func (st *Store) Peek(key string) (uint64, bool) {
	if e, ok := st.mem[key]; ok {
		return e.seq, !e.del
	}
	if e, ok := st.imm[key]; ok {
		return e.seq, !e.del
	}
	for i := len(st.segs) - 1; i >= 0; i-- {
		if n, ok := st.segs[i].byKey[key]; ok {
			e := st.segs[i].entries[n]
			return e.seq, !e.del
		}
	}
	return 0, false
}

// Ingest bulk-loads keys copied from another shard as one sorted segment,
// written through the background writeback path (REQ_BACKGROUND clumps, then
// fdatawait + fdatasync) and published in the manifest — so an ingested
// chunk is durable the moment Ingest returns, without touching the WAL or
// the group-commit path.
//
// Ingested entries carry sequence number 0: they consume no WAL sequence
// space (recovery's walHist indexing stays intact) and lose to any real
// local mutation of the same key on the recovery fold and in compaction. The
// caller must uphold the one precondition that makes the live read path
// agree with that: the destination holds no prior state for the ingested
// keys (a freshly opened shard, or a first-time owner). Then any later real
// write of an ingested key lands in the memtable or a younger segment and
// wins the newest-first read walk too.
func (st *Store) Ingest(p *sim.Proc, keys []string) {
	if len(keys) == 0 {
		return
	}
	ents := make([]segEnt, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			ents = append(ents, segEnt{key: k})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
	seg := st.writeSegment(p, ents)
	st.segs = append(st.segs, seg)
	st.writeManifest(p, st.checkpointSeq)
	st.stats.Ingests++
}
