package kvwal

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/reqtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchConfig parameterizes a throughput run.
type BenchConfig struct {
	Store Config
	// Clients is the number of concurrent committing clients.
	Clients int
	// BatchSize is the number of mutations per client batch.
	BatchSize int
	// KeySpace is the size of the key universe.
	KeySpace int
	// DeletePct is the percentage of mutations that are deletes.
	DeletePct int
	// GetEvery issues one read per client every GetEvery batches (0 = no
	// reads).
	GetEvery int
	// ZipfTheta, when positive, draws keys with Zipfian popularity of that
	// skew from the shared open-loop generator (workload.NewZipf) instead of
	// uniformly — the YCSB-style hot-key regime.
	ZipfTheta float64
	Seed      int64
	// Trace, when non-nil, samples each client batch into a request-trace
	// exemplar: admitted at batch submission, acked at group-commit return
	// (see internal/reqtrace). The sampler is caller-owned; drain it with
	// Take after the run. Nil disables tracing (the benchmark default).
	Trace *reqtrace.Sampler
}

// DefaultBenchConfig returns the standard many-client commit workload.
func DefaultBenchConfig(clients int) BenchConfig {
	return BenchConfig{
		Store:     DefaultConfig(),
		Clients:   clients,
		BatchSize: 4,
		KeySpace:  4096,
		DeletePct: 10,
		GetEvery:  8,
		Seed:      17,
	}
}

// BenchResult is the outcome of one run.
type BenchResult struct {
	Config  string
	Clients int
	Ops     int64 // mutations acknowledged in the window
	Window  sim.Duration
	OpsPerS float64
	// GroupMean is the mean number of mutations amortized per group commit.
	GroupMean float64
	// Latency summarizes client-observed commit latency (enqueue to group
	// acknowledgement) on the shared internal/metrics histogram.
	Latency metrics.Summary
}

func (r BenchResult) String() string {
	return fmt.Sprintf("kv %-8s %2d clients %9.0f ops/s grp=%.1f p50=%.3fms p99=%.3fms",
		r.Config, r.Clients, r.OpsPerS, r.GroupMean, r.Latency.Median, r.Latency.P99)
}

// Bench drives Clients concurrent batch committers against a store on s
// for the given duration and reports acknowledged-mutation throughput plus
// commit-latency percentiles.
func Bench(k *sim.Kernel, s *core.Stack, cfg BenchConfig, duration sim.Duration) BenchResult {
	var st *Store
	rec := metrics.NewLatencyRecorder("kv/" + s.Profile.Name)
	var ops int64
	measuring := false
	ready := false
	k.Spawn("kv/setup", func(p *sim.Proc) {
		var err error
		st, err = Open(p, s, cfg.Store)
		if err != nil {
			panic(err)
		}
		ready = true
	})
	for c := 0; c < cfg.Clients; c++ {
		c := c
		k.SpawnIdx("kv/client", c, func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			var zipf *workload.Zipf
			if cfg.ZipfTheta > 0 {
				zipf = workload.NewZipf(cfg.Seed+int64(c), cfg.KeySpace, cfg.ZipfTheta)
			}
			key := func() string {
				if zipf != nil {
					return fmt.Sprintf("k%05d", zipf.Next())
				}
				return fmt.Sprintf("k%05d", rng.Intn(cfg.KeySpace))
			}
			for !ready {
				p.Sleep(sim.Millisecond)
			}
			for n := 0; ; n++ {
				batch := make([]Op, cfg.BatchSize)
				for i := range batch {
					kind := Put
					if rng.Intn(100) < cfg.DeletePct {
						kind = Delete
					}
					batch[i] = Op{Kind: kind, Key: key()}
				}
				t0 := p.Now()
				tc := cfg.Trace.Admit(t0)
				st.ApplyT(p, batch, tc)
				cfg.Trace.Finish(tc, p.Now())
				if measuring {
					ops += int64(len(batch))
					rec.Record(sim.Duration(p.Now() - t0))
				}
				if cfg.GetEvery > 0 && n%cfg.GetEvery == cfg.GetEvery-1 {
					st.Get(p, key())
				}
			}
		})
	}
	k.RunUntil(k.Now().Add(20 * sim.Millisecond))
	for !ready {
		k.RunUntil(k.Now().Add(5 * sim.Millisecond))
	}
	g0, o0 := st.stats.GroupCommits, st.stats.WALRecords
	measuring = true
	start := k.Now()
	k.RunUntil(start.Add(duration))
	measuring = false
	end := k.Now()
	groups := st.stats.GroupCommits - g0
	grpMean := 0.0
	if groups > 0 {
		grpMean = float64(st.stats.WALRecords-o0) / float64(groups)
	}
	return BenchResult{
		Config:    s.Profile.Name,
		Clients:   cfg.Clients,
		Ops:       ops,
		Window:    sim.Duration(end - start),
		OpsPerS:   metrics.Rate(ops, sim.Duration(end-start)),
		GroupMean: grpMean,
		Latency:   rec.Summarize(),
	}
}
