package kvcluster

import (
	"fmt"
	"sort"
)

// Consistent-hash routing. Each shard owns VNodes points on a 64-bit hash
// ring; a key routes to the shard owning the first point at or after the
// key's hash. Virtual nodes keep the per-shard key share within a few
// percent of uniform, and — the property consistent hashing is for —
// adding or removing one shard remaps only the keys adjacent to its
// points, not the whole space. Hashing is FNV-1a with fixed constants, so
// placement is deterministic across runs and processes.

// Ring is a consistent-hash ring over a fixed shard count.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// fnv1a hashes s with 64-bit FNV-1a, then runs the result through a
// splitmix64-style finalizer: raw FNV over near-identical short strings
// (vnode labels differ in one digit) clusters on the ring, and balance
// needs the high bits well mixed.
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring of shards * vnodes points (vnodes <= 0 means 64).
func NewRing(shards, vnodes int) *Ring {
	if shards <= 0 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  fnv1a(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare, but determinism must not hinge on
		// sort stability): lower shard wins.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Shard routes a key: binary search for the first point at or after the
// key's hash, wrapping to the first point past the top of the ring.
func (r *Ring) Shard(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// ShardsFor returns the n distinct shards owning key, primary first: the
// owners of the first n distinct-shard points walking clockwise from the
// key's hash. This is classic successor-list replica placement — replicas
// are deterministic per key, spread by the vnode shuffle, and stable under
// membership marks (the ring itself never changes; a down shard is skipped
// at routing time, see ShardsForUp). n is clamped to the shard count.
func (r *Ring) ShardsFor(key string, n int) []int {
	return r.shardsFor(key, n, nil)
}

// ShardsForUp is ShardsFor restricted to shards for which down reports
// false. The walk still visits every point in clockwise order, so marking
// a shard down only promotes the next distinct owner — every other key's
// placement is untouched (the consistent-hashing stability property, now
// load-bearing for failover determinism).
func (r *Ring) ShardsForUp(key string, n int, down func(int) bool) []int {
	return r.shardsFor(key, n, down)
}

func (r *Ring) shardsFor(key string, n int, down func(int) bool) []int {
	if n <= 0 {
		n = 1
	}
	if n > r.shards {
		n = r.shards
	}
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		s := r.points[(i+scanned)%len(r.points)].shard
		if seen[s] || (down != nil && down(s)) {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
