package kvcluster

import (
	"fmt"
	"sort"
)

// Consistent-hash routing. Each shard owns VNodes points on a 64-bit hash
// ring; a key routes to the shard owning the first point at or after the
// key's hash. Virtual nodes keep the per-shard key share within a few
// percent of uniform, and — the property consistent hashing is for —
// adding or removing one shard remaps only the keys adjacent to its
// points, not the whole space. Hashing is FNV-1a with fixed constants, so
// placement is deterministic across runs and processes.

// Ring is a consistent-hash ring over a fixed shard count.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// fnv1a hashes s with 64-bit FNV-1a, then runs the result through a
// splitmix64-style finalizer: raw FNV over near-identical short strings
// (vnode labels differ in one digit) clusters on the ring, and balance
// needs the high bits well mixed.
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring of shards * vnodes points (vnodes <= 0 means 64).
func NewRing(shards, vnodes int) *Ring {
	if shards <= 0 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  fnv1a(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare, but determinism must not hinge on
		// sort stability): lower shard wins.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Shard routes a key: binary search for the first point at or after the
// key's hash, wrapping to the first point past the top of the ring.
func (r *Ring) Shard(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// ShardsFor returns the n distinct shards owning key, primary first: the
// owners of the first n distinct-shard points walking clockwise from the
// key's hash. This is classic successor-list replica placement — replicas
// are deterministic per key, spread by the vnode shuffle, and stable under
// membership marks (the ring itself never changes; a down shard is skipped
// at routing time, see ShardsForUp). n is clamped to the shard count.
func (r *Ring) ShardsFor(key string, n int) []int {
	return r.shardsFor(key, n, nil)
}

// ShardsForUp is ShardsFor restricted to shards for which down reports
// false. The walk still visits every point in clockwise order, so marking
// a shard down only promotes the next distinct owner — every other key's
// placement is untouched (the consistent-hashing stability property, now
// load-bearing for failover determinism).
func (r *Ring) ShardsForUp(key string, n int, down func(int) bool) []int {
	return r.shardsFor(key, n, down)
}

func (r *Ring) shardsFor(key string, n int, down func(int) bool) []int {
	return r.ownersAt(fnv1a(key), n, down)
}

// ownersAt is the successor walk itself, keyed by ring position instead of
// key: the n distinct not-down shards owning hash h, primary first.
func (r *Ring) ownersAt(h uint64, n int, down func(int) bool) []int {
	if n <= 0 {
		n = 1
	}
	if n > r.shards {
		n = r.shards
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		s := r.points[(i+scanned)%len(r.points)].shard
		if seen[s] || (down != nil && down(s)) {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// RangeMove is one arc of a migration plan: keys hashing into (Lo, Hi] —
// wrapping past zero when Lo > Hi — are owned by Old before the move and by
// New after it. Both lists are primary-first successor lists.
type RangeMove struct {
	Lo, Hi uint64
	Old    []int
	New    []int
}

// Contains reports whether hash h falls inside the move's arc.
func (m RangeMove) Contains(h uint64) bool {
	if m.Lo < m.Hi {
		return h > m.Lo && h <= m.Hi
	}
	return h > m.Lo || h <= m.Hi // arc wraps past the top of the ring
}

// Diff computes the migration plan from r to target: the arcs whose n-owner
// successor list differs between the two rings. Arc boundaries are the union
// of both rings' points, so within one arc each ring's owner walk is
// constant; adjacent arcs with identical owner lists are merged, keeping the
// plan minimal (consistent hashing guarantees most arcs don't move).
func (r *Ring) Diff(target *Ring, n int) []RangeMove {
	bounds := make([]uint64, 0, len(r.points)+len(target.points))
	for _, p := range r.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range target.points {
		bounds = append(bounds, p.hash)
	}
	return planMoves(bounds,
		func(h uint64) []int { return r.ownersAt(h, n, nil) },
		func(h uint64) []int { return target.ownersAt(h, n, nil) })
}

// ReplacePlan is the re-replication plan for rebuilding shard i in place:
// every arc whose n-owner list contains i, with Old the surviving owners
// (i skipped, so the next successor is promoted as an extra source) and New
// the full owner list including the rebuilt i. The ring itself is unchanged.
func (r *Ring) ReplacePlan(i, n int) []RangeMove {
	bounds := make([]uint64, 0, len(r.points))
	for _, p := range r.points {
		bounds = append(bounds, p.hash)
	}
	skip := func(s int) bool { return s == i }
	var moves []RangeMove
	for _, mv := range planMoves(bounds,
		func(h uint64) []int { return r.ownersAt(h, n, skip) },
		func(h uint64) []int { return r.ownersAt(h, n, nil) }) {
		if containsInt(mv.New, i) {
			moves = append(moves, mv)
		}
	}
	return moves
}

// planMoves walks the arcs delimited by bounds (sorted, deduped here) and
// emits a RangeMove for each arc where oldAt and newAt disagree, merging
// adjacent arcs with equal owner lists — including across the zero-wrap.
func planMoves(bounds []uint64, oldAt, newAt func(uint64) []int) []RangeMove {
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	bounds = uniq
	if len(bounds) < 2 {
		return nil
	}
	var moves []RangeMove
	for i, hi := range bounds {
		lo := bounds[(i+len(bounds)-1)%len(bounds)] // arc (lo, hi], wrapping at i == 0
		old, new_ := oldAt(hi), newAt(hi)
		if equalInts(old, new_) {
			continue
		}
		if k := len(moves) - 1; k >= 0 && moves[k].Hi == lo &&
			equalInts(moves[k].Old, old) && equalInts(moves[k].New, new_) {
			moves[k].Hi = hi
			continue
		}
		moves = append(moves, RangeMove{Lo: lo, Hi: hi, Old: old, New: new_})
	}
	// The wrap arc was emitted first; if the last arc abuts it with the same
	// owners, fold them into one wrapping move.
	if len(moves) >= 2 {
		first, last := &moves[0], &moves[len(moves)-1]
		if last.Hi == first.Lo && equalInts(first.Old, last.Old) && equalInts(first.New, last.New) {
			first.Lo = last.Lo
			moves = moves[:len(moves)-1]
		}
	}
	return moves
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(a []int, v int) bool {
	for _, x := range a {
		if x == v {
			return true
		}
	}
	return false
}

// sameMembers reports whether a and b contain the same shard set, order
// ignored (a pure reorder needs no data movement).
func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		if !containsInt(b, x) {
			return false
		}
	}
	return true
}

// unionInts appends the members of b not already in a, preserving order.
func unionInts(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	for _, x := range b {
		if !containsInt(out, x) {
			out = append(out, x)
		}
	}
	return out
}
