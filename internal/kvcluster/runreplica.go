package kvcluster

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Open-loop traffic runner for the replicated deployment: the same offered
// load, admission control and SLO accounting as Run, but every request is
// served through the Cluster's replicated paths — writes fan out to R
// replicas, reads fail over past media errors and dead shards. One kernel
// hosts all the shard stacks, so the run is deterministic under the
// traffic seed like the other modes.

// RunReplicated drives a replicated cluster under tr and reports the
// measured-window outcome. inflight bounds cluster-wide outstanding
// requests (shed-and-count beyond it; default 64); slo is the latency
// objective (default 2ms). killAt, when non-zero, marks shard killShard
// dead at that instant — the degraded-operation experiment.
func RunReplicated(rc ReplicaConfig, tr Traffic, inflight int, slo sim.Duration) Result {
	return RunReplicatedKill(rc, tr, inflight, slo, 0, 0)
}

// RunReplicatedKill is RunReplicated with a scheduled shard death.
func RunReplicatedKill(rc ReplicaConfig, tr Traffic, inflight int, slo sim.Duration,
	killShard int, killAt sim.Time) Result {
	rc = rc.withDefaults()
	tr = tr.withDefaults()
	if inflight <= 0 {
		inflight = 64
	}
	if slo <= 0 {
		slo = 2 * sim.Millisecond
	}
	reqs := tr.Generate()
	engine := fmt.Sprintf("%s+r%d", rc.Profile(rc.Device(0)).Name, rc.Replicas)

	k := rc.NewKernel(fmt.Sprintf("kvcluster/%s/replicated", engine))
	defer k.Close()
	out := shardOutcome{}
	run := &shardRun{}
	q := sim.NewQueue[Request](k)
	var cl *Cluster
	ready := false

	k.Spawn("kvc/open", func(p *sim.Proc) {
		c, err := OpenCluster(p, rc)
		if err != nil {
			panic(err)
		}
		cl = c
		ready = true
	})
	if killAt > 0 {
		k.Spawn("kvc/reaper", func(p *sim.Proc) {
			p.Advance(sim.Duration(killAt))
			if cl != nil {
				cl.KillShard(killShard)
			}
		})
	}
	k.Spawn("kvc/dispatch", func(p *sim.Proc) {
		for !ready {
			p.Sleep(50 * sim.Microsecond)
		}
		for _, r := range reqs {
			if r.At > p.Now() {
				p.Sleep(sim.Duration(r.At - p.Now()))
			}
			if run.outstanding >= inflight {
				if r.measured(tr) {
					out.shed++
				}
				continue
			}
			run.outstanding++
			if r.measured(tr) {
				out.admitted++
			}
			if r.Class != workload.ClassGet {
				// Trace writes only (nil-sampler safe): reads never touch
				// the durability machinery the trace attributes.
				r.Trace = rc.Trace.Admit(p.Now())
			}
			q.Put(r)
		}
		run.dispatched = true
	})
	for w := 0; w < inflight; w++ {
		k.SpawnIdx("kvc/worker", w, func(p *sim.Proc) {
			for {
				r, ok := q.Get(p)
				if !ok {
					return
				}
				var err error
				switch r.Class {
				case workload.ClassGet:
					_, _, err = cl.GetT(p, r.Tenant, r.Key)
				case workload.ClassDelete:
					err = cl.DeleteTC(p, r.Tenant, r.Key, r.Trace)
				default:
					err = cl.PutTC(p, r.Tenant, r.Key, r.Trace)
				}
				lat := sim.Duration(p.Now() - r.At)
				rc.Trace.Finish(r.Trace, p.Now())
				run.outstanding--
				if r.measured(tr) {
					// A failed operation cannot have met its SLO, whatever
					// its latency.
					out.samples = append(out.samples, latSample{
						tenant: r.Tenant, d: lat, good: err == nil && lat <= slo,
					})
				}
			}
		})
	}
	drive(k, []*shardRun{run}, sim.Time(tr.Warmup+tr.Duration))
	out.exemplars = rc.Trace.Take()
	out.traceLost = rc.Trace.Dropped()

	res := aggregate(Config{Shards: rc.Shards, Mode: Replicated, SLO: slo}.withDefaults(),
		tr, engine, [][]Request{reqs}, []shardOutcome{out})
	res.Shards = rc.Shards
	return res
}
