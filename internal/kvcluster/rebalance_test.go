package kvcluster

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Ring.Diff must agree with the owner lists point by point: every key whose
// successor list changes between the rings lies inside a move carrying
// exactly those lists, and every key inside a move actually changes owners.
func TestRingDiffMatchesOwnerLists(t *testing.T) {
	old := NewRing(3, 64)
	target := NewRing(4, 64)
	moves := old.Diff(target, 2)
	if len(moves) == 0 {
		t.Fatal("growing 3->4 moved no ranges")
	}
	if got := old.Diff(old, 2); len(got) != 0 {
		t.Fatalf("diff of identical rings is non-empty: %d moves", len(got))
	}
	findMove := func(h uint64) *RangeMove {
		for i := range moves {
			if moves[i].Contains(h) {
				return &moves[i]
			}
		}
		return nil
	}
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("u%07d", i)
		h := fnv1a(key)
		before := old.ShardsFor(key, 2)
		after := target.ShardsFor(key, 2)
		mv := findMove(h)
		if reflect.DeepEqual(before, after) {
			if mv != nil {
				t.Fatalf("key %s owners unchanged %v but inside move %+v", key, before, *mv)
			}
			continue
		}
		if mv == nil {
			t.Fatalf("key %s moves %v->%v but no move contains it", key, before, after)
		}
		if !reflect.DeepEqual(mv.Old, before) || !reflect.DeepEqual(mv.New, after) {
			t.Fatalf("key %s: move lists %v->%v, ring lists %v->%v",
				key, mv.Old, mv.New, before, after)
		}
	}
}

func TestRingReplacePlanCoversShard(t *testing.T) {
	r := NewRing(4, 64)
	plan := r.ReplacePlan(2, 2)
	if len(plan) == 0 {
		t.Fatal("replace plan for an owner shard is empty")
	}
	for _, mv := range plan {
		if !containsInt(mv.New, 2) {
			t.Fatalf("plan range %+v does not own shard 2", mv)
		}
		if containsInt(mv.Old, 2) {
			t.Fatalf("plan range %+v sources from the dead shard", mv)
		}
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("u%07d", i)
		if !containsInt(r.ShardsFor(key, 2), 2) {
			continue
		}
		found := false
		for _, mv := range plan {
			if mv.Contains(fnv1a(key)) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %s owned by shard 2 but outside the replace plan", key)
		}
	}
}

func resizeTraffic(rate float64) Traffic {
	return Traffic{
		Arrivals:  workload.ArrivalConfig{RatePerS: rate, Seed: 23},
		Mix:       workload.Mix{ReadPct: 50, DeletePct: 5},
		KeySpace:  2048,
		ZipfTheta: 0.9,
		Tenants:   2,
		Warmup:    4 * sim.Millisecond,
		Duration:  12 * sim.Millisecond,
	}
}

// The headline invariant: a live 3->4 resize under open-loop load loses
// zero acked writes, actually moves data (copies, dual-writes, cutovers),
// and keeps the worst during-migration p99 bin within a stated bound of
// steady state.
func TestResizeUnderLoadNoAckedLoss(t *testing.T) {
	rc := ReplicaConfig{Shards: 3, Replicas: 2, Store: smallStore()}
	spec := ResizeSpec{ResizeAt: sim.Time(6 * sim.Millisecond), NewShards: 4}
	res := RunResize(rc, resizeTraffic(40_000), 64, 2*sim.Millisecond, spec, 12)

	if res.AckedKeys == 0 {
		t.Fatal("no acked writes to audit")
	}
	if res.AckedLost != 0 {
		t.Fatalf("%d of %d acked writes lost across the resize", res.AckedLost, res.AckedKeys)
	}
	if res.Failed {
		t.Fatalf("migration failed: %+v", res.Migration)
	}
	if res.MigEnd == 0 {
		t.Fatal("migration never finished")
	}
	mig := res.Migration
	if mig.KeysCopied == 0 || mig.Cutovers == 0 {
		t.Fatalf("migration moved nothing: %+v", mig)
	}
	if mig.DualWrites == 0 {
		t.Errorf("no dual-writes recorded during CatchUp: %+v", mig)
	}
	before, during := res.PhaseFor("before"), res.PhaseFor("during")
	if before.Done == 0 || during.Done == 0 {
		t.Fatalf("timeline phases empty: before %+v during %+v", before, during)
	}
	// Stated bound: migration may at most quadruple the worst-bin p99 (with
	// a floor for near-zero baselines). The sim is deterministic, so this is
	// a regression tripwire, not a flaky statistical assertion.
	bound := 4*before.P99 + 0.25
	if during.P99 > bound {
		t.Errorf("during-migration p99 %.3fms exceeds bound %.3fms (steady %.3fms)",
			during.P99, bound, before.P99)
	}
}

// Same seed, same fault plan, two runs: identical migration schedules and
// identical cells (the determinism contract bench.db rests on).
func TestResizeDeterministicSchedule(t *testing.T) {
	run := func() ResizeResult {
		rc := ReplicaConfig{Shards: 3, Replicas: 2, Store: smallStore()}
		spec := ResizeSpec{ResizeAt: sim.Time(5 * sim.Millisecond), NewShards: 4}
		return RunResize(rc, resizeTraffic(30_000), 64, 2*sim.Millisecond, spec, 10)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("migration schedules differ: %d vs %d events", len(a.Events), len(b.Events))
	}
	if a.Migration != b.Migration {
		t.Fatalf("migration stats differ: %+v vs %+v", a.Migration, b.Migration)
	}
	if a.Good != b.Good || a.Done != b.Done || a.Shed != b.Shed {
		t.Fatalf("traffic outcomes differ: %+v vs %+v", a.Result, b.Result)
	}
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("timelines differ between identical runs")
	}
}

// Concurrent Get/Put during an active resize (run under -race in CI):
// clients keep mutating while the migration copies under them; every acked
// key must remain readable after the ring swap.
func TestConcurrentOpsDuringResize(t *testing.T) {
	cfg := ReplicaConfig{
		Shards: 3, Replicas: 2, Store: smallStore(),
		Migrate: MigrateConfig{ChunkKeys: 8, ChunkEvery: 100 * sim.Microsecond},
	}
	k := sim.NewKernel()
	defer k.Close()
	var cl *Cluster
	var mig *Migration
	ready := false
	k.Spawn("opener", func(p *sim.Proc) {
		c, err := OpenCluster(p, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		cl = c
		ready = true
	})
	const workers, perWorker = 8, 24
	acked := make([][]string, workers)
	for w := 0; w < workers; w++ {
		w := w
		k.SpawnIdx("worker", w, func(p *sim.Proc) {
			for !ready {
				p.Sleep(100 * sim.Microsecond)
			}
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-%05d", w, i)
				if err := cl.Put(p, key); err != nil {
					continue
				}
				acked[w] = append(acked[w], key)
				if _, _, err := cl.Get(p, key); err != nil {
					t.Errorf("read-your-write %s during resize: %v", key, err)
				}
			}
		})
	}
	k.Spawn("resizer", func(p *sim.Proc) {
		for !ready {
			p.Sleep(100 * sim.Microsecond)
		}
		p.Advance(1 * sim.Millisecond)
		m, err := cl.Resize(p, 4)
		if err != nil {
			t.Error(err)
			return
		}
		mig = m
	})
	k.Run()

	audited := false
	k.Spawn("audit", func(p *sim.Proc) {
		if mig == nil {
			t.Error("resize never started")
			return
		}
		mig.Wait(p)
		for w := range acked {
			for _, key := range acked[w] {
				if _, ok, err := cl.Get(p, key); err != nil || !ok {
					t.Errorf("acked key %s unreadable after resize: ok=%v err=%v", key, ok, err)
				}
			}
		}
		audited = true
	})
	k.Run()
	if !audited {
		t.Fatal("audit proc never ran")
	}
	if !mig.Done() || mig.Failed() {
		t.Fatalf("migration did not land cleanly: done=%v failed=%v", mig.Done(), mig.Failed())
	}
	if cl.Ring().Shards() != 4 {
		t.Fatalf("ring did not swap: %d shards", cl.Ring().Shards())
	}
}

// Kill a shard, rebuild it in place: ReplaceShard re-replicates its ranges
// from the survivors and the rebuilt store ends up holding data.
func TestReplaceShardRebuildsDeadShard(t *testing.T) {
	cfg := ReplicaConfig{Shards: 3, Replicas: 2, Store: smallStore()}
	k := sim.NewKernel()
	defer k.Close()
	var keys []string
	done := false
	k.Spawn("client", func(p *sim.Proc) {
		cl, err := OpenCluster(p, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 128; i++ {
			key := fmt.Sprintf("r%05d", i)
			if err := cl.Put(p, key); err == nil {
				keys = append(keys, key)
			}
		}
		cl.KillShard(1)
		mig, err := cl.ReplaceShard(p, 1)
		if err != nil {
			t.Error(err)
			return
		}
		mig.Wait(p)
		if mig.Failed() {
			t.Errorf("replace migration failed: %+v", mig.Stats())
		}
		if mig.Stats().KeysCopied == 0 {
			t.Errorf("replace copied nothing: %+v", mig.Stats())
		}
		if cl.Ring().Shards() != 3 {
			t.Errorf("replace changed the ring: %d shards", cl.Ring().Shards())
		}
		rebuilt := 0
		for _, key := range keys {
			if _, ok := cl.Store(1).Peek(key); ok {
				rebuilt++
			}
		}
		if rebuilt == 0 {
			t.Error("rebuilt shard holds no keys after re-replication")
		}
		for _, key := range keys {
			if _, ok, err := cl.Get(p, key); err != nil || !ok {
				t.Errorf("key %s unreadable after rebuild: ok=%v err=%v", key, ok, err)
			}
		}
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("client proc never finished")
	}
}

// Destination death mid-copy: the affected ranges abort, roll back to
// their old owners, and re-replicate onto the next live successor; nothing
// acked is lost and the migration still lands.
func TestResizeRetargetsWhenDestinationDies(t *testing.T) {
	cfg := ReplicaConfig{
		Shards: 3, Replicas: 2, Store: smallStore(),
		// Slow the copier down so the kill lands mid-Copying.
		Migrate: MigrateConfig{ChunkKeys: 4, ChunkEvery: 300 * sim.Microsecond},
	}
	k := sim.NewKernel()
	defer k.Close()
	done := false
	k.Spawn("client", func(p *sim.Proc) {
		cl, err := OpenCluster(p, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		var keys []string
		for i := 0; i < 256; i++ {
			key := fmt.Sprintf("d%05d", i)
			if err := cl.Put(p, key); err == nil {
				keys = append(keys, key)
			}
		}
		mig, err := cl.Resize(p, 4)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * sim.Microsecond) // mid-Copying
		cl.KillShard(3)
		mig.Wait(p)
		if mig.Stats().Aborts == 0 {
			t.Errorf("destination death caused no aborts: %+v", mig.Stats())
		}
		if mig.Failed() {
			// With 3 live shards left the promoted successors must absorb
			// every range; a hard failure means retarget logic is broken.
			t.Fatalf("migration pinned failed despite live successors: %+v", mig.Stats())
		}
		for _, key := range keys {
			if _, ok, err := cl.Get(p, key); err != nil || !ok {
				t.Errorf("acked key %s lost after dest death: ok=%v err=%v", key, ok, err)
			}
		}
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("client proc never finished")
	}
}

// The all-replicas-dead path: capped replication sheds and counts instead
// of panicking or misrouting.
func TestAllReplicasDeadShedsDegraded(t *testing.T) {
	cfg := ReplicaConfig{Shards: 2, Replicas: 2, Store: smallStore()}
	k := sim.NewKernel()
	defer k.Close()
	done := false
	k.Spawn("client", func(p *sim.Proc) {
		cl, err := OpenCluster(p, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cl.Put(p, "alive"); err != nil {
			t.Errorf("healthy put failed: %v", err)
		}
		cl.KillShard(0)
		// One survivor: writes commit degraded (capped below R) and count.
		if err := cl.Put(p, "degraded"); err != nil {
			t.Errorf("degraded put refused with a live replica: %v", err)
		}
		if got := cl.Stats().DegradedWrites; got == 0 {
			t.Error("capped-replication write not counted as degraded")
		}
		cl.KillShard(1)
		if err := cl.Put(p, "dead"); err != ErrUnavailable {
			t.Errorf("put with all replicas dead: got %v, want ErrUnavailable", err)
		}
		if _, _, err := cl.Get(p, "alive"); err != ErrUnavailable {
			t.Errorf("get with all replicas dead: got %v, want ErrUnavailable", err)
		}
		st := cl.Stats()
		if st.Unavailable < 2 || st.DegradedSheds == 0 {
			t.Errorf("mass failure not accounted: %+v", st)
		}
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("client proc never finished")
	}
}
