package kvcluster

import (
	"errors"
	"sort"

	"repro/internal/kvwal"
	"repro/internal/sim"
)

// Live rebalancing. Resize (grow or shrink the shard count) and
// ReplaceShard (rebuild a dead shard in place) both reduce to the same
// machinery: a migration plan — the set of ring arcs whose owner list
// changes (Ring.Diff / Ring.ReplacePlan) — driven range by range through an
// explicit state machine:
//
//	Copying  → bulk-copy the range's live keys to the new owners as
//	           REQ_BACKGROUND segment ingests, bandwidth-bounded
//	           (MigrateConfig), while client writes still go old-only and
//	           queue for catch-up;
//	CatchUp  → client writes dual-write old+new through each shard's
//	           group commit while the copier drains the queued keys;
//	Cutover  → the new owners force a durability checkpoint, so every
//	           copied key and catch-up delta is durable before the flip;
//	Done     → reads and writes route to the new owners (old kept as
//	           failover tail until the whole migration lands).
//
// Each range's driver is a run-to-completion handler proc; its blocking IO
// (source reads, destination ingests, checkpoints) runs on a paired copier
// goroutine proc, rendezvousing a chunk at a time. If a destination dies
// mid-migration the range aborts and rolls back at the next chunk boundary,
// then re-replicates onto the next live successor of the target ring —
// source data is never deleted, so rollback is always safe. The cluster
// ring swaps to the target only when every range lands; a range with no
// live destination left pins the migration failed and routing stays on the
// per-range map (cut-over ranges on their new owners, aborted ranges on
// their old) so no acked write is ever orphaned.

// MigrateConfig bounds the rebalancing copy bandwidth so the foreground SLO
// holds: at most ChunkKeys keys are copied per ChunkEvery of simulated time
// per range. Zero fields take the defaults.
type MigrateConfig struct {
	// ChunkKeys is the number of keys per background copy chunk (default 24).
	ChunkKeys int
	// ChunkEvery is the pacing gap between chunks (default 150µs).
	ChunkEvery sim.Duration
	// ReadRetries is how many full passes over the live source owners the
	// copier makes for an unreadable key before skipping it (default 3).
	ReadRetries int
	// RetryBackoff is the base backoff between those passes, doubling per
	// attempt; also the delay before restarting an aborted range (default
	// 100µs).
	RetryBackoff sim.Duration
}

func (m MigrateConfig) withDefaults() MigrateConfig {
	if m.ChunkKeys <= 0 {
		m.ChunkKeys = 24
	}
	if m.ChunkEvery <= 0 {
		m.ChunkEvery = 150 * sim.Microsecond
	}
	if m.ReadRetries <= 0 {
		m.ReadRetries = 3
	}
	if m.RetryBackoff <= 0 {
		m.RetryBackoff = 100 * sim.Microsecond
	}
	return m
}

// MigrationState is one range's position in the rebalancing state machine.
type MigrationState int

const (
	MigCopying MigrationState = iota
	MigCatchUp
	MigCutover
	MigDone
	MigAborted
)

func (s MigrationState) String() string {
	switch s {
	case MigCopying:
		return "copying"
	case MigCatchUp:
		return "catchup"
	case MigCutover:
		return "cutover"
	case MigDone:
		return "done"
	case MigAborted:
		return "aborted"
	}
	return "unknown"
}

// MigrationEvent is one state transition in the migration schedule. The
// event log is deterministic: same seed, same fault plan, same schedule.
type MigrationEvent struct {
	At    sim.Time
	Range int
	State MigrationState
}

// MigrationStats are cumulative migration counters.
type MigrationStats struct {
	Ranges      int   // ranges in the plan
	KeysCopied  int64 // keys landed on destinations (bulk + catch-up)
	DualWrites  int64 // client writes fanned to old+new during CatchUp/Cutover
	Cutovers    int64 // ranges flipped to their new owners
	Aborts      int64 // destination deaths that forced a rollback+retarget
	CopySkipped int64 // keys unreadable from every source after retries
}

// Migration is one live rebalancing operation (Resize or ReplaceShard).
type Migration struct {
	c            *Cluster
	target       *Ring
	targetShards int
	cfg          MigrateConfig
	epoch        int         // admission epoch this migration opened
	ranges       []*rangeMig // sorted by arc Hi for rangeOf's binary search
	started      sim.Time
	finished     sim.Time
	doneRanges   int
	failed       bool
	done         bool
	stats        MigrationStats
	events       []MigrationEvent
	waiters      []*sim.Proc
}

// Done reports whether every range has landed (or aborted).
func (m *Migration) Done() bool { return m.done }

// Failed reports whether any range aborted permanently: the ring did not
// swap and routing stays on the per-range map.
func (m *Migration) Failed() bool { return m.failed }

// Stats returns the cumulative migration counters.
func (m *Migration) Stats() MigrationStats { return m.stats }

// Events returns the migration schedule: every per-range state transition
// in kernel order.
func (m *Migration) Events() []MigrationEvent { return m.events }

// Started and Finished bound the migration window (Finished is zero until
// Done).
func (m *Migration) Started() sim.Time  { return m.started }
func (m *Migration) Finished() sim.Time { return m.finished }

// Target returns the ring the migration is moving to.
func (m *Migration) Target() *Ring { return m.target }

// InState reports whether any range is currently in state s.
func (m *Migration) InState(s MigrationState) bool {
	for _, rm := range m.ranges {
		if rm.state == s {
			return true
		}
	}
	return false
}

// Wait blocks until the migration completes.
func (m *Migration) Wait(p *sim.Proc) {
	for !m.done {
		m.waiters = append(m.waiters, p)
		p.Suspend()
	}
}

// rangeOf finds the migrating range containing key's hash, nil if the key
// is outside the plan. Ranges are disjoint arcs sorted by Hi; at most one
// wraps past zero and it sorts first, so a single candidate check suffices.
func (m *Migration) rangeOf(key string) *rangeMig {
	h := fnv1a(key)
	i := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].mv.Hi >= h })
	if i == len(m.ranges) {
		i = 0
	}
	if i < len(m.ranges) && m.ranges[i].mv.Contains(h) {
		return m.ranges[i]
	}
	return nil
}

// Resize grows (or shrinks) the cluster to newN shards under live traffic.
// New shard stacks open immediately; the ring diff becomes the migration
// plan and the returned Migration drives it in the background. At most one
// migration may be active, and a failed one pins routing until process end.
func (c *Cluster) Resize(p *sim.Proc, newN int) (*Migration, error) {
	if c.mig != nil {
		return nil, errors.New("kvcluster: migration already active")
	}
	if newN <= 0 {
		return nil, errors.New("kvcluster: resize to zero shards")
	}
	target := NewRing(newN, c.cfg.VNodes)
	for i := len(c.nodes); i < newN; i++ {
		if err := c.addNode(p, i); err != nil {
			return nil, err
		}
	}
	return c.startMigration(p.Now(), target, newN, c.ring.Diff(target, c.cfg.Replicas)), nil
}

// ReplaceShard rebuilds dead shard i on a fresh stack and store and
// re-replicates its ranges from the surviving owners. The ring is
// unchanged: the plan covers every arc whose owner list contains i, copied
// from the live owners back onto the full list including the rebuilt i.
func (c *Cluster) ReplaceShard(p *sim.Proc, i int) (*Migration, error) {
	if c.mig != nil {
		return nil, errors.New("kvcluster: migration already active")
	}
	if i < 0 || i >= len(c.nodes) {
		return nil, errors.New("kvcluster: no such shard")
	}
	if !c.nodes[i].down {
		return nil, errors.New("kvcluster: shard is alive; kill it before replacing")
	}
	if err := c.addNode(p, i); err != nil {
		return nil, err
	}
	c.nodes[i].down = false
	return c.startMigration(p.Now(), c.ring, len(c.nodes), c.ring.ReplacePlan(i, c.cfg.Replicas)), nil
}

// Migrating returns the active (or failed-and-pinned) migration, nil when
// routing is purely ring-based.
func (c *Cluster) Migrating() *Migration { return c.mig }

func (c *Cluster) startMigration(now sim.Time, target *Ring, targetShards int, moves []RangeMove) *Migration {
	c.epoch++
	m := &Migration{
		c: c, target: target, targetShards: targetShards,
		cfg: c.cfg.Migrate.withDefaults(), started: now, epoch: c.epoch,
	}
	for _, mv := range moves {
		if sameMembers(mv.Old, mv.New) {
			continue // pure reorder: the data is already on every new owner
		}
		m.ranges = append(m.ranges, &rangeMig{
			m: m, mv: mv,
			pending:  make(map[string]bool),
			dualSeen: make(map[string]bool),
		})
	}
	sort.Slice(m.ranges, func(i, j int) bool { return m.ranges[i].mv.Hi < m.ranges[j].mv.Hi })
	for i, rm := range m.ranges {
		rm.idx = i
	}
	m.stats.Ranges = len(m.ranges)
	c.mig = m
	if len(m.ranges) == 0 {
		m.complete(now)
		return m
	}
	c.obs.rebRanges.Add(int64(len(m.ranges)))
	for _, rm := range m.ranges {
		rm.start(now)
	}
	return m
}

// complete finalizes the migration: on success the ring swaps to the
// target and shards past the new count retire; on failure the per-range
// map stays installed — it is the only correct routing (cut-over ranges
// live on their new owners, aborted ranges on their old), so swapping or
// discarding it would orphan acked writes.
func (m *Migration) complete(now sim.Time) {
	m.finished = now
	m.done = true
	c := m.c
	if !m.failed {
		c.ring = m.target
		for i := m.targetShards; i < len(c.nodes); i++ {
			c.nodes[i].down = true
		}
		c.mig = nil
	}
	for _, w := range m.waiters {
		c.k.Resume(w)
	}
	m.waiters = nil
}

func (m *Migration) rangeDone(now sim.Time) {
	m.c.obs.rebRanges.Dec()
	m.doneRanges++
	if m.doneRanges == len(m.ranges) {
		m.complete(now)
	}
}

// copy jobs handed from a range driver (handler) to its copier (goroutine).
type copyKind int

const (
	jobCopy       copyKind = iota // bulk-copy keys as a segment ingest
	jobDelta                      // re-apply caught-up keys as normal writes
	jobCheckpoint                 // force destination durability checkpoint
	jobQuit                       // range finished; copier exits
)

type copyJob struct {
	kind copyKind
	keys []string
}

// rangeMig drives one RangeMove through the state machine.
type rangeMig struct {
	m     *Migration
	idx   int
	mv    RangeMove
	state MigrationState

	driver *sim.Proc // run-to-completion handler: the state machine
	copier *sim.Proc // goroutine proc: the blocking IO
	cond   *sim.Cond
	job    *copyJob // dispatched, not yet picked up
	done   *copyJob // finished, not yet absorbed by the driver

	snapshot []string // sorted live keys to bulk-copy
	pos      int

	pending  map[string]bool // keys awaiting catch-up copy to the destination
	dualSeen map[string]bool // keys dual-written since CatchUp began
	inflight int             // tracked client writes admitted, not yet committed
	gen      int             // bumped per retarget; stale dual-writes re-queue
}

func (rm *rangeMig) start(now sim.Time) {
	k := rm.m.c.k
	rm.cond = sim.NewCond(k)
	rm.setState(now, MigCopying)
	rm.copier = k.SpawnIdx("kvc/mig-copy", rm.idx, rm.copyLoop)
	rm.driver = k.SpawnHandlerIdx("kvc/mig-range", rm.idx, rm.step)
}

func (rm *rangeMig) setState(at sim.Time, s MigrationState) {
	rm.state = s
	rm.m.events = append(rm.m.events, MigrationEvent{At: at, Range: rm.idx, State: s})
}

// destShards are the members of New with no copy of the range yet: the
// ingest targets.
func (rm *rangeMig) destShards() []int {
	var out []int
	for _, s := range rm.mv.New {
		if !containsInt(rm.mv.Old, s) {
			out = append(out, s)
		}
	}
	return out
}

func (rm *rangeMig) destDown() bool {
	for _, s := range rm.destShards() {
		if rm.m.c.nodes[s].down {
			return true
		}
	}
	return false
}

// step is the driver handler: each activation absorbs at most one finished
// copy job, resolves destination death, and arms exactly one continuation —
// a dispatched job (parked until the copier resumes us), a pacing timer, or
// completion.
func (rm *rangeMig) step(h *sim.Proc) {
	m := rm.m
	if j := rm.done; j != nil {
		rm.done = nil
		if j.kind != jobCheckpoint {
			// Chunk landed: pace before the next one — this gap is the
			// migration bandwidth bound that protects the foreground SLO.
			h.WakeIn(m.cfg.ChunkEvery)
			return
		}
	}
	if rm.destDown() {
		rm.retarget(h)
		return
	}
	switch rm.state {
	case MigCopying:
		if rm.snapshot == nil {
			rm.buildSnapshot()
		}
		if rm.pos < len(rm.snapshot) {
			end := rm.pos + m.cfg.ChunkKeys
			if end > len(rm.snapshot) {
				end = len(rm.snapshot)
			}
			keys := rm.snapshot[rm.pos:end]
			rm.pos = end
			rm.dispatch(&copyJob{kind: jobCopy, keys: keys})
			return
		}
		// Bulk copy done: open the dual-write window, then drain the keys
		// that arrived old-only while we copied.
		rm.setState(h.Now(), MigCatchUp)
		h.WakeIn(m.cfg.ChunkEvery)
	case MigCatchUp:
		if keys := rm.drainPending(m.cfg.ChunkKeys); len(keys) > 0 {
			rm.dispatch(&copyJob{kind: jobDelta, keys: keys})
			return
		}
		if rm.inflight > 0 || m.c.wildBefore(m.epoch) > 0 {
			// Client writes are still committing — tracked ones on this
			// range, or stragglers admitted before the migration began
			// (invisible both to the snapshot and to tracking). Their keys
			// join pending as they complete, so the gate must outwait both.
			// Writes admitted after the migration opened never gate: on a
			// migrating range they are tracked, elsewhere they are
			// irrelevant to this cutover.
			h.WakeIn(m.cfg.ChunkEvery)
			return
		}
		// Every write is on both owner sets; make the destination durable
		// before anything flips.
		rm.setState(h.Now(), MigCutover)
		rm.dispatch(&copyJob{kind: jobCheckpoint})
	case MigCutover:
		// Checkpoint landed: everything copied is at least as durable on
		// the destination as its ack promised. Flip the range.
		m.stats.Cutovers++
		m.c.obs.rebCutovers.Inc()
		rm.finish(h, MigDone)
	}
}

// retarget handles a destination death at a chunk boundary: abort, roll
// routing back to the old owners, and re-replicate onto the next live
// successor of the target ring — the same owner list post-swap routing
// would compute with the dead shard marked down. Source data was never
// deleted, so rollback is always safe; writes that dual-wrote during the
// aborted attempt are still on the old owners and re-enter the snapshot.
func (rm *rangeMig) retarget(h *sim.Proc) {
	m := rm.m
	m.stats.Aborts++
	m.c.obs.rebAborts.Inc()
	rm.mv.New = m.target.ownersAt(rm.mv.Hi, m.c.cfg.Replicas, m.c.downFn())
	rm.snapshot, rm.pos = nil, 0
	rm.dualSeen = make(map[string]bool)
	rm.gen++ // in-flight dual-writes re-queue for the new destination
	if len(rm.destShards()) == 0 {
		if len(rm.mv.New) > 0 {
			// The promoted successors all hold the data already (they are
			// old owners): the range lands without copying a byte.
			m.stats.Cutovers++
			m.c.obs.rebCutovers.Inc()
			rm.finish(h, MigDone)
			return
		}
		// No live shard left to re-replicate onto: the range aborts for
		// good and keeps its old owners.
		rm.finish(h, MigAborted)
		return
	}
	rm.setState(h.Now(), MigCopying)
	h.WakeIn(m.cfg.RetryBackoff)
}

func (rm *rangeMig) finish(h *sim.Proc, s MigrationState) {
	rm.setState(h.Now(), s)
	if s == MigAborted {
		rm.m.failed = true
	}
	rm.job = &copyJob{kind: jobQuit}
	rm.cond.Signal()
	rm.m.rangeDone(h.Now())
	h.Complete()
}

func (rm *rangeMig) dispatch(j *copyJob) {
	rm.job = j
	rm.cond.Signal()
	// Returning without arming parks the handler; the copier resumes it
	// when the job lands.
}

// drainPending pops up to max pending keys in sorted order (map iteration
// must not leak nondeterminism into the schedule).
func (rm *rangeMig) drainPending(max int) []string {
	if len(rm.pending) == 0 {
		return nil
	}
	keys := make([]string, 0, len(rm.pending))
	for k := range rm.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > max {
		keys = keys[:max]
	}
	for _, k := range keys {
		delete(rm.pending, k)
	}
	return keys
}

// buildSnapshot enumerates the live keys of the first up old owner that
// hash into the arc — the bulk-copy work list. Host-side shadow walk, no
// IO; the copier pays real reads per key as it copies.
func (rm *rangeMig) buildSnapshot() {
	rm.snapshot = []string{}
	var src *node
	for _, s := range rm.mv.Old {
		if n := rm.m.c.nodes[s]; !n.down {
			src = n
			break
		}
	}
	if src == nil {
		return // nothing readable anywhere; the range cuts over empty
	}
	for _, key := range src.store.LiveKeys() {
		if rm.mv.Contains(fnv1a(key)) {
			rm.snapshot = append(rm.snapshot, key)
		}
	}
}

// copyLoop is the copier goroutine: it executes the driver's jobs — the
// blocking half of the state machine — and resumes the driver after each.
func (rm *rangeMig) copyLoop(p *sim.Proc) {
	for {
		for rm.job == nil {
			rm.cond.Wait(p)
		}
		j := rm.job
		rm.job = nil
		if j.kind == jobQuit {
			return
		}
		switch j.kind {
		case jobCopy:
			rm.copyChunk(p, j.keys)
		case jobDelta:
			rm.copyDelta(p, j.keys)
		case jobCheckpoint:
			rm.checkpointDests(p)
		}
		rm.done = j
		rm.m.c.k.Resume(rm.driver)
	}
}

// copyChunk bulk-copies live keys onto every destination as one ingested
// segment per destination: the segment pages go out as REQ_BACKGROUND
// writeback, so foreground commits keep their scheduling priority.
func (rm *rangeMig) copyChunk(p *sim.Proc, keys []string) {
	m := rm.m
	var live []string
	for _, key := range keys {
		if rm.dualSeen[key] {
			continue // a newer dual-write already landed on the destination
		}
		alive, readable := rm.readSource(p, key)
		if readable && alive {
			live = append(live, key)
		}
	}
	for _, d := range rm.destShards() {
		n := m.c.nodes[d]
		if n.down {
			return // resolved at the chunk boundary by the driver
		}
		n.store.Ingest(p, live)
	}
	m.stats.KeysCopied += int64(len(live))
	m.c.obs.rebKeys.Add(int64(len(live)))
}

// copyDelta re-applies caught-up keys onto the destinations as ordinary
// writes through group commit: unlike the bulk path these keys may have
// changed since the snapshot (including deletes), so they need real
// sequence numbers.
func (rm *rangeMig) copyDelta(p *sim.Proc, keys []string) {
	m := rm.m
	for _, key := range keys {
		if rm.dualSeen[key] {
			continue
		}
		alive, readable := rm.readSource(p, key)
		if !readable {
			continue
		}
		if rm.dualSeen[key] {
			continue // a dual-write landed while we were reading; it wins
		}
		kind := kvwal.Put
		if !alive {
			kind = kvwal.Delete
		}
		var batches []*kvwal.Batch
		for _, d := range rm.destShards() {
			n := m.c.nodes[d]
			if n.down {
				return
			}
			batches = append(batches, n.store.ApplyAsync(p.Now(), []kvwal.Op{{Kind: kind, Key: key}}))
		}
		for _, b := range batches {
			b.Wait(p)
		}
		m.stats.KeysCopied++
		m.c.obs.rebKeys.Inc()
	}
}

// readSource reads key's live state from the first old owner able to serve
// it, with bounded retry passes — per-device retries already happened in
// the block layer's retry engine underneath GetE. A key unreadable from
// every source after the budget is skipped and counted: it is equally
// unreadable to clients, so the copy does not widen the loss.
func (rm *rangeMig) readSource(p *sim.Proc, key string) (alive, readable bool) {
	m := rm.m
	for attempt := 0; ; attempt++ {
		for _, s := range rm.mv.Old {
			n := m.c.nodes[s]
			if n.down {
				continue
			}
			if _, ok, err := n.store.GetE(p, key); err == nil {
				return ok, true
			}
		}
		if attempt >= m.cfg.ReadRetries {
			break
		}
		p.Sleep(m.cfg.RetryBackoff << uint(attempt))
	}
	m.stats.CopySkipped++
	m.c.obs.rebSkipped.Inc()
	return false, false
}

// checkpointDests forces an fdatasync checkpoint on every destination
// store: the cutover gate. After this, every ingested key and every
// committed catch-up delta or dual-write is durable on the destination.
func (rm *rangeMig) checkpointDests(p *sim.Proc) {
	for _, d := range rm.destShards() {
		n := rm.m.c.nodes[d]
		if n.down {
			return
		}
		n.store.ForceCheckpoint(p)
	}
}
