package kvcluster

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Open-loop traffic runner for live rebalancing: the replicated runner plus
// a control-plane schedule (kill / resize / replace), a goodput+p99
// timeline binned before/during/after the migration window, and an
// acked-write audit — every write the cluster acknowledged during the run
// must still be readable once the migration lands. Deterministic under the
// traffic seed like every other runner: two identical runs produce the
// same migration schedule and the same cells.

// ResizeSpec schedules the control-plane actions of a resize run.
type ResizeSpec struct {
	// ResizeAt triggers Cluster.Resize(NewShards) at this instant
	// (NewShards 0 disables).
	ResizeAt  sim.Time
	NewShards int
	// KillAt kills KillShard at this instant (KillAt 0 disables); ReplaceAt
	// then triggers ReplaceShard(KillShard) — the kill+rebuild scenario.
	KillShard int
	KillAt    sim.Time
	ReplaceAt sim.Time
}

// TimelineBin is one slice of the measured window.
type TimelineBin struct {
	StartMs, EndMs float64
	Phase          string // before | during | after
	Done, Good     int64
	GoodputPerS    float64
	P99            float64 // msec
}

// PhaseAgg aggregates one phase of the run.
type PhaseAgg struct {
	Phase       string
	WindowMs    float64
	Done, Good  int64
	GoodputPerS float64
	P99         float64 // msec
}

// ResizeResult is RunResize's outcome.
type ResizeResult struct {
	Result
	Timeline  []TimelineBin
	Phases    []PhaseAgg // before, during, after
	Migration MigrationStats
	Events    []MigrationEvent
	Failed    bool    // migration pinned failed (a range had no destination)
	MigStart  float64 // msec (degraded window start: the kill, if scheduled)
	MigEnd    float64 // msec
	AckedKeys int     // acked puts audited at end of run
	AckedLost int     // acked puts readable from no owner (must be 0)
}

// PhaseFor returns the named phase aggregate (zero value if absent).
func (r ResizeResult) PhaseFor(name string) PhaseAgg {
	for _, ph := range r.Phases {
		if ph.Phase == name {
			return ph
		}
	}
	return PhaseAgg{Phase: name}
}

// RunResize drives a replicated cluster under tr while spec's control-plane
// schedule plays out, waits for the migration to land, audits every acked
// write, and reports the timeline in bins slices of the measured window
// (default 10).
func RunResize(rc ReplicaConfig, tr Traffic, inflight int, slo sim.Duration,
	spec ResizeSpec, bins int) ResizeResult {
	rc = rc.withDefaults()
	tr = tr.withDefaults()
	if inflight <= 0 {
		inflight = 64
	}
	if slo <= 0 {
		slo = 2 * sim.Millisecond
	}
	if bins <= 0 {
		bins = 10
	}
	reqs := tr.Generate()
	engine := fmt.Sprintf("%s+r%d", rc.Profile(rc.Device(0)).Name, rc.Replicas)

	k := rc.NewKernel(fmt.Sprintf("kvcluster/%s/resize", engine))
	defer k.Close()
	out := shardOutcome{}
	run := &shardRun{}
	q := sim.NewQueue[Request](k)
	var cl *Cluster
	var mig *Migration
	ready := false
	ackedPut := make(map[string]bool)
	ackedDel := make(map[string]bool)

	k.Spawn("kvc/open", func(p *sim.Proc) {
		c, err := OpenCluster(p, rc)
		if err != nil {
			panic(err)
		}
		cl = c
		ready = true
	})
	k.Spawn("kvc/control", func(p *sim.Proc) {
		for !ready {
			p.Sleep(50 * sim.Microsecond)
		}
		if spec.KillAt > 0 {
			if spec.KillAt > p.Now() {
				p.Sleep(sim.Duration(spec.KillAt - p.Now()))
			}
			cl.KillShard(spec.KillShard)
		}
		var err error
		switch {
		case spec.NewShards > 0:
			if spec.ResizeAt > p.Now() {
				p.Sleep(sim.Duration(spec.ResizeAt - p.Now()))
			}
			mig, err = cl.Resize(p, spec.NewShards)
		case spec.ReplaceAt > 0:
			if spec.ReplaceAt > p.Now() {
				p.Sleep(sim.Duration(spec.ReplaceAt - p.Now()))
			}
			mig, err = cl.ReplaceShard(p, spec.KillShard)
		}
		if err != nil {
			panic("kvcluster: resize control: " + err.Error())
		}
	})
	k.Spawn("kvc/dispatch", func(p *sim.Proc) {
		for !ready {
			p.Sleep(50 * sim.Microsecond)
		}
		for _, r := range reqs {
			if r.At > p.Now() {
				p.Sleep(sim.Duration(r.At - p.Now()))
			}
			if run.outstanding >= inflight {
				if r.measured(tr) {
					out.shed++
				}
				continue
			}
			run.outstanding++
			if r.measured(tr) {
				out.admitted++
			}
			if r.Class != workload.ClassGet {
				// Trace writes only (nil-sampler safe).
				r.Trace = rc.Trace.Admit(p.Now())
			}
			q.Put(r)
		}
		run.dispatched = true
	})
	for w := 0; w < inflight; w++ {
		k.SpawnIdx("kvc/worker", w, func(p *sim.Proc) {
			for {
				r, ok := q.Get(p)
				if !ok {
					return
				}
				var err error
				switch r.Class {
				case workload.ClassGet:
					_, _, err = cl.GetT(p, r.Tenant, r.Key)
				case workload.ClassDelete:
					err = cl.DeleteTC(p, r.Tenant, r.Key, r.Trace)
					if err == nil {
						ackedDel[r.Key] = true
					}
				default:
					err = cl.PutTC(p, r.Tenant, r.Key, r.Trace)
					if err == nil {
						ackedPut[r.Key] = true
					}
				}
				lat := sim.Duration(p.Now() - r.At)
				rc.Trace.Finish(r.Trace, p.Now())
				run.outstanding--
				if r.measured(tr) {
					out.samples = append(out.samples, latSample{
						tenant: r.Tenant, at: r.At, d: lat,
						good: err == nil && lat <= slo,
					})
				}
			}
		})
	}
	drive(k, []*shardRun{run}, sim.Time(tr.Warmup+tr.Duration))

	// Post-run audit: let the migration land, then read back every key with
	// an acked put and no acked delete. Keys deleted at any point are
	// excluded — with concurrent workers the put/delete order of a key is
	// not well-defined, so absence cannot be called a loss.
	lost := 0
	k.Spawn("kvc/audit", func(p *sim.Proc) {
		if mig != nil {
			mig.Wait(p)
		}
		keys := make([]string, 0, len(ackedPut))
		for key := range ackedPut {
			if !ackedDel[key] {
				keys = append(keys, key)
			}
		}
		sort.Strings(keys)
		for _, key := range keys {
			if _, ok, err := cl.Get(p, key); err != nil || !ok {
				lost++
			}
		}
	})
	k.Run()
	out.exemplars = rc.Trace.Take()
	out.traceLost = rc.Trace.Dropped()

	res := ResizeResult{
		Result: aggregate(Config{Shards: rc.Shards, Mode: Replicated, SLO: slo}.withDefaults(),
			tr, engine, [][]Request{reqs}, []shardOutcome{out}),
		AckedLost: lost,
	}
	res.Shards = rc.Shards
	for key := range ackedPut {
		if !ackedDel[key] {
			res.AckedKeys++
		}
	}
	var migStart, migEnd sim.Time
	if mig != nil {
		res.Migration = mig.Stats()
		res.Events = mig.Events()
		res.Failed = mig.Failed()
		migStart, migEnd = mig.Started(), mig.Finished()
	}
	if spec.KillAt > 0 && (migStart == 0 || spec.KillAt < migStart) {
		// The degraded window opens at the kill, not the rebuild.
		migStart = spec.KillAt
	}
	res.MigStart = ms(migStart)
	res.MigEnd = ms(migEnd)
	res.Timeline = binTimeline(out.samples, tr, bins, migStart, migEnd)
	res.Phases = phaseAggs(res.Timeline)
	return res
}

func ms(t sim.Time) float64 { return float64(t) / float64(sim.Millisecond) }

// binTimeline slices the measured window into bins and tags each with its
// phase relative to the degraded window [migStart, migEnd].
func binTimeline(samples []latSample, tr Traffic, bins int, migStart, migEnd sim.Time) []TimelineBin {
	start := sim.Time(tr.Warmup)
	width := sim.Duration(tr.Duration) / sim.Duration(bins)
	if width <= 0 {
		return nil
	}
	byBin := make([][]sim.Duration, bins)
	good := make([]int64, bins)
	for _, s := range samples {
		i := int(sim.Duration(s.at-start) / width)
		if i < 0 || i >= bins {
			continue
		}
		byBin[i] = append(byBin[i], s.d)
		if s.good {
			good[i]++
		}
	}
	outBins := make([]TimelineBin, bins)
	for i := range outBins {
		lo := start.Add(sim.Duration(i) * width)
		hi := lo.Add(width)
		phase := "before"
		switch {
		case migStart == 0:
		case migEnd > 0 && lo >= migEnd:
			phase = "after"
		case hi > migStart:
			phase = "during"
		}
		b := TimelineBin{
			StartMs: ms(lo), EndMs: ms(hi), Phase: phase,
			Done: int64(len(byBin[i])), Good: good[i],
		}
		b.GoodputPerS = float64(good[i]) / (float64(width) / float64(sim.Second))
		b.P99 = p99ms(byBin[i])
		outBins[i] = b
	}
	return outBins
}

func p99ms(d []sim.Duration) float64 {
	if len(d) == 0 {
		return 0
	}
	sorted := append([]sim.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := (99*len(sorted) + 99) / 100
	if i > len(sorted) {
		i = len(sorted)
	}
	return float64(sorted[i-1]) / float64(sim.Millisecond)
}

// phaseAggs folds the timeline into one aggregate per phase.
func phaseAggs(tl []TimelineBin) []PhaseAgg {
	order := []string{"before", "during", "after"}
	agg := map[string]*PhaseAgg{}
	for _, name := range order {
		agg[name] = &PhaseAgg{Phase: name}
	}
	for _, b := range tl {
		a := agg[b.Phase]
		a.WindowMs += b.EndMs - b.StartMs
		a.Done += b.Done
		a.Good += b.Good
		if b.P99 > a.P99 {
			// Conservative: a phase's p99 is its worst bin's p99.
			a.P99 = b.P99
		}
	}
	var out []PhaseAgg
	for _, name := range order {
		a := agg[name]
		if a.WindowMs > 0 {
			a.GoodputPerS = float64(a.Good) / (a.WindowMs / 1000)
		}
		out = append(out, *a)
	}
	return out
}
