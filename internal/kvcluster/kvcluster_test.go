package kvcluster

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	a, b := NewRing(4, 64), NewRing(4, 64)
	counts := make([]int, 4)
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("u%07d", i)
		if a.Shard(key) != b.Shard(key) {
			t.Fatalf("ring not deterministic for %s", key)
		}
		counts[a.Shard(key)]++
	}
	for s, c := range counts {
		if c < 1500 || c > 3500 {
			t.Errorf("shard %d owns %d of 10000 keys, want near 2500", s, c)
		}
	}
}

// Consistent hashing's point: dropping one shard must remap only roughly
// that shard's share of the keyspace, not reshuffle everything.
func TestRingStabilityUnderResize(t *testing.T) {
	big, small := NewRing(8, 64), NewRing(7, 64)
	moved := 0
	const keys = 10_000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("u%07d", i)
		sb, ss := big.Shard(key), small.Shard(key)
		if sb != 7 && sb != ss {
			moved++
		}
	}
	// Keys not owned by the removed shard should mostly stay put (vnode
	// granularity leaks a little).
	if frac := float64(moved) / keys; frac > 0.05 {
		t.Errorf("%.1f%% of surviving keys moved on resize, want < 5%%", frac*100)
	}
}

func TestTrafficGenerateAndPartition(t *testing.T) {
	tr := Traffic{
		Arrivals:  workload.ArrivalConfig{RatePerS: 100_000, Seed: 3},
		Mix:       workload.Mix{ReadPct: 30, DeletePct: 10},
		KeySpace:  4096,
		ZipfTheta: 0.99,
		Tenants:   3,
		Warmup:    2 * sim.Millisecond,
		Duration:  10 * sim.Millisecond,
	}
	a, b := tr.Generate(), tr.Generate()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("generate not deterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	ring := NewRing(4, 64)
	parts := Partition(a, ring)
	total := 0
	for s, part := range parts {
		total += len(part)
		prev := sim.Time(0)
		for _, r := range part {
			if ring.Shard(r.Key) != s {
				t.Fatalf("request %+v misrouted to shard %d", r, s)
			}
			if r.At < prev {
				t.Fatalf("shard %d slice not ascending", s)
			}
			prev = r.At
		}
	}
	if total != len(a) {
		t.Fatalf("partition dropped requests: %d of %d", total, len(a))
	}
}

func smallTraffic(rate float64) Traffic {
	return Traffic{
		Arrivals:  workload.ArrivalConfig{RatePerS: rate, Seed: 11},
		Mix:       workload.Mix{ReadPct: 20, DeletePct: 10},
		KeySpace:  2048,
		ZipfTheta: 0.9,
		Tenants:   2,
		Warmup:    4 * sim.Millisecond,
		Duration:  10 * sim.Millisecond,
	}
}

func TestClusterShardedStacksRuns(t *testing.T) {
	cfg := Config{Shards: 2, Profile: core.BFSDR}
	res := Run(cfg, smallTraffic(40_000))
	if res.Offered == 0 || res.Done == 0 {
		t.Fatalf("no measured traffic: %+v", res)
	}
	if res.Admitted+res.Shed != res.Offered {
		t.Errorf("admission accounting broken: admitted %d + shed %d != offered %d",
			res.Admitted, res.Shed, res.Offered)
	}
	if res.Done > res.Admitted {
		t.Errorf("done %d exceeds admitted %d", res.Done, res.Admitted)
	}
	if res.Latency.P99 <= 0 {
		t.Errorf("no latency distribution: %+v", res.Latency)
	}
	if len(res.PerShard) != 2 || len(res.PerTenant) != 2 {
		t.Errorf("missing breakdowns: %d shards, %d tenants",
			len(res.PerShard), len(res.PerTenant))
	}
	// Deterministic end to end.
	res2 := Run(cfg, smallTraffic(40_000))
	if res.Good != res2.Good || res.Done != res2.Done || res.Shed != res2.Shed {
		t.Errorf("run not deterministic: %+v vs %+v", res, res2)
	}
}

func TestClusterMQStreamsRuns(t *testing.T) {
	cfg := Config{Shards: 3, Mode: MQStreams, Profile: core.BFSMQ}
	res := Run(cfg, smallTraffic(30_000))
	if res.Offered == 0 || res.Done == 0 {
		t.Fatalf("no measured traffic: %+v", res)
	}
	if res.Admitted+res.Shed != res.Offered {
		t.Errorf("admission accounting broken: %+v", res)
	}
	if got := len(res.PerShard); got != 3 {
		t.Errorf("want 3 shard rows, got %d", got)
	}
	for _, s := range res.PerShard {
		if s.Done == 0 {
			t.Errorf("shard %d executed nothing (stream isolation broken?)", s.Shard)
		}
	}
}

// Overload with a tiny admission window must shed rather than queue without
// bound, and everything still has to add up.
func TestAdmissionControlSheds(t *testing.T) {
	cfg := Config{Shards: 1, Profile: core.EXT4DR, InflightCap: 2}
	res := Run(cfg, smallTraffic(120_000))
	if res.Shed == 0 {
		t.Fatalf("expected shedding under overload: %+v", res)
	}
	if res.Admitted+res.Shed != res.Offered {
		t.Errorf("admission accounting broken: %+v", res)
	}
}
