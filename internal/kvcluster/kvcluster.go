// Package kvcluster is a sharded, barrier-enabled key-value service under
// open-loop planetary traffic: N kvwal stores behind a consistent-hash
// router, each shard group-committing on its own barrier-enabled IO stack.
// Two deployment shapes map the shards onto hardware:
//
//   - ShardedStacks: one simulated device + stack per shard (one kernel
//     each, fanned out with internal/par) — the scale-out rack.
//   - MQStreams: every shard is a filesystem mounted on ONE multi-queue
//     device, each with its own journal area and its own block-layer order
//     stream (block.OrderStream(i)), so per-shard barriers constrain only
//     that shard's epoch stream — the paper's multi-stream SSD shape.
//
// Traffic is open loop: arrivals are offered at their own pace (Poisson,
// bursty or diurnal), keys are Zipfian, and an admission controller bounds
// per-shard inflight requests, shedding (and counting) the excess instead
// of letting the closed-loop illusion hide queueing collapse. The payoff
// under test: at equal p99 SLO, barrier-engine shards sustain more goodput
// than Transfer-and-Flush shards, because each group commit costs a
// dispatch instead of a flush round trip.
package kvcluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fs"
	"repro/internal/jbd"
	"repro/internal/kvwal"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/reqtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Mode selects how shards map onto simulated hardware.
type Mode int

// Deployment shapes.
const (
	// ShardedStacks gives every shard its own device and IO stack in its
	// own kernel.
	ShardedStacks Mode = iota
	// MQStreams mounts every shard as a filesystem on one shared
	// multi-queue device, each on its own order stream.
	MQStreams
	// Replicated runs every shard as a full stack in one kernel with R-way
	// successor-list replication (see ReplicaConfig / RunReplicated).
	Replicated
)

func (m Mode) String() string {
	switch m {
	case MQStreams:
		return "mq-streams"
	case Replicated:
		return "replicated"
	}
	return "sharded"
}

// mqShardStride is the LPA stride between shard filesystems in MQStreams
// mode: shard i's journal superblock sits at i*stride and its data area
// grows within the stride (1M pages ≈ 4 GiB, far beyond any run here).
const mqShardStride uint64 = 1 << 20

// Config parameterizes a cluster.
type Config struct {
	// Shards is the shard count (default 4).
	Shards int
	// Mode is the deployment shape.
	Mode Mode
	// Profile builds the per-shard stack profile (default core.BFSDR; in
	// MQStreams mode MQQueues is forced on if the profile leaves it 0).
	Profile func(device.Config) core.Profile
	// Device builds a device config (default device.NVMeSSD).
	Device func() device.Config
	// Store is the per-shard kvwal configuration.
	Store kvwal.Config
	// VNodes is the consistent-hash virtual node count per shard
	// (default 64).
	VNodes int
	// InflightCap is the admission controller's per-shard outstanding
	// request bound; arrivals beyond it are shed and counted (default 64).
	InflightCap int
	// SLO is the per-request latency objective goodput is measured
	// against (default 2ms).
	SLO sim.Duration
	// Metrics is an explicit observability registry; nil falls back to
	// the process-wide live registry. Shards register their admission
	// instruments under a "kvcluster/shard=<i>/" prefix.
	Metrics *metrics.Registry
	// NewKernel builds the shard kernels (default sim.NewKernel); the
	// experiment driver injects its span-capturing choke point here.
	NewKernel func(label string) *sim.Kernel
	// Trace, when non-nil, samples per-request causal traces: each shard's
	// dispatcher allocates a context at admission for write-class requests,
	// the context rides the whole IO stack, and the shard's sampler keeps
	// tail-biased exemplars (see internal/reqtrace). Nil disables tracing
	// and compiles to the zero-context no-op paths.
	Trace *reqtrace.Config
}

// DefaultConfig returns a cluster of shards BFS-DR stacks.
func DefaultConfig(shards int) Config {
	return Config{Shards: shards}
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Profile == nil {
		c.Profile = core.BFSDR
	}
	if c.Device == nil {
		c.Device = device.NVMeSSD
	}
	if c.Store.WALPages == 0 {
		c.Store = kvwal.DefaultConfig()
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.InflightCap <= 0 {
		c.InflightCap = 64
	}
	if c.SLO <= 0 {
		c.SLO = 2 * sim.Millisecond
	}
	if c.NewKernel == nil {
		c.NewKernel = func(string) *sim.Kernel { return sim.NewKernel() }
	}
	return c
}

// ShardStats is one shard's measured-window admission and latency outcome.
type ShardStats struct {
	Shard    int
	Offered  int64
	Admitted int64
	Shed     int64
	Done     int64
	Good     int64 // completed within SLO
	P99      float64
}

// TenantStats is one tenant's SLO accounting: shed requests count against
// the SLO (an unserved request cannot have met it).
type TenantStats struct {
	Tenant  int
	Offered int64
	Good    int64
	P50     float64
	P99     float64
	SLOPct  float64
}

// Result is one cluster run's measured-window outcome.
type Result struct {
	Engine      string
	Mode        Mode
	Shards      int
	OfferedPerS float64
	SLOms       float64
	Offered     int64
	Admitted    int64
	Shed        int64
	Done        int64
	Good        int64
	GoodputPerS float64
	SLOPct      float64
	Latency     metrics.Summary
	PerShard    []ShardStats
	PerTenant   []TenantStats
	// Exemplars are the sampled request traces (empty unless the run
	// enabled tracing); TraceDropped counts keeps lost to the sampler cap.
	Exemplars    []reqtrace.Exemplar
	TraceDropped int
}

// Report renders a human-readable SLO report.
func (r Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kvcluster %s (%s, %d shards) offered %.0f req/s, SLO %.2fms\n",
		r.Engine, r.Mode, r.Shards, r.OfferedPerS, r.SLOms)
	fmt.Fprintf(&b, "  offered=%d admitted=%d shed=%d done=%d good=%d\n",
		r.Offered, r.Admitted, r.Shed, r.Done, r.Good)
	fmt.Fprintf(&b, "  goodput %.0f req/s  SLO-attainment %.1f%%  p50=%.3fms p99=%.3fms p99.9=%.3fms\n",
		r.GoodputPerS, r.SLOPct, r.Latency.Median, r.Latency.P99, r.Latency.P999)
	for _, s := range r.PerShard {
		fmt.Fprintf(&b, "  shard %d: offered=%d shed=%d good=%d p99=%.3fms\n",
			s.Shard, s.Offered, s.Shed, s.Good, s.P99)
	}
	for _, t := range r.PerTenant {
		fmt.Fprintf(&b, "  tenant %d: offered=%d good=%d p50=%.3fms p99=%.3fms slo=%.1f%%\n",
			t.Tenant, t.Offered, t.Good, t.P50, t.P99, t.SLOPct)
	}
	return b.String()
}

// latSample is one measured-window completion.
type latSample struct {
	tenant int
	at     sim.Time // request arrival (zero unless the runner bins timelines)
	d      sim.Duration
	good   bool
}

// shardOutcome collects one shard's measured-window results.
type shardOutcome struct {
	admitted  int64
	shed      int64
	samples   []latSample
	exemplars []reqtrace.Exemplar
	traceLost int
}

// shardRun is the live handle the drain loop polls.
type shardRun struct {
	dispatched  bool
	outstanding int
	smp         *reqtrace.Sampler // nil unless the run samples traces
}

func (s *shardRun) idle() bool { return s.dispatched && s.outstanding == 0 }

// collectTrace drains the shard's kept exemplars into its outcome after the
// kernel stops (nil-sampler safe).
func (s *shardRun) collectTrace(out *shardOutcome) {
	out.exemplars = append(out.exemplars, s.smp.Take()...)
	out.traceLost += s.smp.Dropped()
}

// spawnShard wires one shard's daemons into kernel k: an opener, an
// open-loop dispatcher replaying the shard's arrival slice with
// shed-and-count admission control, and InflightCap workers executing
// routed operations against the store.
func spawnShard(k *sim.Kernel, idx int, open func(p *sim.Proc) (*kvwal.Store, error),
	reqs []Request, cfg Config, tr Traffic, out *shardOutcome) *shardRun {
	run := &shardRun{}
	if cfg.Trace != nil {
		// Per-shard sampler: shards may run on parallel kernels (par.For),
		// and Admit/Finish must stay on the owning kernel's goroutine.
		run.smp = reqtrace.NewSampler(*cfg.Trace)
	}
	q := sim.NewQueue[Request](k)
	var st *kvwal.Store
	ready := false

	var admitted, shed *metrics.Counter
	var inflight *metrics.Gauge
	if reg := metrics.Resolve(cfg.Metrics); reg != nil {
		pfx := fmt.Sprintf("kvcluster/shard=%d/", idx)
		admitted = reg.Counter(pfx + "admitted")
		shed = reg.Counter(pfx + "shed")
		inflight = reg.Gauge(pfx + "inflight")
	}

	k.SpawnIdx("kvc/open", idx, func(p *sim.Proc) {
		s, err := open(p)
		if err != nil {
			panic(err)
		}
		st = s
		ready = true
	})

	k.SpawnIdx("kvc/dispatch", idx, func(p *sim.Proc) {
		for !ready {
			p.Sleep(50 * sim.Microsecond)
		}
		for _, r := range reqs {
			if r.At > p.Now() {
				p.Sleep(sim.Duration(r.At - p.Now()))
			}
			if run.outstanding >= cfg.InflightCap {
				shed.Inc()
				if r.measured(tr) {
					out.shed++
				}
				continue
			}
			run.outstanding++
			inflight.Inc()
			admitted.Inc()
			if r.measured(tr) {
				out.admitted++
			}
			if run.smp != nil && r.Class != workload.ClassGet {
				// Trace writes only: reads never enter the group-commit and
				// durability machinery the trace attributes.
				r.Trace = run.smp.Admit(p.Now())
			}
			q.Put(r)
		}
		run.dispatched = true
	})

	for w := 0; w < cfg.InflightCap; w++ {
		k.SpawnIdx("kvc/worker", idx*cfg.InflightCap+w, func(p *sim.Proc) {
			for {
				r, ok := q.Get(p)
				if !ok {
					return
				}
				switch r.Class {
				case workload.ClassGet:
					st.Get(p, r.Key)
				case workload.ClassDelete:
					st.ApplyT(p, []kvwal.Op{{Kind: kvwal.Delete, Key: r.Key}}, r.Trace)
				default:
					st.ApplyT(p, []kvwal.Op{{Kind: kvwal.Put, Key: r.Key}}, r.Trace)
				}
				lat := sim.Duration(p.Now() - r.At)
				run.smp.Finish(r.Trace, p.Now())
				run.outstanding--
				inflight.Dec()
				if r.measured(tr) {
					out.samples = append(out.samples, latSample{
						tenant: r.Tenant, d: lat, good: lat <= cfg.SLO,
					})
				}
			}
		})
	}
	return run
}

// drive runs the kernel to the end of the offered window, then drains:
// admitted requests still in flight complete on simulated time, bounded by
// a drain cap so a wedged shard cannot hang the run.
func drive(k *sim.Kernel, runs []*shardRun, end sim.Time) {
	k.RunUntil(end)
	deadline := end.Add(100 * sim.Millisecond)
	for k.Now() < deadline {
		idle := true
		for _, r := range runs {
			if !r.idle() {
				idle = false
				break
			}
		}
		if idle {
			return
		}
		k.RunUntil(k.Now().Add(sim.Millisecond))
	}
}

// Run drives one cluster under one traffic description and reports the
// measured-window outcome. Everything is deterministic under the traffic
// seed: the request stream is pre-generated, partitioned by the ring, and
// replayed open loop per shard.
func Run(cfg Config, tr Traffic) Result {
	cfg = cfg.withDefaults()
	tr = tr.withDefaults()
	reqs := tr.Generate()
	ring := NewRing(cfg.Shards, cfg.VNodes)
	parts := Partition(reqs, ring)
	outs := make([]shardOutcome, cfg.Shards)
	engine := cfg.Profile(cfg.Device()).Name
	end := sim.Time(tr.Warmup + tr.Duration)

	switch cfg.Mode {
	case MQStreams:
		runMQStreams(cfg, tr, parts, outs, end)
	default:
		par.For(cfg.Shards, func(i int) {
			runShardStack(cfg, tr, i, parts[i], &outs[i], end)
		})
	}
	return aggregate(cfg, tr, engine, parts, outs)
}

// runShardStack runs one shard on its own device, stack and kernel.
func runShardStack(cfg Config, tr Traffic, idx int, reqs []Request,
	out *shardOutcome, end sim.Time) {
	prof := cfg.Profile(cfg.Device())
	if prof.Metrics == nil {
		prof.Metrics = cfg.Metrics
	}
	k := cfg.NewKernel(fmt.Sprintf("kvcluster/%s/shard%d", prof.Name, idx))
	defer k.Close()
	s := core.NewStack(k, prof)
	run := spawnShard(k, idx, func(p *sim.Proc) (*kvwal.Store, error) {
		return kvwal.Open(p, s, cfg.Store)
	}, reqs, cfg, tr, out)
	drive(k, []*shardRun{run}, end)
	run.collectTrace(out)
}

// runMQStreams runs every shard as a filesystem on one shared multi-queue
// device: shard i's journal lives at LPA i*stride and rides order stream
// block.OrderStream(i), so barriers order only their own shard's epochs
// while all shards share the device's hardware queues.
func runMQStreams(cfg Config, tr Traffic, parts [][]Request,
	outs []shardOutcome, end sim.Time) {
	prof := cfg.Profile(cfg.Device())
	if prof.MQQueues == 0 {
		prof.MQQueues = 4
	}
	if prof.Metrics == nil {
		prof.Metrics = cfg.Metrics
	}
	k := cfg.NewKernel(fmt.Sprintf("kvcluster/%s/mq-streams", prof.Name))
	defer k.Close()
	s := core.NewStack(k, prof)
	barrier := prof.FS.Journal.Mode == jbd.ModeDual
	runs := make([]*shardRun, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		fsys := s.FS
		if i > 0 {
			opts := prof.FS
			base := uint64(i) * mqShardStride
			opts.Journal.SuperLPA = base
			opts.Journal.Start = base + 1
			opts.Journal.Stream = block.OrderStream(i)
			fsys = fs.New(k, s.Front, opts)
		}
		mount := fsys
		runs[i] = spawnShard(k, i, func(p *sim.Proc) (*kvwal.Store, error) {
			return kvwal.OpenFS(p, mount, barrier, cfg.Store)
		}, parts[i], cfg, tr, &outs[i])
	}
	drive(k, runs, end)
	for i, run := range runs {
		run.collectTrace(&outs[i])
	}
}

// aggregate folds per-shard outcomes into the cluster result.
func aggregate(cfg Config, tr Traffic, engine string,
	parts [][]Request, outs []shardOutcome) Result {
	res := Result{
		Engine: engine, Mode: cfg.Mode, Shards: cfg.Shards,
		SLOms: float64(cfg.SLO) / float64(sim.Millisecond),
	}
	cluster := metrics.NewLatencyRecorder("kvcluster/latency")
	tenantOffered := make([]int64, tr.withDefaults().Tenants)
	tenantGood := make([]int64, len(tenantOffered))
	tenantRec := make([]*metrics.LatencyRecorder, len(tenantOffered))
	for i := range tenantRec {
		tenantRec[i] = metrics.NewLatencyRecorder(fmt.Sprintf("kvcluster/tenant=%d", i))
	}
	for i, out := range outs {
		shardRec := metrics.NewLatencyRecorder(fmt.Sprintf("kvcluster/shard=%d", i))
		var offered, good int64
		for _, r := range parts[i] {
			if r.measured(tr) {
				offered++
				tenantOffered[r.Tenant]++
			}
		}
		for _, s := range out.samples {
			cluster.Record(s.d)
			shardRec.Record(s.d)
			tenantRec[s.tenant].Record(s.d)
			if s.good {
				good++
				tenantGood[s.tenant]++
			}
		}
		res.Offered += offered
		res.Admitted += out.admitted
		res.Shed += out.shed
		res.Done += int64(len(out.samples))
		res.Good += good
		res.Exemplars = append(res.Exemplars, out.exemplars...)
		res.TraceDropped += out.traceLost
		res.PerShard = append(res.PerShard, ShardStats{
			Shard: i, Offered: offered, Admitted: out.admitted,
			Shed: out.shed, Done: int64(len(out.samples)), Good: good,
			P99: shardRec.Summarize().P99,
		})
	}
	res.Latency = cluster.Summarize()
	res.OfferedPerS = metrics.Rate(res.Offered, tr.Duration)
	res.GoodputPerS = metrics.Rate(res.Good, tr.Duration)
	if res.Offered > 0 {
		res.SLOPct = 100 * float64(res.Good) / float64(res.Offered)
	}
	for t := range tenantOffered {
		sum := tenantRec[t].Summarize()
		ts := TenantStats{
			Tenant: t, Offered: tenantOffered[t], Good: tenantGood[t],
			P50: sum.Median, P99: sum.P99,
		}
		if ts.Offered > 0 {
			ts.SLOPct = 100 * float64(ts.Good) / float64(ts.Offered)
		}
		res.PerTenant = append(res.PerTenant, ts)
	}
	sort.Slice(res.PerTenant, func(i, j int) bool {
		return res.PerTenant[i].Tenant < res.PerTenant[j].Tenant
	})
	return res
}
