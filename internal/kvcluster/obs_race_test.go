package kvcluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/reqtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Live observability readers against a live migration (run under -race in
// CI): a host goroutine polls the metrics registry's Snapshot and the trace
// sampler's Snapshot while RunResize drives traffic through a 3->4 resize.
// The contract is the one the -live stats reader and the whyslow experiment
// rest on — snapshot readers never race the writers, never observe torn
// exemplars, and never perturb the run's outcome.
func TestSnapshotReadersDuringResizeRace(t *testing.T) {
	reg := metrics.NewRegistry()
	smp := reqtrace.NewSampler(reqtrace.Config{Uniform: 16, TopK: 4})
	rc := ReplicaConfig{
		Shards: 3, Replicas: 2, Store: smallStore(),
		Metrics: reg,
		Trace:   smp,
	}
	tr := Traffic{
		Arrivals:  workload.ArrivalConfig{RatePerS: 40_000, Seed: 23},
		Mix:       workload.Mix{ReadPct: 40, DeletePct: 5},
		KeySpace:  2048,
		ZipfTheta: 0.9,
		Tenants:   2,
		Warmup:    3 * sim.Millisecond,
		Duration:  10 * sim.Millisecond,
	}
	spec := ResizeSpec{ResizeAt: sim.Time(6 * sim.Millisecond), NewShards: 4}

	done := make(chan ResizeResult, 1)
	go func() {
		done <- RunResize(rc, tr, 64, 2*sim.Millisecond, spec, 10)
	}()

	// Poll both snapshot surfaces until the run completes. Each exemplar read
	// mid-run must already be internally consistent: attribution sums to its
	// end-to-end latency (a torn record would break the partition).
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snaps := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.Snapshot()
			for _, e := range smp.Snapshot() {
				var tot sim.Duration
				for _, d := range reqtrace.AttributeTop(e) {
					tot += d
				}
				if tot != e.Total {
					t.Errorf("torn exemplar mid-run: attribution %v != total %v", tot, e.Total)
					return
				}
			}
			smp.Dropped()
			snaps++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	res := <-done
	close(stop)
	wg.Wait()

	if snaps == 0 {
		t.Fatal("snapshot loop never ran while the resize was live")
	}
	if res.AckedLost != 0 {
		t.Fatalf("%d acked writes lost with snapshot readers attached", res.AckedLost)
	}
	if res.Failed || res.MigEnd == 0 {
		t.Fatalf("migration did not land: failed=%v end=%.2fms", res.Failed, res.MigEnd)
	}
	if len(res.Exemplars) == 0 {
		t.Fatal("no exemplars sampled across the resize")
	}
	if len(reg.Snapshot()) == 0 {
		t.Fatal("registry collected no instruments from the run")
	}
}
