package kvcluster

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Trace replay through the open-loop engine: the recorded rows drive the
// sharded service end to end, deterministically.
func TestTrafficReplayThroughOpenLoop(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		op := "put"
		if i%3 == 0 {
			op = "get"
		}
		fmt.Fprintf(&b, "{\"t\": %d, \"op\": %q, \"key\": \"u%07d\", \"size\": 4096}\n",
			i*250_000, op, i%16)
	}
	trace, err := workload.ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	tr := Traffic{Replay: trace, Warmup: 2 * sim.Millisecond, Duration: 10 * sim.Millisecond}
	reqs := tr.Generate()
	if len(reqs) == 0 {
		t.Fatal("replay generated no requests")
	}
	for i, r := range reqs {
		row := trace.Row(i)
		if r.Key != row.Key || r.Class != row.Op {
			t.Fatalf("request %d diverged from trace: %+v vs %+v", i, r, row)
		}
	}
	cfg := Config{Shards: 2, Store: smallStore()}
	res := Run(cfg, tr)
	res2 := Run(cfg, tr)
	if res.Done == 0 || res.Done != res2.Done || res.Good != res2.Good {
		t.Fatalf("trace-replay run not deterministic: %+v vs %+v", res, res2)
	}
}
