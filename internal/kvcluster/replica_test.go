package kvcluster

import (
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/kvwal"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestShardsForPlacement(t *testing.T) {
	r := NewRing(5, 64)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("u%07d", i)
		owners := r.ShardsFor(key, 3)
		if len(owners) != 3 {
			t.Fatalf("key %s: want 3 owners, got %v", key, owners)
		}
		if owners[0] != r.Shard(key) {
			t.Fatalf("key %s: primary %d != Shard() %d", key, owners[0], r.Shard(key))
		}
		seen := map[int]bool{}
		for _, s := range owners {
			if seen[s] {
				t.Fatalf("key %s: duplicate owner in %v", key, owners)
			}
			seen[s] = true
		}
		// Deterministic across rings.
		again := NewRing(5, 64).ShardsFor(key, 3)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("key %s: placement not deterministic: %v vs %v", key, owners, again)
			}
		}
	}
	// Clamp: asking for more replicas than shards.
	if got := r.ShardsFor("k", 99); len(got) != 5 {
		t.Fatalf("want clamp to 5 shards, got %v", got)
	}
}

// Marking a shard down must only promote the next distinct owner for keys
// it served; every other key's replica list is untouched — the consistent
// hashing stability property carried over to failover routing.
func TestShardsForUpStableUnderShardDeath(t *testing.T) {
	r := NewRing(5, 64)
	const dead = 2
	down := func(s int) bool { return s == dead }
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("u%07d", i)
		full := r.ShardsFor(key, 2)
		up := r.ShardsForUp(key, 2, down)
		if len(up) != 2 {
			t.Fatalf("key %s: want 2 live owners, got %v", key, up)
		}
		for _, s := range up {
			if s == dead {
				t.Fatalf("key %s: dead shard routed: %v", key, up)
			}
		}
		touched := full[0] == dead || full[1] == dead
		if !touched {
			// Keys that never lived on the dead shard must keep their exact
			// replica list.
			if up[0] != full[0] || up[1] != full[1] {
				t.Fatalf("key %s: untouched key remapped: %v -> %v", key, full, up)
			}
			continue
		}
		// Touched keys: the surviving owners stay, in order.
		want := []int{}
		for _, s := range r.ShardsFor(key, 3) {
			if s != dead {
				want = append(want, s)
			}
		}
		for j := range up {
			if up[j] != want[j] {
				t.Fatalf("key %s: failover promotion wrong: got %v want %v", key, up, want[:2])
			}
		}
	}
}

// uncPlan gives a device certain media errors: every host read attempt
// draws an uncorrectable sector, plus GC-interference latency windows.
func uncPlan(seed uint64) *fault.Plan {
	return &fault.Plan{
		Seed:            seed,
		ReadUNCProb:     1.0,
		ReadRetryLadder: []sim.Duration{20 * sim.Microsecond, 40 * sim.Microsecond},
		ReadRetryProb:   0.5,
		GCPeriod:        2 * sim.Millisecond,
		GCDuration:      200 * sim.Microsecond,
		GCReadFactor:    4,
		GCProgramFactor: 2,
	}
}

// smallStore keeps the memtable tiny so keys reach segment files (where
// media-error injection bites reads) quickly.
func smallStore() kvwal.Config {
	cfg := kvwal.DefaultConfig()
	cfg.MemtableCap = 8
	cfg.WALPages = 128
	cfg.EvictSegments = true
	return cfg
}

// The acceptance scenario: a 3-shard, R=2 cluster whose shard-0 device
// certainly corrupts every host read. Replication must hide it — every
// acknowledged write stays readable (zero acked loss), failovers and
// block-layer retries show up in the counters — while the unreplicated
// baseline surfaces hard read errors for the same plan.
func TestReplicatedClusterSurvivesMediaErrors(t *testing.T) {
	reg := metrics.NewRegistry()
	pol := block.DefaultRetryPolicy()
	cfg := ReplicaConfig{
		Shards:   3,
		Replicas: 2,
		Device: func(i int) device.Config {
			d := device.NVMeSSD()
			if i == 0 {
				d.Fault = uncPlan(42)
			}
			return d
		},
		Store:   smallStore(),
		Retry:   &pol,
		Metrics: reg,
	}

	k := sim.NewKernel()
	defer k.Close()
	acked := map[string]uint64{}
	var lost, readErrs int
	var stats ClusterStats
	k.Spawn("client", func(p *sim.Proc) {
		cl, err := OpenCluster(p, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		const n = 64
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%05d", i)
			if err := cl.Put(p, key); err != nil {
				t.Errorf("put %s: %v", key, err)
				return
			}
			// Write-both acknowledged: record the key as durable-or-ordered.
			acked[key] = uint64(i + 1)
		}
		// Let flushes push keys into segment files on all shards.
		p.Sleep(5 * sim.Millisecond)
		for key := range acked {
			_, ok, err := cl.Get(p, key)
			if err != nil || !ok {
				lost++
				t.Errorf("acked key %s lost: ok=%v err=%v", key, ok, err)
			}
		}
		stats = cl.Stats()
	})
	k.Run()

	if lost != 0 {
		t.Fatalf("%d acknowledged keys lost", lost)
	}
	if stats.Writes == 0 || stats.ReplicaWrites != 2*stats.Writes {
		t.Errorf("write-both accounting: %+v", stats)
	}
	if stats.Failovers == 0 {
		t.Errorf("expected read failovers on the faulty primary: %+v", stats)
	}
	if stats.ReadRepairs == 0 {
		t.Errorf("expected read repairs after failover: %+v", stats)
	}
	if got := reg.Counter("block/retries").Value(); got == 0 {
		t.Errorf("block-layer retries not visible in metrics")
	}
	if got := reg.Counter("block/io.errors").Value(); got == 0 {
		t.Errorf("hard IO errors not visible in metrics")
	}
	if got := reg.Counter("kvcluster/failovers").Value(); got != stats.Failovers {
		t.Errorf("failover counter %d != stats %d", got, stats.Failovers)
	}

	// Unreplicated baseline, same fault plan: hard read errors reach the
	// client.
	base := cfg
	base.Shards = 1
	base.Replicas = 1
	base.Metrics = metrics.NewRegistry()
	k2 := sim.NewKernel()
	defer k2.Close()
	k2.Spawn("client", func(p *sim.Proc) {
		cl, err := OpenCluster(p, base)
		if err != nil {
			t.Error(err)
			return
		}
		const n = 64
		for i := 0; i < n; i++ {
			cl.Put(p, fmt.Sprintf("k%05d", i))
		}
		p.Sleep(5 * sim.Millisecond)
		for i := 0; i < n; i++ {
			if _, _, err := cl.Get(p, fmt.Sprintf("k%05d", i)); err != nil {
				readErrs++
			}
		}
	})
	k2.Run()
	if readErrs == 0 {
		t.Fatalf("unreplicated baseline hid every media error")
	}
}

// Shard death mid-traffic: routing stays deterministic, in-flight and
// subsequent operations complete on the survivors, and acked writes that
// had a live replica remain readable. Run under -race in CI: many client
// procs mutate through the cluster while the killer marks a shard down.
func TestClusterConcurrentOpsDuringFailover(t *testing.T) {
	cfg := ReplicaConfig{
		Shards:   3,
		Replicas: 2,
		Store:    smallStore(),
	}
	k := sim.NewKernel()
	defer k.Close()
	var cl *Cluster
	ready := false
	k.Spawn("opener", func(p *sim.Proc) {
		c, err := OpenCluster(p, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		cl = c
		ready = true
	})
	const workers, perWorker = 8, 24
	acked := make([][]string, workers)
	for w := 0; w < workers; w++ {
		w := w
		k.SpawnIdx("worker", w, func(p *sim.Proc) {
			for !ready {
				p.Sleep(100 * sim.Microsecond)
			}
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-%05d", w, i)
				if err := cl.Put(p, key); err != nil {
					continue // no live replica pair — not acked, no promise
				}
				acked[w] = append(acked[w], key)
				if _, _, err := cl.Get(p, key); err != nil {
					t.Errorf("read-your-write %s: %v", key, err)
				}
			}
		})
	}
	k.Spawn("killer", func(p *sim.Proc) {
		for !ready {
			p.Sleep(100 * sim.Microsecond)
		}
		p.Advance(2 * sim.Millisecond)
		cl.KillShard(1)
	})
	k.Run()

	// Post-mortem in a fresh proc: every acked key must still be readable
	// with one shard dead (its replica survives).
	k3 := false
	k.Spawn("audit", func(p *sim.Proc) {
		for w := range acked {
			for _, key := range acked[w] {
				if _, ok, err := cl.Get(p, key); err != nil || !ok {
					t.Errorf("acked key %s unreadable after shard death: ok=%v err=%v", key, ok, err)
				}
			}
		}
		k3 = true
	})
	k.Run()
	if !k3 {
		t.Fatal("audit proc never ran")
	}
	if cl.Stats().Failovers == 0 {
		t.Error("no failovers recorded despite shard death")
	}
}

// Tenant budgets: a tenant hammering a certainly-failing primary exhausts
// its failover allowance and gets shed instead of endlessly retried.
func TestTenantFailoverBudgetSheds(t *testing.T) {
	pol := block.RetryPolicy{ReadBudget: 1, WriteBudget: 1, Backoff: 10 * sim.Microsecond}
	cfg := ReplicaConfig{
		Shards:   3,
		Replicas: 2,
		Device: func(i int) device.Config {
			d := device.NVMeSSD()
			d.Fault = uncPlan(uint64(7 + i)) // every shard's reads fail
			return d
		},
		Store:           smallStore(),
		Retry:           &pol,
		TenantFailovers: 4,
	}
	k := sim.NewKernel()
	defer k.Close()
	var stats ClusterStats
	k.Spawn("client", func(p *sim.Proc) {
		cl, err := OpenCluster(p, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		const n = 48
		for i := 0; i < n; i++ {
			cl.PutT(p, 0, fmt.Sprintf("k%05d", i))
		}
		p.Sleep(5 * sim.Millisecond)
		for i := 0; i < n; i++ {
			cl.GetT(p, 0, fmt.Sprintf("k%05d", i))
		}
		stats = cl.Stats()
	})
	k.Run()
	if stats.Failovers == 0 {
		t.Fatalf("expected failovers before the budget bit: %+v", stats)
	}
	if stats.Failovers > cfg.TenantFailovers {
		t.Errorf("budget not enforced: %d failovers > budget %d", stats.Failovers, cfg.TenantFailovers)
	}
	if stats.DegradedSheds == 0 {
		t.Errorf("expected degraded sheds once the budget ran out: %+v", stats)
	}
}

func TestRunReplicatedTraffic(t *testing.T) {
	rc := ReplicaConfig{Shards: 2, Replicas: 2, Store: smallStore()}
	res := RunReplicated(rc, smallTraffic(20_000), 32, 0)
	if res.Offered == 0 || res.Done == 0 {
		t.Fatalf("no measured traffic: %+v", res)
	}
	if res.Mode != Replicated {
		t.Errorf("mode %v, want replicated", res.Mode)
	}
	if res.Admitted+res.Shed != res.Offered {
		t.Errorf("admission accounting broken: %+v", res)
	}
	res2 := RunReplicated(rc, smallTraffic(20_000), 32, 0)
	if res.Good != res2.Good || res.Done != res2.Done {
		t.Errorf("replicated run not deterministic: good %d vs %d, done %d vs %d",
			res.Good, res2.Good, res.Done, res2.Done)
	}
}
