package kvcluster

import (
	"errors"
	"fmt"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvwal"
	"repro/internal/metrics"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// R-way replicated deployment. Every shard is a full barrier-enabled IO
// stack (its own device, block layer, filesystem, kvwal store), all living
// in ONE kernel so a client can drive several replicas in lockstep:
//
//   - writes go to every replica of the key (write-both): one ApplyAsync
//     per replica, then one wait for all the group commits — the replicas
//     commit in parallel, each with its own shard-local group commit;
//   - reads try the primary and fail over down the replica list on a hard
//     media error (fault.ErrUNC past the block layer's retry budget) or a
//     killed shard, with read-repair re-priming the failed replica and
//     optional hedged reads cutting the tail under latency faults.
//
// Placement is the ring's successor list (Ring.ShardsFor): deterministic
// per key, stable under shard death — marking a shard down only promotes
// the next distinct owner for the keys it served.

// ErrUnavailable reports that no live replica could serve the operation.
var ErrUnavailable = errors.New("kvcluster: no live replica")

// ReplicaConfig parameterizes a replicated cluster.
type ReplicaConfig struct {
	// Shards is the shard count (default 3).
	Shards int
	// Replicas is the replication factor R: each key lives on R distinct
	// shards, primary first (default 2, clamped to Shards).
	Replicas int
	// Profile builds the per-shard stack profile (default core.BFSDR).
	Profile func(device.Config) core.Profile
	// Device builds shard i's device config (default device.NVMeSSD for
	// every shard). Per-shard, so fault personalities can differ — e.g.
	// media errors on the primary only.
	Device func(i int) device.Config
	// Store is the per-shard kvwal configuration.
	Store kvwal.Config
	// VNodes is the consistent-hash virtual node count (default 64).
	VNodes int
	// Retry is the block-layer retry policy armed on every shard stack
	// (nil: errors propagate on first completion).
	Retry *block.RetryPolicy
	// HedgeAfter fires a hedged read on the next replica when the primary
	// read has not completed after this long; 0 disables hedging.
	HedgeAfter sim.Duration
	// TenantFailovers is the per-tenant failover budget: after this many
	// read failovers a tenant's failing reads are shed immediately instead
	// of retried on replicas — graceful degradation under a sick shard
	// instead of retry storms. 0 means unlimited.
	TenantFailovers int64
	// Migrate bounds live-rebalancing copy bandwidth (see MigrateConfig).
	Migrate MigrateConfig
	// Metrics is an explicit observability registry; nil falls back to the
	// process-wide live registry.
	Metrics *metrics.Registry
	// NewKernel builds the cluster kernel (default sim.NewKernel); the
	// experiment driver injects its span-capturing choke point here.
	NewKernel func(label string) *sim.Kernel
	// Trace, when non-nil, is a caller-owned request-trace sampler: the
	// replicated runners stamp admission/ack against it and thread each
	// write's context through the first live replica's store. The cluster
	// runs in one kernel, so a concurrent observer may Snapshot the sampler
	// while the run is live. Nil disables tracing.
	Trace *reqtrace.Sampler
}

func (c ReplicaConfig) withDefaults() ReplicaConfig {
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > c.Shards {
		c.Replicas = c.Shards
	}
	if c.Profile == nil {
		c.Profile = core.BFSDR
	}
	if c.Device == nil {
		c.Device = func(int) device.Config { return device.NVMeSSD() }
	}
	if c.Store.WALPages == 0 {
		c.Store = kvwal.DefaultConfig()
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.NewKernel == nil {
		c.NewKernel = func(string) *sim.Kernel { return sim.NewKernel() }
	}
	return c
}

// ClusterStats are cumulative replicated-cluster statistics.
type ClusterStats struct {
	Writes         int64 // acknowledged write operations
	ReplicaWrites  int64 // per-replica commits those writes fanned into
	Reads          int64
	Failovers      int64 // reads redirected past a dead/erroring replica
	ReadRepairs    int64 // async re-puts priming a replica that failed a read
	HedgedReads    int64 // secondary reads fired by the hedge timer
	DegradedSheds  int64 // reads shed by an exhausted tenant failover budget
	DegradedWrites int64 // writes committed on fewer than R live replicas
	Unavailable    int64 // operations with no live replica
}

type clusterObs struct {
	failovers, repairs, hedged, shed, repWrites *metrics.Counter
	// rebalance counters/gauge (kvcluster/rebalance/*)
	rebKeys, rebDual, rebCutovers, rebAborts, rebSkipped *metrics.Counter
	rebRanges                                            *metrics.Gauge
}

// node is one shard: a full stack plus its store and liveness mark.
type node struct {
	stack *core.Stack
	store *kvwal.Store
	down  bool
}

// Cluster is a live replicated deployment: Shards full stacks in one
// kernel behind a consistent-hash ring with successor-list replication.
type Cluster struct {
	k       *sim.Kernel
	cfg     ReplicaConfig
	ring    *Ring
	nodes   []*node
	budgets map[int]int64 // tenant -> failovers consumed
	mig     *Migration    // active (or failed-and-pinned) migration
	epoch   int           // bumped when a migration starts
	wild    map[int]int   // admission epoch -> in-flight writes outside any migrating range
	stats   ClusterStats
	obs     clusterObs
}

// OpenCluster builds the shard stacks and opens their stores. Call from a
// process on the kernel that will drive the cluster; the stores' daemons
// (group-commit leaders, flushers, compactors) spawn onto the same kernel.
func OpenCluster(p *sim.Proc, cfg ReplicaConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		k: p.Kernel(), cfg: cfg,
		ring:    NewRing(cfg.Shards, cfg.VNodes),
		budgets: make(map[int]int64),
		wild:    make(map[int]int),
	}
	if reg := metrics.Resolve(cfg.Metrics); reg != nil {
		c.obs = clusterObs{
			failovers:   reg.Counter("kvcluster/failovers"),
			repairs:     reg.Counter("kvcluster/read.repairs"),
			hedged:      reg.Counter("kvcluster/hedged.reads"),
			shed:        reg.Counter("kvcluster/degraded.shed"),
			repWrites:   reg.Counter("kvcluster/replica.writes"),
			rebKeys:     reg.Counter("kvcluster/rebalance/keys.copied"),
			rebDual:     reg.Counter("kvcluster/rebalance/dual.writes"),
			rebCutovers: reg.Counter("kvcluster/rebalance/cutovers"),
			rebAborts:   reg.Counter("kvcluster/rebalance/aborts"),
			rebSkipped:  reg.Counter("kvcluster/rebalance/copy.skipped"),
			rebRanges:   reg.Gauge("kvcluster/rebalance/ranges.migrating"),
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		if err := c.addNode(p, i); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// addNode builds shard i's stack and opens its store: fresh cluster setup,
// Resize growth, and ReplaceShard rebuilds all land here. An index inside
// the current node list replaces that slot (the old stack is abandoned);
// the index one past the end appends.
func (c *Cluster) addNode(p *sim.Proc, i int) error {
	prof := c.cfg.Profile(c.cfg.Device(i))
	prof.Name = fmt.Sprintf("%s/replica%d", prof.Name, i)
	if prof.Metrics == nil {
		prof.Metrics = c.cfg.Metrics
	}
	if prof.Retry == nil {
		prof.Retry = c.cfg.Retry
	}
	st := core.NewStack(c.k, prof)
	store, err := kvwal.Open(p, st, c.cfg.Store)
	if err != nil {
		return err
	}
	if i < len(c.nodes) {
		c.nodes[i] = &node{stack: st, store: store}
	} else {
		c.nodes = append(c.nodes, &node{stack: st, store: store})
	}
	return nil
}

// wildDone retires one untracked in-flight write admitted at epoch.
func (c *Cluster) wildDone(epoch int) {
	if c.wild[epoch]--; c.wild[epoch] <= 0 {
		delete(c.wild, epoch)
	}
}

// wildBefore counts untracked writes still in flight that were admitted
// before the given epoch — the only writes a migration started at that
// epoch could have missed both in its snapshot and in its tracking.
func (c *Cluster) wildBefore(epoch int) int {
	n := 0
	for e, cnt := range c.wild {
		if e < epoch {
			n += cnt
		}
	}
	return n
}

// downFn adapts node liveness for the ring's ShardsForUp walks.
func (c *Cluster) downFn() func(int) bool {
	return func(s int) bool { return c.nodes[s].down }
}

// Stats returns cumulative statistics.
func (c *Cluster) Stats() ClusterStats { return c.stats }

// Ring returns the placement ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Store returns shard i's store (verification hooks).
func (c *Cluster) Store(i int) *kvwal.Store { return c.nodes[i].store }

// Stack returns shard i's IO stack (fault hooks, crash injection).
func (c *Cluster) Stack(i int) *core.Stack { return c.nodes[i].stack }

// Down reports whether shard i is marked dead.
func (c *Cluster) Down(i int) bool { return c.nodes[i].down }

// KillShard marks shard i dead: it stops serving reads and writes
// (fail-stop at the service level; its device and daemons idle on). Reads
// of its keys fail over to the surviving replicas; writes commit on the
// remaining replica set.
func (c *Cluster) KillShard(i int) { c.nodes[i].down = true }

// ReviveShard returns a killed shard to service. Its store missed every
// write that committed while it was down; read-repair backfills touched
// keys on demand.
func (c *Cluster) ReviveShard(i int) { c.nodes[i].down = false }

// Put writes key to every live replica and returns once all of their
// group commits acknowledged (write-both).
func (c *Cluster) Put(p *sim.Proc, key string) error { return c.PutT(p, 0, key) }

// PutT is Put with a tenant tag (per-tenant accounting).
func (c *Cluster) PutT(p *sim.Proc, tenant int, key string) error {
	return c.applyTC(p, tenant, kvwal.Op{Kind: kvwal.Put, Key: key}, reqtrace.Ctx{})
}

// DeleteT submits a tombstone to every live replica.
func (c *Cluster) DeleteT(p *sim.Proc, tenant int, key string) error {
	return c.applyTC(p, tenant, kvwal.Op{Kind: kvwal.Delete, Key: key}, reqtrace.Ctx{})
}

// PutTC is PutT carrying a request-trace context.
func (c *Cluster) PutTC(p *sim.Proc, tenant int, key string, tc reqtrace.Ctx) error {
	return c.applyTC(p, tenant, kvwal.Op{Kind: kvwal.Put, Key: key}, tc)
}

// DeleteTC is DeleteT carrying a request-trace context.
func (c *Cluster) DeleteTC(p *sim.Proc, tenant int, key string, tc reqtrace.Ctx) error {
	return c.applyTC(p, tenant, kvwal.Op{Kind: kvwal.Delete, Key: key}, tc)
}

// ownersForWrite resolves a key's write set. Under an active migration the
// containing range's state decides: Copying routes old-only (the key is
// tracked for catch-up), CatchUp and Cutover dual-write old+new, Done
// routes new-only, Aborted keeps the old owners. Outside a migration the
// live-filtered ring successor list applies — a down shard promotes the
// next distinct owner, capping replication to the live set instead of
// misrouting (mass failure hits the degraded counters, not a panic).
func (c *Cluster) ownersForWrite(key string) (owners []int, rm *rangeMig, dual bool) {
	if c.mig != nil {
		if r := c.mig.rangeOf(key); r != nil {
			switch r.state {
			case MigCopying:
				return r.mv.Old, r, false
			case MigCatchUp, MigCutover:
				return unionInts(r.mv.Old, r.mv.New), r, true
			case MigDone:
				return r.mv.New, nil, false
			default: // MigAborted
				return r.mv.Old, nil, false
			}
		}
	}
	return c.ring.ShardsForUp(key, c.cfg.Replicas, c.downFn()), nil, false
}

func (c *Cluster) applyTC(p *sim.Proc, tenant int, op kvwal.Op, tc reqtrace.Ctx) error {
	owners, rm, dual := c.ownersForWrite(op.Key)
	var gen, epoch int
	if rm != nil {
		rm.inflight++
		gen = rm.gen
		if dual {
			rm.dualSeen[op.Key] = true
			rm.m.stats.DualWrites++
			c.obs.rebDual.Inc()
		}
	} else {
		// A write admitted outside any migrating range — including every
		// write still in flight when a migration starts. Those stragglers
		// may commit after the range snapshot was built, so cutover gates
		// on the pre-migration epochs of this count and completion
		// re-resolves the range below.
		epoch = c.epoch
		c.wild[epoch]++
	}
	// Fan the write out to every live owner first, then wait: the replica
	// group commits overlap instead of serializing.
	batches := make([]*kvwal.Batch, 0, len(owners))
	for _, s := range owners {
		n := c.nodes[s]
		if n.down {
			continue
		}
		// Only the first live owner carries the trace context: each store's
		// leader chains the contexts of its own group, so handing one
		// context to two leaders would cross-link two independent chains.
		btc := tc
		if len(batches) > 0 {
			btc = reqtrace.Ctx{}
		}
		batches = append(batches, n.store.ApplyAsyncT(p.Now(), []kvwal.Op{op}, btc))
	}
	if len(batches) == 0 {
		if rm != nil {
			rm.inflight--
		} else {
			c.wildDone(epoch)
		}
		c.stats.Unavailable++
		c.stats.DegradedWrites++
		c.obs.shed.Inc()
		return ErrUnavailable
	}
	if len(batches) < c.cfg.Replicas {
		// Fewer than R live replicas could take the write: committed
		// degraded rather than refused, and counted.
		c.stats.DegradedWrites++
		c.obs.shed.Inc()
	}
	for _, b := range batches {
		b.Wait(p)
	}
	if rm != nil {
		rm.inflight--
		// Queue the key for catch-up: always for old-only writes, and for
		// dual-writes whose range retargeted mid-flight (the destination
		// they fanned to is gone).
		if (!dual || rm.gen != gen) && (rm.state == MigCopying || rm.state == MigCatchUp) {
			rm.pending[op.Key] = true
		}
	} else {
		c.wildDone(epoch)
		// The write may have landed on a range that started migrating after
		// admission (it was only enqueued, not yet in the memtable, when the
		// snapshot walked the source) — queue it for catch-up.
		if c.mig != nil {
			if r := c.mig.rangeOf(op.Key); r != nil &&
				(r.state == MigCopying || r.state == MigCatchUp) {
				r.pending[op.Key] = true
			}
		}
	}
	c.stats.Writes++
	c.stats.ReplicaWrites += int64(len(batches))
	c.obs.repWrites.Add(int64(len(batches)))
	return nil
}

// Get reads key from its primary, failing over down the replica list on a
// dead shard or a hard media error. It reports the newest committed
// sequence for the key and whether the key is live.
func (c *Cluster) Get(p *sim.Proc, key string) (uint64, bool, error) {
	return c.GetT(p, 0, key)
}

// ownersForRead resolves a key's read order plus its natural primary (the
// shard that would serve it with nothing down — serving from anywhere else
// is a failover). Under an active migration reads stay on the old owners
// with the new appended as a failover tail until the range cuts over; a
// cut-over range reads new-first with the old owners as the tail.
func (c *Cluster) ownersForRead(key string) (owners []int, primary int) {
	if c.mig != nil {
		if r := c.mig.rangeOf(key); r != nil {
			switch r.state {
			case MigDone:
				return unionInts(r.mv.New, r.mv.Old), r.mv.New[0]
			case MigAborted:
				return r.mv.Old, r.mv.Old[0]
			default:
				return unionInts(r.mv.Old, r.mv.New), r.mv.Old[0]
			}
		}
	}
	owners = c.ring.ShardsForUp(key, c.cfg.Replicas, c.downFn())
	return owners, c.ring.Shard(key)
}

// GetT is Get with a tenant tag: the tenant's failover budget throttles
// how often its reads may be retried on replicas.
func (c *Cluster) GetT(p *sim.Proc, tenant int, key string) (uint64, bool, error) {
	c.stats.Reads++
	owners, primary := c.ownersForRead(key)
	var errShards []int
	var lastErr error
	for tried, s := range owners {
		n := c.nodes[s]
		if tried > 0 || n.down || s != primary {
			// Moving past the first choice — or serving a key away from its
			// natural primary (dead, or promoted around) — is a failover;
			// charge the tenant's budget.
			if !c.chargeFailover(tenant) {
				return 0, false, lastErrOr(lastErr)
			}
		}
		if n.down {
			continue
		}
		seq, ok, err := c.readNode(p, n, tried, owners, key)
		if err != nil {
			errShards = append(errShards, s)
			lastErr = err
			continue
		}
		if ok && len(errShards) > 0 {
			c.readRepair(p, key, errShards)
		}
		return seq, ok, nil
	}
	// No live replica could serve the key (mass failure, or every owner
	// errored): shed it as degraded rather than panicking or misrouting.
	c.stats.Unavailable++
	c.stats.DegradedSheds++
	c.obs.shed.Inc()
	return 0, false, lastErrOr(lastErr)
}

func lastErrOr(err error) error {
	if err != nil {
		return err
	}
	return ErrUnavailable
}

// chargeFailover consumes one unit of the tenant's failover budget,
// reporting false — shed the read — once it is exhausted.
func (c *Cluster) chargeFailover(tenant int) bool {
	if c.cfg.TenantFailovers > 0 && c.budgets[tenant] >= c.cfg.TenantFailovers {
		c.stats.DegradedSheds++
		c.obs.shed.Inc()
		return false
	}
	c.budgets[tenant]++
	c.stats.Failovers++
	c.obs.failovers.Inc()
	return true
}

// readNode reads key from n, hedging onto the next live replica when the
// primary read outlives the hedge timer (GC-interference latency spikes).
func (c *Cluster) readNode(p *sim.Proc, n *node, tried int, owners []int, key string) (uint64, bool, error) {
	if c.cfg.HedgeAfter <= 0 || tried != 0 {
		return n.store.GetE(p, key)
	}
	var backup *node
	for _, s := range owners[1:] {
		if !c.nodes[s].down {
			backup = c.nodes[s]
			break
		}
	}
	if backup == nil {
		return n.store.GetE(p, key)
	}
	return c.hedgedGet(p, n, backup, key)
}

// hedgeRace is the client/helper rendezvous of one hedged read.
type hedgeRace struct {
	client  *sim.Proc
	settled bool
	timeout bool
	seq     uint64
	ok      bool
	err     error
}

func (hr *hedgeRace) settle(k *sim.Kernel, seq uint64, ok bool, err error) {
	if hr.settled {
		return // the other leg won; drop this result
	}
	hr.settled = true
	hr.seq, hr.ok, hr.err = seq, ok, err
	if hr.client != nil {
		k.Resume(hr.client)
	}
}

// hedgedGet races a primary read against a timer; if the timer fires
// first, a second read starts on the backup replica and the first
// completion wins. Losing legs run to completion and drop their results.
func (c *Cluster) hedgedGet(p *sim.Proc, primary, backup *node, key string) (uint64, bool, error) {
	hr := &hedgeRace{client: p}
	c.k.Spawn("kvc/hedge-primary", func(hp *sim.Proc) {
		seq, ok, err := primary.store.GetE(hp, key)
		hr.settle(c.k, seq, ok, err)
	})
	c.k.Spawn("kvc/hedge-timer", func(tp *sim.Proc) {
		tp.Advance(c.cfg.HedgeAfter)
		if hr.settled {
			return
		}
		hr.timeout = true
		if hr.client != nil {
			c.k.Resume(hr.client)
		}
	})
	for !hr.settled && !hr.timeout {
		p.Suspend()
	}
	if !hr.settled {
		// Timer fired first: hedge onto the backup.
		c.stats.HedgedReads++
		c.obs.hedged.Inc()
		c.k.Spawn("kvc/hedge-backup", func(bp *sim.Proc) {
			seq, ok, err := backup.store.GetE(bp, key)
			hr.settle(c.k, seq, ok, err)
		})
		for !hr.settled {
			p.Suspend()
		}
	}
	hr.client = nil
	return hr.seq, hr.ok, hr.err
}

// readRepair re-primes the replicas that failed the read with an async
// Put of the key: their next read of it lands in the memtable instead of
// the uncorrectable segment page. Best effort — no wait, dead shards are
// skipped.
func (c *Cluster) readRepair(p *sim.Proc, key string, shards []int) {
	for _, s := range shards {
		n := c.nodes[s]
		if n.down {
			continue
		}
		n.store.ApplyAsync(p.Now(), []kvwal.Op{{Kind: kvwal.Put, Key: key}})
		c.stats.ReadRepairs++
		c.obs.repairs.Inc()
	}
}
