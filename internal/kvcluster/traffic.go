package kvcluster

import (
	"fmt"
	"math/rand"

	"repro/internal/reqtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Traffic describes one open-loop offered load: an arrival process, a
// Zipfian key popularity, a YCSB-style operation mix and a tenant
// population. The whole request stream is pre-generated deterministically
// and then partitioned across shards by the consistent-hash ring, which is
// exactly Poisson splitting: each shard sees an open-loop process of its
// own, replayable in its own kernel with no cross-kernel coordination.
type Traffic struct {
	// Arrivals is the arrival process (rate, shape, seed).
	Arrivals workload.ArrivalConfig
	// Replay, when non-nil, substitutes a recorded trace for the synthetic
	// generators: arrival instants, op classes and keys all come from the
	// trace (wrapped cyclically to fill the window, mean rate preserved —
	// see workload.Trace.Times). Mix, KeySpace and ZipfTheta are ignored;
	// tenants are still drawn from the seeded stream.
	Replay *workload.Trace
	// Mix is the operation class mix.
	Mix workload.Mix
	// KeySpace is the key universe size (default 16384).
	KeySpace int
	// ZipfTheta is the key-popularity skew (0 = uniform).
	ZipfTheta float64
	// Tenants is the number of tenants sharing the cluster (default 1);
	// each request carries a tenant for per-tenant SLO accounting.
	Tenants int
	// Warmup is discarded lead-in time: arrivals before it run but are not
	// measured (default 5ms — must cover store open and cold daemons).
	Warmup sim.Duration
	// Duration is the measured window after Warmup (default 20ms).
	Duration sim.Duration
}

func (t Traffic) withDefaults() Traffic {
	if t.KeySpace <= 0 {
		t.KeySpace = 16384
	}
	if t.Tenants <= 0 {
		t.Tenants = 1
	}
	if t.Warmup <= 0 {
		t.Warmup = 5 * sim.Millisecond
	}
	if t.Duration <= 0 {
		t.Duration = 20 * sim.Millisecond
	}
	return t
}

// Request is one generated client request. Trace is zero in the generated
// stream; the dispatcher fills it at admission when the run samples
// request traces.
type Request struct {
	At     sim.Time
	Class  workload.OpClass
	Key    string
	Tenant int
	Trace  reqtrace.Ctx
}

// measured reports whether the request arrives inside the measuring window.
func (r Request) measured(t Traffic) bool { return r.At >= sim.Time(t.Warmup) }

// Generate produces the full request stream for [0, Warmup+Duration),
// ascending by arrival time, deterministic under the arrival seed.
func (t Traffic) Generate() []Request {
	t = t.withDefaults()
	if t.Replay != nil && len(t.Replay.Rows) > 0 {
		times := t.Replay.Times(t.Warmup + t.Duration)
		rng := rand.New(rand.NewSource(t.Arrivals.Seed + 2))
		reqs := make([]Request, len(times))
		for i, at := range times {
			row := t.Replay.Row(i)
			reqs[i] = Request{
				At: at, Class: row.Op, Key: row.Key, Tenant: rng.Intn(t.Tenants),
			}
		}
		return reqs
	}
	times := t.Arrivals.Times(t.Warmup + t.Duration)
	zipf := workload.NewZipf(t.Arrivals.Seed+1, t.KeySpace, t.ZipfTheta)
	rng := rand.New(rand.NewSource(t.Arrivals.Seed + 2))
	reqs := make([]Request, len(times))
	for i, at := range times {
		reqs[i] = Request{
			At:     at,
			Class:  t.Mix.Pick(rng),
			Key:    fmt.Sprintf("u%07d", zipf.Next()),
			Tenant: rng.Intn(t.Tenants),
		}
	}
	return reqs
}

// Partition splits a request stream across the ring's shards by key. Each
// slice stays ascending in arrival time.
func Partition(reqs []Request, ring *Ring) [][]Request {
	parts := make([][]Request, ring.Shards())
	for _, r := range reqs {
		s := ring.Shard(r.Key)
		parts[s] = append(parts[s], r)
	}
	return parts
}
