// Package blkmq implements a blk-mq-style multi-queue, order-preserving
// block layer: per-stream software queues feeding M hardware dispatch
// queues, with the paper's epoch-based barrier semantics (§3.3) tracked per
// *stream* instead of globally — the multi-queue scalability direction the
// paper names as future work (§8).
//
// Every request carries a stream ID (block.Request.Stream). Within one
// stream the §3.3 invariants hold exactly as in the single-queue layer: the
// partial order between epochs is preserved, requests inside an epoch and
// orderless requests reorder freely, and the barrier is reassigned to the
// last ordered request leaving the stream's queue. Across streams there is
// no ordering at all: each stream owns a private epoch scheduler, its
// commands are tagged with the stream at the device, and the device's SCSI
// ordering rules are scoped per stream — so a barrier in one stream never
// drains another stream's traffic.
//
// A stream is pinned to one hardware dispatch queue (stream mod M), which
// keeps a stream's commands flowing through a single dispatcher in order
// while independent streams dispatch concurrently from separate daemons.
package blkmq

import (
	"fmt"
	"sort"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// Config tunes the multi-queue layer.
type Config struct {
	// HWQueues is the number of hardware dispatch queues (M). Each runs its
	// own dispatch daemon. 0 means 1.
	HWQueues int
	// QueueLimit bounds the requests buffered per stream (scheduler +
	// staging), like the kernel's per-hctx nr_requests; submitters of that
	// stream block beyond it. 0 means 128.
	QueueLimit int
	// DispatchOverhead is the host-side cost of dispatching one command
	// (the paper's tD), charged on the owning hardware queue's daemon —
	// with M queues the cost parallelizes, the host half of the blk-mq win.
	DispatchOverhead sim.Duration
	// BaseSched builds the conventional scheduler each stream's epoch
	// scheduler wraps. nil means NOOP.
	BaseSched func() block.Scheduler
	// SpreadOrderless routes background writeback (FlagBackground, always
	// orderless) arriving on stream 0 onto per-PID data streams, so bulk
	// traffic never sits in front of foreground syncs and barriers.
	// Foreground requests — ordered, barrier, or simply awaited — are never
	// moved: their stream is part of their semantics.
	SpreadOrderless bool
	// DataStreams is the number of data streams SpreadOrderless scatters
	// over. 0 means HWQueues-1 (so the data streams 1..DataStreams land on
	// hardware queues 1..DataStreams and never share hardware queue 0 with
	// the foreground stream), or 1 when there is only one hardware queue.
	DataStreams int
	// BarrierAsCommand dispatches epoch boundaries as standalone barrier
	// commands instead of write flags — the §3.2 alternative the paper
	// rejects, kept for ablation parity with the single-queue layer.
	BarrierAsCommand bool
	// Trace records the dispatch order for verification.
	Trace bool
	// Metrics is an explicit observability registry; nil falls back to the
	// process-wide live registry, and a nil resolution disables the layer's
	// instruments.
	Metrics *metrics.Registry
	// Retry, when non-nil, arms bounded per-class command retry with
	// backoff (see block.RetryPolicy). Nil — the default — propagates
	// device errors to Request.Err on first completion.
	Retry *block.RetryPolicy
}

// Stats are cumulative layer statistics.
type Stats struct {
	Submitted  int64
	Dispatched int64
	Completed  int64
	StagedPeak int   // high-water mark of requests parked behind closed epochs
	Streams    int   // streams ever opened
	Spread     int64 // orderless requests rerouted to data streams
}

// stream is one ordering domain: a private epoch scheduler plus staging for
// requests that arrive while the stream's epoch is closed.
type stream struct {
	id      uint64
	sched   *block.EpochScheduler
	staged  []*block.Request
	congest *sim.Cond
	hq      *hwQueue
}

func (st *stream) queued() int { return st.sched.Pending() + len(st.staged) }

// hwQueue is one hardware dispatch context: a daemon draining its assigned
// streams round-robin into the device.
type hwQueue struct {
	id      int
	streams []*stream
	kick    *sim.Cond
	rr      int
}

// MQ is the multi-queue block layer front-end. It satisfies
// block.Submitter, so a filesystem stack mounts on it exactly as on the
// single-queue block.Layer.
type MQ struct {
	k   *sim.Kernel
	dev *device.Device
	cfg Config

	hw      []*hwQueue
	streams map[uint64]*stream
	cmds    *block.CmdPool
	flushes block.ReqPool

	trace  []block.DispatchRecord
	stats  Stats
	staged int // total staged across streams, for StagedPeak
	obs    mqObs
}

// mqObs holds the layer's registry instruments; all nil when disabled. The
// per-queue depth gauges count requests buffered per hardware dispatch
// context (scheduler + staging), the blk-mq in-flight view.
type mqObs struct {
	submitted, dispatched, spread *metrics.Counter
	depth                         []*metrics.Gauge
}

var _ block.Submitter = (*MQ)(nil)

// New builds a multi-queue layer over dev and starts one dispatch daemon
// per hardware queue.
func New(k *sim.Kernel, dev *device.Device, cfg Config) *MQ {
	if cfg.HWQueues <= 0 {
		cfg.HWQueues = 1
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 128
	}
	if cfg.BaseSched == nil {
		cfg.BaseSched = func() block.Scheduler { return block.NewNOOP() }
	}
	if cfg.DataStreams <= 0 {
		cfg.DataStreams = cfg.HWQueues - 1
		if cfg.DataStreams == 0 {
			cfg.DataStreams = 1
		}
	}
	m := &MQ{k: k, dev: dev, cfg: cfg, streams: make(map[uint64]*stream)}
	m.cmds = block.NewCmdPool(func(sim.Time, *block.Request) { m.stats.Completed++ })
	if cfg.Retry != nil {
		m.cmds.EnableRetry(k, dev, *cfg.Retry, metrics.Resolve(cfg.Metrics))
	}
	if reg := metrics.Resolve(cfg.Metrics); reg != nil {
		m.obs.submitted = reg.Counter("blkmq/submitted")
		m.obs.dispatched = reg.Counter("blkmq/dispatched")
		m.obs.spread = reg.Counter("blkmq/spread")
		for i := 0; i < cfg.HWQueues; i++ {
			m.obs.depth = append(m.obs.depth, reg.Gauge(fmt.Sprintf("blkmq/hwq%d.depth", i)))
		}
	}
	for i := 0; i < cfg.HWQueues; i++ {
		h := &hwQueue{id: i, kick: sim.NewCond(k)}
		m.hw = append(m.hw, h)
		k.SpawnIdx("blkmq/hwq", i, m.dispatcher(h))
	}
	return m
}

// Device returns the underlying device.
func (m *MQ) Device() *device.Device { return m.dev }

// Stats returns cumulative statistics.
func (m *MQ) Stats() Stats { return m.stats }

// HWQueues returns the number of hardware dispatch queues.
func (m *MQ) HWQueues() int { return len(m.hw) }

// DispatchLog returns the recorded dispatch order (requires cfg.Trace).
func (m *MQ) DispatchLog() []block.DispatchRecord { return m.trace }

// EpochsClosed returns the number of epochs fully dispatched, summed over
// all streams.
func (m *MQ) EpochsClosed() int64 {
	var n int64
	for _, st := range m.streams {
		n += st.sched.EpochsClosed()
	}
	return n
}

// Reassigned returns the number of barrier reassignments, summed over all
// streams.
func (m *MQ) Reassigned() int64 {
	var n int64
	for _, st := range m.streams {
		n += st.sched.Reassigned()
	}
	return n
}

// Streams returns the ids of every stream opened so far, ascending. Stream
// 0 is the ordered/journal domain; data streams appear once spreading has
// routed background writeback onto them. Together with StreamEpoch this
// describes the layer's per-stream ordering state, e.g. for correlating a
// crash-time device capture (device.CaptureConstraints) with the streams
// the layer actually opened.
func (m *MQ) Streams() []uint64 {
	out := make([]uint64, 0, len(m.streams))
	for id := range m.streams {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StreamEpoch returns the epoch a stream's scheduler is currently
// assigning.
func (m *MQ) StreamEpoch(id uint64) uint64 {
	if st, ok := m.streams[id]; ok {
		return st.sched.CurrentEpoch()
	}
	return 0
}

// Verify checks the recorded dispatch trace against the per-stream epoch
// invariants (requires cfg.Trace).
func (m *MQ) Verify() error { return VerifyTrace(m.trace) }

// stream returns the ordering domain for id, opening it on first use and
// pinning it to hardware queue id mod M.
func (m *MQ) stream(id uint64) *stream {
	st, ok := m.streams[id]
	if !ok {
		st = &stream{
			id:      id,
			sched:   block.NewEpochScheduler(m.cfg.BaseSched()),
			congest: sim.NewCond(m.k),
		}
		st.hq = m.hw[int(id%uint64(len(m.hw)))]
		st.hq.streams = append(st.hq.streams, st)
		m.streams[id] = st
		m.stats.Streams++
	}
	return st
}

// Submit queues a request on its stream. Requests arriving while the
// stream's epoch scheduler has admission closed are staged and fed in
// submission order once it reopens; only that stream's submitters ever
// block on its congestion limit.
func (m *MQ) Submit(p *sim.Proc, r *block.Request) {
	m.spread(r)
	st := m.stream(r.Stream)
	for st.queued() >= m.cfg.QueueLimit {
		st.congest.Wait(p)
	}
	m.admit(st, r)
}

// SubmitOrPark is the handler-path Submit: one congestion Mesa iteration on
// the request's stream. Spreading is idempotent, so a parked handler
// retrying with the same request keeps its assigned data stream.
func (m *MQ) SubmitOrPark(h *sim.Proc, r *block.Request) bool {
	m.spread(r)
	st := m.stream(r.Stream)
	if st.queued() >= m.cfg.QueueLimit {
		st.congest.Park(h)
		return false
	}
	m.admit(st, r)
	return true
}

// spread scatters background writeback arriving on an ordering stream —
// stream 0 or a per-shard order stream (block.OrderStream) — over the data
// streams. Background writeback carries no ordering promise and nobody
// waits on it, so it bypasses the ordering stream's barriers and congestion
// limit. Keyed by LPA, not submitter, so a single pdflush daemon still
// spreads across every data stream; data streams are shared by every
// tenant, which is safe precisely because spread writes are orderless.
func (m *MQ) spread(r *block.Request) {
	if m.cfg.SpreadOrderless &&
		(r.Stream == 0 || block.IsOrderStream(r.Stream)) && !r.Ordered() &&
		r.Op == block.OpWrite && r.Flags.Has(block.FlagBackground) &&
		r.Flags&(block.FlagFlush|block.FlagFUA) == 0 {
		r.Stream = 1 + r.LPA%uint64(m.cfg.DataStreams)
		m.stats.Spread++
		m.obs.spread.Inc()
	}
}

func (m *MQ) admit(st *stream, r *block.Request) {
	r.Bind(m.k, m.k.Now())
	m.stats.Submitted++
	m.obs.submitted.Inc()
	if m.obs.depth != nil {
		m.obs.depth[st.hq.id].Inc()
	}
	if len(st.staged) > 0 || !st.sched.Add(r) {
		st.staged = append(st.staged, r)
		m.staged++
		if m.staged > m.stats.StagedPeak {
			m.stats.StagedPeak = m.staged
		}
	}
	st.hq.kick.Broadcast()
}

// SubmitAndWait submits r and blocks until it completes (Wait-on-Transfer).
func (m *MQ) SubmitAndWait(p *sim.Proc, r *block.Request) {
	m.Submit(p, r)
	r.Wait(p)
}

// Flush issues a standalone cache-flush request on stream 0 and waits for
// it. The device flushes its whole cache regardless of stream, so pages a
// caller transferred (and waited for) on any stream are covered. The
// request is pooled: after SubmitAndWait returns nothing else can hold it.
func (m *MQ) Flush(p *sim.Proc) { m.FlushT(p, reqtrace.Ctx{}) }

// FlushT is Flush with a trace context attached to the flush request.
func (m *MQ) FlushT(p *sim.Proc, tc reqtrace.Ctx) {
	r := m.flushes.Get()
	r.Op = block.OpFlush
	r.Trace = tc
	m.SubmitAndWait(p, r)
	m.flushes.Put(r)
}

// feedStaged moves a stream's staged requests into its scheduler in
// submission order while admission is open.
func (m *MQ) feedStaged(st *stream) {
	for len(st.staged) > 0 && st.sched.Accepting() {
		if !st.sched.Add(st.staged[0]) {
			break
		}
		st.staged = st.staged[1:]
		m.staged--
	}
}

// next returns the next dispatchable request among h's streams, round-robin
// so one busy stream cannot starve its neighbours.
func (m *MQ) next(h *hwQueue) (*block.Request, *stream) {
	n := len(h.streams)
	for i := 0; i < n; i++ {
		st := h.streams[(h.rr+i)%n]
		m.feedStaged(st)
		if r := st.sched.Next(); r != nil {
			h.rr = (h.rr + i + 1) % n
			return r, st
		}
	}
	return nil, nil
}

func (m *MQ) dispatcher(h *hwQueue) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		for {
			r, st := m.next(h)
			if r == nil {
				h.kick.Wait(p)
				continue
			}
			if m.obs.depth != nil {
				m.obs.depth[h.id].Dec()
			}
			if m.cfg.DispatchOverhead > 0 {
				p.Advance(m.cfg.DispatchOverhead)
			}
			if m.cfg.Trace {
				m.trace = append(m.trace, block.DispatchRecord{
					At: p.Now(), LPA: r.LPA, Op: r.Op, Flags: r.Flags,
					Epoch: r.Epoch(), Stream: r.Stream, HWQueue: h.id,
				})
			}
			r.Trace.StampChain(reqtrace.StageBlockDispatch, p.Now())
			cmd := m.cmds.Get(r)
			var trailer *device.Command
			if m.cfg.BarrierAsCommand && cmd.Kind == device.CmdWrite && cmd.Barrier {
				// §3.2 ablation: strip the flag; an explicit barrier command
				// follows the write on the same stream, paying one more queue
				// slot and dispatch.
				cmd.Barrier = false
				trailer = &device.Command{Kind: device.CmdBarrier,
					Prio: device.PrioOrdered, Stream: r.Stream}
			}
			for !m.dev.Submit(cmd) {
				if m.dev.Dead() {
					return
				}
				m.dev.WaitSpace(p)
			}
			m.stats.Dispatched++
			m.obs.dispatched.Inc()
			if trailer != nil {
				if m.cfg.DispatchOverhead > 0 {
					p.Advance(m.cfg.DispatchOverhead)
				}
				for !m.dev.Submit(trailer) {
					if m.dev.Dead() {
						return
					}
					m.dev.WaitSpace(p)
				}
				m.stats.Dispatched++
				m.obs.dispatched.Inc()
			}
			st.congest.Broadcast()
		}
	}
}
