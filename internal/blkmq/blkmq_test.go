package blkmq

import (
	"math/rand"
	"testing"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/sim"
)

func testDevice(k *sim.Kernel) *device.Device {
	return device.New(k, device.NVMeSSD())
}

func newMQ(k *sim.Kernel, hwq int, trace bool) *MQ {
	return New(k, testDevice(k), Config{
		HWQueues:         hwq,
		DispatchOverhead: sim.Microsecond,
		Trace:            trace,
	})
}

func ordered(stream, lpa uint64) *block.Request {
	return &block.Request{Op: block.OpWrite, LPA: lpa, Data: lpa,
		Flags: block.FlagOrdered, Stream: stream}
}

func barrier(stream, lpa uint64) *block.Request {
	return &block.Request{Op: block.OpWrite, LPA: lpa, Data: lpa,
		Flags: block.FlagOrdered | block.FlagBarrier, Stream: stream}
}

func orderless(stream, lpa uint64) *block.Request {
	return &block.Request{Op: block.OpWrite, LPA: lpa, Data: lpa, Stream: stream}
}

func background(stream, lpa uint64) *block.Request {
	r := orderless(stream, lpa)
	r.Flags |= block.FlagBackground
	return r
}

// TestMQWriteReadRoundTrip exercises the basic Submitter surface: write,
// flush, read back.
func TestMQWriteReadRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	m := newMQ(k, 2, false)
	k.Spawn("host", func(p *sim.Proc) {
		m.SubmitAndWait(p, &block.Request{Op: block.OpWrite, LPA: 42, Data: "v", Stream: 1})
		m.Flush(p)
		if _, ok := m.Device().FTL().DurableData(42); !ok {
			t.Error("page not durable after flush")
		}
		r := &block.Request{Op: block.OpRead, LPA: 42, Stream: 1}
		m.SubmitAndWait(p, r)
		if r.Data != "v" {
			t.Errorf("read = %v", r.Data)
		}
	})
	k.Run()
	if m.Stats().Completed != 3 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

// TestMQIntraStreamEpochOrdering drives several streams, each with its own
// barrier cadence, over multiple hardware queues, and checks acceptance
// criterion (a): the per-stream epoch invariants hold in the dispatch trace
// on every hardware queue, and in completion (transfer) order too.
func TestMQIntraStreamEpochOrdering(t *testing.T) {
	const streams = 4
	for _, hwq := range []int{1, 2, 4} {
		k := sim.NewKernel()
		m := newMQ(k, hwq, true)
		completions := make(map[uint64][]*block.Request)
		for s := 0; s < streams; s++ {
			s := s
			k.Spawn("submitter", func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(int64(s)))
				lpa := uint64(s * 10000)
				for e := 0; e < 20; e++ {
					n := 1 + rng.Intn(6)
					for j := 0; j < n; j++ {
						var r *block.Request
						switch rng.Intn(3) {
						case 0:
							r = orderless(uint64(s), lpa)
						default:
							r = ordered(uint64(s), lpa)
						}
						lpa++
						r.OnComplete = func(at sim.Time, rr *block.Request) {
							completions[rr.Stream] = append(completions[rr.Stream], rr)
						}
						m.Submit(p, r)
					}
					b := barrier(uint64(s), lpa)
					lpa++
					b.OnComplete = func(at sim.Time, rr *block.Request) {
						completions[rr.Stream] = append(completions[rr.Stream], rr)
					}
					m.Submit(p, b)
				}
			})
		}
		k.Run()
		// (c) the dispatch trace verifier accepts the run.
		if err := m.Verify(); err != nil {
			t.Fatalf("hwq=%d: %v", hwq, err)
		}
		// Each hardware queue's own sub-trace must verify as well.
		for q := 0; q < hwq; q++ {
			var sub []block.DispatchRecord
			for _, rec := range m.DispatchLog() {
				if rec.HWQueue == q {
					sub = append(sub, rec)
				}
			}
			if err := VerifyTrace(sub); err != nil {
				t.Fatalf("hwq=%d queue %d sub-trace: %v", hwq, q, err)
			}
		}
		// Completion (transfer) order must respect per-stream epochs too.
		for s, reqs := range completions {
			lastEpoch := uint64(0)
			barrierSeen := false
			for i, r := range reqs {
				if !r.Ordered() {
					continue
				}
				switch {
				case r.Epoch() == lastEpoch:
					if barrierSeen {
						t.Fatalf("hwq=%d stream %d: completion %d of epoch %d after its barrier", hwq, s, i, lastEpoch)
					}
					barrierSeen = r.Flags.Has(block.FlagBarrier)
				case r.Epoch() == lastEpoch+1 && barrierSeen:
					lastEpoch = r.Epoch()
					barrierSeen = r.Flags.Has(block.FlagBarrier)
				default:
					t.Fatalf("hwq=%d stream %d: completion epoch %d after epoch %d (barrierSeen=%v)", hwq, s, i, lastEpoch, barrierSeen)
				}
			}
		}
		if m.EpochsClosed() != streams*20 {
			t.Errorf("hwq=%d: epochs closed = %d, want %d", hwq, m.EpochsClosed(), streams*20)
		}
		k.Close()
	}
}

// TestMQConcurrentSubmittersOneStream is the -race invariant test: many
// submitter processes (each a real goroutine under the sim kernel)
// interleave ordered, orderless and barrier submissions into ONE stream.
// No cross-epoch dispatch inversion may ever be observed.
func TestMQConcurrentSubmittersOneStream(t *testing.T) {
	const submitters = 8
	k := sim.NewKernel()
	defer k.Close()
	m := newMQ(k, 4, true)
	for g := 0; g < submitters; g++ {
		g := g
		k.Spawn("submitter", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(int64(100 + g)))
			lpa := uint64(g * 10000)
			for i := 0; i < 120; i++ {
				var r *block.Request
				switch rng.Intn(5) {
				case 0:
					r = barrier(0, lpa)
				case 1, 2:
					r = ordered(0, lpa)
				default:
					r = orderless(0, lpa)
				}
				r.PID = p.ID()
				lpa++
				m.Submit(p, r)
				if rng.Intn(4) == 0 {
					p.Advance(sim.Duration(rng.Intn(20)) * sim.Microsecond)
				}
			}
		})
	}
	k.Run()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Completed != submitters*120 {
		t.Errorf("completed %d/%d", m.Stats().Completed, submitters*120)
	}
}

// TestMQSpreadOrderless checks that background stream-0 writes scatter
// onto data streams while ordered and plain foreground traffic stays put.
func TestMQSpreadOrderless(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	m := New(k, testDevice(k), Config{
		HWQueues:        4,
		SpreadOrderless: true,
		Trace:           true,
	})
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			r := background(0, uint64(i))
			r.PID = i
			m.Submit(p, r)
		}
		m.Submit(p, orderless(0, 50)) // foreground orderless: stays on 0
		m.Submit(p, ordered(0, 100))
		m.Submit(p, barrier(0, 101))
	})
	k.Run()
	if m.Stats().Spread != 8 {
		t.Errorf("spread = %d, want 8", m.Stats().Spread)
	}
	streams := map[uint64]bool{}
	for _, rec := range m.DispatchLog() {
		if rec.Flags.Has(block.FlagBackground) {
			if rec.Stream == 0 {
				t.Error("background write left on stream 0")
			}
			streams[rec.Stream] = true
			continue
		}
		if rec.Stream != 0 {
			t.Errorf("foreground request moved to stream %d", rec.Stream)
		}
	}
	if len(streams) < 2 {
		t.Errorf("background writes landed on %d streams, want several", len(streams))
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestMQStreamsMatchesDeviceCapture spreads background writeback, then
// checks the Streams() accessor against both the dispatch trace and the
// device's crash-time constraint capture: every stream the device saw a
// volatile write on must be a stream the layer reports as open.
func TestMQStreamsMatchesDeviceCapture(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	m := New(k, testDevice(k), Config{
		HWQueues:        4,
		SpreadOrderless: true,
		Trace:           true,
	})
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			r := background(0, uint64(i))
			r.PID = i
			m.Submit(p, r)
		}
		m.Submit(p, ordered(0, 100))
	})
	// Capture mid-flight — after the transfers, before the NAND programs
	// retire the cache — so the volatile set is non-empty and the
	// cross-check below is real.
	k.RunUntil(sim.Time(100 * sim.Microsecond))
	cons := m.Device().CaptureConstraints()
	if len(cons.Writes) == 0 {
		t.Fatal("expected volatile writes at the capture instant")
	}
	k.Run()
	streams := m.Streams()
	if len(streams) < 2 {
		t.Fatalf("Streams() = %v, want stream 0 plus data streams", streams)
	}
	open := map[uint64]bool{}
	for i, id := range streams {
		open[id] = true
		if i > 0 && streams[i-1] >= id {
			t.Fatalf("Streams() not ascending: %v", streams)
		}
	}
	if !open[0] {
		t.Errorf("Streams() = %v, missing the ordered domain 0", streams)
	}
	for _, rec := range m.DispatchLog() {
		if !open[rec.Stream] {
			t.Errorf("dispatched on stream %d not reported by Streams()", rec.Stream)
		}
	}
	captured := map[uint64]bool{}
	for _, w := range cons.Writes {
		captured[w.Stream] = true
		if !open[w.Stream] {
			t.Errorf("volatile write on stream %d not reported by Streams()", w.Stream)
		}
	}
	if len(captured) < 2 {
		t.Errorf("capture saw %d streams, want the spread data streams too", len(captured))
	}
}

// TestMQBarrierDoesNotStallOtherStream pins down the concurrency win
// structurally: while stream 0 is stalled behind a closed epoch, stream 1
// keeps dispatching.
func TestMQBarrierDoesNotStallOtherStream(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	m := newMQ(k, 2, true)
	k.Spawn("stream0", func(p *sim.Proc) {
		for e := 0; e < 10; e++ {
			m.Submit(p, ordered(0, uint64(e*10)))
			m.Submit(p, barrier(0, uint64(e*10+1)))
		}
	})
	k.Spawn("stream1", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			m.Submit(p, ordered(1, uint64(5000+i)))
		}
	})
	k.Run()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// Stream 1's 50 ordered writes carry no barrier, so they must all stay
	// in epoch 0 — and some must dispatch between stream-0 epochs.
	log := m.DispatchLog()
	var s1Between bool
	seenS0Epoch := uint64(0)
	for _, rec := range log {
		if rec.Stream == 0 && rec.Epoch > 0 {
			seenS0Epoch = rec.Epoch
		}
		if rec.Stream == 1 {
			if rec.Epoch != 0 {
				t.Fatalf("stream 1 advanced to epoch %d without barriers", rec.Epoch)
			}
			if seenS0Epoch > 0 {
				s1Between = true
			}
		}
	}
	if !s1Between {
		t.Error("stream 1 never dispatched after stream 0 closed an epoch")
	}
}

// TestVerifyTraceRejects feeds the verifier hand-built violating traces.
func TestVerifyTraceRejects(t *testing.T) {
	rec := func(stream, epoch uint64, fl block.Flags) block.DispatchRecord {
		return block.DispatchRecord{Op: block.OpWrite, Flags: fl, Epoch: epoch, Stream: stream}
	}
	cases := []struct {
		name  string
		trace []block.DispatchRecord
	}{
		{"inversion", []block.DispatchRecord{
			rec(0, 0, block.FlagOrdered|block.FlagBarrier),
			rec(0, 1, block.FlagOrdered),
			rec(0, 0, block.FlagOrdered),
		}},
		{"no-barrier", []block.DispatchRecord{
			rec(0, 0, block.FlagOrdered),
			rec(0, 1, block.FlagOrdered),
		}},
		{"ordered-after-barrier", []block.DispatchRecord{
			rec(0, 0, block.FlagOrdered|block.FlagBarrier),
			rec(0, 0, block.FlagOrdered),
		}},
		{"skipped-epoch", []block.DispatchRecord{
			rec(0, 0, block.FlagOrdered|block.FlagBarrier),
			rec(0, 2, block.FlagOrdered),
		}},
	}
	for _, c := range cases {
		if VerifyTrace(c.trace) == nil {
			t.Errorf("%s: verifier accepted a violating trace", c.name)
		}
	}
	// A good multi-stream trace passes, and orderless records are ignored.
	good := []block.DispatchRecord{
		rec(0, 0, block.FlagOrdered),
		rec(1, 0, block.FlagOrdered|block.FlagBarrier),
		rec(0, 0, 0), // orderless: free across epochs
		rec(0, 0, block.FlagOrdered|block.FlagBarrier),
		rec(1, 1, block.FlagOrdered),
		rec(0, 1, block.FlagOrdered),
	}
	if err := VerifyTrace(good); err != nil {
		t.Errorf("verifier rejected a valid trace: %v", err)
	}
}
