package blkmq

import (
	"fmt"

	"repro/internal/block"
)

// streamState tracks verification progress through one stream's epochs.
type streamState struct {
	epoch       uint64
	barrierSeen bool // the barrier closing the current epoch has dispatched
}

// VerifyTrace checks a dispatch trace against the per-stream epoch
// invariants of §3.3, applied within each stream independently:
//
//  1. ordered requests of epoch k+1 never dispatch before the barrier of
//     epoch k (the partial order between epochs is preserved);
//  2. the barrier is the last ordered request of its epoch — nothing
//     ordered from the same epoch follows it;
//  3. epochs advance one at a time, and only across a barrier.
//
// Orderless requests, reads and flushes are unconstrained (rule 3 of §3.3:
// they may be scheduled freely across epochs). Traces from the single-queue
// block.Layer verify too — they are the one-stream special case.
func VerifyTrace(trace []block.DispatchRecord) error {
	states := make(map[uint64]*streamState)
	for i, rec := range trace {
		if rec.Op != block.OpWrite {
			continue
		}
		if !rec.Flags.Has(block.FlagOrdered) && !rec.Flags.Has(block.FlagBarrier) {
			continue
		}
		s, ok := states[rec.Stream]
		if !ok {
			s = &streamState{}
			states[rec.Stream] = s
		}
		barrier := rec.Flags.Has(block.FlagBarrier)
		switch {
		case rec.Epoch == s.epoch:
			if s.barrierSeen {
				return fmt.Errorf("blkmq: record %d: stream %d dispatched an ordered request of epoch %d after that epoch's barrier", i, rec.Stream, rec.Epoch)
			}
			s.barrierSeen = barrier
		case rec.Epoch == s.epoch+1:
			if !s.barrierSeen {
				return fmt.Errorf("blkmq: record %d: stream %d advanced to epoch %d without dispatching the barrier of epoch %d", i, rec.Stream, rec.Epoch, s.epoch)
			}
			s.epoch = rec.Epoch
			s.barrierSeen = barrier
		case rec.Epoch < s.epoch:
			return fmt.Errorf("blkmq: record %d: stream %d cross-epoch inversion: epoch %d dispatched after epoch %d", i, rec.Stream, rec.Epoch, s.epoch)
		default:
			return fmt.Errorf("blkmq: record %d: stream %d skipped from epoch %d to %d", i, rec.Stream, s.epoch, rec.Epoch)
		}
	}
	return nil
}
