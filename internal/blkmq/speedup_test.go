package blkmq_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// TestMQSpeedupOverSingleQueue is acceptance criterion (b): independent
// streams on separate queues must beat the single-queue layer's IOPS
// measurably on the same device and workload. It lives in an external test
// package so it can share the experiments.MQPoint harness (the internal
// package cannot import experiments without a cycle through core).
func TestMQSpeedupOverSingleQueue(t *testing.T) {
	dur := 15 * sim.Millisecond
	if testing.Short() {
		dur = 8 * sim.Millisecond
	}
	single, _ := experiments.MQPoint(2, 0, dur)
	mq, _ := experiments.MQPoint(2, 2, dur)
	t.Logf("2 streams: single-queue %.0f IOPS, MQ %.0f IOPS (%.2fx)", single, mq, mq/single)
	if mq < single*1.2 {
		t.Errorf("2 streams: MQ %.0f IOPS not measurably above single-queue %.0f IOPS", mq, single)
	}
	single4, _ := experiments.MQPoint(4, 0, dur)
	mq4, _ := experiments.MQPoint(4, 4, dur)
	t.Logf("4 streams: single-queue %.0f IOPS, MQ %.0f IOPS (%.2fx)", single4, mq4, mq4/single4)
	if mq4 < single4*1.3 {
		t.Errorf("4 streams: MQ %.0f IOPS not measurably above single-queue %.0f IOPS", mq4, single4)
	}
}
