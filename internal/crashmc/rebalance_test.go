package crashmc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvcluster"
)

// The issue's acceptance criterion: crashing a source or the destination
// shard in any enumerated admissible crash state inside any migration
// phase must recover with zero acked-write loss, no key readable from
// neither owner, and ring-consistent placement — on both barrier engines.
func TestRebalanceScenarioBarrierEnginesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("rebalance model checking in -short mode")
	}
	cfg := Config{
		MaxStates: 2000,
		Samples:   64,
		Log:       func(f string, a ...any) { t.Logf(f, a...) },
	}
	for _, prof := range []func(device.Config) core.Profile{
		core.BFSDR, core.BFSMQ,
	} {
		res := RebalanceScenario(prof, 3, cfg)
		t.Log(res.String())
		if len(res.Points) != 2*len(RebalancePhases) {
			t.Fatalf("%s: expected %d crash points, got %d",
				res.Profile, 2*len(RebalancePhases), len(res.Points))
		}
		if !res.Ok() {
			for _, pt := range res.Points {
				for _, v := range pt.Violations {
					t.Errorf("%s phase=%v victim=%d [%s/%s] %s %s",
						res.Profile, pt.Phase, pt.Victim, v.Checker, v.Kind, v.State, v.Detail)
				}
			}
			t.Fatalf("%s rebalance: violations in admissible crash states", res.Profile)
		}
		if res.StatesExplored == 0 {
			t.Fatalf("%s rebalance: no states explored", res.Profile)
		}
		for _, pt := range res.Points {
			if pt.Phase == kvcluster.MigCatchUp && pt.Victim == 3 && pt.Volatile == 0 {
				t.Errorf("%s: destination crash in CatchUp captured no volatile writes — "+
					"the scenario is not exercising the dual-write window", res.Profile)
			}
		}
	}
}

// The coverage audit must actually bite: auditing with a fabricated acked
// key that no store holds must flag it in every image.
func TestRebalanceCheckerFlagsUncoveredKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("rebalance model checking in -short mode")
	}
	cfg := Config{MaxStates: 500, Samples: 16,
		Log: func(f string, a ...any) { t.Logf(f, a...) }}
	res, _ := rebalancePoint(core.BFSDR, 3, kvcluster.MigCatchUp, 3, cfg, "phantom-key")
	if res.Durability == 0 {
		t.Fatal("fabricated uncovered acked key produced no durability violations")
	}
}
