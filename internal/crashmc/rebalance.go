package crashmc

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvcluster"
	"repro/internal/kvwal"
	"repro/internal/sim"
)

// Rebalance crash checking: drive a replicated kvcluster into a live ring
// resize, crash one shard's device at an enumerated crash state *inside* a
// chosen migration phase (Copying, CatchUp, Cutover), and model-check every
// admissible image of the victim against the rebalancing contract:
//
//   - the victim's own store audit (durability of durably-acked writes,
//     per-key prefix ordering) — KVChecker semantics;
//   - ring placement: every key recovered on the victim must route to the
//     victim within the replica successor list of the old ring OR the
//     migration's target ring — anything else is a write persisted where no
//     reader (pre- or post-cutover) will ever look;
//   - coverage: every write the *cluster* acknowledged and did not later
//     delete must still be readable from some owner — live on a surviving
//     replica, or recovered live in the victim's image. A key readable from
//     neither owner is an acked-write loss.
//
// Unlike ClusterScenario, replication makes invariants span shards — but
// only one shard crashes, so the surviving shards' state is the host-side
// truth (their stores never lose anything) and the state space is still the
// victim's enumeration alone. The dual-write window is exactly what this
// audits: if CatchUp or Cutover wrote new-only, a key's sole copy would sit
// on the destination, and crashing the destination inside those phases
// would surface it as a coverage violation in some admissible image.

// RebalancePhases are the migration phases a RebalanceScenario crashes in.
var RebalancePhases = []kvcluster.MigrationState{
	kvcluster.MigCopying, kvcluster.MigCatchUp, kvcluster.MigCutover,
}

// RebalanceChecker audits one victim image against the rebalancing
// contract. It carries the host-side truth: the rings, the cluster-level
// acked history, and the surviving stores.
type RebalanceChecker struct {
	Old, New *kvcluster.Ring
	Replicas int
	Victim   int
	Store    *kvwal.Store    // the victim's store (for its own audit)
	Survivor []*kvwal.Store  // by shard; Survivor[Victim] is ignored
	Acked    map[string]bool // cluster-acked live keys (put, no later delete)
}

// Name implements Checker.
func (c *RebalanceChecker) Name() string { return "rebalance" }

// Check implements Checker.
func (c *RebalanceChecker) Check(st *State) []Violation {
	rec := c.Store.Recover(st.View)
	kv := &KVChecker{Store: c.Store}
	out := kv.CheckRecovered(rec)

	// Ring placement: recovered keys must belong to the victim under the
	// old or the target ring.
	keys := make([]string, 0, len(rec.Keys))
	for key := range rec.Keys {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if hasShard(c.Old.ShardsFor(key, c.Replicas), c.Victim) ||
			hasShard(c.New.ShardsFor(key, c.Replicas), c.Victim) {
			continue
		}
		out = append(out, Violation{Kind: KindConsistency,
			Detail: fmt.Sprintf("key %q recovered on shard %d but owned by it under neither ring (old=%v new=%v R=%d)",
				key, c.Victim, c.Old.ShardsFor(key, c.Replicas), c.New.ShardsFor(key, c.Replicas), c.Replicas)})
	}

	// Coverage: every cluster-acked live key must be readable from some
	// owner. Surviving stores never crashed, so Peek is their truth; the
	// victim contributes whatever this image recovered.
	acked := make([]string, 0, len(c.Acked))
	for key := range c.Acked {
		acked = append(acked, key)
	}
	sort.Strings(acked)
	for _, key := range acked {
		if e, ok := rec.Keys[key]; ok && !e.Del {
			continue
		}
		covered := false
		for s, st := range c.Survivor {
			if s == c.Victim || st == nil {
				continue
			}
			if _, ok := st.Peek(key); ok {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, Violation{Kind: KindDurability,
				Detail: fmt.Sprintf("acked key %q readable from no owner (victim image %s)",
					key, st.ID)})
		}
	}
	return out
}

func hasShard(owners []int, s int) bool {
	for _, o := range owners {
		if o == s {
			return true
		}
	}
	return false
}

// RebalanceResult is the outcome of a RebalanceScenario: one model-checking
// Result per (phase, victim) crash point plus totals.
type RebalanceResult struct {
	Profile string
	Shards  int
	Points  []RebalancePoint

	StatesExplored int
	ImagesChecked  int
	Durability     int
	Ordering       int
	Consistency    int
}

// RebalancePoint is one (phase, victim) crash point's result.
type RebalancePoint struct {
	Phase  kvcluster.MigrationState
	Victim int
	Result
}

// Ok reports whether no crash point violated any invariant in any
// admissible state.
func (r RebalanceResult) Ok() bool { return r.Durability+r.Ordering+r.Consistency == 0 }

func (r RebalanceResult) String() string {
	status := "OK: every admissible crash state recovers clean"
	if !r.Ok() {
		status = fmt.Sprintf("VIOLATIONS: %d durability / %d ordering / %d consistency",
			r.Durability, r.Ordering, r.Consistency)
	}
	return fmt.Sprintf("%s resize %d->%d: %d crash points, %d states / %d images — %s",
		r.Profile, r.Shards, r.Shards+1, len(r.Points), r.StatesExplored, r.ImagesChecked, status)
}

// RebalanceScenario grows an N-shard replicated cluster to N+1 under a
// deterministic write stream, and for every phase in RebalancePhases
// crashes each of {a source shard, the new destination shard} at the
// moment the migration first occupies that phase, model-checking the
// victim's admissible images with the RebalanceChecker plus the journal
// and fs invariants. Each crash point is an independent sim, so the
// enumeration per point stays the victim's own state space.
func RebalanceScenario(prof func(device.Config) core.Profile, shards int, cfg Config) RebalanceResult {
	cfg = cfg.withDefaults()
	var name string
	out := RebalanceResult{Shards: shards}
	for _, phase := range RebalancePhases {
		for _, victim := range []int{0, shards} { // a source and the new shard
			res, profName := rebalancePoint(prof, shards, phase, victim, cfg, "")
			name = profName
			out.Points = append(out.Points, RebalancePoint{Phase: phase, Victim: victim, Result: res})
			out.StatesExplored += res.StatesExplored
			out.ImagesChecked += res.ImagesChecked
			out.Durability += res.Durability
			out.Ordering += res.Ordering
			out.Consistency += res.Consistency
		}
	}
	out.Profile = name
	return out
}

// rebalancePoint runs one fresh cluster to the first instant the migration
// occupies phase with no client write in flight, crashes victim there, and
// model-checks it. phantom, if non-empty, is injected into the acked set
// without ever being written — a self-test that the coverage audit bites.
func rebalancePoint(prof func(device.Config) core.Profile, shards int,
	phase kvcluster.MigrationState, victim int, cfg Config, phantom string) (Result, string) {
	k := sim.NewKernel()
	defer k.Close()

	// Compact journal + tiny memtable + small chunks keep the victim's
	// volatile write set — and with it the enumerated state space — small
	// enough for exhaustive coverage.
	rc := kvcluster.ReplicaConfig{
		Shards:   shards,
		Replicas: 2,
		Profile: func(d device.Config) core.Profile {
			return CompactJournal(prof(d), 512)
		},
		Store: kvwal.Config{
			WALPages: 128, MemtableCap: 8, CompactFanIn: 3, CheckpointEvery: 4,
		},
		Migrate: kvcluster.MigrateConfig{
			ChunkKeys: 6, ChunkEvery: 120 * sim.Microsecond,
		},
	}
	profName := rc.Profile(device.PlainSSD()).Name

	var cl *kvcluster.Cluster
	var mig *kvcluster.Migration
	acked := make(map[string]bool)
	stop := false
	idle := true
	k.Spawn("reb/client", func(p *sim.Proc) {
		c, err := kvcluster.OpenCluster(p, rc)
		if err != nil {
			panic(err)
		}
		cl = c
		// Deterministic write stream: small Zipf-free keyspace so
		// overwrites and deletes collide across the migrating ranges.
		for n := 0; !stop; n++ {
			idle = false
			key := fmt.Sprintf("mk%03d", n%96)
			if n%7 == 3 {
				if err := c.DeleteT(p, 0, key); err == nil {
					delete(acked, key)
				}
			} else {
				if err := c.Put(p, key); err == nil {
					acked[key] = true
				}
			}
			idle = true
			p.Sleep(40 * sim.Microsecond)
		}
	})
	k.Spawn("reb/resize", func(p *sim.Proc) {
		for cl == nil {
			p.Sleep(50 * sim.Microsecond)
		}
		p.Sleep(800 * sim.Microsecond) // preload before the ring grows
		m, err := cl.Resize(p, shards+1)
		if err != nil {
			panic(err)
		}
		mig = m
	})

	// Step the sim in fine increments until the migration occupies the
	// target phase at an instant with no client write mid-commit (a write
	// wedged on the crashed victim would otherwise stall the audit).
	deadline := sim.Time(200 * sim.Millisecond)
	for k.Now() < deadline {
		k.RunUntil(k.Now() + sim.Time(2*sim.Microsecond))
		if mig != nil && idle && mig.InState(phase) {
			break
		}
		if mig != nil && mig.Done() {
			break
		}
	}
	if mig == nil || !mig.InState(phase) {
		panic(fmt.Sprintf("crashmc: rebalance: migration never reached %v (now %v)", phase, k.Now()))
	}
	stop = true
	if phantom != "" {
		acked[phantom] = true
	}
	// Snapshot the rings now: recoverBase's k.Run lets the migration finish,
	// which swaps the cluster ring to the target.
	oldRing, newRing := cl.Ring(), mig.Target()

	stack := cl.Stack(victim)
	cons := stack.Dev.CaptureConstraints()
	stack.Crash()
	base := recoverBase(k, stack)

	survivors := make([]*kvwal.Store, shards+1)
	for s := 0; s <= shards; s++ {
		if s != victim {
			survivors[s] = cl.Store(s)
		}
	}
	checkers := []Checker{
		&RebalanceChecker{
			Old: oldRing, New: newRing, Replicas: rc.Replicas,
			Victim: victim, Store: cl.Store(victim),
			Survivor: survivors, Acked: acked,
		},
		&JournalChecker{J: stack.FS.Journal()},
		&FSChecker{FS: stack.FS},
	}
	profile := rc.Profile(device.PlainSSD())
	res := ModelCheck(cons, base, profile.FS.Journal, checkers, cfg)
	res.Profile = profName
	res.CrashAt = k.Now()
	return res, profName
}
