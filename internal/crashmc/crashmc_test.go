package crashmc

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
)

// smallJournal is the canonical cheap-replay profile for the ordering
// scenario tests.
func smallJournal(p core.Profile) core.Profile { return CompactJournal(p, 128) }

func at(us int) sim.Time { return sim.Time(sim.Duration(us) * sim.Microsecond) }

func cfgAt(t *testing.T, us int, writes int) Config {
	return Config{
		CrashAt: at(us),
		Writes:  writes,
		Log:     func(f string, a ...any) { t.Logf(f, a...) },
	}
}

func requireClean(t *testing.T, res Result) {
	t.Helper()
	t.Log(res.String())
	if res.Capped {
		t.Fatalf("%s: enumeration capped; the canonical workload must be exhaustive", res.Profile)
	}
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("%s: [%s/%s] %s %s", res.Profile, v.Checker, v.Kind, v.State, v.Detail)
		}
		t.Fatalf("%s: %d durability / %d ordering / %d consistency violations in %d states",
			res.Profile, res.Durability, res.Ordering, res.Consistency, res.ViolationStates)
	}
}

func TestOrderingEXT4DRNoViolationInAnyState(t *testing.T) {
	// EXT4-DR's fdatabarrier degrades to transfer-and-flush: at most one
	// barrier-separated write is ever volatile, so the admissible state
	// space is tiny — and every state must audit clean.
	for _, us := range []int{1200, 2500, 6000} {
		res := OrderingScenario(smallJournal(core.EXT4DR(device.PlainSSD())), cfgAt(t, us, 0))
		requireClean(t, res)
	}
}

func TestOrderingBFSDRNoViolationInAnyState(t *testing.T) {
	// BarrierFS never flushes in this workload, so dozens of writes are
	// volatile at once — but every write closes an epoch, so the constraint
	// DAG is a chain and the admissible states are exactly its prefixes:
	// states = volatile + 1, *linear* where nobarrier is exponential.
	res := OrderingScenario(smallJournal(core.BFSDR(device.PlainSSD())), cfgAt(t, 2500, 0))
	requireClean(t, res)
	if res.Volatile == 0 {
		t.Fatal("BFS-DR: expected volatile writes at the crash instant")
	}
	if res.StatesExplored != res.Volatile+1 {
		t.Fatalf("BFS-DR: %d states for %d chained volatile writes, want %d (epoch-chain prefixes)",
			res.StatesExplored, res.Volatile, res.Volatile+1)
	}
}

func TestOrderingMQProfilesNoViolationInAnyState(t *testing.T) {
	for _, prof := range []core.Profile{
		core.EXT4MQ(device.PlainSSD()),
		core.BFSMQ(device.PlainSSD()),
	} {
		res := OrderingScenario(smallJournal(prof), cfgAt(t, 2500, 0))
		requireClean(t, res)
		if prof.Name == "BFS-MQ" && res.Volatile == 0 {
			// The clean verdict is only meaningful if the run exercised
			// volatile state.
			t.Fatal("BFS-MQ: expected volatile writes at the crash instant")
		}
	}
}

func TestNobarrierOrderingViolationReachable(t *testing.T) {
	// The paper's motivating result as a positive finding: EXT4 mounted
	// nobarrier on a legacy device admits crash states where a later
	// barrier-separated write persists while an earlier one is lost. The
	// bounded workload keeps the unconstrained state space exhaustively
	// enumerable: every admissible state is visited, no sampling.
	res := OrderingScenario(smallJournal(core.EXT4OD(device.LegacySSD())), cfgAt(t, 2500, 3))
	t.Log(res.String())
	if res.Capped {
		t.Fatal("EXT4-nobarrier canonical workload must enumerate exhaustively")
	}
	if res.StatesExplored != 1<<res.Volatile {
		t.Fatalf("unconstrained DAG: %d states for %d volatile writes, want 2^%d=%d",
			res.StatesExplored, res.Volatile, res.Volatile, 1<<res.Volatile)
	}
	if res.Ordering == 0 {
		t.Fatal("EXT4-nobarrier: expected at least one reachable ordering-violation state")
	}
	if res.Durability == 0 {
		t.Fatal("EXT4-nobarrier: expected durability violations (fsync acked at transfer)")
	}
}

func TestNobarrierDeterministic(t *testing.T) {
	cfg := Config{CrashAt: at(2500), Writes: 3, Log: func(string, ...any) {}}
	a := OrderingScenario(smallJournal(core.EXT4OD(device.LegacySSD())), cfg)
	b := OrderingScenario(smallJournal(core.EXT4OD(device.LegacySSD())), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("model checking is not deterministic across runs:\n%+v\nvs\n%+v", a, b)
	}
}

func TestCapFallsBackToSamplingWithNotice(t *testing.T) {
	logged := 0
	cfg := Config{
		CrashAt:   at(2500),
		MaxStates: 1000,
		Samples:   64,
		Log:       func(f string, a ...any) { logged++; t.Logf(f, a...) },
	}
	// Unbounded nobarrier workload: far beyond the cap.
	res := OrderingScenario(smallJournal(core.EXT4OD(device.LegacySSD())), cfg)
	t.Log(res.String())
	if !res.Capped {
		t.Fatal("expected the state cap to trip")
	}
	if logged == 0 {
		t.Fatal("cap tripped silently: Config.Log was not called")
	}
	if res.Sampled == 0 {
		t.Fatal("expected sampled cuts beyond the exhaustive prefix")
	}
	if res.Ok() {
		t.Fatal("nobarrier violations must still surface under the sampling fallback")
	}
}

func TestKVScenarioBarrierEnginesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("kv model checking in -short mode")
	}
	small := func(p core.Profile) core.Profile { return CompactJournal(p, 512) }
	cfg := Config{
		CrashAt:   at(20000),
		MaxStates: 2000,
		Samples:   64,
		Log:       func(f string, a ...any) { t.Logf(f, a...) },
	}
	res := KVScenario(small(core.BFSDR(device.PlainSSD())), 2, cfg)
	t.Log(res.String())
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("[%s/%s] %s %s", v.Checker, v.Kind, v.State, v.Detail)
		}
		t.Fatal("BFS-DR kv: violations in admissible crash states")
	}
	if res.Volatile == 0 {
		t.Fatal("BFS-DR kv: expected volatile writes at the crash instant")
	}

	cfg.CrashAt = at(60000)
	mq := KVScenario(small(core.BFSMQ(device.PlainSSD())), 2, cfg)
	t.Log(mq.String())
	if !mq.Ok() {
		t.Fatalf("BFS-MQ kv: %d violations", mq.Durability+mq.Ordering+mq.Consistency)
	}
	if mq.Streams < 2 {
		t.Fatalf("BFS-MQ kv: expected cross-stream volatile writes (spread writeback), got %d streams", mq.Streams)
	}
}
