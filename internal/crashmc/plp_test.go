package crashmc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
)

// PLP-failure model checking: the supercap dies mid-drain, so the cache
// persists only a transfer-order prefix. CaptureConstraints expresses that
// as a single chain over all streams — the admissible crash states are
// exactly the prefixes, nothing else — and the model checker audits every
// one of them.

func TestPLPPartialDrainConstraintIsChain(t *testing.T) {
	dev := PLPFailureDevice(device.SupercapSSD(), 11)
	// Lazy writeback keeps the workload's writes cache-resident, so the
	// captured chain is non-trivial.
	dev.EagerWriteback = false
	k := sim.NewKernel()
	defer k.Close()
	s := core.NewStack(k, smallJournal(core.BFSDR(dev)))
	SpawnOrderingWorkload(k, s, OrderingPages, 0)
	k.RunUntil(at(2500))
	cons := s.Dev.CaptureConstraints()
	if !cons.PLPPartial || cons.PLP {
		t.Fatalf("want PLPPartial constraint, got PLP=%v PLPPartial=%v", cons.PLP, cons.PLPPartial)
	}
	if len(cons.Writes) == 0 {
		t.Fatal("no volatile writes captured at the crash instant")
	}
	if len(cons.Preds[0]) != 0 {
		t.Fatalf("chain head has predecessors: %v", cons.Preds[0])
	}
	for i := 1; i < len(cons.Writes); i++ {
		if cons.Writes[i].Seq <= cons.Writes[i-1].Seq {
			t.Fatalf("writes not in transfer order at %d", i)
		}
		if len(cons.Preds[i]) != 1 || cons.Preds[i][0] != i-1 {
			t.Fatalf("Preds[%d] = %v, want [%d]: partial drain must be a chain", i, cons.Preds[i], i-1)
		}
	}
}

func TestPLPPartialDrainProtectedStacksClean(t *testing.T) {
	// The protected stacks drain the cache eagerly and in transfer order,
	// so once the drain window passes every acknowledged write has left the
	// cache: no drain prefix — however short — can lose acked data or break
	// ordering. Dozens of writes are still volatile (the recent tail), so
	// the clean verdict covers a real state space, not an empty one.
	for _, mk := range []func(device.Config) core.Profile{core.BFSDR, core.EXT4DR} {
		res := OrderingScenario(smallJournal(mk(PLPFailureDevice(device.SupercapSSD(), 11))),
			cfgAt(t, 2500, 0))
		requireClean(t, res)
		if res.StatesExplored < 2 {
			t.Fatalf("%s: trivial state space: %s", res.Profile, res.String())
		}
	}
	// Even inside the drain window — acked pages still programming when the
	// supercap dies — the barrier stack's *ordering* contract survives every
	// prefix: the drain follows transfer order, and the stack transfers in
	// issue order. Only PLP-backed durability is exposed.
	early := OrderingScenario(smallJournal(core.BFSDR(PLPFailureDevice(device.SupercapSSD(), 11))),
		cfgAt(t, 300, 0))
	t.Log(early.String())
	if early.Ordering != 0 || early.Consistency != 0 {
		t.Fatalf("BFS-DR mid-drain: ordering/consistency must survive every prefix: %s", early.String())
	}
}

func TestPLPPartialDrainNobarrierLosesAckedData(t *testing.T) {
	// A nobarrier mount on a lazy-batching supercap device trusts PLP for
	// everything: fsync acknowledges at transfer, so when the supercap dies
	// while the acknowledged preallocation is still cache-resident, short
	// drain prefixes lose acked data — the audit must surface durability
	// violations (and, prefix drains being ordered, nothing else).
	dev := PLPFailureDevice(device.SupercapSSD(), 11)
	dev.Name = "supercap-lazy"
	dev.EagerWriteback = false
	res := OrderingScenario(smallJournal(core.EXT4OD(dev)), cfgAt(t, 300, 6))
	t.Log(res.String())
	if res.Capped {
		t.Fatal("partial-drain chain must enumerate exhaustively")
	}
	if res.Durability == 0 {
		t.Fatalf("dying supercap on a nobarrier stack hid acked-data loss: %s", res.String())
	}
	if res.Ordering != 0 {
		t.Fatalf("prefix drains are ordered; unexpected ordering violations: %s", res.String())
	}
}
