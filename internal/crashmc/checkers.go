package crashmc

import (
	"fmt"
	"sort"

	"repro/internal/fs"
	"repro/internal/jbd"
	"repro/internal/kvwal"
)

// The stock checkers. DurabilityChecker and OrderingChecker are the
// crashtest trial audits re-expressed against the Checker interface: the
// sampled trials and the model checker now run the identical invariant
// logic, so a crashmc pass is the exhaustive form of the same statement a
// crashtest sweep makes pointwise.

// AckedWrite is one page write acknowledged durable (fsync returned) in
// the workload's history.
type AckedWrite struct {
	Idx int64 // page index
	Ver int64 // content version acknowledged
}

// DurabilityChecker audits the fsync contract: every acknowledged write
// must be reflected in the recovered image at least as new as acknowledged.
type DurabilityChecker struct {
	FS     *fs.FS
	File   string
	Synced []AckedWrite
}

// Name implements Checker.
func (c *DurabilityChecker) Name() string { return "durability" }

// Check implements Checker.
func (c *DurabilityChecker) Check(st *State) []Violation {
	if len(c.Synced) == 0 {
		return nil
	}
	root, ok := st.View.Root(c.FS)
	if !ok {
		return []Violation{{Kind: KindDurability, Detail: "root directory unrecoverable"}}
	}
	meta, ok := st.View.Lookup(root, c.File)
	if !ok {
		return []Violation{{Kind: KindDurability,
			Detail: fmt.Sprintf("file lost despite %d fsyncs", len(c.Synced))}}
	}
	var out []Violation
	for _, a := range c.Synced {
		got, ok := st.View.PageVersion(meta, a.Idx)
		if !ok || got < a.Ver {
			out = append(out, Violation{Kind: KindDurability,
				Detail: fmt.Sprintf("page %d: fsynced v%d, recovered v%d (present=%v)", a.Idx, a.Ver, got, ok)})
		}
	}
	return out
}

// IssuedWrite is one barrier-separated write in issue order.
type IssuedWrite struct {
	Page int64
	Ver  int64
}

// OrderingChecker audits the barrier contract over the §4.1 codelet: the
// recovered image must correspond to a *prefix* of the barrier-separated
// write sequence — if a later write survived, every earlier write's page
// must be at least as new as its last write at or before that point.
type OrderingChecker struct {
	FS     *fs.FS
	File   string
	Pages  int64 // file pages; page 0 is the untouched anchor
	Issued []IssuedWrite
}

// Name implements Checker.
func (c *OrderingChecker) Name() string { return "ordering" }

// Check implements Checker.
func (c *OrderingChecker) Check(st *State) []Violation {
	root, ok := st.View.Root(c.FS)
	if !ok {
		return nil // nothing durable at all: trivially ordered
	}
	meta, ok := st.View.Lookup(root, c.File)
	if !ok {
		return nil
	}
	// Map each page's recovered version to its index in the issue sequence.
	verToIdx := make(map[int64]int, len(c.Issued))
	for i, w := range c.Issued {
		verToIdx[w.Ver] = i
	}
	recovered := make(map[int64]int64) // page -> version
	cut := -1                          // newest surviving write's issue index
	for i := int64(1); i < c.Pages; i++ {
		ver, ok := st.View.PageVersion(meta, i)
		if !ok {
			continue
		}
		recovered[i] = ver
		if idx, ok := verToIdx[ver]; ok && idx > cut {
			cut = idx
		}
	}
	if cut < 0 {
		return nil // only the preallocation image survived
	}
	lastBefore := make(map[int64]int64)
	for i := 0; i <= cut; i++ {
		lastBefore[c.Issued[i].Page] = c.Issued[i].Ver
	}
	var out []Violation
	for page := int64(1); page < c.Pages; page++ {
		want, checked := lastBefore[page]
		if !checked {
			continue
		}
		got, ok := recovered[page]
		if !ok || got < want {
			out = append(out, Violation{Kind: KindOrdering,
				Detail: fmt.Sprintf("write #%d (page %d v%d) durable, but page %d recovered v%d/%v < barrier-ordered v%d",
					cut, c.Issued[cut].Page, c.Issued[cut].Ver, page, got, ok, want)})
		}
	}
	return out
}

// JournalChecker audits journal-replay reach: recovery must replay every
// transaction a durability wait acknowledged before the crash. Under
// barrier mounts the ack implies the transaction is physically durable and
// the check can never fire; under nobarrier mounts the ack is issued at
// transfer, and crash states where any of the transaction's blocks were
// lost expose the false ack.
type JournalChecker struct {
	J *jbd.Journal
}

// Name implements Checker.
func (c *JournalChecker) Name() string { return "journal" }

// Check implements Checker.
func (c *JournalChecker) Check(st *State) []Violation {
	acked := c.J.AckedDurable()
	if acked == 0 {
		return nil
	}
	rec := st.View.Journal()
	last := rec.TailTxn - 1 // checkpointed ids count as replayed
	if n := len(rec.Applied); n > 0 {
		last = rec.Applied[n-1]
	}
	if last >= acked {
		return nil
	}
	return []Violation{{Kind: KindDurability,
		Detail: fmt.Sprintf("journal txn %d acknowledged durable but replay reaches only txn %d (tail %d, %d incomplete)",
			acked, last, rec.TailTxn, rec.Incomplete)}}
}

// FSChecker audits metadata self-consistency of the recovered image: the
// recovered root must be a directory and every directory entry must
// resolve to recoverable inode metadata. Journal atomicity makes these
// hold on a correct stack in every admissible state; a failure means a
// transaction tore.
type FSChecker struct {
	FS *fs.FS
}

// Name implements Checker.
func (c *FSChecker) Name() string { return "fs" }

// Check implements Checker.
func (c *FSChecker) Check(st *State) []Violation {
	root, ok := st.View.Root(c.FS)
	if !ok {
		return nil // nothing recovered: trivially consistent
	}
	var out []Violation
	if !root.Dir {
		out = append(out, Violation{Kind: KindConsistency,
			Detail: "recovered root is not a directory"})
	}
	names := make([]string, 0, len(root.Entries))
	for name := range root.Entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := st.View.Lookup(root, name); !ok {
			out = append(out, Violation{Kind: KindConsistency,
				Detail: fmt.Sprintf("dir entry %q resolves to no recoverable inode metadata", name)})
		}
	}
	return out
}

// KVChecker audits the kvwal application contract via the store's own
// recovery and audit (internal/kvwal/recovery.go): acknowledged-durable
// mutations must survive, and on barrier engines the surviving WAL records
// must form a group-granularity prefix of the committed history.
type KVChecker struct {
	Store *kvwal.Store
}

// Name implements Checker.
func (c *KVChecker) Name() string { return "kvwal" }

// Check implements Checker.
func (c *KVChecker) Check(st *State) []Violation {
	return c.CheckRecovered(c.Store.Recover(st.View))
}

// CheckRecovered audits an already-reconstructed store image. Callers that
// need the Recovered value themselves (crashtest.KVTrial reports
// WALApplied) use this to avoid running the recovery scan twice.
func (c *KVChecker) CheckRecovered(rec kvwal.Recovered) []Violation {
	durability, ordering := c.Store.Audit(rec)
	out := make([]Violation, 0, len(durability)+len(ordering))
	for _, d := range durability {
		out = append(out, Violation{Kind: KindDurability, Detail: d})
	}
	for _, o := range ordering {
		out = append(out, Violation{Kind: KindOrdering, Detail: o})
	}
	return out
}
