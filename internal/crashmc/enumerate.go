package crashmc

import (
	"fmt"
	"math/rand"
	"strings"
)

// Enumeration of the admissible persisted sets: the downward-closed
// subsets (order ideals) of the captured constraint DAG. A subset S is
// admissible iff for every write in S all of its predecessors are in S.
// The walk starts from the empty set and grows one eligible write at a
// time; subset-hash dedup keeps it linear in the number of distinct
// ideals rather than the number of paths to them.

// bitset is a fixed-width subset of write indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) set(i int) { b[i/64] |= 1 << uint(i%64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// key returns the subset-hash map key.
func (b bitset) key() string {
	buf := make([]byte, 8*len(b))
	for i, w := range b {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(w >> uint(8*j))
		}
	}
	return string(buf)
}

// id renders the subset as a compact hex bitmask (index 0 = least
// significant bit) for violation reports. The empty cut is the recovered
// durable base with nothing overlaid.
func (b bitset) id() string {
	empty := true
	for _, w := range b {
		if w != 0 {
			empty = false
			break
		}
	}
	if empty {
		return "base"
	}
	hex := make([]byte, 0, 16*len(b))
	for i := len(b) - 1; i >= 0; i-- {
		hex = fmt.Appendf(hex, "%016x", b[i])
	}
	return "cut:" + strings.TrimLeft(string(hex), "0")
}

// predsIn reports whether every predecessor of i is already in the cut.
func predsIn(cut bitset, preds []int) bool {
	for _, p := range preds {
		if !cut.has(p) {
			return false
		}
	}
	return true
}

// enumerate visits distinct downward-closed cuts depth-first, starting at
// the empty cut, until the ideal lattice is exhausted or maxStates
// distinct cuts have been generated (capped=true). It returns the set of
// visited subset keys so the sampling fallback can dedup against it. The
// walk order is deterministic: successors are generated in ascending write
// index.
func enumerate(n int, preds [][]int, maxStates int, visit func(bitset)) (seen map[string]struct{}, capped bool) {
	empty := newBitset(n)
	seen = map[string]struct{}{empty.key(): {}}
	stack := []bitset{empty}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(cur)
		for i := n - 1; i >= 0; i-- {
			if cur.has(i) || !predsIn(cur, preds[i]) {
				continue
			}
			child := cur.clone()
			child.set(i)
			k := child.key()
			if _, dup := seen[k]; dup {
				continue
			}
			if len(seen) >= maxStates {
				capped = true
				continue
			}
			seen[k] = struct{}{}
			stack = append(stack, child)
		}
	}
	return seen, capped
}

// sample probes random downward-closed cuts with a deterministic seeded
// generator, deduping against the already-visited set, and returns how
// many new cuts it reached. The first probe is always the full closure
// (everything persisted); the rest grow a random ideal to a random target
// size by repeatedly adding a uniformly chosen eligible write.
func sample(n int, preds [][]int, samples int, seed int64, seen map[string]struct{}, visit func(bitset)) int {
	rng := rand.New(rand.NewSource(seed ^ 0x6d63)) // "mc"
	emit := func(cut bitset) bool {
		k := cut.key()
		if _, dup := seen[k]; dup {
			return false
		}
		seen[k] = struct{}{}
		visit(cut)
		return true
	}
	reached := 0
	full := newBitset(n)
	for i := 0; i < n; i++ {
		full.set(i) // every index eventually eligible: preds precede in the DAG
	}
	if emit(full) {
		reached++
	}
	var addable []int
	for s := 1; s < samples; s++ {
		cut := newBitset(n)
		target := rng.Intn(n + 1)
		for size := 0; size < target; size++ {
			addable = addable[:0]
			for i := 0; i < n; i++ {
				if !cut.has(i) && predsIn(cut, preds[i]) {
					addable = append(addable, i)
				}
			}
			if len(addable) == 0 {
				break
			}
			cut.set(addable[rng.Intn(len(addable))])
		}
		if emit(cut) {
			reached++
		}
	}
	return reached
}
