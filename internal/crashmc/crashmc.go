// Package crashmc is a systematic crash-state model checker for the
// order-preserving IO stack. Where internal/crashtest samples crash
// instants and audits the single persisted state the simulator happens to
// produce, crashmc fixes one crash instant and reasons about *every*
// persisted state the device's semantics admit there:
//
//  1. internal/device's CaptureConstraints records the volatile
//     writeback-cache contents plus the partial persistence order the
//     device contract imposes on them — per-stream epoch chains on barrier
//     devices (FUA and flush ordering fold into the durable base: a
//     completed FUA or flushed write is durable by definition), nothing at
//     all on legacy devices, a single full state under power-loss
//     protection.
//  2. The enumerator walks every downward-closed cut of that constraint
//     DAG (subset-hash dedup; image-level pruning collapses cuts that
//     materialize the same disk image). Above a configurable state cap it
//     falls back to deterministic seeded sampling and says so via
//     Config.Log — never silently.
//  3. Each candidate image is materialized as a read overlay on the
//     recovered durable base, a filesystem view is rebuilt over it
//     (journal replay included), and pluggable Checkers audit the
//     invariants: fsync durability, barrier ordering, journal-replay
//     reach, fs metadata consistency, kvwal's durability/prefix audit.
//
// The payoff is the quantifier. crashtest concludes "we did not observe a
// violation"; crashmc concludes "no admissible crash state violates the
// invariant" — and on EXT4-nobarrier it reproduces the paper's motivating
// result as a positive finding: ordering-violation states are reachable.
package crashmc

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"

	"repro/internal/device"
	"repro/internal/fs"
	"repro/internal/jbd"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// State is one candidate post-crash disk image under audit.
type State struct {
	// Read returns the durable contents of an LPA in this state. May be
	// nil when the caller audits an already-materialized view (the sampled
	// crashtest trials).
	Read jbd.ReadFn
	// View is the filesystem recovered over Read (journal replay overlaid
	// on in-place state).
	View *fs.View
	// ID compactly identifies the persisted volatile-write subset (hex
	// bitmask of write indices; "sampled" for crashtest's single state).
	ID string
}

// Violation is one invariant breach found in a candidate crash state.
type Violation struct {
	Checker string
	Kind    string // "durability", "ordering" or "consistency"
	State   string // State.ID of the image that exhibited it
	Detail  string
}

// Violation kinds.
const (
	KindDurability  = "durability"
	KindOrdering    = "ordering"
	KindConsistency = "consistency"
)

// Checker audits one candidate crash state. Implementations carry the
// host-side history (acknowledged writes, issue order, store shadows) they
// audit against; Check must be read-only and safe to call for many states.
type Checker interface {
	Name() string
	Check(st *State) []Violation
}

// Config tunes a model-checking run.
type Config struct {
	// CrashAt is the virtual crash instant (scenario harnesses).
	CrashAt sim.Time
	// Writes bounds the scenario workload's barrier-separated writes
	// (0 = keep writing until the crash). Bounding the workload keeps the
	// unconstrained (nobarrier) state space exhaustively enumerable.
	Writes int
	// MaxStates caps exhaustive enumeration; above it the checker falls
	// back to sampling. Default 1<<16.
	MaxStates int
	// Samples is the number of seeded random cuts probed after the cap is
	// hit. Default 512.
	Samples int
	// Seed drives the sampling fallback (deterministic across runs).
	Seed int64
	// Log receives the capped-state-space notice. Default log.Printf.
	Log func(format string, args ...any)
	// MaxViolationDetails bounds the retained Violation records (counts
	// are always exact). Default 64.
	MaxViolationDetails int
}

func (c Config) withDefaults() Config {
	if c.MaxStates == 0 {
		c.MaxStates = 1 << 16
	}
	if c.Samples == 0 {
		c.Samples = 512
	}
	if c.Log == nil {
		c.Log = log.Printf
	}
	if c.MaxViolationDetails == 0 {
		c.MaxViolationDetails = 64
	}
	return c
}

// Result is the outcome of model-checking one crash instant.
type Result struct {
	Profile string
	CrashAt sim.Time

	Volatile int // volatile writes captured at the crash instant
	Streams  int // distinct streams among them

	StatesExplored int  // distinct downward-closed cuts visited
	ImagesChecked  int  // distinct disk images audited (after pruning)
	Capped         bool // exhaustive enumeration hit MaxStates
	Sampled        int  // additional cuts reached by the sampling fallback

	Durability      int // violation counts by kind, across all images
	Ordering        int
	Consistency     int
	ViolationStates int         // images exhibiting at least one violation
	Violations      []Violation // first MaxViolationDetails records
}

// Ok reports whether no state violated any invariant.
func (r Result) Ok() bool { return r.Durability+r.Ordering+r.Consistency == 0 }

func (r Result) String() string {
	mode := "exhaustive"
	if r.Capped {
		mode = fmt.Sprintf("capped+%d sampled", r.Sampled)
	}
	status := "OK: no admissible crash state violates the invariants"
	if !r.Ok() {
		status = fmt.Sprintf("VIOLATIONS: %d durability / %d ordering / %d consistency in %d states",
			r.Durability, r.Ordering, r.Consistency, r.ViolationStates)
	}
	return fmt.Sprintf("%s crash@%v: %d volatile writes (%d streams), %d states / %d images (%s) — %s",
		r.Profile, r.CrashAt, r.Volatile, r.Streams, r.StatesExplored, r.ImagesChecked, mode, status)
}

// ModelCheck enumerates the admissible crash states of a captured
// constraint, materializes each distinct disk image over the durable base,
// and runs every checker against it. base is the recovered device's
// durable read function (device.Recover + DurableData); jcfg locates the
// journal for the per-image replay.
func ModelCheck(cons device.Constraint, base jbd.ReadFn, jcfg jbd.Config, checkers []Checker, cfg Config) Result {
	cfg = cfg.withDefaults()
	// Live-stats progress: a long crashmc sweep reports its enumeration
	// through the process-wide registry (nil-safe when none is installed).
	reg := metrics.Resolve(nil)
	obsStates := reg.Counter("crashmc/states")
	obsImages := reg.Counter("crashmc/images")
	res := Result{Volatile: len(cons.Writes)}
	streams := make(map[uint64]struct{})
	for _, w := range cons.Writes {
		streams[w.Stream] = struct{}{}
	}
	res.Streams = len(streams)

	n := len(cons.Writes)
	images := make(map[string]struct{})
	check := func(cut bitset) {
		obsStates.Inc()
		// The disk image is determined by the newest persisted write per
		// LPA; cuts with identical winner sets materialize identically and
		// are pruned.
		winners := make(map[uint64]int)
		for i := 0; i < n; i++ {
			if !cut.has(i) {
				continue
			}
			w := cons.Writes[i]
			if j, ok := winners[w.LPA]; !ok || cons.Writes[j].Seq < w.Seq {
				winners[w.LPA] = i
			}
		}
		sig := make([]int, 0, len(winners))
		for _, i := range winners {
			sig = append(sig, i)
		}
		sort.Ints(sig)
		var key []byte
		for _, i := range sig {
			key = binary.AppendUvarint(key, uint64(i))
		}
		if _, dup := images[string(key)]; dup {
			return
		}
		images[string(key)] = struct{}{}
		obsImages.Inc()

		overlay := make(map[uint64]any, len(winners))
		for lpa, i := range winners {
			overlay[lpa] = cons.Writes[i].Data
		}
		read := func(lpa uint64) (any, bool) {
			if d, ok := overlay[lpa]; ok {
				return d, true
			}
			return base(lpa)
		}
		st := &State{Read: read, View: fs.Recover(read, jcfg), ID: cut.id()}
		bad := false
		for _, c := range checkers {
			for _, v := range c.Check(st) {
				v.Checker = c.Name()
				v.State = st.ID
				bad = true
				switch v.Kind {
				case KindOrdering:
					res.Ordering++
				case KindConsistency:
					res.Consistency++
				default:
					res.Durability++
				}
				if len(res.Violations) < cfg.MaxViolationDetails {
					res.Violations = append(res.Violations, v)
				}
			}
		}
		if bad {
			res.ViolationStates++
		}
	}

	seen, capped := enumerate(n, cons.Preds, cfg.MaxStates, check)
	res.Capped = capped
	if capped {
		cfg.Log("crashmc: state space exceeds the %d-state cap (%d volatile writes); probing %d sampled cuts (seed %d)",
			cfg.MaxStates, n, cfg.Samples, cfg.Seed)
		res.Sampled = sample(n, cons.Preds, cfg.Samples, cfg.Seed, seen, check)
	}
	res.StatesExplored = len(seen)
	res.ImagesChecked = len(images)
	return res
}
