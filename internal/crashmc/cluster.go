package crashmc

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/kvcluster"
	"repro/internal/kvwal"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Cluster crash checking: kill M of N kvcluster shards at an enumerated
// crash state each, recover, and audit the routed keyspace for durability
// and per-key prefix ordering.
//
// kvcluster routing is replication-free: every key lives on exactly one
// shard, so no invariant spans two shards and the cluster's crash-state
// space factorizes — the product of per-shard admissible states never
// couples through any checked predicate. Checking each killed shard's
// enumeration independently therefore covers every cluster crash state
// (sum of per-shard state counts, not their product), which is what keeps
// killing M shards tractable.

// ClusterChecker audits one killed shard's recovered image against the
// cluster contract: the store's own durability/prefix-ordering audit
// (KVChecker), plus routing — every recovered key must consistent-hash to
// this shard, or a write was persisted somewhere reads will never look.
type ClusterChecker struct {
	Ring  *kvcluster.Ring
	Shard int
	Store *kvwal.Store
}

// Name implements Checker.
func (c *ClusterChecker) Name() string { return "kvcluster" }

// Check implements Checker.
func (c *ClusterChecker) Check(st *State) []Violation {
	rec := c.Store.Recover(st.View)
	kv := &KVChecker{Store: c.Store}
	out := kv.CheckRecovered(rec)
	keys := make([]string, 0, len(rec.Keys))
	for key := range rec.Keys {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if home := c.Ring.Shard(key); home != c.Shard {
			out = append(out, Violation{Kind: KindConsistency,
				Detail: fmt.Sprintf("key %q recovered on shard %d but routes to shard %d",
					key, c.Shard, home)})
		}
	}
	return out
}

// ClusterResult is the outcome of a ClusterScenario: one model-checking
// Result per killed shard plus cluster-wide violation totals.
type ClusterResult struct {
	Profile  string
	Shards   int
	Killed   int
	PerShard []Result

	StatesExplored int
	ImagesChecked  int
	Durability     int
	Ordering       int
	Consistency    int
}

// Ok reports whether no killed shard violated any invariant in any
// admissible crash state.
func (r ClusterResult) Ok() bool { return r.Durability+r.Ordering+r.Consistency == 0 }

func (r ClusterResult) String() string {
	status := "OK: every admissible crash state recovers clean"
	if !r.Ok() {
		status = fmt.Sprintf("VIOLATIONS: %d durability / %d ordering / %d consistency",
			r.Durability, r.Ordering, r.Consistency)
	}
	return fmt.Sprintf("%s cluster %d/%d shards killed: %d states / %d images — %s",
		r.Profile, r.Killed, r.Shards, r.StatesExplored, r.ImagesChecked, status)
}

// clusterTraffic is the deterministic routed request stream the scenario
// replays: Zipfian keys over a small space so overwrites and deletes
// collide, a write-heavy mix, enough volume to cycle until any crash
// instant.
func clusterTraffic(shards int) (*kvcluster.Ring, [][]kvcluster.Request) {
	ring := kvcluster.NewRing(shards, 64)
	tr := kvcluster.Traffic{
		Arrivals:  workload.ArrivalConfig{RatePerS: 200_000, Seed: 23},
		Mix:       workload.Mix{ReadPct: 10, DeletePct: 15},
		KeySpace:  512,
		ZipfTheta: 0.9,
		Duration:  50 * sim.Millisecond,
	}
	return ring, kvcluster.Partition(tr.Generate(), ring)
}

// ClusterScenario builds an N-shard kvcluster (ShardedStacks shape: one
// stack per shard), drives each of the first `kill` shards with its routed
// slice of the cluster traffic to the crash instant, crashes it, and
// model-checks every admissible crash state with the ClusterChecker plus
// the journal and fs invariants. Surviving shards never crash, so they
// have nothing to enumerate (see the factorization note above).
func ClusterScenario(prof core.Profile, shards, kill int, cfg Config) ClusterResult {
	cfg = cfg.withDefaults()
	if kill > shards {
		kill = shards
	}
	ring, parts := clusterTraffic(shards)
	out := ClusterResult{Profile: prof.Name, Shards: shards, Killed: kill}
	for i := 0; i < kill; i++ {
		res := clusterShardCheck(prof, ring, i, parts[i], cfg)
		out.PerShard = append(out.PerShard, res)
		out.StatesExplored += res.StatesExplored
		out.ImagesChecked += res.ImagesChecked
		out.Durability += res.Durability
		out.Ordering += res.Ordering
		out.Consistency += res.Consistency
	}
	return out
}

// clusterShardCheck crashes one shard mid-replay and model-checks it.
func clusterShardCheck(prof core.Profile, ring *kvcluster.Ring, shard int,
	reqs []kvcluster.Request, cfg Config) Result {
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	var st *kvwal.Store
	k.Spawn("kvc/setup", func(p *sim.Proc) {
		scfg := kvwal.Config{WALPages: 128, MemtableCap: 32, CompactFanIn: 3, CheckpointEvery: 8}
		opened, err := kvwal.Open(p, s, scfg)
		if err != nil {
			panic(err)
		}
		st = opened
	})
	k.Spawn("kvc/client", func(p *sim.Proc) {
		for st == nil {
			p.Sleep(sim.Millisecond)
		}
		if len(reqs) == 0 {
			for {
				p.Suspend()
			}
		}
		// Closed-loop replay of the shard's routed slice, cycling so the
		// stream outlasts any crash instant.
		var batch []kvwal.Op
		for n := 0; ; n++ {
			r := reqs[n%len(reqs)]
			switch r.Class {
			case workload.ClassGet:
				st.Get(p, r.Key)
			case workload.ClassDelete:
				batch = append(batch, kvwal.Op{Kind: kvwal.Delete, Key: r.Key})
			default:
				batch = append(batch, kvwal.Op{Kind: kvwal.Put, Key: r.Key})
			}
			if len(batch) >= 3 {
				st.Apply(p, batch)
				batch = nil
			}
		}
	})
	k.RunUntil(cfg.CrashAt)
	cons := s.Dev.CaptureConstraints()
	s.Crash()
	if st == nil {
		// Crash inside Open: nothing acknowledged, trivially consistent.
		k.Close()
		return Result{Profile: prof.Name, CrashAt: cfg.CrashAt}
	}
	base := recoverBase(k, s)
	defer k.Close()

	checkers := []Checker{
		&ClusterChecker{Ring: ring, Shard: shard, Store: st},
		&JournalChecker{J: s.FS.Journal()},
		&FSChecker{FS: s.FS},
	}
	res := ModelCheck(cons, base, prof.FS.Journal, checkers, cfg)
	res.Profile = prof.Name
	res.CrashAt = cfg.CrashAt
	return res
}
