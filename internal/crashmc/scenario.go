package crashmc

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/jbd"
	"repro/internal/kvwal"
	"repro/internal/sim"
)

// Scenario harnesses: drive a workload on a live stack to the crash
// instant, capture the device's persistence constraints, recover the
// durable base, and model-check every admissible crash state.
//
// Callers that need exhaustive enumeration on unconstrained (nobarrier)
// profiles should bound the workload (Config.Writes) and shrink the
// journal window in the profile (jbd scan cost is paid once per candidate
// image).

// OrderingPages is the file size (in pages) of the ordering scenario;
// page 0 is left untouched as a recovery anchor.
const OrderingPages = 4

// CompactJournal shrinks a profile's journal window to pages slots (with
// a proportional checkpoint low-water mark). Every candidate image pays
// one full journal-window scan during replay, so model-checking workloads
// want the window sized to the workload rather than the 8192-page
// default. The canonical ordering scenarios use 128; kv workloads need a
// few hundred.
func CompactJournal(prof core.Profile, pages int) core.Profile {
	prof.FS.Journal.Pages = pages
	prof.FS.Journal.CheckpointLow = pages / 16
	return prof
}

// OrderingWorkload is a handle on the §4.1 barrier-ordering codelet. The
// same driver backs crashmc.OrderingScenario and crashtest.OrderingTrial,
// so the sampled trials and the model checker audit the identical
// workload history.
type OrderingWorkload struct {
	File string
	// Pages is the file size; page 0 is an untouched recovery anchor.
	Pages int64
	// Synced records the page versions acknowledged by the preallocation
	// fsync; Issued records the barrier-separated overwrites in order.
	Synced []AckedWrite
	Issued []IssuedWrite
}

// SpawnOrderingWorkload starts the §4.1 codelet on a live stack:
// preallocate pages 0..pages-1 of a file, fsync (recording acknowledged
// versions), then overwrite pages 1..pages-1 round-robin with an
// fdatabarrier between consecutive writes, recording issue order. writes
// bounds the overwrites (0 = keep writing until the crash); bounding
// keeps an unconstrained (nobarrier) state space exhaustively enumerable.
func SpawnOrderingWorkload(k *sim.Kernel, s *core.Stack, pages int64, writes int) *OrderingWorkload {
	w := &OrderingWorkload{File: "ordered.dat", Pages: pages}
	k.Spawn("writer", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), w.File)
		if err != nil {
			panic(err)
		}
		for i := int64(0); i < pages; i++ {
			s.FS.Write(p, f, i)
		}
		s.FS.Fsync(p, f)
		for i := int64(0); i < pages; i++ {
			ver, _ := s.FS.Read(p, f, i)
			w.Synced = append(w.Synced, AckedWrite{Idx: i, Ver: ver})
		}
		for n := int64(0); ; n++ {
			if writes > 0 && n == int64(writes) {
				for {
					p.Suspend() // workload bounded: idle until the crash
				}
			}
			idx := 1 + n%(pages-1)
			s.FS.Write(p, f, idx)
			ver, _ := s.FS.Read(p, f, idx)
			w.Issued = append(w.Issued, IssuedWrite{Page: idx, Ver: ver})
			s.FS.Fdatabarrier(p, f)
		}
	})
	return w
}

// Checkers returns the workload's invariant auditors: fsync durability of
// the preallocation, barrier ordering of the overwrites, journal-replay
// reach and fs metadata consistency.
func (w *OrderingWorkload) Checkers(s *core.Stack) []Checker {
	return []Checker{
		&DurabilityChecker{FS: s.FS, File: w.File, Synced: w.Synced},
		&OrderingChecker{FS: s.FS, File: w.File, Pages: w.Pages, Issued: w.Issued},
		&JournalChecker{J: s.FS.Journal()},
		&FSChecker{FS: s.FS},
	}
}

// OrderingScenario is the §4.1 codelet under the model checker: it drives
// SpawnOrderingWorkload to the crash instant and audits the workload's
// checkers across every admissible crash state.
func OrderingScenario(prof core.Profile, cfg Config) Result {
	cfg = cfg.withDefaults()
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	w := SpawnOrderingWorkload(k, s, OrderingPages, cfg.Writes)
	k.RunUntil(cfg.CrashAt)
	cons := s.Dev.CaptureConstraints()
	s.Crash()
	base := recoverBase(k, s)
	defer k.Close()

	res := ModelCheck(cons, base, prof.FS.Journal, w.Checkers(s), cfg)
	res.Profile = prof.Name
	res.CrashAt = cfg.CrashAt
	return res
}

// PLPFailureDevice installs the PLP-failure fault plan on a supercap
// device: at power loss the cache drains only a transfer-order prefix, so
// CaptureConstraints hands the model checker a partial-drain chain (every
// prefix admissible) instead of PLP's single fully-drained state. The
// concrete drain fraction is left at zero on purpose — a nonzero drain
// would fold one arbitrary prefix into the recovered base and silently
// shrink the state space the checker audits.
func PLPFailureDevice(dev device.Config, seed uint64) device.Config {
	dev.Fault = &fault.Plan{Seed: seed, PLPFailure: true}
	return dev
}

// KVWorkload is a handle on the canonical kvwal crash workload. The same
// driver backs crashmc.KVScenario and crashtest.KVTrial, so the sampled
// trials and the model checker audit the identical workload history.
type KVWorkload struct {
	st *kvwal.Store
}

// Store returns the opened store, or nil while (or if) the crash landed
// inside Open — in which case nothing was ever acknowledged and every
// recovered image is trivially consistent.
func (w *KVWorkload) Store() *kvwal.Store { return w.st }

// SpawnKVWorkload starts the canonical kv crash workload on a live stack:
// an opener plus `clients` concurrent committers applying small random
// batches (fixed per-client seeds; 15% deletes over a 512-key space).
func SpawnKVWorkload(k *sim.Kernel, s *core.Stack, clients int) *KVWorkload {
	w := &KVWorkload{}
	k.Spawn("kv/setup", func(p *sim.Proc) {
		cfg := kvwal.Config{WALPages: 128, MemtableCap: 32, CompactFanIn: 3, CheckpointEvery: 8}
		st, err := kvwal.Open(p, s, cfg)
		if err != nil {
			panic(err)
		}
		w.st = st
	})
	for c := 0; c < clients; c++ {
		c := c
		k.SpawnIdx("kv/client", c, func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(int64(41 + c)))
			for w.st == nil {
				p.Sleep(sim.Millisecond)
			}
			for {
				ops := make([]kvwal.Op, 3)
				for i := range ops {
					kind := kvwal.Put
					if rng.Intn(100) < 15 {
						kind = kvwal.Delete
					}
					ops[i] = kvwal.Op{Kind: kind, Key: fmt.Sprintf("k%04d", rng.Intn(512))}
				}
				w.st.Apply(p, ops)
			}
		})
	}
	return w
}

// KVScenario drives the kvwal store with concurrent committing clients
// (the crashtest.KVTrial workload, via the shared SpawnKVWorkload driver)
// and model-checks the store's durability/prefix-ordering audit plus the
// journal and fs invariants across every admissible crash state at the
// crash instant.
func KVScenario(prof core.Profile, clients int, cfg Config) Result {
	cfg = cfg.withDefaults()
	k := sim.NewKernel()
	s := core.NewStack(k, prof)
	w := SpawnKVWorkload(k, s, clients)
	k.RunUntil(cfg.CrashAt)
	cons := s.Dev.CaptureConstraints()
	s.Crash()
	st := w.Store()
	if st == nil {
		// The crash landed inside Open: nothing was ever acknowledged, so
		// every admissible state is trivially consistent.
		k.Close()
		return Result{Profile: prof.Name, CrashAt: cfg.CrashAt}
	}
	base := recoverBase(k, s)
	defer k.Close()

	checkers := []Checker{
		&KVChecker{Store: st},
		&JournalChecker{J: s.FS.Journal()},
		&FSChecker{FS: s.FS},
	}
	res := ModelCheck(cons, base, prof.FS.Journal, checkers, cfg)
	res.Profile = prof.Name
	res.CrashAt = cfg.CrashAt
	return res
}

// recoverBase powers the crashed device back on (FTL mount-time recovery)
// and returns its durable read function: the base image every candidate
// cut overlays.
func recoverBase(k *sim.Kernel, s *core.Stack) jbd.ReadFn {
	var base jbd.ReadFn
	k.Spawn("recover", func(p *sim.Proc) {
		d2 := device.Recover(p, s.Dev)
		base = d2.DurableData
	})
	k.Run()
	return base
}
