package crashmc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
)

// The issue's acceptance criterion: killing M of N shards in any
// enumerated admissible crash state must recover with zero durability and
// zero prefix-ordering violations on the barrier engines.
func TestClusterScenarioBarrierEnginesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster model checking in -short mode")
	}
	small := func(p core.Profile) core.Profile { return CompactJournal(p, 512) }
	cfg := Config{
		CrashAt:   at(20000),
		MaxStates: 2000,
		Samples:   64,
		Log:       func(f string, a ...any) { t.Logf(f, a...) },
	}
	for _, prof := range []core.Profile{
		small(core.BFSDR(device.PlainSSD())),
		small(core.BFSMQ(device.PlainSSD())),
	} {
		res := ClusterScenario(prof, 3, 2, cfg)
		t.Log(res.String())
		if res.Killed != 2 || len(res.PerShard) != 2 {
			t.Fatalf("%s: expected 2 killed shards, got %+v", prof.Name, res)
		}
		if !res.Ok() {
			for _, shard := range res.PerShard {
				for _, v := range shard.Violations {
					t.Errorf("%s [%s/%s] %s %s", prof.Name, v.Checker, v.Kind, v.State, v.Detail)
				}
			}
			t.Fatalf("%s cluster: violations in admissible crash states", prof.Name)
		}
		if res.StatesExplored == 0 {
			t.Fatalf("%s cluster: no states explored", prof.Name)
		}
	}
}

// The routing audit must actually bite: auditing a shard's recovered image
// against the wrong ring position must flag every recovered key as
// misrouted.
func TestClusterCheckerFlagsMisroutedKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster model checking in -short mode")
	}
	prof := CompactJournal(core.BFSDR(device.PlainSSD()), 512)
	cfg := Config{CrashAt: at(20000), MaxStates: 200, Samples: 16}
	cfg = cfg.withDefaults()
	ring, parts := clusterTraffic(3)
	// Replay shard 0's slice but audit it as if it were shard 1: every
	// durable key now "routes elsewhere".
	res := clusterShardCheck(prof, ring, 1, parts[0], cfg)
	if res.Consistency == 0 {
		t.Fatal("expected misrouting consistency violations, got none")
	}
}
