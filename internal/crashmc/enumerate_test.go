package crashmc

import (
	"reflect"
	"sort"
	"testing"
)

// runEnum enumerates and returns (visited cut keys sorted, capped).
func runEnum(n int, preds [][]int, max int) ([]string, bool) {
	var keys []string
	seen, capped := enumerate(n, preds, max, func(cut bitset) {
		keys = append(keys, cut.key())
	})
	if len(keys) != len(seen) {
		panic("visit count != seen size")
	}
	sort.Strings(keys)
	return keys, capped
}

func TestEnumerateChain(t *testing.T) {
	// 0 -> 1 -> 2: ideals are the four prefixes.
	keys, capped := runEnum(3, [][]int{nil, {0}, {1}}, 1<<10)
	if capped || len(keys) != 4 {
		t.Fatalf("chain: got %d ideals (capped=%v), want 4", len(keys), capped)
	}
}

func TestEnumerateAntichain(t *testing.T) {
	// No edges: every subset is admissible.
	keys, capped := runEnum(3, [][]int{nil, nil, nil}, 1<<10)
	if capped || len(keys) != 8 {
		t.Fatalf("antichain: got %d ideals (capped=%v), want 8", len(keys), capped)
	}
}

func TestEnumerateTwoStreams(t *testing.T) {
	// Two independent chains of two: 3 ideals each, 9 combined.
	keys, capped := runEnum(4, [][]int{nil, {0}, nil, {2}}, 1<<10)
	if capped || len(keys) != 9 {
		t.Fatalf("two chains: got %d ideals (capped=%v), want 9", len(keys), capped)
	}
}

func TestEnumerateEpochGroups(t *testing.T) {
	// Group {0,1} before group {2,3}: a member of the second group requires
	// the whole first group. Ideals: subsets of {0,1} (4) plus full {0,1}
	// with nonempty subsets of {2,3} (3) = 7.
	preds := [][]int{nil, nil, {0, 1}, {0, 1}}
	keys, capped := runEnum(4, preds, 1<<10)
	if capped || len(keys) != 7 {
		t.Fatalf("epoch groups: got %d ideals (capped=%v), want 7", len(keys), capped)
	}
}

func TestEnumerateCapAndSampleDeterministic(t *testing.T) {
	// A 16-wide antichain has 65536 ideals; a 100-state cap must trip and
	// the sampling fallback must be deterministic across runs.
	n := 16
	preds := make([][]int, n)
	run := func() []string {
		var keys []string
		seen, capped := enumerate(n, preds, 100, func(cut bitset) { keys = append(keys, cut.key()) })
		if !capped {
			t.Fatal("expected the cap to trip")
		}
		if len(seen) != 100 {
			t.Fatalf("seen %d states, want exactly the 100-state cap", len(seen))
		}
		added := sample(n, preds, 50, 7, seen, func(cut bitset) { keys = append(keys, cut.key()) })
		if added == 0 {
			t.Fatal("sampling reached no new states")
		}
		for _, k := range keys {
			if len(k) != 8*((n+63)/64) {
				t.Fatalf("malformed key length %d", len(k))
			}
		}
		return keys
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("enumeration + sampling not deterministic across runs")
	}
}

func TestSampleIncludesFullClosure(t *testing.T) {
	n := 4
	preds := [][]int{nil, {0}, {1}, {2}}
	seen := map[string]struct{}{}
	var first bitset
	sample(n, preds, 1, 1, seen, func(cut bitset) {
		if first == nil {
			first = cut.clone()
		}
	})
	for i := 0; i < n; i++ {
		if !first.has(i) {
			t.Fatalf("first sampled cut must be the full closure; index %d missing", i)
		}
	}
}
