package jbd

import (
	"testing"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/sim"
)

// harness builds kernel + device + block layer + journal.
type harness struct {
	k   *sim.Kernel
	dev *device.Device
	l   *block.Layer
	j   *Journal
}

func newHarness(mode Mode, barrier bool) *harness {
	k := sim.NewKernel()
	cfg := device.UFS()
	cfg.QueueDepth = 16
	cfg.DMAPerPage = 10 * sim.Microsecond
	cfg.CmdOverhead = 2 * sim.Microsecond
	dev := device.New(k, cfg)
	l := block.NewLayer(k, dev, block.NewEpochScheduler(block.NewNOOP()), block.LayerConfig{
		DispatchOverhead: sim.Microsecond,
	})
	jc := DefaultConfig(mode)
	jc.BarrierMount = barrier
	jc.Pages = 128
	jc.CheckpointLow = 16
	j := New(k, l, jc)
	return &harness{k: k, dev: dev, l: l, j: j}
}

func (h *harness) run(body func(p *sim.Proc)) {
	h.k.Spawn("app", body)
	h.k.Run()
}

func (h *harness) close() { h.k.Close() }

func TestJBD2CommitDurable(t *testing.T) {
	h := newHarness(ModeJBD2, true)
	defer h.close()
	buf := &Buffer{Home: 2000, Name: "inode-1"}
	h.run(func(p *sim.Proc) {
		h.j.DirtyBuffer(p, buf, "v1")
		txn := h.j.CommitAndWait(p)
		if txn == nil || txn.State() != StateDurable {
			t.Fatalf("txn state = %v", txn.State())
		}
	})
	if h.j.Stats().Commits != 1 {
		t.Errorf("commits = %d", h.j.Stats().Commits)
	}
	if h.j.Stats().Flushes == 0 {
		t.Error("JBD2 barrier commit should flush")
	}
	// The journal records must be durable on the device.
	rec := Scan(h.dev.DurableData, h.j.Config())
	if len(rec.Applied) != 1 {
		t.Fatalf("recovered %d txns, want 1", len(rec.Applied))
	}
	if rec.State[2000] != "v1" {
		t.Errorf("recovered snapshot = %v", rec.State[2000])
	}
}

func TestJBD2NobarrierDoesNotFlush(t *testing.T) {
	h := newHarness(ModeJBD2, false)
	defer h.close()
	buf := &Buffer{Home: 2000}
	h.run(func(p *sim.Proc) {
		h.j.DirtyBuffer(p, buf, "v1")
		txn := h.j.CommitAndWait(p)
		if txn.State() != StateCommitted {
			t.Errorf("nobarrier txn state = %v, want committed", txn.State())
		}
	})
	if h.j.Stats().Flushes != 0 {
		t.Errorf("nobarrier mount flushed %d times", h.j.Stats().Flushes)
	}
}

func TestEmptyCommitDelimitsEpoch(t *testing.T) {
	h := newHarness(ModeDual, true)
	defer h.close()
	h.run(func(p *sim.Proc) {
		txn := h.j.CommitOrdering(p, true)
		if txn == nil {
			t.Fatal("forced empty commit returned nil")
		}
	})
	if h.j.Stats().EmptyCommits != 1 {
		t.Errorf("empty commits = %d", h.j.Stats().EmptyCommits)
	}
}

func TestDualModeConcurrentCommits(t *testing.T) {
	// fbarrier-style ordering commits must overlap: with 8 back-to-back
	// ordering commits, more than one transaction must be in the committing
	// state at once (Dual-Mode's defining property).
	h := newHarness(ModeDual, true)
	defer h.close()
	h.run(func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			buf := &Buffer{Home: uint64(2000 + i)}
			h.j.DirtyBuffer(p, buf, i)
			h.j.CommitOrdering(p, false)
		}
		// Drain: wait for the last txn durably via an fsync-style call.
		h.j.CommitAndWait(p)
	})
	if h.j.Stats().MaxCommitting < 2 {
		t.Errorf("max committing = %d; Dual mode should pipeline commits", h.j.Stats().MaxCommitting)
	}
	if h.j.Stats().Commits != 8 {
		t.Errorf("commits = %d", h.j.Stats().Commits)
	}
}

func TestDualOrderingReturnsBeforeDurable(t *testing.T) {
	h := newHarness(ModeDual, true)
	defer h.close()
	var orderingDone, jbd2Equivalent sim.Duration
	h.run(func(p *sim.Proc) {
		buf := &Buffer{Home: 2000}
		h.j.DirtyBuffer(p, buf, "x")
		t0 := p.Now()
		h.j.CommitOrdering(p, false)
		orderingDone = sim.Duration(p.Now() - t0)
	})
	h2 := newHarness(ModeJBD2, true)
	defer h2.close()
	h2.run(func(p *sim.Proc) {
		buf := &Buffer{Home: 2000}
		h2.j.DirtyBuffer(p, buf, "x")
		t0 := p.Now()
		h2.j.CommitAndWait(p)
		jbd2Equivalent = sim.Duration(p.Now() - t0)
	})
	if orderingDone*2 > jbd2Equivalent {
		t.Errorf("ordering commit (%v) not clearly faster than durable JBD2 commit (%v)",
			orderingDone, jbd2Equivalent)
	}
}

func TestDualFsyncDurable(t *testing.T) {
	h := newHarness(ModeDual, true)
	defer h.close()
	h.run(func(p *sim.Proc) {
		buf := &Buffer{Home: 2000}
		h.j.DirtyBuffer(p, buf, "precious")
		txn := h.j.CommitAndWait(p)
		if txn.State() != StateDurable {
			t.Fatalf("state = %v", txn.State())
		}
		rec := Scan(h.dev.DurableData, h.j.Config())
		if rec.State[2000] != "precious" {
			t.Errorf("journal content not durable after dual fsync: %v", rec.State[2000])
		}
	})
}

func TestJBD2ConflictBlocksWriter(t *testing.T) {
	h := newHarness(ModeJBD2, true)
	defer h.close()
	buf := &Buffer{Home: 2000}
	var redirtyAt, commitDone sim.Time
	h.run(func(p *sim.Proc) {
		h.j.DirtyBuffer(p, buf, "v1")
		// Start a commit in the background.
		committer := h.k.Spawn("committer", func(cp *sim.Proc) {
			h.j.CommitAndWait(cp)
			commitDone = cp.Now()
		})
		p.Sleep(5 * sim.Microsecond) // let the commit freeze the buffer
		h.j.DirtyBuffer(p, buf, "v2")
		redirtyAt = p.Now()
		p.Join(committer)
	})
	if redirtyAt < commitDone {
		t.Errorf("JBD2 writer redirtied frozen buffer at %v, before commit finished at %v",
			redirtyAt, commitDone)
	}
	if h.j.Stats().ConflictBlocks == 0 {
		t.Error("conflict not counted")
	}
}

func TestDualConflictParksWithoutBlocking(t *testing.T) {
	h := newHarness(ModeDual, true)
	defer h.close()
	buf := &Buffer{Home: 2000}
	h.run(func(p *sim.Proc) {
		h.j.DirtyBuffer(p, buf, "v1")
		h.j.CommitOrdering(p, false) // freezes buf in committing txn
		t0 := p.Now()
		h.j.DirtyBuffer(p, buf, "v2") // must park, not block
		if p.Now() != t0 {
			t.Error("dual-mode DirtyBuffer blocked on conflict")
		}
		if h.j.Stats().ConflictParked != 1 {
			t.Errorf("parked = %d", h.j.Stats().ConflictParked)
		}
		// The conflicted buffer lands in the running txn once the committing
		// transaction retires; committing it must produce v2 in the journal.
		h.j.CommitAndWait(p)
		if h.j.RunningBuffers() != 0 {
			// Buffer should have been committed by now (conflict resolved
			// before the second commit closed).
			t.Logf("note: buffer still running; conflict resolved later")
		}
		h.j.CommitAndWait(p)
		rec := Scan(h.dev.DurableData, h.j.Config())
		if rec.State[2000] != "v2" {
			t.Errorf("final recovered value = %v, want v2", rec.State[2000])
		}
	})
}

func TestCheckpointReclaimsJournalSpace(t *testing.T) {
	h := newHarness(ModeJBD2, true)
	defer h.close()
	h.run(func(p *sim.Proc) {
		// Each commit logs 1 buffer = 3 pages; 128-page journal with
		// low-water 16 forces checkpoints over 60 commits.
		for i := 0; i < 60; i++ {
			buf := &Buffer{Home: uint64(2000 + i%4)}
			h.j.DirtyBuffer(p, buf, i)
			h.j.CommitAndWait(p)
		}
	})
	if h.j.Stats().Checkpoints == 0 {
		t.Error("no checkpoints despite journal pressure")
	}
	if h.j.FreePages() <= 0 {
		t.Errorf("free pages = %d", h.j.FreePages())
	}
	// After checkpointing, in-place homes hold the data.
	found := 0
	for i := 0; i < 4; i++ {
		if _, ok := h.dev.DurableData(uint64(2000 + i)); ok {
			found++
		}
	}
	if found == 0 {
		t.Error("checkpoint never wrote home locations")
	}
}

func TestOptFSCommitNoFlush(t *testing.T) {
	h := newHarness(ModeOptFS, true)
	defer h.close()
	h.run(func(p *sim.Proc) {
		buf := &Buffer{Home: 2000}
		h.j.DirtyBuffer(p, buf, "opt")
		txn := h.j.CommitOrdering(p, false)
		if txn.State() != StateCommitted {
			t.Errorf("state = %v", txn.State())
		}
		// No flush on the commit path; the delayed-durability flush fires
		// much later (500ms), after this check.
		if h.dev.Stats().Flushes != 0 {
			t.Errorf("osync flushed %d times; OptFS must not flush on commit", h.dev.Stats().Flushes)
		}
	})
}

func TestOptFSDelayedDurability(t *testing.T) {
	h := newHarness(ModeOptFS, true)
	defer h.close()
	var txn *Txn
	h.k.Spawn("app", func(p *sim.Proc) {
		buf := &Buffer{Home: 2000}
		h.j.DirtyBuffer(p, buf, "late")
		txn = h.j.CommitOrdering(p, false)
	})
	h.k.RunUntil(sim.Time(2 * sim.Second)) // beyond the delayed-flush interval
	if txn.State() != StateDurable {
		t.Errorf("state after delayed flush window = %v", txn.State())
	}
}

func TestRecoveryStopsAtIncompleteTxn(t *testing.T) {
	// Hand-build journal images to exercise the scan logic directly.
	cfg := DefaultConfig(ModeJBD2)
	cfg.Pages = 32
	img := map[uint64]any{
		cfg.SuperLPA: SuperBlock{TailTxn: 1},
		// txn 1: complete.
		cfg.Start + 0: DescBlock{TxnID: 1, N: 1},
		cfg.Start + 1: LogBlock{TxnID: 1, Index: 0, Home: 500, Snapshot: "a"},
		cfg.Start + 2: CommitBlock{TxnID: 1, N: 1},
		// txn 2: missing its log block (crash mid-commit).
		cfg.Start + 3: DescBlock{TxnID: 2, N: 1},
		cfg.Start + 5: CommitBlock{TxnID: 2, N: 1},
		// txn 3: complete, but must NOT be applied (ordering).
		cfg.Start + 6: DescBlock{TxnID: 3, N: 1},
		cfg.Start + 7: LogBlock{TxnID: 3, Index: 0, Home: 500, Snapshot: "c"},
		cfg.Start + 8: CommitBlock{TxnID: 3, N: 1},
	}
	read := func(lpa uint64) (any, bool) { v, ok := img[lpa]; return v, ok }
	rec := Scan(read, cfg)
	if len(rec.Applied) != 1 || rec.Applied[0] != 1 {
		t.Fatalf("applied = %v, want [1]", rec.Applied)
	}
	if rec.State[500] != "a" {
		t.Errorf("state = %v; replay leaked past incomplete txn", rec.State[500])
	}
	if rec.Incomplete != 1 {
		t.Errorf("incomplete = %d", rec.Incomplete)
	}
}

func TestRecoveryRespectsTail(t *testing.T) {
	cfg := DefaultConfig(ModeJBD2)
	cfg.Pages = 16
	img := map[uint64]any{
		cfg.SuperLPA: SuperBlock{TailTxn: 2},
		// Stale txn 1 (already checkpointed): must be ignored.
		cfg.Start + 0: DescBlock{TxnID: 1, N: 1},
		cfg.Start + 1: LogBlock{TxnID: 1, Index: 0, Home: 500, Snapshot: "stale"},
		cfg.Start + 2: CommitBlock{TxnID: 1, N: 1},
		cfg.Start + 3: DescBlock{TxnID: 2, N: 1},
		cfg.Start + 4: LogBlock{TxnID: 2, Index: 0, Home: 500, Snapshot: "fresh"},
		cfg.Start + 5: CommitBlock{TxnID: 2, N: 1},
	}
	read := func(lpa uint64) (any, bool) { v, ok := img[lpa]; return v, ok }
	rec := Scan(read, cfg)
	if rec.State[500] != "fresh" {
		t.Errorf("state = %v", rec.State[500])
	}
	if len(rec.Applied) != 1 || rec.Applied[0] != 2 {
		t.Errorf("applied = %v", rec.Applied)
	}
}

func TestJournalCrashRecoveryEndToEnd(t *testing.T) {
	// Commit transactions, crash mid-stream, recover, and check that the
	// set of recovered transactions is a prefix.
	h := newHarness(ModeDual, true)
	committed := 0
	h.k.Spawn("app", func(p *sim.Proc) {
		for i := 0; ; i++ {
			buf := &Buffer{Home: uint64(3000 + i)}
			h.j.DirtyBuffer(p, buf, i)
			h.j.CommitAndWait(p)
			committed++
		}
	})
	h.k.RunUntil(sim.Time(20 * sim.Millisecond))
	h.dev.Crash()
	var rec Recovered
	h.k.Spawn("recover", func(p *sim.Proc) {
		d2 := device.Recover(p, h.dev)
		rec = Scan(d2.DurableData, h.j.Config())
	})
	h.k.Run()
	defer h.close()
	if committed == 0 {
		t.Skip("nothing committed before crash; widen the window")
	}
	// Every CommitAndWait that returned must be accounted for: either
	// checkpointed in place (ids below the recovered tail) or replayed
	// from the journal.
	accounted := int(rec.TailTxn-1) + len(rec.Applied)
	if accounted < committed {
		t.Errorf("recovered %d txns (tail=%d), but %d fsync-style commits returned",
			len(rec.Applied), rec.TailTxn, committed)
	}
	// Applied ids must be contiguous ascending.
	for i := 1; i < len(rec.Applied); i++ {
		if rec.Applied[i] != rec.Applied[i-1]+1 {
			t.Fatalf("applied ids not contiguous: %v", rec.Applied)
		}
	}
}

func TestModeAndStateStrings(t *testing.T) {
	if ModeJBD2.String() != "jbd2" || ModeDual.String() != "dual" || ModeOptFS.String() != "optfs" {
		t.Error("mode strings")
	}
	if StateRunning.String() != "running" || StateDurable.String() != "durable" {
		t.Error("state strings")
	}
}
