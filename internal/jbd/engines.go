package jbd

import (
	"repro/internal/block"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// On-disk journal record payloads (stored as page data).

// DescBlock is a journal descriptor block.
type DescBlock struct {
	TxnID uint64
	N     int // number of log blocks
}

// LogBlock is one journaled metadata block copy.
type LogBlock struct {
	TxnID    uint64
	Index    int
	Home     uint64
	Snapshot any
}

// CommitBlock is a journal commit record.
type CommitBlock struct {
	TxnID uint64
	N     int
}

// SuperBlock records the checkpoint tail.
type SuperBlock struct {
	TailTxn uint64
}

// submitWaitAll submits every request and blocks until all complete,
// costing the caller a single wake-up (the requests form one logical chunk,
// like JBD2's coalesced descriptor+logs write).
func (j *Journal) submitWaitAll(p *sim.Proc, reqs []*block.Request) {
	if len(reqs) == 0 {
		return
	}
	n := len(reqs)
	waiting := false
	for _, r := range reqs {
		r.OnComplete = func(at sim.Time, _ *block.Request) {
			n--
			if n == 0 && waiting {
				j.k.Resume(p)
			}
		}
		j.layer.Submit(p, r)
	}
	if n > 0 {
		waiting = true
		p.Suspend()
		j.wake(p)
	}
}

// newReq draws a pooled request tagged with the journal's order stream.
// Every request the journal issues goes through here so the whole journal
// (JD/JC, delayed flushes, checkpoint copies, superblock) stays inside its
// configured ordering domain.
func (j *Journal) newReq() *block.Request {
	r := j.reqPool.Get()
	r.Stream = j.cfg.Stream
	return r
}

// buildJD allocates journal slots and builds the descriptor+log requests
// (the paper's JD chunk) and the commit request (JC) for t. The requests
// come from the journal's pool; each engine releases them at its last use
// (after the commit wait, or at completion for Dual-Mode's unwaited JD).
func (j *Journal) buildJD(t *Txn) (jd []*block.Request, jc *block.Request) {
	n := len(t.frozen)
	desc := j.newReq()
	desc.Op, desc.LPA = block.OpWrite, j.slotLPA(j.head)
	desc.Data = DescBlock{TxnID: t.id, N: n}
	j.head++
	jd = append(jd, desc)
	for i, l := range t.frozen {
		r := j.newReq()
		r.Op, r.LPA = block.OpWrite, j.slotLPA(j.head)
		r.Data = LogBlock{TxnID: t.id, Index: i, Home: l.home, Snapshot: l.data}
		jd = append(jd, r)
		j.head++
	}
	jc = j.newReq()
	jc.Op, jc.LPA = block.OpWrite, j.slotLPA(j.head)
	jc.Data = CommitBlock{TxnID: t.id, N: n}
	j.head++
	j.stats.PagesLogged += int64(n + 2)
	return jd, jc
}

// releaseReqs returns fully waited-on journal requests to the pool.
func (j *Journal) releaseReqs(reqs []*block.Request) {
	for _, r := range reqs {
		j.reqPool.Put(r)
	}
}

// --- JBD2: the EXT4 transfer-and-flush engine (§2.3) ---

func (j *Journal) jbd2Thread(p *sim.Proc) {
	for {
		t, ok := j.commitQ.Get(p)
		if !ok {
			return
		}
		j.k.SpanBegin("jbd", "commit", t.id)
		j.wake(p)
		// Ordered mode: D must be fully transferred before JD is issued.
		for _, d := range t.dataDeps {
			if !d.Completed() {
				d.Wait(p)
				j.wake(p)
			}
		}
		t.pagesUsed = len(t.frozen) + 2
		j.reserve(p, t.pagesUsed)
		jd, jc := j.buildJD(t)
		t.trace.StampChain(reqtrace.StageJournalDispatch, p.Now())
		for _, r := range jd {
			r.Trace = t.trace
		}
		jc.Trace = t.trace
		// JD: write and Wait-on-Transfer.
		j.submitWaitAll(p, jd)
		// JC: FLUSH|FUA compresses flush→JC→flush (§2.3); completion means
		// the transaction is durable. Under nobarrier, a plain write whose
		// completion only means "transferred".
		if j.cfg.BarrierMount {
			jc.Flags |= block.FlagFlush | block.FlagFUA
			j.stats.Flushes++
		}
		j.submitWaitAll(p, []*block.Request{jc})
		j.releaseReqs(jd)
		j.reqPool.Put(jc)
		t.jcTransferred = true
		t.state = StateCommitted
		t.wakeCommitted()
		if j.cfg.BarrierMount {
			t.state = StateDurable
			t.wakeDurable()
		}
		j.stats.Commits++
		j.obs.commits.Inc()
		j.k.SpanEnd("jbd", "commit", t.id)
		if t.forced && len(t.frozen) == 0 {
			j.stats.EmptyCommits++
		}
		j.finishTxn(t)
	}
}

// --- Dual-Mode journaling: BarrierFS (§4.2) ---

// dualCommitThread is the control plane: it dispatches JD and JC as ordered
// barrier writes and immediately moves on, so multiple transactions commit
// concurrently. {D, JD} form one epoch; {JC} forms the next (Eq. 3).
func (j *Journal) dualCommitThread(p *sim.Proc) {
	for {
		t, ok := j.commitQ.Get(p)
		if !ok {
			return
		}
		j.k.SpanBegin("jbd", "commit", t.id)
		j.wake(p)
		// The running transaction may not commit while the conflict-page
		// list is non-empty (§4.3); resolved buffers join t while we wait.
		for len(j.conflictList) > 0 {
			j.confCond.Wait(p)
			j.wake(p)
		}
		j.freeze(t)
		// Ordered-mode data riding another stream (background writeback the
		// multi-queue layer spread off the journal's stream) is outside this
		// journal's ordering domain: the {D, JD} epoch cannot cover it, so
		// fall back to Wait-on-Transfer for exactly those requests. Data on
		// the journal's own stream stays wait-free — the JD barrier orders
		// it (Eq. 3), which is the single-queue behaviour unchanged.
		for _, d := range t.dataDeps {
			if d.Stream != j.cfg.Stream && !d.Completed() {
				d.Wait(p)
				j.wake(p)
			}
		}
		t.pagesUsed = len(t.frozen) + 2
		j.reserve(p, t.pagesUsed)
		jd, jc := j.buildJD(t)
		t.trace.StampChain(reqtrace.StageJournalDispatch, p.Now())
		jc.Trace = t.trace
		for i, r := range jd {
			r.Trace = t.trace
			r.Flags |= block.FlagOrdered
			if i == len(jd)-1 {
				// The tail of the JD chunk closes the {D, JD} epoch.
				r.Flags |= block.FlagBarrier
			}
			// Nothing waits on a Dual-Mode JD write: completion is its last
			// reference, so it recycles itself there.
			r.OnComplete = j.relJD
			j.layer.Submit(p, r)
		}
		jc.Flags |= block.FlagOrdered | block.FlagBarrier
		txn := t
		jc.OnComplete = func(at sim.Time, _ *block.Request) {
			txn.jcTransferred = true
			j.flushQ.Put(txn)
			j.reqPool.Put(jc)
		}
		j.layer.Submit(p, jc)
		// Ordering is established at dispatch: fbarrier callers resume here,
		// before any DMA completes.
		t.state = StateCommitted
		t.wakeCommitted()
		j.stats.Commits++
		j.obs.commits.Inc()
		j.k.SpanEnd("jbd", "commit", t.id)
		if t.forced && len(t.frozen) == 0 {
			j.stats.EmptyCommits++
		}
	}
}

// dualFlushThread is the data plane: triggered as each JC finishes its
// transfer. It issues the flush for durability-seeking transactions and
// resolves page conflicts (§4.3). Ordering-only transactions pass through
// without a flush.
func (j *Journal) dualFlushThread(p *sim.Proc) {
	for {
		t, ok := j.flushQ.Get(p)
		if !ok {
			return
		}
		j.wake(p)
		if t.state >= StateDurable {
			continue
		}
		if t.wantDurable {
			j.layer.FlushT(p, t.trace)
			j.wake(p)
			j.stats.Flushes++
			// The flush persisted every transfer before it: all transactions
			// whose JC was transferred are now durable.
			var done []*Txn
			for _, c := range j.committing {
				if c.jcTransferred && c.state < StateDurable {
					done = append(done, c)
				}
			}
			for _, c := range done {
				c.state = StateDurable
				c.wakeDurable()
				j.finishTxn(c)
			}
		} else {
			// fbarrier: remove from the committing list without flushing.
			j.finishTxn(t)
		}
	}
}

// --- OptFS: osync() via Wait-on-Transfer (§7) ---

func (j *Journal) optfsCommitThread(p *sim.Proc) {
	for {
		t, ok := j.commitQ.Get(p)
		if !ok {
			return
		}
		j.k.SpanBegin("jbd", "commit", t.id)
		j.wake(p)
		for _, d := range t.dataDeps {
			if !d.Completed() {
				d.Wait(p)
				j.wake(p)
			}
		}
		t.pagesUsed = len(t.frozen) + 2
		j.reserve(p, t.pagesUsed)
		jd, jc := j.buildJD(t)
		t.trace.StampChain(reqtrace.StageJournalDispatch, p.Now())
		for _, r := range jd {
			r.Trace = t.trace
		}
		jc.Trace = t.trace
		// OptFS preserves the JD→JC order with Wait-on-Transfer, not
		// barriers, and never flushes on the commit path.
		j.submitWaitAll(p, jd)
		j.submitWaitAll(p, []*block.Request{jc})
		j.releaseReqs(jd)
		j.reqPool.Put(jc)
		t.jcTransferred = true
		t.state = StateCommitted
		t.wakeCommitted()
		j.stats.Commits++
		j.obs.commits.Inc()
		j.k.SpanEnd("jbd", "commit", t.id)
		j.optfsCond.Broadcast()
	}
}

// optfsDelayedFlush provides OptFS's delayed durability: committed
// transactions are made durable by a flush no later than FlushInterval
// after they commit. The timer is armed only while work is pending, so an
// idle journal generates no events.
func (j *Journal) optfsDelayedFlush(p *sim.Proc) {
	for {
		pending := j.committedNotDurable()
		if len(pending) == 0 {
			j.optfsCond.Wait(p)
			continue
		}
		p.Sleep(j.cfg.FlushInterval)
		j.retireCommitted(p)
	}
}

// Run-to-completion form of the delayed-durability flush daemon (see
// optfsDelayedFlush for the blocking original). Its blocking points — the
// idle wait, the FlushInterval sleep, the flush request's congestion and
// completion waits, and the post-wake scheduler latency — each become one
// phase; the retire bookkeeping mirrors retireCommitted exactly.
const (
	dfIdle      = iota // no committed-not-durable transactions
	dfSleep            // FlushInterval timer armed
	dfSubmit           // flush request submission (congestion retries)
	dfFlushWait        // flush request in flight
	dfWake             // post-flush scheduler latency elapsed
)

type delayFlushSM struct {
	phase   int
	pending []*Txn
	req     *block.Request
}

func (j *Journal) delayedFlushStep(h *sim.Proc) {
	s := &j.df
	for {
		switch s.phase {
		case dfIdle:
			if len(j.committedNotDurable()) == 0 {
				j.optfsCond.Park(h)
				return
			}
			s.phase = dfSleep
			h.WakeAt(h.Now().Add(j.cfg.FlushInterval))
			return
		case dfSleep:
			s.pending = j.committedNotDurable()
			if len(s.pending) == 0 {
				s.phase = dfIdle
				continue
			}
			s.req = j.newReq()
			s.req.Op = block.OpFlush
			s.phase = dfSubmit
		case dfSubmit:
			if !j.layer.SubmitOrPark(h, s.req) {
				return
			}
			s.phase = dfFlushWait
			if !s.req.WaitOrPark(h) {
				return
			}
		case dfFlushWait:
			j.reqPool.Put(s.req)
			s.req = nil
			s.phase = dfWake
			if j.cfg.WakeLatency > 0 {
				h.WakeIn(j.cfg.WakeLatency)
				return
			}
		case dfWake:
			j.stats.Flushes++
			for _, c := range s.pending {
				// Same re-check as retireCommitted: a concurrent retirer may
				// have finished c while the flush was in flight.
				if c.state != StateCommitted {
					continue
				}
				c.state = StateDurable
				c.wakeDurable()
				j.finishTxn(c)
			}
			s.pending = nil
			s.phase = dfIdle
		}
	}
}

// retireCommitted flushes the device and retires every committed
// transaction: the delayed-durability step of OptFS, also invoked directly
// under journal-space pressure and by dsync-style waiters.
func (j *Journal) retireCommitted(p *sim.Proc) {
	pending := j.committedNotDurable()
	if len(pending) == 0 {
		return
	}
	j.layer.Flush(p)
	j.wake(p)
	j.stats.Flushes++
	for _, c := range pending {
		// Re-check: another retirer (space-pressured reserve, a dsync
		// waiter, the delayed-flush daemon) may have retired c while this
		// one was blocked in the flush; finishing it twice would double-
		// credit its journal pages and duplicate it in the checkpoint queue.
		if c.state != StateCommitted {
			continue
		}
		c.state = StateDurable
		c.wakeDurable()
		j.finishTxn(c)
	}
}

func (j *Journal) committedNotDurable() []*Txn {
	var out []*Txn
	for _, c := range j.committing {
		if c.state == StateCommitted {
			out = append(out, c)
		}
	}
	return out
}

// --- shared transaction retirement and checkpointing ---

// finishTxn removes t from the committing list, releases its frozen
// buffers (resolving Dual-Mode conflict pages into the running
// transaction), and queues it for checkpointing.
func (j *Journal) finishTxn(t *Txn) {
	t.retired = true
	for i, c := range j.committing {
		if c == t {
			j.committing = append(j.committing[:i], j.committing[i+1:]...)
			break
		}
	}
	for _, b := range t.buffers {
		if b.owner == t {
			b.owner = nil
		}
	}
	// Conflict-page list: buffers parked while t held them move to the
	// running transaction now (§4.3).
	if len(j.conflictList) > 0 {
		kept := j.conflictList[:0]
		for _, b := range j.conflictList {
			if b.owner == nil || b.owner == t {
				b.owner = nil
				b.conflict = false
				b.inRunning = true
				j.running.buffers = append(j.running.buffers, b)
				continue
			}
			kept = append(kept, b)
		}
		j.conflictList = kept
		if len(j.conflictList) == 0 {
			j.confCond.Broadcast()
		}
	}
	j.ckptQ = append(j.ckptQ, t)
	j.obs.ckptBacklog.Set(int64(len(j.ckptQ)))
	j.ckptCond.Broadcast()
}

// checkpointThread writes committed metadata to its home location and
// advances the journal tail, reclaiming journal space.
func (j *Journal) checkpointThread(p *sim.Proc) {
	for {
		for len(j.ckptQ) == 0 || (j.freePages >= j.cfg.CheckpointLow && len(j.ckptQ) < 64) {
			j.ckptCond.Wait(p)
			j.wake(p)
		}
		batch := j.ckptQ
		j.ckptQ = nil
		j.obs.ckptBacklog.Set(0)
		// 1. The journal copies must be durable before homes are
		//    overwritten, or a crash could destroy the only good copy.
		j.layer.Flush(p)
		j.wake(p)
		for _, t := range batch {
			if t.state < StateDurable {
				t.state = StateDurable
				t.wakeDurable()
			}
		}
		// 2. In-place writes: one per home, newest snapshot wins.
		homes := make(map[uint64]any)
		var order []uint64
		for _, t := range batch {
			for _, l := range t.frozen {
				if _, seen := homes[l.home]; !seen {
					order = append(order, l.home)
				}
				homes[l.home] = l.data
			}
		}
		var reqs []*block.Request
		for _, h := range order {
			r := j.newReq()
			r.Op, r.LPA, r.Data = block.OpWrite, h, homes[h]
			reqs = append(reqs, r)
		}
		j.submitWaitAll(p, reqs)
		j.releaseReqs(reqs)
		// 3. Make the in-place copies durable, then advance the tail.
		j.layer.Flush(p)
		j.wake(p)
		j.tailTxn = batch[len(batch)-1].id + 1
		sb := j.newReq()
		sb.Op, sb.LPA = block.OpWrite, j.cfg.SuperLPA
		sb.Data = SuperBlock{TailTxn: j.tailTxn}
		sb.Flags = block.FlagFUA
		j.submitWaitAll(p, []*block.Request{sb})
		j.reqPool.Put(sb)
		for _, t := range batch {
			j.freePages += t.pagesUsed
		}
		j.stats.Checkpoints++
		j.obs.checkpoints.Inc()
		j.spaceCond.Broadcast()
	}
}
