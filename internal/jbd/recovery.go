package jbd

// Recovery: mount-time journal replay. The scan walks the journal window,
// groups records by transaction, validates each transaction (descriptor +
// every log block + commit block), and replays valid transactions in id
// order starting from the superblock's checkpoint tail, stopping at the
// first hole. Stopping at the first incomplete transaction is what makes
// journal ordering matter: if JC(k) could land before JD(k) — as it can on
// a nobarrier mount without flush — replay silently truncates or, worse,
// trusts a commit record whose log blocks are garbage.

// Recovered is the outcome of a journal scan.
type Recovered struct {
	TailTxn uint64
	Applied []uint64       // transaction ids replayed, in order
	State   map[uint64]any // home LPA -> newest replayed snapshot
	// Incomplete counts transactions that had some records durable but did
	// not pass validation (crash signature).
	Incomplete int
}

// ReadFn reads the durable contents of an LPA (typically
// device.DurableData after recovery).
type ReadFn func(lpa uint64) (any, bool)

type scannedTxn struct {
	desc   *DescBlock
	logs   map[int]LogBlock
	commit *CommitBlock
}

// Scan performs journal recovery over the given read function.
func Scan(read ReadFn, cfg Config) Recovered {
	out := Recovered{TailTxn: 1, State: make(map[uint64]any)}
	if sb, ok := read(cfg.SuperLPA); ok {
		if s, ok := sb.(SuperBlock); ok {
			out.TailTxn = s.TailTxn
		}
	}
	txns := make(map[uint64]*scannedTxn)
	get := func(id uint64) *scannedTxn {
		t := txns[id]
		if t == nil {
			t = &scannedTxn{logs: make(map[int]LogBlock)}
			txns[id] = t
		}
		return t
	}
	for i := 0; i < cfg.Pages; i++ {
		data, ok := read(cfg.Start + uint64(i))
		if !ok {
			continue
		}
		switch rec := data.(type) {
		case DescBlock:
			r := rec
			get(rec.TxnID).desc = &r
		case LogBlock:
			get(rec.TxnID).logs[rec.Index] = rec
		case CommitBlock:
			r := rec
			get(rec.TxnID).commit = &r
		}
	}
	valid := func(t *scannedTxn) bool {
		if t == nil || t.desc == nil || t.commit == nil {
			return false
		}
		if t.commit.N != t.desc.N || len(t.logs) < t.desc.N {
			return false
		}
		for i := 0; i < t.desc.N; i++ {
			if _, ok := t.logs[i]; !ok {
				return false
			}
		}
		return true
	}
	for id := out.TailTxn; ; id++ {
		t, present := txns[id]
		if !present {
			break
		}
		if !valid(t) {
			out.Incomplete++
			break
		}
		for i := 0; i < t.desc.N; i++ {
			l := t.logs[i]
			out.State[l.Home] = l.Snapshot
		}
		out.Applied = append(out.Applied, id)
	}
	return out
}
