package jbd

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// Property: for any random interleaving of buffer dirtying and commits, a
// journal scan after a clean shutdown reproduces exactly the last committed
// snapshot of every buffer — never a torn mix.
func TestRecoveryMatchesCommittedHistoryProperty(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			mode := []Mode{ModeJBD2, ModeDual}[trial%2]
			h := newHarness(mode, true)
			defer h.close()
			const nbuf = 6
			bufs := make([]*Buffer, nbuf)
			for i := range bufs {
				bufs[i] = &Buffer{Home: uint64(5000 + i)}
			}
			lastCommitted := make(map[uint64]any)
			pendingVals := make(map[uint64]any)
			h.run(func(p *sim.Proc) {
				for step := 0; step < 120; step++ {
					switch rng.Intn(3) {
					case 0, 1:
						b := bufs[rng.Intn(nbuf)]
						v := fmt.Sprintf("t%d-s%d", trial, step)
						h.j.DirtyBuffer(p, b, v)
						pendingVals[b.Home] = v
					default:
						if h.j.CommitAndWait(p) != nil {
							for home, v := range pendingVals {
								lastCommitted[home] = v
							}
							pendingVals = map[uint64]any{}
						}
					}
				}
				// Final commit to flush stragglers, then full device flush.
				h.j.CommitAndWait(p)
				for home, v := range pendingVals {
					lastCommitted[home] = v
				}
				h.l.Flush(p)
			})
			rec := Scan(h.dev.DurableData, h.j.Config())
			for home, want := range lastCommitted {
				got := rec.State[home]
				if got == nil {
					// The snapshot may already have been checkpointed in
					// place and its journal copy recycled.
					if d, ok := h.dev.DurableData(home); ok {
						got = d
					}
				}
				if got != want {
					t.Errorf("home %d: recovered %v, want %v", home, got, want)
				}
			}
		})
	}
}

// Property: under dual mode, a buffer never belongs to the running
// transaction and a committing transaction at once, across random conflict
// storms.
func TestNoDoubleOwnershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := newHarness(ModeDual, true)
	defer h.close()
	const nbuf = 4
	bufs := make([]*Buffer, nbuf)
	for i := range bufs {
		bufs[i] = &Buffer{Home: uint64(6000 + i)}
	}
	h.run(func(p *sim.Proc) {
		for step := 0; step < 200; step++ {
			b := bufs[rng.Intn(nbuf)]
			h.j.DirtyBuffer(p, b, step)
			if b.inRunning && b.conflict {
				t.Fatalf("step %d: buffer both running and conflicted", step)
			}
			if b.inRunning && b.owner != nil {
				t.Fatalf("step %d: buffer running while owned by committing txn", step)
			}
			if rng.Intn(4) == 0 {
				h.j.CommitOrdering(p, false)
			}
		}
		h.j.CommitAndWait(p)
	})
}

// Property: transactions become durable in commit order, whatever mix of
// ordering and durability commits drives them.
func TestDurabilityFollowsCommitOrder(t *testing.T) {
	h := newHarness(ModeDual, true)
	defer h.close()
	var durableOrder []uint64
	h.run(func(p *sim.Proc) {
		var txns []*Txn
		for i := 0; i < 10; i++ {
			b := &Buffer{Home: uint64(7000 + i)}
			h.j.DirtyBuffer(p, b, i)
			var tx *Txn
			if i%2 == 0 {
				tx = h.j.CommitOrdering(p, false)
			} else {
				tx = h.j.CommitAndWait(p)
			}
			if tx != nil {
				txns = append(txns, tx)
			}
		}
		// Make everything durable.
		h.j.CommitAndWait(p)
		h.l.Flush(p)
		for _, tx := range txns {
			if tx.State() >= StateDurable {
				durableOrder = append(durableOrder, tx.ID())
			}
		}
	})
	for i := 1; i < len(durableOrder); i++ {
		if durableOrder[i] < durableOrder[i-1] {
			t.Fatalf("durable order not monotone: %v", durableOrder)
		}
	}
}

// Crash-focused property: commit a known sequence, crash at a random point,
// and require that the set of recovered transactions is a contiguous prefix
// whose content matches what was committed.
func TestCrashPrefixProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		h := newHarness(ModeDual, true)
		crashAt := sim.Time(sim.Duration(500+rng.Intn(20000)) * sim.Microsecond)
		type rec struct {
			txn  uint64
			home uint64
			val  int
		}
		var committed []rec
		h.k.Spawn("app", func(p *sim.Proc) {
			for i := 0; ; i++ {
				home := uint64(8000 + i%5)
				b := &Buffer{Home: home}
				h.j.DirtyBuffer(p, b, i)
				tx := h.j.CommitAndWait(p)
				if tx != nil {
					committed = append(committed, rec{txn: tx.ID(), home: home, val: i})
				}
			}
		})
		h.k.RunUntil(crashAt)
		h.dev.Crash()
		var scanned Recovered
		h.k.Spawn("recover", func(p *sim.Proc) {
			d2 := device.Recover(p, h.dev)
			scanned = Scan(d2.DurableData, h.j.Config())
		})
		h.k.Run()
		// Every acknowledged (CommitAndWait returned) txn must be recovered
		// or already checkpointed; recovered ids must be contiguous.
		for i := 1; i < len(scanned.Applied); i++ {
			if scanned.Applied[i] != scanned.Applied[i-1]+1 {
				t.Fatalf("trial %d: applied ids not contiguous: %v", trial, scanned.Applied)
			}
		}
		h.close()
	}
}
