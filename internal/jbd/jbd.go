// Package jbd implements filesystem journaling over the order-preserving
// block layer, in three flavors:
//
//   - ModeJBD2: the EXT4 baseline (§2.3). A single JBD thread commits one
//     transaction at a time, interleaving D, JD and JC with
//     transfer-and-flush (Eq. 2: D→xfer→JD→xfer→flush→JC(FLUSH|FUA)).
//   - ModeDual: BarrierFS Dual-Mode journaling (§4.2). A commit thread
//     dispatches JD and JC as ordered barrier writes without waiting; a
//     flush thread handles durability. Multiple transactions commit
//     concurrently; the conflict-page list handles multi-transaction page
//     conflicts (§4.3).
//   - ModeOptFS: OptFS's osync() (§7): ordering-only commits that still use
//     Wait-on-Transfer, plus selective data journaling.
//
// The journal occupies a fixed LPA window [Start, Start+Pages) used as a
// circular log; a superblock at LPA SuperLPA records the checkpoint tail
// for recovery.
package jbd

import (
	"repro/internal/block"
	"repro/internal/metrics"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// Mode selects the journaling engine.
type Mode int

// Journaling engines.
const (
	ModeJBD2 Mode = iota
	ModeDual
	ModeOptFS
)

func (m Mode) String() string {
	switch m {
	case ModeJBD2:
		return "jbd2"
	case ModeDual:
		return "dual"
	case ModeOptFS:
		return "optfs"
	}
	return "invalid"
}

// Config tunes a journal instance.
type Config struct {
	Mode Mode
	// BarrierMount mirrors the EXT4 barrier/nobarrier mount option: when
	// false, the JBD2 engine never issues flush or FUA, giving the paper's
	// EXT4-OD (ordering-only) configuration.
	BarrierMount bool
	// SuperLPA, Start and Pages define the on-disk layout.
	SuperLPA uint64
	Start    uint64
	Pages    int
	// CheckpointLow triggers checkpointing when free journal pages drop
	// below this count.
	CheckpointLow int
	// WakeLatency is charged after every blocking wake-up (scheduler
	// latency).
	WakeLatency sim.Duration
	// FlushInterval, for ModeOptFS, is the delayed-durability flush period.
	FlushInterval sim.Duration
	// Stream is the block-layer ordering domain every journal request rides
	// (block.Request.Stream). 0 — the default — is the global ordering
	// domain of the single-queue layer. A multi-tenant stack on one
	// multi-queue device gives each mounted filesystem its own order stream
	// (block.OrderStream) so the tenants' barriers never drain each other's
	// traffic; the filesystem layer tags its foreground data and reads with
	// the same stream (see fs.Options).
	Stream uint64
	// Metrics is an explicit observability registry; nil falls back to the
	// process-wide live registry, and a nil resolution disables the
	// journal's instruments.
	Metrics *metrics.Registry
}

// DefaultConfig returns a journal layout for the standard stack geometry.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:          mode,
		BarrierMount:  true,
		SuperLPA:      0,
		Start:         1,
		Pages:         8192,
		CheckpointLow: 2048,
		WakeLatency:   15 * sim.Microsecond,
		FlushInterval: 500 * sim.Millisecond,
	}
}

// TxnState is the lifecycle of a transaction.
type TxnState int

// Transaction states.
const (
	StateRunning    TxnState = iota
	StateCommitting          // handed to the commit machinery
	StateCommitted           // JD and JC transferred (ordering established)
	StateDurable             // on the storage surface
)

func (s TxnState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateCommitting:
		return "committing"
	case StateCommitted:
		return "committed"
	case StateDurable:
		return "durable"
	}
	return "invalid"
}

// Buffer is a journaled metadata block handle. The filesystem owns it and
// calls DirtyBuffer with a fresh immutable snapshot whenever the block
// changes.
type Buffer struct {
	Home uint64 // in-place LPA
	Data any    // latest snapshot
	Name string // for diagnostics

	// Snapshot, if set, is called once when the buffer is frozen into a
	// committing transaction and must return an immutable copy of the
	// block's current contents. This mirrors JBD2's frozen-buffer copy and
	// lets owners avoid building a full snapshot on every dirtying write.
	Snapshot func() any

	owner     *Txn // committing transaction currently freezing this buffer
	inRunning bool
	conflict  bool // parked on the conflict-page list
}

// Pending reports whether the buffer has uncommitted changes (it sits in
// the running transaction or on the conflict-page list).
func (b *Buffer) Pending() bool { return b.inRunning || b.conflict }

// logged is one frozen (home, snapshot) pair inside a committing txn.
type logged struct {
	home uint64
	data any
}

// Txn is a journal transaction.
type Txn struct {
	id      uint64
	buffers []*Buffer
	frozen  []logged
	state   TxnState

	// dataDeps are ordered-mode data writes that must be on their way to
	// the device before JD is written.
	dataDeps []*block.Request

	forced bool // committed even if empty (epoch delimiter)

	// commitRequested marks a running transaction already queued to the
	// Dual-Mode commit thread (which freezes it after the conflict-page
	// list drains).
	commitRequested bool

	wantDurable   bool
	jcTransferred bool
	retired       bool // removed from the committing list (finishTxn ran)
	pagesUsed     int

	// trace is the causal trace context of the first traced caller that
	// committed this transaction (the chain head of its group). The
	// commit engines stamp StageJournalDispatch through it and tag the
	// JD/JC block requests with it.
	trace reqtrace.Ctx

	committedWaiters []*sim.Proc
	durableWaiters   []*sim.Proc
	k                *sim.Kernel
}

// attachTrace attaches tc to the transaction, first-wins.
func (t *Txn) attachTrace(tc reqtrace.Ctx) {
	if t != nil && !t.trace.Active() {
		t.trace = tc
	}
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// State returns the transaction state.
func (t *Txn) State() TxnState { return t.state }

// Empty reports whether the transaction has no frozen buffers and is not a
// forced epoch delimiter.
func (t *Txn) Empty() bool { return len(t.buffers) == 0 && len(t.frozen) == 0 && !t.forced }

func (t *Txn) wakeCommitted() {
	ws := t.committedWaiters
	t.committedWaiters = nil
	for _, w := range ws {
		t.k.Resume(w)
	}
}

func (t *Txn) wakeDurable() {
	ws := t.durableWaiters
	t.durableWaiters = nil
	for _, w := range ws {
		t.k.Resume(w)
	}
}

// Stats are cumulative journal statistics.
type Stats struct {
	Commits         int64
	EmptyCommits    int64
	PagesLogged     int64
	Checkpoints     int64
	ConflictBlocks  int64 // JBD2: times a writer blocked on a committing txn
	ConflictParked  int64 // Dual: buffers parked on the conflict-page list
	Flushes         int64
	MaxCommitting   int   // high-water mark of concurrently committing txns
	CheckpointForce int64 // commits that had to wait for journal space
}

// Journal is one mounted journal.
type Journal struct {
	k     *sim.Kernel
	layer block.Submitter
	cfg   Config

	running    *Txn
	committing []*Txn // in commit order
	nextTxnID  uint64

	conflictList []*Buffer

	commitQ   *sim.Queue[*Txn]
	flushQ    *sim.Queue[*Txn]
	ckptQ     []*Txn
	ckptCond  *sim.Cond
	spaceCond *sim.Cond
	confCond  *sim.Cond
	optfsCond *sim.Cond
	df        delayFlushSM // handler-mode delayed flush state (engines.go)

	// reqPool recycles the journal's own block requests (JD/JC chunks,
	// checkpoint writes); relJD is the bound release hook for requests whose
	// last reference is their completion (Dual-Mode JD writes).
	reqPool block.ReqPool
	relJD   func(at sim.Time, r *block.Request)

	head      uint64 // next journal slot sequence number
	freePages int
	tailTxn   uint64 // oldest un-checkpointed txn id

	// ackedDurable is the newest transaction id a durability wait has
	// acknowledged to a caller — the journal-level fsync contract the
	// crash-state model checker audits. Under a nobarrier mount the wait
	// returns at StateCommitted, so the ack can outrun what is actually on
	// the storage surface: recording the *claim* rather than the physical
	// state is the point (internal/crashmc reproduces EXT4-nobarrier's
	// false ack as a positive finding).
	ackedDurable uint64

	stats Stats
	obs   jbdObs
}

// jbdObs holds the journal's registry instruments; all nil when disabled.
type jbdObs struct {
	commits, checkpoints          *metrics.Counter
	conflictParks, conflictBlocks *metrics.Counter
	ckptBacklog                   *metrics.Gauge
}

// New creates a journal and starts its engine threads.
func New(k *sim.Kernel, layer block.Submitter, cfg Config) *Journal {
	if cfg.Pages < 8 {
		panic("jbd: journal too small")
	}
	j := &Journal{
		k: k, layer: layer, cfg: cfg,
		commitQ:   sim.NewQueue[*Txn](k),
		flushQ:    sim.NewQueue[*Txn](k),
		ckptCond:  sim.NewCond(k),
		spaceCond: sim.NewCond(k),
		confCond:  sim.NewCond(k),
		optfsCond: sim.NewCond(k),
		freePages: cfg.Pages,
		nextTxnID: 1,
		tailTxn:   1,
	}
	if reg := metrics.Resolve(cfg.Metrics); reg != nil {
		j.obs = jbdObs{
			commits:        reg.Counter("jbd/commits"),
			checkpoints:    reg.Counter("jbd/checkpoints"),
			conflictParks:  reg.Counter("jbd/conflict.parks"),
			conflictBlocks: reg.Counter("jbd/conflict.blocks"),
			ckptBacklog:    reg.Gauge("jbd/ckpt.backlog"),
		}
	}
	j.relJD = func(_ sim.Time, r *block.Request) { j.reqPool.Put(r) }
	j.running = j.newTxn()
	switch cfg.Mode {
	case ModeDual:
		k.Spawn("jbd/commit", j.dualCommitThread)
		k.Spawn("jbd/flush", j.dualFlushThread)
	case ModeOptFS:
		k.Spawn("jbd/commit", j.optfsCommitThread)
		if k.CallbackMode() {
			// The delayed-durability timer is pure reactive work: run it as
			// a run-to-completion handler on callback kernels.
			k.SpawnHandler("jbd/delayflush", j.delayedFlushStep)
		} else {
			k.Spawn("jbd/delayflush", j.optfsDelayedFlush)
		}
	default:
		k.Spawn("jbd/jbd2", j.jbd2Thread)
	}
	k.Spawn("jbd/checkpoint", j.checkpointThread)
	return j
}

// Config returns the journal configuration.
func (j *Journal) Config() Config { return j.cfg }

// Stats returns cumulative statistics.
func (j *Journal) Stats() Stats { return j.stats }

// FreePages returns the free journal slots.
func (j *Journal) FreePages() int { return j.freePages }

// Committing returns the number of transactions currently in flight.
func (j *Journal) Committing() int { return len(j.committing) }

// RunningBuffers returns the number of buffers in the running transaction.
func (j *Journal) RunningBuffers() int { return len(j.running.buffers) }

func (j *Journal) newTxn() *Txn {
	t := &Txn{id: j.nextTxnID, state: StateRunning, k: j.k}
	j.nextTxnID++
	return t
}

func (j *Journal) wake(p *sim.Proc) {
	if j.cfg.WakeLatency > 0 {
		p.Advance(j.cfg.WakeLatency)
	}
}

// DirtyBuffer records a new snapshot of buf into the running transaction.
// It implements the page-conflict rules of §4.3: if the buffer belongs to a
// committing transaction, a JBD2 writer blocks until that transaction
// finishes, while a Dual-Mode writer parks the buffer on the conflict-page
// list and continues.
func (j *Journal) DirtyBuffer(p *sim.Proc, buf *Buffer, snapshot any) {
	buf.Data = snapshot
	if buf.inRunning || buf.conflict {
		return
	}
	if buf.owner != nil {
		if j.cfg.Mode == ModeDual {
			j.stats.ConflictParked++
			j.obs.conflictParks.Inc()
			buf.conflict = true
			j.conflictList = append(j.conflictList, buf)
			return
		}
		j.stats.ConflictBlocks++
		j.obs.conflictBlocks.Inc()
		target := StateDurable
		if !j.cfg.BarrierMount || j.cfg.Mode == ModeOptFS {
			// nobarrier mounts and OptFS release frozen buffers at commit
			// completion; only a barrier-mounted JBD2 holds them to
			// durability (its commit *is* transfer-and-flush).
			target = StateCommitted
		}
		for buf.owner != nil && buf.owner.state < target {
			t := buf.owner
			if target == StateDurable {
				t.durableWaiters = append(t.durableWaiters, p)
			} else {
				t.committedWaiters = append(t.committedWaiters, p)
			}
			p.Suspend()
			j.wake(p)
		}
	}
	buf.owner = nil
	buf.inRunning = true
	j.running.buffers = append(j.running.buffers, buf)
}

// RegisterOrderedData attaches an ordered-mode data write to the running
// transaction: the commit must not write JD until this request has been
// transferred (JBD2) or has been dispatched in an earlier epoch (Dual).
func (j *Journal) RegisterOrderedData(r *block.Request) {
	j.running.dataDeps = append(j.running.dataDeps, r)
}

// freeze snapshots the running transaction's buffers and replaces the
// running transaction. The caller must have ensured the conflict-page list
// is empty, so every buffer destined for this transaction has joined it.
func (j *Journal) freeze(t *Txn) {
	t.state = StateCommitting
	for _, b := range t.buffers {
		data := b.Data
		if b.Snapshot != nil {
			data = b.Snapshot()
		}
		t.frozen = append(t.frozen, logged{home: b.Home, data: data})
		b.owner = t
		b.inRunning = false
	}
	j.running = j.newTxn()
	j.committing = append(j.committing, t)
	if len(j.committing) > j.stats.MaxCommitting {
		j.stats.MaxCommitting = len(j.committing)
	}
}

// closeRunning hands the running transaction to the commit engine. force
// commits even an empty transaction (epoch delimiter). Returns nil if there
// was nothing to commit.
//
// JBD2/OptFS freeze immediately: their conflict rule blocks writers, so the
// conflict list is always empty here. Dual mode only *requests* the commit;
// the commit thread freezes after the conflict-page list drains (§4.3), so
// parked buffers — including the caller's own metadata — always land in
// the transaction the caller waits on.
func (j *Journal) closeRunning(p *sim.Proc, force bool) *Txn {
	t := j.running
	if t.Empty() && !force {
		return nil
	}
	t.forced = t.forced || force
	if j.cfg.Mode == ModeDual {
		if !t.commitRequested {
			t.commitRequested = true
			j.commitQ.Put(t)
		}
		return t
	}
	j.freeze(t)
	j.commitQ.Put(t)
	return t
}

// CommitAndWait closes the running transaction and blocks until it is
// durable (or merely committed, under nobarrier mounts). This is the
// fsync() journal path.
//
// A durability caller must commit even when the running transaction is
// empty but the Dual-Mode conflict-page list is not: the caller's newest
// metadata snapshot may live only on that list (parked behind a committing
// transaction, §4.3), and skipping the commit would let fsync return with
// the snapshot never journaled — it would wait on the *older* committing
// transaction instead. The forced commit absorbs the parked buffers when
// the commit thread drains the list before freezing. Ordering-only callers
// (CommitOrdering) deliberately keep the lazy path: their parked pages ride
// a later commit, which preserves the deep fbarrier commit pipeline
// (Fig. 12) at no durability cost.
func (j *Journal) CommitAndWait(p *sim.Proc) *Txn { return j.CommitAndWaitT(p, reqtrace.Ctx{}) }

// CommitAndWaitT is CommitAndWait carrying a trace context; the context is
// attached to the transaction the caller ends up waiting on (first-wins),
// so the commit engine's dispatch stamps land on the caller's trace.
func (j *Journal) CommitAndWaitT(p *sim.Proc, tc reqtrace.Ctx) *Txn {
	t := j.closeRunning(p, len(j.conflictList) > 0)
	if t == nil {
		// Nothing dirty: wait on the newest in-flight transaction, if any,
		// for EXT4's "fsync finds committed txn" semantics.
		if len(j.committing) == 0 {
			return nil
		}
		t = j.committing[len(j.committing)-1]
	}
	t.attachTrace(tc)
	t.wantDurable = true
	j.WaitTxn(p, t)
	return t
}

// AckedDurable returns the newest transaction id a durability wait
// (WaitTxn / CommitAndWait) has acknowledged. After a crash, journal
// replay must reach at least this id — anything less means a caller was
// told its transaction was durable when it was not.
func (j *Journal) AckedDurable() uint64 { return j.ackedDurable }

func (j *Journal) ackDurable(t *Txn) {
	if t.id > j.ackedDurable {
		j.ackedDurable = t.id
	}
}

// WaitTxn blocks until t reaches the mount's durability target. When the
// transaction is committed but no engine path will flush it (OptFS's
// delayed-durability window, or a Dual-Mode ordering transaction that
// already left the committing list), the caller issues the flush itself —
// the dsync behaviour.
func (j *Journal) WaitTxn(p *sim.Proc, t *Txn) {
	target := StateDurable
	if !j.cfg.BarrierMount {
		target = StateCommitted
	}
	t.wantDurable = true
	for t.state < target {
		// OptFS: durability waiters first wait for the commit (osync's
		// transfer wait), then flush directly below rather than stalling on
		// the delayed-durability timer.
		if j.cfg.Mode == ModeOptFS && target == StateDurable && t.state < StateCommitted {
			t.committedWaiters = append(t.committedWaiters, p)
			p.Suspend()
			j.wake(p)
			continue
		}
		if t.state == StateCommitted && target == StateDurable &&
			(j.cfg.Mode == ModeOptFS || t.retired) {
			j.retireCommitted(p)
			if t.state < StateDurable {
				t.state = StateDurable
				t.wakeDurable()
			}
			j.ackDurable(t)
			return
		}
		if target == StateDurable {
			t.durableWaiters = append(t.durableWaiters, p)
		} else {
			t.committedWaiters = append(t.committedWaiters, p)
		}
		p.Suspend()
		j.wake(p)
	}
	j.ackDurable(t)
}

// CommitOrdering closes the running transaction for an ordering-only caller
// (fbarrier / osync). In Dual mode it returns once the commit thread has
// dispatched the transaction; in OptFS mode once JD/JC are transferred.
// force commits an empty transaction as an epoch delimiter.
func (j *Journal) CommitOrdering(p *sim.Proc, force bool) *Txn {
	return j.CommitOrderingT(p, force, reqtrace.Ctx{})
}

// CommitOrderingT is CommitOrdering carrying a trace context (see
// CommitAndWaitT).
func (j *Journal) CommitOrderingT(p *sim.Proc, force bool, tc reqtrace.Ctx) *Txn {
	t := j.closeRunning(p, force)
	if t == nil {
		// OptFS: the caller's metadata rides an in-flight commit; osync
		// still waits for that commit's transfers (Wait-on-Transfer, §7).
		if j.cfg.Mode == ModeOptFS && len(j.committing) > 0 {
			t = j.committing[len(j.committing)-1]
		} else {
			return nil
		}
	}
	t.attachTrace(tc)
	for t.state < StateCommitted {
		t.committedWaiters = append(t.committedWaiters, p)
		p.Suspend()
		j.wake(p)
	}
	return t
}

// slotLPA maps a journal sequence number to its on-disk LPA.
func (j *Journal) slotLPA(seq uint64) uint64 {
	return j.cfg.Start + seq%uint64(j.cfg.Pages)
}

// reserve takes n journal pages. Dropping below the checkpoint low-water
// kicks the checkpointer early; the reservation itself only blocks when the
// journal is actually out of space.
func (j *Journal) reserve(p *sim.Proc, n int) {
	if j.freePages-n < j.cfg.CheckpointLow {
		j.ckptCond.Broadcast()
	}
	for j.freePages < n {
		j.stats.CheckpointForce++
		if j.cfg.Mode == ModeOptFS {
			// OptFS retires transactions lazily; under space pressure the
			// reserver forces the retirement so the checkpointer has work.
			j.retireCommitted(p)
		}
		j.ckptCond.Broadcast()
		j.spaceCond.Wait(p)
		j.wake(p)
	}
	j.freePages -= n
}
