// Package core assembles the full barrier-enabled IO stack — storage device,
// order-preserving block layer and journaling filesystem — into the named
// configurations the paper evaluates (§6):
//
//	EXT4-DR  fsync() on EXT4 (JBD2, barrier mount): full durability
//	EXT4-OD  fsync() on EXT4 with nobarrier: ordering only, no flush
//	BFS-DR   fsync() on BarrierFS (Dual-Mode journaling)
//	BFS-OD   fbarrier() on BarrierFS: ordering only
//	OptFS    osync(): ordering via Wait-on-Transfer, delayed durability
//
// A Stack is the unit every experiment and example builds on.
package core

import (
	"repro/internal/blkmq"
	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/fs"
	"repro/internal/jbd"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// SchedKind selects the base IO scheduler under the epoch scheduler.
type SchedKind int

// Base schedulers.
const (
	SchedNOOP SchedKind = iota
	SchedCFQ
	SchedDeadline
)

// Profile names a complete stack configuration.
type Profile struct {
	Name   string
	Device device.Config
	FS     fs.Options
	Sched  SchedKind
	// Relaxed selects the ordering-only sync calls (fbarrier /
	// fdatabarrier) in workloads that honor it: the "-OD" configurations.
	Relaxed bool
	// DispatchOverhead is the block-layer per-command dispatch cost (tD).
	DispatchOverhead sim.Duration
	// BarrierAsCommand selects the §3.2 alternative barrier encoding
	// (standalone command instead of write flag) for ablation studies.
	BarrierAsCommand bool
	// MQQueues selects the multi-queue block layer (internal/blkmq) with
	// that many hardware dispatch queues; 0 keeps the single-queue Layer.
	// With MQ, ordered/barrier traffic stays on stream 0 (the journal's
	// ordering domain) while orderless writeback scatters over per-PID data
	// streams, so background IO bypasses foreground barriers.
	MQQueues int
	// Metrics is an explicit observability registry for the whole stack;
	// nil falls back to the process-wide live registry (metrics.SetLive).
	// NewStack forwards the resolved registry to every layer and attaches
	// the kernel's dispatch stats to it.
	Metrics *metrics.Registry
	// Retry arms the block layer's bounded command retry (media-fault
	// tolerance); nil — the default — propagates device errors to the
	// filesystem on first completion.
	Retry *block.RetryPolicy
}

// EXT4DR is plain EXT4 with full durability (transfer-and-flush).
func EXT4DR(dev device.Config) Profile {
	return tune(Profile{
		Name: "EXT4-DR", Device: dev,
		FS:               fs.DefaultOptions(jbd.ModeJBD2),
		DispatchOverhead: 2 * sim.Microsecond,
	})
}

// EXT4OD is EXT4 mounted nobarrier: ordering only, exposed to reordering.
func EXT4OD(dev device.Config) Profile {
	p := EXT4DR(dev)
	p.Name = "EXT4-OD"
	p.FS.Journal.BarrierMount = false
	p.Relaxed = true
	return p
}

// BFSDR is BarrierFS with durability guarantees (fsync/fdatasync).
func BFSDR(dev device.Config) Profile {
	return tune(Profile{
		Name: "BFS-DR", Device: dev,
		FS:               fs.DefaultOptions(jbd.ModeDual),
		DispatchOverhead: 2 * sim.Microsecond,
	})
}

// BFSOD is BarrierFS with ordering guarantees (fbarrier/fdatabarrier).
func BFSOD(dev device.Config) Profile {
	p := BFSDR(dev)
	p.Name = "BFS-OD"
	p.Relaxed = true
	return p
}

// EXT4MQ is EXT4-DR on the multi-queue block layer: full durability with
// per-stream epochs and four hardware dispatch queues.
func EXT4MQ(dev device.Config) Profile {
	p := EXT4DR(dev)
	p.Name = "EXT4-MQ"
	p.MQQueues = 4
	return p
}

// BFSMQ is BFS-DR on the multi-queue block layer.
func BFSMQ(dev device.Config) Profile {
	p := BFSDR(dev)
	p.Name = "BFS-MQ"
	p.MQQueues = 4
	return p
}

// OptFS is the OptFS baseline: osync()-style ordering-only journaling.
func OptFS(dev device.Config) Profile {
	return tune(Profile{
		Name: "OptFS", Device: dev,
		FS:               fs.DefaultOptions(jbd.ModeOptFS),
		Relaxed:          true,
		DispatchOverhead: 2 * sim.Microsecond,
	})
}

// tune applies platform-dependent host costs: mobile SoCs pay more per
// syscall, wake-up and dispatch than the server parts (§6.1).
func tune(p Profile) Profile {
	if p.Device.Mobile {
		p.FS.SyscallCPU = 6 * sim.Microsecond
		p.FS.WakeLatency = 60 * sim.Microsecond
		p.FS.Journal.WakeLatency = 60 * sim.Microsecond
		p.DispatchOverhead = 6 * sim.Microsecond
	}
	return p
}

// Profiles returns the standard five configurations over a device.
func Profiles(dev func() device.Config) []Profile {
	return []Profile{
		EXT4DR(dev()), BFSDR(dev()), OptFS(dev()), EXT4OD(dev()), BFSOD(dev()),
	}
}

// Stack is a fully wired IO stack.
type Stack struct {
	Profile Profile
	K       *sim.Kernel
	Dev     *device.Device
	// Layer is the single-queue block layer; nil on MQ profiles.
	Layer *block.Layer
	// MQ is the multi-queue block layer; nil on single-queue profiles.
	MQ *blkmq.MQ
	// Front is whichever block-layer front-end the filesystem mounts on.
	Front block.Submitter
	FS    *fs.FS
}

// NewStack builds a stack on kernel k.
func NewStack(k *sim.Kernel, prof Profile) *Stack {
	reg := metrics.Resolve(prof.Metrics)
	if reg != nil {
		k.AttachStats(reg.KernelStats())
		if prof.Device.Metrics == nil {
			prof.Device.Metrics = reg
		}
		if prof.FS.Metrics == nil {
			prof.FS.Metrics = reg
		}
	}
	dev := device.New(k, prof.Device)
	mkSched := func() block.Scheduler {
		switch prof.Sched {
		case SchedCFQ:
			return block.NewCFQ()
		case SchedDeadline:
			return block.NewDeadline(func() sim.Time { return k.Now() }, 0)
		default:
			return block.NewNOOP()
		}
	}
	s := &Stack{Profile: prof, K: k, Dev: dev}
	if prof.MQQueues > 0 {
		s.MQ = blkmq.New(k, dev, blkmq.Config{
			HWQueues:         prof.MQQueues,
			DispatchOverhead: prof.DispatchOverhead,
			BaseSched:        mkSched,
			SpreadOrderless:  true,
			BarrierAsCommand: prof.BarrierAsCommand,
			Metrics:          reg,
			Retry:            prof.Retry,
		})
		s.Front = s.MQ
	} else {
		s.Layer = block.NewLayer(k, dev, block.NewEpochScheduler(mkSched()), block.LayerConfig{
			DispatchOverhead: prof.DispatchOverhead,
			BarrierAsCommand: prof.BarrierAsCommand,
			Metrics:          reg,
			Retry:            prof.Retry,
		})
		s.Front = s.Layer
	}
	s.FS = fs.New(k, s.Front, prof.FS)
	return s
}

// Sync invokes the profile's durability-or-ordering call on the file:
// fsync for the -DR profiles, fbarrier (osync) for the relaxed ones.
func (s *Stack) Sync(p *sim.Proc, i *fs.Inode) {
	if s.Profile.Relaxed {
		s.FS.Fbarrier(p, i)
	} else {
		s.FS.Fsync(p, i)
	}
}

// Datasync invokes fdatasync or fdatabarrier depending on the profile.
func (s *Stack) Datasync(p *sim.Proc, i *fs.Inode) {
	if s.Profile.Relaxed {
		s.FS.Fdatabarrier(p, i)
	} else {
		s.FS.Fdatasync(p, i)
	}
}

// Crash power-fails the device.
func (s *Stack) Crash() { s.Dev.Crash() }

// RecoverView restores the device and returns a recovered filesystem view
// for verification, along with the recovered device.
func (s *Stack) RecoverView(p *sim.Proc) (*fs.View, *device.Device) {
	d2 := device.Recover(p, s.Dev)
	return fs.Recover(d2.DurableData, s.Profile.FS.Journal), d2
}
