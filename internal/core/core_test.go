package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/jbd"
	"repro/internal/sim"
)

func TestProfileConstructors(t *testing.T) {
	cases := []struct {
		prof    Profile
		name    string
		mode    jbd.Mode
		barrier bool
		relaxed bool
	}{
		{EXT4DR(device.PlainSSD()), "EXT4-DR", jbd.ModeJBD2, true, false},
		{EXT4OD(device.PlainSSD()), "EXT4-OD", jbd.ModeJBD2, false, true},
		{BFSDR(device.PlainSSD()), "BFS-DR", jbd.ModeDual, true, false},
		{BFSOD(device.PlainSSD()), "BFS-OD", jbd.ModeDual, true, true},
		{OptFS(device.PlainSSD()), "OptFS", jbd.ModeOptFS, true, true},
	}
	for _, c := range cases {
		if c.prof.Name != c.name {
			t.Errorf("name = %q, want %q", c.prof.Name, c.name)
		}
		if c.prof.FS.Journal.Mode != c.mode {
			t.Errorf("%s: mode = %v, want %v", c.name, c.prof.FS.Journal.Mode, c.mode)
		}
		if c.prof.FS.Journal.BarrierMount != c.barrier {
			t.Errorf("%s: barrier mount = %v", c.name, c.prof.FS.Journal.BarrierMount)
		}
		if c.prof.Relaxed != c.relaxed {
			t.Errorf("%s: relaxed = %v", c.name, c.prof.Relaxed)
		}
	}
	if got := len(Profiles(device.PlainSSD)); got != 5 {
		t.Errorf("Profiles() = %d entries", got)
	}
}

func TestMobileTuning(t *testing.T) {
	ufs := BFSDR(device.UFS())
	ssd := BFSDR(device.PlainSSD())
	if ufs.FS.WakeLatency <= ssd.FS.WakeLatency {
		t.Error("mobile profile should charge higher wake latency")
	}
	if ufs.DispatchOverhead <= ssd.DispatchOverhead {
		t.Error("mobile profile should charge higher dispatch overhead")
	}
}

func TestStackEndToEnd(t *testing.T) {
	for _, mk := range []func(device.Config) Profile{EXT4DR, BFSDR, OptFS, EXT4OD, BFSOD} {
		prof := mk(device.UFS())
		k := sim.NewKernel()
		s := NewStack(k, prof)
		done := false
		k.Spawn("app", func(p *sim.Proc) {
			f, err := s.FS.Create(p, s.FS.Root(), "e2e")
			if err != nil {
				t.Errorf("%s: %v", prof.Name, err)
				return
			}
			s.FS.Write(p, f, 0)
			s.Sync(p, f)
			s.FS.Write(p, f, 1)
			s.Datasync(p, f)
			done = true
		})
		k.Run()
		k.Close()
		if !done {
			t.Errorf("%s: end-to-end flow did not finish", prof.Name)
		}
	}
}

func TestStackSchedulerSelection(t *testing.T) {
	for _, sched := range []SchedKind{SchedNOOP, SchedCFQ, SchedDeadline} {
		prof := BFSDR(device.UFS())
		prof.Sched = sched
		k := sim.NewKernel()
		s := NewStack(k, prof)
		ok := false
		k.Spawn("app", func(p *sim.Proc) {
			f, _ := s.FS.Create(p, s.FS.Root(), "x")
			s.FS.Write(p, f, 0)
			s.FS.Fsync(p, f)
			ok = true
		})
		k.Run()
		k.Close()
		if !ok {
			t.Errorf("scheduler %d: fsync did not complete", sched)
		}
	}
}

func TestStackCrashRecoverView(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	s := NewStack(k, BFSDR(device.UFS()))
	k.Spawn("app", func(p *sim.Proc) {
		f, _ := s.FS.Create(p, s.FS.Root(), "keep")
		s.FS.Write(p, f, 0)
		s.FS.Fsync(p, f)
		s.Crash()
		view, d2 := s.RecoverView(p)
		if d2 == nil || view == nil {
			t.Fatal("recovery returned nils")
		}
		root, ok := view.Root(s.FS)
		if !ok {
			t.Fatal("root unrecoverable")
		}
		if _, ok := view.Lookup(root, "keep"); !ok {
			t.Error("fsynced file missing after crash+recover")
		}
	})
	k.Run()
}
