package nand

import (
	"testing"

	"repro/internal/sim"
)

func testGeo() Geometry {
	return Geometry{Channels: 2, WaysPerChannel: 2, BlocksPerChip: 8, PagesPerBlock: 16, PageSize: 4096}
}

func testTiming() Timing {
	return Timing{
		Program: 800 * sim.Microsecond,
		Read:    60 * sim.Microsecond,
		Erase:   3 * sim.Millisecond,
		BusXfer: 20 * sim.Microsecond,
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeo().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testGeo()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	g := testGeo()
	if g.Chips() != 4 || g.PagesPerChip() != 128 || g.TotalPages() != 512 {
		t.Errorf("derived sizes wrong: %d %d %d", g.Chips(), g.PagesPerChip(), g.TotalPages())
	}
}

func TestProgramAndRead(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	a := New(k, testGeo(), testTiming())
	var readBack PageMeta
	k.Spawn("host", func(p *sim.Proc) {
		done := sim.NewCond(k)
		a.Submit(&Request{
			Kind: OpProgram, Chip: 0, Block: 0, Page: 0,
			Meta: PageMeta{LPA: 42, Seq: 7}, Data: "payload",
			Done: func(at sim.Time, r *Request) { done.Signal() },
		})
		done.Wait(p)
		a.Submit(&Request{
			Kind: OpRead, Chip: 0, Block: 0, Page: 0,
			Done: func(at sim.Time, r *Request) {
				readBack = r.Meta
				if r.Data != "payload" {
					t.Errorf("data = %v", r.Data)
				}
				done.Signal()
			},
		})
		done.Wait(p)
	})
	k.Run()
	if readBack.LPA != 42 || readBack.Seq != 7 {
		t.Errorf("read meta = %+v", readBack)
	}
	if got := a.Stats(); got.Programs != 1 || got.Reads != 1 {
		t.Errorf("stats = %+v", got)
	}
}

func TestProgramTiming(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	tm := testTiming()
	a := New(k, testGeo(), tm)
	var doneAt sim.Time
	k.Spawn("host", func(p *sim.Proc) {
		a.Submit(&Request{Kind: OpProgram, Chip: 0, Block: 0, Page: 0,
			Done: func(at sim.Time, r *Request) { doneAt = at }})
	})
	k.Run()
	want := sim.Time(tm.BusXfer + tm.Program)
	if doneAt != want {
		t.Errorf("program completed at %v, want %v", doneAt, want)
	}
}

func TestChannelParallelism(t *testing.T) {
	// Two chips on different channels program fully in parallel; two chips
	// on the same channel serialize only the bus transfer.
	k := sim.NewKernel()
	defer k.Close()
	tm := testTiming()
	a := New(k, testGeo(), tm) // chips 0,2 on ch0; 1,3 on ch1 (id%channels)
	var last sim.Time
	count := 0
	done := func(at sim.Time, r *Request) {
		count++
		if at > last {
			last = at
		}
	}
	k.Spawn("host", func(p *sim.Proc) {
		// chips 0 and 1: different channels.
		a.Submit(&Request{Kind: OpProgram, Chip: 0, Block: 0, Page: 0, Done: done})
		a.Submit(&Request{Kind: OpProgram, Chip: 1, Block: 0, Page: 0, Done: done})
	})
	k.Run()
	if count != 2 {
		t.Fatalf("completions = %d", count)
	}
	want := sim.Time(tm.BusXfer + tm.Program)
	if last != want {
		t.Errorf("parallel programs finished at %v, want %v", last, want)
	}

	// Same channel: bus serializes, programs overlap.
	k2 := sim.NewKernel()
	defer k2.Close()
	a2 := New(k2, testGeo(), tm)
	last = 0
	k2.Spawn("host", func(p *sim.Proc) {
		a2.Submit(&Request{Kind: OpProgram, Chip: 0, Block: 0, Page: 0, Done: done})
		a2.Submit(&Request{Kind: OpProgram, Chip: 2, Block: 0, Page: 0, Done: done}) // ch0 too
	})
	k2.Run()
	want = sim.Time(2*tm.BusXfer + tm.Program)
	if last != want {
		t.Errorf("same-channel programs finished at %v, want %v (pipelined)", last, want)
	}
}

func TestInOrderProgramEnforced(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	a := New(k, testGeo(), testTiming())
	var gotErr error
	k.Spawn("host", func(p *sim.Proc) {
		a.Submit(&Request{Kind: OpProgram, Chip: 0, Block: 0, Page: 1, // skips page 0
			Done: func(at sim.Time, r *Request) { gotErr = r.Err }})
	})
	k.Run()
	if gotErr == nil {
		t.Fatal("out-of-order program not rejected")
	}
	if a.Stats().Faults != 1 {
		t.Errorf("faults = %d", a.Stats().Faults)
	}
	if ok, _, _ := a.PageInfo(0, 0, 1); ok {
		t.Error("violating program still wrote the page")
	}
}

func TestEraseResetsBlock(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	a := New(k, testGeo(), testTiming())
	k.Spawn("host", func(p *sim.Proc) {
		c := sim.NewCond(k)
		for pg := 0; pg < 3; pg++ {
			a.Submit(&Request{Kind: OpProgram, Chip: 0, Block: 0, Page: pg,
				Done: func(at sim.Time, r *Request) { c.Signal() }})
			c.Wait(p)
		}
		if a.NextPage(0, 0) != 3 {
			t.Errorf("next = %d, want 3", a.NextPage(0, 0))
		}
		a.Submit(&Request{Kind: OpErase, Chip: 0, Block: 0,
			Done: func(at sim.Time, r *Request) { c.Signal() }})
		c.Wait(p)
		if a.NextPage(0, 0) != 0 {
			t.Errorf("next after erase = %d", a.NextPage(0, 0))
		}
		if ok, _, _ := a.PageInfo(0, 0, 0); ok {
			t.Error("page survived erase")
		}
		if a.BlockErases(0, 0) != 1 {
			t.Errorf("erases = %d", a.BlockErases(0, 0))
		}
		// Block is programmable again from page 0.
		a.Submit(&Request{Kind: OpProgram, Chip: 0, Block: 0, Page: 0,
			Done: func(at sim.Time, r *Request) { c.Signal() }})
		c.Wait(p)
	})
	k.Run()
}

func TestPowerFailureLosesInflight(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	tm := testTiming()
	a := New(k, testGeo(), tm)
	completions := 0
	k.Spawn("host", func(p *sim.Proc) {
		// Three sequential pages on one chip: ~20µs bus + 800µs program each.
		for pg := 0; pg < 3; pg++ {
			a.Submit(&Request{Kind: OpProgram, Chip: 0, Block: 0, Page: pg,
				Done: func(at sim.Time, r *Request) { completions++ }})
		}
		// Cut power while page 1 is programming.
		p.Sleep(1 * sim.Millisecond)
		a.Fail()
	})
	k.Run()
	if completions != 1 {
		t.Fatalf("completions = %d, want 1 (page 0 only)", completions)
	}
	ok0, _, _ := a.PageInfo(0, 0, 0)
	ok1, _, _ := a.PageInfo(0, 0, 1)
	if !ok0 || ok1 {
		t.Errorf("durability after crash: page0=%v page1=%v, want true,false", ok0, ok1)
	}
	if a.Stats().LostJobs == 0 {
		t.Error("lost jobs not counted")
	}
}

func TestRestoreRecomputesProgramPointer(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	a := New(k, testGeo(), testTiming())
	k.Spawn("host", func(p *sim.Proc) {
		c := sim.NewCond(k)
		for pg := 0; pg < 2; pg++ {
			a.Submit(&Request{Kind: OpProgram, Chip: 1, Block: 3, Page: pg,
				Done: func(at sim.Time, r *Request) { c.Signal() }})
			c.Wait(p)
		}
		a.Fail()
		p.Sleep(sim.Millisecond)
		a.Restore()
		if a.NextPage(1, 3) != 2 {
			t.Errorf("next after restore = %d, want 2", a.NextPage(1, 3))
		}
		// Continue programming where we left off.
		a.Submit(&Request{Kind: OpProgram, Chip: 1, Block: 3, Page: 2,
			Done: func(at sim.Time, r *Request) { c.Signal() }})
		c.Wait(p)
	})
	k.Run()
	if a.Stats().Programs != 3 {
		t.Errorf("programs = %d, want 3", a.Stats().Programs)
	}
}

func TestSubmitWhileFailedDropped(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	a := New(k, testGeo(), testTiming())
	k.Spawn("host", func(p *sim.Proc) {
		a.Fail()
		a.Submit(&Request{Kind: OpProgram, Chip: 0, Block: 0, Page: 0,
			Done: func(at sim.Time, r *Request) { t.Error("completion fired on failed array") }})
	})
	k.Run()
	if a.Stats().LostJobs != 1 {
		t.Errorf("lost = %d", a.Stats().LostJobs)
	}
}

func TestProgramScaleSlowsPrograms(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	tm := testTiming()
	a := New(k, testGeo(), tm)
	a.ProgramScale = 1.05
	var doneAt sim.Time
	k.Spawn("host", func(p *sim.Proc) {
		a.Submit(&Request{Kind: OpProgram, Chip: 0, Block: 0, Page: 0,
			Done: func(at sim.Time, r *Request) { doneAt = at }})
	})
	k.Run()
	want := sim.Time(tm.BusXfer + tm.Program.Scale(1.05))
	if doneAt != want {
		t.Errorf("scaled program at %v, want %v", doneAt, want)
	}
}

func TestOpKindString(t *testing.T) {
	if OpProgram.String() != "program" || OpRead.String() != "read" || OpErase.String() != "erase" {
		t.Error("OpKind strings wrong")
	}
}
