// Package nand models a multi-channel/multi-way NAND flash array at page
// granularity. Each chip services program/read/erase jobs from its own
// queue; chips on the same channel share the channel bus for data transfer,
// so programs on different chips overlap (the parallelism the paper's Fig. 1
// sweep exercises) while bus transfers serialize.
//
// Real NAND constraints that matter for the reproduction are enforced:
// pages within a block must be programmed strictly in order, a page cannot
// be reprogrammed without an erase, and a power failure loses any program
// operation that has not completed — the physical basis of the FTL's
// LFS-style in-order crash recovery (§3.2 of the paper).
package nand

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Geometry describes the physical shape of the array.
type Geometry struct {
	Channels       int // independent channel buses
	WaysPerChannel int // chips per channel
	BlocksPerChip  int
	PagesPerBlock  int
	PageSize       int // bytes, informational (the simulator moves metadata, not payloads)
}

// Chips returns the total chip count.
func (g Geometry) Chips() int { return g.Channels * g.WaysPerChannel }

// PagesPerChip returns the number of pages on one chip.
func (g Geometry) PagesPerChip() int { return g.BlocksPerChip * g.PagesPerBlock }

// TotalPages returns the number of pages in the whole array.
func (g Geometry) TotalPages() int { return g.Chips() * g.PagesPerChip() }

// Validate reports a descriptive error for nonsensical geometry.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.WaysPerChannel <= 0 || g.BlocksPerChip <= 0 || g.PagesPerBlock <= 0 {
		return fmt.Errorf("nand: invalid geometry %+v", g)
	}
	return nil
}

// Timing holds the operation latencies of one page-sized unit.
type Timing struct {
	Program sim.Duration // cell program time (tPROG)
	Read    sim.Duration // array read time (tR)
	Erase   sim.Duration // block erase time (tBERS)
	BusXfer sim.Duration // channel bus transfer of one page
}

// PageMeta is the out-of-band metadata stored with every programmed page.
// The FTL uses it to rebuild the mapping table during recovery.
type PageMeta struct {
	LPA uint64 // logical page address
	Seq uint64 // monotonically increasing log sequence number
}

// OpKind selects the NAND operation.
type OpKind int

// NAND operations.
const (
	OpProgram OpKind = iota
	OpRead
	OpErase
)

func (o OpKind) String() string {
	switch o {
	case OpProgram:
		return "program"
	case OpRead:
		return "read"
	case OpErase:
		return "erase"
	}
	return "invalid"
}

// Request is one NAND job. Done, if non-nil, is invoked from the chip's
// process when the operation completes; it never fires for jobs lost to a
// power failure.
type Request struct {
	Kind  OpKind
	Chip  int
	Block int
	Page  int // ignored for erase
	Meta  PageMeta
	Data  any
	Done  func(at sim.Time, r *Request)

	// Err is set before Done fires when the operation violated a NAND
	// constraint (e.g. out-of-order program) or hit an injected media
	// error (fault.ErrUNC). Such operations return no data.
	Err error

	// NoFault exempts the request from media-error injection: device-
	// internal reads (GC relocation, recovery scans) are protected by
	// on-die parity in real drives and must never silently lose data.
	// GC-interference latency scaling still applies.
	NoFault bool

	gen uint64 // power-cycle generation at submit time
}

type pageState struct {
	programmed bool
	meta       PageMeta
	data       any
}

type blockState struct {
	next   int // next programmable page index
	erases int
	pages  []pageState
}

// chip phases of the handler state machine. Each phase boundary is one
// blocking point of the goroutine serve loop; everything between executes
// run-to-completion inside a single activation.
const (
	chipIdle     = iota // fetching the next job from the queue
	chipPgmBus          // acquiring the channel bus for the data transfer
	chipPgmXfer         // bus transfer in progress
	chipPgmCell         // cell program (tPROG) in progress
	chipReadCell        // array read (tR) in progress
	chipReadBus         // acquiring the channel bus for the read-out
	chipReadXfer        // read-out bus transfer in progress
	chipErase           // block erase (tBERS) in progress
)

type chip struct {
	id     int
	ch     int
	q      *sim.Queue[*Request]
	blocks []blockState
	proc   *sim.Proc

	phase int      // handler state machine position
	cur   *Request // job in service (handler mode)
}

// Stats are cumulative operation counts.
type Stats struct {
	Programs int64
	Reads    int64
	Erases   int64
	LostJobs int64 // jobs dropped by power failure
	Faults   int64 // constraint violations (FTL bugs)
}

// Array is the flash array. All methods must be called from sim processes
// (or before the kernel runs).
type Array struct {
	k      *sim.Kernel
	geo    Geometry
	timing Timing
	buses  []*sim.Semaphore
	chips  []*chip
	gen    uint64 // incremented on every power failure
	failed bool

	// ProgramScale inflates program latency; the device layer uses it to
	// model the 5% barrier-overhead penalty of the paper's plain-SSD setup.
	ProgramScale float64

	// fault, when set, injects media read errors, read-retry latency,
	// transient program retries and GC-interference scaling. Nil (the
	// default) makes zero draws and changes nothing.
	fault *fault.Injector

	stats Stats
}

// SetFault installs a fault injector. Must be called before the kernel
// runs; nil disables injection.
func (a *Array) SetFault(in *fault.Injector) { a.fault = in }

// New builds the array and spawns one service process per chip.
func New(k *sim.Kernel, geo Geometry, timing Timing) *Array {
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	a := &Array{k: k, geo: geo, timing: timing, ProgramScale: 1.0}
	a.buses = make([]*sim.Semaphore, geo.Channels)
	for i := range a.buses {
		a.buses[i] = sim.NewSemaphore(k, 1)
	}
	for id := 0; id < geo.Chips(); id++ {
		c := &chip{id: id, ch: id % geo.Channels, q: sim.NewQueue[*Request](k)}
		c.blocks = make([]blockState, geo.BlocksPerChip)
		for b := range c.blocks {
			c.blocks[b].pages = make([]pageState, geo.PagesPerBlock)
		}
		a.chips = append(a.chips, c)
		if k.CallbackMode() {
			c.proc = k.SpawnHandlerIdx("nand/chip", id, func(h *sim.Proc) { a.chipStep(h, c) })
		} else {
			c.proc = k.SpawnIdx("nand/chip", id, func(p *sim.Proc) { a.serve(p, c) })
		}
	}
	return a
}

// Geometry returns the array geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// Timing returns the array timing.
func (a *Array) Timing() Timing { return a.timing }

// Stats returns cumulative operation counts.
func (a *Array) Stats() Stats { return a.stats }

// QueueDepth returns the number of jobs queued for chip id.
func (a *Array) QueueDepth(chipID int) int { return a.chips[chipID].q.Len() }

// Submit enqueues a job on its chip. Submissions during a power failure are
// dropped silently, like DMA into a dead device.
func (a *Array) Submit(r *Request) {
	if r.Chip < 0 || r.Chip >= len(a.chips) {
		panic(fmt.Sprintf("nand: chip %d out of range", r.Chip))
	}
	if a.failed {
		a.stats.LostJobs++
		return
	}
	r.gen = a.gen
	a.chips[r.Chip].q.Put(r)
}

// serve is the blocking (goroutine-proc) chip service loop. It is the
// semantic oracle for chipStep: the reference kernel runs this code, the
// optimized kernel runs the state machine, and the golden trace tests pin
// their dispatch sequences byte-identical.
func (a *Array) serve(p *sim.Proc, c *chip) {
	for {
		r, ok := c.q.Get(p)
		if !ok {
			return
		}
		if r.gen != a.gen || a.failed {
			a.stats.LostJobs++
			continue
		}
		switch r.Kind {
		case OpProgram:
			a.doProgram(p, c, r)
		case OpRead:
			a.doRead(p, c, r)
		case OpErase:
			a.doErase(p, c, r)
		}
	}
}

// programLatency returns the cell-program time for one attempt starting
// at now: the base tPROG (with the device's ProgramScale), inflated by
// injected GC interference and transient in-chip retries (each retry
// re-pays the cell time). With no injector this is exactly the base term.
func (a *Array) programLatency(now sim.Time) sim.Duration {
	d := a.timing.Program.Scale(a.ProgramScale)
	if a.fault != nil {
		d = d.Scale(a.fault.GCProgramScale(now))
		if n := a.fault.ProgramRetries(); n > 0 {
			d += d.Scale(float64(n))
		}
	}
	return d
}

// readLatency returns the array-read time for an attempt starting at now
// plus any injected read-retry ladder latency, and the attempt's media
// error (fault.ErrUNC) if the retries did not correct it. NoFault
// requests skip the error draws but still see GC-interference scaling.
func (a *Array) readLatency(now sim.Time, r *Request) (sim.Duration, error) {
	if a.fault == nil {
		return a.timing.Read, nil
	}
	var extra sim.Duration
	var err error
	if !r.NoFault {
		extra, err = a.fault.Read()
	}
	return (a.timing.Read + extra).Scale(a.fault.GCReadScale(now)), err
}

func (a *Array) doProgram(p *sim.Proc, c *chip, r *Request) {
	blk := &c.blocks[r.Block]
	if r.Page != blk.next {
		r.Err = fmt.Errorf("nand: chip %d block %d: program page %d violates in-order rule (next=%d)",
			c.id, r.Block, r.Page, blk.next)
		a.stats.Faults++
		if r.Done != nil {
			r.Done(p.Now(), r)
		}
		return
	}
	bus := a.buses[c.ch]
	bus.Acquire(p, 1)
	p.Advance(a.timing.BusXfer)
	bus.Release(1)
	p.Advance(a.programLatency(p.Now()))
	if r.gen != a.gen || a.failed {
		// Power failed mid-program: the page is lost, not half-written in
		// any observable way (we model clean page loss; the recovery scan
		// treats it as unprogrammed).
		a.stats.LostJobs++
		return
	}
	blk.pages[r.Page] = pageState{programmed: true, meta: r.Meta, data: r.Data}
	blk.next++
	a.stats.Programs++
	if r.Done != nil {
		r.Done(p.Now(), r)
	}
}

func (a *Array) doRead(p *sim.Proc, c *chip, r *Request) {
	d, ferr := a.readLatency(p.Now(), r)
	r.Err = ferr
	p.Advance(d)
	bus := a.buses[c.ch]
	bus.Acquire(p, 1)
	p.Advance(a.timing.BusXfer)
	bus.Release(1)
	if r.gen != a.gen || a.failed {
		a.stats.LostJobs++
		return
	}
	if r.Err == nil {
		ps := c.blocks[r.Block].pages[r.Page]
		r.Meta, r.Data = ps.meta, ps.data
	}
	a.stats.Reads++
	if r.Done != nil {
		r.Done(p.Now(), r)
	}
}

func (a *Array) doErase(p *sim.Proc, c *chip, r *Request) {
	p.Advance(a.timing.Erase)
	if r.gen != a.gen || a.failed {
		a.stats.LostJobs++
		return
	}
	blk := &c.blocks[r.Block]
	blk.next = 0
	blk.erases++
	for i := range blk.pages {
		blk.pages[i] = pageState{}
	}
	a.stats.Erases++
	if r.Done != nil {
		r.Done(p.Now(), r)
	}
}

// chipStep is the run-to-completion chip service handler: one blocking
// point of serve per phase, everything in between executed inline on the
// dispatching goroutine. It mirrors serve/doProgram/doRead/doErase
// statement for statement — same queue waits, same bus semaphore
// iterations, same timing advances, same generation checks — so its
// dispatch trace is byte-identical to the goroutine loop's.
func (a *Array) chipStep(h *sim.Proc, c *chip) {
	for {
		switch c.phase {
		case chipIdle:
			r, got, closed := c.q.GetOrPark(h)
			if closed {
				h.Complete()
				return
			}
			if !got {
				return // parked on the queue
			}
			if r.gen != a.gen || a.failed {
				a.stats.LostJobs++
				continue
			}
			c.cur = r
			switch r.Kind {
			case OpProgram:
				blk := &c.blocks[r.Block]
				if r.Page != blk.next {
					r.Err = fmt.Errorf("nand: chip %d block %d: program page %d violates in-order rule (next=%d)",
						c.id, r.Block, r.Page, blk.next)
					a.stats.Faults++
					c.cur = nil
					if r.Done != nil {
						r.Done(h.Now(), r)
					}
					continue
				}
				c.phase = chipPgmBus
			case OpRead:
				c.phase = chipReadCell
				d, ferr := a.readLatency(h.Now(), r)
				r.Err = ferr
				if d > 0 {
					h.WakeIn(d)
					return
				}
			case OpErase:
				c.phase = chipErase
				if d := a.timing.Erase; d > 0 {
					h.WakeIn(d)
					return
				}
			}

		case chipPgmBus:
			if !a.buses[c.ch].AcquireOrPark(h, 1) {
				return // parked on the bus
			}
			c.phase = chipPgmXfer
			if d := a.timing.BusXfer; d > 0 {
				h.WakeIn(d)
				return
			}
		case chipPgmXfer:
			a.buses[c.ch].Release(1)
			c.phase = chipPgmCell
			if d := a.programLatency(h.Now()); d > 0 {
				h.WakeIn(d)
				return
			}
		case chipPgmCell:
			r := c.cur
			c.cur = nil
			c.phase = chipIdle
			if r.gen != a.gen || a.failed {
				// Power failed mid-program: clean page loss, as in doProgram.
				a.stats.LostJobs++
				continue
			}
			blk := &c.blocks[r.Block]
			blk.pages[r.Page] = pageState{programmed: true, meta: r.Meta, data: r.Data}
			blk.next++
			a.stats.Programs++
			if r.Done != nil {
				r.Done(h.Now(), r)
			}

		case chipReadCell:
			c.phase = chipReadBus
		case chipReadBus:
			if !a.buses[c.ch].AcquireOrPark(h, 1) {
				return
			}
			c.phase = chipReadXfer
			if d := a.timing.BusXfer; d > 0 {
				h.WakeIn(d)
				return
			}
		case chipReadXfer:
			a.buses[c.ch].Release(1)
			r := c.cur
			c.cur = nil
			c.phase = chipIdle
			if r.gen != a.gen || a.failed {
				a.stats.LostJobs++
				continue
			}
			if r.Err == nil {
				ps := c.blocks[r.Block].pages[r.Page]
				r.Meta, r.Data = ps.meta, ps.data
			}
			a.stats.Reads++
			if r.Done != nil {
				r.Done(h.Now(), r)
			}

		case chipErase:
			r := c.cur
			c.cur = nil
			c.phase = chipIdle
			if r.gen != a.gen || a.failed {
				a.stats.LostJobs++
				continue
			}
			blk := &c.blocks[r.Block]
			blk.next = 0
			blk.erases++
			for i := range blk.pages {
				blk.pages[i] = pageState{}
			}
			a.stats.Erases++
			if r.Done != nil {
				r.Done(h.Now(), r)
			}
		}
	}
}

// Fail simulates power loss: all queued and in-flight jobs are lost and no
// further completions fire until Restore.
func (a *Array) Fail() {
	a.failed = true
	a.gen++
}

// Restore re-energizes the array after Fail. Programmed state survives; the
// in-order program pointer of each block is recomputed from surviving pages
// so partially written blocks continue after their last programmed page
// (matching how the FTL's recovery reuses or seals partial segments).
func (a *Array) Restore() {
	a.failed = false
	for _, c := range a.chips {
		for b := range c.blocks {
			blk := &c.blocks[b]
			next := 0
			for next < len(blk.pages) && blk.pages[next].programmed {
				next++
			}
			blk.next = next
		}
	}
}

// Failed reports whether the array is currently powered off.
func (a *Array) Failed() bool { return a.failed }

// PageInfo returns the durable state of a page for recovery scans and
// verification: whether it is programmed, and if so its metadata and data.
func (a *Array) PageInfo(chipID, block, page int) (programmed bool, meta PageMeta, data any) {
	ps := a.chips[chipID].blocks[block].pages[page]
	return ps.programmed, ps.meta, ps.data
}

// BlockErases returns how many times a block has been erased (wear).
func (a *Array) BlockErases(chipID, block int) int {
	return a.chips[chipID].blocks[block].erases
}

// NextPage returns the in-order program pointer of a block.
func (a *Array) NextPage(chipID, block int) int {
	return a.chips[chipID].blocks[block].next
}
