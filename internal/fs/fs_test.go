package fs

import (
	"testing"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/jbd"
	"repro/internal/sim"
)

type env struct {
	k   *sim.Kernel
	dev *device.Device
	l   *block.Layer
	fs  *FS
}

func newEnv(mode jbd.Mode, barrier bool) *env {
	k := sim.NewKernel()
	cfg := device.UFS()
	cfg.QueueDepth = 16
	cfg.DMAPerPage = 10 * sim.Microsecond
	cfg.CmdOverhead = 2 * sim.Microsecond
	dev := device.New(k, cfg)
	l := block.NewLayer(k, dev, block.NewEpochScheduler(block.NewNOOP()), block.LayerConfig{
		DispatchOverhead: sim.Microsecond,
	})
	opts := DefaultOptions(mode)
	opts.Journal.BarrierMount = barrier
	opts.Journal.Pages = 256
	opts.Journal.CheckpointLow = 32
	f := New(k, l, opts)
	return &env{k: k, dev: dev, l: l, fs: f}
}

func (e *env) run(body func(p *sim.Proc)) {
	e.k.Spawn("app", body)
	e.k.Run()
}

func (e *env) close() { e.k.Close() }

func TestCreateLookupUnlink(t *testing.T) {
	e := newEnv(jbd.ModeJBD2, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		f, err := e.fs.Create(p, e.fs.Root(), "a.txt")
		if err != nil {
			t.Fatal(err)
		}
		if f.IsDir() {
			t.Error("file is a dir")
		}
		if got, ok := e.fs.Lookup(e.fs.Root(), "a.txt"); !ok || got != f {
			t.Error("lookup failed")
		}
		if _, err := e.fs.Create(p, e.fs.Root(), "a.txt"); err == nil {
			t.Error("duplicate create allowed")
		}
		if err := e.fs.Unlink(p, e.fs.Root(), "a.txt"); err != nil {
			t.Fatal(err)
		}
		if _, ok := e.fs.Lookup(e.fs.Root(), "a.txt"); ok {
			t.Error("lookup after unlink succeeded")
		}
		if err := e.fs.Unlink(p, e.fs.Root(), "a.txt"); err == nil {
			t.Error("double unlink allowed")
		}
	})
}

func TestMkdirNesting(t *testing.T) {
	e := newEnv(jbd.ModeJBD2, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		d, err := e.fs.Mkdir(p, e.fs.Root(), "dir")
		if err != nil {
			t.Fatal(err)
		}
		if !d.IsDir() {
			t.Fatal("mkdir made a file")
		}
		f, err := e.fs.Create(p, d, "nested")
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := e.fs.Lookup(d, "nested"); !ok || got != f {
			t.Error("nested lookup failed")
		}
		if _, err := e.fs.Create(p, f, "x"); err == nil {
			t.Error("create under a file allowed")
		}
	})
}

func TestWriteExtendsSizeAndAllocates(t *testing.T) {
	e := newEnv(jbd.ModeJBD2, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "f")
		e.fs.Write(p, f, 0)
		e.fs.Write(p, f, 3) // sparse
		if f.Size() != 4*PageSize {
			t.Errorf("size = %d", f.Size())
		}
		if f.DirtyPages() != 2 {
			t.Errorf("dirty = %d", f.DirtyPages())
		}
		if !f.MetaPending() {
			t.Error("allocating write did not dirty metadata")
		}
	})
}

func TestReadBackAfterSync(t *testing.T) {
	e := newEnv(jbd.ModeJBD2, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "f")
		e.fs.Write(p, f, 0)
		wantVer, _ := e.fs.Read(p, f, 0)
		e.fs.Fsync(p, f)
		// Evict by reaching through a fresh page read: drop the cache entry.
		delete(f.pages, 0)
		gotVer, ok := e.fs.Read(p, f, 0)
		if !ok || gotVer != wantVer {
			t.Errorf("read after sync = %d,%v want %d", gotVer, ok, wantVer)
		}
		if _, ok := e.fs.Read(p, f, 9); ok {
			t.Error("read of a hole succeeded")
		}
	})
}

func TestFsyncDurableAcrossCrashJBD2(t *testing.T) {
	testFsyncDurableAcrossCrash(t, jbd.ModeJBD2)
}

func TestFsyncDurableAcrossCrashDual(t *testing.T) {
	testFsyncDurableAcrossCrash(t, jbd.ModeDual)
}

func testFsyncDurableAcrossCrash(t *testing.T, mode jbd.Mode) {
	e := newEnv(mode, true)
	var ver int64
	var home uint64
	e.run(func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "precious")
		home = f.home
		e.fs.Write(p, f, 0)
		e.fs.Write(p, f, 1)
		e.fs.Fsync(p, f)
		ver, _ = e.fs.Read(p, f, 1)
	})
	e.dev.Crash()
	var view *View
	e.k.Spawn("rec", func(p *sim.Proc) {
		d2 := device.Recover(p, e.dev)
		view = Recover(d2.DurableData, e.fs.opts.Journal)
	})
	e.k.Run()
	defer e.close()
	root, ok := view.Root(e.fs)
	if !ok {
		t.Fatal("root not recovered")
	}
	meta, ok := view.Lookup(root, "precious")
	if !ok {
		t.Fatalf("fsync'd file lost after crash (%v)", mode)
	}
	if meta.Ino == 0 || meta.Size != 2*PageSize {
		t.Errorf("meta = %+v", meta)
	}
	if got, ok := view.PageVersion(meta, 1); !ok || got != ver {
		t.Errorf("page 1 version = %d,%v want %d", got, ok, ver)
	}
	if _, ok := view.MetaByHome(home); !ok {
		t.Error("inode home unreachable")
	}
}

func TestUnsyncedDataLostAfterCrash(t *testing.T) {
	e := newEnv(jbd.ModeJBD2, true)
	e.run(func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "ghost")
		e.fs.Write(p, f, 0)
		// no fsync
	})
	e.dev.Crash()
	var view *View
	e.k.Spawn("rec", func(p *sim.Proc) {
		d2 := device.Recover(p, e.dev)
		view = Recover(d2.DurableData, e.fs.opts.Journal)
	})
	e.k.Run()
	defer e.close()
	root, ok := view.Root(e.fs)
	if ok {
		if _, found := view.Lookup(root, "ghost"); found {
			t.Error("unsynced create survived crash (acceptable only if a commit ran; none should have)")
		}
	}
}

func TestFsyncDegradesToFdatasyncWithinJiffy(t *testing.T) {
	// Two writes to an allocated page within one jiffy: the second fsync
	// must find clean metadata and skip the journal commit (Fig. 11).
	e := newEnv(jbd.ModeDual, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "f")
		e.fs.Write(p, f, 0)
		e.fs.Fsync(p, f) // commits allocation
		commits := e.fs.Journal().Stats().Commits
		e.fs.Write(p, f, 0) // same jiffy, no alloc -> no metadata
		if f.MetaPending() {
			t.Fatal("overwrite within jiffy dirtied metadata")
		}
		e.fs.Fsync(p, f)
		if got := e.fs.Journal().Stats().Commits; got != commits {
			t.Errorf("degraded fsync committed a txn (%d -> %d)", commits, got)
		}
	})
}

func TestWriteAcrossJiffyDirtiesMetadata(t *testing.T) {
	e := newEnv(jbd.ModeDual, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "f")
		e.fs.Write(p, f, 0)
		e.fs.Fsync(p, f)
		p.Sleep(11 * sim.Millisecond) // cross a jiffy boundary
		e.fs.Write(p, f, 0)
		if !f.MetaPending() {
			t.Error("cross-jiffy overwrite left metadata clean")
		}
	})
}

func TestContextSwitchCounts(t *testing.T) {
	// The Fig. 11 structure: EXT4-DR fsync = 2 voluntary switches,
	// BFS-DR fsync (real commit) = 1, BFS fdatabarrier = 0.
	cases := []struct {
		name    string
		mode    jbd.Mode
		call    func(e *env, p *sim.Proc, f *Inode)
		want    int64
		preSync bool // fsync once first so the page is allocated
	}{
		{"EXT4-DR-commit", jbd.ModeJBD2, func(e *env, p *sim.Proc, f *Inode) { e.fs.Fsync(p, f) }, 2, false},
		{"BFS-DR-commit", jbd.ModeDual, func(e *env, p *sim.Proc, f *Inode) { e.fs.Fsync(p, f) }, 1, false},
		{"BFS-fdatabarrier", jbd.ModeDual, func(e *env, p *sim.Proc, f *Inode) { e.fs.Fdatabarrier(p, f) }, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := newEnv(c.mode, true)
			defer e.close()
			e.run(func(p *sim.Proc) {
				f, _ := e.fs.Create(p, e.fs.Root(), "f")
				e.fs.Write(p, f, 0)
				if c.preSync {
					e.fs.Fsync(p, f)
					e.fs.Write(p, f, 0) // same jiffy: no metadata
				}
				before := p.VoluntarySwitches()
				c.call(e, p, f)
				got := p.VoluntarySwitches() - before
				if got != c.want {
					t.Errorf("%s: %d voluntary switches, want %d", c.name, got, c.want)
				}
			})
		})
	}
}

func TestFbarrierFasterThanFsync(t *testing.T) {
	// fbarrier returns without waiting for any DMA or flush; its latency
	// must be a small fraction of fsync's.
	timeOf := func(mode jbd.Mode, call func(e *env, p *sim.Proc, f *Inode)) sim.Duration {
		e := newEnv(mode, true)
		defer e.close()
		var d sim.Duration
		e.run(func(p *sim.Proc) {
			f, _ := e.fs.Create(p, e.fs.Root(), "f")
			e.fs.Write(p, f, 0)
			t0 := p.Now()
			call(e, p, f)
			d = sim.Duration(p.Now() - t0)
		})
		return d
	}
	fsyncT := timeOf(jbd.ModeJBD2, func(e *env, p *sim.Proc, f *Inode) { e.fs.Fsync(p, f) })
	fbT := timeOf(jbd.ModeDual, func(e *env, p *sim.Proc, f *Inode) { e.fs.Fbarrier(p, f) })
	if fbT*5 > fsyncT {
		t.Errorf("fbarrier %v not clearly faster than EXT4 fsync %v", fbT, fsyncT)
	}
}

func TestFdatasyncSkipsTimestampOnlyCommit(t *testing.T) {
	e := newEnv(jbd.ModeJBD2, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "f")
		e.fs.Write(p, f, 0)
		e.fs.Fsync(p, f) // allocation committed
		p.Sleep(11 * sim.Millisecond)
		e.fs.Write(p, f, 0) // timestamp-only metadata
		commits := e.fs.Journal().Stats().Commits
		e.fs.Fdatasync(p, f)
		if got := e.fs.Journal().Stats().Commits; got != commits {
			t.Error("fdatasync committed a timestamp-only txn")
		}
		if !f.MetaPending() {
			t.Error("timestamp change should still be pending for a later fsync")
		}
	})
}

func TestFdatabarrierOrderingAcrossCrash(t *testing.T) {
	// The "Hello"/"World" codelet of §4.1: with fdatabarrier between two
	// writes, a crash must never show the second write without the first.
	for _, crashUs := range []int{50, 150, 400, 900, 2000, 5000, 12000} {
		e := newEnv(jbd.ModeDual, true)
		var f *Inode
		e.k.Spawn("app", func(p *sim.Proc) {
			f, _ = e.fs.Create(p, e.fs.Root(), "hw")
			e.fs.Write(p, f, 0)
			e.fs.Fsync(p, f)    // establish the file durably
			e.fs.Write(p, f, 0) // "Hello"
			e.fs.Fdatabarrier(p, f)
			e.fs.Write(p, f, 1) // "World"
			e.fs.Fdatabarrier(p, f)
			// Push more traffic so writeback happens eventually.
			for i := 2; i < 30; i++ {
				e.fs.Write(p, f, int64(i))
				e.fs.Fdatabarrier(p, f)
			}
			e.fs.Fsync(p, f)
		})
		e.k.RunUntil(sim.Time(sim.Duration(crashUs) * sim.Microsecond))
		e.dev.Crash()
		var view *View
		e.k.Spawn("rec", func(p *sim.Proc) {
			d2 := device.Recover(p, e.dev)
			view = Recover(d2.DurableData, e.fs.opts.Journal)
		})
		e.k.Run()
		root, ok := view.Root(e.fs)
		if ok {
			if meta, ok := view.Lookup(root, "hw"); ok {
				// Versions increase with write order: ver(page1) durable
				// implies the *second* version of page0 durable.
				v0, ok0 := view.PageVersion(meta, 0)
				v1, ok1 := view.PageVersion(meta, 1)
				if ok1 && v1 > 0 {
					if !ok0 || v0 < v1-1 {
						t.Errorf("crash@%dµs: 'World' (v%d) durable without 'Hello' (v%d,%v)",
							crashUs, v1, v0, ok0)
					}
				}
			}
		}
		e.close()
	}
}

func TestSyncFS(t *testing.T) {
	e := newEnv(jbd.ModeDual, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			f, _ := e.fs.Create(p, e.fs.Root(), string(rune('a'+i)))
			e.fs.Write(p, f, 0)
		}
		e.fs.SyncFS(p)
		for i := 0; i < 5; i++ {
			f, _ := e.fs.Lookup(e.fs.Root(), string(rune('a'+i)))
			if f.DirtyPages() != 0 {
				t.Errorf("file %d still dirty after SyncFS", i)
			}
		}
	})
}

func TestOptFSSelectiveDataJournaling(t *testing.T) {
	// Overwrites of previously synced pages must be journaled; fresh
	// allocations must not.
	e := newEnv(jbd.ModeOptFS, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "f")
		e.fs.Write(p, f, 0)
		e.fs.Fbarrier(p, f) // osync: first write goes in place
		if e.fs.Stats().DataJournaled != 0 {
			t.Errorf("fresh write journaled: %d", e.fs.Stats().DataJournaled)
		}
		e.fs.Write(p, f, 0) // overwrite
		e.fs.Fbarrier(p, f)
		if e.fs.Stats().DataJournaled != 1 {
			t.Errorf("overwrite not selectively journaled: %d", e.fs.Stats().DataJournaled)
		}
	})
}

func TestDataJournalMode(t *testing.T) {
	e := newEnv(jbd.ModeJBD2, true)
	e.fs.opts.Mode = DataJournal
	defer e.close()
	e.run(func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "f")
		e.fs.Write(p, f, 0)
		e.fs.Fsync(p, f)
		if e.fs.Stats().DataJournaled != 1 {
			t.Errorf("data mode did not journal the page: %d", e.fs.Stats().DataJournaled)
		}
	})
}

func TestJournalModeStrings(t *testing.T) {
	if Ordered.String() != "ordered" || Writeback.String() != "writeback" || DataJournal.String() != "data" {
		t.Error("mode strings")
	}
}

func TestManyFilesManyCommits(t *testing.T) {
	// Exercise journal wraparound + checkpointing under a varmail-like
	// create/write/fsync/unlink churn.
	e := newEnv(jbd.ModeDual, true)
	defer e.close()
	e.run(func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			name := string(rune('a'+i%26)) + string(rune('0'+i%10))
			f, err := e.fs.Create(p, e.fs.Root(), name)
			if err != nil { // name collision: reuse
				f, _ = e.fs.Lookup(e.fs.Root(), name)
			}
			e.fs.Write(p, f, 0)
			e.fs.Fsync(p, f)
			if i%3 == 2 {
				_ = e.fs.Unlink(p, e.fs.Root(), name)
			}
		}
	})
	if e.fs.Journal().Stats().Checkpoints == 0 {
		t.Error("no checkpoints under churn")
	}
	if e.fs.Journal().FreePages() <= 0 {
		t.Errorf("journal space exhausted: %d", e.fs.Journal().FreePages())
	}
}
