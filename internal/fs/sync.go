package fs

import (
	"repro/internal/block"
	"repro/internal/jbd"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// Engine returns the journaling engine in use.
func (f *FS) Engine() jbd.Mode { return f.opts.Journal.Mode }

// noopSpanEnd is the shared free closer syncSpan hands out with spans off,
// so the disabled path allocates nothing.
var noopSpanEnd = func() {}

// syncSpan opens a trace span for one sync-family call and returns its
// closer, correlating begin and end through a per-FS call sequence.
func (f *FS) syncSpan(name string) func() {
	if f.k.Spans() == nil {
		return noopSpanEnd
	}
	f.obs.syncSeq++
	id := f.obs.syncSeq
	f.k.SpanBegin("fs", name, id)
	return func() { f.k.SpanEnd("fs", name, id) }
}

// Fsync makes the file durable: data, then the journal transaction that
// covers its metadata. The blocking structure differs per engine exactly as
// in the paper's Fig. 7:
//
//   - EXT4/JBD2: wait for D's transfer, then wait for the JBD thread's
//     transfer-and-flush commit (two application wake-ups);
//   - BarrierFS/Dual: dispatch D as order-preserving writes without
//     waiting, then wait once for the flush thread (one wake-up);
//   - when the inode has no uncommitted metadata, fsync degrades to
//     fdatasync (the Fig. 11 jiffy effect).
func (f *FS) Fsync(p *sim.Proc, i *Inode) {
	f.cpu(p)
	f.stats.Fsyncs++
	defer f.syncSpan("fsync")()
	f.sync(p, i, i.MetaPending(), reqtrace.Ctx{})
}

// Fdatasync is fsync without the timestamp-only metadata commit: it commits
// the journal only when block allocation or size changed.
func (f *FS) Fdatasync(p *sim.Proc, i *Inode) { f.FdatasyncT(p, i, reqtrace.Ctx{}) }

// FdatasyncT is Fdatasync carrying a request-trace context: the context
// rides the data writes, the journal transaction and any flush so the
// durability window can be attributed stage by stage. A zero context makes
// this identical to Fdatasync.
func (f *FS) FdatasyncT(p *sim.Proc, i *Inode, tc reqtrace.Ctx) {
	f.cpu(p)
	f.stats.Fdatasyncs++
	defer f.syncSpan("fdatasync")()
	f.sync(p, i, i.allocDirty && i.MetaPending(), tc)
}

func (f *FS) sync(p *sim.Proc, i *Inode, commitMeta bool, tc reqtrace.Ctx) {
	// Background writeback that the multi-queue layer moved off stream 0 is
	// outside the flush/barrier ordering domain: wait on it explicitly.
	f.waitCrossStream(p, i)
	switch f.opts.Journal.Mode {
	case jbd.ModeDual:
		if commitMeta {
			// D as ordered writes — no Wait-on-Transfer. The commit thread's
			// JD closes the {D, JD} epoch (Eq. 3).
			f.writeback(p, i, block.FlagOrdered, false, tc)
			f.j.CommitAndWaitT(p, tc)
			i.allocDirty = false
			return
		}
		// fdatasync path: D closed by a barrier, then a device flush. If
		// there is nothing dirty at all, force an (empty) journal commit to
		// delimit an epoch (§4.2) and wait for it durably.
		plan := f.writeback(p, i, block.FlagOrdered, true, tc)
		if len(plan.reqs) == 0 {
			t := f.j.CommitOrderingT(p, true, tc)
			if t != nil {
				f.j.WaitTxn(p, t)
			}
			return
		}
		f.waitAll(p, plan)
		f.layer.FlushT(p, tc)
		f.wake(p)
	case jbd.ModeOptFS:
		plan := f.writeback(p, i, 0, false, tc)
		f.waitAll(p, plan)
		if commitMeta {
			f.j.CommitOrderingT(p, false, tc)
			i.allocDirty = false
		}
		// Durability on OptFS: an explicit flush (dsync-like).
		f.layer.FlushT(p, tc)
		f.wake(p)
	default: // JBD2 / EXT4
		plan := f.writeback(p, i, 0, false, tc)
		f.waitAll(p, plan) // Wait-on-Transfer (wake-up #1)
		if commitMeta {
			f.j.CommitAndWaitT(p, tc) // transfer-and-flush commit (wake-up #2)
			i.allocDirty = false
			return
		}
		if f.opts.Journal.BarrierMount {
			f.layer.FlushT(p, tc) // wake-up #2
			f.wake(p)
		}
	}
}

// Fbarrier is the ordering-guarantee-only fsync (§4.1): it writes dirty
// pages, triggers a journal commit and returns without persisting anything.
// On the OptFS engine this is osync(). On a JBD2 mount it falls back to
// fsync with the mount's durability semantics.
func (f *FS) Fbarrier(p *sim.Proc, i *Inode) {
	f.cpu(p)
	f.stats.Fbarriers++
	defer f.syncSpan("fbarrier")()
	f.waitCrossStream(p, i)
	switch f.opts.Journal.Mode {
	case jbd.ModeDual:
		if i.MetaPending() {
			f.writeback(p, i, block.FlagOrdered, false, reqtrace.Ctx{})
			f.j.CommitOrdering(p, false) // returns at JC dispatch
			i.allocDirty = false
			return
		}
		// No metadata: serviced as fdatabarrier (usually zero wake-ups).
		f.fdatabarrierDual(p, i, reqtrace.Ctx{})
	case jbd.ModeOptFS:
		// osync(): ordering via Wait-on-Transfer, no flush.
		plan := f.writeback(p, i, 0, false, reqtrace.Ctx{})
		f.waitAll(p, plan)
		if i.MetaPending() {
			f.j.CommitOrdering(p, false)
			i.allocDirty = false
		}
	default:
		f.sync(p, i, i.MetaPending(), reqtrace.Ctx{})
	}
}

// Fdatabarrier enforces the storage order between preceding and following
// writes with no durability wait, no flush, and no Wait-on-Transfer — the
// storage analogue of a memory barrier (§4.1). Only meaningful on the
// Dual-Mode engine; other engines approximate it with their strongest
// cheap primitive.
func (f *FS) Fdatabarrier(p *sim.Proc, i *Inode) { f.FdatabarrierT(p, i, reqtrace.Ctx{}) }

// FdatabarrierT is Fdatabarrier carrying a request-trace context. On the
// Dual-Mode engine the call returns at dispatch, so the context's
// device-side stamps land later, when the order-preserving writes are
// serviced. A zero context makes this identical to Fdatabarrier.
func (f *FS) FdatabarrierT(p *sim.Proc, i *Inode, tc reqtrace.Ctx) {
	f.cpu(p)
	f.stats.Fdatabarriers++
	defer f.syncSpan("fdatabarrier")()
	f.waitCrossStream(p, i)
	switch f.opts.Journal.Mode {
	case jbd.ModeDual:
		f.fdatabarrierDual(p, i, tc)
	case jbd.ModeOptFS:
		// osync: write data (Wait-on-Transfer) and commit the journal —
		// journaled pages (selective data journaling) only reach the device
		// through the commit.
		plan := f.writeback(p, i, 0, false, tc)
		f.waitAll(p, plan)
		f.j.CommitOrderingT(p, false, tc)
	default:
		f.FdatasyncT(p, i, tc)
		f.stats.Fdatasyncs--
	}
}

func (f *FS) fdatabarrierDual(p *sim.Proc, i *Inode, tc reqtrace.Ctx) {
	plan := f.writeback(p, i, block.FlagOrdered, true, tc)
	if len(plan.reqs) == 0 {
		// Delimit the epoch through a forced (possibly empty) commit; do
		// not wait for anything beyond the commit dispatch.
		f.j.CommitOrderingT(p, true, tc)
	}
}

// SyncFS flushes everything: all dirty files, a journal commit and a device
// flush. Used by tests and orderly shutdown.
func (f *FS) SyncFS(p *sim.Proc) {
	// inodeList, not the inode map: map iteration order would make the
	// writeback order — and the whole dispatch trace — nondeterministic.
	for _, i := range f.inodeList {
		f.waitCrossStream(p, i)
		plan := f.writeback(p, i, 0, false, reqtrace.Ctx{})
		f.waitAll(p, plan)
	}
	f.j.CommitAndWait(p)
	f.layer.Flush(p)
	f.wake(p)
}
