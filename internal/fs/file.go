package fs

import (
	"repro/internal/block"
	"repro/internal/jbd"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// PageSize is the filesystem block size in bytes.
const PageSize = 4096

// Write dirties one 4KB page of the file at page index idx (a buffered
// write: page cache only, no IO). It allocates a block on first touch,
// updates the size, and — at jiffy granularity — the timestamp, dirtying
// the inode's metadata accordingly.
func (f *FS) Write(p *sim.Proc, i *Inode, idx int64) {
	f.cpu(p)
	f.writeVer++
	pg := i.pages[idx]
	if pg == nil {
		pg = &page{idx: idx}
		i.pages[idx] = pg
	}
	pg.ver = f.writeVer
	if !pg.dirty {
		pg.dirty = true
		i.dirtyPg = append(i.dirtyPg, pg)
		f.obs.dirtyPages.Inc()
	}
	f.stats.Writes++
	if f.pdflushCond != nil && f.pdflushCond.Waiters() > 0 {
		f.pdflushCond.Broadcast()
	}

	metaDirty := false
	// Block allocation (allocating write).
	for int64(len(i.blocks)) <= idx {
		i.blocks = append(i.blocks, 0)
	}
	if i.blocks[idx] == 0 {
		i.blocks[idx] = f.allocLPARaw()
		f.j.DirtyBuffer(p, f.allocBufFor(i.ino), nil)
		i.allocDirty = true
		metaDirty = true
	}
	// Size extension.
	if end := (idx + 1) * PageSize; end > i.size {
		i.size = end
		i.allocDirty = true
		metaDirty = true
	}
	// Timestamp at jiffy granularity: the Fig. 11 mechanism.
	if jf := f.jiffies(p); jf != i.mtimeJiffy {
		i.mtimeJiffy = jf
		metaDirty = true
	}
	if metaDirty {
		f.touchMeta(p, i)
	}
}

// WriteAt is Write for a byte offset.
func (f *FS) WriteAt(p *sim.Proc, i *Inode, off int64) {
	f.Write(p, i, off/PageSize)
}

// PageVer returns the in-cache content version of a page without issuing
// IO or charging syscall cost. Instrumentation for applications that keep
// host-side shadows of what they wrote (e.g. internal/kvwal); a cache miss
// reports false rather than reading the device.
func (f *FS) PageVer(i *Inode, idx int64) (int64, bool) {
	if pg, ok := i.pages[idx]; ok {
		return pg.ver, true
	}
	return 0, false
}

// Read returns the version of a page, fetching it from the device on a
// cache miss. A hard media failure reads as an absent page; callers that
// must distinguish the two use ReadE.
func (f *FS) Read(p *sim.Proc, i *Inode, idx int64) (int64, bool) {
	ver, ok, _ := f.ReadE(p, i, idx)
	return ver, ok
}

// ReadE is Read with the IO error surfaced: when the device fails the page
// read hard (uncorrectable sector with the block layer's retry budget
// exhausted, block.Request.Err), ReadE caches nothing and returns the
// error so the application can fail over to a replica.
func (f *FS) ReadE(p *sim.Proc, i *Inode, idx int64) (int64, bool, error) {
	f.cpu(p)
	f.stats.Reads++
	if pg, ok := i.pages[idx]; ok {
		return pg.ver, true, nil
	}
	if idx >= int64(len(i.blocks)) || i.blocks[idx] == 0 {
		return 0, false, nil
	}
	r := &block.Request{Op: block.OpRead, LPA: i.blocks[idx], PID: p.ID(), Stream: f.stream}
	f.layer.SubmitAndWait(p, r)
	f.wake(p)
	if r.Err != nil {
		f.stats.ReadErrors++
		return 0, false, r.Err
	}
	ver := int64(0)
	if pd, ok := r.Data.(PageData); ok {
		ver = pd.Ver
	}
	i.pages[idx] = &page{idx: idx, ver: ver, everSynced: true}
	return ver, true, nil
}

// EvictClean drops the inode's clean pages from the page cache, so later
// reads fetch them from the device again — fadvise(DONTNEED) for files the
// application streams once (e.g. kvwal segments, which are immutable after
// their closing fdatasync). Dirty pages, journal-pinned pages, and inodes
// with writeback still in flight are left alone: eviction is only legal
// once the device provably holds the page. Returns the number of pages
// evicted.
func (f *FS) EvictClean(i *Inode) int {
	if len(i.inflight) > 0 {
		return 0
	}
	n := 0
	for idx, pg := range i.pages {
		if pg.dirty || (pg.buf != nil && pg.buf.Pending()) {
			continue
		}
		delete(i.pages, idx)
		n++
	}
	return n
}

// writebackPlan is the set of in-place data writes produced by writeback.
type writebackPlan struct {
	reqs []*block.Request
}

// writeback turns the file's dirty pages into block requests with the given
// flags, journaling pages instead when the data-journal mode (or OptFS
// selective data journaling, for overwrites) applies. The requests are
// submitted; the caller decides whether to wait. tc, when active, tags each
// submitted request so the block layer's queue/dispatch stamps land on the
// originating sync call's trace record.
func (f *FS) writeback(p *sim.Proc, i *Inode, flags block.Flags, barrierLast bool, tc reqtrace.Ctx) writebackPlan {
	var plan writebackPlan
	dirty := i.takeDirty()
	f.obs.dirtyPages.Add(-int64(len(dirty)))
	for _, pg := range dirty {
		journalIt := f.opts.Mode == DataJournal ||
			(f.opts.SelectiveDataJournal && pg.everSynced)
		if journalIt {
			// The page goes through the journal as a logged block; charge
			// the scan/checksum CPU this costs (OptFS's §6.5 penalty).
			if f.opts.JournalScanCPU > 0 {
				p.Advance(f.opts.JournalScanCPU)
			}
			if pg.buf == nil {
				pg.buf = &jbd.Buffer{Home: i.blocks[pg.idx], Name: "data"}
			}
			f.j.DirtyBuffer(p, pg.buf, PageData{Ino: i.ino, Idx: pg.idx, Ver: pg.ver})
			pg.dirty = false
			pg.everSynced = true
			f.stats.DataJournaled++
			continue
		}
		plan.reqs = append(plan.reqs, f.dataRequest(i, pg, flags, p.ID()))
	}
	if barrierLast && len(plan.reqs) > 0 {
		plan.reqs[len(plan.reqs)-1].Flags |= block.FlagBarrier | block.FlagOrdered
	}
	for _, r := range plan.reqs {
		r.Trace = tc
		// Ordered mode: the journal must not commit the inode before the
		// data lands (EXT4's ordered-mode rule).
		if f.opts.Mode == Ordered && i.MetaPending() {
			f.j.RegisterOrderedData(r)
		}
		i.trackInflight(r)
		f.layer.Submit(p, r)
	}
	return plan
}

// takeDirty removes and returns the inode's dirty pages in page-index
// order. Every dirty page is on the inode's dirty list; writeback cleans
// them all, so the list resets wholesale.
func (i *Inode) takeDirty() []*page {
	dirty := i.dirtyPg
	// Deterministic order: by page index.
	for a := 1; a < len(dirty); a++ {
		for b := a; b > 0 && dirty[b-1].idx > dirty[b].idx; b-- {
			dirty[b-1], dirty[b] = dirty[b], dirty[b-1]
		}
	}
	i.dirtyPg = nil
	return dirty
}

// dataRequest builds the in-place write request for one dirty page,
// marking the page clean. Shared by the blocking writeback and the pdflush
// handler so the two stay statement-identical.
func (f *FS) dataRequest(i *Inode, pg *page, flags block.Flags, pid int) *block.Request {
	r := &block.Request{
		Op: block.OpWrite, LPA: i.blocks[pg.idx],
		Data:   PageData{Ino: i.ino, Idx: pg.idx, Ver: pg.ver},
		Flags:  flags,
		PID:    pid,
		Stream: f.stream,
	}
	pg.dirty = false
	pg.everSynced = true
	f.stats.PagesWritten++
	return r
}

// trackInflight records a submitted writeback request on the inode until it
// completes, so sync calls can wait on it (see waitCrossStream).
func (i *Inode) trackInflight(r *block.Request) {
	i.inflight = append(i.inflight, r)
	prev := r.OnComplete
	r.OnComplete = func(at sim.Time, rr *block.Request) {
		for n, o := range i.inflight {
			if o == rr {
				i.inflight = append(i.inflight[:n], i.inflight[n+1:]...)
				break
			}
		}
		if prev != nil {
			prev(at, rr)
		}
	}
}

// waitCrossStream blocks until every in-flight writeback request of the
// inode that rides a stream other than the filesystem's own has
// transferred. The multi-queue layer scatters background writeback onto
// data streams, where neither the foreground stream's barriers nor its
// flush command can order or cover it — so the sync calls fall back to
// Wait-on-Transfer for exactly those requests, like the kernel's
// filemap_fdatawait. On the single-queue layer every request is on the
// filesystem's stream and this is a no-op.
func (f *FS) waitCrossStream(p *sim.Proc, i *Inode) {
	for {
		var pending *block.Request
		for _, r := range i.inflight {
			if r.Stream != f.stream && !r.Completed() {
				pending = r
				break
			}
		}
		if pending == nil {
			return
		}
		pending.Wait(p)
		f.wake(p)
	}
}

// WritebackAsync pushes the file's dirty pages to the device as orderless
// background writes without waiting, returning the submitted requests. It
// models pdflush-style background writeback (the paper's buffered-write
// baseline); backpressure comes from the block layer's queue limit.
func (f *FS) WritebackAsync(p *sim.Proc, i *Inode) []*block.Request {
	plan := f.writeback(p, i, block.FlagBackground, false, reqtrace.Ctx{})
	return plan.reqs
}

// waitAll blocks until every request in the plan completes, charging one
// wake-up.
func (f *FS) waitAll(p *sim.Proc, plan writebackPlan) {
	n := 0
	for _, r := range plan.reqs {
		if !r.Completed() {
			n++
		}
	}
	if n == 0 {
		return
	}
	waiting := false
	for _, r := range plan.reqs {
		if r.Completed() {
			continue
		}
		prev := r.OnComplete
		r.OnComplete = func(at sim.Time, rr *block.Request) {
			if prev != nil {
				prev(at, rr)
			}
			n--
			if n == 0 && waiting {
				f.k.Resume(p)
			}
		}
	}
	if n > 0 {
		waiting = true
		p.Suspend()
		f.wake(p)
	}
}
