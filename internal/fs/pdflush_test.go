package fs

import (
	"testing"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/jbd"
	"repro/internal/sim"
)

// newPdflushEnv builds a filesystem with background writeback enabled.
func newPdflushEnv(interval sim.Duration) *env {
	k := sim.NewKernel()
	cfg := device.UFS()
	cfg.QueueDepth = 16
	cfg.DMAPerPage = 10 * sim.Microsecond
	cfg.CmdOverhead = 2 * sim.Microsecond
	dev := device.New(k, cfg)
	l := block.NewLayer(k, dev, block.NewEpochScheduler(block.NewNOOP()), block.LayerConfig{
		DispatchOverhead: sim.Microsecond,
		Trace:            true,
	})
	opts := DefaultOptions(jbd.ModeDual)
	opts.Journal.Pages = 256
	opts.Journal.CheckpointLow = 32
	opts.PdflushInterval = 2 * sim.Millisecond
	opts.PdflushInterval = interval
	f := New(k, l, opts)
	return &env{k: k, dev: dev, l: l, fs: f}
}

func TestPdflushWritesBackWithoutSync(t *testing.T) {
	e := newPdflushEnv(2 * sim.Millisecond)
	defer e.close()
	var f *Inode
	e.k.Spawn("app", func(p *sim.Proc) {
		f, _ = e.fs.Create(p, e.fs.Root(), "bg")
		e.fs.Write(p, f, 0)
		e.fs.Write(p, f, 1)
		// No sync call at all: pdflush must clean the pages.
	})
	e.k.RunUntil(sim.Time(20 * sim.Millisecond))
	if f.DirtyPages() != 0 {
		t.Errorf("dirty pages after pdflush window = %d", f.DirtyPages())
	}
	if e.fs.Stats().PdflushRuns == 0 {
		t.Error("pdflush never ran")
	}
}

func TestPdflushIdleQuiescence(t *testing.T) {
	// With no dirty pages, the pdflush daemon must not keep the kernel
	// busy: Run() terminates.
	e := newPdflushEnv(2 * sim.Millisecond)
	defer e.close()
	e.k.Spawn("app", func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "x")
		e.fs.Write(p, f, 0)
		e.fs.Fsync(p, f)
	})
	end := e.k.Run() // must terminate despite the daemon
	if end == sim.MaxTime {
		t.Fatal("kernel never quiesced")
	}
}

// The Fig. 5 scenario: fsync traffic (ordered, with barriers) interleaves
// with pdflush traffic (orderless). The orderless requests must neither
// carry barriers nor stall the epochs.
func TestFig5ScenarioPdflushInterleavesWithEpochs(t *testing.T) {
	e := newPdflushEnv(500 * sim.Microsecond)
	defer e.close()
	e.k.Spawn("fsyncer", func(p *sim.Proc) {
		f, _ := e.fs.Create(p, e.fs.Root(), "synced")
		for i := 0; i < 20; i++ {
			e.fs.Write(p, f, int64(i))
			e.fs.Fsync(p, f)
		}
	})
	e.k.Spawn("dirtier", func(p *sim.Proc) {
		g, _ := e.fs.Create(p, e.fs.Root(), "background")
		for i := 0; i < 40; i++ {
			e.fs.Write(p, g, int64(i))
			p.Sleep(300 * sim.Microsecond)
		}
	})
	e.k.RunUntil(sim.Time(40 * sim.Millisecond))
	// Orderless pdflush requests must never have been tagged with a barrier.
	sawOrderless := false
	for _, rec := range e.l.DispatchLog() {
		if rec.Op != block.OpWrite {
			continue
		}
		if !rec.Flags.Has(block.FlagOrdered) && !rec.Flags.Has(block.FlagBarrier) {
			sawOrderless = true
		}
	}
	if !sawOrderless {
		t.Error("no orderless pdflush traffic observed alongside epochs")
	}
	if e.fs.Stats().PdflushRuns == 0 {
		t.Error("pdflush never ran in the mixed scenario")
	}
}
