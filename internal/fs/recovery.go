package fs

import (
	"repro/internal/jbd"
)

// Recovery builds a read-only view of the filesystem as it would be
// reconstructed after a crash: journal replay (jbd.Scan) overlaid on the
// in-place metadata, with file contents read from the durable device state.
// Crash-consistency tests use it to check the fsync/fbarrier contracts.

// View is a recovered, read-only filesystem image.
type View struct {
	read    jbd.ReadFn
	journal jbd.Recovered
	metas   map[uint64]InodeMeta // home LPA -> effective metadata
}

// Recover scans the journal and reconstructs the filesystem image.
// read must return durable page contents (e.g. device.DurableData).
func Recover(read jbd.ReadFn, jcfg jbd.Config) *View {
	v := &View{read: read, metas: make(map[uint64]InodeMeta)}
	v.journal = jbd.Scan(read, jcfg)
	return v
}

// Journal returns the journal scan outcome.
func (v *View) Journal() jbd.Recovered { return v.journal }

// metaAt returns the effective metadata for an inode home LPA: the newest
// replayed journal copy, else the in-place copy.
func (v *View) metaAt(home uint64) (InodeMeta, bool) {
	if d, ok := v.journal.State[home]; ok {
		if m, ok := d.(InodeMeta); ok {
			return m, true
		}
	}
	if d, ok := v.read(home); ok {
		if m, ok := d.(InodeMeta); ok {
			return m, true
		}
	}
	return InodeMeta{}, false
}

// Root returns the recovered root directory metadata. The root inode's home
// is deterministic: the first LPA after the allocator block.
func (v *View) Root(f *FS) (InodeMeta, bool) {
	return v.metaAt(f.root.home)
}

// LookupHome resolves a name in a recovered directory to the child's home
// LPA.
func (v *View) LookupHome(dir InodeMeta, name string) (uint64, bool) {
	h, ok := dir.Entries[name]
	return h, ok
}

// Lookup resolves a name in a recovered directory to the child's metadata.
func (v *View) Lookup(dir InodeMeta, name string) (InodeMeta, bool) {
	h, ok := dir.Entries[name]
	if !ok {
		return InodeMeta{}, false
	}
	return v.metaAt(h)
}

// MetaByHome returns the recovered metadata for an inode home LPA.
func (v *View) MetaByHome(home uint64) (InodeMeta, bool) { return v.metaAt(home) }

// PageVersion returns the durable content version of a file page, checking
// the journal overlay first (data-journal mode logs data pages), then the
// in-place block.
func (v *View) PageVersion(m InodeMeta, idx int64) (int64, bool) {
	if idx >= int64(len(m.Blocks)) || m.Blocks[idx] == 0 {
		return 0, false
	}
	lpa := m.Blocks[idx]
	if d, ok := v.journal.State[lpa]; ok {
		if pd, ok := d.(PageData); ok {
			return pd.Ver, true
		}
	}
	d, ok := v.read(lpa)
	if !ok {
		return 0, false
	}
	pd, ok := d.(PageData)
	if !ok {
		return 0, false
	}
	return pd.Ver, true
}
