package fs

import (
	"repro/internal/block"
	"repro/internal/sim"
)

// Run-to-completion form of the pdflush daemon (see FS.pdflush for the
// blocking original). It covers the Ordered and Writeback journal modes,
// where background writeback never routes pages through the journal and the
// only blocking points are the idle wait, the interval sleep, and the block
// layer's congestion limit. The state machine mirrors the blocking loop
// statement for statement so the golden trace tests hold.

// pdflush handler phases.
const (
	pdIdle  = iota // no dirty pages: parked on pdflushCond
	pdSleep        // interval timer armed
	pdWrite        // walking inodes / submitting writeback requests
)

type pdflushSM struct {
	phase   int
	list    []*Inode // inode-list snapshot, as the blocking loop's range takes
	ino     int      // next index in list
	cur     *Inode   // inode whose plan is being submitted
	reqs    []*block.Request
	ri      int  // next request to submit
	prepped bool // reqs[ri] already registered/tracked (congestion retry)
}

func (f *FS) pdflushStep(h *sim.Proc) {
	s := &f.pd
	for {
		switch s.phase {
		case pdIdle:
			if !f.anyDirty() {
				f.pdflushCond.Park(h)
				return
			}
			s.phase = pdSleep
			h.WakeAt(h.Now().Add(f.opts.PdflushInterval))
			return
		case pdSleep:
			// Same snapshot semantics as `range f.inodeList` in the blocking
			// loop: the slice header is captured once per pass.
			s.list = f.inodeList
			s.ino = 0
			s.phase = pdWrite
		case pdWrite:
			if s.cur == nil {
				for s.ino < len(s.list) {
					i := s.list[s.ino]
					s.ino++
					if i.DirtyPages() > 0 {
						s.cur = i
						s.reqs = f.pdflushPlan(h, i)
						s.ri = 0
						s.prepped = false
						break
					}
				}
				if s.cur == nil {
					s.list = nil
					s.phase = pdIdle
					continue
				}
			}
			for s.ri < len(s.reqs) {
				r := s.reqs[s.ri]
				if !s.prepped {
					// Ordered mode: the journal must not commit the inode
					// before the data lands.
					if f.opts.Mode == Ordered && s.cur.MetaPending() {
						f.j.RegisterOrderedData(r)
					}
					s.cur.trackInflight(r)
					s.prepped = true
				}
				if !f.layer.SubmitOrPark(h, r) {
					return // parked on the congestion limit
				}
				s.ri++
				s.prepped = false
			}
			s.cur = nil
			s.reqs = nil
			f.stats.PdflushRuns++
			f.obs.pdflushRuns.Inc()
		}
	}
}

// pdflushPlan builds the background-writeback requests for one inode — the
// plan-building half of writeback for the non-journaling path, built from
// the same takeDirty/dataRequest helpers so the two stay identical.
func (f *FS) pdflushPlan(h *sim.Proc, i *Inode) []*block.Request {
	var reqs []*block.Request
	dirty := i.takeDirty()
	f.obs.dirtyPages.Add(-int64(len(dirty)))
	for _, pg := range dirty {
		reqs = append(reqs, f.dataRequest(i, pg, block.FlagBackground, h.ID()))
	}
	return reqs
}
