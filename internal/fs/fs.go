// Package fs implements the filesystem layer of the barrier-enabled IO
// stack: an EXT4-like filesystem (page cache, inodes, directories, block
// allocator) whose journaling engine is pluggable (internal/jbd). With the
// JBD2 engine it behaves like EXT4; with the Dual-Mode engine it is
// BarrierFS (§4), exposing fbarrier() and fdatabarrier() alongside fsync()
// and fdatasync(); with the OptFS engine, fbarrier() behaves as osync().
//
// Data page contents are modelled as PageData{Ino, Idx, Ver} version stamps
// rather than byte payloads: every behaviour the paper measures (ordering,
// durability, latency, context switches) depends only on identity and
// recency, which the stamps capture exactly and cheaply.
package fs

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/jbd"
	"repro/internal/metrics"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// Ino is an inode number.
type Ino uint64

// RootIno is the root directory's inode number.
const RootIno Ino = 1

// JournalMode is the EXT4 data journaling mode.
type JournalMode int

// Journal modes.
const (
	// Ordered: data blocks are written in place, and must reach the device
	// before the transaction that references them commits (EXT4 default).
	Ordered JournalMode = iota
	// Writeback: metadata is journaled with no data ordering.
	Writeback
	// DataJournal: data blocks are journaled too.
	DataJournal
)

func (m JournalMode) String() string {
	switch m {
	case Ordered:
		return "ordered"
	case Writeback:
		return "writeback"
	case DataJournal:
		return "data"
	}
	return "invalid"
}

// Options configures a filesystem instance.
type Options struct {
	// Journal configures the journaling engine (mode, layout, barrier
	// mount option).
	Journal jbd.Config
	// Mode is the data journaling mode.
	Mode JournalMode
	// Jiffy is the timer-interrupt granularity of inode timestamps; writes
	// within one jiffy do not re-dirty the inode (the effect behind the
	// paper's Fig. 11 fsync-degrades-to-fdatasync behaviour).
	Jiffy sim.Duration
	// SyscallCPU is the on-CPU cost charged per filesystem call.
	SyscallCPU sim.Duration
	// WakeLatency is the scheduler latency charged after blocking waits.
	WakeLatency sim.Duration
	// SelectiveDataJournal enables OptFS-style journaling of overwritten
	// data pages.
	SelectiveDataJournal bool
	// PdflushInterval enables a background dirty-page flusher with the
	// given period (0 = off). Its writes are orderless, so they interleave
	// with epochs exactly as the pdflush traffic in the paper's Fig. 5.
	PdflushInterval sim.Duration
	// JournalScanCPU is the per-page CPU cost of routing a data page
	// through the journal (checksum + dirty-page scan). The paper blames
	// exactly this for OptFS's poor showing on flash (§6.5).
	JournalScanCPU sim.Duration
	// Metrics is an explicit observability registry; nil falls back to the
	// process-wide live registry, and a nil resolution disables the
	// filesystem's instruments. It is forwarded to the journal unless the
	// journal names its own.
	Metrics *metrics.Registry
}

// DefaultOptions returns the standard configuration for an engine.
func DefaultOptions(mode jbd.Mode) Options {
	o := Options{
		Journal:    jbd.DefaultConfig(mode),
		Mode:       Ordered,
		Jiffy:      10 * sim.Millisecond,
		SyscallCPU: 2 * sim.Microsecond,
	}
	o.WakeLatency = o.Journal.WakeLatency
	if mode == jbd.ModeOptFS {
		o.SelectiveDataJournal = true
		o.JournalScanCPU = 25 * sim.Microsecond
	}
	return o
}

// PageData is the content stamp stored for a file data page.
type PageData struct {
	Ino Ino
	Idx int64
	Ver int64
}

// InodeMeta is the on-disk snapshot of an inode (the journaled metadata
// block).
type InodeMeta struct {
	Ino        Ino
	Dir        bool
	Size       int64
	MTimeJiffy int64
	Blocks     []uint64          // page index -> LPA (0 = hole)
	Entries    map[string]uint64 // dir: name -> child inode home LPA
}

// AllocMeta is the on-disk snapshot of the block allocator.
type AllocMeta struct {
	NextLPA uint64
	NFree   int
}

// page is one page-cache entry.
type page struct {
	idx   int64
	ver   int64
	dirty bool
	buf   *jbd.Buffer // set when the page itself is journaled (data mode / selective)
	// everSynced marks pages that have reached the device at least once;
	// OptFS journals overwrites of such pages (selective data journaling).
	everSynced bool
}

// Inode is an in-memory inode.
type Inode struct {
	fs         *FS
	ino        Ino
	dir        bool
	home       uint64 // metadata home LPA
	size       int64
	mtimeJiffy int64
	blocks     []uint64
	pages      map[int64]*page
	entries    map[string]uint64 // dirs: name -> child home LPA
	buf        *jbd.Buffer
	// allocDirty marks metadata changes that fdatasync must commit (size or
	// block allocation), as opposed to timestamp-only changes.
	allocDirty bool
	nlink      int
	// inflight holds submitted-but-incomplete writeback requests. Pages are
	// marked clean at submission, so the sync calls must be able to wait on
	// writeback they did not plan themselves (filemap_fdatawait).
	inflight []*block.Request
	// dirtyPg lists the dirty pages (append-on-dirty), so writeback and the
	// dirty counters never re-scan the whole page cache.
	dirtyPg []*page
}

// Ino returns the inode number.
func (i *Inode) Ino() Ino { return i.ino }

// Size returns the file size in bytes.
func (i *Inode) Size() int64 { return i.size }

// IsDir reports whether the inode is a directory.
func (i *Inode) IsDir() bool { return i.dir }

// DirtyPages returns the number of dirty page-cache entries.
func (i *Inode) DirtyPages() int { return len(i.dirtyPg) }

func (i *Inode) snapshot() any {
	m := InodeMeta{
		Ino: i.ino, Dir: i.dir, Size: i.size, MTimeJiffy: i.mtimeJiffy,
		Blocks: append([]uint64(nil), i.blocks...),
	}
	if i.entries != nil {
		m.Entries = make(map[string]uint64, len(i.entries))
		for k, v := range i.entries {
			m.Entries[k] = v
		}
	}
	return m
}

// Stats are cumulative filesystem statistics.
type Stats struct {
	Writes        int64
	Reads         int64
	Fsyncs        int64
	Fdatasyncs    int64
	Fbarriers     int64
	Fdatabarriers int64
	Creates       int64
	Unlinks       int64
	PagesWritten  int64
	DataJournaled int64 // pages routed through the journal (data/selective)
	PdflushRuns   int64
	ReadErrors    int64 // page reads failed hard (retry budget exhausted)
}

// FS is a mounted filesystem.
type FS struct {
	k     *sim.Kernel
	layer block.Submitter
	j     *jbd.Journal
	opts  Options

	// stream is the filesystem's order stream (opts.Journal.Stream): every
	// foreground data write and read it issues is tagged with it, keeping a
	// multi-tenant stack's shards in disjoint ordering domains.
	stream uint64

	inodes      map[Ino]*Inode
	inodeList   []*Inode // ascending ino; deterministic whole-FS iteration
	pdflushCond *sim.Cond
	pd          pdflushSM // handler-mode pdflush state (pdflush.go)
	byHome      map[uint64]*Inode
	root        *Inode
	nextIno     Ino
	nextLPA     uint64
	nFree       int
	allocGrps   []*jbd.Buffer
	writeVer    int64

	stats Stats
	obs   fsObs
}

// fsObs holds the filesystem's registry instruments; all nil when disabled.
type fsObs struct {
	dirtyPages  *metrics.Gauge
	pdflushRuns *metrics.Counter
	syncSeq     uint64 // span correlation id for sync-call spans
}

// New formats and mounts a filesystem over a block-layer front-end (the
// single-queue block.Layer or the multi-queue blkmq.MQ).
func New(k *sim.Kernel, layer block.Submitter, opts Options) *FS {
	if opts.Jiffy <= 0 {
		opts.Jiffy = 10 * sim.Millisecond
	}
	f := &FS{
		k: k, layer: layer, opts: opts,
		stream:  opts.Journal.Stream,
		inodes:  make(map[Ino]*Inode),
		byHome:  make(map[uint64]*Inode),
		nextIno: RootIno + 1,
		nextLPA: opts.Journal.Start + uint64(opts.Journal.Pages) + 1,
	}
	if reg := metrics.Resolve(opts.Metrics); reg != nil {
		f.obs.dirtyPages = reg.Gauge("fs/dirty.pages")
		f.obs.pdflushRuns = reg.Counter("fs/pdflush.runs")
	}
	if opts.Journal.Metrics == nil {
		opts.Journal.Metrics = opts.Metrics
	}
	f.j = jbd.New(k, layer, opts.Journal)
	// Allocation metadata is sharded into groups like EXT4's block-group
	// bitmaps; concurrent writers dirty different group buffers instead of
	// contending on one global block (which would serialize every commit
	// through the multi-transaction page-conflict machinery).
	for g := 0; g < allocGroups; g++ {
		buf := &jbd.Buffer{Home: f.allocLPARaw(), Name: fmt.Sprintf("alloc-group-%d", g)}
		buf.Snapshot = func() any { return AllocMeta{NextLPA: f.nextLPA, NFree: f.nFree} }
		f.allocGrps = append(f.allocGrps, buf)
	}
	f.root = f.newInode(RootIno, true)
	if opts.PdflushInterval > 0 {
		f.pdflushCond = sim.NewCond(k)
		// Data-journaling modes route pdflush pages through the journal,
		// whose conflict rules block arbitrarily deep — those mounts keep
		// the blocking daemon even on callback kernels.
		journals := opts.Mode == DataJournal || opts.SelectiveDataJournal
		if k.CallbackMode() && !journals {
			k.SpawnHandler("fs/pdflush", f.pdflushStep)
		} else {
			k.Spawn("fs/pdflush", f.pdflush)
		}
	}
	return f
}

// pdflush periodically writes back dirty pages of every inode as orderless
// requests. It sleeps only while dirty pages exist, so an idle filesystem
// generates no events.
func (f *FS) pdflush(p *sim.Proc) {
	for {
		if !f.anyDirty() {
			f.pdflushCond.Wait(p)
			continue
		}
		p.Sleep(f.opts.PdflushInterval)
		// inodeList, not the inode map: map iteration order would leak
		// run-to-run nondeterminism into the writeback submission order.
		for _, i := range f.inodeList {
			if i.DirtyPages() > 0 {
				f.writeback(p, i, block.FlagBackground, false, reqtrace.Ctx{})
				f.stats.PdflushRuns++
				f.obs.pdflushRuns.Inc()
			}
		}
	}
}

func (f *FS) anyDirty() bool {
	for _, i := range f.inodeList {
		if len(i.dirtyPg) > 0 {
			return true
		}
	}
	return false
}

// allocGroups is the number of allocation-bitmap shards.
const allocGroups = 16

// allocBufFor returns the allocation-group buffer covering an inode.
func (f *FS) allocBufFor(ino Ino) *jbd.Buffer {
	return f.allocGrps[uint64(ino)%allocGroups]
}

// Journal exposes the journal (instrumentation).
func (f *FS) Journal() *jbd.Journal { return f.j }

// Layer exposes the block-layer front-end.
func (f *FS) Layer() block.Submitter { return f.layer }

// Options returns the mount options.
func (f *FS) Options() Options { return f.opts }

// Stats returns cumulative statistics.
func (f *FS) Stats() Stats { return f.stats }

// Root returns the root directory inode.
func (f *FS) Root() *Inode { return f.root }

func (f *FS) allocLPARaw() uint64 {
	lpa := f.nextLPA
	f.nextLPA++
	return lpa
}

func (f *FS) newInode(ino Ino, dir bool) *Inode {
	i := &Inode{
		fs: f, ino: ino, dir: dir,
		home:  f.allocLPARaw(),
		pages: make(map[int64]*page),
		nlink: 1,
	}
	if dir {
		i.entries = make(map[string]uint64)
	}
	i.buf = &jbd.Buffer{Home: i.home, Name: fmt.Sprintf("inode-%d", ino)}
	i.buf.Snapshot = i.snapshot
	f.inodes[ino] = i
	f.inodeList = append(f.inodeList, i) // ino is monotonic: stays sorted
	f.byHome[i.home] = i
	return i
}

func (f *FS) cpu(p *sim.Proc) {
	if f.opts.SyscallCPU > 0 {
		p.Advance(f.opts.SyscallCPU)
	}
}

func (f *FS) wake(p *sim.Proc) {
	if f.opts.WakeLatency > 0 {
		p.Advance(f.opts.WakeLatency)
	}
}

// jiffies returns the current time in jiffy units.
func (f *FS) jiffies(p *sim.Proc) int64 {
	return int64(p.Now() / sim.Time(f.opts.Jiffy))
}

// touchMeta marks the inode's metadata dirty in the running transaction.
func (f *FS) touchMeta(p *sim.Proc, i *Inode) {
	f.j.DirtyBuffer(p, i.buf, nil)
}

// MetaPending reports whether the inode has uncommitted metadata.
func (i *Inode) MetaPending() bool { return i.buf.Pending() }

// --- namespace operations ---

// Create makes a new regular file under dir. It dirties the directory, the
// new inode and the allocator — the metadata footprint of a varmail-style
// create.
func (f *FS) Create(p *sim.Proc, dir *Inode, name string) (*Inode, error) {
	f.cpu(p)
	if !dir.dir {
		return nil, fmt.Errorf("fs: create %q: not a directory", name)
	}
	if _, exists := dir.entries[name]; exists {
		return nil, fmt.Errorf("fs: create %q: exists", name)
	}
	ino := f.nextIno
	f.nextIno++
	child := f.newInode(ino, false)
	child.mtimeJiffy = f.jiffies(p)
	dir.entries[name] = child.home
	dir.mtimeJiffy = f.jiffies(p)
	f.touchMeta(p, dir)
	f.touchMeta(p, child)
	f.j.DirtyBuffer(p, f.allocBufFor(ino), nil)
	child.allocDirty = true
	f.stats.Creates++
	return child, nil
}

// Mkdir makes a new directory under dir.
func (f *FS) Mkdir(p *sim.Proc, dir *Inode, name string) (*Inode, error) {
	f.cpu(p)
	if _, exists := dir.entries[name]; exists {
		return nil, fmt.Errorf("fs: mkdir %q: exists", name)
	}
	ino := f.nextIno
	f.nextIno++
	child := f.newInode(ino, true)
	dir.entries[name] = child.home
	f.touchMeta(p, dir)
	f.touchMeta(p, child)
	f.j.DirtyBuffer(p, f.allocBufFor(ino), nil)
	return child, nil
}

// Lookup resolves name in dir.
func (f *FS) Lookup(dir *Inode, name string) (*Inode, bool) {
	home, ok := dir.entries[name]
	if !ok {
		return nil, false
	}
	i, ok := f.byHome[home]
	return i, ok
}

// Unlink removes name from dir, freeing the inode when the link count
// drops to zero.
func (f *FS) Unlink(p *sim.Proc, dir *Inode, name string) error {
	f.cpu(p)
	home, ok := dir.entries[name]
	if !ok {
		return fmt.Errorf("fs: unlink %q: no such file", name)
	}
	delete(dir.entries, name)
	dir.mtimeJiffy = f.jiffies(p)
	f.touchMeta(p, dir)
	if child, ok := f.byHome[home]; ok {
		child.nlink--
		if child.nlink == 0 {
			f.nFree += len(child.blocks)
			f.j.DirtyBuffer(p, f.allocBufFor(child.ino), nil)
			delete(f.inodes, child.ino)
			delete(f.byHome, child.home)
			for n, o := range f.inodeList {
				if o == child {
					f.inodeList = append(f.inodeList[:n], f.inodeList[n+1:]...)
					break
				}
			}
		}
	}
	f.stats.Unlinks++
	return nil
}
