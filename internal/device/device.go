package device

import (
	"math/rand"

	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/nand"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// Stats are cumulative device statistics.
type Stats struct {
	Writes       int64
	Reads        int64
	Flushes      int64
	Barriers     int64 // writes carrying the barrier flag
	FUAWrites    int64
	BusyRejects  int64 // submissions rejected with a full queue
	CacheHits    int64
	EpochCrosses int64 // writeback order checks (barrier devices)
	ReadErrors   int64 // reads completed with an uncorrectable media error
}

// cacheEntry is one page in the writeback cache. Entries live from DMA
// completion until their NAND program completes (or forever, under power
// failure, if the device has PLP).
type cacheEntry struct {
	seq     uint64 // cache arrival order == transfer order
	lpa     uint64
	data    any
	stream  uint64
	epoch   uint64 // write epoch within the stream
	urgent  bool   // FUA: write back immediately
	started bool   // handed to the FTL appender
	idx     uint64 // FTL append index, valid once started
	durable bool
}

// Device is the simulated storage device.
type Device struct {
	k   *sim.Kernel
	cfg Config
	arr *nand.Array
	f   *ftl.FTL
	rng *rand.Rand
	inj *fault.Injector // nil unless cfg.Fault is set

	// Command queue.
	queued   []*Command
	inflight []*Command
	cmdSeq   uint64
	order    map[uint64]*streamOrder // per-stream incomplete-command index
	order0   *streamOrder            // order[0]: the single-queue fast path

	// Writeback cache.
	entries  []*cacheEntry // not-yet-durable pages in transfer order
	entrySeq uint64
	dirtyN   int // entries not yet handed to the FTL appender
	urgentN  int // dirty entries with FUA urgency
	readMap  map[uint64]any
	epochs   map[uint64]uint64 // per-stream write epoch (barrier count)

	dmaBus *sim.Semaphore

	pickCond  *sim.Cond // workers: a command may have become eligible
	spaceCond *sim.Cond // host: a queue slot may have freed
	wbCond    *sim.Cond // writeback daemon kick
	reapCond  *sim.Cond // durability reaper kick
	doneCond  *sim.Cond // cache entries became durable (flush/FUA waits)

	flushing    bool
	wantDrain   bool // writeback daemon should drain everything
	barrierOn   bool // a barrier write has been seen; penalty active
	dead        bool
	plpSnapshot []*cacheEntry

	// Handler-mode state machines (see handler.go).
	wb   wbSM
	reap reapSM

	eligScratch []int // pick()'s eligible-index scratch, reused across calls

	qdSeries *metrics.Series
	stats    Stats
	obs      devObs
}

// devObs holds the device's registry instruments. With no registry every
// field is nil and the nil-safe instrument methods reduce each update to a
// branch; spans go through the kernel and are likewise nil-checked there.
type devObs struct {
	writes, reads, flushes *metrics.Counter
	barriers, fua          *metrics.Counter
	readErrs               *metrics.Counter
	qdepth, cache          *metrics.Gauge
	epochMax, epochStreams *metrics.Gauge
	maxEpoch               uint64 // deepest per-stream epoch seen
}

// cmdSpanName labels a command's trace span; begin and end must agree for
// Chrome's async pairing, so it depends only on immutable command fields.
func cmdSpanName(c *Command) string {
	switch c.Kind {
	case CmdFlush:
		return "flush"
	case CmdBarrier:
		return "barrier"
	case CmdRead:
		return "read"
	default:
		if c.Barrier {
			return "write+barrier"
		}
		return "write"
	}
}

// New builds a device with a freshly formatted FTL and starts its service
// processes.
func New(k *sim.Kernel, cfg Config) *Device {
	cfg = defaults(cfg)
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	arr := nand.New(k, cfg.Geometry, cfg.Timing)
	d := newDevice(k, cfg, arr)
	d.f = ftl.New(k, arr, cfg.FTL)
	d.start()
	return d
}

func newDevice(k *sim.Kernel, cfg Config, arr *nand.Array) *Device {
	d := &Device{
		k: k, cfg: cfg, arr: arr,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		order:     make(map[uint64]*streamOrder),
		order0:    &streamOrder{},
		readMap:   make(map[uint64]any),
		epochs:    make(map[uint64]uint64),
		dmaBus:    sim.NewSemaphore(k, 1),
		pickCond:  sim.NewCond(k),
		spaceCond: sim.NewCond(k),
		wbCond:    sim.NewCond(k),
		reapCond:  sim.NewCond(k),
		doneCond:  sim.NewCond(k),
		qdSeries:  metrics.NewSeries(cfg.Name + "/qd"),
	}
	d.inj = fault.New(cfg.Fault)
	arr.SetFault(d.inj)
	if reg := metrics.Resolve(cfg.Metrics); reg != nil {
		d.obs = devObs{
			writes:       reg.Counter("device/writes"),
			reads:        reg.Counter("device/reads"),
			flushes:      reg.Counter("device/flushes"),
			barriers:     reg.Counter("device/barriers"),
			fua:          reg.Counter("device/fua"),
			readErrs:     reg.Counter("device/read.errors"),
			qdepth:       reg.Gauge("device/queue.depth"),
			cache:        reg.Gauge("device/cache.pages"),
			epochMax:     reg.Gauge("device/epoch.max"),
			epochStreams: reg.Gauge("device/epoch.streams"),
		}
	}
	return d
}

// start spawns the device's service processes in the kernel's process
// model: run-to-completion handlers on callback kernels, the blocking
// goroutine loops (the trace oracle) on the reference kernel.
func (d *Device) start() {
	prefix := d.cfg.Name + "/worker"
	if d.k.CallbackMode() {
		for i := 0; i < d.cfg.QueueDepth; i++ {
			w := &workerSM{}
			d.k.SpawnHandlerIdx(prefix, i, func(h *sim.Proc) { d.workerStep(h, w) })
		}
		d.k.SpawnHandler(d.cfg.Name+"/writeback", d.writebackStep)
		d.k.SpawnHandler(d.cfg.Name+"/reaper", d.reaperStep)
		return
	}
	for i := 0; i < d.cfg.QueueDepth; i++ {
		d.k.SpawnIdx(prefix, i, d.worker)
	}
	d.k.Spawn(d.cfg.Name+"/writeback", d.writebackLoop)
	d.k.Spawn(d.cfg.Name+"/reaper", d.reaperLoop)
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Array exposes the NAND array (verification hooks).
func (d *Device) Array() *nand.Array { return d.arr }

// FTL exposes the translation layer (verification hooks).
func (d *Device) FTL() *ftl.FTL { return d.f }

// FaultInjector exposes the device's fault injector (nil when the config
// has no fault plan), for fault-delivery counters in tests and experiments.
func (d *Device) FaultInjector() *fault.Injector { return d.inj }

// Stats returns cumulative statistics.
func (d *Device) Stats() Stats { return d.stats }

// QDSeries returns the queue-depth trace (Figs. 10, 12).
func (d *Device) QDSeries() *metrics.Series { return d.qdSeries }

// Occupancy returns the number of commands in the device (queued + in
// service).
func (d *Device) Occupancy() int { return len(d.queued) + len(d.inflight) }

// CurEpoch returns the write epoch of stream 0 (the only stream a
// single-queue host uses), i.e. the device-global barrier count.
func (d *Device) CurEpoch() uint64 { return d.epochs[0] }

// StreamEpoch returns the current write epoch of one stream.
func (d *Device) StreamEpoch(stream uint64) uint64 { return d.epochs[stream] }

// Dead reports whether the device has crashed.
func (d *Device) Dead() bool { return d.dead }

// Submit offers a command to the device. It returns false when the command
// queue is full or the device is dead; the host must retry (the block
// layer's dispatch module handles that, §3.4 Fig. 6b).
func (d *Device) Submit(c *Command) bool {
	if d.dead {
		return false
	}
	if d.Occupancy() >= d.cfg.QueueDepth {
		d.stats.BusyRejects++
		return false
	}
	d.cmdSeq++
	c.seq = d.cmdSeq
	c.arrived = d.k.Now()
	c.complete = false // commands are pooled; reset per admission
	c.Err = nil
	so := d.streamOrderFor(c.Stream)
	so.all = append(so.all, c.seq) // cmdSeq is increasing: append keeps order
	if c.Prio != PrioSimple {
		so.ord = append(so.ord, c.seq)
	}
	d.queued = append(d.queued, c)
	d.qdSeries.Record(d.k.Now(), float64(d.Occupancy()))
	if d.obs.qdepth != nil {
		d.obs.qdepth.Set(int64(d.Occupancy()))
	}
	if d.k.Spans() != nil {
		d.k.SpanBegin("device", cmdSpanName(c), c.seq)
	}
	// At most len(queued) workers can pick something; waking the rest of
	// the idle worker pool would be a futile dispatch each.
	d.pickCond.SignalN(len(d.queued))
	return true
}

// WaitSpace blocks until the queue has a free slot (or the device dies).
func (d *Device) WaitSpace(p *sim.Proc) {
	for !d.dead && d.Occupancy() >= d.cfg.QueueDepth {
		d.spaceCond.Wait(p)
	}
}

// --- command servicing ---

// streamOrder tracks one stream's incomplete commands (queued and in
// flight) as ascending seq lists. The seed's eligibility check re-scanned
// the whole queue per candidate — O(n²) per pick, the simulator's hottest
// path under deep queues; the index answers the same questions from the
// list heads in O(1).
type streamOrder struct {
	all []uint64 // seqs of every incomplete command
	ord []uint64 // seqs of incomplete ordered/head-of-queue commands
}

func (d *Device) streamOrderFor(stream uint64) *streamOrder {
	if stream == 0 {
		return d.order0
	}
	so := d.order[stream]
	if so == nil {
		so = &streamOrder{}
		d.order[stream] = so
	}
	return so
}

// seqRemove deletes seq from an ascending list.
func seqRemove(a []uint64, seq uint64) []uint64 {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a) && a[lo] == seq {
		a = append(a[:lo], a[lo+1:]...)
	}
	return a
}

// retire drops a completed command from the ordering index.
func (d *Device) retire(c *Command) {
	so := d.streamOrderFor(c.Stream)
	so.all = seqRemove(so.all, c.seq)
	if c.Prio != PrioSimple {
		so.ord = seqRemove(so.ord, c.seq)
	}
}

// eligible reports whether queued command c may begin service under SCSI
// ordering rules, given every incomplete command of the same stream with a
// smaller sequence number. Ordering is scoped per stream: commands of other
// streams never constrain c, which is what lets independent streams proceed
// through their own barriers concurrently.
func (d *Device) eligible(c *Command) bool {
	switch c.Prio {
	case PrioHeadOfQueue:
		return true
	case PrioOrdered:
		// Only after everything received before it (c is in all, so the
		// head is c itself iff nothing older is incomplete).
		return d.streamOrderFor(c.Stream).all[0] == c.seq
	default: // simple: must not pass an earlier ordered/head-of-queue command
		ord := d.streamOrderFor(c.Stream).ord
		return len(ord) == 0 || ord[0] > c.seq
	}
}

// pick removes one eligible command from the queue, emulating the
// controller's freedom to choose among simple commands.
func (d *Device) pick() *Command {
	elig := d.eligScratch[:0]
	for i, c := range d.queued {
		if d.eligible(c) {
			if c.Prio == PrioHeadOfQueue {
				elig = append(elig[:0], i)
				break
			}
			elig = append(elig, i)
		}
	}
	d.eligScratch = elig // keep the grown backing array for the next pick
	if len(elig) == 0 {
		return nil
	}
	i := elig[d.rng.Intn(len(elig))]
	c := d.queued[i]
	d.queued = append(d.queued[:i], d.queued[i+1:]...)
	d.inflight = append(d.inflight, c)
	return c
}

func (d *Device) worker(p *sim.Proc) {
	for {
		var c *Command
		for {
			if !d.dead {
				if c = d.pick(); c != nil {
					break
				}
			}
			d.pickCond.Wait(p)
		}
		d.service(p, c)
	}
}

// barrierAdvance is the epoch-advance bookkeeping a barrier performs,
// shared statement-for-statement by the blocking and handler service paths
// (standalone barrier command and barrier-flagged write alike).
func (d *Device) barrierAdvance(stream uint64) {
	d.stats.Barriers++
	d.epochs[stream]++
	if d.obs.barriers != nil {
		d.obs.barriers.Inc()
		d.obs.epochStreams.Set(int64(len(d.epochs)))
		if e := d.epochs[stream]; e > d.obs.maxEpoch {
			d.obs.maxEpoch = e
			d.obs.epochMax.Set(int64(e))
		}
	}
	if d.cfg.BarrierPenalty > 0 && !d.barrierOn {
		d.barrierOn = true
		d.arr.ProgramScale = 1 + d.cfg.BarrierPenalty
	}
}

func (d *Device) service(p *sim.Proc, c *Command) {
	p.Advance(d.cfg.CmdOverhead)
	if d.dead {
		return
	}
	c.Trace.StampChain(reqtrace.StageDevStart, p.Now())
	switch c.Kind {
	case CmdFlush:
		d.stats.Flushes++
		d.doFlush(p)
	case CmdBarrier:
		d.barrierAdvance(c.Stream)
	case CmdWrite:
		if c.PreFlush {
			d.stats.Flushes++
			d.doFlush(p)
			if d.dead {
				return
			}
		}
		d.doWrite(p, c)
	case CmdRead:
		d.doRead(p, c)
	}
	if d.dead {
		return
	}
	d.complete(p, c)
}

func (d *Device) doWrite(p *sim.Proc, c *Command) {
	// Cache admission: wait for a free page slot.
	for !d.dead && len(d.entries) >= d.cfg.CachePages {
		d.wantDrain = true
		d.wbCond.Broadcast()
		d.doneCond.Wait(p)
	}
	if d.dead {
		return
	}
	if c.Barrier && d.cfg.BarrierCmdCost > 0 {
		p.Advance(d.cfg.BarrierCmdCost)
	}
	// DMA the page from host memory into the cache.
	d.dmaBus.Acquire(p, 1)
	p.Advance(d.cfg.DMAPerPage)
	d.dmaBus.Release(1)
	if d.dead {
		return
	}
	d.entrySeq++
	e := &cacheEntry{seq: d.entrySeq, lpa: c.LPA, data: c.Data,
		stream: c.Stream, epoch: d.epochs[c.Stream], urgent: c.FUA}
	d.entries = append(d.entries, e)
	d.dirtyN++
	if e.urgent {
		d.urgentN++
	}
	d.readMap[c.LPA] = c.Data
	d.stats.Writes++
	d.obs.cache.Set(int64(len(d.entries)))
	if c.Barrier {
		d.barrierAdvance(c.Stream)
	}
	if d.cfg.EagerWriteback || d.dirtyCount() >= d.highWater() || e.urgent {
		d.wbCond.Broadcast()
	}
	if c.FUA {
		d.stats.FUAWrites++
		if d.cfg.PLP {
			// The powerfail-protected cache is as durable as the medium:
			// FUA is satisfied at transfer.
			return
		}
		for !d.dead && !e.durable {
			d.doneCond.Wait(p)
		}
	}
}

// cacheLive reports whether lpa still has a not-yet-durable entry in the
// writeback cache. Only those reads are legitimately served from device
// DRAM; once the page is programmed and retired, a read touches the medium.
// The distinction is moot without fault injection (readMap doubles as the
// flash content shadow), so only the fault-armed read path consults it.
func (d *Device) cacheLive(lpa uint64) bool {
	for _, e := range d.entries {
		if e.lpa == lpa && !e.durable {
			return true
		}
	}
	return false
}

func (d *Device) doRead(p *sim.Proc, c *Command) {
	data, hit := d.readMap[c.LPA]
	if hit && d.cfg.Fault != nil && !d.cacheLive(c.LPA) {
		// Fault campaign: the page left the cache, so the read must face
		// the medium (and its injected errors), not the DRAM shadow.
		hit = false
	}
	if hit {
		d.stats.CacheHits++
	} else {
		var err error
		data, _, err = d.f.ReadE(p, c.LPA)
		if d.dead {
			return
		}
		if err != nil {
			// Uncorrectable media error: the command completes with the
			// error and transfers nothing. The host may retry — a later
			// attempt re-enters the device's read-retry ladder.
			c.Err = err
			d.stats.Reads++
			d.stats.ReadErrors++
			d.obs.readErrs.Inc()
			return
		}
	}
	d.dmaBus.Acquire(p, 1)
	p.Advance(d.cfg.DMAPerPage)
	d.dmaBus.Release(1)
	c.Data = data
	d.stats.Reads++
}

// doFlush persists every page currently in the cache. With PLP the cache is
// already durable, so only the command round trip is charged (the paper's
// tε).
func (d *Device) doFlush(p *sim.Proc) {
	if d.cfg.PLP {
		p.Advance(d.cfg.PLPFlushLatency)
		return
	}
	target := d.entrySeq
	d.wantDrain = true
	d.wbCond.Broadcast()
	for !d.dead && d.oldestPending() <= target {
		d.doneCond.Wait(p)
	}
}

// oldestPending returns the seq of the oldest non-durable cache entry, or
// MaxUint64 when the cache is clean.
func (d *Device) oldestPending() uint64 {
	for _, e := range d.entries {
		if !e.durable {
			return e.seq
		}
	}
	return ^uint64(0)
}

func (d *Device) complete(p *sim.Proc, c *Command) {
	for i, o := range d.inflight {
		if o == c {
			d.inflight = append(d.inflight[:i], d.inflight[i+1:]...)
			break
		}
	}
	c.complete = true
	d.retire(c)
	d.qdSeries.Record(p.Now(), float64(d.Occupancy()))
	if d.obs.writes != nil {
		d.obs.qdepth.Set(int64(d.Occupancy()))
		switch c.Kind {
		case CmdFlush:
			d.obs.flushes.Inc()
		case CmdWrite:
			d.obs.writes.Inc()
			if c.PreFlush {
				d.obs.flushes.Inc()
			}
			if c.FUA {
				d.obs.fua.Inc()
			}
		case CmdRead:
			d.obs.reads.Inc()
		}
	}
	if d.k.Spans() != nil {
		d.k.SpanEnd("device", cmdSpanName(c), c.seq)
	}
	c.Trace.StampChain(reqtrace.StageDevDone, p.Now())
	d.spaceCond.Broadcast()
	d.pickCond.SignalN(len(d.queued))
	if c.Done != nil {
		c.Done(p.Now(), c)
	}
}

// --- writeback path ---

func (d *Device) dirtyCount() int { return d.dirtyN }

func (d *Device) highWater() int {
	return int(float64(d.cfg.CachePages) * d.cfg.WritebackHighWater)
}

func (d *Device) lowWater() int {
	return int(float64(d.cfg.CachePages) * d.cfg.WritebackLowWater)
}

// nextWriteback chooses the next cache entry to append to the FTL. Barrier
// devices preserve transfer order (the paper's UFS FTL appends blocks in
// transfer order, which together with in-order recovery yields the epoch
// guarantee). Legacy devices scramble within a window, modelling an
// arbitrary cache-eviction policy — exactly why they need transfer-and-flush.
func (d *Device) nextWriteback() *cacheEntry {
	var window []*cacheEntry
	for _, e := range d.entries {
		if e.started {
			continue
		}
		if d.cfg.BarrierSupport {
			// Order preserved: always drain in transfer order (an urgent
			// entry pulls everything in front of it along).
			return e
		}
		if e.urgent {
			return e
		}
		window = append(window, e)
		if len(window) == 16 {
			break
		}
	}
	if len(window) == 0 {
		return nil
	}
	return window[d.rng.Intn(len(window))]
}

func (d *Device) shouldWriteback() bool {
	if d.dirtyN == 0 {
		return false
	}
	if d.cfg.EagerWriteback {
		return true
	}
	return d.wantDrain || d.urgentN > 0 || d.dirtyN >= d.lowWater()
}

func (d *Device) writebackLoop(p *sim.Proc) {
	for {
		for d.dead || !d.shouldWriteback() {
			if !d.dead && d.dirtyCount() == 0 {
				d.wantDrain = false
			}
			d.wbCond.Wait(p)
		}
		e := d.nextWriteback()
		if e == nil {
			d.wantDrain = false
			continue
		}
		e.started = true
		d.dirtyN--
		if e.urgent {
			d.urgentN--
		}
		e.idx = d.f.Append(p, e.lpa, e.data) // may block on FTL space
		if d.dead {
			return
		}
		d.reapCond.Broadcast()
	}
}

// reaperLoop retires cache entries as their NAND programs complete, freeing
// cache slots and waking FUA/flush waiters.
func (d *Device) reaperLoop(p *sim.Proc) {
	for {
		// Find the smallest outstanding append index.
		min := ^uint64(0)
		for _, e := range d.entries {
			if e.started && !e.durable && e.idx < min {
				min = e.idx
			}
		}
		if min == ^uint64(0) {
			d.reapCond.Wait(p)
			continue
		}
		d.f.WaitDurable(p, min+1)
		if d.dead {
			return
		}
		durableTo := d.f.DurableIdx()
		kept := d.entries[:0]
		retired := false
		for _, e := range d.entries {
			if e.started && !e.durable && e.idx < durableTo {
				e.durable = true
				retired = true
				continue // drop from cache
			}
			kept = append(kept, e)
		}
		d.entries = kept
		d.obs.cache.Set(int64(len(d.entries)))
		if retired {
			d.doneCond.Broadcast()
			d.pickCond.SignalN(len(d.queued))
		}
	}
}

// --- crash & recovery ---

// Crash simulates power failure: in-flight commands vanish, the NAND array
// drops in-flight programs, and — unless the device has PLP — the writeback
// cache is lost. The device object is dead afterwards; use Recover to bring
// the storage back as a new Device.
func (d *Device) Crash() {
	if d.dead {
		return
	}
	d.dead = true
	if d.cfg.PLP {
		// The supercap drains the cache to flash; equivalently, the cache
		// image survives and is replayed at next power-on.
		for _, e := range d.entries {
			if !e.durable {
				d.plpSnapshot = append(d.plpSnapshot, e)
			}
		}
		if d.inj.PLPFailure() {
			// PLP-failure model: the supercap dies mid-drain, persisting
			// only a seeded prefix of the pending entries in transfer
			// order. Everything beyond the prefix is lost exactly as on an
			// unprotected device.
			d.plpSnapshot = d.plpSnapshot[:d.inj.PLPDrain(len(d.plpSnapshot))]
		}
	}
	d.queued = nil
	d.inflight = nil
	d.order = make(map[uint64]*streamOrder)
	d.order0 = &streamOrder{}
	d.arr.Fail()
	// Wake every parked process so it can observe death and stand down.
	d.pickCond.Broadcast()
	d.spaceCond.Broadcast()
	d.wbCond.Broadcast()
	d.reapCond.Broadcast()
	d.doneCond.Broadcast()
}

// Recover powers the storage back on: it remounts the FTL from the NAND
// array (running the in-order recovery scan) and replays a PLP cache
// snapshot if one exists. It returns a fresh Device over the same array.
func Recover(p *sim.Proc, crashed *Device) *Device {
	if !crashed.dead {
		panic("device: Recover on a live device")
	}
	k := p.Kernel()
	crashed.arr.Restore()
	crashed.arr.ProgramScale = 1
	d := newDevice(k, crashed.cfg, crashed.arr)
	d.f = ftl.Mount(p, crashed.arr, crashed.cfg.FTL)
	for _, e := range crashed.plpSnapshot {
		idx := d.f.Append(p, e.lpa, e.data)
		d.f.WaitDurable(p, idx+1)
	}
	crashed.plpSnapshot = nil
	d.start()
	return d
}

// DurableData returns the post-crash durable contents of a logical page
// (verification hook; use after Recover).
func (d *Device) DurableData(lpa uint64) (any, bool) { return d.f.DurableData(lpa) }
