package device

// Persistence-constraint recorder: the capture half of the crash-state
// model checker (internal/crashmc). Instead of committing the writeback
// cache to one arbitrary persisted state at a sampled crash instant, the
// recorder snapshots the volatile cache contents together with the partial
// order the device's semantics impose on their persistence. The model
// checker then enumerates every downward-closed cut of that order — every
// disk image a legal controller could leave behind at this instant.
//
// The order is the device's *contract*, not the simulator's concrete drain
// schedule: a barrier device promises that epochs persist in order within a
// stream (cache-barrier semantics, §3.2) but is free to reorder within an
// epoch and across streams; a legacy device promises nothing at all about
// cached pages, which is exactly why the legacy stack needs
// transfer-and-flush. Checking the contract rather than the implementation
// makes a clean pass the strongest possible statement: no state the device
// is *allowed* to produce violates the invariant.

// VolatileWrite is one at-risk page in the writeback cache at the capture
// instant: a write that device recovery can genuinely lose. Entries whose
// NAND programs already completed inside the FTL's contiguous durable
// prefix are *not* volatile even before the reaper retires them — the
// first-hole recovery scan keeps them — so capture folds them into the
// durable base instead (a candidate image could not be materialized
// without them anyway, since images overlay the recovered base).
type VolatileWrite struct {
	Seq    uint64 // cache arrival order == transfer order
	LPA    uint64
	Data   any
	Stream uint64 // ordering domain (blkmq stream; 0 on single-queue hosts)
	Epoch  uint64 // write epoch within the stream (barrier count)
}

// Constraint is the captured persistence state: the volatile writes in
// transfer order plus, for each, the writes that must also have persisted
// in any crash state where it persisted. Every downward-closed subset of
// Writes under Preds is an admissible persisted set; the corresponding disk
// image is that subset (newest write per LPA) overlaid on the durable base.
type Constraint struct {
	Writes []VolatileWrite // ascending Seq
	// Preds[i] lists indices j such that Writes[i] persisted implies
	// Writes[j] persisted. Only immediate predecessors are recorded (the
	// previous epoch group of the stream); downward closure supplies the
	// transitive chain.
	Preds [][]int
	// Ordered records whether the device honors cache-barrier ordering
	// (epoch edges). Legacy devices leave Preds empty: any subset of the
	// cache may persist.
	Ordered bool
	// PLP marks a power-loss-protected device: the cache survives, so the
	// only admissible crash state is "everything persisted" — which device
	// recovery already folds into the durable base. Writes is empty.
	PLP bool
	// PLPPartial marks a PLP device whose fault plan models the supercap
	// dying mid-drain: the cache persists only a transfer-order prefix, so
	// Preds form a single chain over all streams (every prefix of the
	// drain order is admissible, nothing else), instead of PLP's single
	// full state or the barrier contract's per-stream epoch DAG.
	PLPPartial bool
}

// CaptureConstraints snapshots the device's volatile writeback-cache
// contents and persistence partial order. Call it at the crash instant
// (just before or after Crash; Crash does not disturb the cache snapshot).
// The returned constraint is independent of the device's later life.
func (d *Device) CaptureConstraints() Constraint {
	c := Constraint{Ordered: d.cfg.BarrierSupport, PLP: d.cfg.PLP}
	if d.cfg.PLP && !d.inj.PLPFailure() {
		// The supercap drains the cache on power failure; Recover replays
		// it into the durable base, so no write is at risk.
		return c
	}
	if d.cfg.PLP {
		// PLP-failure model: the supercap drains the cache in transfer
		// order and may die after any number of entries. The admissible
		// crash states are exactly the transfer-order prefixes, expressed
		// as a single chain over all streams.
		c.PLP, c.PLPPartial, c.Ordered = false, true, true
		for _, e := range d.entries {
			if e.durable {
				continue
			}
			if e.started && e.idx < d.f.DurableIdx() {
				continue // already survives the recovery scan (see below)
			}
			c.Writes = append(c.Writes, VolatileWrite{
				Seq: e.seq, LPA: e.lpa, Data: e.data,
				Stream: e.stream, Epoch: e.epoch,
			})
		}
		c.Preds = make([][]int, len(c.Writes))
		for i := 1; i < len(c.Writes); i++ {
			c.Preds[i] = []int{i - 1}
		}
		return c
	}
	for _, e := range d.entries {
		if e.durable {
			continue // already on the storage surface: part of the base
		}
		if e.started && e.idx < d.f.DurableIdx() {
			// Program completed inside the contiguous durable prefix: the
			// reaper has not retired the entry yet, but the page already
			// survives the FTL's first-hole recovery scan, so it belongs
			// to the durable base — no crash state can lose it. (Started
			// entries at or beyond the prefix stay volatile: in-flight
			// programs die with the power cut and completed ones beyond
			// the hole are discarded by the scan.)
			continue
		}
		c.Writes = append(c.Writes, VolatileWrite{
			Seq: e.seq, LPA: e.lpa, Data: e.data,
			Stream: e.stream, Epoch: e.epoch,
		})
	}
	c.Preds = make([][]int, len(c.Writes))
	if !c.Ordered {
		return c
	}
	// Group each stream's writes into epoch runs. Entries arrive in
	// transfer order and a stream's epoch counter only grows, so within
	// byStream[s] the epochs are non-decreasing; a run of equal epochs is
	// one barrier group. Edges: every member of a group requires the whole
	// previous group (epoch boundary); within a group there are no edges —
	// the contract lets the controller reorder inside an epoch even though
	// this simulator's drain happens to preserve transfer order, and the
	// checker must cover the contract, not one implementation.
	//
	// FUA contributes no extra edges here: its ordering force is
	// durability-at-completion, and a *completed* FUA write is durable by
	// definition — already folded into the base above. A FUA write still
	// volatile at the crash was never acknowledged to anyone, so the
	// contract makes no promise about it beyond its epoch's.
	byStream := make(map[uint64][]int)
	for i, w := range c.Writes {
		byStream[w.Stream] = append(byStream[w.Stream], i)
	}
	for _, idxs := range byStream {
		var prev, cur []int
		var curEpoch uint64
		for n, i := range idxs {
			w := c.Writes[i]
			if n == 0 || w.Epoch != curEpoch {
				if n > 0 {
					prev = cur
				}
				cur = nil
				curEpoch = w.Epoch
			}
			if len(prev) > 0 {
				c.Preds[i] = append([]int(nil), prev...)
			}
			cur = append(cur, i)
		}
	}
	return c
}
