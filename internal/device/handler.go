package device

import (
	"repro/internal/ftl"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// This file holds the run-to-completion (handler) form of the device's
// service processes: the SCSI command workers, the writeback daemon and the
// durability reaper. Each state machine mirrors its blocking original
// (worker/service, writebackLoop, reaperLoop) blocking point for blocking
// point — same Mesa-loop iterations, same waitlist appends, same stat
// bumps, same RNG call sites — so its dispatch trace is byte-identical to
// the goroutine code the reference kernel runs, while dispatching with zero
// goroutine switches.

// Worker phases. Each value names the continuation the worker armed before
// yielding; everything between two phases runs inline in one activation.
const (
	wPick      = iota // pick loop / parked on pickCond
	wOverhead         // CmdOverhead elapsed → route by command kind
	wFlushPLP         // PLP flush latency elapsed
	wFlushWait        // waiting for the cache to drain to flushTarget
	wWrite            // doWrite admission loop
	wWriteDMA         // acquiring the DMA bus (after any barrier cost)
	wWriteXfer        // DMA transfer elapsed → cache insertion
	wWriteFUA         // FUA durability wait
	wRead             // doRead entry
	wReadWait         // FTL read in flight
	wReadDMA          // acquiring the DMA bus for the read-out
	wReadXfer         // read-out DMA elapsed
	wTail             // common service tail: dead check, complete
)

// workerSM is one worker's state between activations.
type workerSM struct {
	phase       int
	c           *Command
	e           *cacheEntry // FUA wait target
	rdata       any         // read result
	rerr        error       // read media error
	flushTarget uint64
	preflush    bool // current flush is a write's PreFlush half
}

// abort drops the in-service command without completing it (device died
// mid-service) and returns the worker to the pick loop, mirroring the early
// returns of the blocking service path.
func (w *workerSM) abort() {
	w.c = nil
	w.e = nil
	w.rdata = nil
	w.rerr = nil
	w.phase = wPick
}

// flushEnter begins doFlush for the current command. It reports true when
// the worker yielded (slept on the PLP latency or parked on the drain
// wait); false when the flush finished inline.
func (w *workerSM) flushEnter(h *sim.Proc, d *Device) bool {
	if d.cfg.PLP {
		if d.cfg.PLPFlushLatency > 0 {
			w.phase = wFlushPLP
			h.WakeIn(d.cfg.PLPFlushLatency)
			return true
		}
		return false
	}
	w.flushTarget = d.entrySeq
	d.wantDrain = true
	d.wbCond.Broadcast()
	if !d.dead && d.oldestPending() <= w.flushTarget {
		w.phase = wFlushWait
		d.doneCond.Park(h)
		return true
	}
	return false
}

// flushDone routes control after a finished flush: a standalone CmdFlush
// falls to the service tail; a PreFlush continues into the write path after
// the same dead check the blocking code performs.
func (w *workerSM) flushDone(d *Device) {
	if !w.preflush {
		w.phase = wTail
		return
	}
	if d.dead {
		w.abort()
		return
	}
	w.phase = wWrite
}

func (d *Device) workerStep(h *sim.Proc, w *workerSM) {
	for {
		switch w.phase {
		case wPick:
			if !d.dead {
				if c := d.pick(); c != nil {
					w.c = c
					w.phase = wOverhead
					if d.cfg.CmdOverhead > 0 {
						h.WakeIn(d.cfg.CmdOverhead)
						return
					}
					continue
				}
			}
			d.pickCond.Park(h)
			return

		case wOverhead:
			if d.dead {
				w.abort()
				continue
			}
			c := w.c
			c.Trace.StampChain(reqtrace.StageDevStart, h.Now())
			switch c.Kind {
			case CmdFlush:
				d.stats.Flushes++
				w.preflush = false
				if w.flushEnter(h, d) {
					return
				}
				w.flushDone(d)
			case CmdBarrier:
				d.barrierAdvance(c.Stream)
				w.phase = wTail
			case CmdWrite:
				if c.PreFlush {
					d.stats.Flushes++
					w.preflush = true
					if w.flushEnter(h, d) {
						return
					}
					w.flushDone(d)
					continue
				}
				w.phase = wWrite
			case CmdRead:
				w.phase = wRead
			}

		case wFlushPLP:
			w.flushDone(d)
		case wFlushWait:
			if !d.dead && d.oldestPending() <= w.flushTarget {
				d.doneCond.Park(h)
				return
			}
			w.flushDone(d)

		case wWrite:
			// Cache admission: wait for a free page slot.
			if !d.dead && len(d.entries) >= d.cfg.CachePages {
				d.wantDrain = true
				d.wbCond.Broadcast()
				d.doneCond.Park(h)
				return
			}
			if d.dead {
				w.abort()
				continue
			}
			w.phase = wWriteDMA
			if w.c.Barrier && d.cfg.BarrierCmdCost > 0 {
				h.WakeIn(d.cfg.BarrierCmdCost)
				return
			}
		case wWriteDMA:
			if !d.dmaBus.AcquireOrPark(h, 1) {
				return
			}
			w.phase = wWriteXfer
			if d.cfg.DMAPerPage > 0 {
				h.WakeIn(d.cfg.DMAPerPage)
				return
			}
		case wWriteXfer:
			d.dmaBus.Release(1)
			if d.dead {
				w.abort()
				continue
			}
			c := w.c
			d.entrySeq++
			e := &cacheEntry{seq: d.entrySeq, lpa: c.LPA, data: c.Data,
				stream: c.Stream, epoch: d.epochs[c.Stream], urgent: c.FUA}
			d.entries = append(d.entries, e)
			d.dirtyN++
			if e.urgent {
				d.urgentN++
			}
			d.readMap[c.LPA] = c.Data
			d.stats.Writes++
			d.obs.cache.Set(int64(len(d.entries)))
			if c.Barrier {
				d.barrierAdvance(c.Stream)
			}
			if d.cfg.EagerWriteback || d.dirtyCount() >= d.highWater() || e.urgent {
				d.wbCond.Broadcast()
			}
			if c.FUA {
				d.stats.FUAWrites++
				if d.cfg.PLP {
					// Powerfail-protected cache: FUA satisfied at transfer.
					w.phase = wTail
					continue
				}
				w.e = e
				w.phase = wWriteFUA
				continue
			}
			w.phase = wTail
		case wWriteFUA:
			if !d.dead && !w.e.durable {
				d.doneCond.Park(h)
				return
			}
			w.e = nil
			w.phase = wTail

		case wRead:
			c := w.c
			if data, hit := d.readMap[c.LPA]; hit &&
				(d.cfg.Fault == nil || d.cacheLive(c.LPA)) {
				d.stats.CacheHits++
				w.rdata = data
				w.phase = wReadDMA
				continue
			}
			if d.f.ReadStart(h, c.LPA, &w.rdata, &w.rerr) {
				w.phase = wReadWait
				h.Park()
				return
			}
			w.rdata = nil // unmapped page: reads as zero
			w.phase = wReadDMA
		case wReadWait:
			if d.dead {
				w.abort()
				continue
			}
			if w.rerr != nil {
				// Uncorrectable media error: complete with the error and
				// skip the read-out DMA, mirroring the blocking doRead.
				w.c.Err = w.rerr
				w.rerr = nil
				w.rdata = nil
				d.stats.Reads++
				d.stats.ReadErrors++
				d.obs.readErrs.Inc()
				w.phase = wTail
				continue
			}
			w.phase = wReadDMA
		case wReadDMA:
			if !d.dmaBus.AcquireOrPark(h, 1) {
				return
			}
			w.phase = wReadXfer
			if d.cfg.DMAPerPage > 0 {
				h.WakeIn(d.cfg.DMAPerPage)
				return
			}
		case wReadXfer:
			d.dmaBus.Release(1)
			w.c.Data = w.rdata
			w.rdata = nil
			d.stats.Reads++
			w.phase = wTail

		case wTail:
			if d.dead {
				w.abort()
				continue
			}
			c := w.c
			w.c = nil
			w.phase = wPick
			d.complete(h, c)
		}
	}
}

// Writeback daemon phases.
const (
	wbCheck  = iota // waiting for work / choosing the next entry
	wbAppend        // FTL append in progress (may park on seal/space)
)

type wbSM struct {
	phase int
	e     *cacheEntry
	op    ftl.AppendOp
}

func (d *Device) writebackStep(h *sim.Proc) {
	for {
		switch d.wb.phase {
		case wbCheck:
			if d.dead || !d.shouldWriteback() {
				if !d.dead && d.dirtyCount() == 0 {
					d.wantDrain = false
				}
				d.wbCond.Park(h)
				return
			}
			e := d.nextWriteback()
			if e == nil {
				d.wantDrain = false
				continue
			}
			e.started = true
			d.dirtyN--
			if e.urgent {
				d.urgentN--
			}
			d.wb.e = e
			d.wb.op.Start(e.lpa, e.data)
			d.wb.phase = wbAppend
		case wbAppend:
			if !d.f.AppendStep(h, &d.wb.op) {
				return // parked on FTL seal barrier or free-segment wait
			}
			d.wb.e.idx = d.wb.op.Idx
			d.wb.e = nil
			if d.dead {
				h.Complete() // the blocking loop returns (dies) here too
				return
			}
			d.reapCond.Broadcast()
			d.wb.phase = wbCheck
		}
	}
}

// Reaper phases.
const (
	reapScan = iota // scanning for the oldest outstanding append
	reapWait        // waiting for the FTL durability watermark
)

type reapSM struct {
	phase  int
	target uint64
}

func (d *Device) reaperStep(h *sim.Proc) {
	for {
		switch d.reap.phase {
		case reapScan:
			// Find the smallest outstanding append index.
			min := ^uint64(0)
			for _, e := range d.entries {
				if e.started && !e.durable && e.idx < min {
					min = e.idx
				}
			}
			if min == ^uint64(0) {
				d.reapCond.Park(h)
				return
			}
			d.reap.target = min + 1
			d.reap.phase = reapWait
		case reapWait:
			if !d.f.DurableOrPark(h, d.reap.target) {
				return
			}
			if d.dead {
				h.Complete() // the blocking loop returns (dies) here too
				return
			}
			durableTo := d.f.DurableIdx()
			kept := d.entries[:0]
			retired := false
			for _, e := range d.entries {
				if e.started && !e.durable && e.idx < durableTo {
					e.durable = true
					retired = true
					continue // drop from cache
				}
				kept = append(kept, e)
			}
			d.entries = kept
			d.obs.cache.Set(int64(len(d.entries)))
			if retired {
				d.doneCond.Broadcast()
				d.pickCond.SignalN(len(d.queued))
			}
			d.reap.phase = reapScan
		}
	}
}
