// Package device models a barrier-compliant flash storage device: a DRAM
// writeback cache in front of the log-structured FTL, a command queue with
// the SCSI priority levels the paper's order-preserving dispatch relies on
// (simple / ordered / head-of-queue, §3.4), the cache-barrier write flag
// (§3.2), FLUSH and FUA handling, optional power-loss protection
// (supercap), and crash injection with mount-time recovery.
package device

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/nand"
	"repro/internal/sim"
)

// Config describes one storage device. The presets below mirror the
// platforms of the paper's §6.1 plus the seven-device parallelism sweep of
// Fig. 1.
type Config struct {
	Name       string
	QueueDepth int // command queue entries (paper: UFS QD16, SATA QD32)
	CachePages int // writeback cache capacity in 4KB pages

	// PLP marks a power-loss-protected (supercapacitor) device: cache
	// contents survive power failure, so flush is nearly free and barrier
	// ordering is trivially satisfied (§3.2).
	PLP bool

	// BarrierSupport makes the device honor the cache-barrier flag: the
	// writeback path preserves transfer order, so epochs persist in order
	// without a flush. Without it the device may write back cached pages in
	// any order (the legacy behaviour that forces transfer-and-flush).
	BarrierSupport bool

	// BarrierPenalty inflates NAND program time while the device operates
	// in barrier mode. The paper introduces a 5% penalty on the plain-SSD
	// to model barrier overhead (§6.1).
	BarrierPenalty float64

	// DMAPerPage is the host-to-device transfer time of one 4KB page,
	// including protocol overhead (the paper instruments ~70µs on UFS).
	DMAPerPage sim.Duration

	// CmdOverhead is the fixed controller cost to receive and decode one
	// command.
	CmdOverhead sim.Duration

	// PLPFlushLatency is the flush-command round trip on a power-loss-
	// protected device (the paper's tε: small but not negligible).
	PLPFlushLatency sim.Duration

	// EagerWriteback makes the cache append pages to the FTL as they
	// arrive instead of batching to a low-water mark. Log-structured
	// barrier devices do this naturally (appends are sequential anyway),
	// which is what keeps their flush latency low.
	EagerWriteback bool

	// BarrierCmdCost is the extra controller work per barrier-flagged write
	// (epoch bookkeeping in the FTL); together with BarrierPenalty it makes
	// barrier-mode IO slightly costlier than plain buffered IO, the 1-25%
	// deficiency of §6.2.
	BarrierCmdCost sim.Duration

	// WritebackLowWater / HighWater control the background writeback
	// daemon, as fractions of CachePages.
	WritebackLowWater  float64
	WritebackHighWater float64

	Geometry nand.Geometry
	Timing   nand.Timing
	FTL      ftl.Config

	// Mobile marks a smartphone-class platform: the stack charges higher
	// host-side costs (slow cores, deeper IRQ path), which is what keeps
	// Wait-on-Transfer at half of barrier throughput even though the DMA
	// itself dominates (§6.2's UFS numbers).
	Mobile bool

	// Seed drives the deterministic pseudo-random writeback scrambling of
	// non-barrier devices.
	Seed int64

	// Fault, when non-nil, gives the device a failure personality: media
	// read errors with a read-retry latency ladder, transient program
	// retries, GC-interference latency windows, and the PLP-failure model
	// (supercap dies mid-drain). Nil — the default everywhere — injects
	// nothing and leaves every dispatch trace bit-identical.
	Fault *fault.Plan

	// Metrics is an explicit observability registry for this device; nil
	// falls back to the process-wide live registry (metrics.SetLive), and
	// a nil resolution disables instrumentation entirely.
	Metrics *metrics.Registry
}

// Validate reports a descriptive error for nonsensical configuration.
func (c Config) Validate() error {
	if c.QueueDepth <= 0 {
		return fmt.Errorf("device %q: queue depth %d", c.Name, c.QueueDepth)
	}
	if c.CachePages <= 0 {
		return fmt.Errorf("device %q: cache pages %d", c.Name, c.CachePages)
	}
	return c.Geometry.Validate()
}

func defaults(c Config) Config {
	if c.WritebackLowWater == 0 {
		c.WritebackLowWater = 0.25
	}
	if c.WritebackHighWater == 0 {
		c.WritebackHighWater = 0.5
	}
	if c.FTL.GCLowWater == 0 {
		c.FTL = ftl.DefaultConfig()
	}
	if c.BarrierSupport && c.BarrierCmdCost == 0 {
		c.BarrierCmdCost = 2 * sim.Microsecond
	}
	if c.BarrierSupport {
		c.EagerWriteback = true
	}
	if c.PLP && c.PLPFlushLatency == 0 {
		c.PLPFlushLatency = 25 * sim.Microsecond
	}
	return c
}

// mlcTiming approximates a mature MLC NAND part.
func mlcTiming() nand.Timing {
	return nand.Timing{
		Program: 500 * sim.Microsecond,
		Read:    50 * sim.Microsecond,
		Erase:   3500 * sim.Microsecond,
		BusXfer: 12 * sim.Microsecond,
	}
}

// ufsTiming approximates a mobile UFS part with an SLC turbo-write cache:
// programs land fast in the SLC region and migrate later (not modelled).
func ufsTiming() nand.Timing {
	return nand.Timing{
		Program: 250 * sim.Microsecond,
		Read:    50 * sim.Microsecond,
		Erase:   3 * sim.Millisecond,
		BusXfer: 10 * sim.Microsecond,
	}
}

// nvmeTiming approximates a fast NVMe part writing into an SLC cache
// region: programs land quickly and migrate later (not modelled).
func nvmeTiming() nand.Timing {
	return nand.Timing{
		Program: 250 * sim.Microsecond,
		Read:    40 * sim.Microsecond,
		Erase:   3 * sim.Millisecond,
		BusXfer: 3 * sim.Microsecond,
	}
}

// tlcTiming approximates a TLC NAND part (the paper's plain-SSD uses TLC).
func tlcTiming() nand.Timing {
	return nand.Timing{
		Program: 900 * sim.Microsecond,
		Read:    70 * sim.Microsecond,
		Erase:   5 * sim.Millisecond,
		BusXfer: 15 * sim.Microsecond,
	}
}

// geometry builds a geometry with the requested parallelism, sized so the
// experiments run far from capacity pressure.
func geometry(channels, ways int) nand.Geometry {
	return nand.Geometry{
		Channels: channels, WaysPerChannel: ways,
		BlocksPerChip: 64, PagesPerBlock: 64, PageSize: 4096,
	}
}

// UFS returns the paper's mobile device: single channel, queue depth 16,
// barrier write implemented in a commercial UFS part (§6.1).
func UFS() Config {
	return defaults(Config{
		Name: "UFS", QueueDepth: 16, CachePages: 512,
		Mobile:         true,
		BarrierSupport: true,
		DMAPerPage:     70 * sim.Microsecond,
		CmdOverhead:    10 * sim.Microsecond,
		Geometry:       geometry(1, 4),
		Timing:         ufsTiming(),
	})
}

// PlainSSD returns the paper's 850 PRO stand-in: SATA 3.0, queue depth 32,
// eight channels, with the 5% simulated barrier penalty.
func PlainSSD() Config {
	return defaults(Config{
		Name: "plain-SSD", QueueDepth: 32, CachePages: 4096,
		BarrierSupport: true, BarrierPenalty: 0.05,
		DMAPerPage:  9 * sim.Microsecond,
		CmdOverhead: 4 * sim.Microsecond,
		Geometry:    geometry(8, 4),
		Timing:      tlcTiming(),
	})
}

// SupercapSSD returns the paper's 843TN stand-in: like PlainSSD but with
// power-loss protection and no barrier overhead.
func SupercapSSD() Config {
	return defaults(Config{
		Name: "supercap-SSD", QueueDepth: 32, CachePages: 4096,
		PLP: true, BarrierSupport: true,
		DMAPerPage:  9 * sim.Microsecond,
		CmdOverhead: 4 * sim.Microsecond,
		Geometry:    geometry(8, 4),
		Timing:      mlcTiming(),
	})
}

// NVMeSSD returns a barrier-enabled NVMe-class device: sixteen channels,
// eight ways, a deep queue and a fast link. The flash array drains faster
// than the host can feed it, so ordering stalls — not the transfer or the
// NAND — are the bottleneck: exactly the regime where per-stream barriers
// (internal/blkmq) pay off over a device-global total order.
func NVMeSSD() Config {
	return defaults(Config{
		Name: "NVMe-SSD", QueueDepth: 64, CachePages: 4096,
		BarrierSupport: true,
		DMAPerPage:     3 * sim.Microsecond,
		CmdOverhead:    4 * sim.Microsecond,
		Geometry:       geometry(16, 8),
		Timing:         nvmeTiming(),
	})
}

// LegacySSD returns a device without barrier support, used as the baseline
// target of the legacy transfer-and-flush stack.
func LegacySSD() Config {
	c := PlainSSD()
	c.Name = "legacy-SSD"
	c.BarrierSupport = false
	c.BarrierPenalty = 0
	c.BarrierCmdCost = 0
	// Legacy controllers batch writeback and choose victims freely — the
	// cache-scrambling behaviour that makes flush mandatory.
	c.EagerWriteback = false
	return c
}

// Fig1Device returns the i-th device of the paper's Fig. 1 parallelism
// sweep (A..G): mobile parts through a thirty-two channel flash array.
func Fig1Device(i int) Config {
	specs := []struct {
		name     string
		channels int
		ways     int
		qd       int
		dma      sim.Duration
		timing   nand.Timing
		plp      bool
	}{
		{"A/mobile-eMMC", 1, 2, 8, 90 * sim.Microsecond, mlcTiming(), false},
		{"B/mobile-UFS", 1, 4, 16, 70 * sim.Microsecond, mlcTiming(), false},
		{"C/server-SATA", 4, 4, 32, 9 * sim.Microsecond, tlcTiming(), false},
		{"D/server-NVMe", 8, 8, 64, 3 * sim.Microsecond, tlcTiming(), false},
		{"E/server-SATA-supercap", 4, 4, 32, 9 * sim.Microsecond, mlcTiming(), true},
		{"F/server-PCIe", 16, 8, 64, 2 * sim.Microsecond, mlcTiming(), false},
		{"G/flash-array", 32, 8, 128, 1 * sim.Microsecond, mlcTiming(), false},
	}
	s := specs[i]
	return defaults(Config{
		Name: s.name, QueueDepth: s.qd, CachePages: 4096,
		PLP: s.plp, BarrierSupport: false,
		DMAPerPage:  s.dma,
		CmdOverhead: 4 * sim.Microsecond,
		Geometry:    geometry(s.channels, s.ways),
		Timing:      s.timing,
	})
}

// NumFig1Devices is the size of the Fig. 1 sweep.
const NumFig1Devices = 7
