package device

import (
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// CmdKind selects the command operation.
type CmdKind int

// Command kinds.
const (
	CmdWrite CmdKind = iota
	CmdRead
	CmdFlush
	// CmdBarrier is a standalone cache-barrier command: it delimits an
	// epoch without carrying data. The paper's design avoids it in favour
	// of a write flag because it occupies a queue slot and costs a command
	// dispatch (§3.2); the device supports both so the trade-off can be
	// measured (see BenchmarkAblationBarrierCommand).
	CmdBarrier
)

func (k CmdKind) String() string {
	switch k {
	case CmdWrite:
		return "write"
	case CmdRead:
		return "read"
	case CmdFlush:
		return "flush"
	case CmdBarrier:
		return "barrier"
	}
	return "invalid"
}

// Priority is the SCSI command priority (§3.4). Simple commands may be
// serviced in any order but never ahead of an earlier ordered command;
// an ordered command is serviced only after everything received before it
// completes, and blocks everything received after it until it completes;
// head-of-queue commands are serviced as soon as possible.
type Priority int

// Priorities.
const (
	PrioSimple Priority = iota
	PrioOrdered
	PrioHeadOfQueue
)

func (p Priority) String() string {
	switch p {
	case PrioSimple:
		return "simple"
	case PrioOrdered:
		return "ordered"
	case PrioHeadOfQueue:
		return "head-of-queue"
	}
	return "invalid"
}

// Command is one device command. For writes, exactly one 4KB page.
type Command struct {
	Kind CmdKind
	LPA  uint64
	Data any
	Prio Priority

	// Stream is the ordering domain of the command. The SCSI priority rules
	// (ordered / simple / head-of-queue) are enforced only among commands of
	// the same stream, so a barrier in one stream never stalls another
	// stream's traffic — the per-stream barrier scoping of the paper's §8.
	// Single-queue hosts leave every command on stream 0, which restores the
	// classic device-global total order.
	Stream uint64

	// FUA forces the page to the storage surface before completion.
	FUA bool
	// PreFlush flushes the writeback cache before servicing the command
	// (the REQ_FLUSH half of REQ_FLUSH|REQ_FUA).
	PreFlush bool
	// Barrier is the cache-barrier flag: pages transferred after this
	// command must persist after the pages transferred before it.
	Barrier bool

	// Err reports a command-level failure at completion time: an
	// uncorrectable media error on a read (fault.ErrUNC). Writes never set
	// it — transient program failures are retried inside the chip. Submit
	// resets it, so pooled commands can be reused without clearing.
	Err error

	// Trace is the request-scoped causal trace context carried down from
	// the block layer (zero: tracing off). The device stamps
	// StageDevStart at service start and StageDevDone at completion.
	Trace reqtrace.Ctx

	// Done fires at host interrupt time when the command completes. For
	// reads, Data carries the result.
	Done func(at sim.Time, c *Command)

	seq      uint64
	complete bool
	arrived  sim.Time
}

// Seq returns the device arrival sequence number (set by Submit).
func (c *Command) Seq() uint64 { return c.seq }
