package device

import (
	"testing"

	"repro/internal/sim"
)

// tinyConfig is a fast, small device for unit tests.
func tinyConfig() Config {
	c := UFS()
	c.Name = "tiny"
	c.QueueDepth = 4
	c.CachePages = 32
	c.DMAPerPage = 10 * sim.Microsecond
	c.CmdOverhead = 2 * sim.Microsecond
	return c
}

// submitWait submits a command and blocks the process until it completes.
func submitWait(p *sim.Proc, d *Device, c *Command) {
	done := sim.NewCond(p.Kernel())
	fired := false
	c.Done = func(at sim.Time, cc *Command) {
		fired = true
		done.Broadcast()
	}
	for !d.Submit(c) {
		d.WaitSpace(p)
	}
	for !fired {
		done.Wait(p)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	d := New(k, tinyConfig())
	k.Spawn("host", func(p *sim.Proc) {
		submitWait(p, d, &Command{Kind: CmdWrite, LPA: 7, Data: "hello"})
		rd := &Command{Kind: CmdRead, LPA: 7}
		submitWait(p, d, rd)
		if rd.Data != "hello" {
			t.Errorf("read = %v", rd.Data)
		}
	})
	k.Run()
	if d.Stats().Writes != 1 || d.Stats().Reads != 1 {
		t.Errorf("stats = %+v", d.Stats())
	}
}

func TestWriteCompletesAtTransferNotPersist(t *testing.T) {
	// A plain write completes after DMA; it must not wait for NAND program.
	k := sim.NewKernel()
	defer k.Close()
	cfg := tinyConfig()
	d := New(k, cfg)
	var completedAt sim.Time
	k.Spawn("host", func(p *sim.Proc) {
		submitWait(p, d, &Command{Kind: CmdWrite, LPA: 1, Data: 1})
		completedAt = p.Now()
	})
	k.Run()
	maxHostVisible := sim.Time(cfg.CmdOverhead + cfg.DMAPerPage + 10*sim.Microsecond)
	if completedAt > maxHostVisible {
		t.Errorf("write completed at %v; looks like it waited for program (limit %v)", completedAt, maxHostVisible)
	}
}

func TestFUAWaitsForDurability(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	cfg := tinyConfig()
	d := New(k, cfg)
	var fuaDone sim.Time
	k.Spawn("host", func(p *sim.Proc) {
		submitWait(p, d, &Command{Kind: CmdWrite, LPA: 1, Data: 1, FUA: true})
		fuaDone = p.Now()
	})
	k.Run()
	// Must include at least one NAND program (500µs on the MLC timing).
	if fuaDone < sim.Time(cfg.Timing.Program) {
		t.Errorf("FUA completed at %v, before a NAND program could finish", fuaDone)
	}
	if d.Stats().FUAWrites != 1 {
		t.Errorf("FUA count = %d", d.Stats().FUAWrites)
	}
}

func TestFlushMakesEverythingDurable(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	d := New(k, tinyConfig())
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			submitWait(p, d, &Command{Kind: CmdWrite, LPA: uint64(i), Data: i})
		}
		submitWait(p, d, &Command{Kind: CmdFlush, Prio: PrioHeadOfQueue})
		// After flush, everything must be on the NAND surface.
		for i := 0; i < 8; i++ {
			if got, ok := d.FTL().DurableData(uint64(i)); !ok || got != i {
				t.Errorf("page %d not durable after flush: %v,%v", i, got, ok)
			}
		}
	})
	k.Run()
	if d.Stats().Flushes == 0 {
		t.Error("flush not counted")
	}
}

func TestQueueFullRejects(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	d := New(k, tinyConfig()) // QD 4
	k.Spawn("host", func(p *sim.Proc) {
		accepted := 0
		for i := 0; i < 10; i++ {
			if d.Submit(&Command{Kind: CmdWrite, LPA: uint64(i), Data: i}) {
				accepted++
			}
		}
		if accepted != 4 {
			t.Errorf("accepted = %d, want 4 (queue depth)", accepted)
		}
		if d.Stats().BusyRejects != 6 {
			t.Errorf("rejects = %d", d.Stats().BusyRejects)
		}
		// Space frees up as commands complete.
		d.WaitSpace(p)
		if !d.Submit(&Command{Kind: CmdWrite, LPA: 99, Data: 99}) {
			t.Error("submit after WaitSpace failed")
		}
	})
	k.Run()
}

func TestBarrierEpochTagging(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	d := New(k, tinyConfig())
	k.Spawn("host", func(p *sim.Proc) {
		submitWait(p, d, &Command{Kind: CmdWrite, LPA: 1, Data: 1})
		submitWait(p, d, &Command{Kind: CmdWrite, LPA: 2, Data: 2, Barrier: true})
		submitWait(p, d, &Command{Kind: CmdWrite, LPA: 3, Data: 3})
	})
	k.Run()
	if d.CurEpoch() != 1 {
		t.Errorf("epoch = %d, want 1 after one barrier", d.CurEpoch())
	}
	if d.Stats().Barriers != 1 {
		t.Errorf("barriers = %d", d.Stats().Barriers)
	}
}

func TestBarrierPenaltyApplied(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	cfg := PlainSSD()
	cfg.QueueDepth = 4
	d := New(k, cfg)
	k.Spawn("host", func(p *sim.Proc) {
		submitWait(p, d, &Command{Kind: CmdWrite, LPA: 1, Data: 1, Barrier: true})
	})
	k.Run()
	if d.Array().ProgramScale != 1.05 {
		t.Errorf("program scale = %v, want 1.05", d.Array().ProgramScale)
	}
}

func TestOrderedPriorityBlocksLaterSimple(t *testing.T) {
	// A simple command submitted after an ordered command must not complete
	// before it.
	k := sim.NewKernel()
	defer k.Close()
	d := New(k, tinyConfig())
	var order []uint64
	mk := func(lpa uint64, prio Priority) *Command {
		return &Command{Kind: CmdWrite, LPA: lpa, Data: lpa, Prio: prio,
			Done: func(at sim.Time, c *Command) { order = append(order, lpa) }}
	}
	k.Spawn("host", func(p *sim.Proc) {
		d.Submit(mk(1, PrioSimple))
		d.Submit(mk(2, PrioOrdered))
		d.Submit(mk(3, PrioSimple))
	})
	k.Run()
	if len(order) != 3 {
		t.Fatalf("completions = %v", order)
	}
	// 1 before 2, 2 before 3.
	pos := map[uint64]int{}
	for i, l := range order {
		pos[l] = i
	}
	if pos[1] > pos[2] || pos[2] > pos[3] {
		t.Errorf("ordered priority violated: completion order %v", order)
	}
}

func TestSimpleCommandsMayReorder(t *testing.T) {
	// With many simple commands in the queue the controller may pick any;
	// over many trials we should observe at least one out-of-submission-order
	// completion (this is the D != C arbitration of §2.1).
	k := sim.NewKernel()
	defer k.Close()
	cfg := tinyConfig()
	cfg.QueueDepth = 8
	d := New(k, cfg)
	var order []uint64
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			d.Submit(&Command{Kind: CmdWrite, LPA: uint64(i), Data: i,
				Done: func(at sim.Time, c *Command) { order = append(order, c.LPA) }})
		}
	})
	k.Run()
	if len(order) != 8 {
		t.Fatalf("completions = %d", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Log("note: simple commands completed in order this run (allowed but unexpected with seed)")
	}
}

func TestCrashLosesCacheWithoutPLP(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	d := New(k, tinyConfig())
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			submitWait(p, d, &Command{Kind: CmdWrite, LPA: uint64(i), Data: i})
		}
		// Crash immediately: writeback has had no reason to run (below
		// low-water), so the data is only in cache.
		d.Crash()
		d2 := Recover(p, d)
		lost := 0
		for i := 0; i < 4; i++ {
			if _, ok := d2.DurableData(uint64(i)); !ok {
				lost++
			}
		}
		if lost != 4 {
			t.Errorf("lost %d of 4 cached pages; want all lost without PLP", lost)
		}
		// The recovered device works.
		submitWait(p, d2, &Command{Kind: CmdWrite, LPA: 100, Data: "new", FUA: true})
		if got, ok := d2.DurableData(100); !ok || got != "new" {
			t.Errorf("post-recovery write: %v,%v", got, ok)
		}
	})
	k.Run()
}

func TestCrashKeepsCacheWithPLP(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	cfg := SupercapSSD()
	cfg.QueueDepth = 4
	d := New(k, cfg)
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			submitWait(p, d, &Command{Kind: CmdWrite, LPA: uint64(i), Data: i})
		}
		d.Crash()
		d2 := Recover(p, d)
		for i := 0; i < 4; i++ {
			if got, ok := d2.DurableData(uint64(i)); !ok || got != i {
				t.Errorf("PLP page %d = %v,%v", i, got, ok)
			}
		}
	})
	k.Run()
}

func TestPLPFlushIsCheap(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	plp := SupercapSSD()
	plp.QueueDepth = 4
	d := New(k, plp)
	var flushDone sim.Time
	k.Spawn("host", func(p *sim.Proc) {
		submitWait(p, d, &Command{Kind: CmdWrite, LPA: 1, Data: 1})
		t0 := p.Now()
		submitWait(p, d, &Command{Kind: CmdFlush, Prio: PrioHeadOfQueue})
		flushDone = p.Now() - t0
	})
	k.Run()
	if sim.Duration(flushDone) > 100*sim.Microsecond {
		t.Errorf("PLP flush took %v, should be ~command overhead", sim.Duration(flushDone))
	}
}

func TestBarrierWritebackPreservesTransferOrderAcrossCrash(t *testing.T) {
	// Writes w1..wN with a barrier between each: after a crash at an
	// arbitrary moment, the durable set must be an epoch prefix — if wk is
	// durable, all wj (j<k) are durable.
	for _, crashUs := range []int{100, 400, 900, 1600, 2500, 5000} {
		k := sim.NewKernel()
		cfg := UFS()
		cfg.QueueDepth = 8
		d := New(k, cfg)
		const n = 12
		k.Spawn("host", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				submitWait(p, d, &Command{Kind: CmdWrite, LPA: uint64(i), Data: i, Barrier: true})
			}
			// Ask for writeback so some epochs persist before the crash.
			d.Submit(&Command{Kind: CmdFlush, Prio: PrioHeadOfQueue})
		})
		k.RunUntil(sim.Time(sim.Duration(crashUs) * sim.Microsecond))
		d.Crash()
		var d2 *Device
		k.Spawn("recover", func(p *sim.Proc) { d2 = Recover(p, d) })
		k.Run()
		seenMissing := false
		for i := 0; i < n; i++ {
			_, ok := d2.DurableData(uint64(i))
			if !ok {
				seenMissing = true
			} else if seenMissing {
				t.Fatalf("crash@%dµs: epoch prefix violated: page %d durable after earlier hole", crashUs, i)
			}
		}
		k.Close()
	}
}

func TestLegacyDeviceCanViolateOrderWithoutFlush(t *testing.T) {
	// The motivation for transfer-and-flush: a device that ignores barriers
	// may persist later writes before earlier ones. With scrambled
	// writeback, at least one crash point should expose a violation.
	violated := false
	for _, crashUs := range []int{800, 1500, 2500, 4000, 6000, 9000, 14000} {
		k := sim.NewKernel()
		cfg := LegacySSD()
		cfg.QueueDepth = 32
		cfg.CachePages = 64
		cfg.WritebackLowWater = 0.05 // aggressive writeback to get reordering on flash
		d := New(k, cfg)
		const n = 48
		k.Spawn("host", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				submitWait(p, d, &Command{Kind: CmdWrite, LPA: uint64(i), Data: i})
			}
		})
		k.RunUntil(sim.Time(sim.Duration(crashUs) * sim.Microsecond))
		d.Crash()
		var d2 *Device
		k.Spawn("recover", func(p *sim.Proc) { d2 = Recover(p, d) })
		k.Run()
		seenMissing := false
		for i := 0; i < n; i++ {
			_, ok := d2.DurableData(uint64(i))
			if !ok {
				seenMissing = true
			} else if seenMissing {
				violated = true
			}
		}
		k.Close()
		if violated {
			break
		}
	}
	if !violated {
		t.Error("legacy device never violated write order across 7 crash points; scrambling is ineffective")
	}
}

func TestCachePressureBackpressure(t *testing.T) {
	// More writes than cache slots: the device must absorb them all anyway
	// (throttled by NAND bandwidth), not deadlock.
	k := sim.NewKernel()
	defer k.Close()
	cfg := tinyConfig()
	cfg.CachePages = 8
	d := New(k, cfg)
	completed := 0
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			submitWait(p, d, &Command{Kind: CmdWrite, LPA: uint64(i % 10), Data: i})
			completed++
		}
	})
	k.Run()
	if completed != 100 {
		t.Errorf("completed = %d/100 under cache pressure", completed)
	}
}

func TestConfigPresetsValid(t *testing.T) {
	for _, cfg := range []Config{UFS(), PlainSSD(), SupercapSSD(), LegacySSD()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	for i := 0; i < NumFig1Devices; i++ {
		if err := defaults(Fig1Device(i)).Validate(); err != nil {
			t.Errorf("fig1[%d]: %v", i, err)
		}
	}
	if !PlainSSD().BarrierSupport || PlainSSD().BarrierPenalty != 0.05 {
		t.Error("plain-SSD preset lost its barrier settings")
	}
	if !SupercapSSD().PLP {
		t.Error("supercap preset lost PLP")
	}
	if LegacySSD().BarrierSupport {
		t.Error("legacy preset must not support barriers")
	}
}

func TestPriorityAndKindStrings(t *testing.T) {
	if CmdWrite.String() != "write" || CmdFlush.String() != "flush" || CmdRead.String() != "read" {
		t.Error("kind strings")
	}
	if PrioSimple.String() != "simple" || PrioOrdered.String() != "ordered" || PrioHeadOfQueue.String() != "head-of-queue" {
		t.Error("priority strings")
	}
}

func TestQDSeriesRecordsDepth(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	d := New(k, tinyConfig())
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			d.Submit(&Command{Kind: CmdWrite, LPA: uint64(i), Data: i})
		}
	})
	k.Run()
	if d.QDSeries().Peak(0, k.Now()) < 2 {
		t.Errorf("QD peak = %v, want >= 2", d.QDSeries().Peak(0, k.Now()))
	}
}

func TestCaptureConstraintsVolatileAbsentFromRecoveredBase(t *testing.T) {
	// Model soundness: every write CaptureConstraints reports as volatile
	// must be genuinely loseable — absent from the durable base the model
	// checker overlays candidate cuts on. Entries whose programs completed
	// inside the durable prefix (reaper lag) must be folded into the base,
	// not reported volatile: a cut "losing" them could not be materialized.
	k := sim.NewKernel()
	defer k.Close()
	d := New(k, tinyConfig()) // barrier device, eager writeback
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			c := &Command{Kind: CmdWrite, LPA: uint64(100 + i), Data: i, Barrier: i%4 == 3}
			for !d.Submit(c) {
				d.WaitSpace(p)
			}
			p.Advance(20 * sim.Microsecond)
		}
	})
	k.RunUntil(sim.Time(400 * sim.Microsecond))
	cons := d.CaptureConstraints()
	if len(cons.Writes) == 0 {
		t.Fatal("expected volatile writes at the crash instant")
	}
	d.Crash()
	var d2 *Device
	k.Spawn("recover", func(p *sim.Proc) { d2 = Recover(p, d) })
	k.Run()
	for _, w := range cons.Writes {
		if data, ok := d2.DurableData(w.LPA); ok && data == w.Data {
			t.Errorf("write lpa=%d seq=%d modeled as volatile but present in the recovered base",
				w.LPA, w.Seq)
		}
	}
}
