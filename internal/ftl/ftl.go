// Package ftl implements the log-structured flash translation layer the
// paper builds its barrier-compliant UFS device on (§3.2): the entire device
// is treated as a single log, incoming blocks are appended to an active
// segment in transfer order and striped across chips, and crash recovery
// scans the most recent segment from its beginning, discarding everything
// from the first unprogrammed page onward. Because the durable state is
// always a prefix of the append order, the device can flush its cache with
// full parallelism and still honor barrier ordering — the core trick that
// makes "cache barrier" cheap.
package ftl

import (
	"fmt"
	"sort"

	"repro/internal/nand"
	"repro/internal/sim"
)

// SummaryLPA is the reserved logical address marking segment-summary pages.
const SummaryLPA = ^uint64(0)

// SealLPA is the reserved logical address of crash-seal pages written by
// recovery to terminate a partially programmed segment.
const SealLPA = ^uint64(0) - 1

// Config tunes the FTL.
type Config struct {
	// GCLowWater triggers garbage collection when the number of free
	// segments drops to or below it. Must be >= 1.
	GCLowWater int
}

// DefaultConfig returns sensible defaults.
func DefaultConfig() Config { return Config{GCLowWater: 2} }

type slotRef struct {
	seg  int
	slot int
}

type segment struct {
	id        int
	allocSeq  uint64 // segment allocation number (stored in the summary page)
	nextSlot  int    // next slot to append
	prefixOK  int    // slots [0, prefixOK) are programmed (durable prefix)
	done      []bool // per-slot program completion
	valid     int    // live data pages (mapping points here)
	sealed    bool   // fully appended (or crash-sealed)
	lpas      []uint64
	baseIdx   uint64 // global append index of slot 0
	crashSeal bool   // sealed by recovery rather than by filling up
}

// Stats are cumulative FTL statistics.
type Stats struct {
	HostAppends  int64
	GCAppends    int64
	GCRuns       int64
	SegsErased   int64
	Stalls       int64 // appends that blocked waiting for space or seal
	RecoveryDrop int64 // pages discarded by the last recovery scan
}

// FTL is the translation layer. All methods taking a *sim.Proc may block.
type FTL struct {
	k    *sim.Kernel
	arr  *nand.Array
	cfg  Config
	geo  nand.Geometry
	caps int // slots per segment (chips * pagesPerBlock)

	mapping map[uint64]slotRef
	segs    []*segment
	free    []int
	active  *segment

	appendSeq  uint64 // per-page log sequence number
	allocSeq   uint64 // segment allocation counter
	appendIdx  uint64 // global append index (next to assign)
	durableIdx uint64 // appends [0, durableIdx) are durable

	durableCond *sim.Cond
	spaceCond   *sim.Cond
	gcCond      *sim.Cond
	gcProc      *sim.Proc
	gcBusy      bool

	gc       gcSM       // handler-mode GC state
	progFree []*progCtx // free list of pooled program ops (kernel-single-threaded)
	readFree []*readCtx // free list of pooled handler read ops

	stats Stats
}

// New formats the array (assumed erased) and returns a mounted FTL with a
// running GC daemon.
func New(k *sim.Kernel, arr *nand.Array, cfg Config) *FTL {
	if cfg.GCLowWater < 1 {
		cfg.GCLowWater = 1
	}
	f := &FTL{
		k: k, arr: arr, cfg: cfg, geo: arr.Geometry(),
		caps:    arr.Geometry().Chips() * arr.Geometry().PagesPerBlock,
		mapping: make(map[uint64]slotRef),
	}
	for s := 0; s < f.geo.BlocksPerChip; s++ {
		f.segs = append(f.segs, &segment{id: s})
		f.free = append(f.free, s)
	}
	f.durableCond = sim.NewCond(k)
	f.spaceCond = sim.NewCond(k)
	f.gcCond = sim.NewCond(k)
	f.spawnGC()
	return f
}

// spawnGC starts the GC daemon in the kernel's process model: a
// run-to-completion handler on callback kernels, the blocking goroutine
// loop on the reference kernel.
func (f *FTL) spawnGC() {
	if f.k.CallbackMode() {
		f.gcProc = f.k.SpawnHandler("ftl/gc", f.gcStep)
	} else {
		f.gcProc = f.k.Spawn("ftl/gc", f.gcLoop)
	}
}

// SegmentSlots returns the number of page slots per segment.
func (f *FTL) SegmentSlots() int { return f.caps }

// FreeSegments returns the number of free (erased) segments.
func (f *FTL) FreeSegments() int { return len(f.free) }

// Stats returns cumulative statistics.
func (f *FTL) Stats() Stats { return f.stats }

// DurableIdx returns the current durable watermark: all appends with index
// < DurableIdx are on the storage surface.
func (f *FTL) DurableIdx() uint64 { return f.durableIdx }

// AppendIdx returns the next append index to be assigned.
func (f *FTL) AppendIdx() uint64 { return f.appendIdx }

// MappedPages returns the number of live logical pages.
func (f *FTL) MappedPages() int { return len(f.mapping) }

func (f *FTL) chipOf(slot int) int { return slot % f.geo.Chips() }
func (f *FTL) pageOf(slot int) int { return slot / f.geo.Chips() }

// Append writes one logical page to the log and returns its global append
// index. It blocks while the log has no usable space or while the segment
// seal barrier is in effect; it returns as soon as the program command is
// issued (durability comes later — see WaitDurable).
func (f *FTL) Append(p *sim.Proc, lpa uint64, data any) uint64 {
	if lpa >= SealLPA {
		panic("ftl: logical page address collides with reserved markers")
	}
	f.ensureActive(p)
	idx := f.appendSlot(lpa, data)
	f.maybeTriggerGC()
	return idx
}

// appendSlot performs the non-blocking body of a host append: the caller
// must have ensured the active segment has a free slot.
func (f *FTL) appendSlot(lpa uint64, data any) uint64 {
	seg := f.active
	slot := seg.nextSlot
	idx := f.appendIdx
	f.appendIdx++
	f.appendSeq++
	seg.nextSlot++
	seg.lpas[slot] = lpa
	if seg.nextSlot == f.caps {
		seg.sealed = true
	}
	f.invalidate(lpa)
	f.mapping[lpa] = slotRef{seg: seg.id, slot: slot}
	seg.valid++
	f.stats.HostAppends++
	f.program(seg, slot, nand.PageMeta{LPA: lpa, Seq: f.appendSeq}, data)
	return idx
}

// ensureActive guarantees f.active has a free slot, enforcing the seal
// barrier: a new segment is opened only after every program of the previous
// one has completed, so at most one segment is ever partially programmed.
func (f *FTL) ensureActive(p *sim.Proc) {
	if f.active != nil && f.active.nextSlot < f.caps {
		return
	}
	if f.active != nil {
		// Seal barrier: wait for the full segment to finish programming.
		for f.active.prefixOK < f.active.nextSlot {
			f.stats.Stalls++
			f.durableCond.Wait(p)
		}
	}
	for len(f.free) == 0 {
		f.stats.Stalls++
		f.maybeTriggerGC()
		f.spaceCond.Wait(p)
	}
	f.openSegment()
}

// openSegment takes the head free segment as the new active segment and
// programs its summary page. The caller must have ensured the free list is
// non-empty.
func (f *FTL) openSegment() {
	id := f.free[0]
	f.free = f.free[1:]
	f.allocSeq++
	seg := f.segs[id]
	*seg = segment{
		id:       id,
		allocSeq: f.allocSeq,
		done:     make([]bool, f.caps),
		lpas:     make([]uint64, f.caps),
		baseIdx:  f.appendIdx,
	}
	f.active = seg
	// Slot 0 is the segment summary (allocation number in its metadata);
	// recovery uses it to order segments.
	slot := seg.nextSlot
	seg.nextSlot++
	f.appendIdx++ // summary consumes an append index so watermarks stay aligned
	f.appendSeq++
	seg.lpas[slot] = SummaryLPA
	f.program(seg, slot, nand.PageMeta{LPA: SummaryLPA, Seq: seg.allocSeq}, nil)
}

// progCtx is a pooled program operation: the NAND request plus its
// completion context, with the Done closure bound once at allocation. The
// free list is owned by the (single-threaded) kernel's FTL, so steady-state
// programs — every host write and GC move — allocate nothing.
type progCtx struct {
	f    *FTL
	seg  *segment
	slot int
	req  nand.Request
}

func (c *progCtx) done(at sim.Time, r *nand.Request) {
	if r.Err != nil {
		panic(fmt.Sprintf("ftl: program failed: %v", r.Err))
	}
	f := c.f
	f.programDone(c.seg, c.slot)
	c.seg = nil
	c.req.Data = nil
	c.req.Meta = nand.PageMeta{}
	f.progFree = append(f.progFree, c)
}

func (f *FTL) program(seg *segment, slot int, meta nand.PageMeta, data any) {
	var c *progCtx
	if n := len(f.progFree); n > 0 {
		c = f.progFree[n-1]
		f.progFree = f.progFree[:n-1]
	} else {
		c = &progCtx{f: f}
		c.req.Done = c.done // one bound closure per pooled ctx, ever
	}
	c.seg, c.slot = seg, slot
	c.req.Kind = nand.OpProgram
	c.req.Chip, c.req.Block, c.req.Page = f.chipOf(slot), seg.id, f.pageOf(slot)
	c.req.Meta, c.req.Data = meta, data
	c.req.Err = nil
	// Requests lost to a power failure never fire Done and simply fall out
	// of the pool; only completed ops are recycled.
	f.arr.Submit(&c.req)
}

func (f *FTL) programDone(seg *segment, slot int) {
	seg.done[slot] = true
	for seg.prefixOK < f.caps && seg.done[seg.prefixOK] {
		seg.prefixOK++
	}
	if seg == f.active {
		f.durableIdx = seg.baseIdx + uint64(seg.prefixOK)
		f.durableCond.Broadcast()
	} else if seg.prefixOK == seg.nextSlot {
		// Final program of a sealed previous segment; the active segment's
		// watermark already covers it.
		f.durableCond.Broadcast()
	}
}

// invalidate drops the current mapping for lpa, if any, decrementing the
// owning segment's valid count.
func (f *FTL) invalidate(lpa uint64) {
	if ref, ok := f.mapping[lpa]; ok {
		f.segs[ref.seg].valid--
		delete(f.mapping, lpa)
	}
}

// Trim discards a logical page (e.g. freed filesystem block), making its
// flash page garbage.
func (f *FTL) Trim(lpa uint64) { f.invalidate(lpa) }

// WaitDurable blocks until every append with index < idx is durable.
func (f *FTL) WaitDurable(p *sim.Proc, idx uint64) {
	for f.durableIdx < idx {
		f.durableCond.Wait(p)
	}
}

// Sync blocks until everything appended so far is durable.
func (f *FTL) Sync(p *sim.Proc) { f.WaitDurable(p, f.appendIdx) }

// Read returns the data most recently appended for lpa, issuing a NAND read
// and blocking for its latency. ok is false for unmapped pages. This is the
// device-internal variant (GC relocation): it is exempt from media-error
// injection, like reads protected by on-die parity. Host reads that must
// observe injected media errors use ReadE.
func (f *FTL) Read(p *sim.Proc, lpa uint64) (data any, ok bool) {
	data, ok, _ = f.read(p, lpa, true)
	return data, ok
}

// ReadE is the host read: identical to Read, but the request participates
// in media-error injection, so err carries fault.ErrUNC when the device's
// internal read-retry ladder could not correct the page. ok is still true
// for mapped pages that erred — the data simply could not be returned on
// this attempt.
func (f *FTL) ReadE(p *sim.Proc, lpa uint64) (data any, ok bool, err error) {
	return f.read(p, lpa, false)
}

func (f *FTL) read(p *sim.Proc, lpa uint64, internal bool) (data any, ok bool, err error) {
	ref, mapped := f.mapping[lpa]
	if !mapped {
		return nil, false, nil
	}
	var out any
	var rerr error
	done := sim.NewCond(f.k)
	f.arr.Submit(&nand.Request{
		Kind: nand.OpRead,
		Chip: f.chipOf(ref.slot), Block: ref.seg, Page: f.pageOf(ref.slot),
		NoFault: internal,
		Done: func(at sim.Time, r *nand.Request) {
			out, rerr = r.Data, r.Err
			done.Signal()
		},
	})
	done.Wait(p)
	return out, true, rerr
}

// --- garbage collection ---

func (f *FTL) maybeTriggerGC() {
	if len(f.free) <= f.cfg.GCLowWater && !f.gcBusy {
		f.gcCond.Broadcast()
	}
}

func (f *FTL) gcLoop(p *sim.Proc) {
	for {
		for len(f.free) > f.cfg.GCLowWater {
			f.gcCond.Wait(p)
		}
		victim := f.pickVictim()
		if victim == nil {
			// Nothing reclaimable; wait for invalidations.
			f.gcCond.Wait(p)
			continue
		}
		f.gcBusy = true
		f.collect(p, victim)
		f.gcBusy = false
		f.stats.GCRuns++
		f.spaceCond.Broadcast()
	}
}

// pickVictim returns the sealed segment with the fewest valid pages, or nil
// if no sealed segment can be reclaimed profitably.
func (f *FTL) pickVictim() *segment {
	var best *segment
	for _, s := range f.segs {
		if s == f.active || !s.sealed || s.done == nil {
			continue
		}
		if s.valid >= f.caps-1 { // only the summary would be reclaimed
			continue
		}
		if best == nil || s.valid < best.valid {
			best = s
		}
	}
	return best
}

func (f *FTL) collect(p *sim.Proc, victim *segment) {
	// Move every still-valid page to the head of the log.
	var lastIdx uint64
	for slot := 0; slot < victim.nextSlot; slot++ {
		lpa := victim.lpas[slot]
		if lpa >= SealLPA {
			continue
		}
		ref, ok := f.mapping[lpa]
		if !ok || ref.seg != victim.id || ref.slot != slot {
			continue // overwritten since; garbage
		}
		// Read the page, then re-append.
		data, _ := f.Read(p, lpa)
		// Re-check validity: the host may have overwritten during the read.
		ref, ok = f.mapping[lpa]
		if !ok || ref.seg != victim.id || ref.slot != slot {
			continue
		}
		f.ensureActive(p)
		lastIdx = f.gcAppendSlot(victim, lpa, data)
	}
	// The copies must be durable before the originals are destroyed,
	// otherwise a crash between erase and program would lose data.
	f.WaitDurable(p, lastIdx)
	f.eraseSegment(p, victim)
}

// gcAppendSlot moves one still-valid page of victim to the head of the
// log: the non-blocking body of a GC re-append, shared by the blocking
// collect and the handler gcStep so the two stay statement-identical. The
// caller must have ensured the active segment has a free slot. It returns
// the durability watermark (append index + 1) of the moved copy.
func (f *FTL) gcAppendSlot(victim *segment, lpa uint64, data any) uint64 {
	seg := f.active
	ns := seg.nextSlot
	idx := f.appendIdx
	f.appendIdx++
	f.appendSeq++
	seg.nextSlot++
	seg.lpas[ns] = lpa
	if seg.nextSlot == f.caps {
		seg.sealed = true
	}
	victim.valid--
	f.mapping[lpa] = slotRef{seg: seg.id, slot: ns}
	seg.valid++
	f.stats.GCAppends++
	f.program(seg, ns, nand.PageMeta{LPA: lpa, Seq: f.appendSeq}, data)
	return idx + 1
}

func (f *FTL) eraseSegment(p *sim.Proc, seg *segment) {
	pending := f.geo.Chips()
	done := sim.NewCond(f.k)
	for chip := 0; chip < f.geo.Chips(); chip++ {
		f.arr.Submit(&nand.Request{
			Kind: nand.OpErase, Chip: chip, Block: seg.id,
			Done: func(at sim.Time, r *nand.Request) {
				pending--
				if pending == 0 {
					done.Broadcast()
				}
			},
		})
	}
	for pending > 0 {
		done.Wait(p)
	}
	*seg = segment{id: seg.id}
	f.free = append(f.free, seg.id)
	f.stats.SegsErased++
}

// Utilization returns live pages / total data capacity.
func (f *FTL) Utilization() float64 {
	total := f.geo.BlocksPerChip * (f.caps - 1)
	if total == 0 {
		return 0
	}
	return float64(len(f.mapping)) / float64(total)
}

// sortSegmentsByAlloc is used by recovery (see recovery.go) but lives here
// to keep the segment type private.
func (f *FTL) sortedByAlloc(ids []int, alloc map[int]uint64) {
	sort.Slice(ids, func(i, j int) bool { return alloc[ids[i]] < alloc[ids[j]] })
}
