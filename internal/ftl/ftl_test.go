package ftl

import (
	"math/rand"
	"testing"

	"repro/internal/nand"
	"repro/internal/sim"
)

func smallGeo() nand.Geometry {
	return nand.Geometry{Channels: 2, WaysPerChannel: 2, BlocksPerChip: 16, PagesPerBlock: 8, PageSize: 4096}
}

func fastTiming() nand.Timing {
	return nand.Timing{
		Program: 100 * sim.Microsecond,
		Read:    20 * sim.Microsecond,
		Erase:   500 * sim.Microsecond,
		BusXfer: 5 * sim.Microsecond,
	}
}

// run spins up a kernel+array+FTL, executes body as a host process, and runs
// the simulation to completion.
func run(t *testing.T, body func(p *sim.Proc, f *FTL, arr *nand.Array)) {
	t.Helper()
	k := sim.NewKernel()
	defer k.Close()
	arr := nand.New(k, smallGeo(), fastTiming())
	f := New(k, arr, DefaultConfig())
	k.Spawn("host", func(p *sim.Proc) { body(p, f, arr) })
	k.Run()
}

func TestAppendReadBack(t *testing.T) {
	run(t, func(p *sim.Proc, f *FTL, arr *nand.Array) {
		f.Append(p, 10, "ten")
		f.Append(p, 20, "twenty")
		f.Sync(p)
		if d, ok := f.Read(p, 10); !ok || d != "ten" {
			t.Errorf("Read(10) = %v,%v", d, ok)
		}
		if d, ok := f.Read(p, 20); !ok || d != "twenty" {
			t.Errorf("Read(20) = %v,%v", d, ok)
		}
		if _, ok := f.Read(p, 99); ok {
			t.Error("unmapped LPA readable")
		}
	})
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	run(t, func(p *sim.Proc, f *FTL, arr *nand.Array) {
		f.Append(p, 5, "v1")
		f.Append(p, 5, "v2")
		f.Sync(p)
		if d, _ := f.Read(p, 5); d != "v2" {
			t.Errorf("Read = %v, want v2", d)
		}
		if f.MappedPages() != 1 {
			t.Errorf("mapped = %d, want 1", f.MappedPages())
		}
	})
}

func TestWaitDurable(t *testing.T) {
	run(t, func(p *sim.Proc, f *FTL, arr *nand.Array) {
		idx := f.Append(p, 1, "x")
		if f.DurableIdx() > idx {
			t.Error("durable before program completes")
		}
		f.WaitDurable(p, idx+1)
		if f.DurableIdx() < idx+1 {
			t.Error("WaitDurable returned early")
		}
		if d, ok := f.DurableData(1); !ok || d != "x" {
			t.Errorf("DurableData = %v,%v", d, ok)
		}
	})
}

func TestTrim(t *testing.T) {
	run(t, func(p *sim.Proc, f *FTL, arr *nand.Array) {
		f.Append(p, 7, "gone")
		f.Sync(p)
		f.Trim(7)
		if _, ok := f.Read(p, 7); ok {
			t.Error("trimmed page still mapped")
		}
		if f.MappedPages() != 0 {
			t.Errorf("mapped = %d", f.MappedPages())
		}
	})
}

func TestSegmentRollAndSealBarrier(t *testing.T) {
	run(t, func(p *sim.Proc, f *FTL, arr *nand.Array) {
		slots := f.SegmentSlots() // 4 chips * 8 pages = 32
		// Fill two data segments worth (each has slots-1 data pages).
		n := 2 * (slots - 1)
		for i := 0; i < n; i++ {
			f.Append(p, uint64(i), i)
		}
		f.Sync(p)
		for i := 0; i < n; i++ {
			if d, ok := f.Read(p, uint64(i)); !ok || d != i {
				t.Fatalf("Read(%d) = %v,%v", i, d, ok)
			}
		}
		if f.Stats().HostAppends != int64(n) {
			t.Errorf("host appends = %d, want %d", f.Stats().HostAppends, n)
		}
	})
}

func TestGCReclaimsSpace(t *testing.T) {
	run(t, func(p *sim.Proc, f *FTL, arr *nand.Array) {
		slots := f.SegmentSlots()
		// Working set of 8 LPAs, overwritten many times: most segments
		// become garbage and must be reclaimed for the writes to finish.
		total := 14 * slots
		for i := 0; i < total; i++ {
			f.Append(p, uint64(i%8), i)
		}
		f.Sync(p)
		for lpa := 0; lpa < 8; lpa++ {
			want := total - 8 + lpa
			if d, ok := f.Read(p, uint64(lpa)); !ok || d != want {
				t.Fatalf("Read(%d) = %v,%v, want %d", lpa, d, ok, want)
			}
		}
		if f.Stats().GCRuns == 0 {
			t.Error("GC never ran despite log pressure")
		}
		if f.Stats().SegsErased == 0 {
			t.Error("no segments erased")
		}
	})
}

func TestGCPreservesColdData(t *testing.T) {
	run(t, func(p *sim.Proc, f *FTL, arr *nand.Array) {
		// Cold data written once, then heavy overwrite traffic elsewhere.
		for i := 0; i < 20; i++ {
			f.Append(p, uint64(1000+i), 1000+i)
		}
		slots := f.SegmentSlots()
		for i := 0; i < 13*slots; i++ {
			f.Append(p, uint64(i%4), i)
		}
		f.Sync(p)
		for i := 0; i < 20; i++ {
			if d, ok := f.Read(p, uint64(1000+i)); !ok || d != 1000+i {
				t.Fatalf("cold page %d = %v,%v after GC", 1000+i, d, ok)
			}
		}
	})
}

func TestUtilization(t *testing.T) {
	run(t, func(p *sim.Proc, f *FTL, arr *nand.Array) {
		if f.Utilization() != 0 {
			t.Error("fresh FTL not empty")
		}
		for i := 0; i < 31; i++ {
			f.Append(p, uint64(i), i)
		}
		f.Sync(p)
		if u := f.Utilization(); u <= 0 || u > 0.1 {
			t.Errorf("utilization = %v", u)
		}
	})
}

func TestMountEmptyArray(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	arr := nand.New(k, smallGeo(), fastTiming())
	k.Spawn("host", func(p *sim.Proc) {
		f := Mount(p, arr, DefaultConfig())
		if f.MappedPages() != 0 || f.FreeSegments() != smallGeo().BlocksPerChip {
			t.Errorf("mount of empty array: mapped=%d free=%d", f.MappedPages(), f.FreeSegments())
		}
		f.Append(p, 3, "post-mount")
		f.Sync(p)
		if d, _ := f.Read(p, 3); d != "post-mount" {
			t.Error("append after empty mount failed")
		}
	})
	k.Run()
}

func TestRemountAfterCleanSync(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	arr := nand.New(k, smallGeo(), fastTiming())
	f := New(k, arr, DefaultConfig())
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			f.Append(p, uint64(i), i*i)
		}
		f.Sync(p)
		// Simulate clean power-off and remount.
		arr.Fail()
		p.Sleep(sim.Millisecond)
		arr.Restore()
		f2 := Mount(p, arr, DefaultConfig())
		for i := 0; i < 50; i++ {
			if d, ok := f2.DurableData(uint64(i)); !ok || d != i*i {
				t.Fatalf("after remount, page %d = %v,%v want %d", i, d, ok, i*i)
			}
		}
		if f2.Stats().RecoveryDrop != 0 {
			t.Errorf("clean remount dropped %d pages", f2.Stats().RecoveryDrop)
		}
	})
	k.Run()
}

// The core invariant: after a crash at an arbitrary instant, the recovered
// state is a prefix of the append order. If append i survived, every append
// j < i survived too (overwrites considered: the surviving version of each
// LPA is consistent with some prefix cut).
func TestCrashRecoveryPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		k := sim.NewKernel()
		arr := nand.New(k, smallGeo(), fastTiming())
		f := New(k, arr, DefaultConfig())
		const writes = 120
		crashAt := sim.Time(sim.Duration(rng.Intn(4000)) * sim.Microsecond)
		// appendLog[i] = (lpa, version) in append order.
		type rec struct {
			lpa uint64
			ver int
		}
		var appendLog []rec
		k.Spawn("writer", func(p *sim.Proc) {
			for i := 0; i < writes; i++ {
				lpa := uint64(rng.Intn(16))
				appendLog = append(appendLog, rec{lpa, i})
				f.Append(p, lpa, i)
				if rng.Intn(3) == 0 {
					p.Sleep(sim.Duration(rng.Intn(50)) * sim.Microsecond)
				}
			}
		})
		k.RunUntil(crashAt)
		arr.Fail()
		k.RunUntil(crashAt.Add(10 * sim.Millisecond))
		arr.Restore()

		var f2 *FTL
		k.Spawn("mounter", func(p *sim.Proc) {
			f2 = Mount(p, arr, DefaultConfig())
		})
		k.Run()

		// Find the longest prefix of appendLog consistent with what
		// survived: walk the log, computing expected state after each cut.
		state := map[uint64]int{}
		consistentAt := func() bool {
			for lpa, ver := range state {
				d, ok := f2.DurableData(lpa)
				if !ok || d != ver {
					return false
				}
			}
			// Nothing beyond the cut may be visible either: checked by the
			// caller via exact match at the chosen cut.
			return true
		}
		matched := false
		if len(f2.DurableLPAs()) == 0 && len(state) == 0 {
			matched = true // empty prefix
		}
		for i := 0; i < len(appendLog) && !matched; i++ {
			state[appendLog[i].lpa] = appendLog[i].ver
			if len(f2.DurableLPAs()) == countKeys(state) && consistentAt() {
				matched = true
			}
		}
		if !matched {
			t.Fatalf("trial %d (crash@%v): recovered state is not a prefix of the append order", trial, crashAt)
		}
		k.Close()
	}
}

func countKeys(m map[uint64]int) int { return len(m) }

func TestCrashMidGCLosesNothingDurable(t *testing.T) {
	// Data that was durable before GC started must survive a crash at any
	// point during GC activity.
	k := sim.NewKernel()
	arr := nand.New(k, smallGeo(), fastTiming())
	f := New(k, arr, DefaultConfig())
	written := map[uint64]int{}
	k.Spawn("writer", func(p *sim.Proc) {
		slots := f.SegmentSlots()
		for i := 0; i < 13*slots; i++ {
			lpa := uint64(i % 24)
			f.Append(p, lpa, i)
			written[lpa] = i
			if i%32 == 0 {
				f.Sync(p)
			}
		}
		f.Sync(p)
	})
	// Crash somewhere in the middle of the workload (GC will be active).
	k.RunUntil(sim.Time(30 * sim.Millisecond))
	durableBefore := map[uint64]any{}
	for _, lpa := range f.DurableLPAs() {
		if d, ok := f.DurableData(lpa); ok {
			durableBefore[lpa] = d
		}
	}
	arr.Fail()
	k.RunUntil(sim.Time(40 * sim.Millisecond))
	arr.Restore()
	var f2 *FTL
	k.Spawn("mounter", func(p *sim.Proc) { f2 = Mount(p, arr, DefaultConfig()) })
	k.Run()
	defer k.Close()
	// Every LPA that had any durable version must still have *some* version
	// at least as new... we settle for: still present. (Exact versions are
	// covered by the prefix property test.)
	for lpa := range durableBefore {
		if _, ok := f2.DurableData(lpa); !ok {
			t.Errorf("LPA %d lost across crash during GC", lpa)
		}
	}
}

func TestRecoveryDropCountsTail(t *testing.T) {
	// Crash with programs in flight: recovery must report dropped pages
	// when later slots were programmed past a hole.
	k := sim.NewKernel()
	arr := nand.New(k, smallGeo(), fastTiming())
	f := New(k, arr, DefaultConfig())
	k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			f.Append(p, uint64(i), i)
		}
	})
	// Crash almost immediately: many in-flight programs.
	k.RunUntil(sim.Time(150 * sim.Microsecond))
	arr.Fail()
	k.RunUntil(sim.Time(1 * sim.Millisecond))
	arr.Restore()
	var f2 *FTL
	k.Spawn("mounter", func(p *sim.Proc) { f2 = Mount(p, arr, DefaultConfig()) })
	k.Run()
	defer k.Close()
	// Whatever survived must be the 0..n-1 prefix.
	for _, lpa := range f2.DurableLPAs() {
		d, _ := f2.DurableData(lpa)
		if d != int(lpa) {
			t.Errorf("LPA %d has value %v", lpa, d)
		}
	}
	n := len(f2.DurableLPAs())
	for i := 0; i < n; i++ {
		if _, ok := f2.DurableData(uint64(i)); !ok {
			t.Errorf("hole in recovered prefix at %d (recovered %d pages)", i, n)
		}
	}
}

func TestAppendAfterCrashRecovery(t *testing.T) {
	k := sim.NewKernel()
	arr := nand.New(k, smallGeo(), fastTiming())
	f := New(k, arr, DefaultConfig())
	k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			f.Append(p, uint64(i), "old")
		}
	})
	k.RunUntil(sim.Time(200 * sim.Microsecond))
	arr.Fail()
	k.RunUntil(sim.Time(1 * sim.Millisecond))
	arr.Restore()
	k.Spawn("mounter", func(p *sim.Proc) {
		f2 := Mount(p, arr, DefaultConfig())
		for i := 100; i < 140; i++ {
			f2.Append(p, uint64(i), "new")
		}
		f2.Sync(p)
		for i := 100; i < 140; i++ {
			if d, ok := f2.DurableData(uint64(i)); !ok || d != "new" {
				t.Fatalf("post-recovery write %d = %v,%v", i, d, ok)
			}
		}
	})
	k.Run()
	defer k.Close()
}

func TestDoubleCrash(t *testing.T) {
	// Crash, recover, write, crash again, recover again.
	k := sim.NewKernel()
	arr := nand.New(k, smallGeo(), fastTiming())
	f := New(k, arr, DefaultConfig())
	k.Spawn("w1", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			f.Append(p, uint64(i), 1)
		}
	})
	k.RunUntil(sim.Time(180 * sim.Microsecond))
	arr.Fail()
	k.RunUntil(sim.Time(1 * sim.Millisecond))
	arr.Restore()
	var f2 *FTL
	k.Spawn("m1", func(p *sim.Proc) {
		f2 = Mount(p, arr, DefaultConfig())
		for i := 0; i < 30; i++ {
			f2.Append(p, uint64(i), 2)
		}
	})
	k.RunUntil(sim.Time(1500 * sim.Microsecond))
	arr.Fail()
	k.RunUntil(sim.Time(3 * sim.Millisecond))
	arr.Restore()
	k.Spawn("m2", func(p *sim.Proc) {
		f3 := Mount(p, arr, DefaultConfig())
		// All surviving values must be 1 or 2, with v2 forming a prefix of
		// the second write sequence.
		seen2 := -1
		for i := 29; i >= 0; i-- {
			if d, ok := f3.DurableData(uint64(i)); ok {
				if d == 2 {
					if seen2 == -1 {
						seen2 = i
					}
				} else if d != 1 {
					t.Errorf("LPA %d = %v", i, d)
				}
			}
		}
		_ = seen2
	})
	k.Run()
	defer k.Close()
	_ = f2
}
