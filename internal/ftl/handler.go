package ftl

import (
	"repro/internal/nand"
	"repro/internal/sim"
)

// This file holds the run-to-completion (handler) form of the FTL's
// blocking machinery: step-wise append and read primitives for handler
// clients (the device's writeback and worker handlers), and the GC daemon
// as a state machine. Each function mirrors its blocking original statement
// for statement — one Mesa-loop iteration per activation, identical stat
// bumps and waitlist appends — so the dispatch trace is byte-identical to
// the goroutine code the reference kernel runs.

// ensureSM tracks progress through the handler form of ensureActive.
type ensureSM int

const (
	esStart ensureSM = iota // fast path / classify which wait applies
	esSeal                  // seal barrier: previous segment still programming
	esSpace                 // free-segment wait
)

// ensureStep is the handler analogue of ensureActive: it reports true when
// the active segment has a free slot, or parks h on the same condition the
// blocking version would wait on and reports false. The caller re-invokes
// it with the same state on its next activation.
func (f *FTL) ensureStep(h *sim.Proc, s *ensureSM) bool {
	for {
		switch *s {
		case esStart:
			if f.active != nil && f.active.nextSlot < f.caps {
				return true
			}
			if f.active != nil {
				*s = esSeal
				continue
			}
			*s = esSpace
		case esSeal:
			// Seal barrier: wait for the full segment to finish programming.
			if f.active.prefixOK < f.active.nextSlot {
				f.stats.Stalls++
				f.durableCond.Park(h)
				return false
			}
			*s = esSpace
		case esSpace:
			if len(f.free) == 0 {
				f.stats.Stalls++
				f.maybeTriggerGC()
				f.spaceCond.Park(h)
				return false
			}
			f.openSegment()
			return true
		}
	}
}

// AppendOp is an in-progress handler append — the run-to-completion
// analogue of Append. Arm it with Start, then call FTL.AppendStep on every
// activation until it reports done; Idx then holds the global append index.
type AppendOp struct {
	lpa  uint64
	data any
	es   ensureSM

	// Idx is the global append index, valid once AppendStep returned true.
	Idx uint64
}

// Start arms the op for one logical-page append.
func (op *AppendOp) Start(lpa uint64, data any) {
	if lpa >= SealLPA {
		panic("ftl: logical page address collides with reserved markers")
	}
	op.lpa, op.data, op.es = lpa, data, esStart
}

// AppendStep advances a handler append: it either completes the append
// (true, op.Idx valid) or parks h exactly where the blocking Append would
// have blocked (false; re-invoke on the next activation).
func (f *FTL) AppendStep(h *sim.Proc, op *AppendOp) bool {
	if !f.ensureStep(h, &op.es) {
		return false
	}
	op.Idx = f.appendSlot(op.lpa, op.data)
	op.data = nil
	f.maybeTriggerGC()
	return true
}

// DurableOrPark is the handler analogue of one WaitDurable Mesa iteration:
// true when every append below idx is durable, otherwise it parks h on the
// durability condition.
func (f *FTL) DurableOrPark(h *sim.Proc, idx uint64) bool {
	if f.durableIdx < idx {
		f.durableCond.Park(h)
		return false
	}
	return true
}

// readCtx is a pooled handler read: the NAND request plus completion
// plumbing, Done bound once at allocation.
type readCtx struct {
	f      *FTL
	h      *sim.Proc
	out    *any
	errOut *error
	req    nand.Request
}

func (c *readCtx) done(at sim.Time, r *nand.Request) {
	*c.out = r.Data
	if c.errOut != nil {
		*c.errOut = r.Err
	}
	h := c.h
	f := c.f
	c.h, c.out, c.errOut = nil, nil, nil
	c.req.Data = nil
	c.req.Meta = nand.PageMeta{}
	f.readFree = append(f.readFree, c)
	// Same single wake-up the blocking Read's done.Signal would issue.
	f.k.Resume(h)
}

// ReadStart is the handler analogue of ReadE: it reports false for an
// unmapped page (no IO, no wait), or issues the NAND read and arranges for
// h to be resumed with the result stored in *out and the attempt's media
// error (if any) in *errOut. The caller parks after a true return. Reads
// lost to a power failure never resume the handler, matching the blocking
// Read's lost wake-up.
func (f *FTL) ReadStart(h *sim.Proc, lpa uint64, out *any, errOut *error) bool {
	ref, mapped := f.mapping[lpa]
	if !mapped {
		return false
	}
	f.readTo(h, ref, out, errOut, false)
	return true
}

func (f *FTL) readTo(h *sim.Proc, ref slotRef, out *any, errOut *error, internal bool) {
	var c *readCtx
	if n := len(f.readFree); n > 0 {
		c = f.readFree[n-1]
		f.readFree = f.readFree[:n-1]
	} else {
		c = &readCtx{f: f}
		c.req.Done = c.done
	}
	c.h, c.out, c.errOut = h, out, errOut
	c.req.Kind = nand.OpRead
	c.req.Chip, c.req.Block, c.req.Page = f.chipOf(ref.slot), ref.seg, f.pageOf(ref.slot)
	c.req.Err = nil
	c.req.NoFault = internal
	f.arr.Submit(&c.req)
}

// GC handler phases.
const (
	gcIdle      = iota // waiting for free segments to run low
	gcScan             // walking victim slots, issuing copy reads
	gcRead             // copy read in flight
	gcEnsure           // ensureActive for the re-append
	gcWaitDur          // waiting for moved copies to become durable
	gcEraseWait        // per-chip erases in flight
)

// gcSM is the GC daemon's state between activations.
type gcSM struct {
	phase   int
	victim  *segment
	slot    int
	data    any
	lastIdx uint64
	es      ensureSM
	pending int // outstanding erase ops
}

// gcStep is the run-to-completion GC daemon, mirroring
// gcLoop/collect/eraseSegment blocking point for blocking point.
func (f *FTL) gcStep(h *sim.Proc) {
	g := &f.gc
	for {
		switch g.phase {
		case gcIdle:
			if len(f.free) > f.cfg.GCLowWater {
				f.gcCond.Park(h)
				return
			}
			victim := f.pickVictim()
			if victim == nil {
				// Nothing reclaimable; wait for invalidations.
				f.gcCond.Park(h)
				return
			}
			f.gcBusy = true
			g.victim, g.slot, g.lastIdx = victim, 0, 0
			g.phase = gcScan

		case gcScan:
			v := g.victim
			for g.slot < v.nextSlot {
				lpa := v.lpas[g.slot]
				if lpa >= SealLPA {
					g.slot++
					continue
				}
				ref, ok := f.mapping[lpa]
				if !ok || ref.seg != v.id || ref.slot != g.slot {
					g.slot++ // overwritten since; garbage
					continue
				}
				// Read the page, then re-append (gcRead on completion).
				// GC relocation reads are device-internal: exempt from
				// media-error injection (see FTL.Read).
				f.readTo(h, ref, &g.data, nil, true)
				g.phase = gcRead
				h.Park()
				return
			}
			// The copies must be durable before the originals are destroyed.
			g.phase = gcWaitDur

		case gcRead:
			v := g.victim
			lpa := v.lpas[g.slot]
			// Re-check validity: the host may have overwritten during the read.
			ref, ok := f.mapping[lpa]
			if !ok || ref.seg != v.id || ref.slot != g.slot {
				g.slot++
				g.phase = gcScan
				continue
			}
			g.es = esStart
			g.phase = gcEnsure

		case gcEnsure:
			if !f.ensureStep(h, &g.es) {
				return
			}
			v := g.victim
			g.lastIdx = f.gcAppendSlot(v, v.lpas[g.slot], g.data)
			g.data = nil
			g.slot++
			g.phase = gcScan

		case gcWaitDur:
			if f.durableIdx < g.lastIdx {
				f.durableCond.Park(h)
				return
			}
			g.pending = f.geo.Chips()
			for chip := 0; chip < f.geo.Chips(); chip++ {
				f.arr.Submit(&nand.Request{
					Kind: nand.OpErase, Chip: chip, Block: g.victim.id,
					Done: func(at sim.Time, r *nand.Request) {
						g.pending--
						if g.pending == 0 {
							f.k.Resume(f.gcProc)
						}
					},
				})
			}
			g.phase = gcEraseWait
			h.Park()
			return

		case gcEraseWait:
			seg := g.victim
			*seg = segment{id: seg.id}
			f.free = append(f.free, seg.id)
			f.stats.SegsErased++
			g.victim = nil
			f.gcBusy = false
			f.stats.GCRuns++
			f.spaceCond.Broadcast()
			g.phase = gcIdle
		}
	}
}
