package ftl

import (
	"fmt"

	"repro/internal/nand"
	"repro/internal/sim"
)

// Mount scans a (possibly crashed) array and rebuilds a consistent FTL,
// implementing the paper's LFS-style in-order recovery: segments are ordered
// by their summary pages; within the most recent segment, pages are scanned
// from the beginning and everything from the first unprogrammed page onward
// is discarded — even pages that were physically programmed after the hole.
// A seal page is programmed at the hole so a future mount stops at the same
// place, then a fresh active segment takes over.
//
// Mount blocks the calling process for the scan reads, the seal program and
// any cleanup erases, like a real mount-time recovery pass.
func Mount(p *sim.Proc, arr *nand.Array, cfg Config) *FTL {
	if arr.Failed() {
		panic("ftl: Mount on failed array; call Restore first")
	}
	if cfg.GCLowWater < 1 {
		cfg.GCLowWater = 1
	}
	k := p.Kernel()
	f := &FTL{
		k: k, arr: arr, cfg: cfg, geo: arr.Geometry(),
		caps:    arr.Geometry().Chips() * arr.Geometry().PagesPerBlock,
		mapping: make(map[uint64]slotRef),
	}
	f.durableCond = sim.NewCond(k)
	f.spaceCond = sim.NewCond(k)
	f.gcCond = sim.NewCond(k)

	// Phase 1: classify segments by their summary page.
	alloc := make(map[int]uint64)
	var withSummary []int
	var garbage []int
	for s := 0; s < f.geo.BlocksPerChip; s++ {
		f.segs = append(f.segs, &segment{id: s})
		ok, meta, _ := arr.PageInfo(0, s, 0)
		switch {
		case ok && meta.LPA == SummaryLPA:
			withSummary = append(withSummary, s)
			alloc[s] = meta.Seq
		case f.segmentHasAnyPage(s):
			garbage = append(garbage, s) // data without a summary: crashed before the summary landed
		default:
			f.free = append(f.free, s)
		}
	}
	f.sortedByAlloc(withSummary, alloc)

	// Phase 2: replay segments in allocation order, building the mapping.
	for i, id := range withSummary {
		last := i == len(withSummary)-1
		f.replaySegment(p, id, alloc[id], last)
	}

	// Phase 3: erase summary-less garbage so the segments are reusable.
	for _, id := range garbage {
		seg := f.segs[id]
		seg.done = make([]bool, f.caps) // mark as in-use so eraseSegment resets cleanly
		f.eraseSegment(p, seg)
		f.stats.SegsErased-- // mount cleanup is not a GC erase
	}

	f.durableIdx = f.appendIdx
	f.spawnGC()
	return f
}

func (f *FTL) segmentHasAnyPage(id int) bool {
	for chip := 0; chip < f.geo.Chips(); chip++ {
		if f.arr.NextPage(chip, id) > 0 {
			return true
		}
	}
	return false
}

// replaySegment scans one segment in slot order, applying surviving pages to
// the mapping. Only the newest segment may legitimately contain a hole; it
// is crash-sealed there.
func (f *FTL) replaySegment(p *sim.Proc, id int, allocSeq uint64, last bool) {
	seg := f.segs[id]
	*seg = segment{
		id: id, allocSeq: allocSeq,
		done: make([]bool, f.caps),
		lpas: make([]uint64, f.caps),
	}
	if allocSeq > f.allocSeq {
		f.allocSeq = allocSeq
	}
	seg.done[0] = true
	seg.lpas[0] = SummaryLPA
	seg.nextSlot = 1
	seg.prefixOK = 1
	f.appendIdx++

	sealedAt := -1
	for slot := 1; slot < f.caps; slot++ {
		ok, meta, _ := f.arr.PageInfo(f.chipOf(slot), id, f.pageOf(slot))
		if !ok {
			sealedAt = slot
			break
		}
		if meta.LPA == SealLPA {
			seg.crashSeal = true
			seg.sealed = true
			seg.done[slot] = true
			seg.lpas[slot] = SealLPA
			seg.nextSlot = slot + 1
			seg.prefixOK = slot + 1
			f.appendIdx++
			f.countDroppedTail(id, slot+1)
			return
		}
		seg.done[slot] = true
		seg.lpas[slot] = meta.LPA
		seg.nextSlot = slot + 1
		seg.prefixOK = slot + 1
		f.appendIdx++
		if meta.Seq > f.appendSeq {
			f.appendSeq = meta.Seq
		}
		f.invalidate(meta.LPA)
		f.mapping[meta.LPA] = slotRef{seg: id, slot: slot}
		seg.valid++
	}

	if sealedAt < 0 {
		// Fully programmed segment.
		seg.sealed = true
		return
	}
	// The segment has a hole. For the newest segment that is the expected
	// crash signature; for an older one it should be impossible (the seal
	// barrier admits at most one partially programmed segment and prior
	// mounts seal it), but the treatment is the same either way: discard the
	// tail and seal. A cleanly-stopped partial segment is indistinguishable
	// from a crashed one at scan time, so it too is sealed conservatively.
	_ = last
	f.countDroppedTail(id, sealedAt)
	f.writeSeal(p, seg, sealedAt)
}

// countDroppedTail counts physically programmed pages at or after slot from,
// which recovery discards to preserve the prefix property.
func (f *FTL) countDroppedTail(id, from int) {
	for slot := from; slot < f.caps; slot++ {
		if ok, _, _ := f.arr.PageInfo(f.chipOf(slot), id, f.pageOf(slot)); ok {
			f.stats.RecoveryDrop++
		}
	}
}

func (f *FTL) writeSeal(p *sim.Proc, seg *segment, slot int) {
	done := sim.NewCond(f.k)
	finished := false
	f.arr.Submit(&nand.Request{
		Kind: nand.OpProgram,
		Chip: f.chipOf(slot), Block: seg.id, Page: f.pageOf(slot),
		Meta: nand.PageMeta{LPA: SealLPA, Seq: uint64(slot)},
		Done: func(at sim.Time, r *nand.Request) {
			if r.Err != nil {
				panic(fmt.Sprintf("ftl: seal program failed: %v", r.Err))
			}
			finished = true
			done.Broadcast()
		},
	})
	for !finished {
		done.Wait(p)
	}
	seg.done[slot] = true
	seg.lpas[slot] = SealLPA
	seg.nextSlot = slot + 1
	seg.prefixOK = slot + 1
	seg.sealed = true
	seg.crashSeal = true
	f.appendIdx++
}

// DurableData returns the data for lpa as it exists on the storage surface,
// without simulated latency. It is a verification hook for crash tests, not
// part of the host-visible device interface.
func (f *FTL) DurableData(lpa uint64) (any, bool) {
	ref, ok := f.mapping[lpa]
	if !ok {
		return nil, false
	}
	programmed, _, data := f.arr.PageInfo(f.chipOf(ref.slot), ref.seg, f.pageOf(ref.slot))
	if !programmed {
		return nil, false
	}
	return data, true
}

// DurableLPAs returns every mapped logical page address. Verification hook.
func (f *FTL) DurableLPAs() []uint64 {
	out := make([]uint64, 0, len(f.mapping))
	for lpa := range f.mapping {
		out = append(out, lpa)
	}
	return out
}
