package sim

// Handler continuation API. A run-to-completion handler (SpawnHandler)
// executes inline on the dispatching goroutine; instead of blocking it arms
// exactly one continuation per activation with the methods below and
// returns. The explicit Schedule/Park/Complete forms mirror the blocking
// primitives one-to-one:
//
//	goroutine proc             handler equivalent
//	p.Sleep(d) / p.Advance(d)  h.WakeIn(d)                (one activation later)
//	p.Suspend()                h.Park() or bare return
//	cond.Wait(p)               cond.Park(h)               (one Mesa iteration)
//	queue.Get(p)               queue.GetOrPark(h)         (one Mesa iteration)
//	sem.Acquire(p, n)          sem.AcquireOrPark(h, n)    (one Mesa iteration)
//	return (proc body ends)    h.Complete()
//
// Because each blocking call maps to one continuation with identical
// waitlist and schedule effects, a component rewritten as a handler state
// machine produces the byte-identical dispatch trace of its blocking
// original — which the golden trace tests pin.

// mustArm validates a continuation call: the proc must be a handler, must be
// the running process, and must not have armed a continuation already this
// activation.
func (p *Proc) mustArm() {
	if p.step == nil {
		panic("sim: handler-only continuation API on goroutine proc " + p.Name())
	}
	if p.k.cur != p || p.state != stateRunning {
		panic("sim: continuation armed by handler that is not running: " + p.Name())
	}
	if p.armed {
		panic("sim: handler armed two continuations in one activation: " + p.Name())
	}
	p.armed = true
}

// WakeAt schedules the handler's next activation at time at — the handler
// analogue of sleeping until at. Must be the activation's last effect.
func (p *Proc) WakeAt(at Time) {
	p.mustArm()
	p.state = stateScheduled
	p.k.schedule(at, p)
}

// WakeIn schedules the handler's next activation d from now — the handler
// analogue of Sleep/Advance. d must be positive: Advance(d<=0) is a no-op
// in a goroutine proc, so state machines skip the phase instead.
func (p *Proc) WakeIn(d Duration) {
	if d <= 0 {
		panic("sim: WakeIn of non-positive duration (mirror Advance by skipping the phase)")
	}
	p.WakeAt(p.k.now.Add(d))
}

// Park leaves the handler suspended awaiting an external Resume — the
// handler analogue of Suspend. Waitlist primitives (Cond.Park, GetOrPark,
// AcquireOrPark) call it internally; call it directly when the wake-up
// comes from a completion callback that will Resume this proc.
func (p *Proc) Park() {
	p.mustArm()
	p.state = stateSuspended
}

// Complete terminates the handler — the analogue of the proc body
// returning. Processes joined on it are woken; further activations are
// impossible.
func (p *Proc) Complete() {
	p.mustArm()
	p.state = stateDead
	p.token++
	p.k.live--
	for _, w := range p.doneWaiters {
		if w.state == stateSuspended {
			w.state = stateScheduled
			p.k.schedule(p.k.now, w)
		}
	}
	p.doneWaiters = nil
}
