package sim

import "math/bits"

// This file implements the kernel's event queue as a by-value 4-ary min-heap
// fronted by a hierarchical timer wheel. The seed used container/heap, whose
// Push(x any) interface boxes every event into a fresh heap allocation; this
// queue stores events by value in reusable backing arrays, so steady-state
// scheduling allocates nothing.
//
// Layout:
//
//   - near: 4-ary heap holding events in the cursor's current level-0
//     granule (and any events cascaded out of due wheel slots). Pops come
//     from here (or from overflow) in exact (at, seq) order.
//   - wheel: three levels of 64 slots. Level L buckets events that expire
//     within 64^(L+1) granules of the cursor; a slot is an unsorted slice
//     that is cascaded (re-placed) when it becomes the earliest pending
//     work. Short-horizon Advance/Sleep wake-ups — the dominant event class
//     in the IO-stack workloads — land in level 0 with an O(1) append.
//   - overflow: 4-ary heap for events beyond the wheel horizon (~1.07s).
//
// Correctness does not depend on the cursor being tight: a slot's start time
// lower-bounds every event in it, and the pop path cascades any slot whose
// start is <= the heap tops before trusting a heap pop. Ties on the slot
// boundary cascade first, so the global (at, seq) order — and therefore the
// kernel's dispatch order — is byte-identical to the reference
// container/heap implementation (see refqueue.go and the golden trace
// tests).

const (
	granuleBits = 12 // level-0 granule: 4.096µs of virtual time
	slotBits    = 6
	wheelSlots  = 1 << slotBits
	wheelLevels = 3
)

// levelShift returns the bit shift of level l: events are slotted by
// at >> levelShift(l).
func levelShift(l int) uint { return uint(granuleBits + l*slotBits) }

// evLess orders events by (at, seq): virtual time, then schedule order.
func evLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// d4heap is a by-value 4-ary min-heap of events. Four-way fan-out halves the
// tree depth of a binary heap and keeps parent/child pairs on the same cache
// line, which measurably cuts sift costs for the small heaps this kernel
// runs (tens of pending events).
type d4heap []event

func (h *d4heap) push(e event) {
	a := append(*h, e)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !evLess(e, a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = e
	*h = a
}

func (h *d4heap) pop() event {
	a := *h
	n := len(a) - 1
	top := a[0]
	e := a[n]
	a[n] = event{} // release the *Proc reference
	a = a[:n]
	*h = a
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if evLess(a[j], a[m]) {
					m = j
				}
			}
			if !evLess(a[m], e) {
				break
			}
			a[i] = a[m]
			i = m
		}
		a[i] = e
	}
	return top
}

// eventQueue is the composed structure. All methods are O(1) or O(log n) and
// allocation-free once the backing arrays have grown to the workload's
// high-water mark.
type eventQueue struct {
	near     d4heap
	overflow d4heap
	wheel    [wheelLevels][wheelSlots][]event
	occupied [wheelLevels]uint64 // bitmap of non-empty slots per level
	inWheel  int                 // events currently resident in wheel slots
	cursor   Time                // placement reference; <= every pending event's at
	size     int
	settled  bool // heaps hold the true minimum; reset by push/pop
}

func (q *eventQueue) len() int { return q.size }

// push inserts e. now is the kernel clock, which advances the placement
// cursor; every pending event's timestamp is >= now.
func (q *eventQueue) push(e event, now Time) {
	if now > q.cursor {
		q.cursor = now
	}
	q.size++
	q.settled = false
	q.place(e)
}

func (q *eventQueue) place(e event) {
	if e.at>>granuleBits <= q.cursor>>granuleBits {
		// Current (or, defensively, past) granule: straight to the heap.
		q.near.push(e)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		// Level l takes events within 64 level-l granules of the cursor:
		// the granule-count bound (not a raw time delta) is what makes the
		// 6-bit slot index unambiguous and the settle cascade terminate.
		sh := levelShift(l)
		if (e.at>>sh)-(q.cursor>>sh) < wheelSlots {
			idx := (uint64(e.at) >> sh) & (wheelSlots - 1)
			q.wheel[l][idx] = append(q.wheel[l][idx], e)
			q.occupied[l] |= 1 << idx
			q.inWheel++
			return
		}
	}
	q.overflow.push(e)
}

// earliestSlot finds the occupied wheel slot with the smallest start time.
// A slot's start lower-bounds every event it holds.
func (q *eventQueue) earliestSlot() (lvl, idx int, start Time, ok bool) {
	best := Time(1<<63 - 1)
	for l := 0; l < wheelLevels; l++ {
		bm := q.occupied[l]
		if bm == 0 {
			continue
		}
		sh := levelShift(l)
		cur := int((uint64(q.cursor) >> sh) & (wheelSlots - 1))
		// Rotate so bit j corresponds to slot (cur+j) mod 64; residents are
		// within 64 level-l granules of the cursor, so j is unambiguous.
		j := bits.TrailingZeros64(bits.RotateLeft64(bm, -cur))
		g := (q.cursor >> sh) + Time(j)
		if s := g << sh; s < best {
			best, lvl, idx, start, ok = s, l, (cur+j)&(wheelSlots-1), s, true
		}
	}
	return lvl, idx, start, ok
}

// settle cascades due wheel slots into the heaps until the earliest pending
// event is at the top of near or overflow. A slot is due when its start time
// is <= both heap tops (ties cascade: the slot may hold an equal-time event
// with a smaller seq).
func (q *eventQueue) settle() {
	if q.settled {
		return
	}
	q.settled = true
	for q.inWheel > 0 {
		lvl, idx, start, ok := q.earliestSlot()
		if !ok {
			return
		}
		if len(q.near) > 0 && q.near[0].at < start {
			return
		}
		if len(q.overflow) > 0 && q.overflow[0].at < start {
			return
		}
		// Advancing the cursor to the slot start before re-placing
		// guarantees cascaded events land strictly below lvl (or in near),
		// so the cascade terminates.
		if start > q.cursor {
			q.cursor = start
		}
		evs := q.wheel[lvl][idx]
		q.wheel[lvl][idx] = evs[:0]
		q.occupied[lvl] &^= 1 << uint(idx)
		q.inWheel -= len(evs)
		for i, e := range evs {
			q.place(e)
			evs[i] = event{} // release the *Proc reference
		}
	}
}

// peek returns the next event in (at, seq) order without removing it.
func (q *eventQueue) peek() (event, bool) {
	if q.size == 0 {
		return event{}, false
	}
	q.settle()
	if len(q.near) > 0 && (len(q.overflow) == 0 || evLess(q.near[0], q.overflow[0])) {
		return q.near[0], true
	}
	return q.overflow[0], true
}

// pop removes and returns the next event. Callers must have checked len.
func (q *eventQueue) pop() event {
	q.settle()
	q.size--
	q.settled = false // the new heap top may rank behind a due wheel slot
	if len(q.near) > 0 && (len(q.overflow) == 0 || evLess(q.near[0], q.overflow[0])) {
		return q.near.pop()
	}
	return q.overflow.pop()
}
