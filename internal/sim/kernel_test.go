package sim

import (
	"fmt"
	"testing"
)

func TestSleepOrdering(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var log []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(30 * Microsecond)
		log = append(log, fmt.Sprintf("a@%d", p.Now()))
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		log = append(log, fmt.Sprintf("b@%d", p.Now()))
	})
	k.Spawn("c", func(p *Proc) {
		p.Sleep(20 * Microsecond)
		log = append(log, fmt.Sprintf("c@%d", p.Now()))
	})
	end := k.Run()
	want := []string{"b@10000", "c@20000", "a@30000"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
	if end != Time(30*Microsecond) {
		t.Errorf("end time = %v, want 30µs", end)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(5 * Microsecond)
			order = append(order, i)
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestSuspendResume(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var got Time
	waiter := k.Spawn("waiter", func(p *Proc) {
		p.Suspend()
		got = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(100 * Microsecond)
		p.Kernel().Resume(waiter)
	})
	k.Run()
	if got != Time(100*Microsecond) {
		t.Errorf("waiter resumed at %v, want 100µs", got)
	}
}

func TestResumeNonSuspendedPanics(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	sleeper := k.Spawn("sleeper", func(p *Proc) { p.Sleep(Second) })
	k.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Resume of scheduled (sleeping) process did not panic")
			}
		}()
		p.Kernel().Resume(sleeper)
	})
	k.RunUntil(Time(10 * Microsecond))
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(10 * Microsecond)
			ticks++
		}
	})
	now := k.RunUntil(Time(95 * Microsecond))
	if ticks != 9 {
		t.Errorf("ticks = %d, want 9", ticks)
	}
	if now != Time(95*Microsecond) {
		t.Errorf("now = %v, want 95µs", now)
	}
	// Resume where we left off.
	k.RunUntil(Time(200 * Microsecond))
	if ticks != 20 {
		t.Errorf("after second RunUntil ticks = %d, want 20", ticks)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var childTime Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(50 * Microsecond)
		child := p.Kernel().Spawn("child", func(c *Proc) {
			c.Sleep(25 * Microsecond)
			childTime = c.Now()
		})
		p.Join(child)
		if p.Now() != Time(75*Microsecond) {
			t.Errorf("parent joined at %v, want 75µs", p.Now())
		}
	})
	k.Run()
	if childTime != Time(75*Microsecond) {
		t.Errorf("child finished at %v, want 75µs", childTime)
	}
}

func TestJoinDeadProcess(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	done := false
	dead := k.Spawn("dead", func(p *Proc) {})
	k.Spawn("joiner", func(p *Proc) {
		p.Sleep(10 * Microsecond) // let "dead" finish first
		p.Join(dead)
		done = true
	})
	k.Run()
	if !done {
		t.Error("join on dead process did not return")
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(Microsecond)
			ticks++
			if ticks == 5 {
				p.Kernel().Stop()
			}
		}
	})
	k.Run()
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5 after Stop", ticks)
	}
}

func TestCloseReapsDaemons(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	for i := 0; i < 4; i++ {
		k.Spawn("daemon", func(p *Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
			}
		})
	}
	k.RunUntil(Time(Millisecond))
	if k.Live() != 4 {
		t.Fatalf("live = %d, want 4", k.Live())
	}
	k.Close()
	if k.Live() != 0 {
		t.Errorf("live after Close = %d, want 0", k.Live())
	}
}

func TestAdvanceDoesNotCountAsSwitch(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var proc *Proc
	proc = k.Spawn("worker", func(p *Proc) {
		p.Advance(10 * Microsecond)
		p.Advance(10 * Microsecond)
		p.Sleep(10 * Microsecond)
	})
	k.Run()
	if proc.VoluntarySwitches() != 1 {
		t.Errorf("voluntary switches = %d, want 1 (two Advances + one Sleep)", proc.VoluntarySwitches())
	}
	if proc.Wakeups() != 4 {
		t.Errorf("wakeups = %d, want 4 (start + 2 advances + 1 sleep)", proc.Wakeups())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		defer k.Close()
		var log []string
		q := NewQueue[int](k)
		for i := 0; i < 3; i++ {
			i := i
			k.Spawn(fmt.Sprintf("producer%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Duration(7+i) * Microsecond)
					q.Put(i*100 + j)
				}
			})
		}
		k.Spawn("consumer", func(p *Proc) {
			for n := 0; n < 15; n++ {
				v, _ := q.Get(p)
				log = append(log, fmt.Sprintf("%d@%d", v, p.Now()))
			}
		})
		k.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != 15 || len(b) != 15 {
		t.Fatalf("runs incomplete: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestBlockFromWrongGoroutinePanics(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var p1 *Proc
	p1 = k.Spawn("p1", func(p *Proc) { p.Sleep(Second) })
	k.Spawn("p2", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("blocking another process's Proc did not panic")
			}
		}()
		p1.Sleep(Microsecond) // wrong: p1 is not the running process
	})
	k.RunUntil(Time(Millisecond))
}

func TestWakeupCounting(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	var worker *Proc
	worker = k.Spawn("worker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Microsecond)
		}
	})
	k.Run()
	// 1 initial dispatch + 3 sleep wake-ups.
	if worker.Wakeups() != 4 {
		t.Errorf("wakeups = %d, want 4", worker.Wakeups())
	}
	if worker.VoluntarySwitches() != 3 {
		t.Errorf("voluntary switches = %d, want 3", worker.VoluntarySwitches())
	}
}
