package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](k)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(i)
			p.Sleep(Microsecond)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, ok := q.Get(p)
			if !ok {
				t.Error("queue closed unexpectedly")
				return
			}
			got = append(got, v)
		}
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("queue not FIFO: %v", got)
		}
	}
}

func TestQueueBlocksWhenEmpty(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[string](k)
	var gotAt Time
	k.Spawn("consumer", func(p *Proc) {
		v, _ := q.Get(p)
		if v != "hello" {
			t.Errorf("got %q", v)
		}
		gotAt = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(42 * Microsecond)
		q.Put("hello")
	})
	k.Run()
	if gotAt != Time(42*Microsecond) {
		t.Errorf("consumer unblocked at %v, want 42µs", gotAt)
	}
}

func TestQueueClose(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](k)
	drained := make([]int, 0)
	closedSeen := false
	k.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				closedSeen = true
				return
			}
			drained = append(drained, v)
		}
	})
	k.Spawn("producer", func(p *Proc) {
		q.Put(1)
		q.Put(2)
		p.Sleep(Microsecond)
		q.Close()
	})
	k.Run()
	if !closedSeen {
		t.Error("consumer did not observe close")
	}
	if len(drained) != 2 {
		t.Errorf("drained %v, want [1 2]", drained)
	}
}

func TestQueueMultipleConsumersNoLostItems(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](k)
	const items = 100
	var count int
	for c := 0; c < 4; c++ {
		k.Spawn("consumer", func(p *Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
				count++
				p.Sleep(3 * Microsecond)
			}
		})
	}
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < items; i++ {
			q.Put(i)
			if i%7 == 0 {
				p.Sleep(Microsecond)
			}
		}
		p.Sleep(Millisecond)
		q.Close()
	})
	k.Run()
	if count != items {
		t.Errorf("consumed %d items, want %d", count, items)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	c := NewCond(k)
	woke := 0
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		c.Signal()
		p.Sleep(10 * Microsecond)
		if woke != 1 {
			t.Errorf("after Signal woke = %d, want 1", woke)
		}
		c.Broadcast()
	})
	k.Run()
	if woke != 3 {
		t.Errorf("woke = %d, want 3", woke)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	sem := NewSemaphore(k, 2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		k.Spawn("worker", func(p *Proc) {
			sem.Acquire(p, 1)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(10 * Microsecond)
			inside--
			sem.Release(1)
		})
	}
	k.Run()
	if maxInside != 2 {
		t.Errorf("max concurrent holders = %d, want 2", maxInside)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	sem := NewSemaphore(k, 1)
	k.Spawn("p", func(p *Proc) {
		if !sem.TryAcquire(1) {
			t.Error("first TryAcquire failed")
		}
		if sem.TryAcquire(1) {
			t.Error("second TryAcquire succeeded on full semaphore")
		}
		if sem.InUse() != 1 || sem.Avail() != 0 {
			t.Errorf("InUse=%d Avail=%d, want 1,0", sem.InUse(), sem.Avail())
		}
		sem.Release(1)
		if sem.Avail() != 1 {
			t.Errorf("Avail after release = %d, want 1", sem.Avail())
		}
	})
	k.Run()
}

func TestSemaphoreFIFOFairnessEventually(t *testing.T) {
	// All acquirers must eventually get the semaphore (no starvation).
	k := NewKernel()
	defer k.Close()
	sem := NewSemaphore(k, 1)
	served := 0
	const n = 20
	for i := 0; i < n; i++ {
		k.Spawn("w", func(p *Proc) {
			sem.Acquire(p, 1)
			p.Sleep(Microsecond)
			served++
			sem.Release(1)
		})
	}
	k.Run()
	if served != n {
		t.Errorf("served = %d, want %d", served, n)
	}
}

// Property: for any sequence of put/get interleavings, a queue delivers every
// item exactly once in FIFO order.
func TestQueueDeliveryProperty(t *testing.T) {
	prop := func(delays []uint8) bool {
		if len(delays) == 0 || len(delays) > 64 {
			return true
		}
		k := NewKernel()
		defer k.Close()
		q := NewQueue[int](k)
		var got []int
		k.Spawn("producer", func(p *Proc) {
			for i, d := range delays {
				p.Sleep(Duration(d) * Microsecond)
				q.Put(i)
			}
		})
		k.Spawn("consumer", func(p *Proc) {
			for range delays {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		k.Run()
		if len(got) != len(delays) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimeFormatting(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{70 * Microsecond, "70.00µs"},
		{Duration(5.95 * float64(Millisecond)), "5.950ms"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
	if Time(1500).Add(500).Sub(Time(1000)) != 1000 {
		t.Error("Add/Sub arithmetic wrong")
	}
	if (10 * Millisecond).Scale(0.5) != 5*Millisecond {
		t.Error("Scale wrong")
	}
}

func TestSemaphoreReleaseSkipsOversizedWaiter(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	sem := NewSemaphore(k, 2)
	var got []string
	k.Spawn("holder", func(p *Proc) {
		sem.Acquire(p, 2)
		p.Sleep(10 * Microsecond)
		sem.Release(1) // one slot free: big(2) cannot run, small(1) can
		p.Sleep(10 * Microsecond)
		sem.Release(1)
	})
	k.Spawn("big", func(p *Proc) {
		p.Sleep(Microsecond)
		sem.Acquire(p, 2)
		got = append(got, "big")
		sem.Release(2)
	})
	k.Spawn("small", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		sem.Acquire(p, 1)
		got = append(got, "small")
		sem.Release(1)
	})
	k.Run()
	if len(got) != 2 || got[0] != "small" || got[1] != "big" {
		t.Fatalf("acquisition order = %v, want [small big] (single free slot must not starve behind the oversized head waiter)", got)
	}
}
