package sim

import (
	"fmt"
	"testing"
)

// traceWorkload is a mixed producer/consumer/sleeper workload that
// exercises sleeps across wheel levels, suspends, resumes, spawn churn and
// joins. newK selects the kernel under test.
func traceWorkload(newK func() *Kernel, keep bool) *Trace {
	k := newK()
	defer k.Close()
	tr := k.StartTrace(keep)
	q := NewQueue[int](k)
	sem := NewSemaphore(k, 2)
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn(fmt.Sprintf("producer%d", i), func(p *Proc) {
			for j := 0; j < 40; j++ {
				p.Sleep(Duration(3+i) * Microsecond)
				sem.Acquire(p, 1)
				p.Advance(Duration(j%5) * 100 * Nanosecond)
				sem.Release(1)
				q.Put(i*1000 + j)
				if j%8 == 0 {
					child := p.Kernel().Spawn("burst", func(c *Proc) {
						c.Sleep(Duration(i+1) * 700 * Microsecond) // level-1 horizon
					})
					p.Join(child)
				}
			}
		})
	}
	k.Spawn("slow", func(p *Proc) {
		p.Sleep(40 * Millisecond) // level-2 horizon
	})
	k.Spawn("veryslow", func(p *Proc) {
		p.Sleep(2 * Second) // beyond the wheel: overflow heap
	})
	k.Spawn("consumer", func(p *Proc) {
		for n := 0; n < 160; n++ {
			q.Get(p)
		}
	})
	k.Run()
	return tr
}

// TestTraceDeterminism pins run-to-run determinism of the optimized kernel:
// identical workloads dispatch identical (time, seq, proc) sequences.
func TestTraceDeterminism(t *testing.T) {
	a := traceWorkload(NewKernel, false)
	b := traceWorkload(NewKernel, false)
	if a.Len() != b.Len() || a.Hash() != b.Hash() {
		t.Fatalf("nondeterministic dispatch: run1 (n=%d h=%x), run2 (n=%d h=%x)",
			a.Len(), a.Hash(), b.Len(), b.Hash())
	}
	if a.Len() == 0 {
		t.Fatal("empty trace")
	}
}

// TestTraceMatchesReferenceKernel is the kernel-level golden test: the
// wheel-based queue must dispatch the byte-identical event order realized
// by the seed's container/heap queue.
func TestTraceMatchesReferenceKernel(t *testing.T) {
	opt := traceWorkload(NewKernel, true)
	ref := traceWorkload(NewReferenceKernel, true)
	if opt.Len() == ref.Len() && opt.Hash() == ref.Hash() {
		return
	}
	i := opt.FirstDivergence(ref)
	t.Fatalf("optimized kernel diverges from reference at record %d: opt(n=%d) %+v, ref(n=%d) %+v",
		i, opt.Len(), rec(opt, i), ref.Len(), rec(ref, i))
}

func rec(tr *Trace, i int) TraceRec {
	if i >= 0 && i < len(tr.Records()) {
		return tr.Records()[i]
	}
	return TraceRec{}
}
