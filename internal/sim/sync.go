package sim

// Queue is an unbounded FIFO message queue between processes. Put never
// blocks; Get blocks the calling process until an item is available or the
// queue is closed. Wake-ups use Mesa semantics: a woken getter re-checks for
// items and re-waits if another process stole them.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
	closed  bool
}

// NewQueue returns an empty queue on kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends x and wakes one waiting getter, if any.
func (q *Queue[T]) Put(x T) {
	if q.closed {
		panic("sim: Put on closed queue")
	}
	q.items = append(q.items, x)
	q.wakeOne()
}

// PutFront prepends x (used for requeueing) and wakes one waiting getter.
func (q *Queue[T]) PutFront(x T) {
	if q.closed {
		panic("sim: PutFront on closed queue")
	}
	q.items = append([]T{x}, q.items...)
	q.wakeOne()
}

func (q *Queue[T]) wakeOne() {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.state == stateSuspended {
			q.k.Resume(w)
			return
		}
	}
}

// Get removes and returns the head item, blocking while the queue is empty.
// The second result is false if the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (T, bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, p)
		p.Suspend()
	}
	x := q.items[0]
	q.items = q.items[1:]
	return x, true
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	x := q.items[0]
	q.items = q.items[1:]
	return x, true
}

// Close marks the queue closed and wakes all waiters; subsequent Gets drain
// remaining items then report false.
func (q *Queue[T]) Close() {
	q.closed = true
	for _, w := range q.waiters {
		if w.state == stateSuspended {
			q.k.Resume(w)
		}
	}
	q.waiters = nil
}

// Cond is a condition variable for processes. As with sync.Cond, the
// condition itself lives in caller state; Wait must be used in a loop.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond returns a condition variable on kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait blocks the calling process until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.Suspend()
}

// Signal wakes one waiting process, if any.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.state == stateSuspended {
			c.k.Resume(w)
			return
		}
	}
}

// SignalN wakes up to n waiting processes in FIFO order. It is the
// fan-out-limited Broadcast for wake-ups where at most n waiters can make
// progress (e.g. n queued commands can occupy at most n service workers);
// the rest stay parked instead of paying a futile dispatch each.
func (c *Cond) SignalN(n int) {
	for ; n > 0 && len(c.waiters) > 0; n-- {
		c.Signal()
	}
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		if w.state == stateSuspended {
			c.k.Resume(w)
		}
	}
}

// Waiters returns the number of processes currently parked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Semaphore is a counting semaphore, useful for modelling slot-limited
// resources such as command-queue entries or a DMA bus.
type Semaphore struct {
	k       *Kernel
	avail   int
	cap     int
	waiters []semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with n free slots.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	return &Semaphore{k: k, avail: n, cap: n}
}

// Acquire takes n slots, blocking until they are available. Mesa
// semantics: a woken waiter re-contends, so a process that never blocked
// may barge in front of parked waiters (as with the former
// Broadcast-based implementation).
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n > s.cap {
		panic("sim: Acquire exceeds semaphore capacity")
	}
	for s.avail < n {
		s.waiters = append(s.waiters, semWaiter{p: p, n: n})
		p.Suspend()
	}
	s.avail -= n
}

// TryAcquire takes n slots without blocking, reporting success.
func (s *Semaphore) TryAcquire(n int) bool {
	if s.avail < n {
		return false
	}
	s.avail -= n
	return true
}

// Release returns n slots and wakes, in FIFO order, every waiter the freed
// slots can satisfy — skipping (but keeping parked) waiters whose request
// exceeds what remains, so a large waiter at the head never starves a
// satisfiable small one behind it. Waking only provisionable waiters
// (instead of broadcasting) spares the rest of a contended pool a futile
// dispatch each; for the single-slot resources this simulator models, the
// allocation order is identical to a broadcast's FIFO re-contention.
func (s *Semaphore) Release(n int) {
	s.avail += n
	if s.avail > s.cap {
		panic("sim: Release beyond semaphore capacity")
	}
	virt := s.avail
	kept := s.waiters[:0]
	for i, w := range s.waiters {
		if virt == 0 {
			kept = append(kept, s.waiters[i:]...)
			break
		}
		if w.p.state != stateSuspended {
			continue // stale entry: the waiter re-queued or was reaped
		}
		if w.n > virt {
			kept = append(kept, w)
			continue
		}
		virt -= w.n
		s.k.Resume(w.p)
	}
	s.waiters = kept
}

// Avail returns the number of free slots.
func (s *Semaphore) Avail() int { return s.avail }

// InUse returns the number of held slots.
func (s *Semaphore) InUse() int { return s.cap - s.avail }

// Cap returns the semaphore capacity.
func (s *Semaphore) Cap() int { return s.cap }
