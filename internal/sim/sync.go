package sim

// Queue is an unbounded FIFO message queue between processes. Put never
// blocks; Get blocks the calling process until an item is available or the
// queue is closed. Wake-ups use Mesa semantics: a woken getter re-checks for
// items and re-waits if another process stole them.
//
// Items and waiters are head-indexed slices rather than [1:]-sliding ones:
// sliding discards the backing array's head capacity, so a busy queue
// reallocated on nearly every append. The head index drains in place and
// resets to reuse the full array once empty — steady state allocates
// nothing.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	ihead   int
	waiters waitFIFO
	closed  bool
}

// NewQueue returns an empty queue on kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.ihead }

// Put appends x and wakes one waiting getter, if any.
func (q *Queue[T]) Put(x T) {
	if q.closed {
		panic("sim: Put on closed queue")
	}
	q.items = append(q.items, x)
	q.wakeOne()
}

// PutFront prepends x (used for requeueing) and wakes one waiting getter.
func (q *Queue[T]) PutFront(x T) {
	if q.closed {
		panic("sim: PutFront on closed queue")
	}
	if q.ihead > 0 {
		q.ihead--
		q.items[q.ihead] = x
	} else {
		q.items = append([]T{x}, q.items...)
	}
	q.wakeOne()
}

func (q *Queue[T]) wakeOne() {
	for {
		w, ok := q.waiters.pop()
		if !ok {
			return
		}
		if w.state == stateSuspended {
			q.k.Resume(w)
			return
		}
	}
}

func (q *Queue[T]) popItem() T {
	x := q.items[q.ihead]
	var zero T
	q.items[q.ihead] = zero // release references for GC
	q.ihead++
	switch {
	case q.ihead == len(q.items):
		q.items = q.items[:0]
		q.ihead = 0
	case q.ihead > 32 && q.ihead*2 >= len(q.items):
		// A queue that never fully drains would otherwise grow its backing
		// array by the consumed prefix forever; compact once the dead half
		// dominates (amortized O(1) per pop).
		n := copy(q.items, q.items[q.ihead:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.ihead = 0
	}
	return x
}

// Get removes and returns the head item, blocking while the queue is empty.
// The second result is false if the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (T, bool) {
	for q.Len() == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters.push(p)
		p.Suspend()
	}
	return q.popItem(), true
}

// GetOrPark is the handler analogue of Get — one Mesa iteration: it either
// returns the head item (got true), reports the queue closed and drained
// (closed true), or parks the handler on the waiter list exactly as one
// pass of Get's wait loop would. A parked handler re-invokes GetOrPark when
// it is next dispatched; another process may have stolen the item by then,
// in which case it parks again (Mesa semantics).
func (q *Queue[T]) GetOrPark(h *Proc) (x T, got bool, closed bool) {
	if q.Len() == 0 {
		if q.closed {
			return x, false, true
		}
		q.waiters.push(h)
		h.Park()
		return x, false, false
	}
	return q.popItem(), true, false
}

// TryGet removes and returns the head item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.Len() == 0 {
		var zero T
		return zero, false
	}
	return q.popItem(), true
}

// Close marks the queue closed and wakes all waiters; subsequent Gets drain
// remaining items then report false.
func (q *Queue[T]) Close() {
	q.closed = true
	q.waiters.wakeAll(q.k)
}

// waitFIFO is a head-indexed FIFO of parked processes shared by the wait
// primitives: pops drain in place and the backing array is reused once
// empty, so steady-state park/wake cycles allocate nothing.
type waitFIFO struct {
	ps   []*Proc
	head int
}

func (f *waitFIFO) push(p *Proc) { f.ps = append(f.ps, p) }

func (f *waitFIFO) len() int { return len(f.ps) - f.head }

func (f *waitFIFO) pop() (*Proc, bool) {
	if f.head == len(f.ps) {
		return nil, false
	}
	p := f.ps[f.head]
	f.ps[f.head] = nil
	f.head++
	switch {
	case f.head == len(f.ps):
		f.ps = f.ps[:0]
		f.head = 0
	case f.head > 32 && f.head*2 >= len(f.ps):
		// Compact a never-empty waitlist so the consumed prefix cannot grow
		// without bound (amortized O(1) per pop).
		n := copy(f.ps, f.ps[f.head:])
		clear(f.ps[n:])
		f.ps = f.ps[:n]
		f.head = 0
	}
	return p, true
}

// wakeAll resumes every suspended process in FIFO order and empties the
// list.
func (f *waitFIFO) wakeAll(k *Kernel) {
	for i := f.head; i < len(f.ps); i++ {
		if w := f.ps[i]; w.state == stateSuspended {
			k.Resume(w)
		}
		f.ps[i] = nil
	}
	f.ps = f.ps[:0]
	f.head = 0
}

// Cond is a condition variable for processes. As with sync.Cond, the
// condition itself lives in caller state; Wait must be used in a loop.
type Cond struct {
	k       *Kernel
	waiters waitFIFO
}

// NewCond returns a condition variable on kernel k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait blocks the calling process until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters.push(p)
	p.Suspend()
}

// Park is the handler analogue of Wait: it appends the running handler to
// the waiter list and leaves it suspended, exactly as one Wait call would.
// Signal/Broadcast wake parked handlers and blocked goroutine procs alike;
// a woken handler re-checks its condition at the next activation and parks
// again if it does not hold (Mesa semantics, same as a Wait loop).
func (c *Cond) Park(h *Proc) {
	c.waiters.push(h)
	h.Park()
}

// Signal wakes one waiting process, if any.
func (c *Cond) Signal() {
	for {
		w, ok := c.waiters.pop()
		if !ok {
			return
		}
		if w.state == stateSuspended {
			c.k.Resume(w)
			return
		}
	}
}

// SignalN wakes up to n waiting processes in FIFO order. It is the
// fan-out-limited Broadcast for wake-ups where at most n waiters can make
// progress (e.g. n queued commands can occupy at most n service workers);
// the rest stay parked instead of paying a futile dispatch each.
func (c *Cond) SignalN(n int) {
	for ; n > 0 && c.waiters.len() > 0; n-- {
		c.Signal()
	}
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	c.waiters.wakeAll(c.k)
}

// Waiters returns the number of processes currently parked on the condition.
func (c *Cond) Waiters() int { return c.waiters.len() }

// Semaphore is a counting semaphore, useful for modelling slot-limited
// resources such as command-queue entries or a DMA bus.
type Semaphore struct {
	k       *Kernel
	avail   int
	cap     int
	waiters []semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with n free slots.
func NewSemaphore(k *Kernel, n int) *Semaphore {
	return &Semaphore{k: k, avail: n, cap: n}
}

// Acquire takes n slots, blocking until they are available. Mesa
// semantics: a woken waiter re-contends, so a process that never blocked
// may barge in front of parked waiters (as with the former
// Broadcast-based implementation).
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n > s.cap {
		panic("sim: Acquire exceeds semaphore capacity")
	}
	for s.avail < n {
		s.waiters = append(s.waiters, semWaiter{p: p, n: n})
		p.Suspend()
	}
	s.avail -= n
}

// AcquireOrPark is the handler analogue of Acquire — one Mesa iteration: it
// either takes the n slots (true) or appends the handler to the waiter list
// and parks it (false), exactly as one pass of Acquire's wait loop would. A
// parked handler retries when next dispatched; Release wakes handlers and
// goroutine waiters alike.
func (s *Semaphore) AcquireOrPark(h *Proc, n int) bool {
	if n > s.cap {
		panic("sim: Acquire exceeds semaphore capacity")
	}
	if s.avail < n {
		s.waiters = append(s.waiters, semWaiter{p: h, n: n})
		h.Park()
		return false
	}
	s.avail -= n
	return true
}

// TryAcquire takes n slots without blocking, reporting success.
func (s *Semaphore) TryAcquire(n int) bool {
	if s.avail < n {
		return false
	}
	s.avail -= n
	return true
}

// Release returns n slots and wakes, in FIFO order, every waiter the freed
// slots can satisfy — skipping (but keeping parked) waiters whose request
// exceeds what remains, so a large waiter at the head never starves a
// satisfiable small one behind it. Waking only provisionable waiters
// (instead of broadcasting) spares the rest of a contended pool a futile
// dispatch each; for the single-slot resources this simulator models, the
// allocation order is identical to a broadcast's FIFO re-contention.
func (s *Semaphore) Release(n int) {
	s.avail += n
	if s.avail > s.cap {
		panic("sim: Release beyond semaphore capacity")
	}
	virt := s.avail
	kept := s.waiters[:0]
	for i, w := range s.waiters {
		if virt == 0 {
			kept = append(kept, s.waiters[i:]...)
			break
		}
		if w.p.state != stateSuspended {
			continue // stale entry: the waiter re-queued or was reaped
		}
		if w.n > virt {
			kept = append(kept, w)
			continue
		}
		virt -= w.n
		s.k.Resume(w.p)
	}
	s.waiters = kept
}

// Avail returns the number of free slots.
func (s *Semaphore) Avail() int { return s.avail }

// InUse returns the number of held slots.
func (s *Semaphore) InUse() int { return s.cap - s.avail }

// Cap returns the semaphore capacity.
func (s *Semaphore) Cap() int { return s.cap }
