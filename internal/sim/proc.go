package sim

import (
	"errors"
	"strconv"
)

type procState int

const (
	statePending   procState = iota // spawned, not yet started
	stateRunning                    // currently executing
	stateScheduled                  // has a wake-up event in the queue
	stateSuspended                  // blocked with no pending event
	stateDead                       // terminated
)

func (s procState) String() string {
	switch s {
	case statePending:
		return "pending"
	case stateRunning:
		return "running"
	case stateScheduled:
		return "scheduled"
	case stateSuspended:
		return "suspended"
	case stateDead:
		return "dead"
	}
	return "invalid"
}

type resumeMsg struct{ kill bool }

// errKilled unwinds a process goroutine when the kernel is closed.
var errKilled = errors.New("sim: process killed")

// worker is a pooled goroutine that executes process bodies. A worker is
// bound to one Proc at a time; when the proc terminates the worker parks on
// its resume channel and returns to the kernel's free pool, so the next
// Spawn reuses the goroutine and its channel instead of creating fresh
// ones. The channel is buffered (capacity 1) so a handoff never blocks the
// sender — the core of the single-switch dispatch protocol.
type worker struct {
	k      *Kernel
	resume chan resumeMsg
	p      *Proc // the proc this worker currently embodies; nil when pooled
	exit   bool  // set by finish (on this worker's goroutine) during Close
}

func (w *worker) loop() {
	defer func() {
		w.k.goroutines.Add(-1)
		w.k.wg.Done()
	}()
	for {
		msg := <-w.resume
		if msg.kill {
			if p := w.p; p != nil && p.state != stateDead {
				p.finish() // killed before its first dispatch
			}
			return
		}
		w.run(w.p)
		if w.exit {
			return
		}
	}
}

func (w *worker) run(p *Proc) {
	defer func() {
		if r := recover(); r != nil {
			if r != errKilled { //nolint:errorlint // sentinel identity check
				panic(r)
			}
		}
		p.finish()
	}()
	p.fn(p)
}

// Proc is a simulated thread of control, in one of two flavors:
//
//   - goroutine procs (Spawn): fn is the whole process body, running on a
//     pooled worker goroutine and blocking through Sleep/Suspend/Wait;
//   - run-to-completion handlers (SpawnHandler): step is invoked inline on
//     the dispatching goroutine at every activation and arms the next
//     continuation explicitly (WakeIn, Park, Cond.Park, Complete, ...).
//
// Methods must only be called while the proc is the running process, except
// where noted.
type Proc struct {
	k       *Kernel
	id      int
	name    string // full name, or the prefix while nameIdx >= 0
	nameIdx int    // lazy-name suffix; -1 once rendered (or when absent)
	fn      func(*Proc)
	step    func(*Proc) // handler step fn; nil for goroutine procs
	state   procState
	armed   bool // handler armed its continuation this activation
	w       *worker
	resume  chan resumeMsg // w.resume, cached to keep the hot path short
	token   uint64

	wakeups   int64 // times this process was dispatched
	volSwitch int64 // voluntary context switches (blocking waits)

	doneWaiters []*Proc
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// ID returns the process's unique id (its spawn index).
func (p *Proc) ID() int { return p.id }

// Name returns the process name. Lazily named procs (SpawnIdx) render and
// cache prefix+idx on first call.
func (p *Proc) Name() string {
	if p.nameIdx >= 0 {
		p.name += strconv.Itoa(p.nameIdx)
		p.nameIdx = -1
	}
	return p.name
}

// Handler reports whether the proc is a run-to-completion handler.
func (p *Proc) Handler() bool { return p.step != nil }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Dead reports whether the process has terminated. Callable from anywhere.
func (p *Proc) Dead() bool { return p.state == stateDead }

// Wakeups returns the number of times the process has been dispatched by the
// kernel. The delta across an operation approximates the number of times the
// thread was switched in.
func (p *Proc) Wakeups() int64 { return p.wakeups }

// VoluntarySwitches returns the number of times the process has voluntarily
// blocked (Sleep, Suspend, queue/cond/semaphore waits). Advance does not
// count: it models computation, not blocking.
func (p *Proc) VoluntarySwitches() int64 { return p.volSwitch }

// finish retires a terminated process: waiters are woken, the worker
// returns to the pool, and the baton moves on. During Close the baton goes
// home to acknowledge the kill instead.
func (p *Proc) finish() {
	p.state = stateDead
	p.token++
	p.k.live--
	for _, w := range p.doneWaiters {
		if w.state == stateSuspended {
			w.state = stateScheduled
			p.k.schedule(p.k.now, w)
		}
	}
	p.doneWaiters = nil
	w := p.w
	p.w = nil
	w.p = nil
	if p.k.closing {
		w.exit = true
		p.k.done <- struct{}{}
		return
	}
	p.k.pool = append(p.k.pool, w)
	p.k.next()
}

// block parks the process in the given state and hands control directly to
// the next runnable process (or back to the Run caller). It returns when
// this process is next dispatched.
func (p *Proc) block(next procState, voluntary bool) {
	if p.step != nil {
		panic("sim: blocking call from run-to-completion handler " + p.Name())
	}
	if p.k.cur != p {
		panic("sim: blocking call from process that is not running: " + p.Name())
	}
	p.state = next
	if voluntary {
		p.volSwitch++
	}
	p.k.next()
	msg := <-p.resume
	p.token++ // invalidate any other outstanding wake-ups
	if msg.kill {
		panic(errKilled)
	}
	p.state = stateRunning
}

// Sleep blocks the process for d of virtual time. This models a genuine
// blocking wait (timer, IO completion poll) and counts as a voluntary
// context switch.
func (p *Proc) Sleep(d Duration) {
	p.k.schedule(p.k.now.Add(d), p)
	p.block(stateScheduled, true)
}

// Advance moves the process d of virtual time forward, modelling on-CPU
// computation. Other processes may run in the meantime (the simulated CPU
// is not a contended resource unless wrapped in a Semaphore), but the wait
// is not counted as a context switch.
func (p *Proc) Advance(d Duration) {
	if d <= 0 {
		return
	}
	p.k.schedule(p.k.now.Add(d), p)
	p.block(stateScheduled, false)
}

// Suspend blocks the process indefinitely until another process calls
// Resume on it.
func (p *Proc) Suspend() {
	p.block(stateSuspended, true)
}

// Resume schedules a suspended process to run at the current virtual time.
// It must be called from outside target's goroutine (from another process or
// before Run). Resuming a process that is not suspended panics: it indicates
// a lost-wakeup bug in the caller.
func (k *Kernel) Resume(target *Proc) {
	if target.state != stateSuspended {
		panic("sim: Resume of non-suspended process " + target.Name() + " in state " + target.state.String())
	}
	target.state = stateScheduled
	k.schedule(k.now, target)
}

// ResumeAt schedules a suspended process to run at time at.
func (k *Kernel) ResumeAt(target *Proc, at Time) {
	if target.state != stateSuspended {
		panic("sim: ResumeAt of non-suspended process " + target.Name() + " in state " + target.state.String())
	}
	target.state = stateScheduled
	k.schedule(at, target)
}

// Join blocks until target terminates. Joining a dead process returns
// immediately.
func (p *Proc) Join(target *Proc) {
	if target.state == stateDead {
		return
	}
	target.doneWaiters = append(target.doneWaiters, p)
	p.Suspend()
}
