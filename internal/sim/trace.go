package sim

// Trace is a dispatch-trace recorder: every event the kernel dispatches is
// folded into a running FNV-1a hash of its (time, seq, proc-id, proc-name)
// tuple, with the full record sequence optionally retained for diffing. Two
// runs dispatch byte-identical event orders iff their traces have equal
// (Len, Hash); this is the harness behind the golden determinism tests that
// pin the optimized kernel to the container/heap reference kernel.
type Trace struct {
	n    int
	hash uint64
	keep bool
	recs []TraceRec
}

// TraceRec is one dispatched event.
type TraceRec struct {
	At   Time
	Seq  uint64
	Proc int
	Name string
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// StartTrace begins recording the kernel's dispatch sequence. With keep set,
// every record is retained (for diffing divergent runs); otherwise only the
// count and rolling hash are kept, so tracing adds no allocation per event.
// The returned Trace stays valid after StopTrace.
func (k *Kernel) StartTrace(keep bool) *Trace {
	t := &Trace{hash: fnvOffset64, keep: keep}
	k.tr = t
	return t
}

// StopTrace detaches the current trace from the kernel.
func (k *Kernel) StopTrace() { k.tr = nil }

func (t *Trace) record(e event) {
	t.n++
	h := t.hash
	h = fnvUint64(h, uint64(e.at))
	h = fnvUint64(h, e.seq)
	h = fnvUint64(h, uint64(e.p.id))
	// Fold the proc name without forcing a lazy prefix+idx name to render:
	// hash the prefix bytes then the decimal digits, which is byte-identical
	// to hashing the rendered string.
	for i := 0; i < len(e.p.name); i++ {
		h = (h ^ uint64(e.p.name[i])) * fnvPrime64
	}
	if e.p.nameIdx >= 0 {
		var digits [20]byte
		n := len(digits)
		v := e.p.nameIdx
		if v == 0 {
			n--
			digits[n] = '0'
		}
		for v > 0 {
			n--
			digits[n] = byte('0' + v%10)
			v /= 10
		}
		for _, b := range digits[n:] {
			h = (h ^ uint64(b)) * fnvPrime64
		}
	}
	t.hash = h
	if t.keep {
		t.recs = append(t.recs, TraceRec{At: e.at, Seq: e.seq, Proc: e.p.id, Name: e.p.Name()})
	}
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// Len returns the number of dispatches recorded.
func (t *Trace) Len() int { return t.n }

// Hash returns the rolling FNV-1a hash over all records.
func (t *Trace) Hash() uint64 { return t.hash }

// Records returns the retained records (empty unless keep was set).
func (t *Trace) Records() []TraceRec { return t.recs }

// FirstDivergence returns the index of the first record where the two kept
// traces differ, or -1 if one is a prefix of the other (or they are equal).
// Both traces must have been started with keep.
func (t *Trace) FirstDivergence(o *Trace) int {
	n := len(t.recs)
	if len(o.recs) < n {
		n = len(o.recs)
	}
	for i := 0; i < n; i++ {
		if t.recs[i] != o.recs[i] {
			return i
		}
	}
	return -1
}
