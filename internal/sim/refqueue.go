package sim

import "container/heap"

// refQueue is the seed's container/heap event queue, kept verbatim as the
// ordering oracle for the optimized eventQueue. A kernel built with
// NewReferenceKernel runs every event through this queue; the golden
// dispatch-trace tests prove the two queues realize byte-identical
// (time, seq, proc) dispatch sequences on the paper's workloads.
//
// It is deliberately slow — Push(x any) boxes and heap-allocates every
// event — and exists only for differential testing. Do not use it outside
// tests.
type refQueue struct{ h refHeap }

type refHeap []event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return evLess(h[i], h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

func (q *refQueue) len() int     { return len(q.h) }
func (q *refQueue) push(e event) { heap.Push(&q.h, e) }
func (q *refQueue) pop() event   { return heap.Pop(&q.h).(event) }
func (q *refQueue) peek() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return q.h[0], true
}
