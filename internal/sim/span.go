package sim

import (
	"fmt"
	"io"
	"strings"
)

// spanRec is one trace-span event on the virtual clock.
type spanRec struct {
	at   Time
	ph   byte // 'b' begin, 'e' end, 'i' instant
	cat  string
	name string
	id   uint64
}

// SpanTrace records begin/end/instant spans keyed on virtual time, cheap
// enough to leave compiled into every layer: a disabled kernel pays one nil
// check per potential span. Dump with WriteChromeTrace to get a file
// chrome://tracing (or Perfetto) loads directly, with device commands,
// journal commits, sync calls and group commits as async span tracks.
type SpanTrace struct {
	recs       []spanRec
	dispatches bool
}

// StartSpans begins span recording on the kernel and returns the trace,
// which stays valid after StopSpans. With dispatches set, every kernel
// dispatch additionally records an instant event (one allocation per event —
// only for close-up looks at scheduling).
func (k *Kernel) StartSpans(dispatches bool) *SpanTrace {
	st := &SpanTrace{dispatches: dispatches}
	k.sp = st
	return st
}

// StopSpans detaches the current span trace from the kernel.
func (k *Kernel) StopSpans() { k.sp = nil }

// Spans returns the attached span trace, or nil when disabled.
func (k *Kernel) Spans() *SpanTrace { return k.sp }

// SpanBegin opens an async span at the current virtual time. cat groups the
// track ("device", "jbd", "fs", "kvwal"), id correlates begin with end
// (command seq, transaction id, group id). No-op without an attached trace.
func (k *Kernel) SpanBegin(cat, name string, id uint64) {
	if k.sp == nil {
		return
	}
	k.sp.recs = append(k.sp.recs, spanRec{at: k.now, ph: 'b', cat: cat, name: name, id: id})
}

// SpanEnd closes the async span opened with the same (cat, name, id).
func (k *Kernel) SpanEnd(cat, name string, id uint64) {
	if k.sp == nil {
		return
	}
	k.sp.recs = append(k.sp.recs, spanRec{at: k.now, ph: 'e', cat: cat, name: name, id: id})
}

// SpanInstant marks a point event at the current virtual time.
func (k *Kernel) SpanInstant(cat, name string) {
	if k.sp == nil {
		return
	}
	k.sp.recs = append(k.sp.recs, spanRec{at: k.now, ph: 'i', cat: cat, name: name})
}

// NewSpanTrace builds a detached span trace for hand-assembled dumps —
// e.g. rendering sampled request-trace exemplars as Chrome spans without a
// kernel to attach to.
func NewSpanTrace() *SpanTrace { return &SpanTrace{} }

// Append records one event at an explicit virtual time: ph is 'b' (begin),
// 'e' (end) or 'i' (instant); id correlates begin with end. It serves
// detached traces whose events are reconstructed after the fact rather
// than recorded live.
func (st *SpanTrace) Append(at Time, ph byte, cat, name string, id uint64) {
	st.recs = append(st.recs, spanRec{at: at, ph: ph, cat: cat, name: name, id: id})
}

// Len returns the number of recorded span events.
func (st *SpanTrace) Len() int {
	if st == nil {
		return 0
	}
	return len(st.recs)
}

// LabeledSpans names one kernel's span trace for a merged dump; each label
// becomes a Chrome trace process row.
type LabeledSpans struct {
	Label string
	Spans *SpanTrace
}

// WriteChromeTrace dumps the traces in Chrome trace_event JSON (JSON Object
// Format, "traceEvents" array of async "b"/"e" and instant "i" events).
// Trace ts is in microseconds, so virtual nanoseconds are divided by 1e3,
// keeping sub-µs precision as fractions. Spans left open at a crash stay
// open in the viewer, which is the honest rendering.
func WriteChromeTrace(w io.Writer, traces []LabeledSpans) error {
	bw := &errWriter{w: w}
	bw.printf("{\"traceEvents\":[")
	first := true
	for pid, lt := range traces {
		if lt.Spans == nil {
			continue
		}
		comma := func() {
			if !first {
				bw.printf(",")
			}
			first = false
		}
		comma()
		bw.printf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid+1, quote(lt.Label))
		for _, r := range lt.Spans.recs {
			comma()
			ts := float64(r.at) / 1e3
			switch r.ph {
			case 'i':
				bw.printf(`{"name":%s,"cat":%s,"ph":"i","s":"p","ts":%.3f,"pid":%d,"tid":1}`,
					quote(r.name), quote(r.cat), ts, pid+1)
			default:
				bw.printf(`{"name":%s,"cat":%s,"ph":"%c","id":"0x%x","ts":%.3f,"pid":%d,"tid":1}`,
					quote(r.name), quote(r.cat), r.ph, r.id, ts, pid+1)
			}
		}
	}
	bw.printf("]}\n")
	return bw.err
}

// quote JSON-escapes a label; span names are plain ASCII identifiers so the
// minimal escape set suffices.
func quote(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\t") {
		return `"` + s + `"`
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\t", `\t`)
	return `"` + r.Replace(s) + `"`
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
