package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled wake-up for a process. token guards against stale
// events: a process invalidates all of its outstanding events every time it
// wakes, so a wake-up scheduled for a state the process has since left is
// silently discarded.
type event struct {
	at    Time
	seq   uint64
	p     *Proc
	token uint64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Kernel is the discrete-event scheduler. All simulation state hangs off a
// single Kernel; exactly one process runs at any moment, so process code can
// freely mutate shared simulation state without locks.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{}
	procs   []*Proc
	live    int
	cur     *Proc
	stopped bool
	closed  bool
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Cur returns the currently running process, or nil when called from outside
// the simulation (before Run or between Run calls).
func (k *Kernel) Cur() *Proc { return k.cur }

// Live returns the number of processes that have not yet terminated.
func (k *Kernel) Live() int { return k.live }

// Procs returns all processes ever spawned, including dead ones.
func (k *Kernel) Procs() []*Proc { return k.procs }

func (k *Kernel) schedule(at Time, p *Proc) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	k.events.pushEvent(event{at: at, seq: k.seq, p: p, token: p.token})
}

// Spawn creates a new process named name running fn and schedules it to
// start at the current virtual time. It may be called before Run or from
// inside a running process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	if k.closed {
		panic("sim: Spawn on closed kernel")
	}
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		fn:     fn,
		state:  statePending,
		resume: make(chan resumeMsg),
	}
	k.procs = append(k.procs, p)
	k.live++
	go p.run()
	k.schedule(k.now, p)
	return p
}

// Stop requests that the event loop return after the current process yields.
// It may only be called from inside a running process.
func (k *Kernel) Stop() { k.stopped = true }

// Run processes events until no runnable events remain or Stop is called.
// It returns the final virtual time. Processes that are suspended forever
// (daemons waiting on queues) do not keep Run alive; use Close to reap them.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil processes events with timestamps <= t, then sets the clock to t
// if any events remain beyond it. It returns the final virtual time.
func (k *Kernel) RunUntil(t Time) Time {
	if k.closed {
		panic("sim: RunUntil on closed kernel")
	}
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		e := k.events.peek()
		if e.at > t {
			k.now = t
			return k.now
		}
		k.events.popEvent()
		if e.p.state == stateDead || e.token != e.p.token {
			continue // stale wake-up
		}
		k.now = e.at
		k.dispatch(e.p)
	}
	if len(k.events) == 0 && t != MaxTime && t > k.now {
		k.now = t
	}
	return k.now
}

// Step processes exactly one event, returning false when none remain.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		e := k.events.popEvent()
		if e.p.state == stateDead || e.token != e.p.token {
			continue
		}
		k.now = e.at
		k.dispatch(e.p)
		return true
	}
	return false
}

func (k *Kernel) dispatch(p *Proc) {
	k.cur = p
	p.state = stateRunning
	p.wakeups++
	p.resume <- resumeMsg{}
	<-k.yield
	k.cur = nil
}

// Close terminates every live process, unwinding its goroutine. The kernel
// must not be used afterwards. It is safe to call Close multiple times.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	for _, p := range k.procs {
		if p.state == stateDead {
			continue
		}
		p.resume <- resumeMsg{kill: true}
		<-k.yield
	}
	if k.live != 0 {
		panic(fmt.Sprintf("sim: %d processes survived Close", k.live))
	}
}
