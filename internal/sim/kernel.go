package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// event is a scheduled wake-up for a process. token guards against stale
// events: a process invalidates all of its outstanding events every time it
// wakes, so a wake-up scheduled for a state the process has since left is
// silently discarded.
type event struct {
	at    Time
	seq   uint64
	p     *Proc
	token uint64
}

// Kernel is the discrete-event scheduler. All simulation state hangs off a
// single Kernel; exactly one process runs at any moment, so process code can
// freely mutate shared simulation state without locks.
//
// Scheduling uses a single-handoff baton: the dispatch loop (next) runs on
// whichever goroutine is giving up control, which hands the baton directly
// to the next runnable process's goroutine and then parks. One goroutine
// switch per simulated event, instead of the seed's two (yield to the
// kernel goroutine, then resume from it). The baton returns to the Run
// caller only when no runnable event remains, the time limit is reached, or
// Stop was called.
type Kernel struct {
	now      Time
	seq      uint64
	q        eventQueue
	ref      *refQueue // non-nil: use the container/heap oracle (testing)
	procs    []*Proc
	live     int
	cur      *Proc
	stopped  bool
	closed   bool
	closing  bool
	callback bool // components should use run-to-completion handlers

	until      Time          // RunUntil limit, read by next()
	single     bool          // Step mode: return the baton after one dispatch
	singleDone bool          // Step mode: an event was dispatched
	done       chan struct{} // baton handoff back to the Run/Step/Close caller

	pool       []*worker // parked worker goroutines ready for reuse
	goroutines atomic.Int64
	wg         sync.WaitGroup

	tr *Trace
	sp *SpanTrace
	ks *KernelStats
}

// NewKernel returns an empty kernel at virtual time zero. Components built
// on it use run-to-completion handler procs for their reactive leaves (see
// CallbackMode); this is the fast configuration.
func NewKernel() *Kernel {
	return &Kernel{done: make(chan struct{}, 1), callback: true}
}

// NewReferenceKernel returns a kernel whose event queue is the seed's
// container/heap implementation and whose components use blocking goroutine
// procs everywhere (CallbackMode off). It exists as the dispatch-order
// oracle for the golden trace tests: the optimized kernel running handler
// state machines must dispatch the byte-identical event sequence this
// kernel produces from the original blocking code. Use NewKernel everywhere
// else.
func NewReferenceKernel() *Kernel {
	k := NewKernel()
	k.ref = &refQueue{}
	k.callback = false
	return k
}

// CallbackMode reports whether components should register their reactive
// leaf loops as run-to-completion handlers (SpawnHandler) instead of
// blocking goroutine procs (Spawn). Both implementations must produce
// byte-identical dispatch traces; the handler form just skips the goroutine
// switch per event.
func (k *Kernel) CallbackMode() bool { return k.callback }

// SetCallbackMode overrides the component process model. It only affects
// components constructed afterwards; tests use it to cross kernel and
// process-model combinations.
func (k *Kernel) SetCallbackMode(on bool) { k.callback = on }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Cur returns the currently running process, or nil when called from outside
// the simulation (before Run or between Run calls).
func (k *Kernel) Cur() *Proc { return k.cur }

// Live returns the number of processes that have not yet terminated.
func (k *Kernel) Live() int { return k.live }

// Procs returns all processes ever spawned, including dead ones.
func (k *Kernel) Procs() []*Proc { return k.procs }

// Goroutines returns the number of worker goroutines currently alive,
// including pooled idle ones. After Close it is zero; the leak regression
// test pins that.
func (k *Kernel) Goroutines() int { return int(k.goroutines.Load()) }

func (k *Kernel) schedule(at Time, p *Proc) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	e := event{at: at, seq: k.seq, p: p, token: p.token}
	if k.ref != nil {
		k.ref.push(e)
		return
	}
	k.q.push(e, k.now)
}

func (k *Kernel) qlen() int {
	if k.ref != nil {
		return k.ref.len()
	}
	return k.q.len()
}

func (k *Kernel) qpeek() (event, bool) {
	if k.ref != nil {
		return k.ref.peek()
	}
	return k.q.peek()
}

func (k *Kernel) qpop() event {
	if k.ref != nil {
		return k.ref.pop()
	}
	return k.q.pop()
}

// getWorker reuses a pooled worker goroutine or starts a new one. Pooling
// means short-lived spawned procs (group-commit leaders, per-request
// writeback procs) stop paying goroutine and channel setup per spawn.
func (k *Kernel) getWorker() *worker {
	if n := len(k.pool); n > 0 {
		w := k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
		if k.ks != nil {
			k.ks.PoolHits.Add(1)
		}
		return w
	}
	if k.ks != nil {
		k.ks.PoolMisses.Add(1)
	}
	w := &worker{k: k, resume: make(chan resumeMsg, 1)}
	k.goroutines.Add(1)
	k.wg.Add(1)
	go w.loop()
	return w
}

// Spawn creates a new process named name running fn and schedules it to
// start at the current virtual time. It may be called before Run or from
// inside a running process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, -1, fn)
}

// SpawnIdx is Spawn with the name rendered lazily as prefix+idx: the
// formatting cost (one allocation per spawn) is paid only if something —
// tracing with retained records, a diagnostic panic — actually asks for the
// name. Hot spawn sites (per-chip, per-worker, per-client procs) use it so
// an untraced run never formats a name.
func (k *Kernel) SpawnIdx(prefix string, idx int, fn func(p *Proc)) *Proc {
	return k.spawn(prefix, idx, fn)
}

func (k *Kernel) spawn(prefix string, idx int, fn func(p *Proc)) *Proc {
	if k.closed {
		panic("sim: Spawn on closed kernel")
	}
	w := k.getWorker()
	p := &Proc{
		k:       k,
		id:      len(k.procs),
		name:    prefix,
		nameIdx: idx,
		fn:      fn,
		state:   statePending,
		w:       w,
		resume:  w.resume,
	}
	w.p = p
	k.procs = append(k.procs, p)
	k.live++
	if k.ks != nil {
		k.ks.Spawns.Add(1)
	}
	k.schedule(k.now, p)
	return p
}

// SpawnHandler registers a run-to-completion event handler: a process whose
// step function executes inline on the dispatching goroutine every time one
// of its events fires — zero channel handoffs, zero goroutine switches.
//
// A handler must never call the blocking APIs (Sleep, Advance, Suspend,
// Cond.Wait, Queue.Get, Semaphore.Acquire, Join); instead it arms exactly
// one continuation before returning: WakeIn/WakeAt (timer), Park (await an
// external Resume), Cond.Park / Queue.GetOrPark / Semaphore.AcquireOrPark
// (waitlists, one Mesa iteration each), or Complete (terminate). Returning
// without arming is equivalent to Park. Like Spawn, the handler's first
// activation is scheduled at the current virtual time.
func (k *Kernel) SpawnHandler(name string, step func(h *Proc)) *Proc {
	return k.spawnHandler(name, -1, step)
}

// SpawnHandlerIdx is SpawnHandler with a lazily rendered prefix+idx name.
func (k *Kernel) SpawnHandlerIdx(prefix string, idx int, step func(h *Proc)) *Proc {
	return k.spawnHandler(prefix, idx, step)
}

func (k *Kernel) spawnHandler(prefix string, idx int, step func(h *Proc)) *Proc {
	if k.closed {
		panic("sim: SpawnHandler on closed kernel")
	}
	p := &Proc{
		k:       k,
		id:      len(k.procs),
		name:    prefix,
		nameIdx: idx,
		step:    step,
		state:   statePending,
	}
	k.procs = append(k.procs, p)
	k.live++
	if k.ks != nil {
		k.ks.HandlerSpawns.Add(1)
	}
	k.schedule(k.now, p)
	return p
}

// Stop requests that the event loop return after the current process yields.
// It may only be called from inside a running process.
func (k *Kernel) Stop() { k.stopped = true }

// Run processes events until no runnable events remain or Stop is called.
// It returns the final virtual time. Processes that are suspended forever
// (daemons waiting on queues) do not keep Run alive; use Close to reap them.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil processes events with timestamps <= t, then sets the clock to t
// if any events remain beyond it. It returns the final virtual time.
func (k *Kernel) RunUntil(t Time) Time {
	if k.closed {
		panic("sim: RunUntil on closed kernel")
	}
	k.stopped = false
	k.until = t
	k.next()
	<-k.done
	if k.qlen() == 0 && t != MaxTime && t > k.now {
		k.now = t
	}
	return k.now
}

// Step processes exactly one event, returning false when none remain.
func (k *Kernel) Step() bool {
	k.until = MaxTime
	k.single = true
	k.singleDone = false
	k.next()
	<-k.done
	k.single = false
	return k.singleDone
}

// next pops and dispatches the next runnable event. It is the heart of the
// single-handoff scheduler: it executes on whichever goroutine is yielding
// (a blocking or finishing process, or the Run caller entering the
// simulation), wakes the next process's goroutine directly, and returns so
// the caller can park on its own channel. When nothing is dispatchable the
// baton goes home to the Run caller via k.done instead.
func (k *Kernel) next() {
	for {
		if k.single {
			if k.singleDone {
				k.home()
				return
			}
		} else if k.stopped {
			k.home()
			return
		}
		e, ok := k.qpeek()
		if !ok {
			k.home()
			return
		}
		if e.at > k.until {
			k.now = k.until
			k.home()
			return
		}
		k.qpop()
		if e.p.state == stateDead || e.token != e.p.token {
			if k.ks != nil {
				k.ks.StaleEvents.Add(1)
			}
			continue // stale wake-up
		}
		k.now = e.at
		if k.tr != nil {
			k.tr.record(e)
		}
		if k.ks != nil {
			if e.p.step != nil {
				k.ks.HandlerDispatches.Add(1)
			} else {
				k.ks.GoroutineDispatches.Add(1)
			}
		}
		if k.sp != nil && k.sp.dispatches {
			k.sp.recs = append(k.sp.recs,
				spanRec{at: e.at, ph: 'i', cat: "sim", name: e.p.Name()})
		}
		p := e.p
		k.cur = p
		wasPending := p.state == statePending
		p.state = stateRunning
		p.wakeups++
		k.singleDone = true
		if p.step != nil {
			// Run-to-completion handler: execute inline and keep dispatching.
			// Mirrors the goroutine proc's wake path: the token bump matches
			// block()'s invalidate-on-wake (first dispatches of goroutine
			// procs skip it too, since they enter fn directly).
			if !wasPending {
				p.token++
			}
			p.armed = false
			p.step(p)
			if p.state == stateRunning {
				p.state = stateSuspended // bare return = Park
			}
			continue
		}
		p.resume <- resumeMsg{} // buffered: hand off without blocking
		return
	}
}

// home returns the baton to the goroutine that entered the simulation.
func (k *Kernel) home() {
	k.cur = nil
	k.done <- struct{}{}
}

// Close terminates every live process and every pooled worker goroutine,
// then waits for all of them to exit. The kernel must not be used
// afterwards. It is safe to call Close multiple times.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	k.closing = true
	for _, p := range k.procs {
		if p.state == stateDead {
			continue
		}
		if p.step != nil {
			// Handlers have no goroutine to unwind: retire in place.
			p.state = stateDead
			p.token++
			p.doneWaiters = nil
			k.live--
			continue
		}
		p.resume <- resumeMsg{kill: true}
		<-k.done // finish acks through the baton channel while closing
	}
	for _, w := range k.pool {
		w.resume <- resumeMsg{kill: true}
	}
	k.pool = nil
	k.wg.Wait()
	if k.live != 0 {
		panic(fmt.Sprintf("sim: %d processes survived Close", k.live))
	}
}
