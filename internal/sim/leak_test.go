package sim

import (
	"fmt"
	"testing"
)

// TestCloseReapsEveryGoroutine is the goroutine-leak regression test: it
// parks processes in every reachable state — pending (spawned, never
// dispatched), scheduled (sleeping), suspended (queue waiters, cond
// waiters, semaphore waiters, joiners), dead (finished, worker pooled) —
// then closes the kernel and asserts every worker goroutine exited.
// Kernel.Close blocks on the internal WaitGroup, so a leaked worker would
// also hang the test.
func TestCloseReapsEveryGoroutine(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	cond := NewCond(k)
	sem := NewSemaphore(k, 1)

	// Dead + pooled: spawn-churn so finished procs park workers in the pool.
	for i := 0; i < 8; i++ {
		k.Spawn(fmt.Sprintf("shortlived%d", i), func(p *Proc) { p.Advance(Microsecond) })
	}
	// Scheduled: long sleepers.
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("sleeper%d", i), func(p *Proc) { p.Sleep(Second) })
	}
	// Suspended on every primitive.
	k.Spawn("q-waiter", func(p *Proc) { q.Get(p) })
	k.Spawn("cond-waiter", func(p *Proc) { cond.Wait(p) })
	k.Spawn("sem-holder", func(p *Proc) { sem.Acquire(p, 1); p.Sleep(Second) })
	k.Spawn("sem-waiter", func(p *Proc) { sem.Acquire(p, 1) })
	joinee := k.Spawn("joinee", func(p *Proc) { p.Suspend() })
	k.Spawn("joiner", func(p *Proc) { p.Join(joinee) })

	k.RunUntil(Time(10 * Millisecond))
	if k.Goroutines() == 0 {
		t.Fatal("expected live worker goroutines before Close")
	}

	// Pending: spawned after the run, never dispatched.
	k.Spawn("pending", func(p *Proc) { panic("pending proc must never run") })

	k.Close()
	if got := k.Goroutines(); got != 0 {
		t.Errorf("worker goroutines after Close = %d, want 0", got)
	}
	if got := k.Live(); got != 0 {
		t.Errorf("live procs after Close = %d, want 0", got)
	}
}

// TestWorkerPoolReuse verifies spawn churn reuses parked worker goroutines
// instead of growing the pool without bound.
func TestWorkerPoolReuse(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.Spawn("driver", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			child := p.Kernel().Spawn("child", func(c *Proc) { c.Advance(Microsecond) })
			p.Join(child)
		}
	})
	k.Run()
	// driver + one reused child worker (plus maybe a stray from startup).
	if got := k.Goroutines(); got > 4 {
		t.Errorf("worker goroutines after 1000 sequential spawns = %d, want <= 4 (pool reuse)", got)
	}
}
