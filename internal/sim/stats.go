package sim

import "sync/atomic"

// KernelStats counts the kernel's own work: dispatches split by proc kind
// (run-to-completion handler vs goroutine proc), stale-event discards, spawn
// counts, and worker-pool hit rates. The fields are atomic so a live-stats
// reader on another OS goroutine can snapshot them while the simulation
// runs, and the struct lives here rather than in internal/metrics because
// metrics imports sim — the registry adopts a *KernelStats instead.
//
// A kernel with no stats attached (the default) pays one nil check per
// dispatch; the golden-trace oracle pins that attaching stats does not
// perturb dispatch order.
type KernelStats struct {
	HandlerDispatches   atomic.Int64 // events run inline on the dispatcher
	GoroutineDispatches atomic.Int64 // events handed to a proc goroutine
	StaleEvents         atomic.Int64 // wake-ups invalidated before firing
	Spawns              atomic.Int64 // goroutine procs created
	HandlerSpawns       atomic.Int64 // handler procs created
	PoolHits            atomic.Int64 // spawns served from the worker pool
	PoolMisses          atomic.Int64 // spawns that started a new goroutine
}

// AttachStats points the kernel at a stats block; several kernels may share
// one (a parallel sweep aggregating into a single registry). Nil detaches.
func (k *Kernel) AttachStats(s *KernelStats) { k.ks = s }

// Stats returns the attached stats block, or nil.
func (k *Kernel) Stats() *KernelStats { return k.ks }
