package sim

import (
	"strings"
	"testing"
)

// TestCondMixedWakeups pins that a Cond waitlist holding both a blocked
// goroutine proc and a parked handler wakes them in FIFO order, whichever
// kind is in front.
func TestCondMixedWakeups(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	cond := NewCond(k)
	var order []string

	// gor parks first, handler second.
	k.Spawn("gor", func(p *Proc) {
		cond.Wait(p)
		order = append(order, "gor")
	})
	k.SpawnHandler("hand", func(h *Proc) {
		if len(order) == 0 || order[len(order)-1] != "hand" {
			// First activation parks; the wake-up records and completes.
			if h.Wakeups() == 1 {
				cond.Park(h)
				return
			}
		}
		order = append(order, "hand")
		h.Complete()
	})
	k.Spawn("signaller", func(p *Proc) {
		p.Sleep(Millisecond)
		cond.Signal() // wakes gor (FIFO head)
		p.Sleep(Millisecond)
		cond.Signal() // wakes hand
	})
	k.Run()
	if got := strings.Join(order, ","); got != "gor,hand" {
		t.Fatalf("wake order = %q, want gor,hand", got)
	}
	if cond.Waiters() != 0 {
		t.Fatalf("waiters left = %d", cond.Waiters())
	}
}

// TestCondBroadcastMixed pins Broadcast waking both kinds at once.
func TestCondBroadcastMixed(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	cond := NewCond(k)
	woken := 0
	k.SpawnHandler("hand", func(h *Proc) {
		if h.Wakeups() == 1 {
			cond.Park(h)
			return
		}
		woken++
		h.Complete()
	})
	k.Spawn("gor", func(p *Proc) {
		cond.Wait(p)
		woken++
	})
	k.Spawn("caster", func(p *Proc) {
		p.Sleep(Millisecond)
		cond.Broadcast()
	})
	k.Run()
	if woken != 2 {
		t.Fatalf("woken = %d, want 2", woken)
	}
}

// TestSemaphoreMixedWaiters drives a single-slot semaphore contended by a
// handler and a goroutine proc: FIFO release order must hold across kinds,
// and a handler's AcquireOrPark must re-contend exactly like a woken
// Acquire loop.
func TestSemaphoreMixedWaiters(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	sem := NewSemaphore(k, 1)
	var order []string

	k.Spawn("holder", func(p *Proc) {
		sem.Acquire(p, 1)
		p.Sleep(2 * Millisecond)
		sem.Release(1)
	})
	// After holder has the slot, queue a handler then a goroutine waiter.
	k.Spawn("setup", func(p *Proc) {
		p.Sleep(Millisecond)
		k.SpawnHandler("hand", func(h *Proc) {
			if !sem.AcquireOrPark(h, 1) {
				return
			}
			order = append(order, "hand")
			sem.Release(1)
			h.Complete()
		})
		k.Spawn("gor", func(p2 *Proc) {
			p2.Sleep(Microsecond) // arrive after the handler
			sem.Acquire(p2, 1)
			order = append(order, "gor")
			sem.Release(1)
		})
	})
	k.Run()
	if got := strings.Join(order, ","); got != "hand,gor" {
		t.Fatalf("acquisition order = %q, want hand,gor", got)
	}
	if sem.Avail() != 1 {
		t.Fatalf("avail = %d, want 1", sem.Avail())
	}
}

// TestQueueMixedConsumers feeds a queue drained by one handler and one
// goroutine proc; every item must be delivered exactly once and the parked
// consumer of either kind must be woken by Put.
func TestQueueMixedConsumers(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	q := NewQueue[int](k)
	got := make(map[int]int)
	k.SpawnHandler("hand", func(h *Proc) {
		for {
			x, ok, closed := q.GetOrPark(h)
			if closed {
				h.Complete()
				return
			}
			if !ok {
				return // parked
			}
			got[x]++
		}
	})
	k.Spawn("gor", func(p *Proc) {
		for {
			x, ok := q.Get(p)
			if !ok {
				return
			}
			got[x]++
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 100; i++ {
			q.Put(i)
			if i%3 == 0 {
				p.Sleep(Microsecond)
			}
		}
		p.Sleep(Millisecond)
		q.Close()
	})
	k.Run()
	if len(got) != 100 {
		t.Fatalf("delivered %d distinct items, want 100", len(got))
	}
	for i, n := range got {
		if n != 1 {
			t.Fatalf("item %d delivered %d times", i, n)
		}
	}
}

// TestHandlerTimerAndJoin pins WakeIn/WakeAt pacing, Complete, and Join on
// a handler from a goroutine proc.
func TestHandlerTimerAndJoin(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	ticks := 0
	hand := k.SpawnHandler("ticker", func(h *Proc) {
		ticks++
		if ticks == 5 {
			h.Complete()
			return
		}
		h.WakeIn(Millisecond)
	})
	joined := false
	k.Spawn("joiner", func(p *Proc) {
		p.Join(hand)
		joined = true
		if p.Now() != Time(4*Millisecond) {
			t.Errorf("joined at %v, want 4ms", p.Now())
		}
	})
	k.Run()
	if ticks != 5 || !joined {
		t.Fatalf("ticks=%d joined=%v", ticks, joined)
	}
	if !hand.Dead() {
		t.Fatal("handler not dead after Complete")
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d, want 0", k.Live())
	}
}

// TestHandlerZeroGoroutines pins the point of the exercise: handler-only
// kernels run without any worker goroutines.
func TestHandlerZeroGoroutines(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	n := 0
	k.SpawnHandler("h", func(h *Proc) {
		n++
		if n < 100 {
			h.WakeIn(Microsecond)
			return
		}
		h.Complete()
	})
	k.Run()
	if g := k.Goroutines(); g != 0 {
		t.Fatalf("worker goroutines = %d, want 0 for a handler-only kernel", g)
	}
	if n != 100 {
		t.Fatalf("activations = %d", n)
	}
}

// TestCloseRetiresParkedHandlers pins Close reaping handlers parked in
// every reachable state alongside goroutine procs.
func TestCloseRetiresParkedHandlers(t *testing.T) {
	k := NewKernel()
	cond := NewCond(k)
	q := NewQueue[int](k)
	sem := NewSemaphore(k, 1)
	k.SpawnHandler("parked", func(h *Proc) { cond.Park(h) })
	k.SpawnHandler("queued", func(h *Proc) { q.GetOrPark(h) })
	k.SpawnHandler("sem", func(h *Proc) {
		if sem.AcquireOrPark(h, 1) {
			h.WakeIn(Second)
		}
	})
	k.SpawnHandler("semwait", func(h *Proc) { sem.AcquireOrPark(h, 1) })
	k.SpawnHandler("sleeper", func(h *Proc) { h.WakeIn(Second) })
	k.Spawn("gor", func(p *Proc) { cond.Wait(p) })
	k.RunUntil(Time(10 * Millisecond))
	// A handler spawned but never dispatched (pending).
	k.SpawnHandler("pending", func(h *Proc) { panic("pending handler must never run") })
	k.Close()
	if got := k.Live(); got != 0 {
		t.Errorf("live procs after Close = %d, want 0", got)
	}
	if got := k.Goroutines(); got != 0 {
		t.Errorf("worker goroutines after Close = %d, want 0", got)
	}
}

// TestHandlerBlockingCallPanics pins the guard against a handler using the
// blocking API.
func TestHandlerBlockingCallPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic from Sleep inside a handler")
		}
	}()
	k.SpawnHandler("bad", func(h *Proc) { h.Sleep(Millisecond) })
	k.Run()
}

// TestHandlerDoubleArmPanics pins the one-continuation-per-activation rule.
func TestHandlerDoubleArmPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic from arming two continuations")
		}
	}()
	k.SpawnHandler("bad", func(h *Proc) {
		h.WakeIn(Millisecond)
		h.WakeIn(Millisecond)
	})
	k.Run()
}

// TestHandlerTraceParity runs the same mixed producer/consumer network as
// goroutine procs on the reference kernel and as handlers on the optimized
// kernel and requires byte-identical dispatch traces — the unit-scale
// version of the golden workload tests.
func TestHandlerTraceParity(t *testing.T) {
	run := func(k *Kernel) *Trace {
		defer k.Close()
		tr := k.StartTrace(false)
		q := NewQueue[int](k)
		sem := NewSemaphore(k, 2)
		cond := NewCond(k)
		done := 0
		// Consumer: take an item, hold a slot for 3µs, signal.
		if k.CallbackMode() {
			type sm struct{ phase, item int }
			for c := 0; c < 3; c++ {
				s := &sm{}
				k.SpawnHandlerIdx("consumer", c, func(h *Proc) {
					for {
						switch s.phase {
						case 0:
							x, ok, closed := q.GetOrPark(h)
							if closed {
								h.Complete()
								return
							}
							if !ok {
								return
							}
							s.item = x
							s.phase = 1
						case 1:
							if !sem.AcquireOrPark(h, 1) {
								return
							}
							s.phase = 2
							h.WakeIn(3 * Microsecond)
							return
						case 2:
							sem.Release(1)
							done += s.item
							cond.Signal()
							s.phase = 0
						}
					}
				})
			}
		} else {
			for c := 0; c < 3; c++ {
				k.SpawnIdx("consumer", c, func(p *Proc) {
					for {
						x, ok := q.Get(p)
						if !ok {
							return
						}
						sem.Acquire(p, 1)
						p.Advance(3 * Microsecond)
						sem.Release(1)
						done += x
						cond.Signal()
					}
				})
			}
		}
		k.Spawn("producer", func(p *Proc) {
			for i := 1; i <= 50; i++ {
				q.Put(i)
				if i%5 == 0 {
					p.Sleep(Microsecond)
				}
			}
			q.Close()
		})
		k.Run()
		if done != 50*51/2 {
			t.Fatalf("done = %d, want %d", done, 50*51/2)
		}
		return tr
	}
	opt := run(NewKernel())
	ref := run(NewReferenceKernel())
	if opt.Len() != ref.Len() || opt.Hash() != ref.Hash() {
		t.Fatalf("handler net diverges from goroutine net: (n=%d h=%x) vs (n=%d h=%x)",
			opt.Len(), opt.Hash(), ref.Len(), ref.Hash())
	}
}
