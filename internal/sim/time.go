// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel. Simulated threads (processes) are goroutines that are
// scheduled strictly one at a time on a virtual clock, so simulation state
// needs no locking and every run with the same seed is bit-for-bit
// reproducible.
//
// The kernel is the substrate for the whole barrier-enabled IO stack
// reproduction: device controllers, NAND channels, block-layer daemons,
// journaling threads and application threads are all sim processes.
//
// Discipline: a process must only block through the primitives of this
// package (Sleep, Advance, Suspend, Queue.Get, Cond.Wait, Semaphore.Acquire,
// Join). Blocking on ordinary Go channels or mutexes from inside a process
// deadlocks the kernel.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration but is a distinct type so virtual and wall-clock time cannot
// be mixed by accident.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(1<<63 - 1)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis returns the duration as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

func (t Time) String() string { return Duration(t).String() }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Millis())
	default:
		return fmt.Sprintf("%.6fs", d.Seconds())
	}
}

// Scale multiplies d by factor f, rounding to the nearest nanosecond.
func (d Duration) Scale(f float64) Duration {
	return Duration(float64(d)*f + 0.5)
}
