package sim

import (
	"math/rand"
	"testing"
)

// qdriver drives the optimized eventQueue and the container/heap reference
// queue with an identical operation stream and asserts identical pop order.
type qdriver struct {
	t   *testing.T
	q   eventQueue
	ref refQueue
	now Time
	seq uint64
}

func (d *qdriver) push(at Time) {
	if at < d.now {
		at = d.now // kernel's schedule clamp
	}
	d.seq++
	e := event{at: at, seq: d.seq}
	d.q.push(e, d.now)
	d.ref.push(e)
}

func (d *qdriver) pop() {
	if d.q.len() != d.ref.len() {
		d.t.Fatalf("len mismatch: %d vs %d", d.q.len(), d.ref.len())
	}
	if d.ref.len() == 0 {
		return
	}
	want := d.ref.pop()
	got := d.q.pop()
	if got.at != want.at || got.seq != want.seq {
		d.t.Fatalf("pop mismatch: got (at=%d seq=%d), want (at=%d seq=%d)",
			got.at, got.seq, want.at, want.seq)
	}
	d.now = got.at // the kernel advances the clock to the dispatched event
}

// TestEventQueueMatchesReference brute-forces the wheel against the
// container/heap oracle across every horizon class: same-instant bursts,
// level-0/1/2 wheel residents, granule-boundary deltas (including the
// 64-granule wrap that must not collide with the cursor slot), and
// beyond-horizon overflow pushes.
func TestEventQueueMatchesReference(t *testing.T) {
	deltas := []Duration{
		0, 1, granuleSize - 1, granuleSize, granuleSize + 1,
		63 * granuleSize, 64 * granuleSize, 64*granuleSize - 1, 65 * granuleSize,
		1000 * granuleSize, 4095 * granuleSize, 4096 * granuleSize,
		100_000 * granuleSize, 262_144 * granuleSize, 262_145 * granuleSize,
		Duration(2 << 30), Duration(3 << 32),
	}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := &qdriver{t: t}
		for op := 0; op < 20000; op++ {
			if rng.Intn(100) < 55 || d.ref.len() == 0 {
				delta := deltas[rng.Intn(len(deltas))]
				if rng.Intn(4) == 0 {
					delta = Duration(rng.Int63n(int64(70 * granuleSize)))
				}
				d.push(d.now.Add(delta))
			} else {
				d.pop()
			}
		}
		for d.ref.len() > 0 {
			d.pop()
		}
	}
}

const granuleSize = Duration(1) << granuleBits

// TestEventQueueSameTimeFIFO pins the seq tie-break across structures: a
// burst at one instant must drain in schedule order even when half the
// burst was staged through the wheel.
func TestEventQueueSameTimeFIFO(t *testing.T) {
	d := &qdriver{t: t}
	at := Time(50 * granuleSize) // lands in the wheel relative to now=0
	for i := 0; i < 100; i++ {
		d.push(at)
	}
	d.pop() // advances now into the burst granule
	for i := 0; i < 60; i++ {
		d.push(at) // now same-granule: lands in the near heap
	}
	for d.ref.len() > 0 {
		d.pop()
	}
}

// TestEventQueueZeroAllocSteadyState verifies the headline property: once
// the backing arrays have grown, a sleep-wake workload schedules with zero
// allocations per event.
func TestEventQueueZeroAllocSteadyState(t *testing.T) {
	var q eventQueue
	now := Time(0)
	seq := uint64(0)
	mixed := []Duration{Microsecond, 50 * Microsecond, Millisecond, 20 * Millisecond}
	batch := func() {
		for i := 0; i < 64; i++ {
			seq++
			q.push(event{at: now.Add(mixed[i%len(mixed)]), seq: seq}, now)
		}
		for q.len() > 0 {
			now = q.pop().at
		}
	}
	// Warm up: advance far enough that every wheel slot the workload cycles
	// through has grown its backing array to the batch high-water mark.
	for i := 0; i < 400; i++ {
		batch()
	}
	avg := testing.AllocsPerRun(200, batch)
	if avg != 0 {
		t.Fatalf("steady-state allocations per 128-event batch = %v, want 0", avg)
	}
}
