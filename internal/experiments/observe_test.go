package experiments

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestLiveSnapshotDuringSweep is the live-stats data race check: a reader
// snapshotting the process-wide registry continuously while a parallel
// sweep's cells register and bump instruments from worker goroutines. Run
// under -race this pins the whole snapshot path — get-or-create under the
// registry mutex, atomic instrument reads, kernel-stats expansion.
func TestLiveSnapshotDuringSweep(t *testing.T) {
	reg := metrics.NewRegistry()
	metrics.SetLive(reg)
	defer metrics.SetLive(nil)

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	var snaps atomic.Int64
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if len(reg.Snapshot()) > 0 {
				snaps.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	r := Fig9(Quick)
	close(stop)
	<-readerDone

	if len(r.Rows) == 0 {
		t.Fatal("sweep produced no rows")
	}
	if snaps.Load() == 0 {
		t.Error("concurrent reader never saw a non-empty snapshot")
	}
	if reg.Counter("device/writes").Value() == 0 {
		t.Error("sweep ran with live registry but device/writes is zero")
	}
	// Fig9's profiles are single-queue (no blkmq layer), so expect the
	// device and kernel instruments every stack registers.
	for _, want := range []string{"device/writes", "device/flushes", "sim/dispatch.handler"} {
		found := false
		for _, s := range reg.Snapshot() {
			if s.Name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("snapshot missing %s", want)
		}
	}
}

// TestCaptureSpansAcrossSweep pins the experiment-level span capture: with
// capture on, every cell of a parallel sweep contributes a labelled trace
// and the combined dump is valid Chrome trace_event JSON.
func TestCaptureSpansAcrossSweep(t *testing.T) {
	CaptureSpans(true)
	defer CaptureSpans(false)
	r := Fig9(Quick)
	if len(r.Rows) == 0 {
		t.Fatal("sweep produced no rows")
	}
	var buf bytes.Buffer
	if err := WriteSpans(&buf); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	var dump struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("span dump is not valid JSON: %v", err)
	}
	if len(dump.TraceEvents) < len(r.Rows) {
		t.Fatalf("span dump has %d events for %d cells", len(dump.TraceEvents), len(r.Rows))
	}
	// Capture was taken by WriteSpans: a second dump is empty, not doubled.
	var buf2 bytes.Buffer
	if err := WriteSpans(&buf2); err != nil {
		t.Fatalf("second WriteSpans: %v", err)
	}
	var dump2 struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf2.Bytes(), &dump2); err != nil {
		t.Fatalf("second span dump is not valid JSON: %v", err)
	}
	if len(dump2.TraceEvents) != 0 {
		t.Errorf("TakeSpans did not clear: second dump has %d events", len(dump2.TraceEvents))
	}
}
