package experiments

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/kvcluster"
	"repro/internal/kvwal"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FaultsRow is one cell of the fault-injection sweep: one (engine, fault
// mix) pair's goodput under a sick shard, with the recovery machinery's
// counters alongside — retries absorbed at the block layer, hard errors
// that escaped the budget, and the reads the cluster failed over and
// repaired.
type FaultsRow struct {
	Config      string
	Mix         string
	Shards      int
	Replicas    int
	OfferedPerS float64
	GoodputPerS float64
	SLOPct      float64
	ShedPct     float64
	P99         float64 // msec
	Retries     int64
	IOErrors    int64
	Failovers   int64
	ReadRepairs int64
}

// FaultsResult is the fault-injection experiment.
type FaultsResult struct {
	SLOms float64
	Rows  []FaultsRow
}

// faultMix is one device fault personality for the sweep. Shard 0 is the
// sick one (media errors on the primary for ~1/Shards of the key space);
// GC interference, being an array-wide phenomenon, applies to every shard.
type faultMix struct {
	name string
	sick func(seed uint64) *fault.Plan // shard 0
	all  func(seed uint64) *fault.Plan // other shards
}

func faultMixes() []faultMix {
	media := func(seed uint64) *fault.Plan {
		return &fault.Plan{
			Seed:            seed,
			ReadUNCProb:     0.9,
			ReadRetryLadder: []sim.Duration{20 * sim.Microsecond, 60 * sim.Microsecond},
			ReadRetryProb:   0.3,
		}
	}
	gc := func(seed uint64) *fault.Plan {
		return &fault.Plan{
			Seed:            seed,
			GCPeriod:        2 * sim.Millisecond,
			GCDuration:      300 * sim.Microsecond,
			GCReadFactor:    4,
			GCProgramFactor: 2,
		}
	}
	both := func(seed uint64) *fault.Plan {
		p := media(seed)
		g := gc(seed)
		p.GCPeriod, p.GCDuration = g.GCPeriod, g.GCDuration
		p.GCReadFactor, p.GCProgramFactor = g.GCReadFactor, g.GCProgramFactor
		return p
	}
	return []faultMix{
		{name: "none"},
		{name: "media", sick: media},
		{name: "media+gc", sick: both, all: gc},
	}
}

// Faults drives the replicated KV cluster through seeded device fault
// personalities: a clean baseline, uncorrectable media errors on one
// shard's device, and media errors plus GC-interference latency windows
// across the array. Replication (R=2 successor-list placement) plus the
// block layer's bounded retries must hold goodput up while the counters
// show the recovery machinery working — the graceful-degradation claim,
// measured instead of asserted.
func Faults(scale Scale) FaultsResult {
	profiles := []func(device.Config) core.Profile{core.BFSDR}
	if scale == Full {
		profiles = append(profiles, core.EXT4DR)
	}
	mixes := faultMixes()
	dur := scale.dur(8*sim.Millisecond, 30*sim.Millisecond)
	slo := 2 * sim.Millisecond

	out := FaultsResult{SLOms: float64(slo) / float64(sim.Millisecond)}
	out.Rows = make([]FaultsRow, len(profiles)*len(mixes))
	par.For(len(out.Rows), func(i int) {
		prof := profiles[i/len(mixes)]
		mix := mixes[i%len(mixes)]
		reg := metrics.NewRegistry()
		pol := block.DefaultRetryPolicy()
		store := kvwal.DefaultConfig()
		store.MemtableCap = 16
		// Segment reads must face the medium, not the page cache, or the
		// fault personalities are invisible.
		store.EvictSegments = true
		rc := kvcluster.ReplicaConfig{
			Shards:   3,
			Replicas: 2,
			Profile:  prof,
			Device: func(sh int) device.Config {
				d := device.NVMeSSD()
				if sh == 0 && mix.sick != nil {
					d.Fault = mix.sick(uint64(101 + sh))
				} else if mix.all != nil {
					d.Fault = mix.all(uint64(101 + sh))
				}
				return d
			},
			Store:   store,
			Retry:   &pol,
			Metrics: reg,
			NewKernel: func(label string) *sim.Kernel {
				return newKernel(fmt.Sprintf("%s/%s", label, mix.name))
			},
		}
		tr := kvcluster.Traffic{
			Arrivals: workload.ArrivalConfig{
				Kind: workload.ArrivalPoisson, RatePerS: 60_000, Seed: 7,
			},
			Mix:       workload.Mix{ReadPct: 60, DeletePct: 5},
			KeySpace:  4096,
			ZipfTheta: 0.8,
			Tenants:   2,
			Warmup:    4 * sim.Millisecond,
			Duration:  dur,
		}
		res := kvcluster.RunReplicated(rc, tr, 64, slo)
		shedPct := 0.0
		if res.Offered > 0 {
			shedPct = 100 * float64(res.Shed) / float64(res.Offered)
		}
		out.Rows[i] = FaultsRow{
			Config: res.Engine, Mix: mix.name,
			Shards: rc.Shards, Replicas: rc.Replicas,
			OfferedPerS: res.OfferedPerS, GoodputPerS: res.GoodputPerS,
			SLOPct: res.SLOPct, ShedPct: shedPct, P99: res.Latency.P99,
			Retries:     reg.Counter("block/retries").Value(),
			IOErrors:    reg.Counter("block/io.errors").Value(),
			Failovers:   reg.Counter("kvcluster/failovers").Value(),
			ReadRepairs: reg.Counter("kvcluster/read.repairs").Value(),
		}
	})
	return out
}

func (r FaultsResult) String() string {
	t := newTable(fmt.Sprintf("faults: replicated KV cluster under device fault personalities (SLO %.1fms)", r.SLOms))
	t.row("%-10s %-9s %3s %2s %9s %11s %7s %6s %8s %8s %7s %9s %8s",
		"config", "mix", "sh", "r", "offered/s", "goodput/s", "slo%", "shed%", "p99ms",
		"retries", "ioerrs", "failovers", "repairs")
	for _, row := range r.Rows {
		t.row("%-10s %-9s %3d %2d %9.0f %11.0f %6.1f%% %5.1f%% %8.3f %8d %7d %9d %8d",
			row.Config, row.Mix, row.Shards, row.Replicas,
			row.OfferedPerS, row.GoodputPerS, row.SLOPct, row.ShedPct, row.P99,
			row.Retries, row.IOErrors, row.Failovers, row.ReadRepairs)
	}
	return t.String()
}
