package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crashmc"
	"repro/internal/device"
	"repro/internal/par"
	"repro/internal/sim"
)

// CrashMC runs the crash-state model checker (internal/crashmc) over the
// ordering codelet on the five stack configurations the crash story
// contrasts. For every (profile, crash instant) cell it reports the size
// of the admissible crash-state space and the violations found in it:
// zero everywhere ordering or flushing protects the workload, and
// positive ordering counts on EXT4-nobarrier — the paper's motivating
// failure, but with the quantifier flipped from "observed once" to
// "reachable by construction".
//
// The EXT4-nobarrier cell bounds its workload (crashmc.Config.Writes) so
// the unconstrained 2^n state space stays exhaustively enumerable; the
// unbounded cells rely on the barrier/flush constraints to keep the space
// small. Cells that still exceed the cap fall back to deterministic
// sampling and say so in the capped column (and via the notes).

// CrashMCRow is one (profile, crash instant) model-checking cell.
type CrashMCRow struct {
	Config     string
	CrashAtUs  int64
	Volatile   int
	Streams    int
	States     int
	Images     int
	Capped     bool
	Sampled    int
	Durability int
	Ordering   int
	// Consistency counts fs metadata self-consistency breaches (expected
	// zero everywhere: journal atomicity protects even nobarrier mounts).
	Consistency     int
	ViolationStates int
}

// CrashMCResult is the model-checking sweep outcome.
type CrashMCResult struct {
	Rows  []CrashMCRow
	Notes []string // cap/sampling notices (never silent)
}

func (r CrashMCResult) String() string {
	t := newTable("Crash-state model checking (states explored / violations per profile)")
	t.row("%-16s %9s %9s %8s %8s %8s %10s %9s %9s %10s %7s", "config", "crash(us)", "volatile",
		"streams", "states", "images", "capped", "dur.viol", "ord.viol", "cons.viol", "badimg")
	for _, row := range r.Rows {
		capped := "no"
		if row.Capped {
			capped = fmt.Sprintf("yes(+%d)", row.Sampled)
		}
		t.row("%-16s %9d %9d %8d %8d %8d %10s %9d %9d %10d %7d",
			row.Config, row.CrashAtUs, row.Volatile, row.Streams, row.States, row.Images,
			capped, row.Durability, row.Ordering, row.Consistency, row.ViolationStates)
	}
	for _, n := range r.Notes {
		t.row("note: %s", n)
	}
	return t.String()
}

// crashMCCase is one profile under test.
type crashMCCase struct {
	label string
	prof  core.Profile
	// writes bounds the workload for profiles whose constraint DAG is
	// unconstrained (0 = unbounded).
	writes int
}

func crashMCCases() []crashMCCase {
	small := func(p core.Profile) core.Profile { return crashmc.CompactJournal(p, 128) }
	return []crashMCCase{
		{"EXT4-DR", small(core.EXT4DR(device.PlainSSD())), 0},
		{"EXT4-nobarrier", small(core.EXT4OD(device.LegacySSD())), 3},
		{"BFS-DR", small(core.BFSDR(device.PlainSSD())), 0},
		{"EXT4-MQ", small(core.EXT4MQ(device.PlainSSD())), 0},
		{"BFS-MQ", small(core.BFSMQ(device.PlainSSD())), 0},
	}
}

// CrashMC regenerates the model-checking table.
func CrashMC(scale Scale) CrashMCResult {
	timesUs := []int{1200, 2500}
	if scale == Full {
		timesUs = []int{800, 1200, 2500, 4000, 6000}
	}
	cases := crashMCCases()
	type cell struct {
		c  crashMCCase
		us int
	}
	var cells []cell
	for _, c := range cases {
		for _, us := range timesUs {
			cells = append(cells, cell{c, us})
		}
	}
	rows := make([]CrashMCRow, len(cells))
	notes := make([]string, len(cells)) // per-cell slots: no locking needed
	par.For(len(cells), func(i int) {
		cl := cells[i]
		res := crashmc.OrderingScenario(cl.c.prof, crashmc.Config{
			CrashAt:   sim.Time(sim.Duration(cl.us) * sim.Microsecond),
			Writes:    cl.c.writes,
			MaxStates: scale.n(1<<14, 1<<16),
			Samples:   scale.n(128, 512),
			Log: func(format string, args ...any) {
				notes[i] = fmt.Sprintf("%s@%dus: %s", cl.c.label, cl.us, fmt.Sprintf(format, args...))
			},
		})
		rows[i] = CrashMCRow{
			Config: cl.c.label, CrashAtUs: int64(cl.us),
			Volatile: res.Volatile, Streams: res.Streams,
			States: res.StatesExplored, Images: res.ImagesChecked,
			Capped: res.Capped, Sampled: res.Sampled,
			Durability: res.Durability, Ordering: res.Ordering,
			Consistency: res.Consistency, ViolationStates: res.ViolationStates,
		}
	})
	out := CrashMCResult{Rows: rows}
	for _, n := range notes {
		if n != "" {
			out.Notes = append(out.Notes, n)
		}
	}
	return out
}
