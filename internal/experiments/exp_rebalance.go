package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvcluster"
	"repro/internal/kvwal"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RebalanceRow is one cell of the resize-under-load sweep: one (engine,
// scenario) run's goodput/p99 in one phase of the migration timeline —
// before the degraded window opens, during the migration, after it lands —
// with the migration's own counters alongside. The headline invariant
// (zero acked-write loss) is carried per row so the recorded cells assert
// it too.
type RebalanceRow struct {
	Config      string
	Scenario    string // resize | rebuild
	Phase       string // before | during | after
	Shards      int
	Replicas    int
	GoodputPerS float64
	P99         float64 // msec (worst bin in the phase)
	ShedPct     float64 // whole-run shed (open-loop admission)
	KeysMoved   int64
	DualWrites  int64
	Cutovers    int64
	Aborts      int64
	AckedKeys   int
	AckedLost   int
}

// RebalanceResult is the live-rebalancing experiment.
type RebalanceResult struct {
	SLOms float64
	Rows  []RebalanceRow
}

// Rebalance measures bounded degradation under live ring changes: an
// N->N+1 resize under open-loop traffic ("resize") and a shard kill
// followed by an in-place rebuild ("rebuild"). Each run's measured window
// is binned into a goodput/p99 timeline and folded into before/during/
// after phases around the migration; the acked-write audit rides along so
// every recorded cell carries the zero-loss invariant.
func Rebalance(scale Scale) RebalanceResult {
	engines := []func(device.Config) core.Profile{core.BFSDR}
	if scale == Full {
		engines = append(engines, core.EXT4DR)
	}
	scenarios := []string{"resize", "rebuild"}
	dur := scale.dur(12*sim.Millisecond, 30*sim.Millisecond)
	slo := 2 * sim.Millisecond
	const bins = 12

	out := RebalanceResult{SLOms: float64(slo) / float64(sim.Millisecond)}
	runs := len(engines) * len(scenarios)
	rows := make([][]RebalanceRow, runs)
	par.For(runs, func(i int) {
		profFn := engines[i/len(scenarios)]
		scenario := scenarios[i%len(scenarios)]
		reg := metrics.NewRegistry()
		store := kvwal.DefaultConfig()
		store.MemtableCap = 16
		rc := kvcluster.ReplicaConfig{
			Shards:   3,
			Replicas: 2,
			Profile:  profFn,
			Store:    store,
			Metrics:  reg,
			NewKernel: func(label string) *sim.Kernel {
				return newKernel(fmt.Sprintf("%s/%s", label, scenario))
			},
		}
		tr := kvcluster.Traffic{
			Arrivals: workload.ArrivalConfig{
				Kind: workload.ArrivalPoisson, RatePerS: 40_000, Seed: 7,
			},
			Mix:       workload.Mix{ReadPct: 50, DeletePct: 5},
			KeySpace:  4096,
			ZipfTheta: 0.8,
			Tenants:   2,
			Warmup:    4 * sim.Millisecond,
			Duration:  dur,
		}
		spec := kvcluster.ResizeSpec{}
		switch scenario {
		case "resize":
			spec.NewShards = 4
			spec.ResizeAt = sim.Time(tr.Warmup + dur/4)
		default: // rebuild
			spec.KillShard = 1
			spec.KillAt = sim.Time(tr.Warmup + dur/6)
			spec.ReplaceAt = sim.Time(tr.Warmup + dur/4)
		}
		res := kvcluster.RunResize(rc, tr, 64, slo, spec, bins)
		shedPct := 0.0
		if res.Offered > 0 {
			shedPct = 100 * float64(res.Shed) / float64(res.Offered)
		}
		for _, ph := range res.Phases {
			if ph.WindowMs == 0 {
				continue
			}
			rows[i] = append(rows[i], RebalanceRow{
				Config: res.Engine, Scenario: scenario, Phase: ph.Phase,
				Shards: rc.Shards, Replicas: rc.Replicas,
				GoodputPerS: ph.GoodputPerS, P99: ph.P99, ShedPct: shedPct,
				KeysMoved:  res.Migration.KeysCopied,
				DualWrites: res.Migration.DualWrites,
				Cutovers:   res.Migration.Cutovers,
				Aborts:     res.Migration.Aborts,
				AckedKeys:  res.AckedKeys,
				AckedLost:  res.AckedLost,
			})
		}
	})
	for _, rs := range rows {
		out.Rows = append(out.Rows, rs...)
	}
	return out
}

func (r RebalanceResult) String() string {
	t := newTable(fmt.Sprintf("rebalance: live ring resize under open-loop traffic (SLO %.1fms)", r.SLOms))
	t.row("%-14s %-8s %-7s %3s %2s %11s %8s %6s %9s %9s %8s %6s %8s %5s",
		"config", "scenario", "phase", "sh", "r", "goodput/s", "p99ms", "shed%",
		"keysmoved", "dualwr", "cutovers", "abort", "acked", "lost")
	for _, row := range r.Rows {
		t.row("%-14s %-8s %-7s %3d %2d %11.0f %8.3f %5.1f%% %9d %9d %8d %6d %8d %5d",
			row.Config, row.Scenario, row.Phase, row.Shards, row.Replicas,
			row.GoodputPerS, row.P99, row.ShedPct,
			row.KeysMoved, row.DualWrites, row.Cutovers, row.Aborts,
			row.AckedKeys, row.AckedLost)
	}
	return t.String()
}
