package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvcluster"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FSReplayRow is one engine's outcome replaying the recorded trace.
type FSReplayRow struct {
	Config      string
	Shards      int
	TraceRows   int
	OfferedPerS float64
	GoodputPerS float64
	SLOPct      float64
	ShedPct     float64
	P50         float64 // msec
	P99         float64 // msec
}

// FSReplayResult is the trace-replay experiment.
type FSReplayResult struct {
	SLOms  float64
	Source string // "-trace file" or "synthetic"
	Rows   []FSReplayRow
}

// FSReplay replays a recorded request stream (workload.Traffic.Replay)
// through the fs-backed KV service instead of the synthetic generators:
// arrival instants, op classes and keys all come from the trace, wrapped
// cyclically to fill the measured window with its mean rate preserved. The
// sweep compares the barrier-enabled stack against the flush-based
// baseline under the *same recorded arrivals* — the replay answers "what
// would this exact workload have seen", where the synthetic sweeps answer
// "what does a workload of this shape see". trace may be nil: a
// deterministic synthetic recording stands in so the replay path stays
// exercised without external inputs.
func FSReplay(scale Scale, trace *workload.Trace) FSReplayResult {
	source := "recorded trace"
	if trace == nil || len(trace.Rows) == 0 {
		trace = workload.SyntheticTrace(scale.n(2000, 12000), 50_000, 41)
		source = "synthetic"
	}
	shards := scale.n(2, 4)
	dur := scale.dur(10*sim.Millisecond, 40*sim.Millisecond)
	slo := 2 * sim.Millisecond
	engines := []func(device.Config) core.Profile{core.EXT4DR, core.BFSDR}

	out := FSReplayResult{SLOms: float64(slo) / float64(sim.Millisecond), Source: source}
	out.Rows = make([]FSReplayRow, len(engines))
	par.For(len(engines), func(i int) {
		cfg := kvcluster.Config{
			Shards:  shards,
			Profile: engines[i],
			SLO:     slo,
			NewKernel: func(label string) *sim.Kernel {
				return newKernel(label + "/replay")
			},
		}
		tr := kvcluster.Traffic{
			Replay:   trace,
			Tenants:  2,
			Warmup:   4 * sim.Millisecond,
			Duration: dur,
		}
		res := kvcluster.Run(cfg, tr)
		shedPct := 0.0
		if res.Offered > 0 {
			shedPct = 100 * float64(res.Shed) / float64(res.Offered)
		}
		out.Rows[i] = FSReplayRow{
			Config: res.Engine, Shards: res.Shards, TraceRows: len(trace.Rows),
			OfferedPerS: res.OfferedPerS, GoodputPerS: res.GoodputPerS,
			SLOPct: res.SLOPct, ShedPct: shedPct,
			P50: res.Latency.Median, P99: res.Latency.P99,
		}
	})
	return out
}

func (r FSReplayResult) String() string {
	t := newTable(fmt.Sprintf("fsreplay: trace replay through the fs-backed KV service (%s, SLO %.1fms)", r.Source, r.SLOms))
	t.row("%-10s %6s %9s %9s %11s %7s %6s %8s %8s",
		"config", "shards", "rows", "offered/s", "goodput/s", "slo%", "shed%", "p50ms", "p99ms")
	for _, row := range r.Rows {
		t.row("%-10s %6d %9d %9.0f %11.0f %6.1f%% %5.1f%% %8.3f %8.3f",
			row.Config, row.Shards, row.TraceRows,
			row.OfferedPerS, row.GoodputPerS, row.SLOPct, row.ShedPct, row.P50, row.P99)
	}
	return t.String()
}
