package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/oltp"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

// Fig14Row is one SQLite configuration. P50/P99 are per-transaction
// latency percentiles in msec from the shared internal/metrics histogram.
type Fig14Row struct {
	Device   string
	Config   string
	Mode     sqlmini.JournalMode
	TxPerSec float64
	P50      float64
	P99      float64
}

// Fig14Result is the SQLite matrix.
type Fig14Result struct{ Rows []Fig14Row }

// Fig14 reproduces Fig. 14: SQLite inserts/second. Panel (a): UFS under
// durability guarantee, PERSIST and WAL modes, EXT4-DR vs BFS-DR (BFS
// replaces the first three fdatasyncs of a PERSIST transaction with
// fdatabarrier). Panel (b): plain-SSD under ordering guarantee, EXT4-OD vs
// OptFS vs BFS-OD.
func Fig14(scale Scale) Fig14Result {
	dur := scale.dur(60*sim.Millisecond, 500*sim.Millisecond)
	type cell struct {
		dev  string
		prof core.Profile
		cfg  string
		mode sqlmini.JournalMode
		d    sqlmini.Durability
	}
	var cells []cell
	// (a) UFS, durability guarantee.
	for _, mode := range []sqlmini.JournalMode{sqlmini.Persist, sqlmini.WAL} {
		cells = append(cells,
			cell{"UFS", core.EXT4DR(device.UFS()), "EXT4-DR", mode, sqlmini.Durable},
			cell{"UFS", core.BFSDR(device.UFS()), "BFS-DR", mode, sqlmini.Durable},
		)
	}
	// (b) plain-SSD, ordering guarantee.
	for _, mode := range []sqlmini.JournalMode{sqlmini.Persist, sqlmini.WAL} {
		cells = append(cells,
			cell{"plain-SSD", core.EXT4OD(device.PlainSSD()), "EXT4-OD", mode, sqlmini.OrderingOnly},
			cell{"plain-SSD", core.OptFS(device.PlainSSD()), "OptFS", mode, sqlmini.OrderingOnly},
			cell{"plain-SSD", core.BFSOD(device.PlainSSD()), "BFS-OD", mode, sqlmini.OrderingOnly},
		)
	}
	// Reference: the 73x headline compares BFS-OD against EXT4-DR on
	// plain-SSD in PERSIST mode.
	cells = append(cells,
		cell{"plain-SSD", core.EXT4DR(device.PlainSSD()), "EXT4-DR", sqlmini.Persist, sqlmini.Durable})
	rows := make([]Fig14Row, len(cells))
	par.For(len(cells), func(i int) {
		c := cells[i]
		k := newKernel(fmt.Sprintf("fig14/%s/%s/%v", c.dev, c.cfg, c.mode))
		defer k.Close()
		s := core.NewStack(k, c.prof)
		res := sqlmini.Bench(k, s, sqlmini.DefaultConfig(c.mode, c.d), dur)
		rows[i] = Fig14Row{
			Device: c.dev, Config: c.cfg, Mode: c.mode, TxPerSec: res.TxPerSec,
			P50: res.Latency.Median, P99: res.Latency.P99,
		}
	})
	return Fig14Result{Rows: rows}
}

func (r Fig14Result) String() string {
	t := newTable("Fig 14: SQLite inserts/s")
	t.row("%-12s %-8s %-8s %12s %9s %9s", "device", "config", "journal", "Tx/s", "p50(ms)", "p99(ms)")
	for _, row := range r.Rows {
		t.row("%-12s %-8s %-8s %12.0f %9.3f %9.3f",
			row.Device, row.Config, row.Mode, row.TxPerSec, row.P50, row.P99)
	}
	return t.String()
}

// Fig15Row is one (device, workload, configuration) bar of Fig. 15.
// P50/P99 are per-operation latency percentiles in msec where the workload
// reports them (OLTP-insert; varmail rows leave them zero).
type Fig15Row struct {
	Device   string
	Workload string
	Config   string
	PerSec   float64
	P50      float64
	P99      float64
}

// Fig15Result is the server-workload matrix.
type Fig15Result struct{ Rows []Fig15Row }

// Fig15 reproduces Fig. 15: varmail (ops/s) and OLTP-insert (Tx/s) across
// EXT4-DR, BFS-DR, OptFS, EXT4-OD and BFS-OD on plain-SSD and supercap-SSD.
func Fig15(scale Scale) Fig15Result {
	dur := scale.dur(60*sim.Millisecond, 400*sim.Millisecond)
	profiles := []struct {
		name string
		mk   func(device.Config) core.Profile
	}{
		{"EXT4-DR", core.EXT4DR},
		{"BFS-DR", core.BFSDR},
		{"OptFS", core.OptFS},
		{"EXT4-OD", core.EXT4OD},
		{"BFS-OD", core.BFSOD},
	}
	devices := []func() device.Config{device.PlainSSD, device.SupercapSSD}
	rows := make([]Fig15Row, 2*len(devices)*len(profiles))
	par.For(len(rows), func(i int) {
		dev := devices[i/(2*len(profiles))]()
		pr := profiles[i/2%len(profiles)]
		k := newKernel(fmt.Sprintf("fig15/%s/%s/%d", dev.Name, pr.name, i%2))
		defer k.Close()
		s := core.NewStack(k, pr.mk(dev))
		if i%2 == 0 { // varmail
			cfg := workload.DefaultVarmail()
			cfg.Duration, cfg.Warmup = dur, dur/8
			if scale == Quick {
				cfg.Threads = 8
				cfg.Files = 32
			}
			res := workload.Varmail(k, s, cfg)
			rows[i] = Fig15Row{
				Device: dev.Name, Workload: "varmail", Config: pr.name, PerSec: res.OpsPerS,
			}
		} else { // OLTP-insert
			cfg := oltp.DefaultConfig()
			if scale == Quick {
				cfg.Clients = 4
			}
			res := oltp.Bench(k, s, cfg, dur)
			rows[i] = Fig15Row{
				Device: dev.Name, Workload: "OLTP-insert", Config: pr.name, PerSec: res.TxPerSec,
				P50: res.Latency.Median, P99: res.Latency.P99,
			}
		}
	})
	return Fig15Result{Rows: rows}
}

func (r Fig15Result) String() string {
	t := newTable("Fig 15: server workloads (varmail ops/s, OLTP-insert Tx/s)")
	t.row("%-14s %-12s %-8s %12s %9s %9s", "device", "workload", "config", "per-sec", "p50(ms)", "p99(ms)")
	for _, row := range r.Rows {
		lat50, lat99 := "-", "-"
		if row.P50 > 0 {
			lat50 = fmt.Sprintf("%.3f", row.P50)
			lat99 = fmt.Sprintf("%.3f", row.P99)
		}
		t.row("%-14s %-12s %-8s %12.0f %9s %9s",
			row.Device, row.Workload, row.Config, row.PerSec, lat50, lat99)
	}
	return t.String()
}
