package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig1Row is one device of the Fig. 1 sweep.
type Fig1Row struct {
	Device       string
	Channels     int
	BufferedIOPS float64 // plain write()
	OrderedIOPS  float64 // write() + fdatasync()
	RatioPercent float64
}

// Fig1Result is the ordered-vs-buffered ratio sweep.
type Fig1Result struct{ Rows []Fig1Row }

// Fig1 reproduces Fig. 1: as device parallelism grows, ordered-write
// throughput collapses relative to buffered-write throughput.
func Fig1(scale Scale) Fig1Result {
	dur := scale.dur(50*sim.Millisecond, 300*sim.Millisecond)
	rows := make([]Fig1Row, device.NumFig1Devices)
	par.For(len(rows), func(i int) {
		rows[i] = fig1Device(i, dur)
	})
	return Fig1Result{Rows: rows}
}

func fig1Device(i int, dur sim.Duration) Fig1Row {
	cfg := device.Fig1Device(i)
	buffered := runRandPolicy(core.EXT4OD(cfg), workload.PolicyP, dur)
	ordered := runRandPolicy(core.EXT4DR(cfg), workload.PolicyXnF, dur)
	ratio := 0.0
	if buffered.IOPS > 0 {
		ratio = ordered.IOPS / buffered.IOPS * 100
	}
	return Fig1Row{
		Device:       cfg.Name,
		Channels:     cfg.Geometry.Channels,
		BufferedIOPS: buffered.IOPS,
		OrderedIOPS:  ordered.IOPS,
		RatioPercent: ratio,
	}
}

func (r Fig1Result) String() string {
	t := newTable("Fig 1: Ordered write() vs Orderless write()")
	t.row("%-24s %8s %14s %14s %8s", "device", "channels", "buffered IOPS", "ordered IOPS", "ratio")
	for _, row := range r.Rows {
		t.row("%-24s %8d %14.0f %14.0f %7.1f%%", row.Device, row.Channels,
			row.BufferedIOPS, row.OrderedIOPS, row.RatioPercent)
	}
	return t.String()
}

// Fig1Device runs a single device of the Fig. 1 sweep at Quick scale
// (bench helper).
func Fig1Device(i int) Fig1Row {
	return fig1Device(i, 50*sim.Millisecond)
}

func runRandPolicy(prof core.Profile, po workload.Policy, dur sim.Duration) workload.RandWriteResult {
	k := newKernel(fmt.Sprintf("randwrite/%s/%s/%v", prof.Device.Name, prof.Name, po))
	defer k.Close()
	s := core.NewStack(k, prof)
	cfg := workload.DefaultRandWrite(po)
	cfg.Duration = dur
	cfg.Warmup = dur / 5
	cfg.FilePages = 1024
	return workload.RandWrite(k, s, cfg)
}

// Fig9Row is one (device, policy) cell of Fig. 9.
type Fig9Row struct {
	Device string
	Result workload.RandWriteResult
}

// Fig9Result is the 4KB random-write matrix.
type Fig9Result struct{ Rows []Fig9Row }

// Fig9 reproduces Fig. 9: IOPS and queue depth of 4KB random writes under
// XnF / X / B / P on UFS, plain-SSD and supercap-SSD.
func Fig9(scale Scale) Fig9Result {
	dur := scale.dur(60*sim.Millisecond, 400*sim.Millisecond)
	devices := []func() device.Config{device.UFS, device.PlainSSD, device.SupercapSSD}
	policies := []workload.Policy{workload.PolicyXnF, workload.PolicyX, workload.PolicyB, workload.PolicyP}
	rows := make([]Fig9Row, len(devices)*len(policies))
	par.For(len(rows), func(i int) {
		dev, po := devices[i/len(policies)](), policies[i%len(policies)]
		rows[i] = Fig9Row{Device: dev.Name, Result: runRandPolicy(profileForPolicy(po, dev), po, dur)}
	})
	return Fig9Result{Rows: rows}
}

// profileForPolicy maps a Fig. 9 policy to its stack configuration.
func profileForPolicy(po workload.Policy, cfg device.Config) core.Profile {
	switch po {
	case workload.PolicyXnF:
		return core.EXT4DR(cfg)
	case workload.PolicyX:
		return core.EXT4OD(cfg)
	case workload.PolicyB:
		return core.BFSOD(cfg)
	default:
		return core.EXT4OD(cfg)
	}
}

func (r Fig9Result) String() string {
	t := newTable("Fig 9: 4KB random write IOPS and queue depth")
	t.row("%-14s %-4s %10s %8s %8s", "device", "mode", "IOPS", "meanQD", "peakQD")
	for _, row := range r.Rows {
		t.row("%-14s %-4s %10.0f %8.1f %8.0f", row.Device, row.Result.Policy,
			row.Result.IOPS, row.Result.MeanQD, row.Result.PeakQD)
	}
	return t.String()
}

// Fig10Result is a pair of queue-depth traces.
type Fig10Result struct {
	Device  string
	XTrace  string
	BTrace  string
	XMeanQD float64
	BMeanQD float64
}

// Fig10 reproduces Fig. 10: the queue-depth timeline under Wait-on-Transfer
// stays pinned at <=1 while the barrier-enabled run saturates the queue.
func Fig10(scale Scale) []Fig10Result {
	dur := scale.dur(40*sim.Millisecond, 200*sim.Millisecond)
	devices := []func() device.Config{device.PlainSSD, device.UFS}
	out := make([]Fig10Result, len(devices))
	run := func(prof core.Profile, po workload.Policy, qd int) (float64, string) {
		k := newKernel(fmt.Sprintf("fig10/%s/%v", prof.Device.Name, po))
		defer k.Close()
		s := core.NewStack(k, prof)
		cfg := workload.DefaultRandWrite(po)
		cfg.Duration, cfg.Warmup, cfg.FilePages = dur, dur/5, 512
		r := workload.RandWrite(k, s, cfg)
		return r.MeanQD, s.Dev.QDSeries().AsciiPlot(r.Start,
			r.Start.Add(sim.Duration(r.End-r.Start)/3), 12, float64(qd))
	}
	for i, dev := range devices {
		out[i].Device = dev().Name
	}
	// Four independent kernels: device x {Wait-on-Transfer, barrier}.
	par.For(2*len(devices), func(i int) {
		dev := devices[i/2]()
		if i%2 == 0 {
			out[i/2].XMeanQD, out[i/2].XTrace = run(core.EXT4OD(dev), workload.PolicyX, dev.QueueDepth)
		} else {
			out[i/2].BMeanQD, out[i/2].BTrace = run(core.BFSOD(dev), workload.PolicyB, dev.QueueDepth)
		}
	})
	return out
}

// RenderFig10 renders the trace pair.
func RenderFig10(rs []Fig10Result) string {
	t := newTable("Fig 10: queue depth, Wait-on-Transfer vs Barrier")
	for _, r := range rs {
		t.row("-- %s --", r.Device)
		t.row("Wait-on-Transfer (mean QD %.2f):\n%s", r.XMeanQD, r.XTrace)
		t.row("Barrier (mean QD %.2f):\n%s", r.BMeanQD, r.BTrace)
	}
	return t.String()
}

var _ = fmt.Sprintf // fmt used by sibling files in this package
