package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/device"
	"repro/internal/kvwal"
	"repro/internal/par"
	"repro/internal/sim"
)

// KVRow is one point of the key-value group-commit sweep: acknowledged
// mutations per second and client-observed commit-latency percentiles for
// one (stack profile, client count) pair.
type KVRow struct {
	Config    string
	Clients   int
	OpsPerS   float64
	GroupMean float64 // mutations amortized per group commit
	P50       float64 // msec
	P99       float64
	P999      float64
}

// KVCrashRow is one profile's crash sweep outcome.
type KVCrashRow struct {
	Config     string
	Trials     int
	Violations int
}

// KVResult is the kvwal application experiment: the throughput/latency
// matrix plus the crash-consistency sweep.
type KVResult struct {
	Rows  []KVRow
	Crash []KVCrashRow
}

// KV runs the barrier-enabled KV store experiment: concurrent clients
// group-committing Put/Delete batches on EXT4-DR, BFS-DR and their
// multi-queue variants. On the EXT4 engines every group pays one
// Transfer-and-Flush fdatasync; on the BarrierFS engines the group is
// ordered with one fdatabarrier and durability rides the periodic
// checkpoint — the application-level payoff of §4's dual-mode journaling,
// measured end to end through group commit, memtable flush and compaction.
// The crash sweep then audits that the cheap commits gave nothing away:
// zero acknowledged-but-lost keys, and group-prefix ordering on the
// barrier engines.
func KV(scale Scale) KVResult {
	dur := scale.dur(30*sim.Millisecond, 150*sim.Millisecond)
	clientCounts := []int{2, 8}
	if scale == Full {
		clientCounts = []int{1, 4, 8, 16}
	}
	profiles := []func(device.Config) core.Profile{
		core.EXT4DR, core.BFSDR, core.EXT4MQ, core.BFSMQ,
	}
	var out KVResult
	out.Rows = make([]KVRow, len(clientCounts)*len(profiles))
	par.For(len(out.Rows), func(i int) {
		clients := clientCounts[i/len(profiles)]
		prof := profiles[i%len(profiles)](device.NVMeSSD())
		k := newKernel(fmt.Sprintf("kv/%s/c%d", prof.Name, clients))
		defer k.Close()
		s := core.NewStack(k, prof)
		res := kvwal.Bench(k, s, kvwal.DefaultBenchConfig(clients), dur)
		out.Rows[i] = KVRow{
			Config: prof.Name, Clients: clients,
			OpsPerS: res.OpsPerS, GroupMean: res.GroupMean,
			P50: res.Latency.Median, P99: res.Latency.P99, P999: res.Latency.P999,
		}
	})
	// Crash sweep: enumerated crash points per profile, concurrent clients.
	// KVSweep fans its trials out itself, so the profile loop stays serial.
	n := scale.n(4, 10)
	var times []sim.Time
	for i := 1; i <= n; i++ {
		times = append(times, sim.Time(sim.Duration(i*i)*600*sim.Microsecond))
	}
	for _, mk := range profiles {
		prof := mk(device.NVMeSSD())
		row := KVCrashRow{Config: prof.Name, Trials: len(times)}
		for _, rep := range crashtest.KVSweep(prof, 4, times) {
			if !rep.Ok() {
				row.Violations++
			}
		}
		out.Crash = append(out.Crash, row)
	}
	return out
}

func (r KVResult) String() string {
	t := newTable("KV: WAL group commit, barrier vs transfer-and-flush (NVMe-SSD)")
	t.row("%-8s %8s %10s %8s %9s %9s %9s", "config", "clients", "ops/s", "grp", "p50(ms)", "p99(ms)", "p99.9(ms)")
	for _, row := range r.Rows {
		t.row("%-8s %8d %10.0f %8.1f %9.3f %9.3f %9.3f",
			row.Config, row.Clients, row.OpsPerS, row.GroupMean, row.P50, row.P99, row.P999)
	}
	t.row("-- crash sweep: acknowledged-durable keys must survive every crash point --")
	for _, c := range r.Crash {
		verdict := "OK"
		if c.Violations > 0 {
			verdict = fmt.Sprintf("FAIL (%d violated)", c.Violations)
		}
		t.row("%-8s %d crash points  %s", c.Config, c.Trials, verdict)
	}
	return t.String()
}
