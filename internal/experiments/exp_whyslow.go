package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvcluster"
	"repro/internal/par"
	"repro/internal/reqtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// WhySlowRow is one cell of the tail-latency attribution sweep: one
// (engine, offered load) pair's time attributed to one stack stage, at one
// of two levels — "top" partitions the whole request (queue, batch,
// durability, ack); "durability" splits the durability window by the deeper
// pipeline boundaries (prep, journal, blockq, devq, device, residual).
type WhySlowRow struct {
	Config      string
	OfferedKops int
	Level       string // top | durability
	Stage       string
	MeanMs      float64
	P50Ms       float64
	P99Ms       float64
	SharePct    float64
	Exemplars   int
}

// WhySlowResult is the tail-latency attribution experiment.
type WhySlowResult struct {
	SLOms float64
	Rows  []WhySlowRow
}

// WhySlow answers "where does the tail live?" with per-stage attribution
// instead of a single end-to-end percentile: the sharded KV service runs
// with request-scoped causal tracing on, the sampler keeps the slowest
// exemplars per window plus a uniform stream, and the critical-path
// analyzer attributes each exemplar's latency to stack stages.
//
// The cells state the paper's mechanism directly: on EXT4-DR the
// durability stage (the leader's fdatasync stall) dominates the tail,
// while BFS-DR's fdatabarrier returns at dispatch, so its durability share
// collapses and what remains of the tail is queueing. With span capture on
// (repro -spans) each cell also dumps its slowest exemplars as Chrome
// attribution tracks.
func WhySlow(scale Scale) WhySlowResult {
	shards := scale.n(2, 4)
	loads := []int{160}
	if scale == Full {
		loads = []int{80, 240}
	}
	dur := scale.dur(10*sim.Millisecond, 40*sim.Millisecond)
	slo := 2 * sim.Millisecond

	engines := []func(device.Config) core.Profile{core.EXT4DR, core.BFSDR}

	out := WhySlowResult{SLOms: float64(slo) / float64(sim.Millisecond)}
	rows := make([][]WhySlowRow, len(engines)*len(loads))
	par.For(len(rows), func(i int) {
		prof := engines[i/len(loads)]
		kops := loads[i%len(loads)]
		cfg := kvcluster.Config{
			Shards:  shards,
			Profile: prof,
			SLO:     slo,
			NewKernel: func(label string) *sim.Kernel {
				return newKernel(fmt.Sprintf("%s/%dk", label, kops))
			},
			// Tail-biased sampling: the K slowest per window drive the
			// attribution; the uniform stream keeps the shares honest.
			Trace: &reqtrace.Config{Uniform: 32, TopK: 8},
		}
		tr := kvcluster.Traffic{
			Arrivals:  workload.ArrivalConfig{Kind: workload.ArrivalPoisson, RatePerS: float64(kops) * 1000, Seed: 7},
			Mix:       workload.Mix{ReadPct: 20, DeletePct: 10},
			KeySpace:  8192,
			ZipfTheta: 0.99,
			Tenants:   2,
			Warmup:    4 * sim.Millisecond,
			Duration:  dur,
		}
		res := kvcluster.Run(cfg, tr)
		n := len(res.Exemplars)
		for _, st := range reqtrace.AnalyzeTop(res.Exemplars) {
			rows[i] = append(rows[i], WhySlowRow{
				Config: res.Engine, OfferedKops: kops, Level: "top",
				Stage: st.Stage, MeanMs: st.MeanMs, P50Ms: st.P50Ms,
				P99Ms: st.P99Ms, SharePct: st.SharePct, Exemplars: n,
			})
		}
		for _, st := range reqtrace.AnalyzeSub(res.Exemplars) {
			rows[i] = append(rows[i], WhySlowRow{
				Config: res.Engine, OfferedKops: kops, Level: "durability",
				Stage: st.Stage, MeanMs: st.MeanMs, P50Ms: st.P50Ms,
				P99Ms: st.P99Ms, SharePct: st.SharePct, Exemplars: n,
			})
		}
		dumpExemplars(fmt.Sprintf("whyslow/%s/%dk", res.Engine, kops),
			res.Exemplars, 4)
	})
	for _, rs := range rows {
		out.Rows = append(out.Rows, rs...)
	}
	return out
}

// dumpExemplars renders the k slowest exemplars as Chrome attribution
// tracks: one async "request" span per exemplar with its top-level
// segments as nested spans and every raw stamp as an instant. A no-op
// unless span capture is on.
func dumpExemplars(label string, exs []reqtrace.Exemplar, k int) {
	if len(exs) == 0 {
		return
	}
	sorted := append([]reqtrace.Exemplar(nil), exs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total > sorted[j].Total })
	if k > len(sorted) {
		k = len(sorted)
	}
	st := sim.NewSpanTrace()
	for i := 0; i < k; i++ {
		e := sorted[i]
		id := uint64(i + 1)
		st.Append(e.At(reqtrace.StageAdmit), 'b', "whyslow", "request", id)
		at := e.At(reqtrace.StageAdmit)
		for s, d := range reqtrace.AttributeTop(e) {
			if d <= 0 {
				at = at.Add(d)
				continue
			}
			st.Append(at, 'b', "whyslow", reqtrace.TopStage(s).String(), id)
			at = at.Add(d)
			st.Append(at, 'e', "whyslow", reqtrace.TopStage(s).String(), id)
		}
		st.Append(e.At(reqtrace.StageAck), 'e', "whyslow", "request", id)
		for s := 0; s < reqtrace.NumStages; s++ {
			if e.Has(reqtrace.Stage(s)) {
				st.Append(e.At(reqtrace.Stage(s)), 'i', "whyslow",
					reqtrace.Stage(s).String(), 0)
			}
		}
	}
	RecordSpans(label, st)
}

func (r WhySlowResult) String() string {
	t := newTable(fmt.Sprintf("whyslow: tail-latency attribution across the IO stack (SLO %.1fms)", r.SLOms))
	t.row("%-10s %7s %-10s %-10s %9s %9s %9s %7s %5s",
		"config", "offered", "level", "stage", "mean_ms", "p50_ms", "p99_ms", "share", "n")
	for _, row := range r.Rows {
		t.row("%-10s %6dk %-10s %-10s %9.4f %9.4f %9.4f %6.1f%% %5d",
			row.Config, row.OfferedKops, row.Level, row.Stage,
			row.MeanMs, row.P50Ms, row.P99Ms, row.SharePct, row.Exemplars)
	}
	return t.String()
}
