package experiments

import (
	"strings"
	"testing"
)

func TestMQScalingShape(t *testing.T) {
	skipIfShort(t)
	res := MQScaling(Quick)
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < len(res.Rows); i += 2 {
		single, mq := res.Rows[i], res.Rows[i+1]
		if single.Config != "single-queue" || mq.Config != "blkmq" || single.Streams != mq.Streams {
			t.Fatalf("row pair %d mismatched: %+v / %+v", i, single, mq)
		}
		if mq.EpochsClosed == 0 || single.EpochsClosed == 0 {
			t.Errorf("streams=%d: no epochs closed (%d, %d)", single.Streams,
				single.EpochsClosed, mq.EpochsClosed)
		}
		if single.Streams == 1 {
			// One stream: per-stream epochs degrade to the global order.
			if mq.IOPS < single.IOPS*0.9 || mq.IOPS > single.IOPS*1.1 {
				t.Errorf("1 stream: blkmq %.0f vs single %.0f, want parity", mq.IOPS, single.IOPS)
			}
			continue
		}
		// Independent streams must beat the global total order measurably.
		if mq.IOPS < single.IOPS*1.2 {
			t.Errorf("streams=%d: blkmq %.0f IOPS not above single-queue %.0f",
				single.Streams, mq.IOPS, single.IOPS)
		}
	}
	// FS level: the MQ stacks must isolate foreground syncs from background
	// writeback on both journaling engines.
	get := func(name string) float64 {
		for _, r := range res.FS {
			if r.Config == name {
				return r.OpsPerS
			}
		}
		t.Fatalf("missing FS row %s", name)
		return 0
	}
	if get("EXT4-MQ") < get("EXT4-DR")*1.5 {
		t.Errorf("EXT4-MQ (%.0f) not above EXT4-DR (%.0f) under background load",
			get("EXT4-MQ"), get("EXT4-DR"))
	}
	if get("BFS-MQ") < get("BFS-DR")*1.5 {
		t.Errorf("BFS-MQ (%.0f) not above BFS-DR (%.0f) under background load",
			get("BFS-MQ"), get("BFS-DR"))
	}
	if !strings.Contains(res.String(), "blkmq") {
		t.Error("render broken")
	}
}
