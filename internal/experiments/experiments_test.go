package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run everything at Quick scale and assert the
// paper's qualitative shapes, not absolute numbers. Even at Quick scale the
// full set takes tens of seconds, so every test is gated behind
// testing.Short(): `go test -short ./...` skips them and finishes fast.

// skipIfShort skips a simulation-heavy experiment test under -short.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping slow experiment in -short mode")
	}
}

func TestFig1Shape(t *testing.T) {
	skipIfShort(t)
	res := Fig1(Quick)
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The ratio must collapse from the single-channel mobile part to the
	// thirty-two channel array.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.RatioPercent <= last.RatioPercent {
		t.Errorf("ratio did not collapse with parallelism: %s=%.1f%% vs %s=%.1f%%",
			first.Device, first.RatioPercent, last.Device, last.RatioPercent)
	}
	// Buffered IOPS must grow with parallelism.
	if last.BufferedIOPS < first.BufferedIOPS*2 {
		t.Errorf("flash array (%.0f) not much faster than eMMC (%.0f)",
			last.BufferedIOPS, first.BufferedIOPS)
	}
	if !strings.Contains(res.String(), "Fig 1") {
		t.Error("render broken")
	}
}

func TestFig9Shape(t *testing.T) {
	skipIfShort(t)
	res := Fig9(Quick)
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]float64{}
	qd := map[string]float64{}
	for _, r := range res.Rows {
		byKey[r.Device+"/"+r.Result.Policy.String()] = r.Result.IOPS
		qd[r.Device+"/"+r.Result.Policy.String()] = r.Result.MeanQD
	}
	for _, dev := range []string{"UFS", "plain-SSD", "supercap-SSD"} {
		xnf, x, b, p := byKey[dev+"/XnF"], byKey[dev+"/X"], byKey[dev+"/B"], byKey[dev+"/P"]
		if !(xnf <= x && x < b) {
			t.Errorf("%s: expected XnF <= X < B, got %.0f %.0f %.0f", dev, xnf, x, b)
		}
		min := 2.0
		if dev == "UFS" {
			// The 70µs UFS DMA dominates both modes; the host-side savings
			// land just under 2x in the simulator.
			min = 1.8
		}
		if b < x*min {
			t.Errorf("%s: B (%.0f) below %.1fx X (%.0f)", dev, b, min, x)
		}
		if b > p*1.15 {
			t.Errorf("%s: B (%.0f) implausibly above P (%.0f)", dev, b, p)
		}
		if qd[dev+"/X"] > 2 || qd[dev+"/B"] < 3 {
			t.Errorf("%s: queue depth shape wrong: X=%.1f B=%.1f", dev, qd[dev+"/X"], qd[dev+"/B"])
		}
	}
}

func TestFig10Traces(t *testing.T) {
	skipIfShort(t)
	rs := Fig10(Quick)
	if len(rs) != 2 {
		t.Fatalf("devices = %d", len(rs))
	}
	for _, r := range rs {
		if r.XMeanQD > 2 {
			t.Errorf("%s: Wait-on-Transfer mean QD %.1f, want ~1", r.Device, r.XMeanQD)
		}
		if r.BMeanQD < 4 {
			t.Errorf("%s: barrier mean QD %.1f, want deep", r.Device, r.BMeanQD)
		}
	}
	if !strings.Contains(RenderFig10(rs), "Barrier") {
		t.Error("render broken")
	}
}

func TestTable1Shape(t *testing.T) {
	skipIfShort(t)
	res := Table1(Quick)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	get := func(dev, fsName string) float64 {
		for _, r := range res.Rows {
			if r.Device == dev && r.FS == fsName {
				return r.Summary.Mean
			}
		}
		t.Fatalf("missing %s/%s", dev, fsName)
		return 0
	}
	for _, dev := range []string{"UFS", "plain-SSD", "supercap-SSD"} {
		ext, bfs := get(dev, "EXT4"), get(dev, "BFS")
		if bfs >= ext {
			t.Errorf("%s: BFS fsync mean (%.3fms) not below EXT4 (%.3fms)", dev, bfs, ext)
		}
	}
	// Cross-device ordering: supercap << UFS < plain (flush latency rules).
	if !(get("supercap-SSD", "EXT4") < get("UFS", "EXT4")) {
		t.Error("supercap fsync should be fastest")
	}
	if !(get("UFS", "EXT4") < get("plain-SSD", "EXT4")) {
		t.Error("plain-SSD (TLC) fsync should be slowest")
	}
	// Tail behaviour: p99.99 >= p99 >= median for every row.
	for _, r := range res.Rows {
		s := r.Summary
		if !(s.Median <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.P9999) {
			t.Errorf("%s/%s: non-monotone percentiles %+v", r.Device, r.FS, s)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	skipIfShort(t)
	res := Fig11(Quick)
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	get := func(dev, cfg string) float64 {
		for _, r := range res.Rows {
			if r.Device == dev && r.Config == cfg {
				return r.Switches
			}
		}
		t.Fatalf("missing %s/%s", dev, cfg)
		return 0
	}
	for _, dev := range []string{"UFS", "plain-SSD", "supercap-SSD"} {
		extDR := get(dev, "EXT4-DR")
		bfsOD := get(dev, "BFS-OD")
		if extDR < 1.8 || extDR > 2.2 {
			t.Errorf("%s: EXT4-DR switches = %.2f, want ~2", dev, extDR)
		}
		if bfsOD > 0.5 {
			t.Errorf("%s: BFS-OD switches = %.2f, want ~0", dev, bfsOD)
		}
		if get(dev, "EXT4-OD") > extDR {
			t.Errorf("%s: EXT4-OD should not exceed EXT4-DR", dev)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	skipIfShort(t)
	res := Fig12(Quick)
	// fsync keeps the queue shallow; fbarrier saturates it (paper: 2 vs 15).
	if res.FsyncPeakQD > 6 {
		t.Errorf("fsync peak QD = %.0f, want shallow", res.FsyncPeakQD)
	}
	if res.FbarrierPeakQD < res.FsyncPeakQD*2 {
		t.Errorf("fbarrier peak QD (%.0f) not clearly above fsync (%.0f)",
			res.FbarrierPeakQD, res.FsyncPeakQD)
	}
}

func TestFig13Shape(t *testing.T) {
	skipIfShort(t)
	res := Fig13(Quick)
	get := func(dev, fsName string, th int) float64 {
		for _, r := range res.Rows {
			if r.Device == dev && r.FS == fsName && r.Threads == th {
				return r.OpsPerS
			}
		}
		t.Fatalf("missing %s/%s/%d", dev, fsName, th)
		return 0
	}
	// plain-SSD: BFS-DR above EXT4-DR at every core count (paper: ~2x).
	for _, th := range []int{1, 2, 4, 8} {
		e, b := get("plain-SSD", "EXT4-DR", th), get("plain-SSD", "BFS-DR", th)
		if b < e {
			t.Errorf("plain-SSD %d threads: BFS (%.0f) below EXT4 (%.0f)", th, b, e)
		}
	}
	// Scalability: both filesystems improve from 1 to 8 threads.
	if get("plain-SSD", "EXT4-DR", 8) < get("plain-SSD", "EXT4-DR", 1)*1.5 {
		t.Error("EXT4 journaling did not scale at all")
	}
	if get("plain-SSD", "BFS-DR", 8) < get("plain-SSD", "BFS-DR", 1)*1.5 {
		t.Error("BFS journaling did not scale at all")
	}
}

func TestFig8Shape(t *testing.T) {
	skipIfShort(t)
	res := Fig8(Quick)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Commit interval ordering: BarrierFS < no-flush < quick-flush < full-flush.
	iv := make([]float64, 4)
	for i, r := range res.Rows {
		iv[i] = r.IntervalUs
	}
	if !(iv[0] < iv[1] && iv[1] <= iv[2] && iv[2] < iv[3]) {
		t.Errorf("commit intervals out of order: %v", iv)
	}
}

func TestFig14Shape(t *testing.T) {
	skipIfShort(t)
	res := Fig14(Quick)
	get := func(dev, cfg string, mode string) float64 {
		for _, r := range res.Rows {
			if r.Device == dev && r.Config == cfg && r.Mode.String() == mode {
				return r.TxPerSec
			}
		}
		t.Fatalf("missing %s/%s/%s", dev, cfg, mode)
		return 0
	}
	// (a) UFS persist: BFS-DR > EXT4-DR.
	if get("UFS", "BFS-DR", "persist") < get("UFS", "EXT4-DR", "persist")*1.3 {
		t.Error("UFS persist: BFS-DR gain missing")
	}
	// (b) plain-SSD ordering: BFS-OD > EXT4-OD and >> EXT4-DR.
	if get("plain-SSD", "BFS-OD", "persist") < get("plain-SSD", "EXT4-OD", "persist") {
		t.Error("plain-SSD: BFS-OD below EXT4-OD")
	}
	if get("plain-SSD", "BFS-OD", "persist") < get("plain-SSD", "EXT4-DR", "persist")*8 {
		t.Error("plain-SSD: BFS-OD vs EXT4-DR headline gain missing")
	}
	// OptFS makes progress but does not beat BFS-OD; the paper found it
	// *below* EXT4-OD on flash (selective data journaling penalty, §6.5).
	optfs := get("plain-SSD", "OptFS", "persist")
	if optfs == 0 {
		t.Error("OptFS made no progress")
	}
	if optfs > get("plain-SSD", "BFS-OD", "persist") {
		t.Error("OptFS should not beat BFS-OD (Wait-on-Transfer vs none)")
	}
}

func TestFig15Shape(t *testing.T) {
	skipIfShort(t)
	res := Fig15(Quick)
	get := func(dev, wl, cfg string) float64 {
		for _, r := range res.Rows {
			if r.Device == dev && r.Workload == wl && r.Config == cfg {
				return r.PerSec
			}
		}
		t.Fatalf("missing %s/%s/%s", dev, wl, cfg)
		return 0
	}
	for _, wl := range []string{"varmail", "OLTP-insert"} {
		// BFS-DR beats EXT4-DR; BFS-OD beats EXT4-OD (plain-SSD).
		if get("plain-SSD", wl, "BFS-DR") < get("plain-SSD", wl, "EXT4-DR") {
			t.Errorf("plain-SSD %s: BFS-DR below EXT4-DR", wl)
		}
		if get("plain-SSD", wl, "BFS-OD") < get("plain-SSD", wl, "EXT4-OD") {
			t.Errorf("plain-SSD %s: BFS-OD below EXT4-OD", wl)
		}
	}
}

func TestRenderers(t *testing.T) {
	skipIfShort(t)
	if !strings.Contains(Table1(Quick).String(), "Table 1") {
		t.Error("table1 render")
	}
}
