package experiments

import (
	"io"
	"sync"

	"repro/internal/sim"
)

// spanCap collects trace spans across an experiment run. Cells run
// concurrently under par.For, so registration is mutex-guarded; each
// kernel's SpanTrace itself is only touched by that kernel's simulation.
var spanCap struct {
	sync.Mutex
	on     bool
	traces []sim.LabeledSpans
}

// CaptureSpans toggles span recording for kernels experiments build from
// now on, discarding anything captured before. With capture on, every cell
// of the next experiment records device/jbd/fs/kvwal spans for a Chrome
// trace dump (see WriteSpans).
func CaptureSpans(on bool) {
	spanCap.Lock()
	spanCap.on = on
	spanCap.traces = nil
	spanCap.Unlock()
}

// TakeSpans returns and clears the captured traces, one entry per kernel
// in creation order, labelled with the cell that built it.
func TakeSpans() []sim.LabeledSpans {
	spanCap.Lock()
	out := spanCap.traces
	spanCap.traces = nil
	spanCap.Unlock()
	return out
}

// WriteSpans dumps the captured traces as Chrome trace_event JSON, one
// trace-viewer process row per experiment cell.
func WriteSpans(w io.Writer) error { return sim.WriteChromeTrace(w, TakeSpans()) }

// RecordSpans registers a hand-assembled span trace (sim.NewSpanTrace) in
// the capture buffer under label, so reconstructed traces — e.g. sampled
// request-trace exemplars — land in the same Chrome dump as live kernel
// spans. A no-op while capture is off.
func RecordSpans(label string, st *sim.SpanTrace) {
	spanCap.Lock()
	if spanCap.on {
		spanCap.traces = append(spanCap.traces, sim.LabeledSpans{Label: label, Spans: st})
	}
	spanCap.Unlock()
}

// newKernel is the choke point every experiment cell builds its kernel
// through: span capture hooks in here, and the registry attachment rides
// along in core.NewStack. label names the cell in the span dump.
func newKernel(label string) *sim.Kernel {
	k := sim.NewKernel()
	spanCap.Lock()
	if spanCap.on {
		spanCap.traces = append(spanCap.traces,
			sim.LabeledSpans{Label: label, Spans: k.StartSpans(false)})
	}
	spanCap.Unlock()
	return k
}
