// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated stack. Each experiment returns a
// structured result plus a text rendering that mirrors the paper's rows and
// series. Absolute numbers differ from the paper's testbed; the shapes —
// who wins, by what factor, where curves saturate — are the reproduction
// target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Scale selects how long each experiment runs.
type Scale int

// Scales.
const (
	// Quick runs in seconds of wall time; used by tests and `repro -quick`.
	Quick Scale = iota
	// Full runs the paper-sized version.
	Full
)

func (s Scale) dur(quick, full sim.Duration) sim.Duration {
	if s == Quick {
		return quick
	}
	return full
}

func (s Scale) n(quick, full int) int {
	if s == Quick {
		return quick
	}
	return full
}

// table renders rows of labelled values with a header.
type table struct {
	b strings.Builder
}

func newTable(title string) *table {
	t := &table{}
	fmt.Fprintf(&t.b, "== %s ==\n", title)
	return t
}

func (t *table) row(format string, args ...any) {
	fmt.Fprintf(&t.b, format+"\n", args...)
}

func (t *table) String() string { return t.b.String() }
