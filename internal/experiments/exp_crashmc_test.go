package experiments

import (
	"strings"
	"testing"
)

func TestCrashMCShape(t *testing.T) {
	skipIfShort(t)
	res := CrashMC(Quick)
	if len(res.Rows) != 5*2 {
		t.Fatalf("rows = %d, want 5 profiles x 2 crash instants", len(res.Rows))
	}
	perConfig := make(map[string][]CrashMCRow)
	for _, row := range res.Rows {
		perConfig[row.Config] = append(perConfig[row.Config], row)
		if row.States < 1 {
			t.Errorf("%s@%dus: no states explored", row.Config, row.CrashAtUs)
		}
		if row.Consistency != 0 {
			t.Errorf("%s@%dus: %d metadata-consistency violations (journal atomicity broken)",
				row.Config, row.CrashAtUs, row.Consistency)
		}
	}
	// The protected stacks must model-check clean in every admissible
	// state; the nobarrier control must expose reachable ordering
	// violations at at least one instant, exhaustively (no cap).
	for _, cfg := range []string{"EXT4-DR", "BFS-DR", "EXT4-MQ", "BFS-MQ"} {
		for _, row := range perConfig[cfg] {
			if row.Durability+row.Ordering != 0 {
				t.Errorf("%s@%dus: %d durability / %d ordering violations on a protected stack",
					cfg, row.CrashAtUs, row.Durability, row.Ordering)
			}
		}
	}
	ordering := 0
	for _, row := range perConfig["EXT4-nobarrier"] {
		ordering += row.Ordering
		if row.Capped {
			t.Errorf("EXT4-nobarrier@%dus: bounded workload should enumerate exhaustively", row.CrashAtUs)
		}
	}
	if ordering == 0 {
		t.Error("EXT4-nobarrier never exposed an ordering violation across the sweep")
	}
	if !strings.Contains(res.String(), "Crash-state model checking") {
		t.Error("render broken")
	}
}
