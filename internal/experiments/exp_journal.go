package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table1Row is one (device, filesystem) row of Table 1.
type Table1Row struct {
	Device  string
	FS      string
	Summary metrics.Summary
}

// Table1Result is the fsync latency statistics table.
type Table1Result struct{ Rows []Table1Row }

// Table1 reproduces Table 1: fsync() latency statistics (mean, median,
// 99th, 99.9th, 99.99th percentile) for EXT4 vs BarrierFS on the three
// devices.
func Table1(scale Scale) Table1Result {
	n := scale.n(400, 5000)
	devices := []func() device.Config{device.UFS, device.PlainSSD, device.SupercapSSD}
	fses := []struct {
		name string
		mk   func(device.Config) core.Profile
	}{
		{"EXT4", core.EXT4DR},
		{"BFS", core.BFSDR},
	}
	rows := make([]Table1Row, len(devices)*len(fses))
	par.For(len(rows), func(i int) {
		dev, f := devices[i/len(fses)](), fses[i%len(fses)]
		rec := fsyncLatencies(f.mk(dev), n)
		rows[i] = Table1Row{Device: dev.Name, FS: f.name, Summary: rec.Summarize()}
	})
	return Table1Result{Rows: rows}
}

// fsyncLatencies runs a 4KB write+fsync loop and records per-call latency.
func fsyncLatencies(prof core.Profile, n int) *metrics.LatencyRecorder {
	k := newKernel("table1/" + prof.Device.Name + "/" + prof.Name)
	defer k.Close()
	s := core.NewStack(k, prof)
	rec := metrics.NewLatencyRecorder(prof.Name)
	k.Spawn("app", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), "t.dat")
		if err != nil {
			panic(err)
		}
		// Allocating writes like the paper's DWSL-style fsync loop: every
		// call commits a transaction.
		for i := 0; i < n; i++ {
			s.FS.Write(p, f, int64(i))
			t0 := p.Now()
			s.FS.Fsync(p, f)
			rec.Record(sim.Duration(p.Now() - t0))
		}
		k.Stop()
	})
	k.Run()
	return rec
}

func (r Table1Result) String() string {
	t := newTable("Table 1: fsync() latency statistics (msec)")
	t.row("%-14s %-5s %9s %9s %9s %9s %9s", "device", "fs", "mean", "median", "p99", "p99.9", "p99.99")
	for _, row := range r.Rows {
		s := row.Summary
		t.row("%-14s %-5s %9.3f %9.3f %9.3f %9.3f %9.3f",
			row.Device, row.FS, s.Mean, s.Median, s.P99, s.P999, s.P9999)
	}
	return t.String()
}

// Fig11Row is one (device, configuration) bar of Fig. 11.
type Fig11Row struct {
	Device   string
	Config   string
	Switches float64 // voluntary context switches per sync call
}

// Fig11Result is the context-switch census.
type Fig11Result struct{ Rows []Fig11Row }

// Fig11 reproduces Fig. 11: application-level context switches per
// fsync/fbarrier under EXT4-DR, BFS-DR, EXT4-OD and BFS-OD. Writes happen
// back-to-back, so the jiffy-granularity timestamps make most fsyncs behave
// as fdatasync on fast devices — the effect behind the paper's fractional
// counts.
func Fig11(scale Scale) Fig11Result {
	n := scale.n(300, 3000)
	devices := []func() device.Config{device.UFS, device.PlainSSD, device.SupercapSSD}
	cfgs := []struct {
		name string
		mk   func(device.Config) core.Profile
	}{
		{"EXT4-DR", core.EXT4DR},
		{"BFS-DR", core.BFSDR},
		{"EXT4-OD", core.EXT4OD},
		{"BFS-OD", core.BFSOD},
	}
	rows := make([]Fig11Row, len(devices)*len(cfgs))
	par.For(len(rows), func(i int) {
		dev, c := devices[i/len(cfgs)](), cfgs[i%len(cfgs)]
		rows[i] = Fig11Row{Device: dev.Name, Config: c.name, Switches: switchesPerSync(c.mk(dev), n)}
	})
	return Fig11Result{Rows: rows}
}

// switchesPerSync measures voluntary context switches per sync call for a
// 4KB overwrite + sync loop on a preallocated file (the paper's setup: the
// file exists, so metadata dirtying is timestamp-driven).
func switchesPerSync(prof core.Profile, n int) float64 {
	k := newKernel("fig11/" + prof.Device.Name + "/" + prof.Name)
	defer k.Close()
	s := core.NewStack(k, prof)
	meter := metrics.NewSwitchMeter(prof.Name)
	k.Spawn("app", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), "t.dat")
		if err != nil {
			panic(err)
		}
		s.FS.Write(p, f, 0)
		s.FS.Fsync(p, f)
		for i := 0; i < n; i++ {
			s.FS.Write(p, f, 0)
			meter.Begin(p)
			s.Sync(p, f)
			meter.End(p)
		}
		k.Stop()
	})
	k.Run()
	return meter.PerOp()
}

func (r Fig11Result) String() string {
	t := newTable("Fig 11: context switches per fsync()/fbarrier()")
	t.row("%-14s %-8s %10s", "device", "config", "switches")
	for _, row := range r.Rows {
		t.row("%-14s %-8s %10.2f", row.Device, row.Config, row.Switches)
	}
	return t.String()
}

// Fig12Result holds the BarrierFS queue-depth traces for fsync vs fbarrier.
type Fig12Result struct {
	FsyncPeakQD    float64
	FbarrierPeakQD float64
	FsyncTrace     string
	FbarrierTrace  string
}

// Fig12 reproduces Fig. 12: in BarrierFS, fsync() drives the command queue
// to only ~2-3 while fbarrier() saturates it.
func Fig12(scale Scale) Fig12Result {
	run := func(barrier bool) (float64, string) {
		k := newKernel(fmt.Sprintf("fig12/barrier=%v", barrier))
		defer k.Close()
		prof := core.BFSDR(device.UFS())
		s := core.NewStack(k, prof)
		k.Spawn("app", func(p *sim.Proc) {
			f, err := s.FS.Create(p, s.FS.Root(), "t.dat")
			if err != nil {
				panic(err)
			}
			for i := int64(0); ; i++ {
				s.FS.Write(p, f, i)
				if barrier {
					s.FS.Fbarrier(p, f)
				} else {
					s.FS.Fsync(p, f)
				}
			}
		})
		warm := sim.Time(scale.dur(5*sim.Millisecond, 20*sim.Millisecond))
		window := sim.Duration(scale.dur(2*sim.Millisecond, 5*sim.Millisecond))
		k.RunUntil(warm.Add(window))
		qd := s.Dev.QDSeries()
		return qd.Peak(warm, warm.Add(window)),
			qd.AsciiPlot(warm, warm.Add(window), 12, float64(prof.Device.QueueDepth))
	}
	var out Fig12Result
	par.For(2, func(i int) {
		if i == 0 {
			out.FsyncPeakQD, out.FsyncTrace = run(false)
		} else {
			out.FbarrierPeakQD, out.FbarrierTrace = run(true)
		}
	})
	return out
}

func (r Fig12Result) String() string {
	t := newTable("Fig 12: BarrierFS queue depth, fsync vs fbarrier (UFS)")
	t.row("fsync peak QD    = %.0f\n%s", r.FsyncPeakQD, r.FsyncTrace)
	t.row("fbarrier peak QD = %.0f\n%s", r.FbarrierPeakQD, r.FbarrierTrace)
	return t.String()
}

// Fig13Row is one point of the journaling-scalability curves.
type Fig13Row struct {
	Device  string
	FS      string
	Threads int
	OpsPerS float64
}

// Fig13Result is the DWSL scalability sweep.
type Fig13Result struct{ Rows []Fig13Row }

// Fig13 reproduces Fig. 13 (fxmark DWSL): filesystem journaling throughput
// vs core count for EXT4-DR and BFS-DR on plain-SSD and supercap-SSD.
func Fig13(scale Scale) Fig13Result {
	threads := []int{1, 2, 4, 6, 8, 10, 12}
	if scale == Quick {
		threads = []int{1, 2, 4, 8}
	}
	dur := scale.dur(80*sim.Millisecond, 400*sim.Millisecond)
	devices := []func() device.Config{device.PlainSSD, device.SupercapSSD}
	fses := []struct {
		name string
		prof func(device.Config) core.Profile
	}{
		{"EXT4-DR", core.EXT4DR},
		{"BFS-DR", core.BFSDR},
	}
	rows := make([]Fig13Row, len(devices)*len(fses)*len(threads))
	par.For(len(rows), func(i int) {
		dev := devices[i/(len(fses)*len(threads))]()
		mk := fses[i/len(threads)%len(fses)]
		th := threads[i%len(threads)]
		k := newKernel(fmt.Sprintf("fig13/%s/%s/t%d", dev.Name, mk.name, th))
		defer k.Close()
		s := core.NewStack(k, mk.prof(dev))
		cfg := workload.DefaultDWSL(th)
		cfg.Duration = dur
		cfg.Warmup = dur / 8
		res := workload.DWSL(k, s, cfg)
		rows[i] = Fig13Row{Device: dev.Name, FS: mk.name, Threads: th, OpsPerS: res.OpsPerS}
	})
	return Fig13Result{Rows: rows}
}

func (r Fig13Result) String() string {
	t := newTable("Fig 13: fxmark DWSL journaling scalability (ops/s)")
	t.row("%-14s %-8s %8s %12s", "device", "fs", "threads", "ops/s")
	for _, row := range r.Rows {
		t.row("%-14s %-8s %8d %12.0f", row.Device, row.FS, row.Threads, row.OpsPerS)
	}
	return t.String()
}

// Fig8Row is one journaling mode's inter-commit interval.
type Fig8Row struct {
	Mode       string
	IntervalUs float64
	CommitsPS  float64
}

// Fig8Result is the commit-interval comparison.
type Fig8Result struct{ Rows []Fig8Row }

// Fig8 reproduces the §4.4 / Fig. 8 analysis: the interval between
// successive journal commits under BarrierFS (tD), EXT4 no-flush (tD+tC),
// EXT4 quick-flush/supercap (tD+tC+tε) and EXT4 full-flush (tD+tC+tF).
func Fig8(scale Scale) Fig8Result {
	n := scale.n(200, 2000)
	// The first three modes share the supercap device so the transfer term
	// tC is identical and only the flush term varies; full flush needs a
	// device with a volatile cache (plain-SSD).
	cases := []struct {
		mode string
		prof core.Profile
		call func(s *core.Stack, p *sim.Proc, f *fs.Inode)
	}{
		{"BarrierFS (tD)", core.BFSOD(device.SupercapSSD()),
			func(s *core.Stack, p *sim.Proc, f *fs.Inode) { s.FS.Fbarrier(p, f) }},
		{"EXT4 no flush (tD+tC)", core.EXT4OD(device.SupercapSSD()),
			func(s *core.Stack, p *sim.Proc, f *fs.Inode) { s.FS.Fsync(p, f) }},
		{"EXT4 quick flush (tD+tC+te)", core.EXT4DR(device.SupercapSSD()),
			func(s *core.Stack, p *sim.Proc, f *fs.Inode) { s.FS.Fsync(p, f) }},
		{"EXT4 full flush (tD+tC+tF)", core.EXT4DR(device.PlainSSD()),
			func(s *core.Stack, p *sim.Proc, f *fs.Inode) { s.FS.Fsync(p, f) }},
	}
	rows := make([]Fig8Row, len(cases))
	par.For(len(cases), func(ci int) {
		c := cases[ci]
		k := newKernel("fig8/" + c.mode)
		defer k.Close()
		s := core.NewStack(k, c.prof)
		var first, last sim.Time
		commits := 0
		k.Spawn("app", func(p *sim.Proc) {
			f, err := s.FS.Create(p, s.FS.Root(), "j.dat")
			if err != nil {
				panic(err)
			}
			for i := 0; i < n; i++ {
				s.FS.Write(p, f, int64(i)) // allocating: forces a commit
				c.call(s, p, f)
				if i == 0 {
					first = p.Now()
				}
				last = p.Now()
				commits++
			}
			k.Stop()
		})
		k.Run()
		interval := 0.0
		if commits > 1 {
			interval = sim.Duration(last-first).Micros() / float64(commits-1)
		}
		rows[ci] = Fig8Row{
			Mode:       c.mode,
			IntervalUs: interval,
			CommitsPS:  1e6 / interval,
		}
	})
	return Fig8Result{Rows: rows}
}

func (r Fig8Result) String() string {
	t := newTable("Fig 8: interval between successive journal commits")
	t.row("%-30s %14s %12s", "mode", "interval (µs)", "commits/s")
	for _, row := range r.Rows {
		t.row("%-30s %14.1f %12.0f", row.Mode, row.IntervalUs, row.CommitsPS)
	}
	return t.String()
}

var _ = fmt.Sprintf
