package experiments

import (
	"strings"
	"testing"
)

func TestKVShape(t *testing.T) {
	skipIfShort(t)
	res := KV(Quick)
	get := func(cfg string, clients int) KVRow {
		for _, r := range res.Rows {
			if r.Config == cfg && r.Clients == clients {
				return r
			}
		}
		t.Fatalf("missing %s/%d", cfg, clients)
		return KVRow{}
	}
	// The acceptance shape: barrier group commit beats transfer-and-flush
	// group commit under concurrency, on both block layers.
	if b, e := get("BFS-DR", 8), get("EXT4-DR", 8); b.OpsPerS <= e.OpsPerS {
		t.Errorf("8 clients: BFS-DR (%.0f ops/s) not above EXT4-DR (%.0f)", b.OpsPerS, e.OpsPerS)
	}
	if b, e := get("BFS-MQ", 8), get("EXT4-MQ", 8); b.OpsPerS <= e.OpsPerS {
		t.Errorf("8 clients: BFS-MQ (%.0f ops/s) not above EXT4-MQ (%.0f)", b.OpsPerS, e.OpsPerS)
	}
	// Group commit amortizes: more clients, bigger groups on the flush
	// engine (the leader drains a longer queue per sync).
	if g8, g2 := get("EXT4-DR", 8), get("EXT4-DR", 2); g8.GroupMean <= g2.GroupMean {
		t.Errorf("EXT4-DR group size did not grow with clients: %0.1f vs %0.1f",
			g8.GroupMean, g2.GroupMean)
	}
	// Latency percentiles are populated and monotone.
	for _, r := range res.Rows {
		if r.P50 <= 0 || r.P50 > r.P99 || r.P99 > r.P999 {
			t.Errorf("%s/%d: bad latency summary p50=%.3f p99=%.3f p99.9=%.3f",
				r.Config, r.Clients, r.P50, r.P99, r.P999)
		}
	}
	// Crash sweep: zero violations on every profile.
	if len(res.Crash) != 4 {
		t.Fatalf("crash rows = %d", len(res.Crash))
	}
	for _, c := range res.Crash {
		if c.Violations != 0 {
			t.Errorf("%s: %d/%d crash points violated", c.Config, c.Violations, c.Trials)
		}
	}
	if !strings.Contains(res.String(), "KV") {
		t.Error("render broken")
	}
}
