package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvcluster"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/workload"
)

// KVClusterRow is one cell of the kvcluster sweep: one (engine, offered
// load) pair's measured-window goodput and latency tail.
type KVClusterRow struct {
	Config      string
	Mode        string
	Shards      int
	OfferedKops int // offered load identity, kreq/s
	OfferedPerS float64
	GoodputPerS float64
	SLOPct      float64
	ShedPct     float64
	P50         float64 // msec
	P99         float64
	P999        float64
}

// KVClusterResult is the sharded KV service experiment.
type KVClusterResult struct {
	SLOms float64
	Rows  []KVClusterRow
}

// KVCluster sweeps the sharded barrier-enabled KV service across offered
// load and journaling engine under open-loop Zipfian traffic:
//
//   - EXT4-DR shards: every group commit pays a Transfer-and-Flush
//     fdatasync, so the service head-of-line blocks on flush round trips
//     and sheds early as offered load rises;
//   - BFS-DR shards: group commits are ordered with one fdatabarrier at
//     dispatch cost, durability rides the periodic checkpoint;
//   - BFS-MQ maps all shards onto ONE multi-queue device, each shard's
//     journal on its own block-layer order stream (kvcluster.MQStreams).
//
// Goodput counts only requests completed within the SLO, so the cells
// directly state the paper's claim at service level: at equal p99 SLO the
// barrier engines sustain more goodput than Transfer-and-Flush.
func KVCluster(scale Scale) KVClusterResult {
	shards := scale.n(2, 4)
	loads := []int{40, 160}
	if scale == Full {
		loads = []int{25, 50, 100, 200, 400}
	}
	dur := scale.dur(10*sim.Millisecond, 40*sim.Millisecond)
	slo := 2 * sim.Millisecond

	engines := []struct {
		prof func(device.Config) core.Profile
		mode kvcluster.Mode
	}{
		{core.EXT4DR, kvcluster.ShardedStacks},
		{core.BFSDR, kvcluster.ShardedStacks},
		{core.BFSMQ, kvcluster.MQStreams},
	}

	out := KVClusterResult{SLOms: float64(slo) / float64(sim.Millisecond)}
	out.Rows = make([]KVClusterRow, len(engines)*len(loads))
	par.For(len(out.Rows), func(i int) {
		eng := engines[i/len(loads)]
		kops := loads[i%len(loads)]
		cfg := kvcluster.Config{
			Shards:  shards,
			Mode:    eng.mode,
			Profile: eng.prof,
			SLO:     slo,
			NewKernel: func(label string) *sim.Kernel {
				return newKernel(fmt.Sprintf("%s/%dk", label, kops))
			},
		}
		tr := kvcluster.Traffic{
			Arrivals:  workload.ArrivalConfig{Kind: workload.ArrivalPoisson, RatePerS: float64(kops) * 1000, Seed: 7},
			Mix:       workload.Mix{ReadPct: 20, DeletePct: 10},
			KeySpace:  8192,
			ZipfTheta: 0.99,
			Tenants:   2,
			Warmup:    4 * sim.Millisecond,
			Duration:  dur,
		}
		res := kvcluster.Run(cfg, tr)
		shedPct := 0.0
		if res.Offered > 0 {
			shedPct = 100 * float64(res.Shed) / float64(res.Offered)
		}
		out.Rows[i] = KVClusterRow{
			Config: res.Engine, Mode: res.Mode.String(), Shards: res.Shards,
			OfferedKops: kops, OfferedPerS: res.OfferedPerS,
			GoodputPerS: res.GoodputPerS, SLOPct: res.SLOPct, ShedPct: shedPct,
			P50: res.Latency.Median, P99: res.Latency.P99, P999: res.Latency.P999,
		}
	})
	return out
}

func (r KVClusterResult) String() string {
	t := newTable(fmt.Sprintf("kvcluster: sharded KV service, open-loop Zipfian traffic (SLO %.1fms)", r.SLOms))
	t.row("%-8s %-10s %6s %9s %11s %7s %6s %8s %8s %8s",
		"config", "mode", "shards", "offered/s", "goodput/s", "slo%", "shed%", "p50ms", "p99ms", "p999ms")
	for _, row := range r.Rows {
		t.row("%-8s %-10s %6d %9.0f %11.0f %6.1f%% %5.1f%% %8.3f %8.3f %8.3f",
			row.Config, row.Mode, row.Shards, row.OfferedPerS,
			row.GoodputPerS, row.SLOPct, row.ShedPct, row.P50, row.P99, row.P999)
	}
	return t.String()
}
