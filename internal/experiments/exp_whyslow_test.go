package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvcluster"
	"repro/internal/reqtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestWhySlowAttribution is the tracing subsystem's accounting acceptance:
// (a) the top-level stage attribution of every sampled exemplar sums to
// exactly its end-to-end latency, and the durability sub-stages sum to
// exactly the durability segment; (b) on the same workload the barrier
// engine attributes less time to the durability-wait stage than EXT4 —
// the paper's mechanism, visible in the attribution itself.
func TestWhySlowAttribution(t *testing.T) {
	run := func(prof func(device.Config) core.Profile) kvcluster.Result {
		cfg := kvcluster.Config{
			Shards:  2,
			Profile: prof,
			SLO:     2 * sim.Millisecond,
			Trace:   &reqtrace.Config{Uniform: 8, TopK: 4},
		}
		tr := kvcluster.Traffic{
			Arrivals: workload.ArrivalConfig{
				Kind: workload.ArrivalPoisson, RatePerS: 60_000, Seed: 7,
			},
			Mix:      workload.Mix{ReadPct: 20, DeletePct: 10},
			KeySpace: 4096,
			Warmup:   3 * sim.Millisecond,
			Duration: 8 * sim.Millisecond,
		}
		return kvcluster.Run(cfg, tr)
	}

	meanDur := map[string]float64{}
	for _, prof := range []func(device.Config) core.Profile{core.EXT4DR, core.BFSDR} {
		res := run(prof)
		if len(res.Exemplars) == 0 {
			t.Fatalf("%s: no exemplars sampled", res.Engine)
		}
		var durSum float64
		for _, e := range res.Exemplars {
			top := reqtrace.AttributeTop(e)
			var tot sim.Duration
			for _, v := range top {
				if v < 0 {
					t.Fatalf("%s: negative top segment %v", res.Engine, top)
				}
				tot += v
			}
			if tot != e.Total {
				t.Fatalf("%s: top attribution sums to %v, end-to-end is %v (stamps %v mask %b)",
					res.Engine, tot, e.Total, e.Stamps, e.Mask)
			}
			sub := reqtrace.AttributeSub(e)
			var subTot sim.Duration
			for _, v := range sub {
				if v < 0 {
					t.Fatalf("%s: negative sub segment %v", res.Engine, sub)
				}
				subTot += v
			}
			if subTot != top[reqtrace.TopDurability] {
				t.Fatalf("%s: sub attribution sums to %v, durability segment is %v",
					res.Engine, subTot, top[reqtrace.TopDurability])
			}
			durSum += float64(top[reqtrace.TopDurability])
		}
		meanDur[res.Engine] = durSum / float64(len(res.Exemplars))
		t.Logf("%s: %d exemplars, mean durability %.4fms", res.Engine,
			len(res.Exemplars), meanDur[res.Engine]/float64(sim.Millisecond))
	}

	if meanDur["BFS-DR"] >= meanDur["EXT4-DR"] {
		t.Fatalf("barrier engine should attribute less durability-wait time: BFS-DR %.4fms >= EXT4-DR %.4fms",
			meanDur["BFS-DR"]/float64(sim.Millisecond), meanDur["EXT4-DR"]/float64(sim.Millisecond))
	}
}

// TestWhySlowQuick exercises the experiment wrapper itself: rows exist for
// both levels, and each (config, level) group's shares account for the
// whole (they sum to ~100% when any time was attributed at all).
func TestWhySlowQuick(t *testing.T) {
	r := WhySlow(Quick)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	shares := map[string]float64{}
	for _, row := range r.Rows {
		if row.Exemplars == 0 {
			t.Fatalf("row %+v has no exemplars", row)
		}
		shares[row.Config+"/"+row.Level] += row.SharePct
	}
	for k, s := range shares {
		if s < 99.9 || s > 100.1 {
			t.Fatalf("%s: shares sum to %.2f%%, want 100%%", k, s)
		}
	}
}
