package experiments

import "testing"

// The issue's acceptance criterion: at at least one offered-load point,
// BFS shards sustain higher goodput than EXT4 at the same p99 SLO, on the
// deterministic simulated sweep.
func TestKVClusterBarrierGoodputWins(t *testing.T) {
	res := KVCluster(Quick)
	t.Log("\n" + res.String())
	byCell := func(config string, kops int) (KVClusterRow, bool) {
		for _, r := range res.Rows {
			if r.Config == config && r.OfferedKops == kops {
				return r, true
			}
		}
		return KVClusterRow{}, false
	}
	wins := 0
	for _, r := range res.Rows {
		if r.Config != "BFS-DR" {
			continue
		}
		ext4, ok := byCell("EXT4-DR", r.OfferedKops)
		if !ok {
			t.Fatalf("missing EXT4-DR cell at %dk", r.OfferedKops)
		}
		if r.GoodputPerS > ext4.GoodputPerS {
			wins++
		}
	}
	if wins == 0 {
		t.Fatal("BFS-DR never beat EXT4-DR goodput at equal p99 SLO")
	}
	// Every cell must have seen measured traffic and report a latency tail.
	for _, r := range res.Rows {
		if r.OfferedPerS == 0 {
			t.Errorf("cell %s/%dk offered nothing", r.Config, r.OfferedKops)
		}
		if r.GoodputPerS > 0 && r.P99 <= 0 {
			t.Errorf("cell %s/%dk has goodput but no p99", r.Config, r.OfferedKops)
		}
	}
}
