package experiments

import (
	"fmt"

	"repro/internal/blkmq"
	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
)

// MQScalingRow is one point of the multi-queue scaling sweep: raw ordered
// 4KB write IOPS with `Streams` independent submitters, through either the
// single-queue layer (global total order, the seed design) or the blkmq
// layer with one hardware queue per stream (per-stream epochs, §8).
type MQScalingRow struct {
	Streams      int
	HWQueues     int // 0 = single-queue block.Layer
	Config       string
	IOPS         float64
	EpochsClosed int64
	Speedup      float64 // blkmq IOPS over the same-stream single-queue row
}

// MQFSRow is one filesystem-level comparison point: sustained fdatasync
// throughput of one foreground thread while bulk writers flood the layer
// with background writeback.
type MQFSRow struct {
	Config  string
	OpsPerS float64 // foreground fdatasync calls per second
}

// MQScalingResult is the multi-queue scaling experiment.
type MQScalingResult struct {
	Rows []MQScalingRow
	FS   []MQFSRow
}

// MQPoint measures raw ordered-write IOPS on the NVMe-class device:
// `streams` submitters each writing epochs of eight 4KB ordered writes
// closed by a barrier. hwq == 0 routes everything through a single-queue
// block.Layer on stream 0 (the device-global total order the seed
// implements); hwq > 0 gives every submitter its own stream on a blkmq
// layer with hwq hardware dispatch queues. It returns the measured IOPS
// and the number of epochs closed in the measurement window.
func MQPoint(streams, hwq int, dur sim.Duration) (iops float64, epochs int64) {
	k := newKernel(fmt.Sprintf("mq/s%d/q%d", streams, hwq))
	defer k.Close()
	dev := device.New(k, device.NVMeSSD())
	var front block.Submitter
	var epochsClosed func() int64
	if hwq == 0 {
		l := block.NewLayer(k, dev, block.NewEpochScheduler(block.NewNOOP()),
			block.LayerConfig{DispatchOverhead: 2 * sim.Microsecond})
		front = l
		es := l.Scheduler().(*block.EpochScheduler)
		epochsClosed = es.EpochsClosed
	} else {
		m := blkmq.New(k, dev, blkmq.Config{
			HWQueues:         hwq,
			DispatchOverhead: 2 * sim.Microsecond,
		})
		front = m
		epochsClosed = m.EpochsClosed
	}
	var ops int64
	measuring := false
	done := func(sim.Time, *block.Request) {
		if measuring {
			ops++
		}
	}
	for s := 0; s < streams; s++ {
		s := s
		k.Spawn("mq/writer", func(p *sim.Proc) {
			stream := uint64(0)
			if hwq > 0 {
				stream = uint64(s)
			}
			base := uint64(s * 4096)
			n := uint64(0)
			for {
				flags := block.FlagOrdered
				if n%8 == 7 {
					flags |= block.FlagBarrier
				}
				r := &block.Request{
					Op: block.OpWrite, LPA: base + n%2048, Data: n,
					Flags: flags, Stream: stream, PID: p.ID(),
					OnComplete: done,
				}
				n++
				front.Submit(p, r)
			}
		})
	}
	k.RunUntil(k.Now().Add(dur / 4)) // warmup
	measuring = true
	e0 := epochsClosed()
	start := k.Now()
	k.RunUntil(start.Add(dur))
	measuring = false
	return metrics.Rate(ops, sim.Duration(k.Now()-start)), epochsClosed() - e0
}

// MQScaling runs the queue-count/stream-count scaling sweep: for each
// stream count it measures the single-queue layer against blkmq with one
// hardware queue per stream, then compares the EXT4-DR and EXT4-MQ stacks
// under varmail at the filesystem level.
func MQScaling(scale Scale) MQScalingResult {
	var out MQScalingResult
	dur := scale.dur(12*sim.Millisecond, 80*sim.Millisecond)
	streamCounts := []int{1, 2, 4, 8}
	// One kernel per (streams, layer) point: 8 independent measurements.
	iops := make([]float64, 2*len(streamCounts))
	epochs := make([]int64, 2*len(streamCounts))
	par.For(len(iops), func(i int) {
		streams := streamCounts[i/2]
		hwq := 0
		if i%2 == 1 {
			hwq = streams
		}
		iops[i], epochs[i] = MQPoint(streams, hwq, dur)
	})
	for si, streams := range streamCounts {
		sIOPS, sEpochs := iops[2*si], epochs[2*si]
		mIOPS, mEpochs := iops[2*si+1], epochs[2*si+1]
		speed := 0.0
		if sIOPS > 0 {
			speed = mIOPS / sIOPS
		}
		out.Rows = append(out.Rows,
			MQScalingRow{Streams: streams, HWQueues: 0, Config: "single-queue",
				IOPS: sIOPS, EpochsClosed: sEpochs},
			MQScalingRow{Streams: streams, HWQueues: streams, Config: "blkmq",
				IOPS: mIOPS, EpochsClosed: mEpochs, Speedup: speed},
		)
	}
	fsDur := scale.dur(40*sim.Millisecond, 200*sim.Millisecond)
	profs := []core.Profile{
		core.EXT4DR(device.NVMeSSD()), core.EXT4MQ(device.NVMeSSD()),
		core.BFSDR(device.NVMeSSD()), core.BFSMQ(device.NVMeSSD()),
	}
	out.FS = make([]MQFSRow, len(profs))
	par.For(len(profs), func(i int) {
		out.FS[i] = MQFSRow{Config: profs[i].Name, OpsPerS: mqFSPoint(profs[i], fsDur)}
	})
	return out
}

// mqFSPoint measures foreground sync throughput under background load: one
// thread overwrites and fdatasyncs a small file while four bulk writers
// push buffered pages through background writeback. On the single-queue
// layer the bulk traffic shares stream 0 — and the layer's one congestion
// limit — with the syncer, so every flush queues behind the backlog
// (head-of-line blocking). On the MQ profiles the orderless bulk writes
// scatter onto their own streams and the foreground stream stays clear.
func mqFSPoint(prof core.Profile, dur sim.Duration) float64 {
	k := newKernel("mqfs/" + prof.Name)
	defer k.Close()
	s := core.NewStack(k, prof)
	const bulkThreads = 4
	for b := 0; b < bulkThreads; b++ {
		b := b
		k.SpawnIdx("mq/bulk", b, func(p *sim.Proc) {
			f, err := s.FS.Create(p, s.FS.Root(), fmt.Sprintf("bulk%d.dat", b))
			if err != nil {
				panic(err)
			}
			n := int64(0)
			for {
				for i := 0; i < 32; i++ {
					s.FS.Write(p, f, n%1024)
					n++
				}
				s.FS.WritebackAsync(p, f)
			}
		})
	}
	var syncs int64
	measuring := false
	ready := false
	k.Spawn("mq/syncer", func(p *sim.Proc) {
		f, err := s.FS.Create(p, s.FS.Root(), "fg.dat")
		if err != nil {
			panic(err)
		}
		for i := int64(0); i < 4; i++ {
			s.FS.Write(p, f, i)
		}
		s.FS.Fsync(p, f) // settle allocation so the loop is pure overwrite
		ready = true
		for i := int64(0); ; i++ {
			s.FS.Write(p, f, i%4)
			s.FS.Fdatasync(p, f)
			if measuring {
				syncs++
			}
		}
	})
	k.RunUntil(k.Now().Add(dur / 4))
	for !ready {
		k.RunUntil(k.Now().Add(5 * sim.Millisecond))
	}
	measuring = true
	start := k.Now()
	k.RunUntil(start.Add(dur))
	measuring = false
	return metrics.Rate(syncs, sim.Duration(k.Now()-start))
}

func (r MQScalingResult) String() string {
	t := newTable("MQ: per-stream epochs vs global order (NVMe-SSD, barrier every 8 writes)")
	t.row("%8s %9s %-14s %10s %8s %8s", "streams", "hw-queues", "layer", "IOPS", "epochs", "speedup")
	for _, row := range r.Rows {
		speed := "-"
		if row.Speedup > 0 {
			speed = fmt.Sprintf("%.2fx", row.Speedup)
		}
		t.row("%8d %9d %-14s %10.0f %8d %8s", row.Streams, row.HWQueues, row.Config,
			row.IOPS, row.EpochsClosed, speed)
	}
	t.row("-- foreground fdatasync under background writeback --")
	for _, row := range r.FS {
		t.row("%-14s %10.0f syncs/s", row.Config, row.OpsPerS)
	}
	return t.String()
}
