// Package oltp is a MySQL/InnoDB-flavored OLTP engine reproducing the IO
// pattern of sysbench OLTP-insert (Fig. 15): each transaction appends a
// redo-log record and fsyncs it (innodb_flush_log_at_trx_commit=1), appends
// a binlog record and fsyncs that too (sync_binlog=1), while dirty table
// pages flush in the background through a doublewrite-style batch. With 90%
// of TPC-C IO being fsync-driven log writes (§5), the sync primitive
// dominates throughput.
package oltp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config parameterizes the engine.
type Config struct {
	Clients    int
	TablePages int
	// FlushEvery batches table-page flushes once this many transactions
	// have committed (background checkpointing).
	FlushEvery int
	Seed       int64
}

// DefaultConfig returns the Fig. 15 OLTP-insert setup.
func DefaultConfig() Config {
	return Config{Clients: 8, TablePages: 512, FlushEvery: 64, Seed: 3}
}

// Stats are cumulative engine statistics.
type Stats struct {
	Commits    int64
	LogSyncs   int64
	PageFlushs int64
}

// Engine is one database instance.
type Engine struct {
	s   *core.Stack
	cfg Config

	redo    *fs.Inode
	binlog  *fs.Inode
	table   *fs.Inode
	redoPos int64
	binPos  int64

	sinceFlush int
	stats      Stats
}

// Open creates the database files.
func Open(p *sim.Proc, s *core.Stack, cfg Config) (*Engine, error) {
	e := &Engine{s: s, cfg: cfg}
	var err error
	if e.redo, err = s.FS.Create(p, s.FS.Root(), "ib_logfile0"); err != nil {
		return nil, err
	}
	if e.binlog, err = s.FS.Create(p, s.FS.Root(), "binlog.000001"); err != nil {
		return nil, err
	}
	if e.table, err = s.FS.Create(p, s.FS.Root(), "sbtest.ibd"); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.TablePages; i++ {
		s.FS.Write(p, e.table, int64(i))
	}
	s.FS.SyncFS(p)
	return e, nil
}

// Stats returns cumulative statistics.
func (e *Engine) Stats() Stats { return e.stats }

// Insert runs one insert transaction: redo-log append + sync, table page
// dirtying, binlog append + sync, periodic background page flush.
func (e *Engine) Insert(p *sim.Proc, rng *rand.Rand) {
	fsys := e.s.FS
	// Redo log: append + group-commit sync.
	fsys.Write(p, e.redo, e.redoPos%2048)
	e.redoPos++
	e.s.Sync(p, e.redo) // fsync or fbarrier per profile
	e.stats.LogSyncs++
	// Dirty a table page (stays in cache until background flush).
	fsys.Write(p, e.table, int64(rng.Intn(e.cfg.TablePages)))
	// Binlog: append + sync.
	fsys.Write(p, e.binlog, e.binPos%2048)
	e.binPos++
	e.s.Sync(p, e.binlog)
	e.stats.LogSyncs++
	e.stats.Commits++
	e.sinceFlush++
	if e.sinceFlush >= e.cfg.FlushEvery {
		e.sinceFlush = 0
		fsys.WritebackAsync(p, e.table)
		e.stats.PageFlushs++
	}
}

// BenchResult is the outcome of one OLTP run.
type BenchResult struct {
	Clients  int
	Commits  int64
	Window   sim.Duration
	TxPerSec float64
	// Latency summarizes per-transaction commit latency on the shared
	// internal/metrics histogram, so oltp rows compare directly with
	// sqlmini and kvwal output.
	Latency metrics.Summary
}

func (r BenchResult) String() string {
	return fmt.Sprintf("oltp-insert %2d clients %9.0f Tx/s p50=%.3fms p99=%.3fms",
		r.Clients, r.TxPerSec, r.Latency.Median, r.Latency.P99)
}

// Bench drives concurrent insert clients for the given duration.
func Bench(k *sim.Kernel, s *core.Stack, cfg Config, duration sim.Duration) BenchResult {
	var eng *Engine
	ready := false
	commits := int64(0)
	measuring := false
	rec := metrics.NewLatencyRecorder("oltp/" + s.Profile.Name)
	k.Spawn("oltp/setup", func(p *sim.Proc) {
		var err error
		eng, err = Open(p, s, cfg)
		if err != nil {
			panic(err)
		}
		ready = true
	})
	for c := 0; c < cfg.Clients; c++ {
		c := c
		k.SpawnIdx("oltp/client", c, func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)))
			for !ready {
				p.Sleep(sim.Millisecond)
			}
			for {
				t0 := p.Now()
				eng.Insert(p, rng)
				if measuring {
					commits++
					rec.Record(sim.Duration(p.Now() - t0))
				}
			}
		})
	}
	k.RunUntil(k.Now().Add(50 * sim.Millisecond))
	measuring = true
	start := k.Now()
	k.RunUntil(start.Add(duration))
	measuring = false
	end := k.Now()
	return BenchResult{
		Clients:  cfg.Clients,
		Commits:  commits,
		Window:   sim.Duration(end - start),
		TxPerSec: float64(commits) / sim.Duration(end-start).Seconds(),
		Latency:  rec.Summarize(),
	}
}
