package oltp

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
)

func benchOn(t *testing.T, prof core.Profile) BenchResult {
	t.Helper()
	k := sim.NewKernel()
	defer k.Close()
	s := core.NewStack(k, prof)
	cfg := DefaultConfig()
	cfg.Clients = 4
	return Bench(k, s, cfg, 80*sim.Millisecond)
}

func TestInsertAccounting(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	s := core.NewStack(k, core.EXT4DR(device.PlainSSD()))
	k.Spawn("app", func(p *sim.Proc) {
		eng, err := Open(p, s, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := newTestRng()
		for i := 0; i < 10; i++ {
			eng.Insert(p, rng)
		}
		st := eng.Stats()
		if st.Commits != 10 {
			t.Errorf("commits = %d", st.Commits)
		}
		if st.LogSyncs != 20 {
			t.Errorf("log syncs = %d, want 20 (redo+binlog per commit)", st.LogSyncs)
		}
		k.Stop()
	})
	k.Run()
}

func TestFig15OLTPShape(t *testing.T) {
	extDR := benchOn(t, core.EXT4DR(device.PlainSSD()))
	extOD := benchOn(t, core.EXT4OD(device.PlainSSD()))
	bfsOD := benchOn(t, core.BFSOD(device.PlainSSD()))
	t.Logf("EXT4-DR=%v EXT4-OD=%v BFS-OD=%v", extDR, extOD, bfsOD)
	if extDR.Commits == 0 {
		t.Fatal("no progress")
	}
	// Fig. 15: BFS-OD prevails over EXT4-OD, and the fsync->fbarrier switch
	// vs EXT4-DR is dramatic (paper: 43x).
	if bfsOD.TxPerSec < extOD.TxPerSec {
		t.Errorf("BFS-OD (%.0f) below EXT4-OD (%.0f)", bfsOD.TxPerSec, extOD.TxPerSec)
	}
	if bfsOD.TxPerSec < extDR.TxPerSec*5 {
		t.Errorf("BFS-OD (%.0f) should dwarf EXT4-DR (%.0f)", bfsOD.TxPerSec, extDR.TxPerSec)
	}
}

func TestSupercapNarrowsDurabilityGap(t *testing.T) {
	// On the supercap device flush is nearly free, so EXT4-DR and EXT4-OD
	// converge (Fig. 15's right half).
	dr := benchOn(t, core.EXT4DR(device.SupercapSSD()))
	od := benchOn(t, core.EXT4OD(device.SupercapSSD()))
	t.Logf("supercap EXT4-DR=%v EXT4-OD=%v", dr, od)
	if dr.TxPerSec < od.TxPerSec*0.5 {
		t.Errorf("supercap EXT4-DR (%.0f) too far below EXT4-OD (%.0f); flush should be cheap",
			dr.TxPerSec, od.TxPerSec)
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(1)) }
