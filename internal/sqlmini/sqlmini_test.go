package sqlmini

import (
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
)

func benchOn(t *testing.T, prof core.Profile, mode JournalMode, d Durability) BenchResult {
	t.Helper()
	k := sim.NewKernel()
	defer k.Close()
	s := core.NewStack(k, prof)
	return Bench(k, s, DefaultConfig(mode, d), 80*sim.Millisecond)
}

func TestInsertMakesProgress(t *testing.T) {
	res := benchOn(t, core.EXT4DR(device.UFS()), Persist, Durable)
	if res.Inserts == 0 {
		t.Fatal("no inserts completed")
	}
}

func TestPersistSyncAccounting(t *testing.T) {
	// One PERSIST insert = 3 ordering syncs + 1 durability sync (§5).
	k := sim.NewKernel()
	defer k.Close()
	s := core.NewStack(k, core.BFSDR(device.UFS()))
	k.Spawn("app", func(p *sim.Proc) {
		db, err := Open(p, s, "t", DefaultConfig(Persist, Durable))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			db.Insert(p)
		}
		st := db.Stats()
		if st.Inserts != 5 {
			t.Errorf("inserts = %d", st.Inserts)
		}
		if st.BarrierCalls != 15 {
			t.Errorf("ordering syncs = %d, want 15 (3/insert)", st.BarrierCalls)
		}
		if st.SyncCalls != 5 {
			t.Errorf("durability syncs = %d, want 5 (1/insert)", st.SyncCalls)
		}
		k.Stop()
	})
	k.Run()
}

func TestWALFewerSyncs(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	s := core.NewStack(k, core.BFSDR(device.UFS()))
	k.Spawn("app", func(p *sim.Proc) {
		db, err := Open(p, s, "t", DefaultConfig(WAL, Durable))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			db.Insert(p)
		}
		if db.Stats().BarrierCalls != 0 {
			t.Errorf("WAL should not issue ordering syncs, got %d", db.Stats().BarrierCalls)
		}
		if db.Stats().SyncCalls != 5 {
			t.Errorf("WAL syncs = %d, want 5", db.Stats().SyncCalls)
		}
		k.Stop()
	})
	k.Run()
}

func TestFig14ShapePersistUFS(t *testing.T) {
	// BFS-DR (three barriers + one sync) must beat EXT4-DR (four syncs).
	ext := benchOn(t, core.EXT4DR(device.UFS()), Persist, Durable)
	bfs := benchOn(t, core.BFSDR(device.UFS()), Persist, Durable)
	t.Logf("EXT4-DR=%v BFS-DR=%v", ext, bfs)
	if bfs.TxPerSec < ext.TxPerSec*1.3 {
		t.Errorf("BFS-DR (%.0f) should clearly beat EXT4-DR (%.0f) in PERSIST mode",
			bfs.TxPerSec, ext.TxPerSec)
	}
}

func TestFig14ShapeOrderingPlainSSD(t *testing.T) {
	// Relaxed durability: BFS-OD >> EXT4-DR (the 73x headline direction),
	// and BFS-OD >= EXT4-OD.
	extDR := benchOn(t, core.EXT4DR(device.PlainSSD()), Persist, Durable)
	extOD := benchOn(t, core.EXT4OD(device.PlainSSD()), Persist, OrderingOnly)
	bfsOD := benchOn(t, core.BFSOD(device.PlainSSD()), Persist, OrderingOnly)
	t.Logf("EXT4-DR=%v EXT4-OD=%v BFS-OD=%v", extDR, extOD, bfsOD)
	if bfsOD.TxPerSec < extDR.TxPerSec*8 {
		t.Errorf("BFS-OD (%.0f) should dwarf EXT4-DR (%.0f); paper reports 73x",
			bfsOD.TxPerSec, extDR.TxPerSec)
	}
	if bfsOD.TxPerSec < extOD.TxPerSec {
		t.Errorf("BFS-OD (%.0f) below EXT4-OD (%.0f)", bfsOD.TxPerSec, extOD.TxPerSec)
	}
}

func TestWALvsPersistGapNarrow(t *testing.T) {
	// In WAL mode there is one sync per commit, so BarrierFS has little
	// room for improvement (§6.4).
	extWAL := benchOn(t, core.EXT4DR(device.UFS()), WAL, Durable)
	bfsWAL := benchOn(t, core.BFSDR(device.UFS()), WAL, Durable)
	t.Logf("EXT4 WAL=%v BFS WAL=%v", extWAL, bfsWAL)
	ratio := bfsWAL.TxPerSec / extWAL.TxPerSec
	if ratio < 0.9 {
		t.Errorf("BFS-DR WAL regressed vs EXT4 (%.2fx)", ratio)
	}
	// The PERSIST-mode gain should exceed the WAL-mode gain.
	extP := benchOn(t, core.EXT4DR(device.UFS()), Persist, Durable)
	bfsP := benchOn(t, core.BFSDR(device.UFS()), Persist, Durable)
	if bfsP.TxPerSec/extP.TxPerSec < ratio {
		t.Errorf("PERSIST gain (%.2fx) should exceed WAL gain (%.2fx)",
			bfsP.TxPerSec/extP.TxPerSec, ratio)
	}
}

func TestModeStrings(t *testing.T) {
	if Persist.String() != "persist" || WAL.String() != "wal" {
		t.Error("mode strings")
	}
}
