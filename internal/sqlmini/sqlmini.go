// Package sqlmini is a compact SQLite-workalike embedded store built on the
// filesystem layer, faithful to the IO pattern the paper analyzes (§5): in
// the default PERSIST rollback-journal mode a single insert transaction
// issues four fdatasync() calls, three of which exist purely to control
// storage order — the undo log before the journal header, the header before
// the database update, the update before the header reset. Those three can
// become fdatabarrier() without weakening transaction durability; relaxing
// the fourth too gives the ordering-only configurations (BFS-OD, EXT4-OD).
// WAL mode appends log frames and issues one sync per commit.
package sqlmini

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// JournalMode selects the SQLite journaling strategy.
type JournalMode int

// Journal modes.
const (
	// Persist is the rollback-journal mode with journal_mode=PERSIST: the
	// journal file is kept and its header zeroed after commit (the default
	// on Android per the paper).
	Persist JournalMode = iota
	// WAL is write-ahead-log mode: one sync per commit.
	WAL
)

func (m JournalMode) String() string {
	if m == WAL {
		return "wal"
	}
	return "persist"
}

// Durability selects how the final sync of a transaction is issued.
type Durability int

// Durability levels.
const (
	// Durable keeps the transaction durable at commit: the last sync is
	// fdatasync (BFS-DR replaces only the first three with barriers).
	Durable Durability = iota
	// OrderingOnly relaxes durability: every sync becomes the ordering
	// primitive (fdatabarrier / osync / nobarrier-fdatasync).
	OrderingOnly
)

// Config parameterizes a database instance.
type Config struct {
	Mode       JournalMode
	Durability Durability
	// TablePages is the size of the b-tree page pool an insert touches.
	TablePages int
	Seed       int64
}

// DefaultConfig returns the paper's SQLite setup.
func DefaultConfig(mode JournalMode, dur Durability) Config {
	return Config{Mode: mode, Durability: dur, TablePages: 128, Seed: 11}
}

// Stats are cumulative database statistics.
type Stats struct {
	Inserts      int64
	SyncCalls    int64
	BarrierCalls int64
}

// DB is one open database.
type DB struct {
	s   *core.Stack
	cfg Config
	rng *rand.Rand

	dbFile  *fs.Inode
	journal *fs.Inode // rollback journal or WAL
	walHead int64     // next WAL frame index

	stats Stats
}

// Open creates the database files and prepares the page pool.
func Open(p *sim.Proc, s *core.Stack, name string, cfg Config) (*DB, error) {
	db := &DB{s: s, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	var err error
	if db.dbFile, err = s.FS.Create(p, s.FS.Root(), name+".db"); err != nil {
		return nil, err
	}
	suffix := "-journal"
	if cfg.Mode == WAL {
		suffix = "-wal"
	}
	if db.journal, err = s.FS.Create(p, s.FS.Root(), name+suffix); err != nil {
		return nil, err
	}
	// Lay down the table pages (page 0 is the database header).
	for i := 0; i <= cfg.TablePages; i++ {
		s.FS.Write(p, db.dbFile, int64(i))
	}
	// Reserve journal space: header + a few record pages.
	for i := 0; i < 8; i++ {
		s.FS.Write(p, db.journal, int64(i))
	}
	s.FS.SyncFS(p)
	return db, nil
}

// Stats returns cumulative statistics.
func (db *DB) Stats() Stats { return db.stats }

// orderSync issues an ordering-only sync: the paper's replacement for the
// first three fdatasync calls of a PERSIST transaction. On BarrierFS this
// is fdatabarrier (regardless of the durability profile — the paper keeps
// only the *fourth* sync durable); on EXT4, Fdatabarrier degrades to
// fdatasync, reproducing the baseline cost.
func (db *DB) orderSync(p *sim.Proc, f *fs.Inode) {
	db.stats.BarrierCalls++
	db.s.FS.Fdatabarrier(p, f)
}

// commitSync issues the durability sync terminating a transaction (kept as
// a real fdatasync under Durable).
func (db *DB) commitSync(p *sim.Proc, f *fs.Inode) {
	db.stats.SyncCalls++
	if db.cfg.Durability == OrderingOnly {
		db.s.Datasync(p, f)
		return
	}
	db.s.FS.Fdatasync(p, f)
}

// Insert runs one insert transaction, following §5's accounting: PERSIST
// mode makes four sync calls (three ordering, one durability); WAL mode
// makes one.
func (db *DB) Insert(p *sim.Proc) {
	switch db.cfg.Mode {
	case WAL:
		db.insertWAL(p)
	default:
		db.insertPersist(p)
	}
	db.stats.Inserts++
}

func (db *DB) insertPersist(p *sim.Proc) {
	fsys := db.s.FS
	victim := int64(1 + db.rng.Intn(db.cfg.TablePages))
	// 1. Write the undo image of the victim page into the journal, then
	//    order it before the journal header.
	fsys.Write(p, db.journal, 1)
	db.orderSync(p, db.journal) // fdatasync #1
	// 2. Update the journal header (record count), ordered before the
	//    database page update.
	fsys.Write(p, db.journal, 0)
	db.orderSync(p, db.journal) // fdatasync #2
	// 3. Update the b-tree page and the database header, ordered before the
	//    journal reset.
	fsys.Write(p, db.dbFile, victim)
	fsys.Write(p, db.dbFile, 0)
	db.orderSync(p, db.dbFile) // fdatasync #3
	// 4. Reset (zero) the journal header: the commit point. Durability of
	//    the transaction hangs on this sync.
	fsys.Write(p, db.journal, 0)
	db.commitSync(p, db.journal) // fdatasync #4
}

func (db *DB) insertWAL(p *sim.Proc) {
	fsys := db.s.FS
	// Append the changed page and a commit frame to the WAL.
	fsys.Write(p, db.journal, db.walHead)
	fsys.Write(p, db.journal, db.walHead+1)
	db.walHead += 2
	db.commitSync(p, db.journal)
	// Checkpoint periodically: fold the WAL back into the database.
	if db.walHead >= 256 {
		db.checkpointWAL(p)
	}
}

func (db *DB) checkpointWAL(p *sim.Proc) {
	fsys := db.s.FS
	for i := 0; i < 16; i++ {
		fsys.Write(p, db.dbFile, int64(1+db.rng.Intn(db.cfg.TablePages)))
	}
	db.commitSync(p, db.dbFile)
	db.walHead = 0
}

// BenchResult is the outcome of one insert-throughput run.
type BenchResult struct {
	Mode     JournalMode
	Inserts  int64
	Window   sim.Duration
	TxPerSec float64
	// Latency summarizes per-transaction latency on the shared
	// internal/metrics histogram, comparable with oltp and kvwal output.
	Latency metrics.Summary
}

func (r BenchResult) String() string {
	return fmt.Sprintf("sqlite/%-7s %9.0f Tx/s (%d inserts) p50=%.3fms p99=%.3fms",
		r.Mode, r.TxPerSec, r.Inserts, r.Latency.Median, r.Latency.P99)
}

// Bench drives inserts from a single connection for the given duration.
func Bench(k *sim.Kernel, s *core.Stack, cfg Config, duration sim.Duration) BenchResult {
	var db *DB
	inserts := int64(0)
	measuring := false
	rec := metrics.NewLatencyRecorder("sqlite/" + s.Profile.Name)
	k.Spawn("sqlite", func(p *sim.Proc) {
		var err error
		db, err = Open(p, s, "bench", cfg)
		if err != nil {
			panic(err)
		}
		for {
			t0 := p.Now()
			db.Insert(p)
			if measuring {
				inserts++
				rec.Record(sim.Duration(p.Now() - t0))
			}
		}
	})
	// Warm up through Open plus a few transactions.
	k.RunUntil(k.Now().Add(30 * sim.Millisecond))
	measuring = true
	start := k.Now()
	k.RunUntil(start.Add(duration))
	measuring = false
	end := k.Now()
	return BenchResult{
		Mode:     cfg.Mode,
		Inserts:  inserts,
		Window:   sim.Duration(end - start),
		TxPerSec: float64(inserts) / sim.Duration(end-start).Seconds(),
		Latency:  rec.Summarize(),
	}
}
