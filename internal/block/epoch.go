package block

// EpochScheduler implements Epoch-based IO scheduling with barrier
// reassignment (§3.3). It wraps a conventional scheduler and adds three
// rules:
//
//  1. The partial order between epochs is preserved.
//  2. Requests within an epoch may be scheduled freely against each other.
//  3. Orderless requests may be scheduled freely across epochs.
//
// Mechanically: when a barrier request enters, its barrier flag is removed,
// it is queued as an ordered request, and the scheduler stops accepting new
// requests. The base scheduler reorders the queue at will (everything in it
// is either orderless or belongs to the same epoch). The ordered request
// that leaves the queue last is designated the new barrier — Epoch-Based
// Barrier Reassignment. When no ordered requests remain queued, admission
// reopens; orderless leftovers simply join the next epoch.
type EpochScheduler struct {
	base          Scheduler
	accepting     bool
	orderedQueued int // ordered (incl. stripped-barrier) requests in base
	epoch         uint64
	reassigned    int64 // barriers moved to a different request than submitted
	epochsClosed  int64
}

// NewEpochScheduler wraps base.
func NewEpochScheduler(base Scheduler) *EpochScheduler {
	return &EpochScheduler{base: base, accepting: true}
}

// Name implements Scheduler.
func (s *EpochScheduler) Name() string { return "epoch(" + s.base.Name() + ")" }

// Accepting implements Scheduler.
func (s *EpochScheduler) Accepting() bool { return s.accepting }

// Pending implements Scheduler.
func (s *EpochScheduler) Pending() int { return s.base.Pending() }

// CurrentEpoch returns the epoch being assigned to incoming ordered
// requests.
func (s *EpochScheduler) CurrentEpoch() uint64 { return s.epoch }

// Reassigned returns how many barrier tags landed on a different request
// than the one that carried them in.
func (s *EpochScheduler) Reassigned() int64 { return s.reassigned }

// EpochsClosed returns the number of epochs fully dispatched.
func (s *EpochScheduler) EpochsClosed() int64 { return s.epochsClosed }

// Add implements Scheduler.
func (s *EpochScheduler) Add(r *Request) bool {
	if !s.accepting {
		return false
	}
	r.epoch = s.epoch
	if r.Flags.Has(FlagBarrier) {
		// Strip the barrier; remember the request as ordered. Admission
		// closes until the epoch fully leaves the queue.
		r.Flags &^= FlagBarrier
		r.Flags |= FlagOrdered
		s.accepting = false
	}
	if r.Ordered() {
		s.orderedQueued++
	}
	if !s.base.Add(r) {
		panic("block: base scheduler rejected a request")
	}
	return true
}

// Next implements Scheduler.
func (s *EpochScheduler) Next() *Request {
	r := s.base.Next()
	if r == nil {
		return nil
	}
	if r.Ordered() {
		s.orderedQueued--
		if s.orderedQueued == 0 && !s.accepting {
			// r is the last order-preserving request of the epoch: it
			// becomes the barrier (possibly reassigned from the original).
			r.Flags |= FlagBarrier
			s.reassigned++ // counted even if it lands on the original carrier
			s.epoch++
			s.epochsClosed++
			s.accepting = true
		}
	}
	return r
}
