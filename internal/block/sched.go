package block

import "repro/internal/sim"

// Scheduler is an IO scheduler: it absorbs submitted requests and yields
// them in dispatch order. Implementations are not safe for use outside the
// sim kernel's single-process discipline (none needed).
type Scheduler interface {
	Name() string
	// Add offers a request. It returns false while the scheduler is not
	// accepting (the epoch scheduler blocks admission between a barrier's
	// arrival and its reassignment); the caller must stage the request and
	// retry after Next drains the queue.
	Add(r *Request) bool
	// Next removes and returns the next request to dispatch, or nil when
	// the queue is empty (or only holds requests that may not leave yet).
	Next() *Request
	// Pending returns the number of queued requests.
	Pending() int
	// Accepting reports whether Add would currently succeed.
	Accepting() bool
}

// NOOP is the no-op scheduler: plain FIFO, no reordering. With NOOP (or an
// NVMe-style direct path) the dispatch order equals the issue order (§2.1).
type NOOP struct {
	q []*Request
}

// NewNOOP returns a NOOP scheduler.
func NewNOOP() *NOOP { return &NOOP{} }

// Name implements Scheduler.
func (s *NOOP) Name() string { return "noop" }

// Add implements Scheduler.
func (s *NOOP) Add(r *Request) bool { s.q = append(s.q, r); return true }

// Next implements Scheduler.
func (s *NOOP) Next() *Request {
	if len(s.q) == 0 {
		return nil
	}
	r := s.q[0]
	s.q = s.q[1:]
	return r
}

// Pending implements Scheduler.
func (s *NOOP) Pending() int { return len(s.q) }

// Accepting implements Scheduler.
func (s *NOOP) Accepting() bool { return true }

// Deadline approximates the kernel's deadline scheduler: reads are served
// before writes unless a write has waited past its deadline.
type Deadline struct {
	reads    []*Request
	writes   []*Request
	now      func() sim.Time
	deadline sim.Duration
}

// NewDeadline returns a Deadline scheduler; now supplies the current virtual
// time (pass kernel.Now).
func NewDeadline(now func() sim.Time, writeDeadline sim.Duration) *Deadline {
	if writeDeadline == 0 {
		writeDeadline = 5 * sim.Millisecond
	}
	return &Deadline{now: now, deadline: writeDeadline}
}

// Name implements Scheduler.
func (s *Deadline) Name() string { return "deadline" }

// Add implements Scheduler.
func (s *Deadline) Add(r *Request) bool {
	if r.Op == OpRead {
		s.reads = append(s.reads, r)
	} else {
		s.writes = append(s.writes, r)
	}
	return true
}

// Next implements Scheduler.
func (s *Deadline) Next() *Request {
	if len(s.writes) > 0 && sim.Duration(s.now()-s.writes[0].issued) > s.deadline {
		return s.popWrite()
	}
	if len(s.reads) > 0 {
		r := s.reads[0]
		s.reads = s.reads[1:]
		return r
	}
	return s.popWrite()
}

func (s *Deadline) popWrite() *Request {
	if len(s.writes) == 0 {
		return nil
	}
	r := s.writes[0]
	s.writes = s.writes[1:]
	return r
}

// Pending implements Scheduler.
func (s *Deadline) Pending() int { return len(s.reads) + len(s.writes) }

// Accepting implements Scheduler.
func (s *Deadline) Accepting() bool { return true }

// CFQ approximates the completely-fair queueing scheduler: one FIFO per
// issuing thread, drained round-robin. This is the base scheduler the paper
// builds the epoch scheduler on ("currently, the Epoch based IO scheduler is
// implemented on top of existing CFQ scheduler", §3.3).
type CFQ struct {
	queues  map[int][]*Request
	order   []int // round-robin order of PIDs with queued requests
	nextIdx int
	n       int
}

// NewCFQ returns a CFQ scheduler.
func NewCFQ() *CFQ { return &CFQ{queues: make(map[int][]*Request)} }

// Name implements Scheduler.
func (s *CFQ) Name() string { return "cfq" }

// Add implements Scheduler.
func (s *CFQ) Add(r *Request) bool {
	q, ok := s.queues[r.PID]
	if !ok || len(q) == 0 {
		s.order = append(s.order, r.PID)
	}
	s.queues[r.PID] = append(q, r)
	s.n++
	return true
}

// Next implements Scheduler.
func (s *CFQ) Next() *Request {
	for len(s.order) > 0 {
		if s.nextIdx >= len(s.order) {
			s.nextIdx = 0
		}
		pid := s.order[s.nextIdx]
		q := s.queues[pid]
		if len(q) == 0 {
			s.order = append(s.order[:s.nextIdx], s.order[s.nextIdx+1:]...)
			continue
		}
		r := q[0]
		s.queues[pid] = q[1:]
		s.n--
		if len(q) == 1 {
			s.order = append(s.order[:s.nextIdx], s.order[s.nextIdx+1:]...)
		} else {
			s.nextIdx++
		}
		return r
	}
	return nil
}

// Pending implements Scheduler.
func (s *CFQ) Pending() int { return s.n }

// Accepting implements Scheduler.
func (s *CFQ) Accepting() bool { return true }
