package block

import (
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Bounded command retry. Media faults (internal/fault) surface at the
// device interface as commands completing with an error; without a retry
// layer every transient UNC sector would propagate straight into the
// filesystem. The retrier gives the block layer the kernel's conventional
// answer — re-drive the command a bounded number of times with backoff,
// then fail the request — so upper layers (fs, jbd, kvwal) only ever see
// *hard* failures, with the retry traffic visible as metrics counters
// ("block/retries", "block/io.errors").
//
// With no RetryPolicy configured (the default everywhere), the machinery is
// entirely absent: no daemon is spawned, no counters registered, and a
// command error propagates to Request.Err on first completion.

// RetryPolicy bounds re-submission per request class. The zero value of a
// field selects its default; a nil *RetryPolicy in a layer config disables
// retry entirely.
type RetryPolicy struct {
	// ReadBudget / WriteBudget are the maximum re-submissions per request
	// of that class before the error propagates to the caller. Reads are
	// where retries pay off (read-retry voltage ladders make a repeat
	// attempt genuinely independent); writes never carry media errors in
	// this model (transient program failures retry inside the chip), so
	// the write budget exists for symmetry and future fault classes.
	ReadBudget  int
	WriteBudget int
	// Backoff is the delay before the first re-submission; each further
	// attempt multiplies it by BackoffMult (default 2).
	Backoff     sim.Duration
	BackoffMult float64
}

// DefaultRetryPolicy mirrors a conservative host stack: three read
// retries, one write retry, 100µs initial backoff doubling per attempt.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		ReadBudget:  3,
		WriteBudget: 1,
		Backoff:     100 * sim.Microsecond,
		BackoffMult: 2,
	}
}

func (p RetryPolicy) budget(op Op) int {
	switch op {
	case OpRead:
		return p.ReadBudget
	case OpWrite:
		return p.WriteBudget
	}
	return 0
}

func (p RetryPolicy) backoff(attempt int) sim.Duration {
	d := p.Backoff
	if d <= 0 {
		d = 100 * sim.Microsecond
	}
	mult := p.BackoffMult
	if mult <= 0 {
		mult = 2
	}
	for i := 1; i < attempt; i++ {
		d = d.Scale(mult)
	}
	return d
}

type retryItem struct {
	r   *Request
	due sim.Time
}

// retrier re-drives failed commands for one CmdPool. Its daemon is spawned
// lazily on the first failure, so a fault-free run — in particular every
// golden-trace comparison — never sees an extra process.
type retrier struct {
	k    *sim.Kernel
	dev  *device.Device
	pol  RetryPolicy
	pool *CmdPool

	// FIFO of requests awaiting re-submission. Exponential backoff can put
	// a later-queued item due earlier than the head; the daemon still
	// drains in queue order (the head's sleep bounds the extra delay),
	// keeping the schedule deterministic and the structure trivial.
	q       []retryItem
	cond    *sim.Cond
	running bool

	retries *metrics.Counter
	errors  *metrics.Counter
}

// EnableRetry arms the pool's bounded retry engine against dev. reg may be
// nil (counters become no-ops). Call once, before traffic.
func (pl *CmdPool) EnableRetry(k *sim.Kernel, dev *device.Device, pol RetryPolicy, reg *metrics.Registry) {
	pl.retry = &retrier{
		k: k, dev: dev, pol: pol, pool: pl,
		cond:    sim.NewCond(k),
		retries: reg.Counter("block/retries"),
		errors:  reg.Counter("block/io.errors"),
	}
}

// enqueue schedules one re-submission of r (interrupt context: no blocking).
func (rt *retrier) enqueue(r *Request) {
	rt.retries.Inc()
	rt.q = append(rt.q, retryItem{r: r, due: rt.k.Now().Add(rt.pol.backoff(r.attempts))})
	if !rt.running {
		rt.running = true
		rt.k.Spawn("block/retry", rt.daemon)
	}
	rt.cond.Broadcast()
}

func (rt *retrier) daemon(p *sim.Proc) {
	for {
		if len(rt.q) == 0 {
			rt.cond.Wait(p)
			continue
		}
		it := rt.q[0]
		rt.q = rt.q[1:]
		if now := p.Now(); it.due > now {
			p.Advance(sim.Duration(it.due - now))
		}
		// A device crash drops queued commands without completing them;
		// pending retries die the same way.
		if rt.dev.Dead() {
			return
		}
		cmd := rt.pool.Get(it.r)
		for !rt.dev.Submit(cmd) {
			if rt.dev.Dead() {
				return
			}
			rt.dev.WaitSpace(p)
		}
	}
}
