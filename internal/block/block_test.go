package block

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

func mkReq(lpa uint64, flags Flags) *Request {
	return &Request{Op: OpWrite, LPA: lpa, Data: lpa, Flags: flags}
}

func TestNOOPFIFO(t *testing.T) {
	s := NewNOOP()
	for i := 0; i < 5; i++ {
		s.Add(mkReq(uint64(i), 0))
	}
	for i := 0; i < 5; i++ {
		if r := s.Next(); r.LPA != uint64(i) {
			t.Fatalf("NOOP not FIFO: got %d at %d", r.LPA, i)
		}
	}
	if s.Next() != nil {
		t.Error("empty Next != nil")
	}
}

func TestDeadlineReadsFirst(t *testing.T) {
	now := sim.Time(0)
	s := NewDeadline(func() sim.Time { return now }, 5*sim.Millisecond)
	w := mkReq(1, 0)
	s.Add(w)
	r := &Request{Op: OpRead, LPA: 2}
	s.Add(r)
	if got := s.Next(); got.Op != OpRead {
		t.Error("read not prioritized")
	}
	if got := s.Next(); got.Op != OpWrite {
		t.Error("write lost")
	}
}

func TestDeadlineWriteExpiry(t *testing.T) {
	now := sim.Time(0)
	s := NewDeadline(func() sim.Time { return now }, 5*sim.Millisecond)
	w := mkReq(1, 0)
	w.issued = 0
	s.Add(w)
	s.Add(&Request{Op: OpRead, LPA: 2})
	now = sim.Time(10 * sim.Millisecond) // write is past deadline
	if got := s.Next(); got.Op != OpWrite {
		t.Error("expired write not prioritized over read")
	}
}

func TestCFQRoundRobin(t *testing.T) {
	s := NewCFQ()
	for pid := 1; pid <= 3; pid++ {
		for j := 0; j < 2; j++ {
			r := mkReq(uint64(pid*10+j), 0)
			r.PID = pid
			s.Add(r)
		}
	}
	var got []uint64
	for r := s.Next(); r != nil; r = s.Next() {
		got = append(got, r.LPA)
	}
	want := []uint64{10, 20, 30, 11, 21, 31}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CFQ order = %v, want %v", got, want)
		}
	}
	if s.Pending() != 0 {
		t.Error("pending != 0 after drain")
	}
}

func TestEpochBarrierReassignment(t *testing.T) {
	// Reproduces the Fig. 5 scenario: ordered w1,w2 then barrier w4 from
	// fsync; orderless w3 from pdflush; w4 enters as barrier; queue closes;
	// the last ordered request out carries the barrier.
	s := NewEpochScheduler(NewNOOP())
	w1 := mkReq(1, FlagOrdered)
	w2 := mkReq(2, FlagOrdered)
	w3 := mkReq(3, 0) // orderless
	w4 := mkReq(4, FlagOrdered|FlagBarrier)
	for _, r := range []*Request{w1, w2, w3} {
		if !s.Add(r) {
			t.Fatal("admission refused before barrier")
		}
	}
	if !s.Add(w4) {
		t.Fatal("barrier request refused")
	}
	if s.Accepting() {
		t.Error("still accepting after barrier entered")
	}
	w5 := mkReq(5, 0)
	if s.Add(w5) {
		t.Error("accepted request while epoch closed")
	}
	// Drain: NOOP yields w1,w2,w3,w4. The last *ordered* one (w4 here)
	// carries the barrier out.
	var barrierLPA uint64
	for r := s.Next(); r != nil; r = s.Next() {
		if r.Flags.Has(FlagBarrier) {
			barrierLPA = r.LPA
		}
	}
	if barrierLPA != 4 {
		t.Errorf("barrier on LPA %d, want 4", barrierLPA)
	}
	if !s.Accepting() {
		t.Error("not accepting after epoch drained")
	}
	if s.CurrentEpoch() != 1 {
		t.Errorf("epoch = %d, want 1", s.CurrentEpoch())
	}
}

func TestEpochBarrierMovesToLastOrdered(t *testing.T) {
	// With a CFQ base, the barrier-carrying request can leave early; the
	// tag must move to whichever ordered request leaves last (w1 in Fig. 5).
	s := NewEpochScheduler(NewCFQ())
	w1 := mkReq(1, FlagOrdered)
	w1.PID = 1
	w2 := mkReq(2, FlagOrdered)
	w2.PID = 1
	w4 := mkReq(4, FlagOrdered|FlagBarrier)
	w4.PID = 2
	s.Add(w1)
	s.Add(w2)
	s.Add(w4)
	// CFQ round-robin yields w1 (pid1), w4 (pid2), w2 (pid1): the barrier
	// carrier w4 leaves while ordered w2 is still queued.
	got := []*Request{s.Next(), s.Next(), s.Next()}
	if got[0].LPA != 1 || got[1].LPA != 4 || got[2].LPA != 2 {
		t.Fatalf("unexpected CFQ order: %d, %d, %d", got[0].LPA, got[1].LPA, got[2].LPA)
	}
	if got[1].Flags.Has(FlagBarrier) {
		t.Error("barrier left on original carrier despite later ordered request")
	}
	if !got[2].Flags.Has(FlagBarrier) {
		t.Error("barrier not reassigned to the last ordered request out")
	}
}

func TestEpochOrderlessFloatFree(t *testing.T) {
	// Orderless requests never carry or close epochs.
	s := NewEpochScheduler(NewNOOP())
	s.Add(mkReq(1, 0))
	s.Add(mkReq(2, FlagOrdered|FlagBarrier))
	s.Add(mkReq(3, 0)) // hmm: admission is closed; Add must fail
	if s.Accepting() {
		t.Fatal("epoch should be closed")
	}
	r1 := s.Next() // orderless w1
	if r1.Flags.Has(FlagBarrier) {
		t.Error("orderless request got the barrier")
	}
	r2 := s.Next()
	if !r2.Flags.Has(FlagBarrier) || r2.LPA != 2 {
		t.Errorf("barrier on %d", r2.LPA)
	}
}

func TestEpochSchedulerPropertyNoCrossEpochDispatch(t *testing.T) {
	// Property: the dispatch sequence never emits an ordered request of
	// epoch k+1 before the barrier of epoch k, for random workloads.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		s := NewEpochScheduler(NewCFQ())
		var staged []*Request
		submit := func(r *Request) {
			if len(staged) > 0 || !s.Add(r) {
				staged = append(staged, r)
			}
		}
		feed := func() {
			for len(staged) > 0 && s.Accepting() {
				if !s.Add(staged[0]) {
					break
				}
				staged = staged[1:]
			}
		}
		n := 30 + rng.Intn(40)
		for i := 0; i < n; i++ {
			fl := Flags(0)
			switch rng.Intn(4) {
			case 0:
				fl = FlagOrdered
			case 1:
				fl = FlagOrdered | FlagBarrier
			}
			r := mkReq(uint64(i), fl)
			r.PID = rng.Intn(4)
			submit(r)
			feed()
		}
		// Drain fully.
		lastEpoch := uint64(0)
		barrierSeen := map[uint64]bool{}
		for {
			feed()
			r := s.Next()
			if r == nil {
				if len(staged) == 0 {
					break
				}
				continue
			}
			if !r.Ordered() {
				continue
			}
			if r.Epoch() < lastEpoch {
				t.Fatalf("trial %d: ordered request of epoch %d after epoch %d started", trial, r.Epoch(), lastEpoch)
			}
			if r.Epoch() > lastEpoch {
				if !barrierSeen[lastEpoch] && lastEpoch != r.Epoch() {
					// Epoch can only advance after its barrier was emitted.
					t.Fatalf("trial %d: epoch advanced to %d without barrier of %d", trial, r.Epoch(), lastEpoch)
				}
				lastEpoch = r.Epoch()
			}
			if r.Flags.Has(FlagBarrier) {
				barrierSeen[r.Epoch()] = true
			}
		}
	}
}

// --- integrated layer tests (scheduler + dispatcher + device) ---

func newStack(k *sim.Kernel) (*Layer, *device.Device) {
	cfg := device.UFS()
	cfg.QueueDepth = 8
	cfg.DMAPerPage = 10 * sim.Microsecond
	cfg.CmdOverhead = 2 * sim.Microsecond
	d := device.New(k, cfg)
	l := NewLayer(k, d, NewEpochScheduler(NewNOOP()), LayerConfig{
		DispatchOverhead: sim.Microsecond,
		Trace:            true,
	})
	return l, d
}

func TestLayerWriteCompletion(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	l, _ := newStack(k)
	k.Spawn("host", func(p *sim.Proc) {
		r := mkReq(1, 0)
		l.SubmitAndWait(p, r)
		if !r.Completed() {
			t.Error("request not completed")
		}
	})
	k.Run()
	if l.Stats().Dispatched != 1 || l.Stats().Completed != 1 {
		t.Errorf("stats = %+v", l.Stats())
	}
}

func TestLayerBarrierBecomesOrderedCommand(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	l, d := newStack(k)
	k.Spawn("host", func(p *sim.Proc) {
		l.Submit(p, mkReq(1, FlagOrdered))
		l.Submit(p, mkReq(2, FlagOrdered|FlagBarrier))
		l.Submit(p, mkReq(3, FlagOrdered))
	})
	k.Run()
	if d.Stats().Barriers != 1 {
		t.Errorf("device barrier writes = %d, want 1", d.Stats().Barriers)
	}
	if d.CurEpoch() != 1 {
		t.Errorf("device epoch = %d", d.CurEpoch())
	}
	// Trace shows the barrier dispatched between epochs.
	log := l.DispatchLog()
	if len(log) != 3 {
		t.Fatalf("dispatch log %v", log)
	}
	if !log[1].Flags.Has(FlagBarrier) {
		t.Errorf("barrier not in middle of dispatch: %+v", log)
	}
	if log[2].Epoch != 1 {
		t.Errorf("third request epoch = %d, want 1", log[2].Epoch)
	}
}

func TestLayerTransferOrderAcrossBarrier(t *testing.T) {
	// D = C across the barrier: all epoch-0 writes complete transfer before
	// the barrier, the barrier before all epoch-1 writes.
	k := sim.NewKernel()
	defer k.Close()
	l, _ := newStack(k)
	var completions []uint64
	mk := func(lpa uint64, flags Flags) *Request {
		r := mkReq(lpa, flags)
		r.OnComplete = func(at sim.Time, rr *Request) { completions = append(completions, lpa) }
		return r
	}
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			l.Submit(p, mk(uint64(i), FlagOrdered))
		}
		l.Submit(p, mk(100, FlagOrdered|FlagBarrier))
		for i := 5; i < 9; i++ {
			l.Submit(p, mk(uint64(i), FlagOrdered))
		}
	})
	k.Run()
	if len(completions) != 9 {
		t.Fatalf("completions = %v", completions)
	}
	barrierPos := -1
	for i, lpa := range completions {
		if lpa == 100 {
			barrierPos = i
		}
	}
	if barrierPos == -1 {
		t.Fatal("barrier never completed")
	}
	for i, lpa := range completions {
		if i < barrierPos && lpa >= 5 {
			t.Errorf("epoch-1 write %d transferred before barrier", lpa)
		}
		if i > barrierPos && lpa < 4 {
			t.Errorf("epoch-0 write %d transferred after barrier", lpa)
		}
	}
}

func TestLayerFlush(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	l, d := newStack(k)
	k.Spawn("host", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			l.Submit(p, mkReq(uint64(i), 0))
		}
		l.Flush(p)
		for i := 0; i < 4; i++ {
			if _, ok := d.FTL().DurableData(uint64(i)); !ok {
				t.Errorf("page %d not durable after block-layer flush", i)
			}
		}
	})
	k.Run()
}

func TestLayerStagingUnderClosedEpoch(t *testing.T) {
	// Requests submitted while the epoch is closed are staged, then flow.
	k := sim.NewKernel()
	defer k.Close()
	l, _ := newStack(k)
	done := 0
	k.Spawn("host", func(p *sim.Proc) {
		var last *Request
		for i := 0; i < 20; i++ {
			fl := FlagOrdered
			if i%5 == 4 {
				fl |= FlagBarrier
			}
			r := mkReq(uint64(i), fl)
			r.OnComplete = func(at sim.Time, rr *Request) { done++ }
			l.Submit(p, r)
			last = r
		}
		last.Wait(p)
	})
	k.Run()
	if done != 20 {
		t.Errorf("completed %d/20 with staged epochs", done)
	}
	if l.Stats().StagedPeak == 0 {
		t.Error("expected some staging under closed epochs")
	}
}

func TestLayerReadRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	l, _ := newStack(k)
	k.Spawn("host", func(p *sim.Proc) {
		l.SubmitAndWait(p, &Request{Op: OpWrite, LPA: 42, Data: "v"})
		r := &Request{Op: OpRead, LPA: 42}
		l.SubmitAndWait(p, r)
		if r.Data != "v" {
			t.Errorf("read = %v", r.Data)
		}
	})
	k.Run()
}

func TestFlagsHas(t *testing.T) {
	f := FlagOrdered | FlagBarrier
	if !f.Has(FlagOrdered) || !f.Has(FlagBarrier) || f.Has(FlagFUA) {
		t.Error("flag logic")
	}
	if OpWrite.String() != "write" || OpRead.String() != "read" || OpFlush.String() != "flush" {
		t.Error("op strings")
	}
}
