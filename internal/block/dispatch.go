package block

import (
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// LayerConfig tunes the block layer.
type LayerConfig struct {
	// DispatchOverhead is the host-side cost of dispatching one command
	// (the paper's tD).
	DispatchOverhead sim.Duration
	// QueueLimit bounds the requests buffered in the layer (scheduler +
	// staging), like the kernel's nr_requests; submitters block beyond it.
	// 0 means the default of 128.
	QueueLimit int
	// BarrierAsCommand dispatches epoch boundaries as standalone barrier
	// commands instead of write flags — the §3.2 alternative the paper
	// rejects. Useful for the ablation benchmark.
	BarrierAsCommand bool
	// Trace records the dispatch order for verification.
	Trace bool
	// Retry, when non-nil, arms bounded per-class command retry with
	// backoff (see RetryPolicy). Nil — the default — propagates device
	// errors to Request.Err on first completion.
	Retry *RetryPolicy
	// Metrics resolves the registry for the retry counters; nil falls back
	// to the process-wide live registry.
	Metrics *metrics.Registry
}

// DispatchRecord is one entry of the dispatch trace.
type DispatchRecord struct {
	At     sim.Time
	LPA    uint64
	Op     Op
	Flags  Flags
	Epoch  uint64
	Stream uint64
	// HWQueue is the hardware dispatch queue that issued the command (always
	// 0 on the single-queue Layer).
	HWQueue int
}

// Submitter is the request-submission surface a filesystem stack builds on.
// It is satisfied by the single-queue *Layer and by the multi-queue
// blkmq.MQ front-end.
type Submitter interface {
	// Submit queues a request without waiting for it.
	Submit(p *sim.Proc, r *Request)
	// SubmitAndWait submits r and blocks until completion (Wait-on-Transfer).
	SubmitAndWait(p *sim.Proc, r *Request)
	// Flush issues a standalone cache flush and waits for it.
	Flush(p *sim.Proc)
	// FlushT is Flush carrying a trace context: the flush command's
	// completion is the real durability point on transfer-and-flush
	// stacks, so the context rides it into the device.
	FlushT(p *sim.Proc, tc reqtrace.Ctx)
	// SubmitOrPark is the handler analogue of Submit — one congestion Mesa
	// iteration: it either admits r (true) or parks the run-to-completion
	// handler h on the congestion condition exactly where Submit would have
	// blocked (false; re-invoke with the same request on the next
	// activation).
	SubmitOrPark(h *sim.Proc, r *Request) bool
}

// LayerStats are cumulative block-layer statistics.
type LayerStats struct {
	Submitted  int64
	Dispatched int64
	Completed  int64
	StagedPeak int // high-water mark of requests parked behind a closed epoch
}

// Layer is the order-preserving block device layer: submission front-end,
// an IO scheduler, and the dispatch daemon feeding the device. The daemon
// implements order-preserving dispatch (§3.4): barrier writes become
// ordered-priority barrier commands and the caller is never blocked on a
// transfer.
type Layer struct {
	k     *sim.Kernel
	dev   *device.Device
	sched Scheduler
	cfg   LayerConfig

	staged  []*Request
	kick    *sim.Cond
	congest *sim.Cond

	cmds    *CmdPool
	flushes ReqPool

	trace []DispatchRecord
	stats LayerStats
}

// NewLayer builds a block layer over dev using sched and starts its
// dispatch daemon.
func NewLayer(k *sim.Kernel, dev *device.Device, sched Scheduler, cfg LayerConfig) *Layer {
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 128
	}
	l := &Layer{k: k, dev: dev, sched: sched, cfg: cfg,
		kick: sim.NewCond(k), congest: sim.NewCond(k)}
	l.cmds = NewCmdPool(func(sim.Time, *Request) { l.stats.Completed++ })
	if cfg.Retry != nil {
		l.cmds.EnableRetry(k, dev, *cfg.Retry, metrics.Resolve(cfg.Metrics))
	}
	k.Spawn("block/dispatch", l.dispatcher)
	return l
}

// queued returns the number of requests held in the layer.
func (l *Layer) queued() int { return l.sched.Pending() + len(l.staged) }

// Scheduler returns the layer's IO scheduler.
func (l *Layer) Scheduler() Scheduler { return l.sched }

// Device returns the underlying device.
func (l *Layer) Device() *device.Device { return l.dev }

// Stats returns cumulative statistics.
func (l *Layer) Stats() LayerStats { return l.stats }

// DispatchLog returns the recorded dispatch order (requires cfg.Trace).
func (l *Layer) DispatchLog() []DispatchRecord { return l.trace }

// Submit queues a request. Requests arriving while the epoch scheduler has
// admission closed are staged and fed in submission order once it reopens.
// When the layer holds QueueLimit requests (nr_requests congestion), Submit
// blocks the caller until the dispatcher drains — the only situation in
// which the barrier-enabled submission path blocks.
func (l *Layer) Submit(p *sim.Proc, r *Request) {
	for l.queued() >= l.cfg.QueueLimit {
		l.congest.Wait(p)
	}
	l.admit(r)
}

// SubmitOrPark is the handler-path Submit: one congestion Mesa iteration.
func (l *Layer) SubmitOrPark(h *sim.Proc, r *Request) bool {
	if l.queued() >= l.cfg.QueueLimit {
		l.congest.Park(h)
		return false
	}
	l.admit(r)
	return true
}

func (l *Layer) admit(r *Request) {
	r.Bind(l.k, l.k.Now())
	l.stats.Submitted++
	if len(l.staged) > 0 || !l.sched.Add(r) {
		l.staged = append(l.staged, r)
		if len(l.staged) > l.stats.StagedPeak {
			l.stats.StagedPeak = len(l.staged)
		}
	}
	l.kick.Broadcast()
}

// SubmitAndWait submits r and blocks until it completes (Wait-on-Transfer;
// the legacy stack's ordering primitive).
func (l *Layer) SubmitAndWait(p *sim.Proc, r *Request) {
	l.Submit(p, r)
	r.Wait(p)
}

// Flush issues a standalone cache-flush request and waits for it. The
// request is pooled: after SubmitAndWait returns nothing else can hold it.
func (l *Layer) Flush(p *sim.Proc) { l.FlushT(p, reqtrace.Ctx{}) }

// FlushT is Flush with a trace context attached to the flush request.
func (l *Layer) FlushT(p *sim.Proc, tc reqtrace.Ctx) {
	r := l.flushes.Get()
	r.Op = OpFlush
	r.Trace = tc
	l.SubmitAndWait(p, r)
	l.flushes.Put(r)
}

func (l *Layer) feedStaged() {
	for len(l.staged) > 0 && l.sched.Accepting() {
		r := l.staged[0]
		if !l.sched.Add(r) {
			break
		}
		l.staged = l.staged[1:]
	}
}

func (l *Layer) dispatcher(p *sim.Proc) {
	for {
		l.feedStaged()
		r := l.sched.Next()
		if r == nil {
			l.kick.Wait(p)
			continue
		}
		if l.cfg.DispatchOverhead > 0 {
			p.Advance(l.cfg.DispatchOverhead)
		}
		if l.cfg.Trace {
			l.trace = append(l.trace, DispatchRecord{
				At: p.Now(), LPA: r.LPA, Op: r.Op, Flags: r.Flags, Epoch: r.epoch,
				Stream: r.Stream,
			})
		}
		r.Trace.StampChain(reqtrace.StageBlockDispatch, p.Now())
		cmd := l.cmds.Get(r)
		var trailer *device.Command
		if l.cfg.BarrierAsCommand && cmd.Kind == device.CmdWrite && cmd.Barrier {
			// Strip the flag; an explicit barrier command follows the write,
			// paying one more queue slot and dispatch.
			cmd.Barrier = false
			trailer = &device.Command{Kind: device.CmdBarrier, Prio: device.PrioOrdered}
		}
		for !l.dev.Submit(cmd) {
			if l.dev.Dead() {
				return
			}
			l.dev.WaitSpace(p)
		}
		l.stats.Dispatched++
		if trailer != nil {
			if l.cfg.DispatchOverhead > 0 {
				p.Advance(l.cfg.DispatchOverhead)
			}
			for !l.dev.Submit(trailer) {
				if l.dev.Dead() {
					return
				}
				l.dev.WaitSpace(p)
			}
			l.stats.Dispatched++
		}
		l.congest.Broadcast()
	}
}

// ToCommand converts the request into its device command under
// order-preserving dispatch (§3.4): barrier writes and flushes carry ordered
// priority, FUA/PreFlush map to their command fields, and the command
// inherits the request's stream so device-level ordering scopes correctly.
// done, if non-nil, fires at completion after the request's own bookkeeping
// (waiter wake-ups, OnComplete). The dispatch daemons use the allocation-free
// CmdPool.Get, which mirrors this mapping; ToCommand remains the one-shot
// form for callers outside the hot path.
func (r *Request) ToCommand(done func(at sim.Time, r *Request)) *device.Command {
	c := &device.Command{
		LPA:    r.LPA,
		Data:   r.Data,
		Stream: r.Stream,
		Trace:  r.Trace,
		Done: func(at sim.Time, cc *device.Command) {
			r.Err = cc.Err // one-shot path: no retry, straight propagation
			r.complete(at)
			if done != nil {
				done(at, r)
			}
		},
	}
	switch r.Op {
	case OpWrite:
		c.Kind = device.CmdWrite
		c.FUA = r.Flags.Has(FlagFUA)
		c.PreFlush = r.Flags.Has(FlagFlush)
		c.Barrier = r.Flags.Has(FlagBarrier)
		if c.Barrier {
			// The core of order-preserving dispatch: the barrier write is
			// sent with ordered priority, so the device transfers everything
			// before it first and everything after it later (§3.4).
			c.Prio = device.PrioOrdered
		}
	case OpRead:
		c.Kind = device.CmdRead
		out := c.Done
		c.Done = func(at sim.Time, cc *device.Command) {
			r.Data = cc.Data
			out(at, cc)
		}
	case OpFlush:
		c.Kind = device.CmdFlush
		// Ordered, not head-of-queue: the flush must not overtake writes
		// that are still queued in the device, so it drains everything
		// received before it into the cache first, then flushes.
		c.Prio = device.PrioOrdered
	}
	return c
}
