// Package block implements the order-preserving block device layer of the
// paper (§3): request flags REQ_ORDERED and REQ_BARRIER, Epoch-based IO
// scheduling with barrier reassignment on top of conventional schedulers
// (NOOP, Deadline, CFQ), and a dispatch module that maps barrier writes to
// SCSI "ordered" priority commands so transfer order is preserved without
// Wait-on-Transfer.
package block

import (
	"repro/internal/reqtrace"
	"repro/internal/sim"
)

// Flags carry the ordering attributes of a request.
type Flags uint32

// Request flags mirroring the paper's additions to the kernel block layer.
const (
	// FlagOrdered marks an order-preserving request (REQ_ORDERED): it may be
	// reordered freely only within its epoch.
	FlagOrdered Flags = 1 << iota
	// FlagBarrier marks a barrier request (REQ_BARRIER): it delimits an
	// epoch and is dispatched as a barrier write with ordered priority.
	FlagBarrier
	// FlagFlush asks the device to flush its writeback cache before
	// servicing the request (REQ_FLUSH).
	FlagFlush
	// FlagFUA forces the block to the storage surface before completion
	// (REQ_FUA).
	FlagFUA
	// FlagBackground marks best-effort background writeback (REQ_BACKGROUND):
	// no caller is waiting on the request and it carries no ordering promise.
	// The multi-queue layer scatters such requests onto data streams so they
	// never sit in front of foreground traffic; it is purely a host-side
	// hint and never reaches the device.
	FlagBackground
)

// Has reports whether all bits in f2 are set.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// Op is the request operation.
type Op int

// Request operations.
const (
	OpWrite Op = iota
	OpRead
	OpFlush
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpFlush:
		return "flush"
	}
	return "invalid"
}

// Request is one block-layer IO request for a single 4KB page.
type Request struct {
	Op    Op
	LPA   uint64
	Data  any
	Flags Flags
	// PID identifies the issuing thread; the CFQ scheduler keeps one queue
	// per PID.
	PID int
	// Stream identifies the ordering domain of the request (§8's per-stream
	// barriers). Ordering and barrier semantics hold only among requests of
	// the same stream; requests of different streams are mutually orderless.
	// The single-queue Layer ignores it (everything rides stream 0); the
	// multi-queue layer (internal/blkmq) keys epochs and device-level command
	// ordering on it.
	Stream uint64

	// Trace is the request-scoped causal trace context (zero: tracing
	// off). The layer stamps StageBlockQueue at Bind and
	// StageBlockDispatch when the dispatcher hands the request to the
	// device; the context rides into the device command so service
	// start/done land on the same trace.
	Trace reqtrace.Ctx

	// OnComplete, if set, fires at IO completion (interrupt context: it must
	// not block; use it to Resume waiting processes or tally counters).
	OnComplete func(at sim.Time, r *Request)

	// Err reports a hard IO failure, valid once the request completed: the
	// device returned an error (fault.ErrUNC on an uncorrectable sector)
	// and the layer's retry budget — if any — is exhausted. Callers that
	// wait on requests must check it before trusting Data.
	Err error

	issued    sim.Time
	completed bool
	attempts  int    // re-submissions consumed (bounded by RetryPolicy)
	epoch     uint64 // set by the epoch scheduler
	waiters   []*sim.Proc
	k         *sim.Kernel
}

// OrderStreamBase is the first stream ID of the order-stream range: the
// per-shard ordering domains a multi-tenant filesystem stack claims on a
// multi-queue device (one journal+foreground stream per shard, see
// jbd.Config.Stream). The range sits far above the data streams the
// multi-queue layer's background spreading uses (1..DataStreams), so the
// two can never collide; and because OrderStreamBase is a multiple of
// every realistic hardware-queue count, OrderStream(i) still lands on
// hardware queue i mod M — shard ordering domains spread across dispatch
// queues exactly like shard data streams do.
const OrderStreamBase uint64 = 1 << 32

// OrderStream returns the stream ID of order domain i (i >= 0). Domain 0
// is stream 0 itself — the default global ordering domain — so
// single-shard stacks are unchanged.
func OrderStream(i int) uint64 {
	if i == 0 {
		return 0
	}
	return OrderStreamBase + uint64(i)
}

// IsOrderStream reports whether id names a non-default order domain.
func IsOrderStream(id uint64) bool { return id >= OrderStreamBase }

// Ordered reports whether the request is order-preserving (ordered or
// barrier).
func (r *Request) Ordered() bool { return r.Flags.Has(FlagOrdered) || r.Flags.Has(FlagBarrier) }

// Completed reports whether the request has finished.
func (r *Request) Completed() bool { return r.completed }

// Epoch returns the epoch assigned by the scheduler.
func (r *Request) Epoch() uint64 { return r.epoch }

// IssuedAt returns the submission time.
func (r *Request) IssuedAt() sim.Time { return r.issued }

// Bind attaches the request to kernel k and stamps its submission time.
// Submission front-ends (the single-queue Layer, the multi-queue blkmq.MQ)
// call it exactly once when the request enters the layer.
func (r *Request) Bind(k *sim.Kernel, at sim.Time) {
	r.k = k
	r.issued = at
	r.Err = nil
	r.attempts = 0
	r.Trace.StampChain(reqtrace.StageBlockQueue, at)
}

// Wait blocks the calling process until the request completes. This is the
// Wait-on-Transfer primitive of the legacy stack (§2.2): callers in the
// barrier-enabled stack should rarely need it.
func (r *Request) Wait(p *sim.Proc) {
	for !r.completed {
		r.waiters = append(r.waiters, p)
		p.Suspend()
	}
}

// WaitOrPark is the handler analogue of Wait — one Mesa iteration: true if
// the request already completed, otherwise the run-to-completion handler h
// joins the waiter list (woken by complete) and is left parked.
func (r *Request) WaitOrPark(h *sim.Proc) bool {
	if r.completed {
		return true
	}
	r.waiters = append(r.waiters, h)
	h.Park()
	return false
}

// complete marks the request done and wakes waiters. Called by the
// dispatcher from device completion context.
func (r *Request) complete(at sim.Time) {
	r.completed = true
	ws := r.waiters
	r.waiters = nil
	for _, w := range ws {
		r.k.Resume(w)
	}
	if r.OnComplete != nil {
		r.OnComplete(at, r)
	}
}
