package block

import (
	"repro/internal/device"
	"repro/internal/sim"
)

// Kernel-owned free lists for the per-command allocations of the dispatch
// hot path. The simulation kernel runs exactly one process at a time, so
// the pools need no locking and no sync.Pool machinery: a plain LIFO slice
// is both faster and deterministic.

// CmdPool recycles device commands together with their completion plumbing.
// Each pooled entry binds its Done closure once, at allocation, so a
// steady-state dispatch allocates neither the command nor a closure.
type CmdPool struct {
	free   []*cmdCtx
	onDone func(at sim.Time, r *Request)
	retry  *retrier // nil unless EnableRetry armed bounded retry
}

type cmdCtx struct {
	pool *CmdPool
	r    *Request
	cmd  device.Command
}

// NewCmdPool returns a pool whose commands invoke onDone (statistics,
// trace hooks) after the owning request completes.
func NewCmdPool(onDone func(at sim.Time, r *Request)) *CmdPool {
	return &CmdPool{onDone: onDone}
}

// Get builds the device command for r under order-preserving dispatch,
// exactly as Request.ToCommand does, but from the free list. The command
// returns to the pool when it completes; commands dropped by a device crash
// simply fall out of the pool.
func (pl *CmdPool) Get(r *Request) *device.Command {
	var c *cmdCtx
	if n := len(pl.free); n > 0 {
		c = pl.free[n-1]
		pl.free = pl.free[:n-1]
	} else {
		c = &cmdCtx{pool: pl}
		c.cmd.Done = c.done // one bound closure per pooled ctx, ever
	}
	c.r = r
	cmd := &c.cmd
	cmd.LPA, cmd.Data, cmd.Stream = r.LPA, r.Data, r.Stream
	cmd.Trace = r.Trace
	cmd.Kind, cmd.Prio = device.CmdWrite, device.PrioSimple
	cmd.FUA, cmd.PreFlush, cmd.Barrier = false, false, false
	switch r.Op {
	case OpWrite:
		cmd.FUA = r.Flags.Has(FlagFUA)
		cmd.PreFlush = r.Flags.Has(FlagFlush)
		cmd.Barrier = r.Flags.Has(FlagBarrier)
		if cmd.Barrier {
			// Order-preserving dispatch: the barrier write carries ordered
			// priority (§3.4).
			cmd.Prio = device.PrioOrdered
		}
	case OpRead:
		cmd.Kind = device.CmdRead
	case OpFlush:
		cmd.Kind = device.CmdFlush
		// Ordered, not head-of-queue: the flush must drain everything
		// received before it into the cache first, then flush.
		cmd.Prio = device.PrioOrdered
	}
	return cmd
}

func (c *cmdCtx) done(at sim.Time, cc *device.Command) {
	r := c.r
	pl := c.pool
	data := cc.Data
	c.r = nil
	c.cmd.Data = nil
	pl.free = append(pl.free, c)
	if cc.Err != nil {
		if rt := pl.retry; rt != nil && r.attempts < rt.pol.budget(r.Op) {
			// Within budget: re-drive the command after backoff instead of
			// completing the request. The ctx is already recycled; the
			// retry daemon builds a fresh command at submission time.
			r.attempts++
			rt.enqueue(r)
			return
		}
		// No retry configured or budget exhausted: a hard failure.
		r.Err = cc.Err
		if rt := pl.retry; rt != nil {
			rt.errors.Inc()
		}
	}
	if r.Op == OpRead {
		r.Data = data
	}
	r.complete(at)
	if pl.onDone != nil {
		pl.onDone(at, r)
	}
}

// ReqPool recycles block requests whose ownership is unambiguous: journal
// writes released after their commit wait, standalone flushes released
// after SubmitAndWait. Requests that outlive their completion in caller
// state (ordered-data dependencies, writeback plans) are never pooled.
type ReqPool struct {
	free []*Request
}

// Get returns a zeroed request.
func (pl *ReqPool) Get() *Request {
	if n := len(pl.free); n > 0 {
		r := pl.free[n-1]
		pl.free = pl.free[:n-1]
		return r
	}
	return &Request{}
}

// Put recycles r. The caller must guarantee no other component still holds
// the pointer.
func (pl *ReqPool) Put(r *Request) {
	*r = Request{waiters: r.waiters[:0]}
	pl.free = append(pl.free, r)
}
