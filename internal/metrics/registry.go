package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Gauge is an instantaneous level: cache occupancy, queue depth, checkpoint
// backlog. Like Counter it is atomic (live readers) and nil-safe (disabled
// layers hold nil gauges and pay one branch per update).
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge returns a zeroed gauge labelled name.
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the gauge label.
func (g *Gauge) Name() string { return g.name }

// Hist is a lock-free log2-bucket histogram for values a live reader must be
// able to summarize mid-run (group-commit sizes, latencies in ns). Bucket i
// holds values whose bit length is i, so quantiles are exact to a factor of
// two — enough for live stats; exact percentiles stay with LatencyRecorder.
type Hist struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [65]atomic.Int64
}

// NewHist returns an empty histogram labelled name.
func NewHist(name string) *Hist { return &Hist{name: name} }

// Observe adds one value. Negative values clamp to zero.
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Hist) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observation, or 0 with no observations.
func (h *Hist) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// within the bucket holding the q·count-th observation. Bucket i (i >= 1)
// spans [2^(i-1), 2^i−1] — observations are assumed uniform across it, so the
// estimate is lo + (hi−lo)·pos/inBucket where pos is the rank's position
// among the bucket's observations; pos = inBucket recovers the old
// bucket-top upper bound, so interpolation only tightens the answer. The top
// is clamped by the observed max (the last bucket is typically occupied far
// below its power-of-two ceiling). Bucket 0 holds only zeros. 0 with no
// observations.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		inBucket := h.buckets[i].Load()
		if seen+inBucket >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(i-1))
			hi := float64(uint64(1)<<uint(i)) - 1
			if m := float64(h.max.Load()); m < hi {
				hi = m
			}
			if hi < lo {
				return hi
			}
			pos := float64(rank - seen)
			return lo + (hi-lo)*pos/float64(inBucket)
		}
		seen += inBucket
	}
	return float64(h.max.Load())
}

// Name returns the histogram label.
func (h *Hist) Name() string { return h.name }

// Registry is the stack-wide instrument namespace: every layer get-or-creates
// its counters/gauges/histograms by slash-separated name ("device/flushes",
// "jbd/commits", "sim/dispatch.handler"). Instruments are shared by name, so
// the cells of a parallel sweep running many kernels against one registry
// aggregate — which is exactly what the live-stats reader wants to watch.
//
// All methods are nil-safe: a nil *Registry hands out nil instruments, whose
// update methods are no-ops, so the disabled path costs one branch per event
// and no layer needs its own "metrics on?" flag.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	ks       *sim.KernelStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// Counter get-or-creates the named counter; nil from a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = NewCounter(name)
		r.counters[name] = c
	}
	return c
}

// Gauge get-or-creates the named gauge; nil from a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = NewGauge(name)
		r.gauges[name] = g
	}
	return g
}

// Hist get-or-creates the named histogram; nil from a nil registry.
func (r *Registry) Hist(name string) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHist(name)
		r.hists[name] = h
	}
	return h
}

// KernelStats returns the registry's shared sim-kernel stats block, creating
// it on first use. Every kernel attached to this registry adds into the same
// block (sim cannot import metrics, so the counters live in sim and the
// registry adopts them). Nil from a nil registry.
func (r *Registry) KernelStats() *sim.KernelStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ks == nil {
		r.ks = &sim.KernelStats{}
	}
	return r.ks
}

// Sample is one snapshot row.
type Sample struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter", "gauge", "hist"
	Value float64 `json:"value"`
}

// Snapshot returns a consistent-enough view of every instrument, sorted by
// name: counters and gauges as single rows, histograms expanded into
// .count/.mean/.p50/.p99/.max rows, and the adopted kernel stats as sim/*
// counters. Safe to call from any goroutine while the simulation runs —
// that is the whole point (live stats, the -race satellite test).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+5*len(r.hists)+8)
	for _, c := range r.counters {
		out = append(out, Sample{Name: c.name, Kind: "counter", Value: float64(c.Value())})
	}
	for _, g := range r.gauges {
		out = append(out, Sample{Name: g.name, Kind: "gauge", Value: float64(g.Value())})
	}
	for _, h := range r.hists {
		out = append(out,
			Sample{Name: h.name + ".count", Kind: "hist", Value: float64(h.Count())},
			Sample{Name: h.name + ".mean", Kind: "hist", Value: h.Mean()},
			Sample{Name: h.name + ".p50", Kind: "hist", Value: h.Quantile(0.50)},
			Sample{Name: h.name + ".p99", Kind: "hist", Value: h.Quantile(0.99)},
			Sample{Name: h.name + ".max", Kind: "hist", Value: float64(h.Max())},
		)
	}
	ks := r.ks
	r.mu.Unlock()
	if ks != nil {
		out = append(out,
			Sample{Name: "sim/dispatch.handler", Kind: "counter", Value: float64(ks.HandlerDispatches.Load())},
			Sample{Name: "sim/dispatch.goroutine", Kind: "counter", Value: float64(ks.GoroutineDispatches.Load())},
			Sample{Name: "sim/events.stale", Kind: "counter", Value: float64(ks.StaleEvents.Load())},
			Sample{Name: "sim/spawns.proc", Kind: "counter", Value: float64(ks.Spawns.Load())},
			Sample{Name: "sim/spawns.handler", Kind: "counter", Value: float64(ks.HandlerSpawns.Load())},
			Sample{Name: "sim/pool.hits", Kind: "counter", Value: float64(ks.PoolHits.Load())},
			Sample{Name: "sim/pool.misses", Kind: "counter", Value: float64(ks.PoolMisses.Load())},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// live is the process-wide default registry. Layers resolve their optional
// explicit registry against it, so `repro -live` can observe a whole sweep
// by installing one registry instead of threading it through every
// experiment signature.
var live atomic.Pointer[Registry]

// SetLive installs r as the process-wide default registry (nil to disable).
func SetLive(r *Registry) { live.Store(r) }

// Live returns the process-wide default registry, or nil.
func Live() *Registry { return live.Load() }

// Resolve returns explicit if non-nil, else the live registry (may be nil).
func Resolve(explicit *Registry) *Registry {
	if explicit != nil {
		return explicit
	}
	return live.Load()
}
