package metrics

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Point is one (time, value) observation.
type Point struct {
	At    sim.Time
	Value float64
}

// Series records a step function over virtual time, e.g. the device command
// queue depth used in the paper's Figs. 10 and 12. Record only stores
// transitions, so an idle queue costs nothing.
type Series struct {
	name   string
	points []Point
}

// NewSeries returns an empty series labelled name.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series label.
func (s *Series) Name() string { return s.name }

// Record appends an observation; consecutive equal values are coalesced.
func (s *Series) Record(at sim.Time, v float64) {
	if n := len(s.points); n > 0 && s.points[n-1].Value == v {
		return
	}
	s.points = append(s.points, Point{At: at, Value: v})
}

// Points returns the raw transition list.
func (s *Series) Points() []Point { return s.points }

// Len returns the number of recorded transitions.
func (s *Series) Len() int { return len(s.points) }

// ValueAt returns the series value at time t (0 before the first point).
func (s *Series) ValueAt(t sim.Time) float64 {
	v := 0.0
	for _, p := range s.points {
		if p.At > t {
			break
		}
		v = p.Value
	}
	return v
}

// Mean returns the time-weighted mean value over [from, to]; 0 for an
// empty or inverted window, never NaN.
func (s *Series) Mean(from, to sim.Time) float64 {
	if to <= from || len(s.points) == 0 {
		return 0
	}
	var area float64
	cur := s.ValueAt(from)
	last := from
	for _, p := range s.points {
		if p.At <= from {
			continue
		}
		if p.At >= to {
			break
		}
		area += cur * float64(p.At-last)
		cur = p.Value
		last = p.At
	}
	area += cur * float64(to-last)
	return area / float64(to-from)
}

// Peak returns the maximum value observed in [from, to].
func (s *Series) Peak(from, to sim.Time) float64 {
	peak := s.ValueAt(from)
	for _, p := range s.points {
		if p.At < from || p.At > to {
			continue
		}
		if p.Value > peak {
			peak = p.Value
		}
	}
	return peak
}

// Sample reduces the series to n evenly spaced samples over [from, to],
// suitable for plotting the Fig. 10 / Fig. 12 queue-depth timelines as text.
func (s *Series) Sample(from, to sim.Time, n int) []Point {
	if n < 2 || to <= from {
		return nil
	}
	out := make([]Point, n)
	step := sim.Duration(to-from) / sim.Duration(n-1)
	for i := 0; i < n; i++ {
		at := from.Add(step * sim.Duration(i))
		out[i] = Point{At: at, Value: s.ValueAt(at)}
	}
	return out
}

// AsciiPlot renders the series as a crude text plot: one row per sample,
// with a bar proportional to the value. Good enough to see the Fig. 10
// "queue stuck at 1" vs "queue saturates" contrast in a terminal.
func (s *Series) AsciiPlot(from, to sim.Time, rows int, maxVal float64) string {
	if maxVal <= 0 {
		maxVal = 1 // flat series: plot against a unit scale, not NaN bars
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (time %v .. %v)\n", s.name, from, to)
	for _, p := range s.Sample(from, to, rows) {
		bar := int(p.Value / maxVal * 50)
		if bar < 0 {
			bar = 0
		}
		if bar > 50 {
			bar = 50
		}
		fmt.Fprintf(&b, "%10.3fms |%-50s| %.0f\n", p.At.Millis(), strings.Repeat("#", bar), p.Value)
	}
	return b.String()
}

// Reset discards all points.
func (s *Series) Reset() { s.points = s.points[:0] }
