package metrics

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sim"
)

// Counter is a monotonically increasing event count. It is atomic so a live
// snapshot reader (repro -live) can observe it while a parallel sweep bumps
// it, and nil-safe so a layer without a registry pays one branch per event.
type Counter struct {
	name string
	n    atomic.Int64
}

// NewCounter returns a zeroed counter labelled name.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Name returns the counter label.
func (c *Counter) Name() string { return c.name }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Rate converts an event count over a virtual-time window to events/second.
// It is the IOPS / ops-per-second / Tx-per-second calculation used by every
// throughput figure in the paper.
func Rate(events int64, window sim.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(events) / window.Seconds()
}

// Throughput couples a counter with the window it was observed over.
type Throughput struct {
	Name   string
	Events int64
	Window sim.Duration
}

// PerSecond returns the rate in events/second.
func (t Throughput) PerSecond() float64 { return Rate(t.Events, t.Window) }

func (t Throughput) String() string {
	return fmt.Sprintf("%-14s %10.0f /s (%d events over %v)", t.Name, t.PerSecond(), t.Events, t.Window)
}

// SwitchMeter measures voluntary context switches attributed to an
// operation, reproducing the per-fsync context-switch counts of Fig. 11.
// Usage: Begin before the operation on the calling process, End after; the
// meter accumulates the per-op switch deltas.
type SwitchMeter struct {
	name  string
	ops   int64
	total int64
	start int64
}

// NewSwitchMeter returns an empty meter labelled name.
func NewSwitchMeter(name string) *SwitchMeter { return &SwitchMeter{name: name} }

// Begin snapshots the process's voluntary-switch count.
func (m *SwitchMeter) Begin(p *sim.Proc) { m.start = p.VoluntarySwitches() }

// End records the switches incurred since Begin as one operation.
func (m *SwitchMeter) End(p *sim.Proc) {
	m.total += p.VoluntarySwitches() - m.start
	m.ops++
}

// PerOp returns the mean number of voluntary switches per operation.
func (m *SwitchMeter) PerOp() float64 {
	if m.ops == 0 {
		return 0
	}
	return float64(m.total) / float64(m.ops)
}

// Ops returns the number of measured operations.
func (m *SwitchMeter) Ops() int64 { return m.ops }

// Name returns the meter label.
func (m *SwitchMeter) Name() string { return m.name }
