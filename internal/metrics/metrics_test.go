package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLatencyBasics(t *testing.T) {
	r := NewLatencyRecorder("fsync")
	for i := 1; i <= 100; i++ {
		r.Record(sim.Duration(i) * sim.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.Mean(); got != sim.Duration(50.5*float64(sim.Millisecond)) {
		t.Errorf("mean = %v", got)
	}
	if got := r.Median(); got != 50*sim.Millisecond {
		t.Errorf("median = %v, want 50ms", got)
	}
	if got := r.Percentile(99); got != 99*sim.Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := r.Percentile(100); got != 100*sim.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
	if got := r.Min(); got != sim.Millisecond {
		t.Errorf("min = %v, want 1ms", got)
	}
	if got := r.Max(); got != 100*sim.Millisecond {
		t.Errorf("max = %v, want 100ms", got)
	}
}

func TestLatencyEmpty(t *testing.T) {
	r := NewLatencyRecorder("empty")
	if r.Mean() != 0 || r.Median() != 0 || r.Percentile(99.99) != 0 || r.Max() != 0 {
		t.Error("empty recorder should report zeros")
	}
	s := r.Summarize()
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("summary of empty recorder: %+v", s)
	}
}

func TestLatencyRecordAfterQueryKeepsOrder(t *testing.T) {
	r := NewLatencyRecorder("x")
	r.Record(5 * sim.Millisecond)
	_ = r.Median() // forces sort
	r.Record(1 * sim.Millisecond)
	if got := r.Min(); got != sim.Millisecond {
		t.Errorf("min after late record = %v", got)
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder("prop")
		for _, v := range raw {
			r.Record(sim.Duration(v % 1000000))
		}
		last := sim.Duration(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 99.9, 100} {
			v := r.Percentile(p)
			if v < last || v < r.Min() || v > r.Max() {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: nearest-rank percentile matches a direct sorted-slice lookup.
func TestPercentileNearestRankProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		vals := make([]sim.Duration, n)
		r := NewLatencyRecorder("p")
		for i := range vals {
			vals[i] = sim.Duration(rng.Intn(100000))
			r.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		p := []float64{50, 90, 99}[rng.Intn(3)]
		rank := int(float64(n)*p/100 + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		if rank > n {
			rank = n
		}
		if got := r.Percentile(p); got != vals[rank-1] {
			t.Fatalf("n=%d p=%v: got %v want %v", n, p, got, vals[rank-1])
		}
	}
}

func TestSeriesStepSemantics(t *testing.T) {
	s := NewSeries("qd")
	s.Record(0, 0)
	s.Record(10, 1)
	s.Record(20, 3)
	s.Record(30, 0)
	if got := s.ValueAt(5); got != 0 {
		t.Errorf("ValueAt(5) = %v", got)
	}
	if got := s.ValueAt(10); got != 1 {
		t.Errorf("ValueAt(10) = %v", got)
	}
	if got := s.ValueAt(25); got != 3 {
		t.Errorf("ValueAt(25) = %v", got)
	}
	if got := s.ValueAt(100); got != 0 {
		t.Errorf("ValueAt(100) = %v", got)
	}
}

func TestSeriesCoalescesEqualValues(t *testing.T) {
	s := NewSeries("qd")
	s.Record(0, 2)
	s.Record(5, 2)
	s.Record(9, 2)
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1 (coalesced)", s.Len())
	}
}

func TestSeriesMean(t *testing.T) {
	s := NewSeries("qd")
	s.Record(0, 0)
	s.Record(10, 4) // value 4 on [10,20)
	s.Record(20, 0)
	got := s.Mean(0, 20)
	if got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
	if got := s.Mean(10, 20); got != 4 {
		t.Errorf("mean[10,20] = %v, want 4", got)
	}
}

func TestSeriesPeakAndSample(t *testing.T) {
	s := NewSeries("qd")
	s.Record(0, 1)
	s.Record(50, 9)
	s.Record(60, 2)
	if got := s.Peak(0, 100); got != 9 {
		t.Errorf("peak = %v", got)
	}
	pts := s.Sample(0, 100, 11)
	if len(pts) != 11 {
		t.Fatalf("samples = %d", len(pts))
	}
	if pts[5].Value != 9 { // t=50
		t.Errorf("sample@50 = %v, want 9", pts[5].Value)
	}
	if pts[10].Value != 2 {
		t.Errorf("sample@100 = %v, want 2", pts[10].Value)
	}
}

func TestAsciiPlotRenders(t *testing.T) {
	s := NewSeries("qd")
	s.Record(0, 0)
	s.Record(sim.Time(sim.Millisecond), 16)
	out := s.AsciiPlot(0, sim.Time(2*sim.Millisecond), 5, 16)
	if !strings.Contains(out, "qd") || !strings.Contains(out, "#") {
		t.Errorf("plot missing content:\n%s", out)
	}
}

func TestCounterAndRate(t *testing.T) {
	c := NewCounter("ops")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("value = %d", c.Value())
	}
	if got := Rate(30000, 2*sim.Second); got != 15000 {
		t.Errorf("rate = %v, want 15000", got)
	}
	if got := Rate(5, 0); got != 0 {
		t.Errorf("rate with zero window = %v", got)
	}
	tp := Throughput{Name: "iops", Events: 1000, Window: sim.Second}
	if tp.PerSecond() != 1000 {
		t.Errorf("throughput = %v", tp.PerSecond())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("reset failed")
	}
}

func TestSwitchMeter(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	m := NewSwitchMeter("fsync")
	k.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			m.Begin(p)
			p.Sleep(sim.Microsecond) // 1 voluntary switch
			p.Sleep(sim.Microsecond) // 2nd
			m.End(p)
		}
	})
	k.Run()
	if m.Ops() != 4 {
		t.Fatalf("ops = %d", m.Ops())
	}
	if m.PerOp() != 2 {
		t.Errorf("per-op switches = %v, want 2", m.PerOp())
	}
}

func TestSummaryString(t *testing.T) {
	r := NewLatencyRecorder("EXT4")
	r.Record(sim.Duration(1.29 * float64(sim.Millisecond)))
	s := r.Summarize().String()
	if !strings.Contains(s, "EXT4") || !strings.Contains(s, "µ=1.290ms") {
		t.Errorf("summary string: %s", s)
	}
}
