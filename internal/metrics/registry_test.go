package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// A nil registry and nil instruments are the disabled path every stack
// layer runs on by default: every method must be a safe no-op.
func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Hist("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	g.Inc()
	g.Dec()
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 ||
		h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Error("nil instruments must read zero")
	}
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v", got)
	}
	if r.KernelStats() != nil {
		t.Error("nil registry must hand out nil kernel stats")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name must return the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name must return the same gauge")
	}
	if r.Hist("h") != r.Hist("h") {
		t.Error("same name must return the same hist")
	}
	if r.KernelStats() != r.KernelStats() {
		t.Error("kernel stats must be a singleton per registry")
	}
}

func TestHistObserve(t *testing.T) {
	h := NewHist("lat")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	h.Observe(-5) // clamped to 0, still counted
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Max() != 1000 {
		t.Errorf("max = %d, want 1000", h.Max())
	}
	if q := h.Quantile(1); q != 1000 {
		t.Errorf("q100 = %v, want max", q)
	}
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Errorf("q50 = %v, want within the low buckets", q)
	}
	if m := h.Mean(); math.Abs(m-1106.0/6) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
}

// Quantile interpolates linearly within a log2 bucket, so a bucket filled
// uniformly answers interior quantiles close to the true order statistic
// instead of the bucket's power-of-two ceiling.
func TestHistQuantileInterpolation(t *testing.T) {
	h := NewHist("interp")
	// Fill bucket 7 ([64,127]) exactly: one observation per integer.
	for v := int64(64); v <= 127; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want float64 // true order statistic; interpolation must land near it
	}{
		{0.25, 79}, {0.5, 95}, {0.75, 111}, {1.0, 127},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1.0 {
			t.Errorf("q%.0f = %v, want %v ± 1", tc.q*100, got, tc.want)
		}
		if got > 127 || got < 64 {
			t.Errorf("q%.0f = %v escaped the bucket [64,127]", tc.q*100, got)
		}
	}
}

func TestHistQuantileMaxClamp(t *testing.T) {
	// A sparsely occupied high bucket: 1000 lives in [512,1023], but the
	// observed max must cap the interpolation ceiling.
	h := NewHist("clamp")
	h.Observe(600)
	h.Observe(1000)
	if q := h.Quantile(1); q != 1000 {
		t.Errorf("q100 = %v, want observed max 1000, not bucket top 1023", q)
	}
	if q := h.Quantile(0.5); q < 512 || q > 1000 {
		t.Errorf("q50 = %v, want within [512, max]", q)
	}
}

func TestHistQuantileZeroBucket(t *testing.T) {
	h := NewHist("zeros")
	h.Observe(0)
	h.Observe(0)
	h.Observe(8)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("q50 = %v, want 0 (bucket 0 holds only zeros)", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Errorf("q100 = %v, want 8", q)
	}
}

func TestHistQuantileMonotone(t *testing.T) {
	h := NewHist("mono")
	for _, v := range []int64{1, 3, 3, 7, 20, 90, 90, 4000} {
		h.Observe(v)
	}
	prev := -1.0
	for q := 0.05; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("quantile not monotone: q%.2f = %v < %v", q, got, prev)
		}
		prev = got
	}
}

func TestSnapshotRows(t *testing.T) {
	r := NewRegistry()
	r.Counter("jbd/commits").Add(7)
	r.Gauge("fs/dirty.pages").Set(42)
	r.Hist("kvwal/group.size").Observe(4)
	r.KernelStats().HandlerDispatches.Add(9)
	snap := r.Snapshot()
	got := make(map[string]Sample, len(snap))
	for i, s := range snap {
		got[s.Name] = s
		if i > 0 && snap[i-1].Name > s.Name {
			t.Fatalf("snapshot not sorted: %q after %q", s.Name, snap[i-1].Name)
		}
	}
	checks := []struct {
		name string
		kind string
		v    float64
	}{
		{"jbd/commits", "counter", 7},
		{"fs/dirty.pages", "gauge", 42},
		{"kvwal/group.size.count", "hist", 1},
		{"kvwal/group.size.max", "hist", 4},
		{"sim/dispatch.handler", "counter", 9},
	}
	for _, c := range checks {
		s, ok := got[c.name]
		if !ok {
			t.Errorf("snapshot missing %s", c.name)
			continue
		}
		if s.Kind != c.kind || s.Value != c.v {
			t.Errorf("%s = {%s %v}, want {%s %v}", c.name, s.Kind, s.Value, c.kind, c.v)
		}
	}
}

func TestResolvePrecedence(t *testing.T) {
	explicit := NewRegistry()
	if Resolve(explicit) != explicit {
		t.Error("explicit registry must win")
	}
	if Resolve(nil) != nil {
		t.Error("no live registry: Resolve(nil) must be nil")
	}
	liveReg := NewRegistry()
	SetLive(liveReg)
	defer SetLive(nil)
	if Resolve(nil) != liveReg {
		t.Error("Resolve(nil) must fall back to the live registry")
	}
	if Resolve(explicit) != explicit {
		t.Error("explicit registry must still win over live")
	}
}

// Single-sample and empty recorders feed straight into -json rows: every
// summary field must be a finite number, never NaN (json.Marshal rejects
// NaN with an error, which would take down the whole report).
func TestSummaryFieldsFinite(t *testing.T) {
	finite := func(tag string, s Summary) {
		t.Helper()
		for name, v := range map[string]float64{
			"mean": s.Mean, "max": s.Max, "median": s.Median,
			"p99": s.P99, "p999": s.P999, "p9999": s.P9999,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v", tag, name, v)
			}
		}
	}
	empty := NewLatencyRecorder("empty")
	finite("empty", empty.Summarize())

	one := NewLatencyRecorder("one")
	one.Record(3 * sim.Millisecond)
	s := one.Summarize()
	finite("single", s)
	if s.Median != s.P99 || s.P99 != s.P9999 || s.Median != 3.0 {
		t.Errorf("single-sample percentiles must all equal the sample: %+v", s)
	}
	if one.Percentile(math.NaN()) != 0 {
		t.Error("Percentile(NaN) must be 0, not a panic or NaN")
	}
}
