// Package metrics provides the measurement instruments used by the
// experiment harness: latency recorders with percentile extraction,
// time-series samplers for queue-depth traces, and simple counters/rates.
// All instruments operate on virtual sim time.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// LatencyRecorder accumulates duration samples and reports order statistics.
// The paper's Table 1 reports mean, median, 99th, 99.9th and 99.99th
// percentiles of fsync latency; Summary produces exactly that row.
type LatencyRecorder struct {
	name    string
	samples []sim.Duration
	sorted  bool
	sum     sim.Duration
}

// NewLatencyRecorder returns an empty recorder labelled name.
func NewLatencyRecorder(name string) *LatencyRecorder {
	return &LatencyRecorder{name: name}
}

// Name returns the recorder's label.
func (r *LatencyRecorder) Name() string { return r.name }

// Record adds one sample.
func (r *LatencyRecorder) Record(d sim.Duration) {
	r.samples = append(r.samples, d)
	r.sum += d
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (r *LatencyRecorder) Mean() sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / sim.Duration(len(r.samples))
}

// Max returns the largest sample, or 0 with no samples.
func (r *LatencyRecorder) Max() sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sortSamples()
	return r.samples[len(r.samples)-1]
}

// Min returns the smallest sample, or 0 with no samples.
func (r *LatencyRecorder) Min() sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sortSamples()
	return r.samples[0]
}

func (r *LatencyRecorder) sortSamples() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or 0 with no samples. Out-of-range and NaN p clamp
// to the valid range, so a single-sample recorder answers every percentile
// with its one sample instead of indexing out of bounds.
func (r *LatencyRecorder) Percentile(p float64) sim.Duration {
	n := len(r.samples)
	if n == 0 || math.IsNaN(p) {
		return 0
	}
	r.sortSamples()
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return r.samples[rank-1]
}

// Median returns the 50th percentile.
func (r *LatencyRecorder) Median() sim.Duration { return r.Percentile(50) }

// Summary is one row of Table 1: latency statistics in milliseconds.
type Summary struct {
	Name   string
	Count  int
	Mean   float64 // all fields in msec, matching the paper's Table 1
	Median float64
	P99    float64
	P999   float64
	P9999  float64
	Max    float64
}

// Summarize produces the Table-1 style row for the recorder. Every field is
// sanitized to a finite number: an empty or single-sample recorder yields a
// row of zeros / repeats of the one sample, never NaN or Inf — the row is
// marshaled straight into `repro -json` output and NaN is not valid JSON.
func (r *LatencyRecorder) Summarize() Summary {
	return Summary{
		Name:   r.name,
		Count:  r.Count(),
		Mean:   finite(r.Mean().Millis()),
		Median: finite(r.Median().Millis()),
		P99:    finite(r.Percentile(99).Millis()),
		P999:   finite(r.Percentile(99.9).Millis()),
		P9999:  finite(r.Percentile(99.99).Millis()),
		Max:    finite(r.Max().Millis()),
	}
}

// finite maps NaN and ±Inf to 0 so summaries stay JSON-encodable.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func (s Summary) String() string {
	return fmt.Sprintf("%-14s n=%-7d µ=%.3fms med=%.3fms p99=%.3fms p99.9=%.3fms p99.99=%.3fms",
		s.Name, s.Count, s.Mean, s.Median, s.P99, s.P999, s.P9999)
}

// Reset discards all samples.
func (r *LatencyRecorder) Reset() {
	r.samples = r.samples[:0]
	r.sum = 0
	r.sorted = false
}
