// KV store example: a barrier-enabled WAL key-value store (internal/kvwal)
// on a BarrierFS stack. Concurrent clients group-commit Put batches with
// one fdatabarrier per group; the power then fails mid-commit and the
// store recovers. The point of the walkthrough: barrier group commit is
// cheap, yet every key the store acknowledged as durable survives the
// crash, and the surviving write-ahead log is a prefix of the committed
// history — the paper's ordering guarantee, observed from an application.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/kvwal"
	"repro/internal/sim"
)

func main() {
	k := sim.NewKernel()
	s := core.NewStack(k, core.BFSDR(device.PlainSSD()))
	var st *kvwal.Store
	k.Spawn("setup", func(p *sim.Proc) {
		var err error
		st, err = kvwal.Open(p, s, kvwal.DefaultConfig())
		if err != nil {
			panic(err)
		}
		// A first batch of mail: committed, then explicitly checkpointed, so
		// it is durably acknowledged.
		for i := 0; i < 32; i++ {
			st.PutKey(p, fmt.Sprintf("inbox/%04d", i))
		}
		st.DeleteKey(p, "inbox/0007")
		st.ForceCheckpoint(p)
		fmt.Printf("checkpointed: committed=%d durable=%d\n", st.CommittedSeq(), st.DurableSeq())
		if seq, ok := st.Get(p, "inbox/0003"); ok {
			fmt.Printf("get inbox/0003 -> seq %d\n", seq)
		}
		if _, ok := st.Get(p, "inbox/0007"); !ok {
			fmt.Println("get inbox/0007 -> deleted")
		}
		// Three clients keep committing; the power fails while their groups
		// are in flight.
		for c := 0; c < 3; c++ {
			c := c
			k.SpawnIdx("client", c, func(p *sim.Proc) {
				for n := 0; ; n++ {
					st.Apply(p, []kvwal.Op{
						{Kind: kvwal.Put, Key: fmt.Sprintf("feed/%d-%04d", c, n)},
						{Kind: kvwal.Put, Key: fmt.Sprintf("feed/%d-%04d", c, n+1)},
					})
				}
			})
		}
	})
	k.RunUntil(sim.Time(40 * sim.Millisecond))
	s.Crash()
	fmt.Printf("\npower failure: committed=%d durable=%d (the gap is the barrier window)\n",
		st.CommittedSeq(), st.DurableSeq())

	k.Spawn("recover", func(p *sim.Proc) {
		view, _ := s.RecoverView(p)
		rec := st.Recover(view)
		durErrs, ordErrs := st.Audit(rec)
		live := 0
		for _, e := range rec.Keys {
			if !e.Del {
				live++
			}
		}
		fmt.Printf("recovered: %d live keys, wal replayed to seq %d (checkpoint %d)\n",
			live, rec.PrefixSeq, rec.Checkpoint)
		fmt.Printf("durability violations: %d, ordering violations: %d\n", len(durErrs), len(ordErrs))
		if e, ok := rec.Keys["inbox/0003"]; ok && !e.Del {
			fmt.Println("inbox/0003 survived (was durably acknowledged)")
		}
		if e, ok := rec.Keys["inbox/0007"]; !ok || e.Del {
			fmt.Println("inbox/0007 stayed deleted (no resurrection)")
		}
	})
	k.Run()
	k.Close()
}
