// Quickstart: build a barrier-enabled IO stack, use fdatabarrier() to order
// two writes without a flush, crash the device at an awkward moment, and
// watch the ordering guarantee hold.
//
// This is the paper's §4.1 codelet:
//
//	write(fileA, "Hello");
//	fdatabarrier(fileA);
//	write(fileA, "World");
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fs"
	"repro/internal/sim"
)

func main() {
	k := sim.NewKernel()
	defer k.Close()

	// BarrierFS over the paper's UFS device (barrier-compliant, QD16).
	stack := core.NewStack(k, core.BFSOD(device.UFS()))

	var file *fs.Inode
	k.Spawn("app", func(p *sim.Proc) {
		f, err := stack.FS.Create(p, stack.FS.Root(), "hello.txt")
		if err != nil {
			panic(err)
		}
		file = f
		stack.FS.Write(p, f, 0) // establish the file durably first
		stack.FS.Fsync(p, f)

		t0 := p.Now()
		stack.FS.Write(p, f, 0) // "Hello"
		stack.FS.Fdatabarrier(p, f)
		stack.FS.Write(p, f, 1) // "World"
		stack.FS.Fdatabarrier(p, f)
		fmt.Printf("two ordered writes issued in %v — no flush, no wait-on-transfer\n",
			sim.Duration(p.Now()-t0))
	})

	// Let the writes make some progress, then pull the plug.
	k.RunUntil(sim.Time(3 * sim.Millisecond))
	stack.Crash()
	fmt.Printf("power failure at %v\n", k.Now())

	k.Spawn("recovery", func(p *sim.Proc) {
		view, _ := stack.RecoverView(p)
		root, _ := view.Root(stack.FS)
		meta, ok := view.Lookup(root, "hello.txt")
		if !ok {
			fmt.Println("file not recovered (crash before first fsync)")
			return
		}
		v0, ok0 := view.PageVersion(meta, 0)
		v1, ok1 := view.PageVersion(meta, 1)
		fmt.Printf("recovered: Hello=%v(v%d) World=%v(v%d)\n", ok0, v0, ok1, v1)
		if ok1 && v1 > v0 {
			fmt.Println("ordering violated!? (should never print)")
		} else {
			fmt.Println("storage order preserved: World never precedes Hello")
		}
	})
	k.Run()
	_ = file
}
