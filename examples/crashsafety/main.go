// Crash-safety example: sweeps power failures across a barrier-ordered
// write stream on three stacks and reports which preserve the storage
// order. The legacy stack (nobarrier mount on a non-barrier device) is the
// cautionary tale that motivates the whole paper.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/device"
	"repro/internal/sim"
)

func main() {
	var times []sim.Time
	for i := 1; i <= 12; i++ {
		times = append(times, sim.Time(sim.Duration(i*i)*700*sim.Microsecond))
	}
	cases := []struct {
		label string
		prof  core.Profile
	}{
		{"BFS-OD on barrier UFS (fdatabarrier)", core.BFSOD(device.UFS())},
		{"BFS-OD on barrier plain-SSD", core.BFSOD(device.PlainSSD())},
		{"EXT4-DR transfer-and-flush (safe, slow)", core.EXT4DR(device.PlainSSD())},
		{"EXT4-OD on legacy device (UNSAFE)", core.EXT4OD(device.LegacySSD())},
	}
	for _, c := range cases {
		violated := 0
		for _, rep := range crashtest.Sweep(c.prof, "ordering", times) {
			if !rep.Ok() {
				violated++
			}
		}
		verdict := "order preserved at every crash point"
		if violated > 0 {
			verdict = fmt.Sprintf("ORDER VIOLATED at %d/%d crash points", violated, len(times))
		}
		fmt.Printf("%-42s %s\n", c.label, verdict)
	}
}
