// Varmail example: the fsync-heavy mail-server workload of Fig. 15, run
// across the five stack configurations on the plain-SSD. Shows the dual
// benefit of BarrierFS: a faster fsync (BFS-DR) and a nearly free ordering
// primitive (BFS-OD).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	profiles := []core.Profile{
		core.EXT4DR(device.PlainSSD()),
		core.BFSDR(device.PlainSSD()),
		core.OptFS(device.PlainSSD()),
		core.EXT4OD(device.PlainSSD()),
		core.BFSOD(device.PlainSSD()),
	}
	fmt.Println("varmail (16 threads) on plain-SSD:")
	var baseline float64
	for _, prof := range profiles {
		k := sim.NewKernel()
		s := core.NewStack(k, prof)
		cfg := workload.DefaultVarmail()
		cfg.Duration = 250 * sim.Millisecond
		res := workload.Varmail(k, s, cfg)
		k.Close()
		if baseline == 0 {
			baseline = res.OpsPerS
		}
		fmt.Printf("  %-8s %9.0f ops/s  (%4.1fx vs EXT4-DR)\n",
			prof.Name, res.OpsPerS, res.OpsPerS/baseline)
	}
}
