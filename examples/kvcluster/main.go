// kvcluster example: a minimal 4-shard barrier-enabled KV service under
// open-loop Zipfian traffic. Keys route to shards by consistent hashing,
// each shard group-commits on its own BarrierFS stack, and an admission
// controller bounds per-shard inflight requests, shedding the excess. The
// run prints the SLO report: offered vs goodput, shed counts, the cluster
// latency tail and the per-shard / per-tenant breakdowns — the same
// numbers the `repro kvcluster` sweep records per cell.
//
// The second half is a live-resize walkthrough: a 3-shard replicated
// cluster grows to 4 shards mid-run while the open-loop load keeps
// arriving. The migration copies each moving key range in the background
// (Copying), dual-writes to old and new owners while it catches up
// (CatchUp/Cutover), then flips ownership — and the printed timeline
// shows goodput and p99 before, during and after, with the keys-moved
// summary and the zero-acked-loss audit at the end.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kvcluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	cfg := kvcluster.Config{
		Shards:  4,
		Profile: core.BFSDR,
		SLO:     2 * sim.Millisecond,
	}
	tr := kvcluster.Traffic{
		Arrivals: workload.ArrivalConfig{
			Kind:     workload.ArrivalBursty, // square-wave bursts over Poisson
			RatePerS: 120_000,
			Seed:     42,
		},
		Mix:       workload.Mix{ReadPct: 30, DeletePct: 10},
		KeySpace:  8192,
		ZipfTheta: 0.99, // YCSB-style hot keys
		Tenants:   3,
		Warmup:    4 * sim.Millisecond,
		Duration:  20 * sim.Millisecond,
	}
	fmt.Printf("4-shard BFS-DR cluster, bursty Zipfian open-loop load at %.0f req/s\n\n",
		tr.Arrivals.RatePerS)
	res := kvcluster.Run(cfg, tr)
	fmt.Print(res.Report())
	fmt.Printf("\nbarrier group commit keeps the tail inside the %.1fms SLO at %.0f%% attainment;\n",
		res.SLOms, res.SLOPct)
	fmt.Println("rerun with Profile: core.EXT4DR to watch Transfer-and-Flush shed instead.")

	resizeWalkthrough()
}

// resizeWalkthrough grows a live 3-shard replicated cluster to 4 shards
// under open-loop traffic and prints the goodput/p99 timeline around the
// migration.
func resizeWalkthrough() {
	rc := kvcluster.ReplicaConfig{
		Shards:   3,
		Replicas: 2,
		Profile:  core.BFSDR,
	}
	tr := kvcluster.Traffic{
		Arrivals: workload.ArrivalConfig{
			Kind: workload.ArrivalPoisson, RatePerS: 40_000, Seed: 11,
		},
		Mix:       workload.Mix{ReadPct: 50, DeletePct: 5},
		KeySpace:  4096,
		ZipfTheta: 0.9,
		Tenants:   2,
		Warmup:    4 * sim.Millisecond,
		Duration:  16 * sim.Millisecond,
	}
	spec := kvcluster.ResizeSpec{
		NewShards: 4,
		ResizeAt:  sim.Time(tr.Warmup + 4*sim.Millisecond),
	}
	fmt.Printf("\n-- live resize: 3 -> 4 shards (R=2) at t=%.0fms under %.0f req/s --\n\n",
		float64(spec.ResizeAt)/float64(sim.Millisecond), tr.Arrivals.RatePerS)
	res := kvcluster.RunResize(rc, tr, 64, 2*sim.Millisecond, spec, 8)

	fmt.Printf("%8s %8s %-7s %11s %8s\n", "startms", "endms", "phase", "goodput/s", "p99ms")
	for _, b := range res.Timeline {
		fmt.Printf("%8.1f %8.1f %-7s %11.0f %8.3f\n",
			b.StartMs, b.EndMs, b.Phase, b.GoodputPerS, b.P99)
	}
	m := res.Migration
	fmt.Printf("\nmigration %.1fms..%.1fms: %d ranges, %d keys moved, %d dual writes, %d cutovers, %d aborts\n",
		res.MigStart, res.MigEnd, m.Ranges, m.KeysCopied, m.DualWrites, m.Cutovers, m.Aborts)
	fmt.Printf("acked-write audit: %d acked puts, %d lost (invariant: 0)\n",
		res.AckedKeys, res.AckedLost)
	for _, ph := range res.Phases {
		if ph.WindowMs == 0 {
			continue
		}
		fmt.Printf("phase %-7s %5.1fms window: %8.0f good/s, p99 %.3fms\n",
			ph.Phase, ph.WindowMs, ph.GoodputPerS, ph.P99)
	}
	fmt.Println("\nthe copier paces itself (REQ_BACKGROUND chunks), so foreground p99 stays bounded")
	fmt.Println("while ownership moves; crashmc's RebalanceScenario audits the same machine under crashes.")
}
