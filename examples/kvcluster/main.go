// kvcluster example: a minimal 4-shard barrier-enabled KV service under
// open-loop Zipfian traffic. Keys route to shards by consistent hashing,
// each shard group-commits on its own BarrierFS stack, and an admission
// controller bounds per-shard inflight requests, shedding the excess. The
// run prints the SLO report: offered vs goodput, shed counts, the cluster
// latency tail and the per-shard / per-tenant breakdowns — the same
// numbers the `repro kvcluster` sweep records per cell.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kvcluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	cfg := kvcluster.Config{
		Shards:  4,
		Profile: core.BFSDR,
		SLO:     2 * sim.Millisecond,
	}
	tr := kvcluster.Traffic{
		Arrivals: workload.ArrivalConfig{
			Kind:     workload.ArrivalBursty, // square-wave bursts over Poisson
			RatePerS: 120_000,
			Seed:     42,
		},
		Mix:       workload.Mix{ReadPct: 30, DeletePct: 10},
		KeySpace:  8192,
		ZipfTheta: 0.99, // YCSB-style hot keys
		Tenants:   3,
		Warmup:    4 * sim.Millisecond,
		Duration:  20 * sim.Millisecond,
	}
	fmt.Printf("4-shard BFS-DR cluster, bursty Zipfian open-loop load at %.0f req/s\n\n",
		tr.Arrivals.RatePerS)
	res := kvcluster.Run(cfg, tr)
	fmt.Print(res.Report())
	fmt.Printf("\nbarrier group commit keeps the tail inside the %.1fms SLO at %.0f%% attainment;\n",
		res.SLOms, res.SLOPct)
	fmt.Println("rerun with Profile: core.EXT4DR to watch Transfer-and-Flush shed instead.")
}
