// SQLite example: the paper's flagship application result (§5, Fig. 14).
// A PERSIST-mode insert transaction issues four fdatasync() calls, three of
// which only enforce storage order. Replacing them with fdatabarrier() — and
// optionally the fourth too — multiplies insert throughput.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/sqlmini"
)

func main() {
	const window = 300 * sim.Millisecond
	configs := []struct {
		label string
		prof  core.Profile
		dur   sqlmini.Durability
	}{
		{"EXT4-DR (4x fdatasync)", core.EXT4DR(device.PlainSSD()), sqlmini.Durable},
		{"BFS-DR  (3x fdatabarrier + 1x fdatasync)", core.BFSDR(device.PlainSSD()), sqlmini.Durable},
		{"EXT4-OD (nobarrier)", core.EXT4OD(device.PlainSSD()), sqlmini.OrderingOnly},
		{"OptFS   (osync)", core.OptFS(device.PlainSSD()), sqlmini.OrderingOnly},
		{"BFS-OD  (4x fdatabarrier)", core.BFSOD(device.PlainSSD()), sqlmini.OrderingOnly},
	}
	fmt.Println("SQLite PERSIST-mode inserts on plain-SSD:")
	var baseline float64
	for _, c := range configs {
		k := sim.NewKernel()
		s := core.NewStack(k, c.prof)
		res := sqlmini.Bench(k, s, sqlmini.DefaultConfig(sqlmini.Persist, c.dur), window)
		k.Close()
		if baseline == 0 {
			baseline = res.TxPerSec
		}
		fmt.Printf("  %-44s %8.0f Tx/s  (%5.1fx vs EXT4-DR)\n",
			c.label, res.TxPerSec, res.TxPerSec/baseline)
	}
}
